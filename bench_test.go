// Package repro's top-level benchmarks regenerate the paper's evaluation
// artifacts under `go test -bench=.`: one benchmark per table and figure
// (§7, Tables 1–2, Figs. 3–4), the mode-switch timing (§7.4), and the
// frame-tracking ablation (§5.1.2). Simulated results are attached as
// custom metrics (sim_us, ratios); the Go ns/op column measures only the
// simulator's host-side speed.
package repro

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/workloads"
)

// BenchmarkTable1 regenerates the uniprocessor lmbench table.
func BenchmarkTable1(b *testing.B) {
	var last bench.TableResult
	for i := 0; i < b.N; i++ {
		t, err := bench.LmbenchTable(1, bench.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	reportTable(b, last)
}

// BenchmarkTable2 regenerates the SMP lmbench table.
func BenchmarkTable2(b *testing.B) {
	var last bench.TableResult
	for i := 0; i < b.N; i++ {
		t, err := bench.LmbenchTable(2, bench.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	reportTable(b, last)
}

// reportTable attaches headline metrics: native fork latency, the
// Xen/native fork ratio, and the Mercury-native overhead.
func reportTable(b *testing.B, t bench.TableResult) {
	var sb strings.Builder
	bench.WriteTable(&sb, t)
	b.Log("\n" + sb.String())
	// Row 0 is Fork Process; columns follow bench.AllSystems order.
	fork := t.Values[0]
	b.ReportMetric(fork[0], "fork_NL_us")
	b.ReportMetric(fork[2]/fork[0], "fork_X0_over_NL")
	b.ReportMetric(fork[1]/fork[0], "fork_MN_over_NL")
	ctx := t.Values[3]
	b.ReportMetric(ctx[0], "ctx2p_NL_us")
	b.ReportMetric(ctx[3]/ctx[2], "ctx2p_MV_over_X0")
}

// BenchmarkFig3 regenerates the uniprocessor application figure.
func BenchmarkFig3(b *testing.B) {
	var last bench.FigureResult
	for i := 0; i < b.N; i++ {
		f, err := bench.AppFigure(1, bench.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	reportFigure(b, last)
}

// BenchmarkFig4 regenerates the SMP application figure.
func BenchmarkFig4(b *testing.B) {
	var last bench.FigureResult
	for i := 0; i < b.N; i++ {
		f, err := bench.AppFigure(2, bench.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	reportFigure(b, last)
}

func reportFigure(b *testing.B, f bench.FigureResult) {
	var sb strings.Builder
	bench.WriteFigure(&sb, f)
	b.Log("\n" + sb.String())
	// Headline shapes: M-N ≈ N-L, dbench domU ≥ native, iperf domU low.
	b.ReportMetric(f.Relative[0][1], "osdb_MN_rel")
	b.ReportMetric(f.Relative[0][2], "osdb_X0_rel")
	b.ReportMetric(f.Relative[1][4], "dbench_XU_rel")
	b.ReportMetric(f.Relative[4][4], "iperfTCP_XU_rel")
}

// BenchmarkModeSwitch regenerates the §7.4 switch timings (recompute
// policy, the paper's default).
func BenchmarkModeSwitch(b *testing.B) {
	var last bench.SwitchResult
	for i := 0; i < b.N; i++ {
		r, err := bench.ModeSwitchBench(10, core.TrackRecompute)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.ToVirtualMicros/1000, "attach_ms")
	b.ReportMetric(last.ToNativeMicros/1000, "detach_ms")
	var sb strings.Builder
	bench.WriteSwitch(&sb, last)
	b.Log("\n" + sb.String())
}

// BenchmarkAblationTracking regenerates the §5.1.2 comparison of
// active tracking vs recompute-on-switch.
func BenchmarkAblationTracking(b *testing.B) {
	var last bench.AblationResult
	for i := 0; i < b.N; i++ {
		a, err := bench.TrackingAblation()
		if err != nil {
			b.Fatal(err)
		}
		last = a
	}
	b.ReportMetric(last.OverheadPct, "native_overhead_pct")
	b.ReportMetric(last.RecomputeAttachUS, "attach_recompute_us")
	b.ReportMetric(last.ActiveAttachUS, "attach_active_us")
	var sb strings.Builder
	bench.WriteAblation(&sb, last)
	b.Log("\n" + sb.String())
}

// BenchmarkAblationPaging regenerates the §3.2.2 direct-vs-shadow
// paging comparison (why Mercury chose direct mode).
func BenchmarkAblationPaging(b *testing.B) {
	var last bench.PagingAblationResult
	for i := 0; i < b.N; i++ {
		r, err := bench.PagingAblation()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.DirectAttachUS, "attach_direct_us")
	b.ReportMetric(last.ShadowAttachUS, "attach_shadow_us")
	var sb strings.Builder
	bench.WritePagingAblation(&sb, last)
	b.Log("\n" + sb.String())
}

// BenchmarkAblationBatching regenerates the multicall batching
// comparison (DESIGN.md ablation 2).
func BenchmarkAblationBatching(b *testing.B) {
	var last bench.BatchingAblationResult
	for i := 0; i < b.N; i++ {
		r, err := bench.BatchingAblation()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.SpeedupFactor, "batching_speedup_x")
}

// BenchmarkAblationAddrSpace regenerates the unified-address-space
// comparison (DESIGN.md ablation 3).
func BenchmarkAblationAddrSpace(b *testing.B) {
	var last bench.AddrSpaceAblationResult
	for i := 0; i < b.N; i++ {
		r, err := bench.AddrSpaceAblation()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.SeparateForkUS/last.SharedForkUS, "fork_penalty_x")
}

// Targeted microbenchmarks: the two headline lmbench rows on the two
// headline systems, runnable individually.

func benchLmbenchRow(b *testing.B, key bench.SystemKey,
	pick func(workloads.LmbenchResult) float64) {
	var v float64
	for i := 0; i < b.N; i++ {
		s, err := bench.Build(key, bench.Options{})
		if err != nil {
			b.Fatal(err)
		}
		v = pick(workloads.Lmbench(s.Target()))
	}
	b.ReportMetric(v, "sim_us")
}

func BenchmarkForkNative(b *testing.B) {
	benchLmbenchRow(b, bench.NL, func(r workloads.LmbenchResult) float64 { return r.ForkProc })
}

func BenchmarkForkMercuryNative(b *testing.B) {
	benchLmbenchRow(b, bench.MN, func(r workloads.LmbenchResult) float64 { return r.ForkProc })
}

func BenchmarkForkXenDom0(b *testing.B) {
	benchLmbenchRow(b, bench.X0, func(r workloads.LmbenchResult) float64 { return r.ForkProc })
}

func BenchmarkForkMercuryVirtual(b *testing.B) {
	benchLmbenchRow(b, bench.MV, func(r workloads.LmbenchResult) float64 { return r.ForkProc })
}

// BenchmarkSwitchRoundTrip measures one attach+detach pair end to end.
func BenchmarkSwitchRoundTrip(b *testing.B) {
	s, err := bench.Build(bench.MN, bench.Options{})
	if err != nil {
		b.Fatal(err)
	}
	mc := s.Mercury
	boot := s.M.BootCPU()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mc.SwitchSync(boot, core.ModePartialVirtual); err != nil {
			b.Fatal(err)
		}
		if err := mc.SwitchSync(boot, core.ModeNative); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s.Micros(mc.Stats.LastAttachCyc.Load()), "attach_sim_us")
	b.ReportMetric(s.Micros(mc.Stats.LastDetachCyc.Load()), "detach_sim_us")
}

// BenchmarkDbenchThroughput reports the dbench score on N-L and X-U,
// the pair whose inversion (domU beating native) the paper highlights.
func BenchmarkDbenchThroughput(b *testing.B) {
	for _, key := range []bench.SystemKey{bench.NL, bench.XU} {
		key := key
		b.Run(string(key), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				s, err := bench.Build(key, bench.Options{})
				if err != nil {
					b.Fatal(err)
				}
				mbps = workloads.Dbench(s.Target()).MBps
			}
			b.ReportMetric(mbps, "sim_MBps")
		})
	}
}

// BenchmarkGuestFork isolates the simulator's own speed on the hottest
// guest path (host-side performance, not a paper artifact).
func BenchmarkGuestFork(b *testing.B) {
	s, err := bench.Build(bench.NL, bench.Options{})
	if err != nil {
		b.Fatal(err)
	}
	boot := s.M.BootCPU()
	s.K.Spawn(boot, "bench", guest.DefaultImage("bench"), func(p *guest.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Fork("c", func(cp *guest.Proc) { cp.Exit(0) })
			p.Wait()
		}
		b.StopTimer()
	})
	s.K.Run(boot)
}
