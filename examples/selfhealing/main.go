// Self-healing (§6.2): sensors watch kernel invariants; on an anomaly
// the OS self-virtualizes, the VMM repairs the tainted state from
// outside the kernel, and the machine returns to native mode. Unlike
// backdoor-based remote healing, no second machine is needed, and there
// is no steady-state overhead.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hw"
)

func main() {
	machine := hw.NewMachine(hw.DefaultConfig())
	mc, err := core.New(core.Config{Machine: machine})
	if err != nil {
		log.Fatal(err)
	}
	c := machine.BootCPU()
	sensors := []core.Sensor{core.RunqueueSensor()}

	// Healthy pass: nothing to do, zero cost.
	rep, err := mc.SelfHeal(c, sensors, core.RunqueueRepair())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pass 1: sensors quiet (report=%v), mode=%v\n", rep, mc.Mode())

	// A wild fault corrupts scheduler state.
	mc.K.InjectRunqueueCorruption()
	if err := mc.K.CheckRunqueue(); err != nil {
		fmt.Printf("fault injected: %v\n", err)
	}

	// The next sensor sweep triggers a healing episode.
	rep, err = mc.SelfHeal(c, sensors, core.RunqueueRepair())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pass 2: sensor %q fired (%s)\n", rep.Sensor, rep.Anomaly)
	fmt.Printf("        healed=%v, VMM resident for %.1f us\n",
		rep.Healed, rep.AttachedForUS)
	fmt.Printf("back to mode=%v; runqueue integrity: %v\n",
		mc.Mode(), mc.K.CheckRunqueue())
}
