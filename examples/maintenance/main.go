// Online hardware maintenance (§6.3): machine A needs servicing. Its
// self-virtualized OS hosts a guest whose execution environment is live-
// migrated to machine B with sub-millisecond downtime; machine A can
// then be powered off, serviced, and the guest migrated back.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/migrate"
	"repro/internal/xen"
)

func main() {
	// Machine A: the box that needs maintenance, running Mercury.
	machA := hw.NewMachine(hw.Config{Name: "machine-A", MemBytes: 128 << 20, NumCPUs: 1})
	mcA, err := core.New(core.Config{Machine: machA})
	if err != nil {
		log.Fatal(err)
	}
	cA := machA.BootCPU()

	// Machine B: the healthy spare, already in partial-virtual mode to
	// accommodate the incoming environment (§6.3).
	machB := hw.NewMachine(hw.Config{Name: "machine-B", MemBytes: 128 << 20, NumCPUs: 1})
	vmmB, err := xen.Boot(machB)
	if err != nil {
		log.Fatal(err)
	}
	cB := machB.BootCPU()
	vmmB.Activate(cB)
	dom0B, err := vmmB.CreateDomain("dom0", 4096, true)
	if err != nil {
		log.Fatal(err)
	}
	vmmB.SetCurrent(cB, dom0B)
	hw.Wire(machA.NIC, machB.NIC, hw.Gigabit())

	// Step 1: machine A self-virtualizes so its workload becomes a
	// migratable domain.
	fmt.Printf("[A] mode=%v; operator requests maintenance\n", mcA.Mode())
	if err := mcA.SwitchSync(cA, core.ModePartialVirtual); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[A] attached VMM in %.2f us\n",
		machA.Micros(mcA.Stats.LastAttachCyc.Load()))

	// The workload being evacuated: a hosted guest with live state.
	domU, err := mcA.VMM.HypDomctlCreateFromFrames(cA, mcA.Dom, "workload", 2048)
	if err != nil {
		log.Fatal(err)
	}
	lo, _ := domU.Frames.Range()
	for i := 0; i < 512; i++ {
		machA.Mem.WriteWord((lo + hw.PFN(i)).Addr(), uint32(0xC0DE0000+i))
	}
	fmt.Printf("[A] hosting %q with 512 live pages\n", domU.Name)

	// Step 2: live migration with the guest still dirtying memory.
	cfg := migrate.DefaultLiveConfig()
	cfg.Mutator = func(round int) {
		for i := 0; i < 20; i++ {
			machA.Mem.WriteWord((lo+hw.PFN((round*31+i)%512)).Addr()+8, uint32(round))
		}
	}
	moved, rep, err := migrate.Live(cA, mcA.VMM, mcA.Dom, domU, vmmB, dom0B, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[A->B] migrated %d pages in %d rounds; downtime %.1f us, total %.1f ms\n",
		rep.TotalPages, len(rep.Rounds), rep.DowntimeUSec, rep.TotalUSec/1000)
	loB, _ := moved.Frames.Range()
	if got := machB.Mem.ReadWord(loB.Addr()); got != 0xC0DE0000 {
		log.Fatalf("payload corrupted in flight: %#x", got)
	}
	fmt.Printf("[B] %q running, payload verified\n", moved.Name)

	// Step 3: with no hosted guests left, machine A detaches its VMM
	// and is ready to be powered off for maintenance.
	if err := mcA.SwitchSync(cA, core.ModeNative); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[A] detached VMM in %.2f us; mode=%v — safe to service\n",
		machA.Micros(mcA.Stats.LastDetachCyc.Load()), mcA.Mode())
}
