// HPC cluster availability (§6.5): hardware monitors watch temperature,
// fan speed and voltages; when the failure predictor trips on a node,
// the node self-virtualizes, its hosted execution environment migrates
// to a healthy node, and the (now empty) node detaches its VMM so it can
// be pulled for repair — the running programs never stop.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/migrate"
	"repro/internal/xen"
)

func main() {
	// Node 1: a compute node running Mercury in native mode (full
	// speed), with one hosted compute environment.
	node1 := hw.NewMachine(hw.Config{Name: "node1", MemBytes: 128 << 20, NumCPUs: 1})
	mc1, err := core.New(core.Config{Machine: node1})
	if err != nil {
		log.Fatal(err)
	}
	c1 := node1.BootCPU()
	if err := mc1.SwitchSync(c1, core.ModePartialVirtual); err != nil {
		log.Fatal(err)
	}
	job, err := mc1.VMM.HypDomctlCreateFromFrames(c1, mc1.Dom, "mpi-rank-0", 2048)
	if err != nil {
		log.Fatal(err)
	}
	lo, _ := job.Frames.Range()
	for i := 0; i < 800; i++ {
		node1.Mem.WriteWord((lo + hw.PFN(i)).Addr(), uint32(0x4A0B_0000+i))
	}
	fmt.Printf("[node1] hosting %q (800 pages of solver state)\n", job.Name)

	// Node 2: the healthy spare in partial-virtual mode.
	node2 := hw.NewMachine(hw.Config{Name: "node2", MemBytes: 128 << 20, NumCPUs: 1})
	vmm2, err := xen.Boot(node2)
	if err != nil {
		log.Fatal(err)
	}
	c2 := node2.BootCPU()
	vmm2.Activate(c2)
	dom02, err := vmm2.CreateDomain("dom0", 4096, true)
	if err != nil {
		log.Fatal(err)
	}
	vmm2.SetCurrent(c2, dom02)
	hw.Wire(node1.NIC, node2.NIC, hw.Gigabit())

	predictor := core.DefaultPredictor()

	// Healthy sweep: nothing happens.
	if rep, err := mc1.EvacuateOnFailure(c1, predictor, vmm2, dom02, migrate.DefaultLiveConfig()); err != nil || rep != nil {
		log.Fatalf("healthy node evacuated: %v %v", rep, err)
	}
	fmt.Printf("[node1] sensors nominal: temp=%.0fC fan=%.0frpm\n",
		node1.Sensors.Read(hw.SensorCPUTempC), node1.Sensors.Read(hw.SensorFanRPM))

	// A fan starts dying; temperature climbs past the threshold.
	node1.Sensors.Set(hw.SensorFanRPM, 1200)
	node1.Sensors.Set(hw.SensorCPUTempC, 91)
	fmt.Println("[node1] fan failing: 1200 rpm, cpu at 91 C")

	cfg := migrate.DefaultLiveConfig()
	cfg.Mutator = func(round int) { // the solver keeps computing
		for i := 0; i < 25; i++ {
			node1.Mem.WriteWord((lo+hw.PFN((round*17+i)%800)).Addr()+12, uint32(round))
		}
	}
	rep, err := mc1.EvacuateOnFailure(c1, predictor, vmm2, dom02, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[node1] predictor: %s\n", rep.Predicted)
	for i, name := range rep.Evacuated {
		lr := rep.Migration[i]
		fmt.Printf("[node1->node2] %q: %d pages, %d rounds, downtime %.1f us\n",
			name, lr.TotalPages, len(lr.Rounds), lr.DowntimeUSec)
	}
	fmt.Printf("[node1] node released (mode=%v) — pull it for repair\n", mc1.Mode())

	// The job's state survived intact on node 2.
	d2 := vmm2.Domains
	var moved *xen.Domain
	for _, d := range d2 {
		if d.Name == "mpi-rank-0-migrated" {
			moved = d
		}
	}
	lo2, _ := moved.Frames.Range()
	if got := node2.Mem.ReadWord(lo2.Addr()); got != 0x4A0B_0000 {
		log.Fatalf("solver state corrupted: %#x", got)
	}
	fmt.Printf("[node2] %q verified and running\n", moved.Name)
}
