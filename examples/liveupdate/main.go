// Live kernel update (§6.4): the system runs in native mode at full
// speed; to apply a kernel patch the VMM attaches, supervises the
// update, and detaches — unlike LUCOS, no hypervisor is resident before
// or after the update window.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/hw"
)

func main() {
	machine := hw.NewMachine(hw.DefaultConfig())
	mc, err := core.New(core.Config{Machine: machine})
	if err != nil {
		log.Fatal(err)
	}
	k := mc.K
	boot := machine.BootCPU()

	k.Spawn(boot, "service", guest.DefaultImage("service"), func(p *guest.Proc) {
		fmt.Printf("service running, mode=%v\n", mc.Mode())
		// Some steady-state work before the update.
		base := p.Mmap(16, guest.ProtRead|guest.ProtWrite, true)
		p.Touch(base, 16, true)

		// The patch hardens the page-fault path: it wraps the existing
		// handler with an accounting prologue (standing in for a
		// security fix to a kernel entry point).
		var patchedFaults int
		old := k.IDT.Get(hw.VecPageFault)
		patch := core.KernelPatch{
			Name: "harden-fault-entry",
			Apply: func(kk *guest.Kernel) error {
				kk.IDT.Set(hw.VecPageFault, hw.Gate{Present: true, Target: hw.PL0,
					Handler: func(c *hw.CPU, f *hw.TrapFrame) {
						patchedFaults++
						old.Handler(c, f)
					}})
				return nil
			},
			Validate: func(kk *guest.Kernel) error {
				if !kk.IDT.Get(hw.VecPageFault).Present {
					return fmt.Errorf("fault gate missing after patch")
				}
				return nil
			},
		}

		rep, err := mc.LiveUpdate(p.CPU(), patch)
		if err != nil {
			panic(err)
		}
		fmt.Printf("patch %q applied: VMM resident for %.1f us, back to mode=%v\n",
			rep.Patch, rep.AttachedForUS, mc.Mode())

		// The patched handler is live: demand-fault fresh pages.
		b2 := p.Mmap(8, guest.ProtRead|guest.ProtWrite, false)
		p.Touch(b2, 8, true)
		fmt.Printf("patched fault handler serviced %d faults after the update\n",
			patchedFaults)
		if patchedFaults == 0 {
			panic("patch not in effect")
		}
		p.Munmap(b2)
		p.Munmap(base)
	})
	k.Run(boot)
	fmt.Printf("done: attaches=%d detaches=%d (exactly one update window)\n",
		mc.Stats.Attaches.Load(), mc.Stats.Detaches.Load())
}
