// Quickstart: boot a Mercury system, run an application in native mode,
// attach the pre-cached VMM underneath it while it runs, do some work in
// virtual mode, and detach again — the application never notices.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/hw"
)

func main() {
	// A two-CPU 3 GHz machine, like the paper's DELL SC1420.
	machine := hw.NewMachine(hw.DefaultConfig())

	// core.New pre-caches the VMM (it stays inactive in memory) and
	// boots the kernel in native mode with Mercury's virtualization
	// objects installed.
	mc, err := core.New(core.Config{Machine: machine})
	if err != nil {
		log.Fatal(err)
	}
	k := mc.K
	boot := machine.BootCPU()
	fmt.Printf("booted: mode=%v, VMM active=%v\n", mc.Mode(), mc.VMM.Active)

	k.Spawn(boot, "app", guest.DefaultImage("app"), func(p *guest.Proc) {
		us := func(cyc hw.Cycles) float64 { return machine.Micros(cyc) }

		// Native-mode work: full speed, direct hardware access.
		base := p.Mmap(64, guest.ProtRead|guest.ProtWrite, true)
		t0 := p.CPU().Now()
		p.Touch(base, 64, true)
		fmt.Printf("native-mode touch of 64 pages: %8.1f us\n", us(p.CPU().Now()-t0))

		// Attach the VMM underneath the running application.
		t0 = p.CPU().Now()
		if err := mc.SwitchSync(p.CPU(), core.ModePartialVirtual); err != nil {
			panic(err)
		}
		fmt.Printf("switch native -> virtual:        %8.1f us (engine: %.1f us)\n",
			us(p.CPU().Now()-t0), us(mc.Stats.LastAttachCyc.Load()))
		fmt.Printf("now: mode=%v, VMM active=%v, kernel object=%s\n",
			mc.Mode(), mc.VMM.Active, k.VO().Name())

		// Same memory, same process — now every sensitive operation is a
		// hypercall. Verify the pre-switch contents survived.
		for i := 0; i < 64; i++ {
			va := base + hw.VirtAddr(i<<hw.PageShift)
			if got := p.CPU().ReadWord(va); got != uint32(va) {
				panic("memory changed across the mode switch")
			}
		}
		b2 := p.Mmap(64, guest.ProtRead|guest.ProtWrite, true)
		t0 = p.CPU().Now()
		p.Touch(b2, 64, true)
		fmt.Printf("virtual-mode touch of 64 pages:  %8.1f us\n", us(p.CPU().Now()-t0))

		// Detach: back to bare hardware.
		t0 = p.CPU().Now()
		if err := mc.SwitchSync(p.CPU(), core.ModeNative); err != nil {
			panic(err)
		}
		fmt.Printf("switch virtual -> native:        %8.1f us (engine: %.1f us)\n",
			us(p.CPU().Now()-t0), us(mc.Stats.LastDetachCyc.Load()))
		fmt.Printf("now: mode=%v, VMM active=%v, kernel object=%s\n",
			mc.Mode(), mc.VMM.Active, k.VO().Name())

		p.Munmap(b2)
		p.Munmap(base)
	})
	k.Run(boot)
	fmt.Printf("done: %d attaches, %d detaches, %d frames selector-fixed\n",
		mc.Stats.Attaches.Load(), mc.Stats.Detaches.Load(), mc.Stats.FixedFrames.Load())
}
