// Checkpoint and restart (§6.1): the pre-cached VMM is activated just
// long enough to snapshot a hosted environment; after a failure the
// snapshot restores the environment to its checkpointed state.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/migrate"
)

func main() {
	machine := hw.NewMachine(hw.DefaultConfig())
	mc, err := core.New(core.Config{Machine: machine})
	if err != nil {
		log.Fatal(err)
	}
	c := machine.BootCPU()

	// Attach the VMM and host the environment to be protected.
	if err := mc.SwitchSync(c, core.ModePartialVirtual); err != nil {
		log.Fatal(err)
	}
	env, err := mc.VMM.HypDomctlCreateFromFrames(c, mc.Dom, "database", 1024)
	if err != nil {
		log.Fatal(err)
	}
	lo, _ := env.Frames.Range()
	for i := 0; i < 256; i++ {
		machine.Mem.WriteWord((lo + hw.PFN(i)).Addr(), uint32(7000+i))
	}
	fmt.Printf("environment %q has 256 committed pages\n", env.Name)

	// Periodic checkpoint.
	img, err := migrate.Checkpoint(c, mc.VMM, mc.Dom, env)
	if err != nil {
		log.Fatal(err)
	}
	blob, err := img.Bytes()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %d pages, %d KB serialized\n",
		len(img.Pages), len(blob)/1024)

	// Disaster: a software failure scribbles over the environment.
	for i := 0; i < 256; i++ {
		machine.Mem.WriteWord((lo + hw.PFN(i)).Addr(), 0xDEAD)
	}
	fmt.Println("failure injected: environment state destroyed")

	// Recovery: decode the snapshot and roll the environment back.
	back, err := migrate.DecodeImage(blob)
	if err != nil {
		log.Fatal(err)
	}
	if err := migrate.Restore(c, mc.VMM, mc.Dom, env, back); err != nil {
		log.Fatal(err)
	}
	ok := true
	for i := 0; i < 256; i++ {
		if machine.Mem.ReadWord((lo + hw.PFN(i)).Addr()) != uint32(7000+i) {
			ok = false
			break
		}
	}
	fmt.Printf("restore complete: state verified = %v\n", ok)
	if !ok {
		log.Fatal("restore corrupted the environment")
	}
}
