package repro

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links and images: [text](target).
// Reference-style links and autolinks are not used in this repo's docs.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocsRelativeLinks checks every relative link in the repo's
// markdown files against the filesystem, so a renamed file or a typo'd
// anchor target fails CI instead of rotting silently.
func TestDocsRelativeLinks(t *testing.T) {
	mds, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(mds) == 0 {
		t.Fatal("no markdown files at the repo root")
	}
	for _, md := range mds {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			path := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(path); err != nil {
				t.Errorf("%s: broken relative link %q: %v", md, m[1], err)
			}
		}
	}
}

// headingSlug reduces a markdown heading to its GitHub anchor slug:
// lowercase, punctuation stripped, spaces hyphenated.
func headingSlug(h string) string {
	h = strings.ToLower(strings.TrimSpace(h))
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ', r == '-':
			b.WriteRune(r)
		}
	}
	return strings.ReplaceAll(b.String(), " ", "-")
}

// mdHeading matches ATX headings; the capture is the heading text.
var mdHeading = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*$`)

// TestDocsAnchors resolves every #anchor fragment in the markdown
// links — both in-page (#foo) and cross-file (DESIGN.md#foo) — against
// the target file's headings, so a reworded section title breaks CI
// instead of leaving a link that silently scrolls to the top.
func TestDocsAnchors(t *testing.T) {
	mds, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	slugs := map[string]map[string]bool{} // file -> anchor set
	anchorsOf := func(path string) map[string]bool {
		if s, ok := slugs[path]; ok {
			return s
		}
		s := map[string]bool{}
		if data, err := os.ReadFile(path); err == nil {
			for _, m := range mdHeading.FindAllStringSubmatch(string(data), -1) {
				s[headingSlug(m[1])] = true
			}
		}
		slugs[path] = s
		return s
	}
	checked := 0
	for _, md := range mds {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") ||
				strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			file, anchor, ok := strings.Cut(target, "#")
			if !ok || anchor == "" {
				continue
			}
			if file == "" {
				file = md
			} else {
				file = filepath.Join(filepath.Dir(md), file)
			}
			if !strings.HasSuffix(file, ".md") {
				continue
			}
			checked++
			if !anchorsOf(file)[anchor] {
				t.Errorf("%s: link %q: no heading in %s slugs to %q",
					md, m[1], file, anchor)
			}
		}
	}
	if checked == 0 {
		t.Error("no anchored markdown links found; the check is vacuous")
	}
}

// flagDef matches a flag definition in Go source: any FlagSet method
// or package-level flag call of the form .String("name", ...).
var flagDef = regexp.MustCompile(`\.(?:Bool|Int|Int64|Uint|Uint64|String|Float64|Duration)\(\s*"([^"]+)"`)

// readmeFlag matches an inline-backticked CLI flag in the docs:
// `-queues N`, `-noswitch`, `-kind mode-switch|...`.
var readmeFlag = regexp.MustCompile("`-([a-z][a-z0-9-]*)[^`]*`")

// TestDocsFlagsExist checks that every backticked `-flag` the README's
// CLI tables mention is actually defined by a flag declaration under
// cmd/, so renaming a flag without updating the docs fails CI.
func TestDocsFlagsExist(t *testing.T) {
	defined := map[string]bool{}
	srcs, err := filepath.Glob("cmd/*/*.go")
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) == 0 {
		t.Fatal("no Go sources under cmd/")
	}
	for _, src := range srcs {
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range flagDef.FindAllStringSubmatch(string(data), -1) {
			defined[m[1]] = true
		}
	}
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, m := range readmeFlag.FindAllStringSubmatch(string(data), -1) {
		checked++
		if !defined[m[1]] {
			t.Errorf("README.md mentions flag %q (as %s) but no cmd/ source defines it", m[1], m[0])
		}
	}
	if checked == 0 {
		t.Error("no backticked flags found in README.md; the check is vacuous")
	}
}

// TestDocsBacktickedFiles checks that repo paths named in backticks in
// the README and ARCHITECTURE (the docs most prone to drift) still
// exist: `DESIGN.md`, `internal/fleet`, `cmd/benchtab`, ...
func TestDocsBacktickedFiles(t *testing.T) {
	ref := regexp.MustCompile("`((?:internal|cmd|examples)/[a-z0-9_/-]+|[A-Z][A-Z_a-z0-9]*\\.md)`")
	for _, md := range []string{"README.md", "ARCHITECTURE.md", "EXPERIMENTS.md"} {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ref.FindAllStringSubmatch(string(data), -1) {
			if _, err := os.Stat(m[1]); err != nil {
				t.Errorf("%s: references %q which does not exist", md, m[1])
			}
		}
	}
}

// TestEveryInternalPackageHasDoc: each internal package carries its
// overview in a doc.go whose comment begins "// Package <name>", so
// `go doc repro/internal/<name>` gives a real description of the layer.
func TestEveryInternalPackageHasDoc(t *testing.T) {
	pkgs, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no internal packages")
	}
	for _, p := range pkgs {
		if !p.IsDir() {
			continue
		}
		doc := filepath.Join("internal", p.Name(), "doc.go")
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("internal/%s has no doc.go: %v", p.Name(), err)
			continue
		}
		want := "// Package " + p.Name()
		if !strings.HasPrefix(string(data), want) {
			t.Errorf("%s does not begin with %q", doc, want)
		}
	}
}
