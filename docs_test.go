package repro

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links and images: [text](target).
// Reference-style links and autolinks are not used in this repo's docs.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocsRelativeLinks checks every relative link in the repo's
// markdown files against the filesystem, so a renamed file or a typo'd
// anchor target fails CI instead of rotting silently.
func TestDocsRelativeLinks(t *testing.T) {
	mds, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(mds) == 0 {
		t.Fatal("no markdown files at the repo root")
	}
	for _, md := range mds {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			path := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(path); err != nil {
				t.Errorf("%s: broken relative link %q: %v", md, m[1], err)
			}
		}
	}
}

// TestDocsBacktickedFiles checks that repo paths named in backticks in
// the README and ARCHITECTURE (the docs most prone to drift) still
// exist: `DESIGN.md`, `internal/fleet`, `cmd/benchtab`, ...
func TestDocsBacktickedFiles(t *testing.T) {
	ref := regexp.MustCompile("`((?:internal|cmd|examples)/[a-z0-9_/-]+|[A-Z][A-Z_a-z0-9]*\\.md)`")
	for _, md := range []string{"README.md", "ARCHITECTURE.md", "EXPERIMENTS.md"} {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ref.FindAllStringSubmatch(string(data), -1) {
			if _, err := os.Stat(m[1]); err != nil {
				t.Errorf("%s: references %q which does not exist", md, m[1])
			}
		}
	}
}

// TestEveryInternalPackageHasDoc: each internal package carries its
// overview in a doc.go whose comment begins "// Package <name>", so
// `go doc repro/internal/<name>` gives a real description of the layer.
func TestEveryInternalPackageHasDoc(t *testing.T) {
	pkgs, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no internal packages")
	}
	for _, p := range pkgs {
		if !p.IsDir() {
			continue
		}
		doc := filepath.Join("internal", p.Name(), "doc.go")
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("internal/%s has no doc.go: %v", p.Name(), err)
			continue
		}
		want := "// Package " + p.Name()
		if !strings.HasPrefix(string(data), want) {
			t.Errorf("%s does not begin with %q", doc, want)
		}
	}
}
