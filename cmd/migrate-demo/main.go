// migrate-demo runs the online-maintenance migration (§6.3) with
// adjustable parameters and prints a per-round transfer report — the
// pre-copy behaviour Clark et al. plot as pages-per-round.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/migrate"
	"repro/internal/xen"
)

func main() {
	pages := flag.Int("pages", 1024, "live pages in the migrating guest")
	dirtyRate := flag.Int("dirty", 40, "pages dirtied per pre-copy round")
	rounds := flag.Int("max-rounds", 8, "pre-copy round limit")
	sloUS := flag.Float64("slo-us", 0,
		"downtime SLO in microseconds (0 = threshold-only pre-copy)")
	flag.Parse()

	machA := hw.NewMachine(hw.Config{Name: "A", MemBytes: 256 << 20, NumCPUs: 1})
	mcA, err := core.New(core.Config{Machine: machA})
	if err != nil {
		log.Fatal(err)
	}
	cA := machA.BootCPU()

	machB := hw.NewMachine(hw.Config{Name: "B", MemBytes: 256 << 20, NumCPUs: 1})
	vmmB, err := xen.Boot(machB)
	if err != nil {
		log.Fatal(err)
	}
	cB := machB.BootCPU()
	vmmB.Activate(cB)
	dom0B, err := vmmB.CreateDomain("dom0", 4096, true)
	if err != nil {
		log.Fatal(err)
	}
	vmmB.SetCurrent(cB, dom0B)
	hw.Wire(machA.NIC, machB.NIC, hw.Gigabit())

	if err := mcA.SwitchSync(cA, core.ModePartialVirtual); err != nil {
		log.Fatal(err)
	}
	guest, err := mcA.VMM.HypDomctlCreateFromFrames(cA, mcA.Dom, "guest",
		hw.PFN(*pages)+64)
	if err != nil {
		log.Fatal(err)
	}
	lo, _ := guest.Frames.Range()
	for i := 0; i < *pages; i++ {
		machA.Mem.WriteWord((lo + hw.PFN(i)).Addr(), uint32(i))
	}

	cfg := migrate.DefaultLiveConfig()
	cfg.MaxRounds = *rounds
	cfg.DowntimeSLOCyc = hw.Cycles(*sloUS / 1e6 * float64(machA.Hz))
	cfg.Mutator = func(round int) {
		for i := 0; i < *dirtyRate; i++ {
			pfn := lo + hw.PFN((round*97+i*13)%*pages)
			machA.Mem.WriteWord(pfn.Addr()+4, uint32(round*1000+i))
		}
	}
	moved, rep, err := migrate.Live(cA, mcA.VMM, mcA.Dom, guest, vmmB, dom0B, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("migrated %q: %d pages total, verified=%v\n",
		moved.Name, rep.TotalPages, rep.Verified)
	fmt.Printf("%-8s %-6s %s\n", "round", "pages", "decision")
	for _, r := range rep.Rounds {
		bar := ""
		for i := 0; i < r.Pages/16; i++ {
			bar += "#"
		}
		fmt.Printf("%-8d %-6d %-14s %s\n", r.Round, r.Pages, r.Decision, bar)
	}
	fmt.Printf("stop reason: %s\n", rep.StopReason)
	fmt.Printf("downtime: %.1f us   total: %.2f ms\n",
		rep.DowntimeUSec, rep.TotalUSec/1000)

	if err := mcA.SwitchSync(cA, core.ModeNative); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("source machine back in %v mode, ready for maintenance\n", mcA.Mode())
}
