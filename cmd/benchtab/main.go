// benchtab regenerates every table and figure of the paper's evaluation
// (§7): Table 1 and Table 2 (lmbench latencies across the six system
// configurations, UP and SMP), Figures 3 and 4 (relative application
// performance), the mode-switch timings of §7.4, and the §5.1.2
// frame-tracking ablation.
//
// Usage:
//
//	benchtab                 # everything
//	benchtab -exp table1     # one experiment: table1 table2 fig3 fig4
//	                         # switch switchscale ablation chaos ...
//	benchtab -exp switchscale -json -baseline BENCH_baseline.json
//	                         # regenerate the switch-latency trajectory,
//	                         # write BENCH_switch.json, diff vs baseline
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/divergence"
	"repro/internal/hw"
	"repro/internal/mc"
	"repro/internal/obs"
)

func main() {
	exp := flag.String("exp", "all",
		"experiment to run: table1, table2, fig3, fig4, switch, switchscale, ablation, paging, batching, emulation, addrspace, chaos, migrate, fork, fleet, io, divergence, mc, all")
	samples := flag.Int("samples", 10, "mode-switch samples")
	seed := flag.Int64("seed", 42, "chaos campaign seed")
	episodes := flag.Int("episodes", 16, "chaos campaign episodes")
	format := flag.String("format", "text", "output format for tables/figures: text or csv")
	metrics := flag.Bool("metrics", false,
		"collect telemetry and write per-configuration metric dumps (JSON)")
	metricsDir := flag.String("metricsdir", ".", "directory for -metrics dump files")
	jsonOut := flag.Bool("json", false,
		"write machine-readable results: BENCH_switch.json (switchscale), BENCH_table1/2.json, BENCH_fig3/4.json")
	jsonDir := flag.String("jsondir", ".", "directory for -json result files")
	baseline := flag.String("baseline", "",
		"committed baseline to diff the selected sweep against (exit 1 on breach): BENCH_baseline.json for -exp switchscale, BENCH_migrate.json for -exp migrate, BENCH_fork.json for -exp fork, BENCH_fleet.json for -exp fleet, BENCH_io.json for -exp io, BENCH_divergence.json for -exp divergence, BENCH_mc.json for -exp mc")
	tolerance := flag.Float64("tolerance", 25,
		"allowed per-point cycle deviation vs -baseline, percent")
	policyName := flag.String("policy", "recompute",
		"tracking policy for switch/chaos experiments: recompute, active, journal")
	migrateFaults := flag.Bool("migrate", false,
		"chaos experiment: add a standby node and the migration fault classes to the campaign")
	divOps := flag.Int("divops", 300, "divergence experiment: workload length in operations")
	flag.Parse()
	csv := *format == "csv"

	var policy core.TrackingPolicy
	switch *policyName {
	case "recompute":
		policy = core.TrackRecompute
	case "active":
		policy = core.TrackActive
	case "journal":
		policy = core.TrackJournal
	default:
		log.Fatalf("unknown policy %q", *policyName)
	}

	writeJSON := func(name string, v any) {
		if !*jsonOut {
			return
		}
		path := filepath.Join(*jsonDir, name)
		if err := bench.WriteJSONFile(path, v); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	run := func(name string) bool {
		return *exp == "all" || strings.EqualFold(*exp, name)
	}
	any := false

	// collectorsFor returns per-configuration collectors (and a dump
	// function) when -metrics is on, else zero options.
	collectorsFor := func(expName string, ncpu int) (bench.Options, func()) {
		if !*metrics {
			return bench.Options{}, func() {}
		}
		cs := bench.NewCollectorSet(ncpu)
		return bench.Options{CollectorFor: cs.For}, func() {
			for _, key := range cs.Keys() {
				path := filepath.Join(*metricsDir,
					fmt.Sprintf("metrics-%s-%s.json", expName, key))
				f, err := os.Create(path)
				if err != nil {
					log.Fatal(err)
				}
				if err := cs.For(key).Registry.WriteJSON(f); err != nil {
					log.Fatal(err)
				}
				f.Close()
				fmt.Printf("wrote %s\n", path)
			}
			cs.WriteTraceHealth(os.Stdout)
		}
	}

	if run("table1") {
		any = true
		opt, dump := collectorsFor("table1", 1)
		t, err := bench.LmbenchTable(1, opt)
		if err != nil {
			log.Fatal(err)
		}
		if csv {
			bench.WriteTableCSV(os.Stdout, t)
		} else {
			bench.WriteTable(os.Stdout, t)
		}
		writeJSON("BENCH_table1.json", t)
		dump()
		fmt.Println()
	}
	if run("table2") {
		any = true
		opt, dump := collectorsFor("table2", 2)
		t, err := bench.LmbenchTable(2, opt)
		if err != nil {
			log.Fatal(err)
		}
		if csv {
			bench.WriteTableCSV(os.Stdout, t)
		} else {
			bench.WriteTable(os.Stdout, t)
		}
		writeJSON("BENCH_table2.json", t)
		dump()
		fmt.Println()
	}
	if run("fig3") {
		any = true
		f, err := bench.AppFigure(1, bench.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if csv {
			bench.WriteFigureCSV(os.Stdout, f)
		} else {
			bench.WriteFigure(os.Stdout, f)
		}
		writeJSON("BENCH_fig3.json", f)
		fmt.Println()
	}
	if run("fig4") {
		any = true
		f, err := bench.AppFigure(2, bench.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if csv {
			bench.WriteFigureCSV(os.Stdout, f)
		} else {
			bench.WriteFigure(os.Stdout, f)
		}
		writeJSON("BENCH_fig4.json", f)
		fmt.Println()
	}
	if run("switch") {
		any = true
		opt := bench.Options{}
		var col *obs.Collector
		if *metrics {
			col = obs.New(1)
			opt.Collector = col
		}
		r, err := bench.ModeSwitchBenchOpts(*samples, policy, opt)
		if err != nil {
			log.Fatal(err)
		}
		bench.WriteSwitch(os.Stdout, r)
		if col != nil {
			fmt.Println()
			bench.WritePhaseBreakdown(os.Stdout, col, hw.DefaultHz)
			path := filepath.Join(*metricsDir, "metrics-switch-M-N.json")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := col.Registry.WriteJSON(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("wrote %s\n", path)
			bench.WriteTraceHealth(os.Stdout, "M-N", col)
		}
		fmt.Println()
	}
	if run("switchscale") {
		any = true
		pts, err := bench.SwitchScale(bench.Options{})
		if err != nil {
			log.Fatal(err)
		}
		bench.WriteSwitchScale(os.Stdout, pts)
		if *jsonOut {
			path := filepath.Join(*jsonDir, "BENCH_switch.json")
			if err := bench.WriteSwitchBaseline(path, pts); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		if *baseline != "" {
			base, err := bench.LoadSwitchBaseline(*baseline)
			if err != nil {
				log.Fatal(err)
			}
			violations := bench.CompareSwitchBaseline(base, pts, *tolerance)
			if len(violations) > 0 {
				for _, v := range violations {
					fmt.Fprintf(os.Stderr, "baseline breach: %s\n", v)
				}
				os.Exit(1)
			}
			fmt.Printf("baseline %s held within %.0f%% on all %d points\n",
				*baseline, *tolerance, len(pts))
		}
		fmt.Println()
	}
	if run("paging") {
		any = true
		r, err := bench.PagingAblation()
		if err != nil {
			log.Fatal(err)
		}
		bench.WritePagingAblation(os.Stdout, r)
		fmt.Println()
	}
	if run("ablation") {
		any = true
		a, err := bench.TrackingAblation()
		if err != nil {
			log.Fatal(err)
		}
		bench.WriteAblation(os.Stdout, a)
		fmt.Println()
	}
	if run("batching") {
		any = true
		r, err := bench.BatchingAblation()
		if err != nil {
			log.Fatal(err)
		}
		bench.WriteBatchingAblation(os.Stdout, r)
		fmt.Println()
		// Load the committed baseline before writing the fresh sweep:
		// with -json both use the BENCH_batching.json name, and a
		// compare against a just-overwritten file would always pass.
		var batchBase *bench.BatchingBaseline
		if *baseline != "" && strings.EqualFold(*exp, "batching") {
			b, err := bench.LoadBatchingBaseline(*baseline)
			if err != nil {
				log.Fatal(err)
			}
			batchBase = b
		}
		pts, err := bench.BatchingSweep()
		if err != nil {
			log.Fatal(err)
		}
		bench.WriteBatchingSweep(os.Stdout, pts)
		if *jsonOut {
			path := filepath.Join(*jsonDir, "BENCH_batching.json")
			if err := bench.WriteBatchingBaseline(path, pts); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		if batchBase != nil {
			violations := bench.CompareBatchingBaseline(batchBase, pts, *tolerance)
			if len(violations) > 0 {
				for _, v := range violations {
					fmt.Fprintf(os.Stderr, "baseline breach: %s\n", v)
				}
				os.Exit(1)
			}
			fmt.Printf("baseline %s held (exact VMM-entry counts matched, cycles within %.0f%%) on all %d points\n",
				*baseline, *tolerance, len(pts))
		}
		fmt.Println()
	}
	if run("emulation") {
		any = true
		r, err := bench.EmulationAblation()
		if err != nil {
			log.Fatal(err)
		}
		bench.WriteEmulationAblation(os.Stdout, r)
		fmt.Println()
	}
	if run("addrspace") {
		any = true
		r, err := bench.AddrSpaceAblation()
		if err != nil {
			log.Fatal(err)
		}
		bench.WriteAddrSpaceAblation(os.Stdout, r)
		fmt.Println()
	}
	if run("fleet") {
		any = true
		// Load before writing: with -json the fresh sweep overwrites
		// the same BENCH_fleet.json name the baseline was read from.
		var fleetBase *bench.FleetBaseline
		if *baseline != "" && strings.EqualFold(*exp, "fleet") {
			b, err := bench.LoadFleetBaseline(*baseline)
			if err != nil {
				log.Fatal(err)
			}
			fleetBase = b
		}
		pts, err := bench.FleetSweep(bench.Options{})
		if err != nil {
			log.Fatal(err)
		}
		bench.WriteFleetSweep(os.Stdout, pts)
		if *jsonOut {
			path := filepath.Join(*jsonDir, "BENCH_fleet.json")
			if err := bench.WriteFleetBaseline(path, pts); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		if fleetBase != nil {
			violations := bench.CompareFleetBaseline(fleetBase, pts, *tolerance)
			if len(violations) > 0 {
				for _, v := range violations {
					fmt.Fprintf(os.Stderr, "baseline breach: %s\n", v)
				}
				os.Exit(1)
			}
			fmt.Printf("baseline %s held within %.0f%% on all %d points\n",
				*baseline, *tolerance, len(pts))
		}
		fmt.Println()
	}

	if run("fork") {
		any = true
		// Load the committed baseline before writing the fresh sweep:
		// with -json both use the BENCH_fork.json name, and a compare
		// against a just-overwritten file would always pass.
		var forkBase *bench.ForkBaseline
		if *baseline != "" && strings.EqualFold(*exp, "fork") {
			b, err := bench.LoadForkBaseline(*baseline)
			if err != nil {
				log.Fatal(err)
			}
			forkBase = b
		}
		pts, err := bench.ForkSweep(bench.Options{})
		if err != nil {
			log.Fatal(err)
		}
		bench.WriteForkSweep(os.Stdout, pts)
		if *jsonOut {
			path := filepath.Join(*jsonDir, "BENCH_fork.json")
			if err := bench.WriteForkBaseline(path, pts); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		if forkBase != nil {
			violations := bench.CompareForkBaseline(forkBase, pts, *tolerance)
			if len(violations) > 0 {
				for _, v := range violations {
					fmt.Fprintf(os.Stderr, "baseline breach: %s\n", v)
				}
				os.Exit(1)
			}
			fmt.Printf("baseline %s held (exact sharing counts matched, cycles within %.0f%%) on all %d points\n",
				*baseline, *tolerance, len(pts))
		}
		fmt.Println()
	}
	if run("io") {
		any = true
		// Load the committed baseline before writing the fresh sweep:
		// with -json both use the BENCH_io.json name, and a compare
		// against a just-overwritten file would always pass.
		var ioBase *bench.IOBaseline
		if *baseline != "" && strings.EqualFold(*exp, "io") {
			b, err := bench.LoadIOBaseline(*baseline)
			if err != nil {
				log.Fatal(err)
			}
			ioBase = b
		}
		pts, sw, err := bench.IOSweep(bench.Options{Policy: policy})
		if err != nil {
			log.Fatal(err)
		}
		bench.WriteIOSweep(os.Stdout, pts, sw)
		if *jsonOut {
			path := filepath.Join(*jsonDir, "BENCH_io.json")
			if err := bench.WriteIOBaseline(path, pts, sw); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		if ioBase != nil {
			violations := bench.CompareIOBaseline(ioBase, pts, sw, *tolerance)
			if len(violations) > 0 {
				for _, v := range violations {
					fmt.Fprintf(os.Stderr, "baseline breach: %s\n", v)
				}
				os.Exit(1)
			}
			fmt.Printf("baseline %s held (exact request/doorbell counts matched, cycles within %.0f%%) on all %d points\n",
				*baseline, *tolerance, len(pts))
		}
		fmt.Println()
	}
	if run("migrate") {
		any = true
		// Load the committed baseline before writing the fresh sweep:
		// with -json both use the BENCH_migrate.json name, and a
		// compare against a just-overwritten file would always pass.
		var migBase *bench.MigrateBaseline
		if *baseline != "" && strings.EqualFold(*exp, "migrate") {
			b, err := bench.LoadMigrateBaseline(*baseline)
			if err != nil {
				log.Fatal(err)
			}
			migBase = b
		}
		pts, err := bench.MigrateSweep(bench.Options{})
		if err != nil {
			log.Fatal(err)
		}
		bench.WriteMigrateSweep(os.Stdout, pts)
		if *jsonOut {
			path := filepath.Join(*jsonDir, "BENCH_migrate.json")
			if err := bench.WriteMigrateBaseline(path, pts); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		if migBase != nil {
			violations := bench.CompareMigrateBaseline(migBase, pts, *tolerance)
			if len(violations) > 0 {
				for _, v := range violations {
					fmt.Fprintf(os.Stderr, "baseline breach: %s\n", v)
				}
				os.Exit(1)
			}
			fmt.Printf("baseline %s held within %.0f%% on all %d points\n",
				*baseline, *tolerance, len(pts))
		}
		fmt.Println()
	}
	if run("chaos") {
		any = true
		opt := bench.Options{Policy: policy, MigrateFaults: *migrateFaults}
		var col *obs.Collector
		if *metrics {
			col = obs.New(1)
			opt.Collector = col
		}
		r, err := bench.ChaosCampaign(*seed, *episodes, opt)
		if err != nil {
			log.Fatal(err)
		}
		bench.WriteChaos(os.Stdout, r)
		if col != nil {
			path := filepath.Join(*metricsDir, "metrics-chaos.json")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := col.Registry.WriteJSON(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("wrote %s\n", path)
			bench.WriteTraceHealth(os.Stdout, "chaos", col)
		}
		fmt.Println()
	}
	if run("mc") {
		any = true
		// Load the committed baseline before writing the fresh suite:
		// with -json both use the BENCH_mc.json name, and a compare
		// against a just-overwritten file would always pass.
		var mcBase *mc.Baseline
		if *baseline != "" && strings.EqualFold(*exp, "mc") {
			b, err := mc.LoadBaseline(*baseline)
			if err != nil {
				log.Fatal(err)
			}
			mcBase = b
		}
		rows, err := mc.BenchSuite()
		if err != nil {
			log.Fatal(err)
		}
		mc.WriteBenchTable(os.Stdout, rows)
		if *jsonOut {
			path := filepath.Join(*jsonDir, "BENCH_mc.json")
			if err := mc.WriteBaseline(path, rows); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		if mcBase != nil {
			violations := mc.CompareBaseline(mcBase, rows)
			if len(violations) > 0 {
				for _, v := range violations {
					fmt.Fprintf(os.Stderr, "baseline breach: %s\n", v)
				}
				os.Exit(1)
			}
			fmt.Printf("baseline %s held exactly on all %d rows\n",
				*baseline, len(rows))
		}
		fmt.Println()
	}
	if run("divergence") {
		any = true
		// Load the committed baseline before writing the fresh report:
		// with -json both use the BENCH_divergence.json name, and a
		// compare against a just-overwritten file would always pass.
		var divBase *divergence.Report
		if *baseline != "" && strings.EqualFold(*exp, "divergence") {
			data, err := os.ReadFile(*baseline)
			if err != nil {
				log.Fatal(err)
			}
			b, err := divergence.LoadReport(data)
			if err != nil {
				log.Fatal(err)
			}
			divBase = b
		}
		rep, err := divergence.Run(divergence.Config{Seed: *seed, Ops: *divOps})
		if err != nil {
			log.Fatal(err)
		}
		if divBase != nil {
			// Carry the committed budget into the regenerated file so a
			// refresh does not silently drop the ceiling.
			rep.NativeTaxBudgetPct = divBase.NativeTaxBudgetPct
		}
		rep.WriteText(os.Stdout)
		if *jsonOut {
			path := filepath.Join(*jsonDir, "BENCH_divergence.json")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := rep.WriteJSON(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("wrote %s\n", path)
			mdPath := filepath.Join(*jsonDir, "divergence_report.md")
			mf, err := os.Create(mdPath)
			if err != nil {
				log.Fatal(err)
			}
			rep.WriteMarkdown(mf)
			mf.Close()
			fmt.Printf("wrote %s\n", mdPath)
		}
		if divBase != nil {
			violations := divergence.Compare(divBase, rep)
			if len(violations) > 0 {
				for _, v := range violations {
					fmt.Fprintf(os.Stderr, "baseline breach: %s\n", v)
				}
				os.Exit(1)
			}
			fmt.Printf("baseline %s held (exact counts matched, drift within %.0f%%, native tax %.2f%% <= budget %.2f%%)\n",
				*baseline, divBase.TolerancePct, rep.NativeTaxPct, divBase.NativeTaxBudgetPct)
		}
		fmt.Println()
	}
	if !any {
		log.Fatalf("unknown experiment %q", *exp)
	}
}
