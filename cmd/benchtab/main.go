// benchtab regenerates every table and figure of the paper's evaluation
// (§7): Table 1 and Table 2 (lmbench latencies across the six system
// configurations, UP and SMP), Figures 3 and 4 (relative application
// performance), the mode-switch timings of §7.4, and the §5.1.2
// frame-tracking ablation.
//
// Usage:
//
//	benchtab                 # everything
//	benchtab -exp table1     # one experiment: table1 table2 fig3 fig4
//	                         # switch ablation
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/obs"
)

func main() {
	exp := flag.String("exp", "all",
		"experiment to run: table1, table2, fig3, fig4, switch, ablation, paging, batching, emulation, addrspace, chaos, all")
	samples := flag.Int("samples", 10, "mode-switch samples")
	seed := flag.Int64("seed", 42, "chaos campaign seed")
	episodes := flag.Int("episodes", 16, "chaos campaign episodes")
	format := flag.String("format", "text", "output format for tables/figures: text or csv")
	metrics := flag.Bool("metrics", false,
		"collect telemetry and write per-configuration metric dumps (JSON)")
	metricsDir := flag.String("metricsdir", ".", "directory for -metrics dump files")
	flag.Parse()
	csv := *format == "csv"

	run := func(name string) bool {
		return *exp == "all" || strings.EqualFold(*exp, name)
	}
	any := false

	// collectorsFor returns per-configuration collectors (and a dump
	// function) when -metrics is on, else zero options.
	collectorsFor := func(expName string, ncpu int) (bench.Options, func()) {
		if !*metrics {
			return bench.Options{}, func() {}
		}
		cs := bench.NewCollectorSet(ncpu)
		return bench.Options{CollectorFor: cs.For}, func() {
			for _, key := range cs.Keys() {
				path := filepath.Join(*metricsDir,
					fmt.Sprintf("metrics-%s-%s.json", expName, key))
				f, err := os.Create(path)
				if err != nil {
					log.Fatal(err)
				}
				if err := cs.For(key).Registry.WriteJSON(f); err != nil {
					log.Fatal(err)
				}
				f.Close()
				fmt.Printf("wrote %s\n", path)
			}
		}
	}

	if run("table1") {
		any = true
		opt, dump := collectorsFor("table1", 1)
		t, err := bench.LmbenchTable(1, opt)
		if err != nil {
			log.Fatal(err)
		}
		if csv {
			bench.WriteTableCSV(os.Stdout, t)
		} else {
			bench.WriteTable(os.Stdout, t)
		}
		dump()
		fmt.Println()
	}
	if run("table2") {
		any = true
		opt, dump := collectorsFor("table2", 2)
		t, err := bench.LmbenchTable(2, opt)
		if err != nil {
			log.Fatal(err)
		}
		if csv {
			bench.WriteTableCSV(os.Stdout, t)
		} else {
			bench.WriteTable(os.Stdout, t)
		}
		dump()
		fmt.Println()
	}
	if run("fig3") {
		any = true
		f, err := bench.AppFigure(1, bench.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if csv {
			bench.WriteFigureCSV(os.Stdout, f)
		} else {
			bench.WriteFigure(os.Stdout, f)
		}
		fmt.Println()
	}
	if run("fig4") {
		any = true
		f, err := bench.AppFigure(2, bench.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if csv {
			bench.WriteFigureCSV(os.Stdout, f)
		} else {
			bench.WriteFigure(os.Stdout, f)
		}
		fmt.Println()
	}
	if run("switch") {
		any = true
		opt := bench.Options{}
		var col *obs.Collector
		if *metrics {
			col = obs.New(1)
			opt.Collector = col
		}
		r, err := bench.ModeSwitchBenchOpts(*samples, core.TrackRecompute, opt)
		if err != nil {
			log.Fatal(err)
		}
		bench.WriteSwitch(os.Stdout, r)
		if col != nil {
			fmt.Println()
			bench.WritePhaseBreakdown(os.Stdout, col, hw.DefaultHz)
			path := filepath.Join(*metricsDir, "metrics-switch-M-N.json")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := col.Registry.WriteJSON(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("wrote %s\n", path)
		}
		fmt.Println()
	}
	if run("paging") {
		any = true
		r, err := bench.PagingAblation()
		if err != nil {
			log.Fatal(err)
		}
		bench.WritePagingAblation(os.Stdout, r)
		fmt.Println()
	}
	if run("ablation") {
		any = true
		a, err := bench.TrackingAblation()
		if err != nil {
			log.Fatal(err)
		}
		bench.WriteAblation(os.Stdout, a)
		fmt.Println()
	}
	if run("batching") {
		any = true
		r, err := bench.BatchingAblation()
		if err != nil {
			log.Fatal(err)
		}
		bench.WriteBatchingAblation(os.Stdout, r)
		fmt.Println()
	}
	if run("emulation") {
		any = true
		r, err := bench.EmulationAblation()
		if err != nil {
			log.Fatal(err)
		}
		bench.WriteEmulationAblation(os.Stdout, r)
		fmt.Println()
	}
	if run("addrspace") {
		any = true
		r, err := bench.AddrSpaceAblation()
		if err != nil {
			log.Fatal(err)
		}
		bench.WriteAddrSpaceAblation(os.Stdout, r)
		fmt.Println()
	}
	if run("chaos") {
		any = true
		opt := bench.Options{}
		var col *obs.Collector
		if *metrics {
			col = obs.New(1)
			opt.Collector = col
		}
		r, err := bench.ChaosCampaign(*seed, *episodes, opt)
		if err != nil {
			log.Fatal(err)
		}
		bench.WriteChaos(os.Stdout, r)
		if col != nil {
			path := filepath.Join(*metricsDir, "metrics-chaos.json")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := col.Registry.WriteJSON(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("wrote %s\n", path)
		}
		fmt.Println()
	}
	if !any {
		log.Fatalf("unknown experiment %q", *exp)
	}
}
