// benchtab regenerates every table and figure of the paper's evaluation
// (§7): Table 1 and Table 2 (lmbench latencies across the six system
// configurations, UP and SMP), Figures 3 and 4 (relative application
// performance), the mode-switch timings of §7.4, and the §5.1.2
// frame-tracking ablation.
//
// Usage:
//
//	benchtab                 # everything
//	benchtab -exp table1     # one experiment: table1 table2 fig3 fig4
//	                         # switch ablation
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	exp := flag.String("exp", "all",
		"experiment to run: table1, table2, fig3, fig4, switch, ablation, paging, batching, emulation, addrspace, all")
	samples := flag.Int("samples", 10, "mode-switch samples")
	format := flag.String("format", "text", "output format for tables/figures: text or csv")
	flag.Parse()
	csv := *format == "csv"

	run := func(name string) bool {
		return *exp == "all" || strings.EqualFold(*exp, name)
	}
	any := false

	if run("table1") {
		any = true
		t, err := bench.LmbenchTable(1, bench.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if csv {
			bench.WriteTableCSV(os.Stdout, t)
		} else {
			bench.WriteTable(os.Stdout, t)
		}
		fmt.Println()
	}
	if run("table2") {
		any = true
		t, err := bench.LmbenchTable(2, bench.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if csv {
			bench.WriteTableCSV(os.Stdout, t)
		} else {
			bench.WriteTable(os.Stdout, t)
		}
		fmt.Println()
	}
	if run("fig3") {
		any = true
		f, err := bench.AppFigure(1, bench.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if csv {
			bench.WriteFigureCSV(os.Stdout, f)
		} else {
			bench.WriteFigure(os.Stdout, f)
		}
		fmt.Println()
	}
	if run("fig4") {
		any = true
		f, err := bench.AppFigure(2, bench.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if csv {
			bench.WriteFigureCSV(os.Stdout, f)
		} else {
			bench.WriteFigure(os.Stdout, f)
		}
		fmt.Println()
	}
	if run("switch") {
		any = true
		r, err := bench.ModeSwitchBench(*samples, core.TrackRecompute)
		if err != nil {
			log.Fatal(err)
		}
		bench.WriteSwitch(os.Stdout, r)
		fmt.Println()
	}
	if run("paging") {
		any = true
		r, err := bench.PagingAblation()
		if err != nil {
			log.Fatal(err)
		}
		bench.WritePagingAblation(os.Stdout, r)
		fmt.Println()
	}
	if run("ablation") {
		any = true
		a, err := bench.TrackingAblation()
		if err != nil {
			log.Fatal(err)
		}
		bench.WriteAblation(os.Stdout, a)
		fmt.Println()
	}
	if run("batching") {
		any = true
		r, err := bench.BatchingAblation()
		if err != nil {
			log.Fatal(err)
		}
		bench.WriteBatchingAblation(os.Stdout, r)
		fmt.Println()
	}
	if run("emulation") {
		any = true
		r, err := bench.EmulationAblation()
		if err != nil {
			log.Fatal(err)
		}
		bench.WriteEmulationAblation(os.Stdout, r)
		fmt.Println()
	}
	if run("addrspace") {
		any = true
		r, err := bench.AddrSpaceAblation()
		if err != nil {
			log.Fatal(err)
		}
		bench.WriteAddrSpaceAblation(os.Stdout, r)
		fmt.Println()
	}
	if !any {
		log.Fatalf("unknown experiment %q", *exp)
	}
}
