package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
)

type eventsOpts struct {
	nodes    int
	batch    int
	deadline int
	action   string
	policy   core.TrackingPolicy

	kind    string // filter: event kind name ("" = all)
	node    int    // filter: node ID (-1 = fleet-level, -2 = all)
	last    int    // keep only the newest N after filtering (0 = all)
	jsonOut bool
}

// eventsCmd drives a fleet through one rolling-maintenance wave and
// dumps the flight recorder: every mode transition, admission decision,
// wave phase, heal outcome, and migration verdict the bounded event log
// retained, with drop accounting.
func eventsCmd(o eventsOpts) {
	action, err := fleet.ParseAction(o.action)
	if err != nil {
		log.Fatal(err)
	}
	var kindFilter obs.EventKind
	if o.kind != "" {
		k, err := obs.ParseEventKind(o.kind)
		if err != nil {
			log.Fatal(err)
		}
		kindFilter = k
	}

	col := obs.New(1)
	fc, err := fleet.New(fleet.Config{
		Nodes:     o.nodes,
		Node:      fleet.NodeConfig{Policy: o.policy, Pages: 32},
		Standby:   action == fleet.ActionMigrate,
		Collector: col,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fc.RunWave(fleet.WaveConfig{
		Action:        action,
		BatchSize:     o.batch,
		DeadlineTicks: o.deadline,
	}); err != nil {
		// The flight recorder is most interesting exactly when the wave
		// failed; dump what it captured either way.
		fmt.Fprintf(os.Stderr, "wave: %v\n", err)
	}

	evs := col.Events.Snapshot()
	filtered := make([]obs.Event, 0, len(evs))
	for _, e := range evs {
		if kindFilter != 0 && e.Kind != kindFilter {
			continue
		}
		if o.node != -2 && e.Node != int32(o.node) {
			continue
		}
		filtered = append(filtered, e)
	}
	if o.last > 0 && len(filtered) > o.last {
		filtered = filtered[len(filtered)-o.last:]
	}

	if o.jsonOut {
		out := struct {
			Events  []obs.Event `json:"events"`
			Total   uint64      `json:"total"`
			Dropped uint64      `json:"dropped"`
		}{filtered, col.Events.Total(), col.Events.Dropped()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("%6s %8s %6s %-18s %12s %12s\n", "seq", "tick", "node", "kind", "a", "b")
	for _, e := range filtered {
		node := fmt.Sprint(e.Node)
		if e.Node < 0 {
			node = "fleet"
		}
		fmt.Printf("%6d %8d %6s %-18s %12d %12d\n", e.Seq, e.TS, node, e.Kind, e.A, e.B)
	}
	fmt.Printf("%d shown of %d retained (%d recorded, %d dropped by ring wrap)\n",
		len(filtered), len(evs), col.Events.Total(), col.Events.Dropped())
}
