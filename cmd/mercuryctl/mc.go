package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"repro/internal/mc"
	"repro/internal/obs"
)

// mcOpts carries the `mercuryctl mc` flags.
type mcOpts struct {
	cpus      int
	workers   int
	ops       int
	switches  int
	deferrals int
	depth     int
	bug       string
	noJournal bool
	dpor      bool
	trace     bool
	jsonOut   bool
	expect    string
}

// mcJSON is the -json output shape: the exploration result plus the
// counterexample both as flight-recorder records and as strings.
type mcJSON struct {
	*mc.Result
	Trace  []string    `json:"trace,omitempty"`
	Events []obs.Event `json:"events,omitempty"`
}

// mcCmd runs the mode-switch protocol model checker from the command
// line. Exit status: 0 when the verdict matches -expect (default
// "none": a clean, complete exploration), 1 otherwise — so CI can
// assert both the race-free pass and the seeded-bug rediscoveries.
func mcCmd(o mcOpts) {
	bug, err := mc.ParseBug(o.bug)
	if err != nil {
		log.Fatal(err)
	}
	cfg := mc.Config{
		CPUs:         o.cpus,
		Workers:      o.workers,
		OpsPerWorker: o.ops,
		Switches:     o.switches,
		MaxDeferrals: o.deferrals,
		Journal:      !o.noJournal,
		Bug:          bug,
	}
	res, err := mc.Run(cfg, mc.Options{MaxDepth: o.depth, DPOR: o.dpor})
	if err != nil {
		log.Fatal(err)
	}

	// Render the counterexample through the flight recorder — the same
	// event-log machinery production systems are inspected with — and
	// prove it replays before showing it.
	var events []obs.Event
	if res.Violation != mc.VioNone && len(res.Trace) > 0 {
		elog := obs.NewEventLog(len(res.Trace) + 1)
		mc.RecordTrace(elog, res)
		events = elog.Snapshot()
		replayed, err := mc.Replay(cfg, res.Trace)
		if err != nil {
			log.Fatalf("counterexample does not replay: %v", err)
		}
		if replayed != res.Violation {
			log.Fatalf("replay produced %s, checker reported %s", replayed, res.Violation)
		}
	}

	if o.jsonOut {
		out := mcJSON{Result: res, Events: events}
		for _, a := range res.Trace {
			out.Trace = append(out.Trace, a.String())
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
	} else {
		dporTag := "off"
		if o.dpor {
			dporTag = "on"
		}
		fmt.Printf("mc: cpus=%d workers=%d ops=%d switches=%d deferrals=%d journal=%v bug=%s dpor=%s\n",
			cfg.CPUs, cfg.Workers, cfg.OpsPerWorker, cfg.Switches,
			cfg.MaxDeferrals, cfg.Journal, cfg.Bug, dporTag)
		if res.Violation == mc.VioNone {
			scope := fmt.Sprintf("bounded at depth %d", res.BoundUsed)
			if res.Complete {
				scope = "state graph closed"
			}
			fmt.Printf("verdict: race-free (%s: %d states, %d transitions", scope,
				res.States, res.Transitions)
			if res.SleepSkips > 0 {
				fmt.Printf(", %d pruned", res.SleepSkips)
			}
			fmt.Printf(", %.2f ms)\n", res.ElapsedMS)
		} else {
			fmt.Printf("verdict: VIOLATION %s (%d states explored, minimal counterexample %d steps, %.2f ms)\n",
				res.Violation, res.States, res.TraceLen, res.ElapsedMS)
			fmt.Println("replay: counterexample verified against the reduced machine")
			if o.trace {
				fmt.Println()
				for _, e := range events {
					if e.Kind == obs.EvMCStep {
						a, err := mc.DecodeStep(e)
						if err != nil {
							log.Fatal(err)
						}
						fmt.Printf("  event seq=%-3d node=%-3d %s %s\n",
							e.Seq, e.Node, e.Kind, a)
					} else {
						fmt.Printf("  event seq=%-3d node=%-3d %s %s\n",
							e.Seq, e.Node, e.Kind, mc.Violation(e.A))
					}
				}
				fmt.Println()
				fmt.Print(mc.FormatTrace(cfg, res.Trace, res.Violation))
			}
		}
	}

	if res.Violation.String() != o.expect {
		fmt.Fprintf(os.Stderr, "mc: verdict %s does not match expected %s\n",
			res.Violation, o.expect)
		os.Exit(1)
	}
}
