package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/hw"
	"repro/internal/workloads"
)

type ioOpts struct {
	queues   int       // multi-queue ring count (M-V)
	depth    int       // ring depth per queue, slots
	requests int       // open-loop requests to issue
	arrival  hw.Cycles // mean inter-arrival gap, cycles
	writes   int       // write percentage of the mix
	seed     int64     // arrival schedule / mix seed
	noswitch bool      // skip the mid-run V->N switch
}

// ioCmd demonstrates the split-device I/O datapath: an open-loop
// request stream served natively (M-N), then through the multi-queue
// rings with coalesced doorbells (M-V), then through M-V again with a
// mode switch fired while requests are in flight — the tail-latency
// story of leaving virtual mode under load.
func ioCmd(o ioOpts) {
	if o.queues < 1 || o.depth < 2 || o.requests < 1 {
		log.Fatalf("io: need queues >= 1, depth >= 2, requests >= 1")
	}
	base := workloads.IOConfig{
		Queues: o.queues, Depth: o.depth, Requests: o.requests,
		MeanArrival: o.arrival, ReadPct: 100 - o.writes, Seed: o.seed,
	}
	hz := hw.DefaultHz
	us := func(cyc hw.Cycles) float64 { return float64(cyc) / float64(hz) * 1e6 }

	nat, err := workloads.RunIOServer(base)
	must(err)
	fmt.Printf("M-N native: %d requests, p50=%.1f p99=%.1f p999=%.1f us\n",
		nat.Completed, us(nat.P50), us(nat.P99), us(nat.P999))

	vcfg := base
	vcfg.Virtual = true
	virt, err := workloads.RunIOServer(vcfg)
	must(err)
	fmt.Printf("M-V split:  %d requests over %d queue(s) x %d slots, p50=%.1f p99=%.1f p999=%.1f us\n",
		virt.Completed, o.queues, o.depth, us(virt.P50), us(virt.P99), us(virt.P999))
	fmt.Printf("  doorbells: %d slots moved for %d kicks (+%d forced) — %.1f slots/doorbell\n",
		virt.ReqSlots+virt.RespSlots, virt.ReqKicks+virt.RespKicks,
		virt.ForcedKicks, virt.SuppressionRatio)
	fmt.Printf("  backend: %d doorbell upcalls, %d bursts served as a scheduled domain\n",
		virt.BackendEvents, virt.BackendBursts)

	if o.noswitch {
		return
	}
	scfg := vcfg
	scfg.SwitchMid = true
	sw, err := workloads.RunIOServer(scfg)
	must(err)
	fmt.Printf("M-V with V->N switch at 50%% completion:\n")
	fmt.Printf("  switch window %.1f us; %d in-flight requests crossed it: p50=%.1f p99=%.1f p999=%.1f us\n",
		us(sw.SwitchCyc), sw.WindowRequests,
		us(sw.WindowP50), us(sw.WindowP99), us(sw.WindowP999))
	fmt.Printf("  exactly-once: %d submitted, %d completed, %d duplicated, %d lost; final mode %s\n",
		sw.Submitted, sw.Completed, sw.Duplicates, sw.Lost, sw.FinalMode)
	if sw.Duplicates != 0 || sw.Lost != 0 || sw.Completed != sw.Submitted {
		fmt.Fprintf(os.Stderr, "exactly-once violated\n")
		os.Exit(1)
	}
}
