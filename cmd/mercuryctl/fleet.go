package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
)

type fleetOpts struct {
	nodes      int
	batch      int
	arrival    int
	deadline   int
	maxVirtual int
	action     string
	load       bool
	policy     core.TrackingPolicy

	interval int  // top: ticks between snapshots
	jsonOut  bool // top: emit snapshots as JSON lines
}

// fleetCmd boots a fleet of Mercury nodes, takes it through one
// rolling-maintenance wave, and prints the per-node pipeline costs,
// the admission outcomes, and the fleet telemetry.
func fleetCmd(o fleetOpts) {
	if o.action == "top" {
		fleetTop(o)
		return
	}
	action, err := fleet.ParseAction(o.action)
	if err != nil {
		log.Fatal(err)
	}
	col := obs.New(1)
	fc, err := fleet.New(fleet.Config{
		Nodes: o.nodes,
		Node: fleet.NodeConfig{
			Policy:  o.policy,
			Pages:   32,
			RunLoad: o.load,
		},
		MaxVirtual: o.maxVirtual,
		Standby:    action == fleet.ActionMigrate,
		Collector:  col,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := fc.Config()
	fmt.Printf("fleet: %d nodes, MaxVirtual=%d (tax %d%%, max capacity loss %d%%), action=%s\n",
		cfg.Nodes, cfg.MaxVirtual, fleet.DefaultVirtualTaxPct,
		fleet.DefaultMaxCapacityLossPct, action)
	if o.load {
		for _, n := range fc.Nodes {
			fmt.Printf("  %s: dbench %.1f MB/s\n", n.Name, n.Load)
		}
	}

	rep, err := fc.RunWave(fleet.WaveConfig{
		Action:         action,
		BatchSize:      o.batch,
		ArrivalPerTick: o.arrival,
		DeadlineTicks:  o.deadline,
	})
	if err != nil {
		// The report still describes the aborted wave.
		fmt.Fprintf(os.Stderr, "wave aborted: %v\n", err)
	}
	if rep == nil {
		os.Exit(1)
	}

	us := fc.Nodes[0].M.Micros
	fmt.Printf("\nper-node pipeline (%s wave, batch=%d):\n", rep.Action, rep.BatchSize)
	fmt.Printf("%7s %6s %9s %9s %11s %11s %11s %6s\n",
		"node", "batch", "enqueued", "granted", "attach(us)", "action(us)", "detach(us)", "clean")
	for _, nr := range rep.PerNode {
		fmt.Printf("%7d %6d %9d %9d %11.2f %11.2f %11.2f %6v\n",
			nr.Node, nr.Batch, nr.EnqueuedAt, nr.GrantedAt,
			us(nr.AttachCyc), us(nr.ActionCyc), us(nr.DetachCyc), nr.HealedClean)
	}

	a := rep.Admission
	fmt.Printf("\nwave: completed=%d expired=%d canceled=%d ticks=%d aborted=%v\n",
		rep.Completed, rep.Expired, rep.Canceled, rep.Ticks, rep.Aborted)
	fmt.Printf("admission: submitted=%d granted=%d rejected=%d expired=%d max_in_use=%d/%d max_queue=%d\n",
		a.Submitted, a.Granted, a.Rejected, a.Expired, a.MaxInUse,
		cfg.MaxVirtual, a.MaxQueueDepth)
	fmt.Printf("mean latencies: attach=%.2fus action=%.2fus detach=%.2fus\n",
		us(rep.MeanAttachCyc), us(rep.MeanActionCyc), us(rep.MeanDetachCyc))

	fmt.Printf("\nfleet telemetry:\n")
	col.Registry.WriteProm(os.Stdout)
	if rep.Aborted {
		os.Exit(1)
	}
}

// fleetTop runs a checkpoint wave while sampling the fleet at a fixed
// tick cadence — the operator's `top` view: per-node mode, lifecycle
// state and deferral pressure, plus queue depth, slot usage and the p99
// switch-latency tails from the obs histograms.
func fleetTop(o fleetOpts) {
	col := obs.New(1)
	fc, err := fleet.New(fleet.Config{
		Nodes:      o.nodes,
		Node:       fleet.NodeConfig{Policy: o.policy, Pages: 32, RunLoad: o.load},
		MaxVirtual: o.maxVirtual,
		Collector:  col,
	})
	if err != nil {
		log.Fatal(err)
	}
	interval := o.interval
	if interval <= 0 {
		interval = 8
	}

	enc := json.NewEncoder(os.Stdout)
	emit := func(s fleet.FleetSnap, final bool) {
		if o.jsonOut {
			if err := enc.Encode(s); err != nil {
				log.Fatal(err)
			}
			return
		}
		states := map[string]int{}
		for _, n := range s.PerNode {
			states[n.State]++
		}
		fmt.Printf("tick %5d  virtual %d/%d  queue %d  slots %d/%d  maintained %d  p99 attach %.0f cyc  p99 detach %.0f cyc  events %d (%d dropped)\n",
			s.Tick, s.Virtual, s.Nodes, s.QueueDepth, s.SlotsInUse, s.SlotsMax,
			s.Maintained, s.P99AttachCyc, s.P99DetachCyc, s.EventsTotal, s.EventsDropped)
		fmt.Printf("           states:")
		for _, st := range []string{"serving", "draining", "maintaining", "healed", "failed"} {
			if states[st] > 0 {
				fmt.Printf(" %s=%d", st, states[st])
			}
		}
		fmt.Println()
		if final {
			fmt.Printf("\n%6s %-8s %-16s %-12s %10s %8s %8s\n",
				"node", "name", "mode", "state", "deferrals", "hosted", "load")
			for _, n := range s.PerNode {
				fmt.Printf("%6d %-8s %-16s %-12s %10d %8d %8.1f\n",
					n.ID, n.Name, n.Mode, n.State, n.Deferrals, n.Hosted, n.Load)
			}
		}
	}

	fc.OnTick = func(now fleet.Tick) {
		if int(now)%interval == 0 {
			emit(fc.Snapshot(), false)
		}
	}
	rep, err := fc.RunWave(fleet.WaveConfig{
		Action:         fleet.ActionCheckpoint,
		BatchSize:      o.batch,
		ArrivalPerTick: o.arrival,
		DeadlineTicks:  o.deadline,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "wave: %v\n", err)
	}
	emit(fc.Snapshot(), true)
	if rep == nil || rep.Aborted {
		os.Exit(1)
	}
}
