package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
)

type fleetOpts struct {
	nodes      int
	batch      int
	arrival    int
	deadline   int
	maxVirtual int
	action     string
	load       bool
	policy     core.TrackingPolicy
}

// fleetCmd boots a fleet of Mercury nodes, takes it through one
// rolling-maintenance wave, and prints the per-node pipeline costs,
// the admission outcomes, and the fleet telemetry.
func fleetCmd(o fleetOpts) {
	action, err := fleet.ParseAction(o.action)
	if err != nil {
		log.Fatal(err)
	}
	col := obs.New(1)
	fc, err := fleet.New(fleet.Config{
		Nodes: o.nodes,
		Node: fleet.NodeConfig{
			Policy:  o.policy,
			Pages:   32,
			RunLoad: o.load,
		},
		MaxVirtual: o.maxVirtual,
		Standby:    action == fleet.ActionMigrate,
		Collector:  col,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := fc.Config()
	fmt.Printf("fleet: %d nodes, MaxVirtual=%d (tax %d%%, max capacity loss %d%%), action=%s\n",
		cfg.Nodes, cfg.MaxVirtual, fleet.DefaultVirtualTaxPct,
		fleet.DefaultMaxCapacityLossPct, action)
	if o.load {
		for _, n := range fc.Nodes {
			fmt.Printf("  %s: dbench %.1f MB/s\n", n.Name, n.Load)
		}
	}

	rep, err := fc.RunWave(fleet.WaveConfig{
		Action:         action,
		BatchSize:      o.batch,
		ArrivalPerTick: o.arrival,
		DeadlineTicks:  o.deadline,
	})
	if err != nil {
		// The report still describes the aborted wave.
		fmt.Fprintf(os.Stderr, "wave aborted: %v\n", err)
	}
	if rep == nil {
		os.Exit(1)
	}

	us := fc.Nodes[0].M.Micros
	fmt.Printf("\nper-node pipeline (%s wave, batch=%d):\n", rep.Action, rep.BatchSize)
	fmt.Printf("%7s %6s %9s %9s %11s %11s %11s %6s\n",
		"node", "batch", "enqueued", "granted", "attach(us)", "action(us)", "detach(us)", "clean")
	for _, nr := range rep.PerNode {
		fmt.Printf("%7d %6d %9d %9d %11.2f %11.2f %11.2f %6v\n",
			nr.Node, nr.Batch, nr.EnqueuedAt, nr.GrantedAt,
			us(nr.AttachCyc), us(nr.ActionCyc), us(nr.DetachCyc), nr.HealedClean)
	}

	a := rep.Admission
	fmt.Printf("\nwave: completed=%d expired=%d canceled=%d ticks=%d aborted=%v\n",
		rep.Completed, rep.Expired, rep.Canceled, rep.Ticks, rep.Aborted)
	fmt.Printf("admission: submitted=%d granted=%d rejected=%d expired=%d max_in_use=%d/%d max_queue=%d\n",
		a.Submitted, a.Granted, a.Rejected, a.Expired, a.MaxInUse,
		cfg.MaxVirtual, a.MaxQueueDepth)
	fmt.Printf("mean latencies: attach=%.2fus action=%.2fus detach=%.2fus\n",
		us(rep.MeanAttachCyc), us(rep.MeanActionCyc), us(rep.MeanDetachCyc))

	fmt.Printf("\nfleet telemetry:\n")
	col.Registry.WriteProm(os.Stdout)
	if rep.Aborted {
		os.Exit(1)
	}
}
