package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/fork"
	"repro/internal/hw"
	"repro/internal/migrate"
	"repro/internal/xen"
)

type forkOpts struct {
	clones int // domains to fork from the one base image
	pages  int // live data pages in the template domain
	dirty  int // frames each clone dirties before its delta checkpoint
}

// forkCmd demonstrates the snapshot cache: warm one template domain,
// checkpoint it into a content-addressed base image, fork a fleet of
// CoW clones from it, dirty each clone a little, and delta-checkpoint
// them all — then report what the cache actually stored.
func forkCmd(o forkOpts) {
	if o.clones < 1 || o.pages < 1 || o.dirty < 0 || o.dirty > o.pages {
		log.Fatalf("fork: need clones >= 1, pages >= 1, 0 <= dirty <= pages")
	}
	span := hw.PFN(o.pages) + 16
	frames := uint64(4096) + 1024 + uint64(span)*uint64(o.clones+1) + 512
	m := hw.NewMachine(hw.Config{Name: "fork-demo", MemBytes: frames * hw.PageSize, NumCPUs: 1})
	v, err := xen.Boot(m)
	if err != nil {
		log.Fatal(err)
	}
	c := m.BootCPU()
	v.Activate(c)
	dom0, err := v.CreateDomain("dom0", 1024, true)
	if err != nil {
		log.Fatal(err)
	}
	v.SetCurrent(c, dom0)

	origin, err := v.CreateDomain("template", span, false)
	if err != nil {
		log.Fatal(err)
	}
	lo, _ := origin.Frames.Range()
	for i := 0; i < o.pages; i++ {
		m.Mem.WriteWord((lo + hw.PFN(i)).Addr(), uint32(0xBE000000)|uint32(i))
	}
	root, ptf := lo+hw.PFN(o.pages), lo+hw.PFN(o.pages)+1
	hw.WritePTE(m.Mem, root, 3, hw.MakePTE(ptf, hw.PTEPresent|hw.PTEWrite))
	hw.WritePTE(m.Mem, ptf, 7, hw.MakePTE(lo, hw.PTEPresent|hw.PTEWrite|hw.PTEUser))
	origin.VCPU0().SetCR3(root)

	img, err := migrate.Checkpoint(c, v, dom0, origin)
	if err != nil {
		log.Fatal(err)
	}
	img.PinnedRoots = []hw.PFN{root}
	store := fork.NewStore()
	base, err := fork.NewBase(store, img)
	if err != nil {
		log.Fatal(err)
	}
	cb := &fork.CloneBase{Store: store, Img: base}
	fmt.Printf("template %q: %d pages live, image %d frames, identity %s\n",
		img.Name, o.pages, store.Frames(), base.IdentityHash())

	css := make([]*fork.CloneState, 0, o.clones)
	overlays := make([]*fork.Overlay, 0, o.clones)
	t0 := c.Now()
	for i := 0; i < o.clones; i++ {
		cs, err := fork.Clone(c, v, dom0, cb, fmt.Sprintf("clone-%d", i))
		if err != nil {
			log.Fatal(err)
		}
		css = append(css, cs)
	}
	cloneCyc := uint64(c.Now()-t0) / uint64(o.clones)
	fmt.Printf("forked %d clones: %d cycles each (full copy would be %d), %d CoW mappings live\n",
		o.clones, cloneCyc, uint64(base.Span())*900, m.Mem.SharedFrames())

	for i, cs := range css {
		// The same dirt on every clone: the cache stores it once.
		for j := 0; j < o.dirty; j++ {
			m.Mem.WriteWord((cs.Lo + hw.PFN(j)).Addr(), uint32(0xD0000000)|uint32(j))
		}
		o2, err := fork.CheckpointDelta(c, v, dom0, cs)
		if err != nil {
			log.Fatalf("clone %d delta: %v", i, err)
		}
		overlays = append(overlays, o2)
	}
	deltaTotal := 0
	for _, o2 := range overlays {
		deltaTotal += o2.DeltaFrames()
	}
	fmt.Printf("delta-checkpointed all clones: %d frames of dirt total, store now %d frames / %d bytes (dedup %.1fx)\n",
		deltaTotal, store.Frames(), store.BytesStored(), store.DedupRatio())
	logical := base.Span() * hw.PFN(o.clones+1)
	fmt.Printf("logical fleet footprint %d frames; cache holds %.1f%% of that\n",
		logical, float64(store.Frames())/float64(logical)*100)

	holders := []fork.RefHolder{base}
	for _, cs := range css {
		holders = append(holders, cs)
	}
	for _, o2 := range overlays {
		holders = append(holders, o2)
	}
	if err := fork.AuditRefs(store, holders...); err != nil {
		fmt.Fprintf(os.Stderr, "refcount audit FAILED: %v\n", err)
		os.Exit(1)
	}
	if err := store.Verify(); err != nil {
		fmt.Fprintf(os.Stderr, "content verification FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("refcount audit and content verification clean\n")

	for _, cs := range css {
		if err := fork.DestroyClone(c, v, dom0, cs); err != nil {
			log.Fatal(err)
		}
	}
	for _, o2 := range overlays {
		if err := o2.Release(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("destroyed the fleet: store back to %d frames, %d refs (base image retained)\n",
		store.Frames(), store.Refs())
}
