// mercuryctl drives a simulated Mercury system through its lifecycle
// from the command line: boot, run a workload, switch modes, host a
// guest, heal, update — printing what the engine does at each step.
//
// Usage:
//
//	mercuryctl -demo lifecycle   # boot, attach, host, detach
//	mercuryctl -demo stress      # repeated switches under process load
//	mercuryctl -demo scenarios   # healing + live update episodes
//	mercuryctl stats             # run a workload, print the metrics
//	                             # registry (Prometheus text format)
//	mercuryctl trace -o t.json   # record spans + the xentrace ring,
//	                             # export Chrome trace_event JSON
//	mercuryctl chaos -seed 42    # seeded fault-injection campaign:
//	                             # episode table + dependability report
//	mercuryctl fleet -nodes 50   # rolling-maintenance wave over a fleet
//	mercuryctl fleet -action top # periodic per-node fleet snapshot
//	mercuryctl events -kind admission-grant
//	                             # flight-recorder dump, filterable by
//	                             # kind/node, text or -json
//	mercuryctl fork -clones 1000 # fork a fleet of CoW clones from one
//	                             # snapshot, report cache dedup + cost
//	mercuryctl io -queues 4      # split-device I/O datapath demo: M-N vs
//	                             # M-V multi-queue rings, then a mode
//	                             # switch under load with tail latency
//	mercuryctl mc                # model-check the mode-switch protocol:
//	                             # exhaustive interleaving exploration
//	mercuryctl mc -seed-bug toctou -expect commit-with-refcount-held -trace
//	                             # rediscover a seeded regression and
//	                             # replay its minimal counterexample
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/hw"
	"repro/internal/obs"
)

func main() {
	demo := flag.String("demo", "lifecycle", "demo to run: lifecycle, stress, scenarios, stats, trace")
	policy := flag.String("tracking", "recompute", "frame tracking: recompute or active")
	ncpu := flag.Int("cpus", 1, "number of CPUs")
	flag.Parse()

	// Subcommand flags come after the subcommand word
	// (mercuryctl trace -o trace.json), so they get their own set.
	sub := flag.Arg(0)
	subFlags := flag.NewFlagSet(sub, flag.ExitOnError)
	out := subFlags.String("o", "trace.json", "output file for the trace subcommand")
	seed := subFlags.Int64("seed", 42, "chaos campaign seed")
	episodes := subFlags.Int("episodes", 16, "chaos campaign episodes")
	migrateFaults := subFlags.Bool("migrate", false,
		"chaos: add a standby node and the migration fault classes")
	fleetNodes := subFlags.Int("nodes", 4, "fleet: number of Mercury nodes")
	fleetBatch := subFlags.Int("batch", 1, "fleet: nodes maintained per batch")
	fleetArrival := subFlags.Int("arrival", 0,
		"fleet: admission requests submitted per tick (0 = whole batch at once)")
	fleetDeadline := subFlags.Int("deadline", 0,
		"fleet: per-request admission deadline in ticks (0 = none)")
	fleetMaxVirtual := subFlags.Int("maxvirtual", 0,
		"fleet: virtual-mode concurrency bound (0 = derive from the capacity model)")
	fleetAction := subFlags.String("action", "checkpoint",
		"fleet: maintenance action (checkpoint or migrate), or top for the periodic fleet view")
	fleetLoad := subFlags.Bool("load", false,
		"fleet: run a dbench load on each node at boot")
	fleetInterval := subFlags.Int("interval", 8,
		"fleet -action top: ticks between snapshots")
	jsonOut := subFlags.Bool("json", false,
		"fleet -action top / events / mc: emit JSON instead of text")
	eventsKind := subFlags.String("kind", "",
		"events: only show this event kind (e.g. mode-switch, admission-grant)")
	eventsNode := subFlags.Int("node", -2,
		"events: only show this node's events (-1 = fleet-level, -2 = all)")
	eventsLast := subFlags.Int("last", 0,
		"events: only show the newest N matching events (0 = all)")
	mcCPUs := subFlags.Int("cpus", 2, "mc: CPUs in the reduced machine (CPU 0 is the CP)")
	mcWorkers := subFlags.Int("workers", 2, "mc: concurrent VO operations")
	mcOps := subFlags.Int("ops", 2, "mc: enter/write/exit rounds per worker")
	mcSwitches := subFlags.Int("switches", 3, "mc: mode-switch requests to raise")
	mcDeferrals := subFlags.Int("deferrals", 2, "mc: retry budget (MaxDeferrals)")
	mcDepth := subFlags.Int("depth", 0, "mc: exploration depth bound (0 = default)")
	mcBug := subFlags.String("seed-bug", "none",
		"mc: seeded regression to plant (none, toctou, rendezvous)")
	mcNoJournal := subFlags.Bool("nojournal", false, "mc: disable the dirty-journal model")
	mcDPOR := subFlags.Bool("dpor", false, "mc: enable sleep-set partial-order pruning")
	mcTrace := subFlags.Bool("trace", false,
		"mc: replay the counterexample through the flight recorder, step by step")
	mcExpect := subFlags.String("expect", "none",
		"mc: expected verdict for the exit status (none or a violation name)")
	forkClones := subFlags.Int("clones", 64, "fork: domains to fork from one image")
	forkPages := subFlags.Int("pages", 128, "fork: live data pages in the template")
	forkDirty := subFlags.Int("dirty", 4, "fork: frames each clone dirties")
	ioQueues := subFlags.Int("queues", 2, "io: multi-queue ring count")
	ioDepth := subFlags.Int("iodepth", 64, "io: ring depth per queue, slots")
	ioRequests := subFlags.Int("requests", 2000, "io: open-loop requests to issue")
	ioArrival := subFlags.Int("ioarrival", 6000, "io: mean inter-arrival gap, cycles")
	ioWrites := subFlags.Int("writes", 50, "io: write percentage of the request mix")
	ioSeed := subFlags.Int64("ioseed", 42, "io: arrival schedule and mix seed")
	ioNoSwitch := subFlags.Bool("noswitch", false, "io: skip the mid-run V->N mode switch")
	if sub != "" {
		if err := subFlags.Parse(flag.Args()[1:]); err != nil {
			log.Fatal(err)
		}
	}

	pol := core.TrackRecompute
	if *policy == "active" {
		pol = core.TrackActive
	}

	if sub == "chaos" {
		// The campaign builds its own system: a small deferral budget
		// keeps starved-switch episodes to a few simulated ticks.
		chaosCmd(pol, *ncpu, *seed, *episodes, *migrateFaults)
		return
	}
	if sub == "fleet" {
		fleetCmd(fleetOpts{
			nodes:      *fleetNodes,
			batch:      *fleetBatch,
			arrival:    *fleetArrival,
			deadline:   *fleetDeadline,
			maxVirtual: *fleetMaxVirtual,
			action:     *fleetAction,
			load:       *fleetLoad,
			policy:     pol,
			interval:   *fleetInterval,
			jsonOut:    *jsonOut,
		})
		return
	}
	if sub == "fork" {
		forkCmd(forkOpts{
			clones: *forkClones,
			pages:  *forkPages,
			dirty:  *forkDirty,
		})
		return
	}
	if sub == "io" {
		ioCmd(ioOpts{
			queues:   *ioQueues,
			depth:    *ioDepth,
			requests: *ioRequests,
			arrival:  hw.Cycles(*ioArrival),
			writes:   *ioWrites,
			seed:     *ioSeed,
			noswitch: *ioNoSwitch,
		})
		return
	}
	if sub == "mc" {
		mcCmd(mcOpts{
			cpus:      *mcCPUs,
			workers:   *mcWorkers,
			ops:       *mcOps,
			switches:  *mcSwitches,
			deferrals: *mcDeferrals,
			depth:     *mcDepth,
			bug:       *mcBug,
			noJournal: *mcNoJournal,
			dpor:      *mcDPOR,
			trace:     *mcTrace,
			jsonOut:   *jsonOut,
			expect:    *mcExpect,
		})
		return
	}
	if sub == "events" {
		eventsCmd(eventsOpts{
			nodes:    *fleetNodes,
			batch:    *fleetBatch,
			deadline: *fleetDeadline,
			action:   *fleetAction,
			policy:   pol,
			kind:     *eventsKind,
			node:     *eventsNode,
			last:     *eventsLast,
			jsonOut:  *jsonOut,
		})
		return
	}
	var col *obs.Collector
	if sub != "" {
		// The collector must exist before boot so boot-time
		// instrumentation (the vo objects) registers into it.
		col = obs.New(*ncpu)
	}
	cfg := hw.DefaultConfig()
	cfg.NumCPUs = *ncpu
	machine := hw.NewMachine(cfg)
	if col != nil {
		machine.SetTelemetry(col)
	}
	mc, err := core.New(core.Config{Machine: machine, Policy: pol})
	if err != nil {
		log.Fatal(err)
	}

	if sub != "" {
		switch sub {
		case "stats":
			statsCmd(mc, col)
		case "trace":
			traceCmd(mc, col, *out)
		default:
			log.Fatalf("unknown subcommand %q (want stats, trace, chaos, fleet, events, fork, io or mc)", sub)
		}
		return
	}

	fmt.Printf("mercury: %s, tracking=%s, mode=%v\n", machine, *policy, mc.Mode())
	switch *demo {
	case "lifecycle":
		lifecycle(mc)
	case "stress":
		stress(mc)
	case "scenarios":
		scenarios(mc)
	case "stats":
		stats(mc)
	case "trace":
		trace(mc)
	default:
		log.Fatalf("unknown demo %q", *demo)
	}
}

// statsCmd runs the mixed workload with telemetry installed and prints
// the whole metrics registry in the Prometheus text format.
func statsCmd(mc *core.Mercury, col *obs.Collector) {
	runMixedWorkload(mc)
	col.Registry.WriteProm(os.Stdout)
}

// traceCmd records span traces plus the xentrace ring across an
// attach/host/detach cycle and writes a Chrome trace_event file
// (load it in chrome://tracing or Perfetto).
func traceCmd(mc *core.Mercury, col *obs.Collector, out string) {
	mc.VMM.Trace.Enable()
	c := mc.M.BootCPU()
	must(mc.SwitchSync(c, core.ModePartialVirtual))
	domU, err := mc.VMM.HypDomctlCreateFromFrames(c, mc.Dom, "guest", 256)
	must(err)
	must(mc.VMM.HypDomctlDestroy(c, mc.Dom, domU.ID))
	must(mc.SwitchSync(c, core.ModeNative))
	mc.VMM.Trace.Disable()

	spans := col.Tracer.Spans()
	evs, dropped := mc.VMM.Trace.SnapshotWithDropped()
	ext := make([]obs.ExtEvent, 0, len(evs))
	for _, e := range evs {
		ext = append(ext, obs.ExtEvent{
			TS: e.TSC, CPU: e.CPU, Name: "xentrace/" + e.Kind.String(),
			Args: map[string]any{"dom": int(e.Dom), "arg": e.Arg},
		})
	}
	f, err := os.Create(out)
	must(err)
	defer f.Close()
	must(obs.WriteChromeTrace(f, mc.M.Hz, spans, ext))
	fmt.Printf("wrote %s: %d spans, %d xentrace events (%d dropped by ring wrap, %d spans over budget)\n",
		out, len(spans), len(evs), dropped, col.Tracer.Dropped())
}

// chaosCmd runs the seeded fault-injection campaign and prints the
// episode table plus the dependability summary. Same seed, same
// machine: same episodes.
func chaosCmd(pol core.TrackingPolicy, ncpu int, seed int64, episodes int, migrateFaults bool) {
	col := obs.New(ncpu)
	cfg := hw.DefaultConfig()
	cfg.NumCPUs = ncpu
	machine := hw.NewMachine(cfg)
	machine.SetTelemetry(col)
	mc, err := core.New(core.Config{Machine: machine, Policy: pol, MaxDeferrals: 8})
	must(err)

	ccfg := chaos.DefaultConfig(seed)
	if episodes > 0 {
		ccfg.Episodes = episodes
	}
	if migrateFaults {
		sb, err := chaos.NewStandby(machine)
		must(err)
		ccfg.Standby = sb
	}
	rep, err := chaos.Run(mc, ccfg)
	must(err)
	fmt.Print(chaos.FormatEpisodes(rep))
	fmt.Println(rep.Summary())
	fmt.Printf("%d fault classes; switch stats: attaches=%d detaches=%d deferred=%d starved=%d failed=%d\n",
		rep.FaultClasses(), mc.Stats.Attaches.Load(), mc.Stats.Detaches.Load(),
		mc.Stats.Deferred.Load(), mc.Stats.StarvedSwitches.Load(),
		mc.Stats.FailedSwitches.Load())
}

// runMixedWorkload exercises file I/O, memory mapping, a mode-switch
// round trip and process lifecycle — enough to touch every instrumented
// subsystem.
func runMixedWorkload(mc *core.Mercury) {
	k := mc.K
	boot := mc.M.BootCPU()
	k.Spawn(boot, "mix", guest.DefaultImage("mix"), func(p *guest.Proc) {
		fd, _ := p.Creat("/data")
		p.Write(fd, 256<<10)
		p.Close(fd)
		base := p.Mmap(64, guest.ProtRead|guest.ProtWrite, false)
		p.Touch(base, 64, true)
		must(mc.SwitchSync(p.CPU(), core.ModePartialVirtual))
		p.Touch(base, 64, false)
		must(mc.SwitchSync(p.CPU(), core.ModeNative))
		p.Fork("child", func(cp *guest.Proc) { cp.Exit(0) })
		p.Wait()
	})
	k.Run(boot)
}

func lifecycle(mc *core.Mercury) {
	c := mc.M.BootCPU()
	us := func(n uint64) float64 { return mc.M.Micros(n) }

	must(mc.SwitchSync(c, core.ModePartialVirtual))
	fmt.Printf("attach:  %7.1f us  (mode=%v)\n", us(mc.Stats.LastAttachCyc.Load()), mc.Mode())

	domU, err := mc.VMM.HypDomctlCreateFromFrames(c, mc.Dom, "guest", 1024)
	must(err)
	fmt.Printf("hosting: dom%d (%s) with %d hosted domains total\n",
		domU.ID, domU.Name, len(mc.HostedDomains()))

	must(mc.VMM.HypDomctlDestroy(c, mc.Dom, domU.ID))
	must(mc.SwitchSync(c, core.ModeNative))
	fmt.Printf("detach:  %7.1f us  (mode=%v)\n", us(mc.Stats.LastDetachCyc.Load()), mc.Mode())
}

func stress(mc *core.Mercury) {
	k := mc.K
	boot := mc.M.BootCPU()
	k.Spawn(boot, "stress", guest.DefaultImage("stress"), func(p *guest.Proc) {
		base := p.Mmap(128, guest.ProtRead|guest.ProtWrite, true)
		p.Touch(base, 128, true)
		for i := 0; i < 20; i++ {
			must(mc.SwitchSync(p.CPU(), core.ModePartialVirtual))
			p.Touch(base, 128, false)
			must(mc.SwitchSync(p.CPU(), core.ModeNative))
			p.Touch(base, 128, true)
		}
	})
	k.Run(boot)
	fmt.Printf("20 round trips: attaches=%d detaches=%d deferred=%d fixed-frames=%d\n",
		mc.Stats.Attaches.Load(), mc.Stats.Detaches.Load(),
		mc.Stats.Deferred.Load(), mc.Stats.FixedFrames.Load())
	fmt.Printf("last attach %.1f us, last detach %.1f us\n",
		mc.M.Micros(mc.Stats.LastAttachCyc.Load()),
		mc.M.Micros(mc.Stats.LastDetachCyc.Load()))
}

func scenarios(mc *core.Mercury) {
	c := mc.M.BootCPU()

	mc.K.InjectRunqueueCorruption()
	rep, err := mc.SelfHeal(c, []core.Sensor{core.RunqueueSensor()}, core.RunqueueRepair())
	must(err)
	fmt.Printf("healing: sensor=%s healed=%v window=%.1f us\n",
		rep.Sensor, rep.Healed, rep.AttachedForUS)

	upd, err := mc.LiveUpdate(c, core.KernelPatch{
		Name:  "noop-refresh",
		Apply: func(k *guest.Kernel) error { return nil },
	})
	must(err)
	fmt.Printf("update:  patch=%s window=%.1f us native-before-and-after=%v\n",
		upd.Patch, upd.AttachedForUS, upd.WasNative && mc.Mode() == core.ModeNative)
}

func stats(mc *core.Mercury) {
	// Run a mixed workload, then dump every subsystem's counters.
	runMixedWorkload(mc)
	k := mc.K
	fmt.Printf("kernel: %d forks, %d ctx switches, %d syscalls, %d faults\n",
		k.Stats.Forks.Load(), k.Stats.CtxSwitches.Load(),
		k.Stats.Syscalls.Load(), k.Stats.PageFaults.Load())
	fmt.Printf("vmm: %d hypercalls, dom mmu updates %d\n",
		mc.VMM.Stats.Hypercalls.Load(), mc.Dom.Stats.MMUUpdates.Load())
	fmt.Printf("mercury: attaches=%d detaches=%d last attach %.1f us\n",
		mc.Stats.Attaches.Load(), mc.Stats.Detaches.Load(),
		mc.M.Micros(mc.Stats.LastAttachCyc.Load()))
}

func trace(mc *core.Mercury) {
	// Record every hypervisor decision across one attach/host/detach
	// cycle — the xentrace view of a mode switch.
	mc.VMM.Trace.Enable()
	c := mc.M.BootCPU()
	must(mc.SwitchSync(c, core.ModePartialVirtual))
	domU, err := mc.VMM.HypDomctlCreateFromFrames(c, mc.Dom, "guest", 256)
	must(err)
	must(mc.VMM.HypDomctlDestroy(c, mc.Dom, domU.ID))
	must(mc.SwitchSync(c, core.ModeNative))
	mc.VMM.Trace.Disable()
	evs := mc.VMM.Trace.Snapshot()
	fmt.Printf("%d events:\n", len(evs))
	show := evs
	if len(show) > 24 {
		show = show[:24]
	}
	for _, e := range show {
		fmt.Println("  " + e.String())
	}
	if len(evs) > len(show) {
		fmt.Printf("  ... %d more\n", len(evs)-len(show))
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
