package migrate

import (
	"fmt"
	"sort"

	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/xen"
)

// LiveConfig tunes the pre-copy algorithm.
type LiveConfig struct {
	// MaxRounds bounds the iterative pre-copy phase.
	MaxRounds int
	// StopThreshold: when a round leaves at most this many dirty pages,
	// stop-and-copy begins.
	StopThreshold int
	// Link carries the transfer (the Gigabit migration network).
	Link hw.LinkProps
	// Mutator, when set, is invoked between rounds to stand in for the
	// still-running guest dirtying memory.
	Mutator func(round int)
}

// DefaultLiveConfig mirrors Clark et al.'s settings at this scale.
func DefaultLiveConfig() LiveConfig {
	return LiveConfig{MaxRounds: 8, StopThreshold: 16, Link: hw.Gigabit()}
}

// LiveReport describes one completed live migration.
type LiveReport struct {
	Rounds       []RoundReport
	TotalPages   int
	DowntimeCyc  hw.Cycles // stop-and-copy duration (service interruption)
	TotalCyc     hw.Cycles
	DowntimeUSec float64
	TotalUSec    float64
}

// RoundReport is one pre-copy iteration.
type RoundReport struct {
	Round int
	Pages int
}

// Live migrates domain d from src to a fresh domain on dst using
// iterative pre-copy: round 0 transfers all touched memory while the
// guest keeps running (and dirtying pages, via cfg.Mutator); subsequent
// rounds transfer only what was dirtied; when the dirty set is small
// enough the domain pauses, the remainder and vcpu state move, and the
// domain resumes on the destination (§6.3: online maintenance migrates
// the execution environment to another machine).
func Live(c *hw.CPU, src *xen.VMM, caller, d *xen.Domain,
	dst *xen.VMM, dstCaller *xen.Domain, cfg LiveConfig) (*xen.Domain, *LiveReport, error) {

	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 8
	}
	if cfg.Link.BandwidthBps == 0 {
		cfg.Link = hw.Gigabit()
	}
	lo, hi := d.Frames.Range()
	into, err := dst.CreateDomain(d.Name+"-migrated", hi-lo, d.Privileged)
	if err != nil {
		return nil, nil, fmt.Errorf("migrate: allocating target domain: %w", err)
	}

	rep := &LiveReport{}
	start := c.Now()
	mem := src.M.Mem
	dLo, dHi := into.Frames.Range()
	delta := int64(dLo) - int64(lo)

	// Telemetry: gauges track the pre-copy convergence, the counter
	// totals wire traffic, and the histogram records downtimes.
	col := src.M.Telemetry()
	var roundsGauge, dirtyGauge *obs.Gauge
	var pagesSent *obs.Counter
	var downtimeCyc *obs.Histogram
	if col != nil {
		r := col.Registry
		roundsGauge = r.Gauge("migrate", "precopy_rounds")
		dirtyGauge = r.Gauge("migrate", "dirty_pages_last_round")
		pagesSent = r.Counter("migrate", "pages_sent_total")
		downtimeCyc = r.Histogram("migrate", "downtime_cycles")
	}
	root := obs.Begin(col, c.ID, c.Now(), "migrate/live")
	defer func() { root.EndArg(c.Now(), uint64(rep.TotalPages)) }()

	sendPages := func(pages []hw.PFN) {
		sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
		for _, pfn := range pages {
			tgt := hw.PFN(int64(pfn) + delta)
			copy(dst.M.Mem.FrameBytes(tgt), mem.FrameBytesRO(pfn))
			c.Charge(src.M.Costs.PageCopy + src.M.Costs.NetStackTx/4)
			// Wire serialization dominates elapsed time.
			c.Charge(hw.Cycles(uint64(hw.PageSize) * 8 * src.M.Hz / cfg.Link.BandwidthBps))
		}
		rep.TotalPages += len(pages)
		if pagesSent != nil {
			pagesSent.Add(uint64(len(pages)))
		}
	}

	// Round 0: everything touched so far, with the dirty log armed so
	// concurrent writes are caught next round.
	mem.EnableDirtyLog()
	defer mem.DisableDirtyLog()
	var first []hw.PFN
	zero := make([]byte, hw.PageSize)
	for pfn := lo; pfn < hi; pfn++ {
		if !bytesEqualZero(mem.FrameBytesRO(pfn), zero) {
			first = append(first, pfn)
		}
	}
	mem.CollectDirty() // discard dirt from our own scan
	if cfg.Mutator != nil {
		cfg.Mutator(0)
	}
	sp := obs.Begin(col, c.ID, c.Now(), "migrate/round")
	sendPages(first)
	sp.EndArg(c.Now(), uint64(len(first)))
	rep.Rounds = append(rep.Rounds, RoundReport{Round: 0, Pages: len(first)})
	if roundsGauge != nil {
		roundsGauge.Set(1)
	}

	// Iterative rounds.
	stopThreshold := cfg.StopThreshold
	if stopThreshold == 0 {
		stopThreshold = 16
	}
	var dirty []hw.PFN
	for round := 1; round <= cfg.MaxRounds; round++ {
		if cfg.Mutator != nil {
			cfg.Mutator(round)
		}
		dirty = filterRange(mem.CollectDirty(), lo, hi)
		if dirtyGauge != nil {
			dirtyGauge.Set(int64(len(dirty)))
		}
		if len(dirty) <= stopThreshold {
			break
		}
		sp := obs.Begin(col, c.ID, c.Now(), "migrate/round")
		sendPages(dirty)
		sp.EndArg(c.Now(), uint64(len(dirty)))
		rep.Rounds = append(rep.Rounds, RoundReport{Round: round, Pages: len(dirty)})
		if roundsGauge != nil {
			roundsGauge.Set(int64(round + 1))
		}
		dirty = nil
	}

	// Stop-and-copy: pause, transfer the remainder plus vcpu state,
	// resume on the destination.
	stopStart := c.Now()
	stopSpan := obs.Begin(col, c.ID, stopStart, "migrate/stop-and-copy")
	if err := src.HypDomctlPause(c, caller, d.ID); err != nil {
		stopSpan.End(c.Now())
		return nil, nil, err
	}
	final := filterRange(mem.CollectDirty(), lo, hi)
	if len(final) == 0 {
		final = dirty
	} else {
		final = append(final, dirty...)
		final = dedup(final)
	}
	sendPages(final)
	rep.Rounds = append(rep.Rounds, RoundReport{Round: len(rep.Rounds), Pages: len(final)})

	into.VCPU0().SetCR3(hw.PFN(int64(d.VCPU0().CR3()) + delta))
	into.VCPU0().SetVIF(d.VCPU0().VIF())
	if delta != 0 {
		img := &DomainImage{Lo: lo, Hi: hi, PinnedRoots: d.PinnedRoots()}
		relocateTables(c, dst.M.Mem, img, delta)
	}
	if err := src.HypDomctlDestroy(c, caller, d.ID); err != nil {
		stopSpan.End(c.Now())
		return nil, nil, err
	}
	into.State = xen.DomRunning
	stopSpan.EndArg(c.Now(), uint64(len(final)))
	rep.DowntimeCyc = c.Now() - stopStart
	if downtimeCyc != nil {
		downtimeCyc.Observe(rep.DowntimeCyc)
	}
	rep.TotalCyc = c.Now() - start
	rep.DowntimeUSec = float64(rep.DowntimeCyc) / float64(src.M.Hz) * 1e6
	rep.TotalUSec = float64(rep.TotalCyc) / float64(src.M.Hz) * 1e6
	_ = dHi
	return into, rep, nil
}

func bytesEqualZero(b, zero []byte) bool {
	for i := range b {
		if b[i] != 0 {
			return false
		}
	}
	_ = zero
	return true
}

func filterRange(pfns []hw.PFN, lo, hi hw.PFN) []hw.PFN {
	out := pfns[:0]
	for _, p := range pfns {
		if p >= lo && p < hi {
			out = append(out, p)
		}
	}
	return out
}

func dedup(pfns []hw.PFN) []hw.PFN {
	seen := make(map[hw.PFN]bool, len(pfns))
	out := pfns[:0]
	for _, p := range pfns {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}
