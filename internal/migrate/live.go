package migrate

import (
	"fmt"
	"sort"

	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/xen"
)

// LiveConfig tunes the pre-copy algorithm.
type LiveConfig struct {
	// MaxRounds bounds the iterative pre-copy phase.
	MaxRounds int
	// StopThreshold: when a round leaves at most this many dirty pages,
	// stop-and-copy begins.
	StopThreshold int
	// DowntimeSLOCyc, when nonzero, makes the pre-copy loop bandwidth-
	// adaptive: each round estimates the downtime a stop-and-copy of
	// the current dirty set would cost and stops early once the
	// estimate fits the SLO — or once the dirty set has stopped
	// shrinking, when more rounds would only burn bandwidth.
	DowntimeSLOCyc hw.Cycles
	// Link carries the transfer (the Gigabit migration network).
	Link hw.LinkProps
	// Mutator, when set, is invoked between rounds to stand in for the
	// still-running guest dirtying memory.
	Mutator func(round int)
	// Inject, when set, arms hardware-layer fault injection (link
	// stall, mid-copy abort) for dependability campaigns.
	Inject *FaultInjection
}

// DefaultLiveConfig mirrors Clark et al.'s settings at this scale.
func DefaultLiveConfig() LiveConfig {
	return LiveConfig{MaxRounds: 8, StopThreshold: 16, Link: hw.Gigabit()}
}

// LiveReport describes one completed live migration (or, on error, how
// far the aborted transaction got before rolling back).
type LiveReport struct {
	Rounds       []RoundReport
	TotalPages   int
	DowntimeCyc  hw.Cycles // stop-and-copy duration (service interruption)
	TotalCyc     hw.Cycles
	DowntimeUSec float64
	TotalUSec    float64
	// Verified: the destination image was proven bit-identical (tables
	// relocated) before the source was destroyed.
	Verified bool
	// StopReason is why pre-copy ended: "threshold", "slo",
	// "diverging", or "max-rounds".
	StopReason string
	// RolledBack lists the journaled transaction steps that were undone
	// when the migration aborted (empty on success).
	RolledBack []string
}

// RoundReport is one pre-copy iteration.
type RoundReport struct {
	Round int
	Pages int
	// DirtyPages is the dirty-set size observed at the start of the
	// round (equal to Pages for pre-copy rounds; for the final entry it
	// is the stop-and-copy remainder).
	DirtyPages int
	// EstDowntimeCyc is the bandwidth-model estimate of what stopping
	// here would cost (0 for round 0).
	EstDowntimeCyc hw.Cycles
	// Decision is what the adaptive loop chose after this round:
	// "continue" or "stop-and-copy".
	Decision string
}

// Live migrates domain d from src to a fresh domain on dst using
// iterative pre-copy: round 0 transfers all touched memory while the
// guest keeps running (and dirtying pages, via cfg.Mutator); subsequent
// rounds transfer only what was dirtied; when the dirty set is small
// enough — or, with a downtime SLO configured, as soon as the estimated
// stop-and-copy cost fits it — the domain pauses, the remainder and
// vcpu state move, the destination image is verified against the source
// and its page-table roots re-pinned, and only then is the source
// destroyed and the domain resumed on the destination (§6.3: online
// maintenance migrates the execution environment to another machine).
//
// Every side effect is journaled in a migration transaction: on any
// failure the destination domain is destroyed and scrubbed, the source
// unpaused, and the dirty log disarmed, so an aborted migration leaves
// both machines exactly as they were.
func Live(c *hw.CPU, src *xen.VMM, caller, d *xen.Domain,
	dst *xen.VMM, dstCaller *xen.Domain, cfg LiveConfig) (*xen.Domain, *LiveReport, error) {

	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 8
	}
	if cfg.Link.BandwidthBps == 0 {
		cfg.Link = hw.Gigabit()
	}
	if !src.Active {
		return nil, nil, fmt.Errorf("migrate: live migration requires an active source VMM")
	}
	if !dst.Active {
		return nil, nil, fmt.Errorf("migrate: live migration requires an active destination VMM")
	}
	lo, hi := d.Frames.Range()

	rep := &LiveReport{}
	start := c.Now()
	mem := src.M.Mem

	// Telemetry: gauges track the pre-copy convergence, the counters
	// total wire traffic and transaction outcomes, and the histogram
	// records downtimes.
	col := src.M.Telemetry()
	var roundsGauge, dirtyGauge *obs.Gauge
	var pagesSent, commits, rollbacks, verifyFails *obs.Counter
	var downtimeCyc *obs.Histogram
	if col != nil {
		r := col.Registry
		roundsGauge = r.Gauge("migrate", "precopy_rounds")
		dirtyGauge = r.Gauge("migrate", "dirty_pages_last_round")
		pagesSent = r.Counter("migrate", "pages_sent_total")
		commits = r.Counter("migrate", "commits_total")
		rollbacks = r.Counter("migrate", "rollbacks_total")
		verifyFails = r.Counter("migrate", "verify_failures_total")
		downtimeCyc = r.Histogram("migrate", "downtime_cycles")
	}
	root := obs.Begin(col, c.ID, c.Now(), "migrate/live")
	defer func() { root.EndArg(c.Now(), uint64(rep.TotalPages)) }()

	txn := BeginTxn("migrate " + d.Name)
	// abort rolls the journaled side effects back and reports the
	// failure. The rollback itself is spanned so campaigns can see its
	// cost; undo failures are joined into the returned error.
	abort := func(err error) (*xen.Domain, *LiveReport, error) {
		rep.RolledBack = txn.StepNames()
		sp := obs.Begin(col, c.ID, c.Now(), "migrate/rollback")
		rerr := txn.Rollback()
		sp.EndArg(c.Now(), uint64(len(rep.RolledBack)))
		if rollbacks != nil {
			rollbacks.Inc()
		}
		if rerr != nil {
			err = fmt.Errorf("%w (rollback: %v)", err, rerr)
		}
		rep.TotalCyc = c.Now() - start
		rep.TotalUSec = float64(rep.TotalCyc) / float64(src.M.Hz) * 1e6
		return nil, rep, fmt.Errorf("migrate: aborted: %w", err)
	}

	into, err := dst.CreateDomain(d.Name+"-migrated", hi-lo, d.Privileged)
	if err != nil {
		return nil, nil, fmt.Errorf("migrate: allocating target domain: %w", err)
	}
	dLo, dHi := into.Frames.Range()
	delta := int64(dLo) - int64(lo)
	txn.Journal("create-destination", func() error {
		return dst.DestroyDomain(into.ID)
	})
	// Scrub whatever partial image landed in the destination partition
	// so an aborted migration cannot leak the guest's memory contents.
	txn.Journal("scrub-destination", func() error {
		for pfn := dLo; pfn < dHi; pfn++ {
			dst.M.Mem.ZeroFrame(pfn)
		}
		return nil
	})
	// The destination stays paused until the transaction commits:
	// resuming it any earlier would put two live copies in the world.
	if err := dst.HypDomctlPause(c, dstCaller, into.ID); err != nil {
		return abort(fmt.Errorf("pausing destination: %w", err))
	}

	// perPageCyc models the per-page stop-and-copy cost (memcpy, the
	// network stack's share, wire serialization) for the downtime
	// estimator; verifyCyc the fixed verification pass over the
	// partition that also runs inside the downtime window.
	wireCyc := hw.Cycles(uint64(hw.PageSize) * 8 * src.M.Hz / cfg.Link.BandwidthBps)
	perPageCyc := src.M.Costs.PageCopy + src.M.Costs.NetStackTx/4 + wireCyc
	verifyCyc := hw.Cycles(hi-lo) * (src.M.Costs.PageCopy / 4)

	sendPages := func(round int, pages []hw.PFN) error {
		sorted := make([]hw.PFN, len(pages))
		copy(sorted, pages)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, pfn := range sorted {
			if err := cfg.Inject.copyFault(round); err != nil {
				return err
			}
			tgt := hw.PFN(int64(pfn) + delta)
			copy(dst.M.Mem.FrameBytes(tgt), mem.FrameBytesRO(pfn))
			c.Charge(perPageCyc)
			rep.TotalPages++
			if pagesSent != nil {
				pagesSent.Inc()
			}
		}
		return nil
	}

	// Round 0: everything touched so far, with the dirty log armed so
	// concurrent writes are caught next round.
	mem.EnableDirtyLog()
	txn.Journal("arm-dirty-log", func() error {
		mem.DisableDirtyLog()
		return nil
	})
	var first []hw.PFN
	for pfn := lo; pfn < hi; pfn++ {
		if !bytesEqualZero(mem.FrameBytesRO(pfn)) {
			first = append(first, pfn)
		}
	}
	mem.CollectDirty() // discard dirt from our own scan
	if cfg.Mutator != nil {
		cfg.Mutator(0)
	}
	sp := obs.Begin(col, c.ID, c.Now(), "migrate/round")
	err = sendPages(0, first)
	sp.EndArg(c.Now(), uint64(len(first)))
	if err != nil {
		return abort(fmt.Errorf("round 0: %w", err))
	}
	rep.Rounds = append(rep.Rounds, RoundReport{
		Round: 0, Pages: len(first), DirtyPages: len(first), Decision: "continue"})
	if roundsGauge != nil {
		roundsGauge.Set(1)
	}

	// Iterative rounds: each collects the dirty set, estimates what
	// stopping now would cost, and either stops or copies another round.
	stopThreshold := cfg.StopThreshold
	if stopThreshold == 0 {
		stopThreshold = 16
	}
	var dirty []hw.PFN
	prevDirty := 0
	stopRound := cfg.MaxRounds + 1
	rep.StopReason = "max-rounds"
	for round := 1; round <= cfg.MaxRounds; round++ {
		if cfg.Mutator != nil {
			cfg.Mutator(round)
		}
		dirty = filterRange(mem.CollectDirty(), lo, hi)
		if dirtyGauge != nil {
			dirtyGauge.Set(int64(len(dirty)))
		}
		est := hw.Cycles(len(dirty))*perPageCyc + verifyCyc
		stop := ""
		switch {
		case len(dirty) <= stopThreshold:
			stop = "threshold"
		case cfg.DowntimeSLOCyc > 0 && est <= cfg.DowntimeSLOCyc:
			stop = "slo"
		case cfg.DowntimeSLOCyc > 0 && prevDirty > 0 && len(dirty) >= prevDirty:
			// The writable working set is not shrinking: more rounds
			// will never meet the SLO, so stop before burning more
			// bandwidth (Clark et al.'s divergence cutoff).
			stop = "diverging"
		}
		if stop != "" {
			rep.StopReason = stop
			stopRound = round
			break
		}
		prevDirty = len(dirty)
		sp := obs.Begin(col, c.ID, c.Now(), "migrate/round")
		err = sendPages(round, dirty)
		sp.EndArg(c.Now(), uint64(len(dirty)))
		if err != nil {
			return abort(fmt.Errorf("round %d: %w", round, err))
		}
		rep.Rounds = append(rep.Rounds, RoundReport{
			Round: round, Pages: len(dirty), DirtyPages: len(dirty),
			EstDowntimeCyc: est, Decision: "continue"})
		if roundsGauge != nil {
			roundsGauge.Set(int64(round + 1))
		}
		dirty = nil
	}

	// Stop-and-copy: pause the source, transfer the remainder plus vcpu
	// state, relocate and re-pin the page tables, verify, and only then
	// commit. Everything in this window counts as downtime.
	stopStart := c.Now()
	stopSpan := obs.Begin(col, c.ID, stopStart, "migrate/stop-and-copy")
	defer func() { stopSpan.End(c.Now()) }()
	if err := src.HypDomctlPause(c, caller, d.ID); err != nil {
		return abort(fmt.Errorf("pausing source: %w", err))
	}
	txn.Journal("pause-source", func() error {
		return src.HypDomctlUnpause(c, caller, d.ID)
	})
	final := filterRange(mem.CollectDirty(), lo, hi)
	if len(final) == 0 {
		final = dirty
	} else {
		final = append(final, dirty...)
		final = dedup(final)
	}
	if err := sendPages(stopRound, final); err != nil {
		return abort(fmt.Errorf("stop-and-copy: %w", err))
	}
	rep.Rounds = append(rep.Rounds, RoundReport{
		Round: stopRound, Pages: len(final), DirtyPages: len(final),
		Decision: "stop-and-copy"})

	into.VCPU0().SetCR3(hw.PFN(int64(d.VCPU0().CR3()) + delta))
	into.VCPU0().SetVIF(d.VCPU0().VIF())
	roots := d.PinnedRoots()
	if delta != 0 {
		RelocateTables(c, dst.M.Mem, roots, delta)
	}
	// Re-pin the relocated roots under the destination VMM: this
	// validates the trees against its frame accounting and takes the
	// type refs the destination needs to police the new domain.
	if err := RepinRoots(c, txn, dst, into, roots, delta); err != nil {
		return abort(err)
	}

	// The commit-point check (§6.3 meets "On the Impossibility of a
	// Perfect Hypervisor"): prove the destination image matches before
	// destroying the only other copy.
	vsp := obs.Begin(col, c.ID, c.Now(), "migrate/verify")
	verr := verifyDestination(c, mem, dst.M.Mem, lo, hi, delta, roots)
	vsp.End(c.Now())
	if verr != nil {
		if verifyFails != nil {
			verifyFails.Inc()
		}
		return abort(verr)
	}
	rep.Verified = true

	if err := src.HypDomctlDestroy(c, caller, d.ID); err != nil {
		return abort(fmt.Errorf("destroying source: %w", err))
	}
	// Commit: the source is gone, the verified destination is the
	// system. Disarm the dirty log and resume the domain over there.
	txn.Commit()
	if commits != nil {
		commits.Inc()
	}
	mem.DisableDirtyLog()
	if err := dst.HypDomctlUnpause(c, dstCaller, into.ID); err != nil {
		// Post-commit: the migration itself held, the destination just
		// needs an operator unpause — report both facts.
		return into, rep, fmt.Errorf("migrate: committed but resuming destination failed: %w", err)
	}
	rep.DowntimeCyc = c.Now() - stopStart
	if downtimeCyc != nil {
		downtimeCyc.Observe(rep.DowntimeCyc)
	}
	rep.TotalCyc = c.Now() - start
	rep.DowntimeUSec = float64(rep.DowntimeCyc) / float64(src.M.Hz) * 1e6
	rep.TotalUSec = float64(rep.TotalCyc) / float64(src.M.Hz) * 1e6
	return into, rep, nil
}

func bytesEqualZero(b []byte) bool {
	for i := range b {
		if b[i] != 0 {
			return false
		}
	}
	return true
}

// filterRange returns the pfns inside [lo, hi) as a fresh slice. It
// must not compact in place (pfns[:0] aliasing): callers pass slices
// they still own — CollectDirty results are merged across rounds, and
// rewriting the input under the caller would corrupt the dirty set.
func filterRange(pfns []hw.PFN, lo, hi hw.PFN) []hw.PFN {
	out := make([]hw.PFN, 0, len(pfns))
	for _, p := range pfns {
		if p >= lo && p < hi {
			out = append(out, p)
		}
	}
	return out
}

// dedup returns the unique pfns, first occurrence order, as a fresh
// slice — same aliasing contract as filterRange.
func dedup(pfns []hw.PFN) []hw.PFN {
	seen := make(map[hw.PFN]bool, len(pfns))
	out := make([]hw.PFN, 0, len(pfns))
	for _, p := range pfns {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}
