package migrate

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"repro/internal/hw"
	"repro/internal/xen"
)

// DomainImage is a serializable snapshot of one domain.
type DomainImage struct {
	Name   string
	Lo, Hi hw.PFN // frame partition [Lo, Hi)
	// Pages holds the contents of every touched frame, keyed by PFN.
	Pages map[hw.PFN][]byte
	// VCPU state.
	CR3 hw.PFN
	VIF bool
	// PinnedRoots are the page-directory roots the VMM had pinned.
	PinnedRoots []hw.PFN
	Privileged  bool
}

// pageRec is one frame of the wire image.
type pageRec struct {
	PFN  hw.PFN
	Data []byte
}

// imageWire is the deterministic serialization of a DomainImage: pages
// in sorted-PFN order and roots sorted ascending, instead of a raw gob
// map whose iteration order varies run to run. Identical state must
// encode to identical bytes — the prerequisite for content-addressed
// snapshot identity (internal/fork).
type imageWire struct {
	Name        string
	Lo, Hi      hw.PFN
	CR3         hw.PFN
	VIF         bool
	PinnedRoots []hw.PFN
	Privileged  bool
	Pages       []pageRec
}

// Bytes returns the canonical encoding (what would travel to stable
// storage or the migration socket). Two images of bit-identical state
// produce bit-identical bytes.
func (img *DomainImage) Bytes() ([]byte, error) {
	w := imageWire{
		Name: img.Name, Lo: img.Lo, Hi: img.Hi,
		CR3: img.CR3, VIF: img.VIF, Privileged: img.Privileged,
	}
	w.PinnedRoots = append([]hw.PFN(nil), img.PinnedRoots...)
	sort.Slice(w.PinnedRoots, func(i, j int) bool { return w.PinnedRoots[i] < w.PinnedRoots[j] })
	w.Pages = make([]pageRec, 0, len(img.Pages))
	for pfn, data := range img.Pages {
		w.Pages = append(w.Pages, pageRec{PFN: pfn, Data: data})
	}
	sort.Slice(w.Pages, func(i, j int) bool { return w.Pages[i].PFN < w.Pages[j].PFN })
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, fmt.Errorf("migrate: encoding image: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeImage parses an encoded image.
func DecodeImage(b []byte) (*DomainImage, error) {
	var w imageWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return nil, fmt.Errorf("migrate: decoding image: %w", err)
	}
	img := &DomainImage{
		Name: w.Name, Lo: w.Lo, Hi: w.Hi,
		CR3: w.CR3, VIF: w.VIF, Privileged: w.Privileged,
		PinnedRoots: w.PinnedRoots,
		Pages:       make(map[hw.PFN][]byte, len(w.Pages)),
	}
	for _, p := range w.Pages {
		img.Pages[p.PFN] = p.Data
	}
	return img, nil
}

// MemBytes returns the snapshot payload size.
func (img *DomainImage) MemBytes() int { return len(img.Pages) * hw.PageSize }

// Checkpoint pauses d, snapshots its memory and vcpu state, and resumes
// it (§6.1: "the pre-cached VMM is activated and makes a snapshot of the
// whole system"). The calling CPU is charged the copy costs.
func Checkpoint(c *hw.CPU, v *xen.VMM, caller, d *xen.Domain) (*DomainImage, error) {
	if !v.Active {
		return nil, fmt.Errorf("migrate: checkpoint requires an active VMM")
	}
	if err := v.HypDomctlPause(c, caller, d.ID); err != nil {
		return nil, err
	}
	img := snapshot(c, v, d)
	if err := v.HypDomctlUnpause(c, caller, d.ID); err != nil {
		// The snapshot is complete and consistent — discarding it would
		// throw away the very state a failing system needs. Return it
		// alongside the resume failure so the caller can restore.
		return img, fmt.Errorf("migrate: checkpoint complete but resume failed: %w", err)
	}
	return img, nil
}

// snapshot copies the domain's touched frames (internal; also used by
// the stop-and-copy phase of live migration).
func snapshot(c *hw.CPU, v *xen.VMM, d *xen.Domain) *DomainImage {
	lo, hi := d.Frames.Range()
	img := &DomainImage{
		Name:        d.Name,
		Lo:          lo,
		Hi:          hi,
		Pages:       make(map[hw.PFN][]byte),
		CR3:         d.VCPU0().CR3(),
		VIF:         d.VCPU0().VIF(),
		PinnedRoots: d.PinnedRoots(),
		Privileged:  d.Privileged,
	}
	zero := make([]byte, hw.PageSize)
	for pfn := lo; pfn < hi; pfn++ {
		data := v.M.Mem.FrameBytesRO(pfn)
		if bytes.Equal(data, zero) {
			continue // untouched frames are implicit
		}
		cp := make([]byte, hw.PageSize)
		copy(cp, data)
		img.Pages[pfn] = cp
		c.Charge(v.M.Costs.PageCopy)
	}
	return img
}

// Restore writes an image into the target domain's partition on machine
// dst. The target partition must be at least as large as the source's.
// When the partitions start at different frame numbers, every page-table
// entry and the CR3 are relocated by the frame delta — the
// canonicalization step of real migration. The restored page-table
// roots are validated and re-pinned under dst's frame accounting before
// the domain resumes; if pinning fails the laid-down image is scrubbed
// again and the target left paused, so a bad image never runs.
func Restore(c *hw.CPU, dst *xen.VMM, caller, into *xen.Domain, img *DomainImage) error {
	if !dst.Active {
		return fmt.Errorf("migrate: restore requires an active VMM")
	}
	lo, hi := into.Frames.Range()
	if hi-lo < img.Hi-img.Lo {
		return fmt.Errorf("migrate: target partition %d frames < source %d",
			hi-lo, img.Hi-img.Lo)
	}
	if err := dst.HypDomctlPause(c, caller, into.ID); err != nil {
		return err
	}
	txn := BeginTxn("restore " + img.Name)
	txn.Journal("scrub-target", func() error {
		for pfn := lo; pfn < hi; pfn++ {
			dst.M.Mem.ZeroFrame(pfn)
		}
		return nil
	})
	delta := int64(lo) - int64(img.Lo)
	// Clear the target range, then lay the pages down.
	for pfn := lo; pfn < hi; pfn++ {
		dst.M.Mem.ZeroFrame(pfn)
	}
	for pfn, data := range img.Pages {
		tgt := hw.PFN(int64(pfn) + delta)
		copy(dst.M.Mem.FrameBytes(tgt), data)
		c.Charge(dst.M.Costs.PageCopy)
	}
	if delta != 0 {
		RelocateTables(c, dst.M.Mem, img.PinnedRoots, delta)
	}
	// Re-register the restored roots with the VMM: pinning validates
	// the (relocated) trees and takes the type refs the destination
	// needs — a restored domain must not run on unvalidated tables.
	if err := RepinRoots(c, txn, dst, into, img.PinnedRoots, delta); err != nil {
		if rerr := txn.Rollback(); rerr != nil {
			err = fmt.Errorf("%w (rollback: %v)", err, rerr)
		}
		return fmt.Errorf("migrate: restore aborted, target scrubbed and left paused: %w", err)
	}
	into.VCPU0().SetCR3(hw.PFN(int64(img.CR3) + delta))
	into.VCPU0().SetVIF(img.VIF)
	txn.Commit()
	return dst.HypDomctlUnpause(c, caller, into.ID)
}

// RelocateTables rewrites frame numbers inside every restored page-table
// tree (rooted at the relocated positions of roots) by delta — the
// canonicalization step shared by Restore, Live, and fork.Clone.
func RelocateTables(c *hw.CPU, mem *hw.PhysMem, roots []hw.PFN, delta int64) {
	for _, root := range roots {
		newRoot := hw.PFN(int64(root) + delta)
		for pdi := 0; pdi < hw.PTEntries; pdi++ {
			pde := hw.ReadPTE(mem, newRoot, pdi)
			if !pde.Present() {
				continue
			}
			newPT := hw.PFN(int64(pde.Frame()) + delta)
			hw.WritePTE(mem, newRoot, pdi, hw.MakePTE(newPT, pde.Flags()))
			c.Charge(40) // entry rewrite work
			for pti := 0; pti < hw.PTEntries; pti++ {
				pte := hw.ReadPTE(mem, newPT, pti)
				if !pte.Present() {
					continue
				}
				hw.WritePTE(mem, newPT, pti,
					hw.MakePTE(hw.PFN(int64(pte.Frame())+delta), pte.Flags()))
			}
		}
	}
}
