package migrate

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/hw"
	"repro/internal/xen"
)

// Txn is the migration transaction: a LIFO journal of undo actions, one
// per side effect (destination domain creation, dirty-log arming, source
// pause, partial page copies, root re-pinning). Any failure before the
// commit point rolls the whole ladder back, restoring the pre-migration
// state; Commit discards the ladder once the destination image has been
// verified and the source destroyed.
type Txn struct {
	name      string
	steps     []txnStep
	committed bool
}

type txnStep struct {
	name string
	undo func() error
}

// BeginTxn opens a named transaction with an empty undo ladder.
func BeginTxn(name string) *Txn { return &Txn{name: name} }

// Journal records one side effect and the action that reverses it.
func (t *Txn) Journal(step string, undo func() error) {
	t.steps = append(t.steps, txnStep{name: step, undo: undo})
}

// Commit marks the transaction successful: the journaled side effects
// become permanent and Rollback turns into a no-op.
func (t *Txn) Commit() { t.committed = true; t.steps = nil }

// Committed reports whether Commit ran.
func (t *Txn) Committed() bool { return t.committed }

// StepNames lists the journaled steps, oldest first.
func (t *Txn) StepNames() []string {
	out := make([]string, len(t.steps))
	for i, s := range t.steps {
		out[i] = s.name
	}
	return out
}

// Rollback undoes every journaled side effect in reverse order. Undo
// errors do not stop the ladder — every remaining step still runs — and
// are joined into the returned error.
func (t *Txn) Rollback() error {
	if t.committed {
		return nil
	}
	var errs []error
	for i := len(t.steps) - 1; i >= 0; i-- {
		s := t.steps[i]
		if err := s.undo(); err != nil {
			errs = append(errs, fmt.Errorf("%s: undo %s: %w", t.name, s.name, err))
		}
	}
	t.steps = nil
	return errors.Join(errs...)
}

// FaultInjection makes migration's copy machinery fail on demand — the
// hardware-layer faults (a stalled migration link, an aborted transfer)
// that the hypercall-level injectors cannot express. The zero value
// injects nothing.
type FaultInjection struct {
	// FailCopyAfterPages > 0: the page copier errors out after that
	// many pages have moved (a mid-copy abort).
	FailCopyAfterPages int
	// StallLinkAfterRounds > 0: every transfer from that pre-copy round
	// on fails (the migration link went down; stop-and-copy counts as
	// the round the stop decision was made in).
	StallLinkAfterRounds int

	copied int
}

// Clear removes any armed fault and resets the page counter.
func (fi *FaultInjection) Clear() { *fi = FaultInjection{} }

// copyFault reports the injected error for copying one more page in
// round, if any.
func (fi *FaultInjection) copyFault(round int) error {
	if fi == nil {
		return nil
	}
	if fi.StallLinkAfterRounds > 0 && round >= fi.StallLinkAfterRounds {
		return fmt.Errorf("migrate: link stalled in round %d", round)
	}
	if fi.FailCopyAfterPages > 0 && fi.copied >= fi.FailCopyAfterPages {
		return fmt.Errorf("migrate: transfer aborted after %d pages", fi.copied)
	}
	fi.copied++
	return nil
}

// verifyDestination proves the destination image matches the source
// before the source is destroyed: every non-table frame in [lo, hi)
// must be bit-identical at +delta, and every page-table frame reachable
// from the pinned roots must hold the source tree relocated by exactly
// delta (same present bits, same flags, frames shifted by delta). The
// comparison work is charged to c — it runs inside the stop-and-copy
// window, so it counts toward downtime.
func verifyDestination(c *hw.CPU, src, dst *hw.PhysMem,
	lo, hi hw.PFN, delta int64, roots []hw.PFN) error {

	// Collect the table frames: the pinned roots plus every L1 frame a
	// present PDE references, read from the (still intact) source tree.
	tables := make(map[hw.PFN]bool, len(roots)*4)
	for _, root := range roots {
		tables[root] = true
		for pdi := 0; pdi < hw.PTEntries; pdi++ {
			pde := hw.ReadPTE(src, root, pdi)
			if pde.Present() {
				tables[pde.Frame()] = true
			}
		}
	}

	perFrame := c.M.Costs.PageCopy / 4 // a compare reads both copies
	for pfn := lo; pfn < hi; pfn++ {
		tgt := hw.PFN(int64(pfn) + delta)
		c.Charge(perFrame)
		if tables[pfn] {
			if err := verifyTableFrame(src, dst, pfn, tgt, delta); err != nil {
				return err
			}
			continue
		}
		if !bytes.Equal(src.FrameBytesRO(pfn), dst.FrameBytesRO(tgt)) {
			return fmt.Errorf("migrate: verify: frame %d diverges from source frame %d", tgt, pfn)
		}
	}
	return nil
}

// verifyTableFrame checks one relocated page-table frame entry by entry.
func verifyTableFrame(src, dst *hw.PhysMem, pfn, tgt hw.PFN, delta int64) error {
	for i := 0; i < hw.PTEntries; i++ {
		se := hw.ReadPTE(src, pfn, i)
		de := hw.ReadPTE(dst, tgt, i)
		if se.Present() != de.Present() {
			return fmt.Errorf("migrate: verify: table %d entry %d present bit diverges", tgt, i)
		}
		if !se.Present() {
			continue
		}
		if want := hw.PFN(int64(se.Frame()) + delta); de.Frame() != want {
			return fmt.Errorf("migrate: verify: table %d entry %d points at frame %d, want %d",
				tgt, i, de.Frame(), want)
		}
		if se.Flags() != de.Flags() {
			return fmt.Errorf("migrate: verify: table %d entry %d flags diverge", tgt, i)
		}
	}
	return nil
}

// RepinRoots registers every relocated page-directory root with the
// destination VMM, journaling an unpin per pinned root so a later abort
// releases the type refs again. Pinning validates the relocated tree
// under the destination's frame accounting — the "tables validated and
// re-pinned" half of the commit-point check. Callers must pass roots in
// a deterministic (sorted) order: the pin order and the journaled
// Applied prefix are part of the transaction's replayable record.
func RepinRoots(c *hw.CPU, txn *Txn, dst *xen.VMM, into *xen.Domain,
	roots []hw.PFN, delta int64) error {

	// Pin the whole ladder in one multicall: the pins happen inside the
	// stop-and-copy window, so amortizing the world switch across the
	// roots comes straight off downtime.
	var mc xen.Multicall
	pinned := make([]hw.PFN, 0, len(roots))
	for _, root := range roots {
		newRoot := hw.PFN(int64(root) + delta)
		if into.HasPinned(newRoot) {
			continue // restored onto a domain that still holds the pin
		}
		mc.AddPin(newRoot)
		pinned = append(pinned, newRoot)
	}
	err := dst.HypMulticall(c, into, &mc)
	// Journal an unpin for every root the multicall actually applied —
	// on a mid-batch failure the Applied prefix took its type refs and
	// a later abort must release them.
	for _, nr := range pinned[:mc.Applied] {
		nr := nr
		txn.Journal(fmt.Sprintf("pin-root-%d", nr), func() error {
			return dst.HypUnpinTable(c, into, nr)
		})
	}
	if err != nil {
		failed := pinned[len(pinned)-1]
		if mc.Applied < len(pinned) {
			failed = pinned[mc.Applied]
		}
		return fmt.Errorf("migrate: re-pinning root %d on destination: %w", failed, err)
	}
	return nil
}
