// Package migrate implements the dependability features self-
// virtualization enables (§6): whole-domain checkpoint and restart
// (§6.1) and pre-copy live migration with dirty-page logging (§6.3,
// following Clark et al.'s algorithm the paper builds on). Both operate
// on a domain's physical memory partition plus its vcpu and page-table
// state; restoring onto a different machine relocates page-table frame
// numbers the way Xen's migration canonicalizes MFNs.
package migrate
