package migrate

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/xen"
)

// env builds an active VMM with a privileged caller domain and a guest
// domain whose memory holds a recognizable pattern.
func env(t *testing.T) (*xen.VMM, *xen.Domain, *xen.Domain, *hw.CPU) {
	t.Helper()
	m := hw.NewMachine(hw.Config{MemBytes: 32 << 20, NumCPUs: 1})
	v, err := xen.Boot(m)
	if err != nil {
		t.Fatal(err)
	}
	c := m.BootCPU()
	v.Activate(c)
	caller, err := v.CreateDomain("dom0", 1024, true)
	if err != nil {
		t.Fatal(err)
	}
	guest, err := v.CreateDomain("guest", 1024, false)
	if err != nil {
		t.Fatal(err)
	}
	v.SetCurrent(c, caller)
	return v, caller, guest, c
}

// fill writes a deterministic pattern into n frames of d.
func fill(v *xen.VMM, d *xen.Domain, n int) []hw.PFN {
	lo, _ := d.Frames.Range()
	var pfns []hw.PFN
	for i := 0; i < n; i++ {
		pfn := lo + hw.PFN(i)
		v.M.Mem.WriteWord(pfn.Addr(), uint32(0xAB00_0000)|uint32(pfn))
		v.M.Mem.WriteWord(pfn.Addr()+128, uint32(i))
		pfns = append(pfns, pfn)
	}
	return pfns
}

func verify(t *testing.T, mem *hw.PhysMem, src, dst []hw.PFN, srcOrig []hw.PFN) {
	t.Helper()
	for i, pfn := range dst {
		if got := mem.ReadWord(pfn.Addr() + 128); got != uint32(i) {
			t.Fatalf("frame %d payload = %d, want %d", pfn, got, i)
		}
		_ = src
		_ = srcOrig
	}
}

func TestCheckpointRestoreSameMachine(t *testing.T) {
	v, caller, guest, c := env(t)
	pfns := fill(v, guest, 32)
	guest.VCPU0().SetCR3(pfns[0])

	img, err := Checkpoint(c, v, caller, guest)
	if err != nil {
		t.Fatal(err)
	}
	if guest.State != xen.DomRunning {
		t.Fatal("guest not resumed after checkpoint")
	}
	if len(img.Pages) < 32 {
		t.Fatalf("image holds %d pages", len(img.Pages))
	}

	// Corrupt, then restore.
	for _, pfn := range pfns {
		v.M.Mem.ZeroFrame(pfn)
	}
	if err := Restore(c, v, caller, guest, img); err != nil {
		t.Fatal(err)
	}
	for i, pfn := range pfns {
		if got := v.M.Mem.ReadWord(pfn.Addr() + 128); got != uint32(i) {
			t.Fatalf("frame %d payload = %d after restore", pfn, got)
		}
	}
	if guest.VCPU0().CR3() != pfns[0] {
		t.Fatal("vcpu CR3 not restored")
	}
}

func TestImageEncodeDecode(t *testing.T) {
	v, caller, guest, c := env(t)
	fill(v, guest, 8)
	img, err := Checkpoint(c, v, caller, guest)
	if err != nil {
		t.Fatal(err)
	}
	b, err := img.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeImage(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != img.Name || len(back.Pages) != len(img.Pages) {
		t.Fatal("round trip lost data")
	}
	if back.MemBytes() != img.MemBytes() {
		t.Fatal("size mismatch")
	}
}

func TestRestoreAcrossMachinesRelocates(t *testing.T) {
	v1, caller1, guest1, c1 := env(t)

	// Build a tiny page-table tree in the guest so relocation has work.
	lo, _ := guest1.Frames.Range()
	root := lo + 100
	pt := lo + 101
	data := lo + 102
	hw.WritePTE(v1.M.Mem, root, 3, hw.MakePTE(pt, hw.PTEPresent|hw.PTEWrite))
	hw.WritePTE(v1.M.Mem, pt, 7, hw.MakePTE(data, hw.PTEPresent|hw.PTEWrite|hw.PTEUser))
	v1.M.Mem.WriteWord(data.Addr(), 0xFEED)
	guest1.VCPU0().SetCR3(root)

	img, err := Checkpoint(c1, v1, caller1, guest1)
	if err != nil {
		t.Fatal(err)
	}
	img.PinnedRoots = []hw.PFN{root}

	// Second machine with a different partition layout.
	m2 := hw.NewMachine(hw.Config{MemBytes: 32 << 20, NumCPUs: 1})
	v2, err := xen.Boot(m2)
	if err != nil {
		t.Fatal(err)
	}
	c2 := m2.BootCPU()
	v2.Activate(c2)
	caller2, _ := v2.CreateDomain("dom0", 512, true)
	into, _ := v2.CreateDomain("incoming", 1024, false)
	v2.SetCurrent(c2, caller2)

	if err := Restore(c2, v2, caller2, into, img); err != nil {
		t.Fatal(err)
	}
	lo2, _ := into.Frames.Range()
	delta := int64(lo2) - int64(lo)
	newRoot := hw.PFN(int64(root) + delta)
	if into.VCPU0().CR3() != newRoot {
		t.Fatalf("CR3 = %d, want %d", into.VCPU0().CR3(), newRoot)
	}
	// The relocated tree walks to the relocated data frame.
	w, ok := hw.Walk(v2.M.Mem, newRoot, hw.VirtAddr(3<<hw.PDShift|7<<hw.PageShift))
	if !ok {
		t.Fatal("relocated tree does not walk")
	}
	if got := v2.M.Mem.ReadWord(w.PTE.Frame().Addr()); got != 0xFEED {
		t.Fatalf("relocated data = %#x", got)
	}
}

func TestLiveMigrationPreservesMutatingMemory(t *testing.T) {
	v1, caller1, guest, c := env(t)
	fill(v1, guest, 64)
	lo, _ := guest.Frames.Range()

	m2 := hw.NewMachine(hw.Config{MemBytes: 32 << 20, NumCPUs: 1})
	v2, err := xen.Boot(m2)
	if err != nil {
		t.Fatal(err)
	}
	c2 := m2.BootCPU()
	v2.Activate(c2)
	caller2, _ := v2.CreateDomain("dom0", 512, true)
	v2.SetCurrent(c2, caller2)

	// The guest keeps mutating during pre-copy; the final values must
	// arrive regardless.
	finalVals := make(map[hw.PFN]uint32)
	mutator := func(round int) {
		for i := 0; i < 10; i++ {
			pfn := lo + hw.PFN((round*7+i*3)%64)
			val := uint32(round*1000 + i)
			v1.M.Mem.WriteWord(pfn.Addr()+256, val)
			finalVals[pfn] = val
		}
	}

	cfg := DefaultLiveConfig()
	cfg.Mutator = mutator
	into, rep, err := Live(c, v1, caller1, guest, v2, caller2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) < 2 {
		t.Fatalf("pre-copy did only %d rounds", len(rep.Rounds))
	}
	if rep.DowntimeCyc == 0 || rep.DowntimeCyc >= rep.TotalCyc {
		t.Fatalf("downtime %d vs total %d", rep.DowntimeCyc, rep.TotalCyc)
	}
	lo2, _ := into.Frames.Range()
	delta := int64(lo2) - int64(lo)
	for pfn, want := range finalVals {
		tgt := hw.PFN(int64(pfn) + delta)
		if got := v2.M.Mem.ReadWord(tgt.Addr() + 256); got != want {
			t.Fatalf("frame %d: got %d want %d", tgt, got, want)
		}
	}
	// Source domain is gone.
	if _, ok := v1.Domains[guest.ID]; ok {
		t.Fatal("source domain survived migration")
	}
	if into.State != xen.DomRunning {
		t.Fatal("target not running")
	}
}

func TestLiveMigrationIdleGuestConverges(t *testing.T) {
	v1, caller1, guest, c := env(t)
	fill(v1, guest, 128)

	m2 := hw.NewMachine(hw.Config{MemBytes: 32 << 20, NumCPUs: 1})
	v2, _ := xen.Boot(m2)
	c2 := m2.BootCPU()
	v2.Activate(c2)
	caller2, _ := v2.CreateDomain("dom0", 512, true)
	v2.SetCurrent(c2, caller2)

	_, rep, err := Live(c, v1, caller1, guest, v2, caller2, DefaultLiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	// An idle guest converges after round 0 plus the (empty) final copy.
	if rep.Rounds[0].Pages < 128 {
		t.Fatalf("round 0 moved %d pages", rep.Rounds[0].Pages)
	}
	last := rep.Rounds[len(rep.Rounds)-1]
	if last.Pages > 16 {
		t.Fatalf("final copy moved %d pages (no convergence)", last.Pages)
	}
}

// Property: checkpoint -> restore is an identity on guest memory for
// arbitrary contents.
func TestCheckpointRestoreIdentity(t *testing.T) {
	f := func(seed uint32, words []uint32) bool {
		v, caller, guest, c := env(t)
		lo, _ := guest.Frames.Range()
		for i, w := range words {
			if i >= 256 {
				break
			}
			pfn := lo + hw.PFN(i%64)
			v.M.Mem.WriteWord(pfn.Addr()+hw.PhysAddr((i%1000)*4), w^seed)
		}
		img, err := Checkpoint(c, v, caller, guest)
		if err != nil {
			return false
		}
		before := make(map[hw.PFN][]byte)
		for pfn := range img.Pages {
			cp := make([]byte, hw.PageSize)
			copy(cp, v.M.Mem.FrameBytes(pfn))
			before[pfn] = cp
		}
		// Scramble and restore.
		for pfn := range img.Pages {
			v.M.Mem.ZeroFrame(pfn)
		}
		if err := Restore(c, v, caller, guest, img); err != nil {
			return false
		}
		for pfn, want := range before {
			got := v.M.Mem.FrameBytes(pfn)
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointBytesDeterministic is the snapshot-identity bug's
// regression test: two checkpoints of the same paused domain must
// serialize to byte-identical encodings. The old gob-map encoding
// leaked map iteration order into the bytes, so identical state hashed
// differently run to run.
func TestCheckpointBytesDeterministic(t *testing.T) {
	v, caller, guest, c := env(t)
	fill(v, guest, 48)
	lo, _ := guest.Frames.Range()
	// Several pinned roots so root ordering is exercised too.
	guest.VCPU0().SetCR3(lo + 40)

	img1, err := Checkpoint(c, v, caller, guest)
	if err != nil {
		t.Fatal(err)
	}
	img2, err := Checkpoint(c, v, caller, guest)
	if err != nil {
		t.Fatal(err)
	}
	img1.PinnedRoots = []hw.PFN{lo + 40, lo + 12, lo + 30}
	img2.PinnedRoots = []hw.PFN{lo + 30, lo + 40, lo + 12}
	b1, err := img1.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := img2.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("two checkpoints of identical state encode differently")
	}
	// Round trip preserves the payload and sorts the roots.
	back, err := DecodeImage(b1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(back.PinnedRoots); i++ {
		if back.PinnedRoots[i-1] >= back.PinnedRoots[i] {
			t.Fatal("decoded roots not sorted ascending")
		}
	}
	if len(back.Pages) != len(img1.Pages) {
		t.Fatal("round trip lost pages")
	}
}

// TestRestoreIntoLargerPartition covers the scrub-beyond-image path: a
// restore into a strictly larger partition must zero the frames past
// the image span, relocate the tables, and shift CR3 by the partition
// delta.
func TestRestoreIntoLargerPartition(t *testing.T) {
	v1, caller1, guest1, c1 := env(t)
	lo, _ := guest1.Frames.Range()
	root, pt, data := lo+100, lo+101, lo+5
	hw.WritePTE(v1.M.Mem, root, 3, hw.MakePTE(pt, hw.PTEPresent|hw.PTEWrite))
	hw.WritePTE(v1.M.Mem, pt, 7, hw.MakePTE(data, hw.PTEPresent|hw.PTEWrite|hw.PTEUser))
	v1.M.Mem.WriteWord(data.Addr(), 0xFEED)
	guest1.VCPU0().SetCR3(root)

	img, err := Checkpoint(c1, v1, caller1, guest1)
	if err != nil {
		t.Fatal(err)
	}
	img.PinnedRoots = []hw.PFN{root}

	m2 := hw.NewMachine(hw.Config{MemBytes: 32 << 20, NumCPUs: 1})
	v2, err := xen.Boot(m2)
	if err != nil {
		t.Fatal(err)
	}
	c2 := m2.BootCPU()
	v2.Activate(c2)
	caller2, _ := v2.CreateDomain("dom0", 512, true)
	into, _ := v2.CreateDomain("incoming", 2048, false) // twice the source span
	v2.SetCurrent(c2, caller2)

	// Pre-dirty the whole target partition so the scrub has work.
	lo2, hi2 := into.Frames.Range()
	for pfn := lo2; pfn < hi2; pfn++ {
		v2.M.Mem.WriteWord(pfn.Addr(), 0xBAD0_0000|uint32(pfn))
	}
	if err := Restore(c2, v2, caller2, into, img); err != nil {
		t.Fatal(err)
	}
	delta := int64(lo2) - int64(lo)
	if got, want := into.VCPU0().CR3(), hw.PFN(int64(root)+delta); got != want {
		t.Fatalf("CR3 = %d, want %d", got, want)
	}
	w, ok := hw.Walk(v2.M.Mem, into.VCPU0().CR3(), hw.VirtAddr(3<<hw.PDShift|7<<hw.PageShift))
	if !ok {
		t.Fatal("relocated tree does not walk")
	}
	if got := v2.M.Mem.ReadWord(w.PTE.Frame().Addr()); got != 0xFEED {
		t.Fatalf("relocated data = %#x", got)
	}
	// Every frame past the image span was scrubbed, not left dirty.
	span := img.Hi - img.Lo
	zero := make([]byte, hw.PageSize)
	for pfn := lo2 + span; pfn < hi2; pfn++ {
		if !bytes.Equal(v2.M.Mem.FrameBytesRO(pfn), zero) {
			t.Fatalf("frame %d beyond image span not scrubbed", pfn)
		}
	}
}

// TestFilterRangeAndDedupPreserveInput is the aliasing regression test:
// both helpers must return fresh slices. The old pfns[:0] idiom
// clobbered the caller's backing array as it filtered, corrupting any
// other slice sharing it (the collected dirty set is reused across
// pre-copy rounds).
func TestFilterRangeAndDedupPreserveInput(t *testing.T) {
	in := []hw.PFN{9, 1, 50, 2, 9, 200, 3}
	orig := append([]hw.PFN(nil), in...)

	got := filterRange(in, 0, 100)
	if !reflect.DeepEqual(in, orig) {
		t.Fatalf("filterRange mutated its input: %v", in)
	}
	if want := []hw.PFN{9, 1, 50, 2, 9, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("filterRange = %v, want %v", got, want)
	}
	if len(got) > 0 && &got[0] == &in[0] {
		t.Fatal("filterRange aliases its input's backing array")
	}

	got = dedup(in)
	if !reflect.DeepEqual(in, orig) {
		t.Fatalf("dedup mutated its input: %v", in)
	}
	if want := []hw.PFN{9, 1, 50, 2, 200, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("dedup = %v, want %v", got, want)
	}
	if &got[0] == &in[0] {
		t.Fatal("dedup aliases its input's backing array")
	}
}

// TestCheckpointResumeFailureReturnsUsableImage: when the snapshot is
// complete but the resume hypercall fails, Checkpoint must hand the
// image back alongside the error — it is exactly the state a failing
// system needs — and that image must actually restore.
func TestCheckpointResumeFailureReturnsUsableImage(t *testing.T) {
	v, caller, guest, c := env(t)
	pfns := fill(v, guest, 24)

	v.InjectUnpauseFailures(1)
	img, err := Checkpoint(c, v, caller, guest)
	if err == nil {
		t.Fatal("injected unpause failure did not surface")
	}
	if img == nil {
		t.Fatal("resume failure discarded the completed snapshot")
	}
	if guest.State != xen.DomPaused {
		t.Fatalf("guest state = %v, want paused after failed resume", guest.State)
	}

	// The image is complete: restoring it elsewhere yields the payload.
	into, err := v.CreateDomain("recovered", img.Hi-img.Lo, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := Restore(c, v, caller, into, img); err != nil {
		t.Fatal(err)
	}
	lo, _ := guest.Frames.Range()
	lo2, _ := into.Frames.Range()
	for i, pfn := range pfns {
		want := v.M.Mem.ReadWord(pfn.Addr())
		if got := v.M.Mem.ReadWord((lo2 + (pfn - lo)).Addr()); got != want {
			t.Fatalf("restored word %d = %#x, want %#x", i, got, want)
		}
	}
	// The original guest is recoverable too: the pause still holds its
	// refcount, so a plain unpause resumes it.
	if err := v.HypDomctlUnpause(c, caller, guest.ID); err != nil {
		t.Fatal(err)
	}
	if guest.State != xen.DomRunning {
		t.Fatalf("guest state = %v after recovery unpause", guest.State)
	}
}
