package migrate

import (
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/xen"
)

// env builds an active VMM with a privileged caller domain and a guest
// domain whose memory holds a recognizable pattern.
func env(t *testing.T) (*xen.VMM, *xen.Domain, *xen.Domain, *hw.CPU) {
	t.Helper()
	m := hw.NewMachine(hw.Config{MemBytes: 32 << 20, NumCPUs: 1})
	v, err := xen.Boot(m)
	if err != nil {
		t.Fatal(err)
	}
	c := m.BootCPU()
	v.Activate(c)
	caller, err := v.CreateDomain("dom0", 1024, true)
	if err != nil {
		t.Fatal(err)
	}
	guest, err := v.CreateDomain("guest", 1024, false)
	if err != nil {
		t.Fatal(err)
	}
	v.SetCurrent(c, caller)
	return v, caller, guest, c
}

// fill writes a deterministic pattern into n frames of d.
func fill(v *xen.VMM, d *xen.Domain, n int) []hw.PFN {
	lo, _ := d.Frames.Range()
	var pfns []hw.PFN
	for i := 0; i < n; i++ {
		pfn := lo + hw.PFN(i)
		v.M.Mem.WriteWord(pfn.Addr(), uint32(0xAB00_0000)|uint32(pfn))
		v.M.Mem.WriteWord(pfn.Addr()+128, uint32(i))
		pfns = append(pfns, pfn)
	}
	return pfns
}

func verify(t *testing.T, mem *hw.PhysMem, src, dst []hw.PFN, srcOrig []hw.PFN) {
	t.Helper()
	for i, pfn := range dst {
		if got := mem.ReadWord(pfn.Addr() + 128); got != uint32(i) {
			t.Fatalf("frame %d payload = %d, want %d", pfn, got, i)
		}
		_ = src
		_ = srcOrig
	}
}

func TestCheckpointRestoreSameMachine(t *testing.T) {
	v, caller, guest, c := env(t)
	pfns := fill(v, guest, 32)
	guest.VCPU0().SetCR3(pfns[0])

	img, err := Checkpoint(c, v, caller, guest)
	if err != nil {
		t.Fatal(err)
	}
	if guest.State != xen.DomRunning {
		t.Fatal("guest not resumed after checkpoint")
	}
	if len(img.Pages) < 32 {
		t.Fatalf("image holds %d pages", len(img.Pages))
	}

	// Corrupt, then restore.
	for _, pfn := range pfns {
		v.M.Mem.ZeroFrame(pfn)
	}
	if err := Restore(c, v, caller, guest, img); err != nil {
		t.Fatal(err)
	}
	for i, pfn := range pfns {
		if got := v.M.Mem.ReadWord(pfn.Addr() + 128); got != uint32(i) {
			t.Fatalf("frame %d payload = %d after restore", pfn, got)
		}
	}
	if guest.VCPU0().CR3() != pfns[0] {
		t.Fatal("vcpu CR3 not restored")
	}
}

func TestImageEncodeDecode(t *testing.T) {
	v, caller, guest, c := env(t)
	fill(v, guest, 8)
	img, err := Checkpoint(c, v, caller, guest)
	if err != nil {
		t.Fatal(err)
	}
	b, err := img.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeImage(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != img.Name || len(back.Pages) != len(img.Pages) {
		t.Fatal("round trip lost data")
	}
	if back.MemBytes() != img.MemBytes() {
		t.Fatal("size mismatch")
	}
}

func TestRestoreAcrossMachinesRelocates(t *testing.T) {
	v1, caller1, guest1, c1 := env(t)

	// Build a tiny page-table tree in the guest so relocation has work.
	lo, _ := guest1.Frames.Range()
	root := lo + 100
	pt := lo + 101
	data := lo + 102
	hw.WritePTE(v1.M.Mem, root, 3, hw.MakePTE(pt, hw.PTEPresent|hw.PTEWrite))
	hw.WritePTE(v1.M.Mem, pt, 7, hw.MakePTE(data, hw.PTEPresent|hw.PTEWrite|hw.PTEUser))
	v1.M.Mem.WriteWord(data.Addr(), 0xFEED)
	guest1.VCPU0().SetCR3(root)

	img, err := Checkpoint(c1, v1, caller1, guest1)
	if err != nil {
		t.Fatal(err)
	}
	img.PinnedRoots = []hw.PFN{root}

	// Second machine with a different partition layout.
	m2 := hw.NewMachine(hw.Config{MemBytes: 32 << 20, NumCPUs: 1})
	v2, err := xen.Boot(m2)
	if err != nil {
		t.Fatal(err)
	}
	c2 := m2.BootCPU()
	v2.Activate(c2)
	caller2, _ := v2.CreateDomain("dom0", 512, true)
	into, _ := v2.CreateDomain("incoming", 1024, false)
	v2.SetCurrent(c2, caller2)

	if err := Restore(c2, v2, caller2, into, img); err != nil {
		t.Fatal(err)
	}
	lo2, _ := into.Frames.Range()
	delta := int64(lo2) - int64(lo)
	newRoot := hw.PFN(int64(root) + delta)
	if into.VCPU0().CR3() != newRoot {
		t.Fatalf("CR3 = %d, want %d", into.VCPU0().CR3(), newRoot)
	}
	// The relocated tree walks to the relocated data frame.
	w, ok := hw.Walk(v2.M.Mem, newRoot, hw.VirtAddr(3<<hw.PDShift|7<<hw.PageShift))
	if !ok {
		t.Fatal("relocated tree does not walk")
	}
	if got := v2.M.Mem.ReadWord(w.PTE.Frame().Addr()); got != 0xFEED {
		t.Fatalf("relocated data = %#x", got)
	}
}

func TestLiveMigrationPreservesMutatingMemory(t *testing.T) {
	v1, caller1, guest, c := env(t)
	fill(v1, guest, 64)
	lo, _ := guest.Frames.Range()

	m2 := hw.NewMachine(hw.Config{MemBytes: 32 << 20, NumCPUs: 1})
	v2, err := xen.Boot(m2)
	if err != nil {
		t.Fatal(err)
	}
	c2 := m2.BootCPU()
	v2.Activate(c2)
	caller2, _ := v2.CreateDomain("dom0", 512, true)
	v2.SetCurrent(c2, caller2)

	// The guest keeps mutating during pre-copy; the final values must
	// arrive regardless.
	finalVals := make(map[hw.PFN]uint32)
	mutator := func(round int) {
		for i := 0; i < 10; i++ {
			pfn := lo + hw.PFN((round*7+i*3)%64)
			val := uint32(round*1000 + i)
			v1.M.Mem.WriteWord(pfn.Addr()+256, val)
			finalVals[pfn] = val
		}
	}

	cfg := DefaultLiveConfig()
	cfg.Mutator = mutator
	into, rep, err := Live(c, v1, caller1, guest, v2, caller2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) < 2 {
		t.Fatalf("pre-copy did only %d rounds", len(rep.Rounds))
	}
	if rep.DowntimeCyc == 0 || rep.DowntimeCyc >= rep.TotalCyc {
		t.Fatalf("downtime %d vs total %d", rep.DowntimeCyc, rep.TotalCyc)
	}
	lo2, _ := into.Frames.Range()
	delta := int64(lo2) - int64(lo)
	for pfn, want := range finalVals {
		tgt := hw.PFN(int64(pfn) + delta)
		if got := v2.M.Mem.ReadWord(tgt.Addr() + 256); got != want {
			t.Fatalf("frame %d: got %d want %d", tgt, got, want)
		}
	}
	// Source domain is gone.
	if _, ok := v1.Domains[guest.ID]; ok {
		t.Fatal("source domain survived migration")
	}
	if into.State != xen.DomRunning {
		t.Fatal("target not running")
	}
}

func TestLiveMigrationIdleGuestConverges(t *testing.T) {
	v1, caller1, guest, c := env(t)
	fill(v1, guest, 128)

	m2 := hw.NewMachine(hw.Config{MemBytes: 32 << 20, NumCPUs: 1})
	v2, _ := xen.Boot(m2)
	c2 := m2.BootCPU()
	v2.Activate(c2)
	caller2, _ := v2.CreateDomain("dom0", 512, true)
	v2.SetCurrent(c2, caller2)

	_, rep, err := Live(c, v1, caller1, guest, v2, caller2, DefaultLiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	// An idle guest converges after round 0 plus the (empty) final copy.
	if rep.Rounds[0].Pages < 128 {
		t.Fatalf("round 0 moved %d pages", rep.Rounds[0].Pages)
	}
	last := rep.Rounds[len(rep.Rounds)-1]
	if last.Pages > 16 {
		t.Fatalf("final copy moved %d pages (no convergence)", last.Pages)
	}
}

// Property: checkpoint -> restore is an identity on guest memory for
// arbitrary contents.
func TestCheckpointRestoreIdentity(t *testing.T) {
	f := func(seed uint32, words []uint32) bool {
		v, caller, guest, c := env(t)
		lo, _ := guest.Frames.Range()
		for i, w := range words {
			if i >= 256 {
				break
			}
			pfn := lo + hw.PFN(i%64)
			v.M.Mem.WriteWord(pfn.Addr()+hw.PhysAddr((i%1000)*4), w^seed)
		}
		img, err := Checkpoint(c, v, caller, guest)
		if err != nil {
			return false
		}
		before := make(map[hw.PFN][]byte)
		for pfn := range img.Pages {
			cp := make([]byte, hw.PageSize)
			copy(cp, v.M.Mem.FrameBytes(pfn))
			before[pfn] = cp
		}
		// Scramble and restore.
		for pfn := range img.Pages {
			v.M.Mem.ZeroFrame(pfn)
		}
		if err := Restore(c, v, caller, guest, img); err != nil {
			return false
		}
		for pfn, want := range before {
			got := v.M.Mem.FrameBytes(pfn)
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
