package migrate

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/xen"
)

// dstEnv builds an active destination VMM on its own machine, wired to
// the source machine's NIC.
func dstEnv(t *testing.T, src *hw.Machine) (*xen.VMM, *xen.Domain, *hw.CPU) {
	t.Helper()
	m := hw.NewMachine(hw.Config{MemBytes: 32 << 20, NumCPUs: 1})
	v, err := xen.Boot(m)
	if err != nil {
		t.Fatal(err)
	}
	c := m.BootCPU()
	v.Activate(c)
	caller, err := v.CreateDomain("dom0", 512, true)
	if err != nil {
		t.Fatal(err)
	}
	v.SetCurrent(c, caller)
	hw.Wire(src.NIC, m.NIC, hw.Gigabit())
	return v, caller, c
}

// pinTree builds a tiny 2-level page-table tree in the guest and pins
// its root with the source VMM, so migrations exercise relocation,
// re-pinning, and the table half of verification.
func pinTree(t *testing.T, v *xen.VMM, guest *xen.Domain, c *hw.CPU) (root, data hw.PFN) {
	t.Helper()
	lo, _ := guest.Frames.Range()
	root, pt, data := lo+100, lo+101, lo+102
	hw.WritePTE(v.M.Mem, root, 3, hw.MakePTE(pt, hw.PTEPresent|hw.PTEWrite))
	hw.WritePTE(v.M.Mem, pt, 7, hw.MakePTE(data, hw.PTEPresent|hw.PTEWrite|hw.PTEUser))
	v.M.Mem.WriteWord(data.Addr(), 0xFEED)
	guest.VCPU0().SetCR3(root)
	if err := v.HypPinTable(c, guest, root); err != nil {
		t.Fatal(err)
	}
	return root, data
}

// assertRolledBack checks the full rollback contract after a failed
// migration: the source domain survives running with its memory intact,
// the dirty log is disarmed, no destination domain leaked, no partial
// image remains on the destination, and both frame tables verify.
func assertRolledBack(t *testing.T, v1 *xen.VMM, guest *xen.Domain,
	v2 *xen.VMM, dstDomsBefore int, filled []hw.PFN) {
	t.Helper()
	if _, ok := v1.Domains[guest.ID]; !ok {
		t.Fatal("rollback lost the source domain")
	}
	if guest.State != xen.DomRunning {
		t.Fatalf("source left in state %v, want running", guest.State)
	}
	if v1.M.Mem.DirtyLogEnabled() {
		t.Fatal("dirty log left armed after rollback")
	}
	if n := len(v2.Domains); n != dstDomsBefore {
		t.Fatalf("destination has %d domains, want %d — a leak", n, dstDomsBefore)
	}
	for i, pfn := range filled {
		if got := v1.M.Mem.ReadWord(pfn.Addr() + 128); got != uint32(i) {
			t.Fatalf("source frame %d corrupted by aborted migration", pfn)
		}
	}
	// No partial image may survive on the destination: the pattern
	// written into the source frames must not appear anywhere in the
	// destination machine's memory.
	nf := hw.PFN(v2.FT.NumFrames())
	for pfn := hw.PFN(0); pfn < nf; pfn++ {
		b := v2.M.Mem.FrameBytesRO(pfn)
		for off := 0; off+4 <= len(b); off += 4 {
			w := uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
			if w&0xFF00_0000 == 0xAB00_0000 && w != 0xAB00_0000 {
				t.Fatalf("destination frame %d still holds source pattern %#x", pfn, w)
			}
		}
	}
	if err := v1.FT.CheckInvariants(); err != nil {
		t.Fatalf("source frame table after rollback: %v", err)
	}
	if err := v2.FT.CheckInvariants(); err != nil {
		t.Fatalf("destination frame table after rollback: %v", err)
	}
}

func TestTxnRollbackIsLIFOAndCommitIsFinal(t *testing.T) {
	var order []string
	txn := BeginTxn("test")
	for _, s := range []string{"a", "b", "c"} {
		s := s
		txn.Journal(s, func() error { order = append(order, s); return nil })
	}
	if got := txn.StepNames(); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("step names: %v", got)
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "c" || order[1] != "b" || order[2] != "a" {
		t.Fatalf("rollback order %v, want LIFO", order)
	}

	order = nil
	txn = BeginTxn("test")
	txn.Journal("x", func() error { order = append(order, "x"); return nil })
	txn.Commit()
	if !txn.Committed() {
		t.Fatal("not committed")
	}
	if err := txn.Rollback(); err != nil || len(order) != 0 {
		t.Fatalf("rollback after commit ran undos: %v, %v", order, err)
	}

	// Undo errors don't stop the ladder; they are joined.
	var ran bool
	txn = BeginTxn("test")
	txn.Journal("first", func() error { ran = true; return nil })
	txn.Journal("second", func() error { return fmt.Errorf("boom") })
	if err := txn.Rollback(); err == nil {
		t.Fatal("undo error swallowed")
	}
	if !ran {
		t.Fatal("ladder stopped at the failing undo")
	}
}

// liveFaultCases enumerates one fault per transaction step: every
// hypercall and copy step of the pipeline fails once, and every failure
// must roll back to a clean world.
func TestLiveRollbackAtEveryStep(t *testing.T) {
	cases := []struct {
		name string
		arm  func(v1, v2 *xen.VMM, cfg *LiveConfig)
	}{
		{"dest-pause-fail", func(v1, v2 *xen.VMM, cfg *LiveConfig) {
			v2.InjectPauseFailures(1)
		}},
		{"midcopy-abort", func(v1, v2 *xen.VMM, cfg *LiveConfig) {
			cfg.Inject = &FaultInjection{FailCopyAfterPages: 10}
		}},
		{"link-stall", func(v1, v2 *xen.VMM, cfg *LiveConfig) {
			cfg.Inject = &FaultInjection{StallLinkAfterRounds: 1}
		}},
		{"source-pause-fail", func(v1, v2 *xen.VMM, cfg *LiveConfig) {
			v1.InjectPauseFailures(1)
		}},
		{"dest-pin-fail", func(v1, v2 *xen.VMM, cfg *LiveConfig) {
			v2.InjectPinFailures(1)
		}},
		{"source-destroy-fail", func(v1, v2 *xen.VMM, cfg *LiveConfig) {
			v1.InjectDestroyFailures(1)
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			v1, caller1, guest, c := env(t)
			filled := fill(v1, guest, 64)
			root, _ := pinTree(t, v1, guest, c)
			v2, caller2, _ := dstEnv(t, v1.M)
			dstDoms := len(v2.Domains)

			cfg := DefaultLiveConfig()
			// Keep a trickle of dirty pages flowing so round-indexed
			// faults (the link stall) have traffic to hit. Offset 8
			// stays clear of fill's payload at offset 128.
			lo, _ := guest.Frames.Range()
			cfg.Mutator = func(round int) {
				for i := 0; i < 8; i++ {
					pfn := lo + hw.PFN((round*7+i)%64)
					v1.M.Mem.WriteWord(pfn.Addr()+8, uint32(round*100+i))
				}
			}
			tc.arm(v1, v2, &cfg)
			into, rep, err := Live(c, v1, caller1, guest, v2, caller2, cfg)
			if err == nil {
				t.Fatal("migration committed despite injected fault")
			}
			if into != nil {
				t.Fatal("failed migration returned a domain")
			}
			if rep == nil || len(rep.RolledBack) == 0 {
				t.Fatalf("no rollback journal in report: %+v", rep)
			}
			assertRolledBack(t, v1, guest, v2, dstDoms, filled)
			if !guest.HasPinned(root) {
				t.Fatal("source lost its pinned root")
			}

			// Clear any leftover injection state and prove the retry
			// commits: an aborted maintenance window is postponed, not
			// lost.
			v1.InjectPauseFailures(0)
			v1.InjectDestroyFailures(0)
			v2.InjectPauseFailures(0)
			v2.InjectPinFailures(0)
			cfg.Inject = nil
			into, rep, err = Live(c, v1, caller1, guest, v2, caller2, cfg)
			if err != nil {
				t.Fatalf("retry after fault cleared: %v", err)
			}
			if !rep.Verified {
				t.Fatal("retry committed unverified")
			}
			if into.State != xen.DomRunning {
				t.Fatalf("migrated domain state %v", into.State)
			}
		})
	}
}

func TestLiveMigrationVerifiesAndRepins(t *testing.T) {
	v1, caller1, guest, c := env(t)
	fill(v1, guest, 64)
	lo, _ := guest.Frames.Range()
	root, data := pinTree(t, v1, guest, c)

	// Snapshot the source partition before migration: the destination
	// must be bit-identical (modulo relocated tables).
	srcCopy := make(map[hw.PFN][]byte)
	hi := lo + 1024
	for pfn := lo; pfn < hi; pfn++ {
		cp := make([]byte, hw.PageSize)
		copy(cp, v1.M.Mem.FrameBytesRO(pfn))
		srcCopy[pfn] = cp
	}

	v2, caller2, _ := dstEnv(t, v1.M)
	into, rep, err := Live(c, v1, caller1, guest, v2, caller2, DefaultLiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatal("successful migration not marked verified")
	}
	if rep.StopReason != "threshold" {
		t.Fatalf("idle guest stop reason %q", rep.StopReason)
	}
	lo2, _ := into.Frames.Range()
	delta := int64(lo2) - int64(lo)
	newRoot := hw.PFN(int64(root) + delta)
	if !into.HasPinned(newRoot) {
		t.Fatal("relocated root not re-pinned on the destination domain")
	}
	if !v2.FT.Get(newRoot).Pinned {
		t.Fatal("destination frame table does not show the root pinned")
	}
	if into.VCPU0().CR3() != newRoot {
		t.Fatalf("CR3 = %d, want %d", into.VCPU0().CR3(), newRoot)
	}
	// Non-table frames are bit-identical; the relocated data frame
	// still carries its payload.
	tables := map[hw.PFN]bool{root: true, root + 1: true}
	for pfn, want := range srcCopy {
		if tables[pfn] {
			continue
		}
		got := v2.M.Mem.FrameBytesRO(hw.PFN(int64(pfn) + delta))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("frame %d byte %d diverges", pfn, i)
			}
		}
	}
	newData := hw.PFN(int64(data) + delta)
	if got := v2.M.Mem.ReadWord(newData.Addr()); got != 0xFEED {
		t.Fatalf("relocated data = %#x", got)
	}
	// Stop-and-copy is labelled with the round the stop decision was
	// made in, one past the last pre-copy round.
	last := rep.Rounds[len(rep.Rounds)-1]
	if last.Decision != "stop-and-copy" {
		t.Fatalf("final round decision %q", last.Decision)
	}
	if want := rep.Rounds[len(rep.Rounds)-2].Round + 1; last.Round != want {
		t.Fatalf("stop-and-copy labelled round %d, want %d", last.Round, want)
	}
}

func TestLiveAdaptiveStopsUnderSLO(t *testing.T) {
	v1, caller1, guest, c := env(t)
	fill(v1, guest, 256)
	lo, _ := guest.Frames.Range()

	v2, caller2, _ := dstEnv(t, v1.M)
	cfg := DefaultLiveConfig()
	// A workload dirtying far more than the threshold each round: the
	// fixed policy would run all 8 rounds; a generous SLO stops as soon
	// as the estimate fits.
	cfg.Mutator = func(round int) {
		for i := 0; i < 64; i++ {
			pfn := lo + hw.PFN((round*31+i)%256)
			v1.M.Mem.WriteWord(pfn.Addr()+8, uint32(round*100+i))
		}
	}
	cfg.DowntimeSLOCyc = 100_000_000 // generous: any dirty set fits
	_, rep, err := Live(c, v1, caller1, guest, v2, caller2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StopReason != "slo" {
		t.Fatalf("stop reason %q, want slo", rep.StopReason)
	}
	if !rep.Verified {
		t.Fatal("unverified")
	}
	if n := len(rep.Rounds); n != 2 {
		t.Fatalf("SLO stop took %d rounds, want round 0 + stop-and-copy", n)
	}

	// A hopeless SLO with a non-shrinking dirty set stops on divergence
	// instead of burning all 8 rounds.
	v1b, caller1b, guestb, cb := env(t)
	fill(v1b, guestb, 256)
	lob, _ := guestb.Frames.Range()
	v2b, caller2b, _ := dstEnv(t, v1b.M)
	cfgb := DefaultLiveConfig()
	cfgb.Mutator = func(round int) {
		for i := 0; i < 64; i++ {
			pfn := lob + hw.PFN((round*31+i)%256)
			v1b.M.Mem.WriteWord(pfn.Addr()+8, uint32(round*100+i))
		}
	}
	cfgb.DowntimeSLOCyc = 1 // unmeetable
	_, repb, err := Live(cb, v1b, caller1b, guestb, v2b, caller2b, cfgb)
	if err != nil {
		t.Fatal(err)
	}
	if repb.StopReason != "diverging" {
		t.Fatalf("stop reason %q, want diverging", repb.StopReason)
	}
	if len(repb.Rounds) >= len(rep.Rounds)+8 {
		t.Fatalf("divergence cutoff never fired: %d rounds", len(repb.Rounds))
	}
}

func TestCheckpointUnpauseFailureReturnsImage(t *testing.T) {
	v, caller, guest, c := env(t)
	fill(v, guest, 32)
	v.InjectUnpauseFailures(1)
	img, err := Checkpoint(c, v, caller, guest)
	if err == nil {
		t.Fatal("unpause failure not reported")
	}
	if img == nil {
		t.Fatal("completed snapshot discarded on unpause failure")
	}
	if len(img.Pages) < 32 {
		t.Fatalf("image holds %d pages", len(img.Pages))
	}
	if guest.State != xen.DomPaused {
		t.Fatalf("guest state %v — the error must reflect reality", guest.State)
	}
	// The returned image is usable: restore it and resume.
	v.InjectUnpauseFailures(0)
	if err := Restore(c, v, caller, guest, img); err != nil {
		t.Fatal(err)
	}
	if guest.State != xen.DomRunning {
		t.Fatal("guest not resumed by restore")
	}
}

func TestRestoreRepinsRootsOnDestination(t *testing.T) {
	v1, caller1, guest1, c1 := env(t)
	root, data := pinTree(t, v1, guest1, c1)

	img, err := Checkpoint(c1, v1, caller1, guest1)
	if err != nil {
		t.Fatal(err)
	}

	m2 := hw.NewMachine(hw.Config{MemBytes: 32 << 20, NumCPUs: 1})
	v2, err := xen.Boot(m2)
	if err != nil {
		t.Fatal(err)
	}
	c2 := m2.BootCPU()
	v2.Activate(c2)
	caller2, _ := v2.CreateDomain("dom0", 512, true)
	into, _ := v2.CreateDomain("incoming", 1024, false)
	v2.SetCurrent(c2, caller2)

	if err := Restore(c2, v2, caller2, into, img); err != nil {
		t.Fatal(err)
	}
	lo1, _ := guest1.Frames.Range()
	lo2, _ := into.Frames.Range()
	delta := int64(lo2) - int64(lo1)
	newRoot := hw.PFN(int64(root) + delta)
	if !into.HasPinned(newRoot) {
		t.Fatal("restored root not re-pinned with the destination VMM")
	}
	if !v2.FT.Get(newRoot).Pinned {
		t.Fatal("destination frame table does not show the restored root pinned")
	}
	if into.State != xen.DomRunning {
		t.Fatalf("restored domain state %v", into.State)
	}
	newData := hw.PFN(int64(data) + delta)
	if got := v2.M.Mem.ReadWord(newData.Addr()); got != 0xFEED {
		t.Fatalf("restored data = %#x", got)
	}
}

func TestRestoreRollbackOnPinFailure(t *testing.T) {
	v1, caller1, guest1, c1 := env(t)
	pinTree(t, v1, guest1, c1)
	img, err := Checkpoint(c1, v1, caller1, guest1)
	if err != nil {
		t.Fatal(err)
	}

	m2 := hw.NewMachine(hw.Config{MemBytes: 32 << 20, NumCPUs: 1})
	v2, err := xen.Boot(m2)
	if err != nil {
		t.Fatal(err)
	}
	c2 := m2.BootCPU()
	v2.Activate(c2)
	caller2, _ := v2.CreateDomain("dom0", 512, true)
	into, _ := v2.CreateDomain("incoming", 1024, false)
	v2.SetCurrent(c2, caller2)

	v2.InjectPinFailures(1)
	if err := Restore(c2, v2, caller2, into, img); err == nil {
		t.Fatal("restore committed despite pin failure")
	}
	if into.State != xen.DomPaused {
		t.Fatalf("failed restore left domain %v, want paused", into.State)
	}
	if n := len(into.PinnedRoots()); n != 0 {
		t.Fatalf("failed restore left %d pinned roots", n)
	}
	// The laid-down image was scrubbed: no 0xFEED payload remains.
	lo2, hi2 := into.Frames.Range()
	for pfn := lo2; pfn < hi2; pfn++ {
		if got := v2.M.Mem.ReadWord(pfn.Addr()); got == 0xFEED {
			t.Fatalf("frame %d still holds restored payload after abort", pfn)
		}
	}
	if err := v2.FT.CheckInvariants(); err != nil {
		t.Fatalf("frame table after aborted restore: %v", err)
	}
	// Retry once the transient failure clears.
	if err := Restore(c2, v2, caller2, into, img); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if into.State != xen.DomRunning {
		t.Fatal("retried restore did not resume the domain")
	}
}

// Property: a successful live migration is an identity on guest memory
// — every frame arrives bit-identical at the relocated position — for
// arbitrary contents and dirty patterns.
func TestLiveMigrationIdentityProperty(t *testing.T) {
	f := func(seed uint32, words []uint32) bool {
		v1, caller1, guest, c := env(t)
		lo, _ := guest.Frames.Range()
		for i, w := range words {
			if i >= 512 {
				break
			}
			pfn := lo + hw.PFN(i%128)
			v1.M.Mem.WriteWord(pfn.Addr()+hw.PhysAddr((i%1000)*4), w^seed)
		}
		hi := lo + 1024
		before := make([][]byte, 0, 1024)
		for pfn := lo; pfn < hi; pfn++ {
			cp := make([]byte, hw.PageSize)
			copy(cp, v1.M.Mem.FrameBytesRO(pfn))
			before = append(before, cp)
		}
		v2, caller2, _ := dstEnv(t, v1.M)
		into, rep, err := Live(c, v1, caller1, guest, v2, caller2, DefaultLiveConfig())
		if err != nil || !rep.Verified {
			return false
		}
		lo2, _ := into.Frames.Range()
		for i, want := range before {
			got := v2.M.Mem.FrameBytesRO(lo2 + hw.PFN(i))
			for j := range want {
				if got[j] != want[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}
