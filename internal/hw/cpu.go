package hw

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/obs"
)

// CPU is one simulated processor. All guest-kernel, VMM and Mercury code
// executes "on" a CPU by charging cycles to its clock and manipulating its
// privileged state. A CPU is driven by exactly one goroutine at a time;
// its LAPIC may be posted to from any goroutine.
type CPU struct {
	ID int
	M  *Machine

	Clk   *Clock
	TLB   *TLB
	LAPIC *LAPIC

	// Privileged state (§3.2.1). CPL is the current privilege level;
	// CR3 the page-directory frame; IF the hardware interrupt flag.
	CPL uint8
	CR3 PFN
	IF  bool

	// Current code/stack selectors; saved into trap frames on delivery.
	CS, SS Selector

	// Installed descriptor tables ("register" state reloaded by Mercury's
	// state-reloading functions, §5.1.3).
	IDTR *IDT
	GDTR *GDT

	// intrDepth > 0 while executing an interrupt/exception handler;
	// nested delivery is suppressed.
	intrDepth int

	// halted is set while the CPU sits in its idle loop; cross-CPU code
	// may read it.
	halted atomic.Bool

	// driven marks that some goroutine is executing on this CPU
	// (scheduler loop or temporary idler); exactly one driver at a time.
	driven atomic.Bool

	// sinceThrottle accumulates charged cycles between lockstep checks.
	sinceThrottle Cycles

	// irqCol/irqLat cache the interrupt-delivery latency histogram for
	// the installed collector. Only the owning goroutine touches them
	// (PollInterrupts runs on the CPU's driver), so no atomics needed;
	// the disabled path is the machine's one atomic telemetry load.
	irqCol *obs.Collector
	irqLat *obs.Histogram

	// Statistics.
	Stats CPUStats
}

// CPUStats counts notable events on one CPU.
type CPUStats struct {
	Interrupts uint64
	Faults     uint64
	GPFaults   uint64
	CR3Writes  uint64
	IdleCycles uint64
}

// Lockstep parameters: a CPU may run at most throttleQuantum cycles
// ahead of the slowest other driven CPU, checked every
// throttleCheckEvery charged cycles. This keeps simulated time causal
// across cores regardless of host goroutine scheduling.
const (
	throttleCheckEvery Cycles = 16 << 10
	throttleQuantum    Cycles = 150_000 // 50 us at 3 GHz
)

// Charge advances the CPU's clock by n cycles and gives pending
// interrupts a chance to be delivered. It is the single point through
// which all simulated work flows.
func (c *CPU) Charge(n Cycles) {
	c.Clk.Advance(n)
	if c.sinceThrottle += n; c.sinceThrottle >= throttleCheckEvery {
		c.sinceThrottle = 0
		c.throttle()
	}
	c.PollInterrupts()
}

// throttle blocks (host-side only) while this CPU is too far ahead of
// another driven CPU's clock.
func (c *CPU) throttle() {
	if len(c.M.CPUs) == 1 {
		return
	}
	for {
		own := c.Clk.Read()
		behind := own
		any := false
		for _, o := range c.M.CPUs {
			if o == c || !o.driven.Load() {
				continue
			}
			any = true
			if n := o.Clk.Read(); n < behind {
				behind = n
			}
		}
		if !any || own-behind <= throttleQuantum {
			return
		}
		runtime.Gosched()
	}
}

// Now returns the CPU's current cycle count (RDTSC).
func (c *CPU) Now() Cycles { return c.Clk.Read() }

// SetMode changes the current privilege level, reloading CS/SS with the
// matching selectors (user at PL3, kernel otherwise). It returns the
// previous level so callers can restore it. All simulated software uses
// this instead of assigning CPL directly, so interrupt frames always
// capture coherent selectors.
func (c *CPU) SetMode(cpl uint8) (prev uint8) {
	prev = c.CPL
	c.CPL = cpl
	if c.GDTR == nil {
		return prev
	}
	switch {
	case cpl == PL3:
		c.CS = MakeSelector(GDTUserCode, PL3)
		c.SS = MakeSelector(GDTUserData, PL3)
	case c.GDTR.Entries[GDTKernelCode].DPL == cpl:
		c.CS = MakeSelector(GDTKernelCode, cpl)
		c.SS = MakeSelector(GDTKernelData, cpl)
	case c.GDTR.Entries[GDTVMMCode].Present && c.GDTR.Entries[GDTVMMCode].DPL == cpl:
		// The hypervisor's own segments: on a table whose kernel
		// descriptors are deprivileged, PL0 code is the VMM.
		c.CS = MakeSelector(GDTVMMCode, cpl)
		c.SS = MakeSelector(GDTVMMData, cpl)
	default:
		c.CS = MakeSelector(GDTKernelCode, cpl)
		c.SS = MakeSelector(GDTKernelData, cpl)
	}
	return prev
}

// Work charges n cycles of plain computation (no privileged semantics).
func (c *CPU) Work(n Cycles) { c.Charge(n) }

// PollInterrupts delivers one pending interrupt if the CPU is accepting
// them. Called from Charge and from idle loops.
func (c *CPU) PollInterrupts() {
	if !c.IF || c.intrDepth > 0 {
		return
	}
	now := c.Clk.Read()
	if v, deadline, ok := c.LAPIC.timerDue(now); ok {
		c.observeIRQLatency(now, deadline)
		c.deliver(v, &TrapFrame{Vector: v})
		return
	}
	if v, posted, ok := c.LAPIC.take(); ok {
		if posted > 0 {
			c.observeIRQLatency(now, posted)
		}
		c.deliver(v, &TrapFrame{Vector: v})
	}
}

// observeIRQLatency records the cycles between an interrupt becoming
// deliverable (its LAPIC post, or the armed timer deadline) and the
// poll that delivers it — the delivery-latency jitter a virtualized
// kernel cannot hide (interrupts detour through the VMM's event path).
func (c *CPU) observeIRQLatency(now, since Cycles) {
	col := c.M.Telemetry()
	if col == nil {
		return
	}
	if c.irqCol != col {
		c.irqCol = col
		c.irqLat = col.Registry.Histogram("hw", "irq_delivery_cycles")
	}
	if now >= since {
		c.irqLat.Observe(now - since)
	}
}

// deliver pushes a trap frame and runs the gate handler for vector.
func (c *CPU) deliver(vector int, f *TrapFrame) {
	if c.IDTR == nil {
		panic(fmt.Sprintf("hw: cpu%d interrupt %d with no IDT", c.ID, vector))
	}
	g := c.IDTR.Get(vector)
	if !g.Present {
		panic(fmt.Sprintf("hw: cpu%d interrupt %d: gate not present in %s",
			c.ID, vector, c.IDTR.Name))
	}
	cost := c.M.Costs.IRQDeliver
	if vector < 32 {
		cost = c.M.Costs.FaultEntry
	}
	c.Clk.Advance(cost)
	c.Stats.Interrupts++

	// Hardware pushes the interrupted context.
	f.Vector = vector
	f.CS = c.CS
	f.SS = c.SS
	f.IF = c.IF

	prevCPL, prevCS, prevSS := c.CPL, c.CS, c.SS
	c.intrDepth++
	c.IF = false // interrupt gates clear IF
	c.SetMode(g.Target)

	g.Handler(c, f)

	// iret: pop the (possibly patched) frame. Mercury's mode switch
	// rewrites f.CS/f.SS RPL bits so the resumed context lands at the
	// right privilege level (§5.1.3).
	c.intrDepth--
	c.Clk.Advance(c.M.Costs.IRQEOI)
	c.checkReturnFrame(f)
	c.CPL = f.CS.RPL()
	c.CS = f.CS
	c.SS = f.SS
	c.IF = f.IF
	_ = prevCPL
	_ = prevCS
	_ = prevSS
}

// checkReturnFrame validates that the selectors in a frame about to be
// popped are consistent with the live GDT. Popping a stale selector whose
// RPL does not match the descriptor's DPL raises #GP — the exact hazard
// Mercury's selector-fixup stub exists to prevent (§5.1.2).
func (c *CPU) checkReturnFrame(f *TrapFrame) {
	if c.GDTR == nil {
		return
	}
	idx := f.CS.Index()
	if idx >= len(c.GDTR.Entries) {
		c.RaiseGP(fmt.Sprintf("iret: selector index %d beyond GDT", idx))
		return
	}
	d := c.GDTR.Entries[idx]
	if !d.Present {
		c.RaiseGP("iret: code segment not present")
		return
	}
	// Returning to a privilege level more privileged than the descriptor
	// allows, or popping kernel selectors whose RPL no longer matches the
	// kernel DPL, is a protection violation.
	if idx == GDTKernelCode && f.CS.RPL() != d.DPL {
		c.RaiseGP(fmt.Sprintf("iret: stale kernel selector %v, kernel DPL now %d",
			f.CS, d.DPL))
	}
}

// GPError describes a general protection fault with no registered handler.
type GPError struct{ Reason string }

func (e *GPError) Error() string { return "general protection fault: " + e.Reason }

// RaiseGP raises #GP. If the installed IDT has a handler it is invoked;
// otherwise the simulation panics with a GPError (a triple fault).
func (c *CPU) RaiseGP(reason string) {
	c.Stats.GPFaults++
	if c.IDTR != nil && c.IDTR.Get(VecGP).Present {
		f := &TrapFrame{Vector: VecGP}
		c.deliverFault(VecGP, f)
		return
	}
	panic(&GPError{Reason: reason})
}

// deliverFault delivers an exception regardless of IF (faults are not
// maskable) but still honors nesting depth bookkeeping.
func (c *CPU) deliverFault(vector int, f *TrapFrame) {
	savedIF := c.IF
	c.IF = true // allow deliver() to run; it will re-clear
	saved := c.intrDepth
	c.intrDepth = 0
	c.deliver(vector, f)
	c.intrDepth = saved
	c.IF = savedIF
}

// --- privileged instructions (sensitive CPU operations, §5.3) ---

// requirePL0 traps to #GP if the CPU is not at PL0. This is the
// de-privileging enforcement: a virtualized kernel at PL1 executing a raw
// privileged instruction lands in the VMM's #GP handler.
func (c *CPU) requirePL0(what string) bool {
	if c.CPL == PL0 {
		return true
	}
	c.RaiseGP(what + " at CPL " + fmt.Sprint(c.CPL))
	return false
}

// WriteCR3 installs a new page-directory base and flushes the TLB.
func (c *CPU) WriteCR3(pfn PFN) {
	c.Charge(c.M.Costs.PrivInsn)
	if !c.requirePL0("mov cr3") {
		return
	}
	c.CR3 = pfn
	c.Stats.CR3Writes++
	c.TLB.Flush()
	c.Clk.Advance(c.M.Costs.TLBFlush)
}

// ReadCR3 returns the current page-directory base (readable at any PL in
// this model; real x86 traps, but no measured path reads CR3 from PL>0).
func (c *CPU) ReadCR3() PFN { return c.CR3 }

// Lidt installs an interrupt descriptor table.
func (c *CPU) Lidt(t *IDT) {
	c.Charge(c.M.Costs.DescTableLoad)
	if !c.requirePL0("lidt") {
		return
	}
	c.IDTR = t
}

// Lgdt installs a global descriptor table and reloads segment selectors.
func (c *CPU) Lgdt(g *GDT) {
	c.Charge(c.M.Costs.DescTableLoad + c.M.Costs.SegReload)
	if !c.requirePL0("lgdt") {
		return
	}
	c.GDTR = g
	c.CS = MakeSelector(GDTKernelCode, c.CPL)
	c.SS = MakeSelector(GDTKernelData, c.CPL)
}

// Cli disables hardware interrupts.
func (c *CPU) Cli() {
	c.Charge(c.M.Costs.PrivInsn)
	if !c.requirePL0("cli") {
		return
	}
	c.IF = false
}

// Sti enables hardware interrupts.
func (c *CPU) Sti() {
	c.Charge(c.M.Costs.PrivInsn)
	if !c.requirePL0("sti") {
		return
	}
	c.IF = true
}

// Invlpg invalidates one TLB entry.
func (c *CPU) Invlpg(va VirtAddr) {
	c.Charge(c.M.Costs.PrivInsn)
	if !c.requirePL0("invlpg") {
		return
	}
	c.TLB.Invalidate(VPNOf(va))
}

// SendIPI posts vector to another CPU's LAPIC.
func (c *CPU) SendIPI(target int, vector int) {
	c.Charge(c.M.Costs.IPISend)
	if !c.requirePL0("apic icr write") {
		return
	}
	if target < 0 || target >= len(c.M.CPUs) || target == c.ID {
		return
	}
	t := c.M.CPUs[target]
	t.LAPIC.Post(vector)
	t.LAPIC.IPIsReceived.Add(1)
}

// --- memory access through the MMU ---

// AccessResult reports how a memory access resolved.
type AccessResult struct {
	PFN     PFN
	Faults  int  // number of #PF deliveries it took
	Skipped bool // the faulting instruction was skipped (signal abort)
}

const maxFaultRetries = 8

// Translate resolves va for the given access type, delivering #PF through
// the installed IDT until the mapping is usable. It charges TLB and walk
// costs. The handler (guest kernel or VMM) is expected to repair the
// mapping; if the fault does not resolve after several retries the
// simulation panics, standing in for a kernel oops.
func (c *CPU) Translate(va VirtAddr, write bool) AccessResult {
	user := c.CPL == PL3
	var res AccessResult
	for try := 0; ; try++ {
		vpn := VPNOf(va)
		if pfn, w, u, ok := c.TLB.Lookup(vpn); ok {
			if (!write || w) && (!user || u) {
				c.Charge(c.M.Costs.TLBHit)
				res.PFN = pfn
				return res
			}
			// Permission upgrade needed: fall through to walk so the
			// fault carries fresh PTE state.
			c.TLB.Invalidate(vpn)
		}
		c.Clk.Advance(c.M.Costs.TLBMissWalk)
		wr, ok := Walk(c.M.Mem, c.CR3, va)
		if ok {
			pte := wr.PTE
			permOK := (!write || pte.Writable()) && (!user || pte.UserOK())
			if permOK {
				c.TLB.Insert(vpn, pte.Frame(), pte.Writable(), pte.UserOK(),
					pte.Flags()&PTEGlobal != 0)
				res.PFN = pte.Frame()
				return res
			}
		}
		if try >= maxFaultRetries {
			panic(fmt.Sprintf("hw: cpu%d unresolved page fault at %#x (write=%v user=%v)",
				c.ID, va, write, user))
		}
		res.Faults++
		c.Stats.Faults++
		f := &TrapFrame{Addr: va, Write: write, User: user}
		c.deliverFault(VecPageFault, f)
		c.Clk.Advance(c.M.Costs.FaultExit)
		if f.Skip {
			res.Skipped = true
			return res
		}
	}
}

// ReadWord reads a 32-bit word at virtual address va.
func (c *CPU) ReadWord(va VirtAddr) uint32 {
	r := c.Translate(va, false)
	if r.Skipped {
		return 0
	}
	c.Charge(c.M.Costs.MemRead)
	return c.M.Mem.ReadWord(r.PFN.Addr() + PhysAddr(va&PageMask&^3))
}

// WriteWord writes a 32-bit word at virtual address va.
func (c *CPU) WriteWord(va VirtAddr, v uint32) {
	r := c.Translate(va, true)
	if r.Skipped {
		return
	}
	c.Charge(c.M.Costs.MemWrite)
	c.M.Mem.WriteWord(r.PFN.Addr()+PhysAddr(va&PageMask&^3), v)
}

// TouchPage simulates bringing one page of working set back after a
// context switch or TLB flush: a translation plus cold cache lines.
func (c *CPU) TouchPage(va VirtAddr) {
	c.Translate(va, false)
	c.Charge(c.M.Costs.TLBRefillPage)
}

// --- idle ---

// IdleUntil spins at low simulated cost until cond returns true or an
// interrupt/timer makes progress. It cooperates with other CPU goroutines
// via the Go scheduler.
func (c *CPU) IdleUntil(cond func() bool) {
	c.halted.Store(true)
	defer c.halted.Store(false)
	for !cond() {
		// The TSC is synchronized across cores: while halted, this
		// core's clock keeps pace with whichever core is doing work.
		if peak := c.M.MaxClock(); peak > c.Clk.Read() {
			c.Stats.IdleCycles += peak - c.Clk.Read()
			c.Clk.Advance(peak - c.Clk.Read())
		}
		// If the whole machine is idle and a local timer is armed, jump
		// straight to the deadline: the hardware would sleep in hlt.
		// With other cores busy, time is driven by their work instead.
		if !c.LAPIC.HasPending() && c.othersHalted() {
			if dl, ok := c.LAPIC.NextTimerDeadline(); ok && dl > c.Clk.Read() {
				c.Stats.IdleCycles += dl - c.Clk.Read()
				c.Clk.Advance(dl - c.Clk.Read())
			}
		}
		c.PollInterrupts()
		if cond() {
			return
		}
		c.Stats.IdleCycles += 20
		c.Clk.Advance(20)
		runtime.Gosched()
	}
}

// Halted reports whether the CPU is in its idle loop.
func (c *CPU) Halted() bool { return c.halted.Load() }

// othersHalted reports whether every other CPU is idle.
func (c *CPU) othersHalted() bool {
	for _, o := range c.M.CPUs {
		if o != c && !o.halted.Load() {
			return false
		}
	}
	return true
}

// TryDrive claims the right to execute on this CPU. Scheduler loops and
// temporary idlers take it so two goroutines never drive one CPU.
func (c *CPU) TryDrive() bool { return c.driven.CompareAndSwap(false, true) }

// ReleaseDrive gives the CPU up.
func (c *CPU) ReleaseDrive() { c.driven.Store(false) }
