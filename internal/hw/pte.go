package hw

// Page-table entry format: a 32-bit word with x86-style flag bits in the
// low 12 bits and the frame number above. Both levels of the two-level
// tree use the same format. The hardware walker in this package and the
// VMM's validation code in internal/xen interpret entries identically,
// which is what lets the VMM install guest page tables directly
// ("direct mode", §3.2.2) with write access withheld.
const (
	PTEPresent  uint32 = 1 << 0
	PTEWrite    uint32 = 1 << 1
	PTEUser     uint32 = 1 << 2
	PTEAccessed uint32 = 1 << 5
	PTEDirty    uint32 = 1 << 6
	PTEGlobal   uint32 = 1 << 8
	// PTECow is a software bit marking copy-on-write mappings. Hardware
	// ignores software bits; the guest's fault handler interprets it.
	PTECow uint32 = 1 << 9

	pteFlagMask uint32 = 0xFFF
)

// PTE is one page-table entry value.
type PTE uint32

// MakePTE builds an entry mapping pfn with the given flag bits.
func MakePTE(pfn PFN, flags uint32) PTE {
	return PTE(uint32(pfn)<<PageShift | (flags & pteFlagMask))
}

// Present reports whether the entry maps a page.
func (e PTE) Present() bool { return uint32(e)&PTEPresent != 0 }

// Writable reports whether the mapping permits writes.
func (e PTE) Writable() bool { return uint32(e)&PTEWrite != 0 }

// UserOK reports whether user-mode code may use the mapping.
func (e PTE) UserOK() bool { return uint32(e)&PTEUser != 0 }

// Cow reports whether the mapping is copy-on-write.
func (e PTE) Cow() bool { return uint32(e)&PTECow != 0 }

// Frame returns the mapped physical frame.
func (e PTE) Frame() PFN { return PFN(uint32(e) >> PageShift) }

// Flags returns the raw flag bits.
func (e PTE) Flags() uint32 { return uint32(e) & pteFlagMask }

// WithFlags returns the entry with flag bits replaced.
func (e PTE) WithFlags(flags uint32) PTE {
	return PTE(uint32(e)&^pteFlagMask | flags&pteFlagMask)
}

// Two-level tree geometry: 1024 entries per level, 4 MB per directory
// entry, 4 KB per leaf.
const (
	PTEntries   = PageSize / 4 // 1024 entries per table page
	PDShift     = 22
	PTIndexMask = PTEntries - 1
)

// PDIndex returns the page-directory index of a virtual address.
func PDIndex(a VirtAddr) int { return int(a >> PDShift) }

// PTIndex returns the page-table index of a virtual address.
func PTIndex(a VirtAddr) int { return int(a>>PageShift) & PTIndexMask }

// ReadPTE reads a page-table entry from physical memory: table is the
// frame holding the table page, idx the entry index.
func ReadPTE(m *PhysMem, table PFN, idx int) PTE {
	return PTE(m.ReadWord(table.Addr() + PhysAddr(idx*4)))
}

// WritePTE stores a page-table entry into physical memory. This is the
// raw store; whether a kernel may perform it directly or must go through
// the VMM is decided by the virtualization object layer.
func WritePTE(m *PhysMem, table PFN, idx int, e PTE) {
	m.WriteWord(table.Addr()+PhysAddr(idx*4), uint32(e))
}

// WalkResult is the outcome of a hardware page-table walk.
type WalkResult struct {
	PTE   PTE
	Table PFN // frame of the leaf table holding the entry
	Index int // index within that table
}

// Walk performs the two-level hardware walk for va starting at the page
// directory in frame cr3. It returns ok=false if either level is not
// present. Walk itself charges nothing; the CPU charges walk cost at its
// call sites so TLB hits can skip it.
func Walk(m *PhysMem, cr3 PFN, va VirtAddr) (WalkResult, bool) {
	pde := ReadPTE(m, cr3, PDIndex(va))
	if !pde.Present() {
		return WalkResult{}, false
	}
	pt := pde.Frame()
	pte := ReadPTE(m, pt, PTIndex(va))
	if !pte.Present() {
		return WalkResult{PTE: pte, Table: pt, Index: PTIndex(va)}, false
	}
	return WalkResult{PTE: pte, Table: pt, Index: PTIndex(va)}, true
}
