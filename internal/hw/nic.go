package hw

import (
	"sync"
	"sync/atomic"
)

// Packet is one network frame.
type Packet struct {
	Data    []byte
	ReadyAt Cycles // receive-side cycle count at which it is visible
}

// LinkProps describes the wire between two endpoints: the paper's setup
// uses a 100 Mb LAN for the application benchmarks and a Gigabit switch
// for Iperf; migration runs over the Gigabit link too.
type LinkProps struct {
	BandwidthBps uint64 // payload bandwidth
	LatencyCyc   Cycles // one-way latency in receiver cycles
}

// LAN100 is the 100 Mb LAN the testbed NIC sits on.
func LAN100() LinkProps {
	return LinkProps{BandwidthBps: 100_000_000, LatencyCyc: 110_000}
}

// Gigabit is the Iperf/migration switch.
func Gigabit() LinkProps {
	return LinkProps{BandwidthBps: 1_000_000_000, LatencyCyc: 45_000}
}

// NIC is a network interface. Transmission charges the issuing CPU the
// driver-independent hardware cost; driver/stack costs are charged by the
// guest's driver layer. A NIC is either wired to a peer NIC on another
// machine or to a Reflector that synthesizes replies (standing in for the
// remote ping/Iperf endpoint).
type NIC struct {
	m    *Machine
	line int

	mu   sync.Mutex
	rxq  []Packet
	peer *NIC
	link LinkProps

	// Reflector, when set, is invoked for each transmitted packet and
	// returns reply packets to be queued locally after a full RTT plus
	// the synthetic remote's processing delay.
	Reflector    func(Packet) []Packet
	ReflectDelay Cycles // remote endpoint processing time per packet

	Stats NICStats
}

// NICStats counts device activity (atomic: any CPU may drive the NIC).
type NICStats struct {
	TxPackets, RxPackets atomic.Uint64
	TxBytes, RxBytes     atomic.Uint64
}

// NewNIC builds the machine's NIC on the given IO-APIC line, attached to
// the 100 Mb LAN by default.
func NewNIC(m *Machine, line int) *NIC {
	return &NIC{m: m, line: line, link: LAN100()}
}

// SetLink changes the wire properties.
func (n *NIC) SetLink(p LinkProps) { n.link = p }

// Link returns the wire properties.
func (n *NIC) Link() LinkProps { return n.link }

// Wire connects two NICs back to back (two machines on one switch).
func Wire(a, b *NIC, p LinkProps) {
	a.peer, b.peer = b, a
	a.link, b.link = p, p
}

// Transmit sends one packet from c's machine. Hardware cost (DMA ring,
// doorbell) is charged here; the guest's driver layer charges its own
// per-packet stack cost on top.
func (n *NIC) Transmit(c *CPU, p Packet) {
	c.Charge(n.m.Costs.NICPerPkt)
	kb := Cycles((len(p.Data) + 1023) / 1024)
	c.Charge(kb * n.m.Costs.NICPerKB)
	n.Stats.TxPackets.Add(1)
	n.Stats.TxBytes.Add(uint64(len(p.Data)))

	switch {
	case n.peer != nil:
		// Deliver to the peer machine after the wire latency, stamped in
		// the receiver's cycle domain.
		arrive := n.peer.m.BootCPU().Now() + n.link.LatencyCyc + n.wireCycles(len(p.Data))
		n.peer.enqueue(Packet{Data: p.Data, ReadyAt: arrive})
	case n.Reflector != nil:
		replies := n.Reflector(p)
		rtt := 2*n.link.LatencyCyc + 2*n.wireCycles(len(p.Data)) + n.ReflectDelay
		for _, r := range replies {
			r.ReadyAt = c.Now() + rtt
			n.enqueue(r)
		}
	}
}

// wireCycles converts a payload size to serialization delay in cycles.
func (n *NIC) wireCycles(bytes int) Cycles {
	if n.link.BandwidthBps == 0 {
		return 0
	}
	return Cycles(uint64(bytes) * 8 * n.m.Hz / n.link.BandwidthBps)
}

// WireCycles exposes serialization delay for throughput accounting.
func (n *NIC) WireCycles(bytes int) Cycles { return n.wireCycles(bytes) }

func (n *NIC) enqueue(p Packet) {
	n.mu.Lock()
	n.rxq = append(n.rxq, p)
	n.mu.Unlock()
	n.m.IOAPIC.Raise(n.line)
}

// Receive pops the next packet visible at or before the CPU's current
// time. If block is true and a packet is queued in the future, the CPU
// idles forward to its arrival. Returns ok=false only when non-blocking
// and nothing is deliverable.
func (n *NIC) Receive(c *CPU, block bool) (Packet, bool) {
	for {
		n.mu.Lock()
		if len(n.rxq) > 0 {
			p := n.rxq[0]
			now := c.Now()
			if p.ReadyAt <= now {
				n.rxq = n.rxq[1:]
				n.mu.Unlock()
				n.Stats.RxPackets.Add(1)
				n.Stats.RxBytes.Add(uint64(len(p.Data)))
				c.Charge(n.m.Costs.NICPerPkt)
				return p, true
			}
			if block {
				// Idle until the packet arrives.
				wait := p.ReadyAt - now
				n.mu.Unlock()
				c.Stats.IdleCycles += wait
				c.Clk.Advance(wait)
				continue
			}
		}
		n.mu.Unlock()
		if !block {
			return Packet{}, false
		}
		c.IdleUntil(func() bool {
			n.mu.Lock()
			defer n.mu.Unlock()
			return len(n.rxq) > 0
		})
	}
}

// Pending reports the number of queued packets (regardless of ReadyAt).
func (n *NIC) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.rxq)
}

// Line returns the NIC's interrupt line.
func (n *NIC) Line() int { return n.line }
