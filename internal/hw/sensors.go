package hw

import "sync"

// SensorBank is the platform's hardware health monitoring (§6.5: "there
// are usually some hardware monitors to monitor the temperature, fan
// speed, voltage, and power supplies... these can be facilitated for
// hardware failure prediction"). Readings are set by the environment
// (tests, fault injection) and polled by the failure predictor.
type SensorBank struct {
	mu sync.Mutex
	// readings by sensor name.
	readings map[string]float64
}

// Default sensor names.
const (
	SensorCPUTempC = "cpu-temp-c"
	SensorFanRPM   = "fan-rpm"
	SensorCoreVolt = "core-voltage"
	SensorPSUVolt  = "psu-voltage"
)

// NewSensorBank returns a bank with nominal readings.
func NewSensorBank() *SensorBank {
	return &SensorBank{readings: map[string]float64{
		SensorCPUTempC: 52,
		SensorFanRPM:   9800,
		SensorCoreVolt: 1.32,
		SensorPSUVolt:  12.05,
	}}
}

// Read returns a sensor's current value (0 if unknown).
func (s *SensorBank) Read(name string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readings[name]
}

// Set overrides a sensor reading (environmental change / fault
// injection).
func (s *SensorBank) Set(name string, v float64) {
	s.mu.Lock()
	s.readings[name] = v
	s.mu.Unlock()
}

// Names returns the known sensors.
func (s *SensorBank) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.readings))
	for n := range s.readings {
		out = append(out, n)
	}
	return out
}
