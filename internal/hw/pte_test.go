package hw

import (
	"testing"
	"testing/quick"
)

func TestPTEEncodeDecode(t *testing.T) {
	e := MakePTE(0x1234, PTEPresent|PTEWrite|PTEUser)
	if !e.Present() || !e.Writable() || !e.UserOK() {
		t.Fatal("flag decode failed")
	}
	if e.Frame() != 0x1234 {
		t.Fatalf("Frame = %#x", e.Frame())
	}
	if e.Cow() {
		t.Fatal("unexpected COW bit")
	}
}

func TestPTEWithFlags(t *testing.T) {
	e := MakePTE(7, PTEPresent|PTEWrite)
	e2 := e.WithFlags(PTEPresent | PTECow)
	if e2.Writable() || !e2.Cow() || e2.Frame() != 7 {
		t.Fatalf("WithFlags produced %#x", uint32(e2))
	}
}

// Property: frame and flags survive a round trip for any input.
func TestPTERoundTrip(t *testing.T) {
	f := func(pfn uint32, flags uint32) bool {
		pfn &= 0x000FFFFF
		flags &= 0xFFF
		e := MakePTE(PFN(pfn), flags)
		return e.Frame() == PFN(pfn) && e.Flags() == flags
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPDIndexPTIndex(t *testing.T) {
	va := VirtAddr(0x0840_3123)
	if PDIndex(va) != 0x21 {
		t.Fatalf("PDIndex = %#x", PDIndex(va))
	}
	if PTIndex(va) != 3 {
		t.Fatalf("PTIndex = %#x", PTIndex(va))
	}
}

func TestWalkTwoLevel(t *testing.T) {
	m := NewPhysMem(4 << 20)
	root := PFN(1)
	pt := PFN(2)
	data := PFN(3)
	va := VirtAddr(0x0800_2000)
	WritePTE(m, root, PDIndex(va), MakePTE(pt, PTEPresent|PTEWrite|PTEUser))
	WritePTE(m, pt, PTIndex(va), MakePTE(data, PTEPresent|PTEWrite|PTEUser))

	w, ok := Walk(m, root, va)
	if !ok {
		t.Fatal("walk failed")
	}
	if w.PTE.Frame() != data || w.Table != pt || w.Index != PTIndex(va) {
		t.Fatalf("walk = %+v", w)
	}

	// Absent PDE.
	if _, ok := Walk(m, root, 0x4000_0000); ok {
		t.Fatal("walk of unmapped PDE succeeded")
	}
	// Present PDE, absent PTE.
	if _, ok := Walk(m, root, va+PageSize); ok {
		t.Fatal("walk of unmapped PTE succeeded")
	}
}

func TestSelectors(t *testing.T) {
	s := MakeSelector(GDTKernelCode, PL0)
	if s.Index() != GDTKernelCode || s.RPL() != PL0 {
		t.Fatalf("selector decode: %v", s)
	}
	s2 := s.WithRPL(PL1)
	if s2.RPL() != PL1 || s2.Index() != GDTKernelCode {
		t.Fatalf("WithRPL: %v", s2)
	}
}

func TestGDTKernelDPLFlip(t *testing.T) {
	g := NewGDT("test", PL0)
	if g.KernelCS().RPL() != PL0 {
		t.Fatal("fresh GDT kernel CS not PL0")
	}
	g.SetKernelDPL(PL1)
	if g.Entries[GDTKernelCode].DPL != PL1 || g.Entries[GDTKernelData].DPL != PL1 {
		t.Fatal("SetKernelDPL did not update descriptors")
	}
	// User and VMM descriptors untouched.
	if g.Entries[GDTUserCode].DPL != PL3 || g.Entries[GDTVMMCode].DPL != PL0 {
		t.Fatal("SetKernelDPL touched other descriptors")
	}
}

func TestIDTSetGet(t *testing.T) {
	idt := NewIDT("test")
	called := false
	idt.Set(14, Gate{Present: true, Target: PL0,
		Handler: func(c *CPU, f *TrapFrame) { called = true }})
	g := idt.Get(14)
	if !g.Present {
		t.Fatal("gate not present")
	}
	g.Handler(nil, nil)
	if !called {
		t.Fatal("handler not invoked")
	}
	if idt.Get(15).Present {
		t.Fatal("empty gate reads present")
	}
}
