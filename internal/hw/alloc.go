package hw

import (
	"fmt"
	"sync"
)

// FrameAllocator hands out physical frames from a contiguous range. The
// boot path carves the machine's memory into an OS partition and a VMM
// partition (the pre-cached VMM's footprint, §4.1); each side then
// allocates only from its own allocator, and the VMM's frame-info table
// polices cross-ownership.
type FrameAllocator struct {
	mu    sync.Mutex
	lo    PFN // first frame in range
	hi    PFN // one past last frame
	free  []PFN
	next  PFN // bump pointer while free list is empty
	inUse map[PFN]bool
}

// NewFrameAllocator manages frames [lo, hi).
func NewFrameAllocator(lo, hi PFN) *FrameAllocator {
	return &FrameAllocator{lo: lo, hi: hi, next: lo, inUse: make(map[PFN]bool)}
}

// Split carves n frames off the top of the range into a new allocator.
// Used at boot to reserve the pre-cached VMM's memory.
func (a *FrameAllocator) Split(n PFN) (*FrameAllocator, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.next != a.lo || len(a.free) != 0 {
		return nil, fmt.Errorf("hw: Split after allocation began")
	}
	if a.lo+n > a.hi {
		return nil, fmt.Errorf("hw: Split(%d) exceeds range of %d frames", n, a.hi-a.lo)
	}
	top := NewFrameAllocator(a.hi-n, a.hi)
	a.hi -= n
	return top, nil
}

// SplitTop carves n untouched frames off the top of the range into a
// new allocator, even after allocation has begun — possible because
// allocation bumps from the bottom. Used by a driver domain donating
// part of its partition to a newly hosted guest.
func (a *FrameAllocator) SplitTop(n PFN) (*FrameAllocator, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	newHi := a.hi - n
	if newHi < a.next {
		return nil, fmt.Errorf("hw: SplitTop(%d): only %d untouched frames at top",
			n, a.hi-a.next)
	}
	for _, f := range a.free {
		if f >= newHi {
			return nil, fmt.Errorf("hw: SplitTop(%d): freed frame %d in target range", n, f)
		}
	}
	a.hi = newHi
	return NewFrameAllocator(newHi, newHi+n), nil
}

// Alloc returns a free frame, or NoPFN if the range is exhausted.
func (a *FrameAllocator) Alloc() PFN {
	a.mu.Lock()
	defer a.mu.Unlock()
	var pfn PFN
	if n := len(a.free); n > 0 {
		pfn = a.free[n-1]
		a.free = a.free[:n-1]
	} else if a.next < a.hi {
		pfn = a.next
		a.next++
	} else {
		return NoPFN
	}
	a.inUse[pfn] = true
	return pfn
}

// Free returns a frame to the allocator.
func (a *FrameAllocator) Free(pfn PFN) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.inUse[pfn] {
		panic(fmt.Sprintf("hw: double free of frame %d", pfn))
	}
	delete(a.inUse, pfn)
	a.free = append(a.free, pfn)
}

// Owns reports whether pfn lies in this allocator's range.
func (a *FrameAllocator) Owns(pfn PFN) bool { return pfn >= a.lo && pfn < a.hi }

// Range returns the managed frame range [lo, hi).
func (a *FrameAllocator) Range() (lo, hi PFN) { return a.lo, a.hi }

// InUse returns the number of currently allocated frames.
func (a *FrameAllocator) InUse() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.inUse)
}

// Available returns how many frames remain allocatable.
func (a *FrameAllocator) Available() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int(a.hi-a.next) + len(a.free)
}
