package hw

import (
	"fmt"
	"sync"
)

// BlockSize is the disk transfer unit (one page).
const BlockSize = PageSize

// DiskRequest describes one block transfer. Merged is the number of
// logically distinct requests this transfer satisfies: the Xen backend
// driver coalesces adjacent ring requests before issuing them, which is
// what lets a domainU occasionally beat domain0 on throughput-oriented
// writes (the dbench anomaly the paper observes in §7.3).
type DiskRequest struct {
	Block  uint64
	Write  bool
	Blocks int // contiguous blocks in this transfer
	Merged int
}

// Disk is a simple block device. Transfers are synchronous: the issuing
// CPU is charged the request and transfer cost, and the completion raises
// the disk's interrupt line so the kernel's IRQ accounting stays honest.
type Disk struct {
	m    *Machine
	line int

	mu     sync.Mutex
	blocks map[uint64][]byte

	Stats DiskStats
}

// DiskStats counts device activity.
type DiskStats struct {
	Requests     uint64
	BlocksIO     uint64
	BytesRead    uint64
	BytesWritten uint64
}

// NewDisk builds the machine's disk on the given IO-APIC line.
func NewDisk(m *Machine, line int) *Disk {
	return &Disk{m: m, line: line, blocks: make(map[uint64][]byte)}
}

// Submit performs one transfer on behalf of c, charging request overhead
// once and per-KB cost for the payload, then raises the completion IRQ.
// buf must be req.Blocks*BlockSize bytes.
func (d *Disk) Submit(c *CPU, req DiskRequest, buf []byte) error {
	if len(buf) != req.Blocks*BlockSize {
		return fmt.Errorf("hw: disk buffer %d bytes for %d blocks", len(buf), req.Blocks)
	}
	c.Charge(d.m.Costs.DiskRequest)
	c.Charge(Cycles(req.Blocks) * Cycles(BlockSize/1024) * d.m.Costs.DiskPerKB)
	d.mu.Lock()
	for i := 0; i < req.Blocks; i++ {
		bn := req.Block + uint64(i)
		part := buf[i*BlockSize : (i+1)*BlockSize]
		if req.Write {
			cp := make([]byte, BlockSize)
			copy(cp, part)
			d.blocks[bn] = cp
			d.Stats.BytesWritten += BlockSize
		} else {
			if b, ok := d.blocks[bn]; ok {
				copy(part, b)
			} else {
				for j := range part {
					part[j] = 0
				}
			}
			d.Stats.BytesRead += BlockSize
		}
	}
	d.Stats.Requests++
	d.Stats.BlocksIO += uint64(req.Blocks)
	d.mu.Unlock()
	d.m.IOAPIC.Raise(d.line)
	return nil
}

// Line returns the disk's interrupt line.
func (d *Disk) Line() int { return d.line }
