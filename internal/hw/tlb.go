package hw

// TLB is a per-CPU translation lookaside buffer, modeled as a small
// direct-mapped cache keyed by virtual page number. The TLB is
// hardware-managed (as on x86), so a CR3 write flushes it; this is why
// modern VMMs share a single address space with the guest and why Mercury
// reserves the VMM hole permanently (§3.2.2) — crossing into the VMM never
// costs a flush.
type TLB struct {
	entries []tlbEntry
	mask    uint32

	// statistics
	Hits, Misses, Flushes uint64
}

type tlbEntry struct {
	valid  bool
	vpn    VPN
	pfn    PFN
	write  bool
	user   bool
	global bool
}

// DefaultTLBSize is the number of TLB entries per CPU.
const DefaultTLBSize = 64

// NewTLB builds a TLB with n entries (n must be a power of two).
func NewTLB(n int) *TLB {
	if n == 0 {
		n = DefaultTLBSize
	}
	if n&(n-1) != 0 {
		panic("hw: TLB size must be a power of two")
	}
	return &TLB{entries: make([]tlbEntry, n), mask: uint32(n - 1)}
}

// Lookup returns the cached translation for vpn, if any.
func (t *TLB) Lookup(vpn VPN) (PFN, bool, bool, bool) {
	e := &t.entries[uint32(vpn)&t.mask]
	if e.valid && e.vpn == vpn {
		t.Hits++
		return e.pfn, e.write, e.user, true
	}
	t.Misses++
	return 0, false, false, false
}

// Insert caches a translation.
func (t *TLB) Insert(vpn VPN, pfn PFN, write, user, global bool) {
	t.entries[uint32(vpn)&t.mask] = tlbEntry{
		valid: true, vpn: vpn, pfn: pfn,
		write: write, user: user, global: global,
	}
}

// Invalidate drops a single translation (INVLPG).
func (t *TLB) Invalidate(vpn VPN) {
	e := &t.entries[uint32(vpn)&t.mask]
	if e.valid && e.vpn == vpn {
		e.valid = false
	}
}

// Flush drops all non-global translations (a CR3 write).
func (t *TLB) Flush() {
	t.Flushes++
	for i := range t.entries {
		if !t.entries[i].global {
			t.entries[i].valid = false
		}
	}
}

// FlushAll drops everything, including global entries.
func (t *TLB) FlushAll() {
	t.Flushes++
	for i := range t.entries {
		t.entries[i].valid = false
	}
}
