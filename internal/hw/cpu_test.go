package hw

import (
	"testing"
)

func testMachine(ncpu int) *Machine {
	cfg := DefaultConfig()
	cfg.NumCPUs = ncpu
	cfg.MemBytes = 16 << 20
	return NewMachine(cfg)
}

func TestChargeAdvancesClock(t *testing.T) {
	m := testMachine(1)
	c := m.BootCPU()
	before := c.Now()
	c.Charge(1234)
	if c.Now()-before != 1234 {
		t.Fatalf("charge advanced %d", c.Now()-before)
	}
}

func TestInterruptDelivery(t *testing.T) {
	m := testMachine(1)
	c := m.BootCPU()
	idt := NewIDT("k")
	fired := 0
	idt.Set(VecTimer, Gate{Present: true, Target: PL0,
		Handler: func(cc *CPU, f *TrapFrame) { fired++ }})
	c.Lgdt(NewGDT("k", PL0))
	c.Lidt(idt)
	c.Sti()
	c.LAPIC.Post(VecTimer)
	c.Charge(10)
	if fired != 1 {
		t.Fatalf("handler fired %d times", fired)
	}
}

func TestInterruptMaskedWhileIFClear(t *testing.T) {
	m := testMachine(1)
	c := m.BootCPU()
	idt := NewIDT("k")
	fired := 0
	idt.Set(VecTimer, Gate{Present: true, Target: PL0,
		Handler: func(cc *CPU, f *TrapFrame) { fired++ }})
	c.Lgdt(NewGDT("k", PL0))
	c.Lidt(idt)
	c.IF = false
	c.LAPIC.Post(VecTimer)
	c.Charge(10)
	if fired != 0 {
		t.Fatal("masked interrupt delivered")
	}
	c.Sti()
	c.Charge(10)
	if fired != 1 {
		t.Fatal("pending interrupt lost after sti")
	}
}

func TestNoNestedDelivery(t *testing.T) {
	m := testMachine(1)
	c := m.BootCPU()
	idt := NewIDT("k")
	depth, maxDepth := 0, 0
	idt.Set(VecTimer, Gate{Present: true, Target: PL0,
		Handler: func(cc *CPU, f *TrapFrame) {
			depth++
			if depth > maxDepth {
				maxDepth = depth
			}
			cc.LAPIC.Post(VecTimer) // would nest if allowed
			cc.Charge(100)
			depth--
		}})
	c.Lgdt(NewGDT("k", PL0))
	c.Lidt(idt)
	c.Sti()
	c.LAPIC.Post(VecTimer)
	c.Charge(10) // delivers first; second stays pending until handler exits
	c.Charge(10)
	if maxDepth != 1 {
		t.Fatalf("max nesting depth %d", maxDepth)
	}
}

func TestPrivilegedInsnFromPL1Faults(t *testing.T) {
	m := testMachine(1)
	c := m.BootCPU()
	gpCount := 0
	idt := NewIDT("vmm")
	idt.Set(VecGP, Gate{Present: true, Target: PL0,
		Handler: func(cc *CPU, f *TrapFrame) { gpCount++ }})
	c.Lgdt(NewGDT("vmm", PL1))
	c.Lidt(idt)
	c.SetMode(PL1)
	c.Cli() // privileged: must trap
	if gpCount != 1 {
		t.Fatalf("cli at PL1 raised %d #GP", gpCount)
	}
}

func TestUnhandledGPPanics(t *testing.T) {
	m := testMachine(1)
	c := m.BootCPU()
	c.Lgdt(NewGDT("k", PL0))
	c.Lidt(NewIDT("k")) // no #GP gate
	c.SetMode(PL1)
	defer func() {
		r := recover()
		if _, ok := r.(*GPError); !ok {
			t.Fatalf("expected GPError, got %v", r)
		}
	}()
	c.WriteCR3(1)
}

func TestTranslateFaultRepairRetry(t *testing.T) {
	m := testMachine(1)
	c := m.BootCPU()
	root := m.Frames.Alloc()
	data := m.Frames.Alloc()
	pt := m.Frames.Alloc()
	va := VirtAddr(0x0800_0000)

	faults := 0
	idt := NewIDT("k")
	idt.Set(VecPageFault, Gate{Present: true, Target: PL0,
		Handler: func(cc *CPU, f *TrapFrame) {
			faults++
			WritePTE(m.Mem, root, PDIndex(va), MakePTE(pt, PTEPresent|PTEWrite|PTEUser))
			WritePTE(m.Mem, pt, PTIndex(va), MakePTE(data, PTEPresent|PTEWrite|PTEUser))
		}})
	c.Lgdt(NewGDT("k", PL0))
	c.Lidt(idt)
	c.Sti()
	c.CR3 = root

	c.WriteWord(va, 77)
	if faults != 1 {
		t.Fatalf("faults = %d", faults)
	}
	if got := c.ReadWord(va); got != 77 {
		t.Fatalf("read back %d", got)
	}
	// Second access: TLB hit, no fault.
	c.WriteWord(va+4, 88)
	if faults != 1 {
		t.Fatalf("unexpected extra fault (total %d)", faults)
	}
}

func TestTranslateSkipAbortsAccess(t *testing.T) {
	m := testMachine(1)
	c := m.BootCPU()
	idt := NewIDT("k")
	idt.Set(VecPageFault, Gate{Present: true, Target: PL0,
		Handler: func(cc *CPU, f *TrapFrame) { f.Skip = true }})
	c.Lgdt(NewGDT("k", PL0))
	c.Lidt(idt)
	c.Sti()
	c.CR3 = m.Frames.Alloc()

	res := c.Translate(0x0900_0000, true)
	if !res.Skipped {
		t.Fatal("skip not propagated")
	}
	// The write completes as a no-op.
	c.WriteWord(0x0900_0000, 5)
}

func TestIPIBetweenCPUs(t *testing.T) {
	m := testMachine(2)
	c0, c1 := m.CPUs[0], m.CPUs[1]
	fired := false
	idt := NewIDT("k")
	idt.Set(VecReschedIPI, Gate{Present: true, Target: PL0,
		Handler: func(cc *CPU, f *TrapFrame) { fired = true }})
	for _, c := range m.CPUs {
		c.Lgdt(NewGDT("k", PL0))
		c.Lidt(idt)
		c.Sti()
	}
	c0.SendIPI(1, VecReschedIPI)
	c1.Charge(10)
	if !fired {
		t.Fatal("IPI not delivered")
	}
	if c1.LAPIC.IPIsReceived.Load() != 1 {
		t.Fatalf("IPIsReceived = %d", c1.LAPIC.IPIsReceived.Load())
	}
}

func TestLAPICTimerFiresAtDeadline(t *testing.T) {
	m := testMachine(1)
	c := m.BootCPU()
	fired := false
	idt := NewIDT("k")
	idt.Set(VecTimer, Gate{Present: true, Target: PL0,
		Handler: func(cc *CPU, f *TrapFrame) { fired = true }})
	c.Lgdt(NewGDT("k", PL0))
	c.Lidt(idt)
	c.Sti()
	c.LAPIC.ArmTimer(c.Now()+1000, VecTimer)
	c.Charge(500)
	if fired {
		t.Fatal("timer fired early")
	}
	c.Charge(600)
	if !fired {
		t.Fatal("timer did not fire")
	}
}

func TestIdleUntilAdvancesToTimer(t *testing.T) {
	m := testMachine(1)
	c := m.BootCPU()
	done := false
	idt := NewIDT("k")
	idt.Set(VecTimer, Gate{Present: true, Target: PL0,
		Handler: func(cc *CPU, f *TrapFrame) { done = true }})
	c.Lgdt(NewGDT("k", PL0))
	c.Lidt(idt)
	c.Sti()
	deadline := c.Now() + 3_000_000
	c.LAPIC.ArmTimer(deadline, VecTimer)
	c.IdleUntil(func() bool { return done })
	if c.Now() < deadline {
		t.Fatalf("idle returned at %d before deadline %d", c.Now(), deadline)
	}
}

func TestSetModeSelectors(t *testing.T) {
	m := testMachine(1)
	c := m.BootCPU()

	// Native kernel table: kernel at PL0.
	c.Lgdt(NewGDT("k", PL0))
	c.SetMode(PL3)
	if c.CS != MakeSelector(GDTUserCode, PL3) {
		t.Fatalf("user CS = %v", c.CS)
	}
	c.SetMode(PL0)
	if c.CS != MakeSelector(GDTKernelCode, PL0) {
		t.Fatalf("kernel CS = %v", c.CS)
	}

	// VMM table: kernel descriptors at PL1, hypervisor at PL0.
	c.CPL = PL0
	c.Lgdt(NewGDT("vmm", PL1))
	c.SetMode(PL1)
	if c.CS != MakeSelector(GDTKernelCode, PL1) {
		t.Fatalf("deprivileged CS = %v", c.CS)
	}
	c.SetMode(PL0)
	if c.CS != MakeSelector(GDTVMMCode, PL0) {
		t.Fatalf("hypervisor CS = %v", c.CS)
	}
}

func TestStaleSelectorIretFaults(t *testing.T) {
	// The §5.1.2 hazard: an interrupt frame carrying PL0 kernel
	// selectors popped after the kernel descriptors moved to PL1.
	m := testMachine(1)
	c := m.BootCPU()
	g := NewGDT("k", PL0)
	idt := NewIDT("k")
	gpSeen := false
	idt.Set(VecGP, Gate{Present: true, Target: PL0,
		Handler: func(cc *CPU, f *TrapFrame) { gpSeen = true }})
	idt.Set(VecTimer, Gate{Present: true, Target: PL0,
		Handler: func(cc *CPU, f *TrapFrame) {
			// A "mode switch" that forgets the selector fixup.
			g.SetKernelDPL(PL1)
		}})
	c.Lgdt(g)
	c.Lidt(idt)
	c.Sti()
	c.LAPIC.Post(VecTimer)
	c.Charge(10)
	if !gpSeen {
		t.Fatal("stale selector iret did not fault")
	}
}
