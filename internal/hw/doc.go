// Package hw simulates the hardware platform Mercury runs on: CPUs with
// x86-style privileged state (privilege levels, control registers,
// descriptor tables), physical memory divided into 4 KB frames, a hardware
// page-table walker with a TLB, local APICs with inter-processor
// interrupts, and simple disk/NIC/timer devices.
//
// Every privileged or timed operation advances a per-CPU cycle clock
// (the simulated TSC). All latencies reported by the benchmark harness are
// read from this clock, mirroring how the paper reads RDTSC around mode
// switches and benchmark loops. The cycle costs of primitive operations
// live in CostModel and are calibrated once against the paper's native
// Linux column; every other configuration's numbers emerge from the
// mechanisms built on top (hypercalls, traps, ring hops, deprivileging).
package hw
