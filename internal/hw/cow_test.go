package hw

import (
	"bytes"
	"testing"
)

func cowPage(b byte) []byte {
	p := make([]byte, PageSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestMapSharedReadsWithoutCopy(t *testing.T) {
	m := NewPhysMem(1 << 20)
	shared := cowPage(0x5A)
	if err := m.MapShared(3, shared, nil); err != nil {
		t.Fatal(err)
	}
	if m.SharedFrames() != 1 || !m.SharedAt(3) {
		t.Fatal("mapping not registered")
	}
	if got := m.Load8(PFN(3).Addr() + 7); got != 0x5A {
		t.Fatalf("read through mapping = %#x", got)
	}
	// Reads must alias the shared page, not copy it.
	if &m.FrameBytesRO(3)[0] != &shared[0] {
		t.Fatal("FrameBytesRO copied the shared page")
	}
	if m.SharedAt(3) != true || m.SharedFrames() != 1 {
		t.Fatal("read promoted the frame")
	}
}

func TestMapSharedPromoteOnWrite(t *testing.T) {
	m := NewPhysMem(1 << 20)
	shared := cowPage(0x5A)
	var hooked []PFN
	if err := m.MapShared(3, shared, func(pfn PFN) { hooked = append(hooked, pfn) }); err != nil {
		t.Fatal(err)
	}
	m.Store8(PFN(3).Addr()+1, 0xEE)
	if m.SharedAt(3) {
		t.Fatal("write did not promote")
	}
	if len(hooked) != 1 || hooked[0] != 3 {
		t.Fatalf("promotion hook calls = %v, want [3]", hooked)
	}
	// The private copy holds shared content plus the write; the shared
	// page itself is untouched.
	if got := m.Load8(PFN(3).Addr()); got != 0x5A {
		t.Fatalf("promoted frame byte 0 = %#x", got)
	}
	if got := m.Load8(PFN(3).Addr() + 1); got != 0xEE {
		t.Fatalf("promoted frame byte 1 = %#x", got)
	}
	if shared[1] != 0x5A {
		t.Fatal("write leaked through to the shared page")
	}
	// A second write must not re-run the hook.
	m.Store8(PFN(3).Addr()+2, 0x11)
	if len(hooked) != 1 {
		t.Fatal("hook ran twice")
	}
}

func TestMapSharedZeroFrameDropsMapping(t *testing.T) {
	m := NewPhysMem(1 << 20)
	hooks := 0
	if err := m.MapShared(4, cowPage(0x77), func(PFN) { hooks++ }); err != nil {
		t.Fatal(err)
	}
	m.ZeroFrame(4)
	if m.SharedAt(4) {
		t.Fatal("ZeroFrame left the mapping")
	}
	if hooks != 1 {
		t.Fatalf("ZeroFrame ran hook %d times, want 1", hooks)
	}
	if !bytes.Equal(m.FrameBytesRO(4), make([]byte, PageSize)) {
		t.Fatal("zeroed frame not zero")
	}
}

func TestUnmapSharedSkipsHook(t *testing.T) {
	m := NewPhysMem(1 << 20)
	hooks := 0
	if err := m.MapShared(5, cowPage(0x42), func(PFN) { hooks++ }); err != nil {
		t.Fatal(err)
	}
	if !m.UnmapShared(5) {
		t.Fatal("unmap of mapped frame reported false")
	}
	if m.UnmapShared(5) {
		t.Fatal("unmap of unmapped frame reported true")
	}
	if hooks != 0 {
		t.Fatal("teardown unmap must not run the promotion hook")
	}
	if got := m.Load8(PFN(5).Addr()); got != 0 {
		t.Fatalf("unmapped frame reads %#x, want 0", got)
	}
}

func TestMapSharedSnapshotAndRestore(t *testing.T) {
	m := NewPhysMem(1 << 20)
	m.Store8(PFN(1).Addr(), 9)
	if err := m.MapShared(2, cowPage(0x33), nil); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap[2] == nil || snap[2][0] != 0x33 {
		t.Fatal("snapshot missed CoW content")
	}
	hooks := 0
	if err := m.MapShared(6, cowPage(0x44), func(PFN) { hooks++ }); err != nil {
		t.Fatal(err)
	}
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if m.SharedFrames() != 0 {
		t.Fatal("Restore left CoW mappings")
	}
	if hooks != 0 {
		t.Fatal("Restore must drop mappings without running hooks")
	}
	// Restored contents are private copies of what reads observed.
	if got := m.Load8(PFN(2).Addr()); got != 0x33 {
		t.Fatalf("restored frame 2 = %#x", got)
	}
	if got := m.Load8(PFN(1).Addr()); got != 9 {
		t.Fatalf("restored frame 1 = %#x", got)
	}
}

func TestMapSharedCopyFrameReadsShared(t *testing.T) {
	m := NewPhysMem(1 << 20)
	if err := m.MapShared(2, cowPage(0x66), nil); err != nil {
		t.Fatal(err)
	}
	m.CopyFrame(8, 2)
	if !m.SharedAt(2) {
		t.Fatal("copying FROM a shared frame promoted it")
	}
	if got := m.Load8(PFN(8).Addr()); got != 0x66 {
		t.Fatalf("copy destination = %#x", got)
	}
	// Copying INTO a shared frame promotes the destination.
	if err := m.MapShared(9, cowPage(0x10), nil); err != nil {
		t.Fatal(err)
	}
	m.CopyFrame(9, 8)
	if m.SharedAt(9) {
		t.Fatal("copy into shared frame did not promote it")
	}
	if got := m.Load8(PFN(9).Addr()); got != 0x66 {
		t.Fatalf("promoted copy destination = %#x", got)
	}
}

func TestMapSharedValidation(t *testing.T) {
	m := NewPhysMem(1 << 20)
	if err := m.MapShared(PFN(1<<20>>PageShift), cowPage(1), nil); err == nil {
		t.Fatal("MapShared beyond memory must error")
	}
	if err := m.MapShared(1, make([]byte, 100), nil); err == nil {
		t.Fatal("MapShared of a short page must error")
	}
	// Remapping replaces the previous source and keeps the count right.
	if err := m.MapShared(1, cowPage(2), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.MapShared(1, cowPage(3), nil); err != nil {
		t.Fatal(err)
	}
	if m.SharedFrames() != 1 {
		t.Fatalf("remap counted twice: %d", m.SharedFrames())
	}
	if got := m.Load8(PFN(1).Addr()); got != 3 {
		t.Fatalf("remapped frame reads %#x", got)
	}
}
