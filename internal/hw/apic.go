package hw

import (
	"sync"
	"sync/atomic"
)

// LAPIC is a per-CPU local interrupt controller. Other CPUs (and devices,
// via the Machine's IO-APIC routing) post vectors into it; the owning CPU
// drains pending vectors at instruction boundaries when interrupts are
// enabled. Mercury's SMP mode-switch protocol (§5.4) is built on the IPI
// path: the control processor posts VecModeSwitchAP to every other core
// and the cores rendezvous on shared counters.
type LAPIC struct {
	mu      sync.Mutex
	pending []pendingVec // FIFO of pending vectors

	// clk is the owning CPU's clock (the shared TSC timebase), read to
	// stamp each posted vector so delivery latency is observable; nil in
	// hand-built test fixtures, where posts go unstamped.
	clk *Clock

	// One-shot local timer: fires vector timerVec when the owning CPU's
	// clock reaches deadline.
	timerArmed    bool
	timerDeadline Cycles
	timerVec      int

	IPIsReceived atomic.Uint64

	// dropNext, when armed, makes the LAPIC silently discard the next
	// posted vector — the "dropped IPI" hardware fault for dependability
	// campaigns. Dropped counts every vector lost this way.
	dropNext atomic.Bool
	dropped  atomic.Uint64
}

// pendingVec is one queued vector plus the TSC reading at its post, the
// start point of the interrupt-delivery latency measurement.
type pendingVec struct {
	vec    int
	posted Cycles
}

// Post queues vector for delivery to the owning CPU. Safe to call from
// any goroutine (the TSC is synchronized across cores, so a cross-CPU
// post stamp and the owner's delivery clock share a timebase).
func (l *LAPIC) Post(vector int) {
	if l.dropNext.CompareAndSwap(true, false) {
		l.dropped.Add(1)
		return
	}
	var ts Cycles
	if l.clk != nil {
		ts = l.clk.Read()
	}
	l.mu.Lock()
	l.pending = append(l.pending, pendingVec{vec: vector, posted: ts})
	l.mu.Unlock()
}

// ArmDropNext makes the LAPIC discard the next posted vector (fault
// injection: a lost IPI).
func (l *LAPIC) ArmDropNext() { l.dropNext.Store(true) }

// DroppedCount returns how many vectors this LAPIC has discarded.
func (l *LAPIC) DroppedCount() uint64 { return l.dropped.Load() }

// ClearDropped resets the dropped-vector count (and any still-armed
// drop), returning the count cleared.
func (l *LAPIC) ClearDropped() uint64 {
	l.dropNext.Store(false)
	return l.dropped.Swap(0)
}

// take removes and returns the next pending vector plus its post stamp
// (0 when the LAPIC has no clock).
func (l *LAPIC) take() (vec int, posted Cycles, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.pending) == 0 {
		return 0, 0, false
	}
	p := l.pending[0]
	l.pending = l.pending[1:]
	return p.vec, p.posted, true
}

// HasPending reports whether any vector is waiting.
func (l *LAPIC) HasPending() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending) > 0
}

// ArmTimer programs the one-shot local timer.
func (l *LAPIC) ArmTimer(deadline Cycles, vector int) {
	l.mu.Lock()
	l.timerArmed = true
	l.timerDeadline = deadline
	l.timerVec = vector
	l.mu.Unlock()
}

// DisarmTimer cancels the local timer.
func (l *LAPIC) DisarmTimer() {
	l.mu.Lock()
	l.timerArmed = false
	l.mu.Unlock()
}

// timerDue pops the timer vector if the deadline has passed, returning
// the armed deadline so delivery jitter (now − deadline) is observable.
func (l *LAPIC) timerDue(now Cycles) (vec int, deadline Cycles, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.timerArmed && now >= l.timerDeadline {
		l.timerArmed = false
		return l.timerVec, l.timerDeadline, true
	}
	return 0, 0, false
}

// NextTimerDeadline returns the armed deadline, if any. The idle loop uses
// it to fast-forward simulated time instead of spinning.
func (l *LAPIC) NextTimerDeadline() (Cycles, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.timerDeadline, l.timerArmed
}

// IOAPIC routes device interrupt lines to CPUs. Devices raise a line; the
// IOAPIC posts the configured vector to the configured CPU's LAPIC.
type IOAPIC struct {
	mu     sync.Mutex
	routes map[int]ioRoute // line -> route
	m      *Machine
}

type ioRoute struct {
	cpu    int
	vector int
	masked bool
}

// NewIOAPIC builds the I/O interrupt controller for m.
func NewIOAPIC(m *Machine) *IOAPIC {
	return &IOAPIC{routes: make(map[int]ioRoute), m: m}
}

// Route binds a device line to (cpu, vector). Rebinding interrupt routes
// is part of Mercury's state transfer: in native mode lines target the
// guest's vectors directly, in virtual mode they target the VMM's.
func (io *IOAPIC) Route(line, cpu, vector int) {
	io.mu.Lock()
	io.routes[line] = ioRoute{cpu: cpu, vector: vector}
	io.mu.Unlock()
}

// Mask disables delivery for a line.
func (io *IOAPIC) Mask(line int, masked bool) {
	io.mu.Lock()
	if r, ok := io.routes[line]; ok {
		r.masked = masked
		io.routes[line] = r
	}
	io.mu.Unlock()
}

// Raise signals a device interrupt line.
func (io *IOAPIC) Raise(line int) {
	io.mu.Lock()
	r, ok := io.routes[line]
	io.mu.Unlock()
	if !ok || r.masked {
		return
	}
	if r.cpu >= 0 && r.cpu < len(io.m.CPUs) {
		io.m.CPUs[r.cpu].LAPIC.Post(r.vector)
	}
}

// Routes returns a copy of the current routing table; Mercury's state
// transfer reads it to rebind lines across a mode switch.
func (io *IOAPIC) Routes() map[int][2]int {
	io.mu.Lock()
	defer io.mu.Unlock()
	out := make(map[int][2]int, len(io.routes))
	for line, r := range io.routes {
		out[line] = [2]int{r.cpu, r.vector}
	}
	return out
}
