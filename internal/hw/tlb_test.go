package hw

import "testing"

func TestTLBInsertLookup(t *testing.T) {
	tlb := NewTLB(64)
	if _, _, _, ok := tlb.Lookup(5); ok {
		t.Fatal("empty TLB hit")
	}
	tlb.Insert(5, 99, true, false, false)
	pfn, w, u, ok := tlb.Lookup(5)
	if !ok || pfn != 99 || !w || u {
		t.Fatalf("lookup = (%d,%v,%v,%v)", pfn, w, u, ok)
	}
	if tlb.Hits != 1 || tlb.Misses != 1 {
		t.Fatalf("stats: hits=%d misses=%d", tlb.Hits, tlb.Misses)
	}
}

func TestTLBInvalidate(t *testing.T) {
	tlb := NewTLB(64)
	tlb.Insert(5, 99, false, false, false)
	tlb.Invalidate(5)
	if _, _, _, ok := tlb.Lookup(5); ok {
		t.Fatal("invalidated entry hit")
	}
	// Invalidating a different VPN mapped to the same slot is a no-op.
	tlb.Insert(5, 99, false, false, false)
	tlb.Invalidate(5 + 64)
	if _, _, _, ok := tlb.Lookup(5); !ok {
		t.Fatal("wrong entry invalidated")
	}
}

func TestTLBFlushSparesGlobal(t *testing.T) {
	tlb := NewTLB(64)
	tlb.Insert(1, 10, false, false, false)
	tlb.Insert(2, 20, false, false, true) // global
	tlb.Flush()
	if _, _, _, ok := tlb.Lookup(1); ok {
		t.Fatal("flush kept non-global entry")
	}
	if _, _, _, ok := tlb.Lookup(2); !ok {
		t.Fatal("flush dropped global entry")
	}
	tlb.FlushAll()
	if _, _, _, ok := tlb.Lookup(2); ok {
		t.Fatal("FlushAll kept global entry")
	}
}

func TestTLBConflictEviction(t *testing.T) {
	tlb := NewTLB(64)
	tlb.Insert(3, 30, false, false, false)
	tlb.Insert(3+64, 40, false, false, false) // same direct-mapped slot
	if _, _, _, ok := tlb.Lookup(3); ok {
		t.Fatal("evicted entry still hits")
	}
	if pfn, _, _, ok := tlb.Lookup(3 + 64); !ok || pfn != 40 {
		t.Fatal("conflicting entry lost")
	}
}

func TestTLBSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two size")
		}
	}()
	NewTLB(48)
}
