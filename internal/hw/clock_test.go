package hw

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvanceRead(t *testing.T) {
	c := NewClock(DefaultHz)
	if c.Read() != 0 {
		t.Fatalf("fresh clock reads %d", c.Read())
	}
	c.Advance(100)
	c.Advance(23)
	if got := c.Read(); got != 123 {
		t.Fatalf("Read = %d, want 123", got)
	}
}

func TestClockDefaultHz(t *testing.T) {
	c := NewClock(0)
	if c.Hz() != DefaultHz {
		t.Fatalf("Hz = %d, want %d", c.Hz(), DefaultHz)
	}
}

func TestClockToDuration(t *testing.T) {
	c := NewClock(1_000_000) // 1 MHz: 1 cycle = 1 us
	if d := c.ToDuration(1500); d != 1500*time.Microsecond {
		t.Fatalf("ToDuration = %v", d)
	}
}

func TestClockMicros(t *testing.T) {
	c := NewClock(3_000_000_000)
	if us := c.Micros(3000); us != 1.0 {
		t.Fatalf("Micros(3000) = %v, want 1", us)
	}
	if us := c.Micros(660_000); us < 219.9 || us > 220.1 {
		t.Fatalf("Micros(660k) = %v, want ~220", us)
	}
}

// Property: advancing by a then b always equals advancing by a+b.
func TestClockAdvanceAdditive(t *testing.T) {
	f := func(a, b uint32) bool {
		c1 := NewClock(DefaultHz)
		c1.Advance(Cycles(a))
		c1.Advance(Cycles(b))
		c2 := NewClock(DefaultHz)
		c2.Advance(Cycles(a) + Cycles(b))
		return c1.Read() == c2.Read()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
