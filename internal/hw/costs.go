package hw

// CostModel holds the cycle cost of every primitive operation the
// simulation charges for. The defaults are calibrated so that the guest
// kernel's native-mode lmbench numbers land near the paper's native Linux
// column on a 3 GHz clock; all virtualized-mode numbers then emerge from
// the extra traps, validations and ring hops those modes execute.
//
// Grouping follows the paper's classification of virtualization-sensitive
// operations (§5.3): sensitive CPU operations, sensitive memory
// operations, and sensitive I/O operations, plus the generic machine
// costs they compose with.
type CostModel struct {
	// --- generic machine costs ---

	MemRead       Cycles // one cached memory word read
	MemWrite      Cycles // one cached memory word write
	CacheMissLine Cycles // pulling one cold cache line
	PageCopy      Cycles // copying one 4 KB page (memcpy)
	PageZero      Cycles // zeroing one 4 KB page

	// --- address translation ---

	TLBHit        Cycles // translation served from the TLB
	TLBMissWalk   Cycles // two-level hardware page-table walk
	TLBFlush      Cycles // flushing the whole TLB (e.g., CR3 write)
	TLBRefillPage Cycles // re-touching one page of working set after a flush
	// (TLB refill plus the cache lines that went cold)

	// --- traps, interrupts, privilege transitions ---

	SyscallEntry Cycles // user->kernel syscall trap, same privilege domain
	SyscallExit  Cycles
	FaultEntry   Cycles // hardware exception delivery (e.g., #PF)
	FaultExit    Cycles
	IRQDeliver   Cycles // external interrupt delivery through the IDT
	IRQEOI       Cycles
	IPISend      Cycles // LAPIC ICR write
	IPIDeliver   Cycles // IPI receipt on the target

	// --- sensitive CPU operations ---

	PrivInsn Cycles // privileged instruction executed at PL0 (cli/sti,
	// mov crN, lidt/lgdt, ...)
	DescTableLoad Cycles // loading GDTR/IDTR/LDTR
	SegReload     Cycles // reloading segment registers after a table change

	// --- sensitive memory operations ---

	PTEWriteNative Cycles // direct PTE store in native mode

	// --- VMM-mediated costs (paid only in virtualized modes) ---

	WorldSwitch    Cycles // guest<->VMM transition (trap in + return)
	HypercallBase  Cycles // fixed cost of one hypercall (on top of WorldSwitch)
	MMUUpdateEntry Cycles // validating one PTE update inside the VMM
	MulticallPerOp Cycles // dispatching one op inside a multicall batch
	// (argument fetch + table decode; replaces the per-op
	// WorldSwitch+HypercallBase that an unbatched stream pays)
	MulticallEnqueue Cycles // guest-side append of one op into a lazy
	// multicall buffer (the xen_mc_batch pattern)
	PTValidatePin   Cycles // validating one present entry while pinning a PT page
	FaultBounce     Cycles // VMM receiving a guest fault and bouncing it back
	ShadowPerEntry  Cycles // translating one entry into a shadow table
	ShadowPerTable  Cycles // allocating/initializing one shadow table
	VCPUStateSwitch Cycles // saving/restoring vcpu state (segments, LDT,
	// FPU flags) across a paravirtual context switch
	EventSend       Cycles // raising an event channel notification
	EventDeliver    Cycles // delivering a pending event upcall into a guest
	GrantMap        Cycles // mapping one granted frame
	RingPut         Cycles // enqueuing one request on a shared I/O ring
	RingGet         Cycles // dequeuing one request/response
	DomSwitch       Cycles // VMM scheduler switching between domains
	DomSchedLatency Cycles // latency until the VMM scheduler runs the
	// target domain of an event upcall

	// --- Mercury VO costs ---

	VOIndirect   Cycles // one indirect call through a virtualization object
	VORefCount   Cycles // entry+exit reference counting (two atomic ops)
	MirrorUpdate Cycles // keeping VMM frame info in sync with one native
	// PTE store (active-tracking policy, §5.1.2)

	// --- mode switch costs (Mercury core) ---

	FrameValidate Cycles // recomputing type/count info for one frame
	// during a native->virtual switch
	FrameRelease Cycles // dropping the accounting for one present entry
	// while devalidating a table at detach time
	FrameMerge Cycles // folding one shard-local frame delta into the
	// frame table when the recompute is parallelized
	JournalAppend Cycles // appending one entry to the dirty-frame
	// journal on the native PTE-write path
	JournalReplayEntry Cycles // verifying and replaying one condensed
	// journal slot at re-attach time
	CoWMapPerFrame Cycles // mapping one shared snapshot-cache frame
	// read-only into a forked domain (accounting update + read-only
	// PTE install; a promotion later pays PageCopy)
	SelectorFixup Cycles // patching cached segment selectors on one
	// interrupted thread stack
	StateReload Cycles // reloading CR3/IDT/GDT and patching the return
	// frame privilege level

	// --- guest-kernel work (mode-independent kernel computation; these
	// calibrate the native column, the virtualized columns then follow
	// from the mediated operations above) ---

	ForkBase        Cycles // task/mm struct setup for fork
	ForkPerPage     Cycles // per-page vma walk + pte copy accounting
	ExecBase        Cycles // binary load, mm teardown/rebuild bookkeeping
	FaultWork       Cycles // vma lookup + handler work per page fault
	MapPerPage      Cycles // mmap per-page vma/page-cache work
	UnmapPerPage    Cycles // munmap per-page teardown work
	CtxWork         Cycles // scheduler bookkeeping per context switch
	SignalDeliver   Cycles // delivering a signal to a user handler
	PageCacheLookup Cycles // radix-tree lookup of a cached file page
	BlkDriverStack  Cycles // block-layer + driver work per request
	NetStackTx      Cycles // protocol stack work per outbound packet
	NetStackRx      Cycles // protocol stack work per inbound packet
	PhysIRQVirt     Cycles // extra cost of one physical device interrupt
	// taken through the VMM (entry, upcall into the
	// driver domain, PHYSDEVOP_eoi hypercall)

	// --- devices ---

	DiskRequest Cycles // issuing one request to the (cached) disk
	DiskPerKB   Cycles // per-KB transfer cost
	NICPerPkt   Cycles // per-packet NIC processing
	NICPerKB    Cycles // per-KB NIC copy cost
	WireLatency Cycles // one-way link latency (100 Mb LAN)

	// --- SMP ---

	LockAcquire   Cycles // uncontended spinlock acquire+release pair
	LockContended Cycles // extra cost when the lock is contended
}

// DefaultCosts returns the calibrated cost model for the 3 GHz testbed.
func DefaultCosts() *CostModel {
	return &CostModel{
		MemRead:       4,
		MemWrite:      4,
		CacheMissLine: 120,
		PageCopy:      900,
		PageZero:      600,

		TLBHit:        1,
		TLBMissWalk:   90,
		TLBFlush:      400,
		TLBRefillPage: 520,

		SyscallEntry: 180,
		SyscallExit:  140,
		FaultEntry:   500,
		FaultExit:    300,
		IRQDeliver:   600,
		IRQEOI:       150,
		IPISend:      300,
		IPIDeliver:   700,

		PrivInsn:      30,
		DescTableLoad: 220,
		SegReload:     60,

		PTEWriteNative: 12,

		WorldSwitch:      850,
		HypercallBase:    400,
		MMUUpdateEntry:   260,
		MulticallPerOp:   40,
		MulticallEnqueue: 8,
		PTValidatePin:    130,
		FaultBounce:      1400,
		ShadowPerEntry:   190,
		ShadowPerTable:   700,
		VCPUStateSwitch:  7000,
		EventSend:        350,
		EventDeliver:     800,
		GrantMap:         450,
		RingPut:          120,
		RingGet:          120,
		DomSwitch:        1100,
		DomSchedLatency:  52_000, // ~17 us to schedule the target domain

		VOIndirect:   14,
		VORefCount:   24,
		MirrorUpdate: 52,

		FrameValidate:      95,
		FrameRelease:       42,
		FrameMerge:         6,
		JournalAppend:      9,
		JournalReplayEntry: 48,
		CoWMapPerFrame:     46,
		SelectorFixup:      160,
		StateReload:        2600,

		ForkBase:        16_000,
		ForkPerPage:     300,
		ExecBase:        60_000,
		FaultWork:       900,
		MapPerPage:      1400,
		UnmapPerPage:    900,
		CtxWork:         3200,
		SignalDeliver:   420,
		PageCacheLookup: 1000,
		BlkDriverStack:  1800,
		NetStackTx:      14_000,
		NetStackRx:      6_000,
		PhysIRQVirt:     12_000,

		DiskRequest: 5200,
		DiskPerKB:   700,
		NICPerPkt:   11_000,
		NICPerKB:    6_500,
		WireLatency: 110_000, // ~37 us one-way on the 100 Mb LAN

		LockAcquire:   40,
		LockContended: 260,
	}
}

// SMPScaled returns a copy of the model with the guest-kernel work
// costs inflated, reflecting an SMP kernel build: lock-prefixed
// read-modify-write instructions in every hot path and cache-line
// bouncing make "most of the operations in SMP mode a bit expensive
// compared to those in UP mode" (§7.2, Table 2 vs Table 1). The
// VMM-mediated costs are untouched — hypercalls do not get cheaper or
// dearer with core count, which is why the virtualized columns inflate
// by a smaller factor, as in the paper.
func (cm *CostModel) SMPScaled() *CostModel {
	cp := *cm
	k := func(v Cycles) Cycles { return v * 135 / 100 }
	cp.ForkBase = k(cp.ForkBase)
	cp.ForkPerPage = k(cp.ForkPerPage)
	cp.ExecBase = k(cp.ExecBase)
	cp.FaultWork = k(cp.FaultWork)
	cp.MapPerPage = k(cp.MapPerPage)
	cp.UnmapPerPage = k(cp.UnmapPerPage)
	cp.CtxWork = k(cp.CtxWork)
	cp.PageCacheLookup = k(cp.PageCacheLookup)
	cp.SignalDeliver = k(cp.SignalDeliver)
	cp.SyscallEntry = cp.SyscallEntry * 12 / 10
	cp.SyscallExit = cp.SyscallExit * 12 / 10
	return &cp
}
