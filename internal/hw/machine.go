package hw

import (
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
)

// Config describes a machine to build. The defaults mirror the paper's
// testbed: two 3 GHz Xeons, with memory scaled down (the simulation's
// costs are per-operation, so a smaller physical memory only bounds how
// many frames workloads may touch, not their per-operation cost).
type Config struct {
	Name     string
	Hz       uint64
	MemBytes uint64
	NumCPUs  int
	TLBSize  int
	Costs    *CostModel
}

// DefaultConfig returns the standard uniprocessor machine.
func DefaultConfig() Config {
	return Config{
		Name:     "sc1420",
		Hz:       DefaultHz,
		MemBytes: 128 << 20,
		NumCPUs:  1,
		TLBSize:  DefaultTLBSize,
	}
}

// Machine aggregates the simulated hardware: memory, CPUs, interrupt
// routing and devices.
type Machine struct {
	Name    string
	Hz      uint64
	Mem     *PhysMem
	CPUs    []*CPU
	IOAPIC  *IOAPIC
	Costs   *CostModel
	Disk    *Disk
	NIC     *NIC
	Serial  *Serial
	Sensors *SensorBank

	// Frames is the boot-time frame allocator. The boot path partitions
	// it between the OS and the pre-cached VMM.
	Frames *FrameAllocator

	// telemetry is the installed collector (nil = telemetry disabled).
	// Every instrumentation hook in the tree gates on one atomic load
	// of this pointer, the same discipline as xen.TraceBuffer.Emit.
	telemetry atomic.Pointer[obs.Collector]
}

// SetTelemetry installs (or, with nil, removes) the machine's
// telemetry collector. Safe to call while the machine runs.
func (m *Machine) SetTelemetry(col *obs.Collector) { m.telemetry.Store(col) }

// Telemetry returns the installed collector, or nil. One atomic load:
// this is the whole cost of every disabled telemetry hook.
func (m *Machine) Telemetry() *obs.Collector { return m.telemetry.Load() }

// NewMachine builds a machine from cfg.
func NewMachine(cfg Config) *Machine {
	if cfg.Hz == 0 {
		cfg.Hz = DefaultHz
	}
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 128 << 20
	}
	if cfg.NumCPUs <= 0 {
		cfg.NumCPUs = 1
	}
	if cfg.Costs == nil {
		cfg.Costs = DefaultCosts()
	}
	if cfg.NumCPUs > 1 {
		cfg.Costs = cfg.Costs.SMPScaled()
	}
	m := &Machine{
		Name:  cfg.Name,
		Hz:    cfg.Hz,
		Mem:   NewPhysMem(cfg.MemBytes),
		Costs: cfg.Costs,
	}
	m.IOAPIC = NewIOAPIC(m)
	m.Frames = NewFrameAllocator(1, m.Mem.NumFrames()) // frame 0 reserved
	for i := 0; i < cfg.NumCPUs; i++ {
		clk := NewClock(cfg.Hz)
		c := &CPU{
			ID:    i,
			M:     m,
			Clk:   clk,
			TLB:   NewTLB(cfg.TLBSize),
			LAPIC: &LAPIC{clk: clk},
			CPL:   PL0,
			IF:    false,
		}
		m.CPUs = append(m.CPUs, c)
	}
	m.Disk = NewDisk(m, IRQLineDisk)
	m.NIC = NewNIC(m, IRQLineNIC)
	m.Serial = NewSerial(m)
	m.Sensors = NewSensorBank()
	return m
}

// Interrupt lines on the IO-APIC.
const (
	IRQLineTimer = 0
	IRQLineDisk  = 1
	IRQLineNIC   = 2
)

// BootCPU returns CPU 0.
func (m *Machine) BootCPU() *CPU { return m.CPUs[0] }

// MaxClock returns the most advanced TSC across the machine's CPUs.
// Cores share a synchronized TSC; idle loops use this to keep a waiting
// core's clock in step with the cores doing work.
func (m *Machine) MaxClock() Cycles {
	var max Cycles
	for _, c := range m.CPUs {
		if n := c.Clk.Read(); n > max {
			max = n
		}
	}
	return max
}

// Micros converts cycles to microseconds at this machine's frequency.
func (m *Machine) Micros(n Cycles) float64 {
	return float64(n) / float64(m.Hz) * 1e6
}

func (m *Machine) String() string {
	return fmt.Sprintf("%s(%d CPUs, %d MB)", m.Name, len(m.CPUs),
		uint64(m.Mem.NumFrames())*PageSize>>20)
}
