package hw

import (
	"testing"
	"testing/quick"
)

func TestFrameAllocatorBasics(t *testing.T) {
	a := NewFrameAllocator(10, 20)
	seen := map[PFN]bool{}
	for i := 0; i < 10; i++ {
		pfn := a.Alloc()
		if pfn == NoPFN {
			t.Fatalf("exhausted after %d", i)
		}
		if pfn < 10 || pfn >= 20 || seen[pfn] {
			t.Fatalf("bad frame %d", pfn)
		}
		seen[pfn] = true
	}
	if a.Alloc() != NoPFN {
		t.Fatal("over-allocated")
	}
	a.Free(12)
	if got := a.Alloc(); got != 12 {
		t.Fatalf("free list not reused: got %d", got)
	}
	if a.InUse() != 10 || a.Available() != 0 {
		t.Fatalf("accounting: inuse=%d avail=%d", a.InUse(), a.Available())
	}
}

func TestFrameAllocatorDoubleFreePanics(t *testing.T) {
	a := NewFrameAllocator(0, 4)
	pfn := a.Alloc()
	a.Free(pfn)
	defer func() {
		if recover() == nil {
			t.Fatal("double free not detected")
		}
	}()
	a.Free(pfn)
}

func TestFrameAllocatorSplit(t *testing.T) {
	a := NewFrameAllocator(0, 100)
	top, err := a.Split(30)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := top.Range()
	if lo != 70 || hi != 100 {
		t.Fatalf("top range [%d,%d)", lo, hi)
	}
	if _, hi := a.Range(); hi != 70 {
		t.Fatalf("bottom hi = %d", hi)
	}
	a.Alloc()
	if _, err := a.Split(10); err == nil {
		t.Fatal("Split after allocation accepted")
	}
}

func TestFrameAllocatorSplitTop(t *testing.T) {
	a := NewFrameAllocator(0, 100)
	for i := 0; i < 40; i++ {
		a.Alloc()
	}
	top, err := a.SplitTop(50)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := top.Range()
	if lo != 50 || hi != 100 {
		t.Fatalf("top range [%d,%d)", lo, hi)
	}
	// Remaining capacity shrank accordingly.
	if got := a.Available(); got != 10 {
		t.Fatalf("available = %d", got)
	}
	if _, err := a.SplitTop(11); err == nil {
		t.Fatal("SplitTop into allocated region accepted")
	}
}

// Property: alloc/free sequences never hand out a frame twice.
func TestFrameAllocatorNoDoubleHandout(t *testing.T) {
	f := func(ops []bool) bool {
		a := NewFrameAllocator(0, 64)
		live := map[PFN]bool{}
		var order []PFN
		for _, alloc := range ops {
			if alloc {
				pfn := a.Alloc()
				if pfn == NoPFN {
					continue
				}
				if live[pfn] {
					return false
				}
				live[pfn] = true
				order = append(order, pfn)
			} else if len(order) > 0 {
				pfn := order[len(order)-1]
				order = order[:len(order)-1]
				delete(live, pfn)
				a.Free(pfn)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDiskReadBackAndMergedAccounting(t *testing.T) {
	m := testMachine(1)
	c := m.BootCPU()
	buf := make([]byte, 2*BlockSize)
	for i := range buf {
		buf[i] = byte(i % 251)
	}
	if err := m.Disk.Submit(c, DiskRequest{Block: 7, Write: true, Blocks: 2, Merged: 2}, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2*BlockSize)
	if err := m.Disk.Submit(c, DiskRequest{Block: 7, Blocks: 2}, got); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if got[i] != buf[i] {
			t.Fatalf("byte %d: %d != %d", i, got[i], buf[i])
		}
	}
	if m.Disk.Stats.Requests != 2 || m.Disk.Stats.BlocksIO != 4 {
		t.Fatalf("stats: %+v", m.Disk.Stats)
	}
	// Unwritten blocks read as zero.
	z := make([]byte, BlockSize)
	if err := m.Disk.Submit(c, DiskRequest{Block: 99, Blocks: 1}, z); err != nil {
		t.Fatal(err)
	}
	for _, b := range z {
		if b != 0 {
			t.Fatal("unwritten block nonzero")
		}
	}
	// Size validation.
	if err := m.Disk.Submit(c, DiskRequest{Block: 0, Blocks: 2}, z); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestDiskIOCostsCharged(t *testing.T) {
	m := testMachine(1)
	c := m.BootCPU()
	before := c.Now()
	buf := make([]byte, BlockSize)
	_ = m.Disk.Submit(c, DiskRequest{Block: 0, Write: true, Blocks: 1}, buf)
	cost := c.Now() - before
	want := m.Costs.DiskRequest + 4*m.Costs.DiskPerKB
	if cost < want {
		t.Fatalf("disk charged %d, want >= %d", cost, want)
	}
}

func TestNICWireDelivery(t *testing.T) {
	ma := testMachine(1)
	mb := testMachine(1)
	Wire(ma.NIC, mb.NIC, Gigabit())
	ca, cb := ma.BootCPU(), mb.BootCPU()
	ma.NIC.Transmit(ca, Packet{Data: []byte("hello")})
	pkt, ok := mb.NIC.Receive(cb, true)
	if !ok || string(pkt.Data) != "hello" {
		t.Fatalf("recv = %q, %v", pkt.Data, ok)
	}
	// Receive advanced the receiver's clock across the wire latency.
	if cb.Now() < Gigabit().LatencyCyc {
		t.Fatalf("receiver clock %d below wire latency", cb.Now())
	}
}

func TestNICReflector(t *testing.T) {
	m := testMachine(1)
	c := m.BootCPU()
	m.NIC.Reflector = func(p Packet) []Packet {
		return []Packet{{Data: append([]byte("re:"), p.Data...)}}
	}
	m.NIC.Transmit(c, Packet{Data: []byte("x")})
	if m.NIC.Pending() != 1 {
		t.Fatal("reply not queued")
	}
	pkt, ok := m.NIC.Receive(c, true)
	if !ok || string(pkt.Data) != "re:x" {
		t.Fatalf("reflected = %q", pkt.Data)
	}
	// Non-blocking receive with nothing deliverable.
	if _, ok := m.NIC.Receive(c, false); ok {
		t.Fatal("phantom packet")
	}
}

func TestSensorBank(t *testing.T) {
	s := NewSensorBank()
	if s.Read(SensorCPUTempC) <= 0 {
		t.Fatal("no nominal temperature")
	}
	s.Set(SensorCPUTempC, 95)
	if s.Read(SensorCPUTempC) != 95 {
		t.Fatal("set/read mismatch")
	}
	if len(s.Names()) < 4 {
		t.Fatalf("sensors: %v", s.Names())
	}
	if s.Read("bogus") != 0 {
		t.Fatal("unknown sensor nonzero")
	}
}

func TestMachineMaxClock(t *testing.T) {
	m := testMachine(2)
	m.CPUs[0].Clk.Advance(100)
	m.CPUs[1].Clk.Advance(700)
	if got := m.MaxClock(); got != 700 {
		t.Fatalf("MaxClock = %d", got)
	}
}

func TestSMPScaledInflatesOnlyKernelWork(t *testing.T) {
	base := DefaultCosts()
	smp := base.SMPScaled()
	if smp.ForkPerPage <= base.ForkPerPage || smp.CtxWork <= base.CtxWork {
		t.Fatal("kernel work not inflated")
	}
	if smp.WorldSwitch != base.WorldSwitch || smp.MMUUpdateEntry != base.MMUUpdateEntry {
		t.Fatal("VMM costs must not scale with core count")
	}
	if base.ForkPerPage != DefaultCosts().ForkPerPage {
		t.Fatal("SMPScaled mutated the receiver")
	}
}

func TestIOAPICRoutingAndMask(t *testing.T) {
	m := testMachine(2)
	m.IOAPIC.Route(5, 1, VecNIC)
	m.IOAPIC.Raise(5)
	if !m.CPUs[1].LAPIC.HasPending() {
		t.Fatal("line not routed to cpu1")
	}
	m.CPUs[1].LAPIC.take()
	m.IOAPIC.Mask(5, true)
	m.IOAPIC.Raise(5)
	if m.CPUs[1].LAPIC.HasPending() {
		t.Fatal("masked line delivered")
	}
	if len(m.IOAPIC.Routes()) == 0 {
		t.Fatal("routes not reported")
	}
}
