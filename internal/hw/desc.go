package hw

import "fmt"

// Privilege levels. Native kernels and the VMM run at PL0; a deprivileged
// (virtualized) kernel runs at PL1; user code runs at PL3 (§3.2.1).
const (
	PL0 = 0 // most privileged: VMM, or the kernel in native mode
	PL1 = 1 // deprivileged guest kernel in virtual mode
	PL3 = 3 // user mode
)

// Selector is an x86-style segment selector: index<<3 | table<<2 | RPL.
// The low two bits carry the requested privilege level; these are the bits
// Mercury's stack-fixup stub patches on cached selectors when a mode
// switch happens under an interrupted thread (§5.1.2).
type Selector uint16

// MakeSelector builds a selector for a GDT index at the given RPL.
func MakeSelector(index int, rpl uint8) Selector {
	return Selector(index<<3 | int(rpl&3))
}

// Index returns the descriptor-table index of the selector.
func (s Selector) Index() int { return int(s >> 3) }

// RPL returns the requested privilege level encoded in the selector.
func (s Selector) RPL() uint8 { return uint8(s & 3) }

// WithRPL returns the selector with its privilege bits replaced.
func (s Selector) WithRPL(rpl uint8) Selector {
	return (s &^ 3) | Selector(rpl&3)
}

func (s Selector) String() string {
	return fmt.Sprintf("sel(%d|rpl%d)", s.Index(), s.RPL())
}

// SegKind distinguishes descriptor types.
type SegKind uint8

const (
	SegNull SegKind = iota
	SegCode
	SegData
	SegTSS
)

// SegDesc is one descriptor-table entry.
type SegDesc struct {
	Kind    SegKind
	Base    VirtAddr
	Limit   uint32
	DPL     uint8 // descriptor privilege level
	Present bool
}

// GDT is a global (or local) descriptor table. In this simulation the
// table is a host-side structure referenced by the CPU's GDTR; loading it
// is charged the architectural cost but the contents live outside
// simulated RAM for simplicity.
type GDT struct {
	Name    string
	Entries []SegDesc
}

// Canonical GDT slots shared by the guest kernel and the VMM so that
// selectors remain meaningful across mode switches.
const (
	GDTNull       = 0
	GDTKernelCode = 1
	GDTKernelData = 2
	GDTUserCode   = 3
	GDTUserData   = 4
	GDTVMMCode    = 5
	GDTVMMData    = 6
	GDTSlots      = 8
)

// NewGDT builds a descriptor table with the canonical layout. kernelDPL is
// PL0 for a native kernel or the VMM's own table, PL1 for the table a
// deprivileged guest runs on.
func NewGDT(name string, kernelDPL uint8) *GDT {
	g := &GDT{Name: name, Entries: make([]SegDesc, GDTSlots)}
	g.Entries[GDTKernelCode] = SegDesc{Kind: SegCode, Limit: 0xFFFFFFFF, DPL: kernelDPL, Present: true}
	g.Entries[GDTKernelData] = SegDesc{Kind: SegData, Limit: 0xFFFFFFFF, DPL: kernelDPL, Present: true}
	g.Entries[GDTUserCode] = SegDesc{Kind: SegCode, Limit: 0xFFFFFFFF, DPL: PL3, Present: true}
	g.Entries[GDTUserData] = SegDesc{Kind: SegData, Limit: 0xFFFFFFFF, DPL: PL3, Present: true}
	g.Entries[GDTVMMCode] = SegDesc{Kind: SegCode, Limit: 0xFFFFFFFF, DPL: PL0, Present: true}
	g.Entries[GDTVMMData] = SegDesc{Kind: SegData, Limit: 0xFFFFFFFF, DPL: PL0, Present: true}
	return g
}

// KernelCS returns the kernel code selector at the table's kernel DPL.
func (g *GDT) KernelCS() Selector {
	return MakeSelector(GDTKernelCode, g.Entries[GDTKernelCode].DPL)
}

// KernelSS returns the kernel stack selector at the table's kernel DPL.
func (g *GDT) KernelSS() Selector {
	return MakeSelector(GDTKernelData, g.Entries[GDTKernelData].DPL)
}

// SetKernelDPL re-privileges the kernel code/data descriptors. Mercury's
// state-transfer functions call this when flipping the kernel between PL0
// (native) and PL1 (virtual) (§5.1.2 item 2).
func (g *GDT) SetKernelDPL(dpl uint8) {
	g.Entries[GDTKernelCode].DPL = dpl
	g.Entries[GDTKernelData].DPL = dpl
}

// Vector numbers used by the simulated platform.
const (
	VecDivide       = 0
	VecDebug        = 1
	VecGP           = 13 // general protection fault
	VecPageFault    = 14
	VecTimer        = 32
	VecDisk         = 33
	VecNIC          = 34
	VecReschedIPI   = 0xFD // scheduler kick IPI
	VecModeSwitch   = 0xFE // Mercury self-virtualization interrupt (§4.1)
	VecModeSwitchAP = 0xFC // rendezvous IPI sent to the other processors (§5.4)
	NumVectors      = 256
)

// TrapFrame is the stack frame hardware pushes when delivering an
// interrupt or exception. CS and SS carry selectors whose RPL bits encode
// the interrupted privilege level; Mercury patches these during a mode
// switch so a resumed thread does not pop stale privilege bits and fault
// (§5.1.2). Returning to a frame whose selectors differ from the live
// GDT's kernel DPL raises #GP, exactly the failure the stub prevents.
type TrapFrame struct {
	Vector  int
	ErrCode uint32
	CS      Selector
	SS      Selector
	IF      bool     // interrupted EFLAGS.IF
	Addr    VirtAddr // faulting address for #PF, else 0
	Write   bool     // #PF was a write
	User    bool     // #PF came from user mode

	// Skip is set by a fault handler to abort the faulting access
	// instead of retrying it — the way a SIGSEGV handler that longjmps
	// past the instruction behaves. The CPU then completes the access
	// as a no-op.
	Skip bool
}

// Gate is one IDT entry: a handler entry point at a target privilege
// level. Handlers are Go functions standing in for the kernel's or VMM's
// assembly entry stubs.
type Gate struct {
	Present bool
	DPL     uint8 // who may raise it via software (int n)
	Target  uint8 // privilege level the handler runs at
	Handler func(c *CPU, f *TrapFrame)
}

// IDT is an interrupt descriptor table. In native mode the hardware IDTR
// points at the guest kernel's table; after a switch to virtual mode it
// points at the VMM's table, which bounces guest-bound traps (§5.1.3).
type IDT struct {
	Name  string
	Gates [NumVectors]Gate
}

// NewIDT returns an empty table.
func NewIDT(name string) *IDT { return &IDT{Name: name} }

// Set installs a gate.
func (t *IDT) Set(vector int, g Gate) {
	if vector < 0 || vector >= NumVectors {
		panic(fmt.Sprintf("hw: bad vector %d", vector))
	}
	t.Gates[vector] = g
}

// Get returns the gate for a vector.
func (t *IDT) Get(vector int) Gate {
	if vector < 0 || vector >= NumVectors {
		panic(fmt.Sprintf("hw: bad vector %d", vector))
	}
	return t.Gates[vector]
}
