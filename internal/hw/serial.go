package hw

import (
	"strings"
	"sync"
)

// Serial is a polled UART-style console device driven by privileged
// port output — one of the sensitive I/O surfaces (§3.2.4): a native
// kernel writes the port directly at PL0; a deprivileged kernel cannot
// (the instruction faults) and must use the VMM's console service.
type Serial struct {
	m  *Machine
	mu sync.Mutex

	cur   strings.Builder
	lines []string

	BytesOut uint64
}

// NewSerial builds the console UART.
func NewSerial(m *Machine) *Serial { return &Serial{m: m} }

// WritePort emits one byte through the data port. Privileged: at CPL>0
// the access faults to #GP (which a VMM can catch and emulate).
func (s *Serial) WritePort(c *CPU, b byte) {
	c.Charge(s.m.Costs.PrivInsn)
	if c.CPL != PL0 {
		c.RaiseGP("out to serial port")
		return
	}
	c.Charge(s.m.Costs.MemWrite * 4) // UART FIFO poll + write
	s.mu.Lock()
	s.BytesOut++
	if b == '\n' {
		s.lines = append(s.lines, s.cur.String())
		s.cur.Reset()
	} else {
		s.cur.WriteByte(b)
	}
	s.mu.Unlock()
}

// Lines returns the completed output lines.
func (s *Serial) Lines() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.lines))
	copy(out, s.lines)
	return out
}
