package hw

import (
	"sync/atomic"
	"time"
)

// Cycles counts simulated processor cycles.
type Cycles = uint64

// DefaultHz is the simulated core frequency: 3 GHz, matching the paper's
// dual 3.0 GHz Xeon testbed (DELL SC 1420).
const DefaultHz = 3_000_000_000

// Clock is a per-CPU time-stamp counter. It is safe for concurrent reads;
// only the owning CPU advances it.
type Clock struct {
	hz     uint64
	cycles atomic.Uint64
}

// NewClock returns a clock ticking at hz cycles per second.
func NewClock(hz uint64) *Clock {
	if hz == 0 {
		hz = DefaultHz
	}
	return &Clock{hz: hz}
}

// Advance moves the clock forward by n cycles and returns the new reading.
func (c *Clock) Advance(n Cycles) Cycles {
	return c.cycles.Add(n)
}

// Read returns the current cycle count (the simulated RDTSC).
func (c *Clock) Read() Cycles { return c.cycles.Load() }

// Hz returns the clock frequency.
func (c *Clock) Hz() uint64 { return c.hz }

// ToDuration converts a cycle count on this clock into wall time.
func (c *Clock) ToDuration(n Cycles) time.Duration {
	// n / hz seconds, computed without overflow for realistic n.
	sec := n / c.hz
	rem := n % c.hz
	return time.Duration(sec)*time.Second +
		time.Duration(rem*uint64(time.Second)/c.hz)
}

// Micros converts a cycle count into microseconds as a float, the unit the
// paper's lmbench tables use.
func (c *Clock) Micros(n Cycles) float64 {
	return float64(n) / float64(c.hz) * 1e6
}
