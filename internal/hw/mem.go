package hw

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Address-space geometry, mirroring the 32-bit x86 layout the paper's
// prototype uses (§3.2.2): a single 4 GB virtual address space with the
// kernel in the top 1 GB and the VMM reserved in the top 64 MB. Mercury
// keeps the VMM hole reserved even in native mode so the layout never has
// to change across a mode switch.
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4096
	PageMask  = PageSize - 1

	// KernelBase is where the guest kernel's address space begins.
	KernelBase VirtAddr = 0xC000_0000
	// VMMBase is the start of the 64 MB region reserved for the
	// pre-cached VMM, at the very top of every address space.
	VMMBase VirtAddr = 0xFC00_0000
	// VMMSize is the size of the reserved VMM region.
	VMMSize = 64 << 20
)

// PhysAddr is a physical byte address.
type PhysAddr uint32

// VirtAddr is a virtual byte address.
type VirtAddr uint32

// PFN is a physical page frame number.
type PFN uint32

// NoPFN marks an invalid/absent frame.
const NoPFN = PFN(0xFFFF_FFFF)

// Addr returns the physical address of the first byte of the frame.
func (p PFN) Addr() PhysAddr { return PhysAddr(p) << PageShift }

// PFNOf returns the frame containing the physical address.
func PFNOf(a PhysAddr) PFN { return PFN(a >> PageShift) }

// VPN is a virtual page number.
type VPN uint32

// VPNOf returns the virtual page containing the virtual address.
func VPNOf(a VirtAddr) VPN { return VPN(a >> PageShift) }

// Addr returns the virtual address of the first byte of the page.
func (v VPN) Addr() VirtAddr { return VirtAddr(v) << PageShift }

// PhysMem is the machine's physical memory, divided into 4 KB frames.
// Frame contents are allocated lazily so large simulated memories stay
// cheap on the host. PhysMem is safe for concurrent use by multiple CPUs.
type PhysMem struct {
	mu     sync.RWMutex
	frames [][]byte // nil until first written
	nframe PFN

	// dirty, when non-nil, records every frame written since the last
	// CollectDirty — the log-dirty mode live migration's pre-copy
	// rounds rely on. dirtyOn gates the hot path without a lock.
	dirtyOn atomic.Bool
	dirtyMu sync.Mutex
	dirty   map[PFN]struct{}

	// cow maps frames onto shared read-only pages (the fork snapshot
	// cache): reads are served from the shared bytes without copying,
	// and the first write promotes the frame to a private copy. cowCnt
	// gates the hot path without a lock.
	cowCnt atomic.Int64
	cowMu  sync.Mutex
	cow    map[PFN]*cowSource
}

// cowSource backs one copy-on-write frame: data is the shared read-only
// page (aliased, never written through), onPromote is invoked after the
// frame has been privatized by a first write.
type cowSource struct {
	data      []byte
	onPromote func(pfn PFN)
}

// EnableDirtyLog starts recording written frames.
func (m *PhysMem) EnableDirtyLog() {
	m.dirtyMu.Lock()
	if m.dirty == nil {
		m.dirty = make(map[PFN]struct{})
	}
	m.dirtyOn.Store(true)
	m.dirtyMu.Unlock()
}

// DisableDirtyLog stops recording and drops the log.
func (m *PhysMem) DisableDirtyLog() {
	m.dirtyMu.Lock()
	m.dirtyOn.Store(false)
	m.dirty = nil
	m.dirtyMu.Unlock()
}

// DirtyLogEnabled reports whether writes are currently being recorded —
// migration rollback asserts the log was disarmed.
func (m *PhysMem) DirtyLogEnabled() bool { return m.dirtyOn.Load() }

// CollectDirty returns and clears the set of frames written since the
// last collection. Nil if logging is off.
func (m *PhysMem) CollectDirty() []PFN {
	m.dirtyMu.Lock()
	defer m.dirtyMu.Unlock()
	if m.dirty == nil {
		return nil
	}
	out := make([]PFN, 0, len(m.dirty))
	for pfn := range m.dirty {
		out = append(out, pfn)
	}
	m.dirty = make(map[PFN]struct{})
	return out
}

// markDirty records a write when logging is enabled.
func (m *PhysMem) markDirty(pfn PFN) {
	if !m.dirtyOn.Load() {
		return
	}
	m.dirtyMu.Lock()
	if m.dirty != nil {
		m.dirty[pfn] = struct{}{}
	}
	m.dirtyMu.Unlock()
}

// NewPhysMem creates a physical memory of the given byte size (rounded
// down to whole frames).
func NewPhysMem(size uint64) *PhysMem {
	n := PFN(size >> PageShift)
	return &PhysMem{frames: make([][]byte, n), nframe: n}
}

// NumFrames returns the number of physical frames.
func (m *PhysMem) NumFrames() PFN { return m.nframe }

// Valid reports whether pfn addresses an existing frame.
func (m *PhysMem) Valid(pfn PFN) bool { return pfn < m.nframe }

// frame returns the backing slice for pfn, allocating it if needed.
func (m *PhysMem) frame(pfn PFN) []byte {
	m.mu.RLock()
	f := m.frames[pfn]
	m.mu.RUnlock()
	if f != nil {
		return f
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.frames[pfn] == nil {
		m.frames[pfn] = make([]byte, PageSize)
	}
	return m.frames[pfn]
}

// MapShared maps pfn copy-on-write onto a shared read-only page: reads
// see data without any copy, and the first write promotes the frame to
// a private copy (after which onPromote, if set, runs once). data must
// be exactly one page and must stay immutable while mapped — it is
// aliased, not copied. Any private content the frame held is discarded.
func (m *PhysMem) MapShared(pfn PFN, data []byte, onPromote func(PFN)) error {
	if !m.Valid(pfn) {
		return fmt.Errorf("hw: MapShared beyond memory: frame %d", pfn)
	}
	if len(data) != PageSize {
		return fmt.Errorf("hw: MapShared frame %d: page is %d bytes", pfn, len(data))
	}
	m.mu.Lock()
	m.frames[pfn] = nil // shared content replaces any private copy
	m.mu.Unlock()
	m.cowMu.Lock()
	if m.cow == nil {
		m.cow = make(map[PFN]*cowSource)
	}
	if _, dup := m.cow[pfn]; !dup {
		m.cowCnt.Add(1)
	}
	m.cow[pfn] = &cowSource{data: data, onPromote: onPromote}
	m.cowMu.Unlock()
	return nil
}

// UnmapShared removes a copy-on-write mapping without promoting it (the
// clone-teardown path). Reports whether pfn was mapped; the frame reads
// as zero afterwards.
func (m *PhysMem) UnmapShared(pfn PFN) bool {
	m.cowMu.Lock()
	_, ok := m.cow[pfn]
	if ok {
		delete(m.cow, pfn)
		m.cowCnt.Add(-1)
	}
	m.cowMu.Unlock()
	return ok
}

// SharedFrames returns the number of live copy-on-write mappings.
func (m *PhysMem) SharedFrames() int { return int(m.cowCnt.Load()) }

// SharedAt reports whether pfn is still copy-on-write mapped (not yet
// promoted by a write).
func (m *PhysMem) SharedAt(pfn PFN) bool {
	if m.cowCnt.Load() == 0 {
		return false
	}
	m.cowMu.Lock()
	_, ok := m.cow[pfn]
	m.cowMu.Unlock()
	return ok
}

// cowLookup returns pfn's CoW source, nil if none. The fast path for
// machines with no mappings is one atomic load.
func (m *PhysMem) cowLookup(pfn PFN) *cowSource {
	if m.cowCnt.Load() == 0 {
		return nil
	}
	m.cowMu.Lock()
	s := m.cow[pfn]
	m.cowMu.Unlock()
	return s
}

// promote materializes a private copy of a CoW frame ahead of a write,
// removing the mapping and running the promotion hook.
func (m *PhysMem) promote(pfn PFN) []byte {
	m.cowMu.Lock()
	s := m.cow[pfn]
	if s == nil {
		m.cowMu.Unlock()
		return m.frame(pfn)
	}
	delete(m.cow, pfn)
	m.cowCnt.Add(-1)
	m.cowMu.Unlock()
	f := m.frame(pfn)
	copy(f, s.data)
	if s.onPromote != nil {
		s.onPromote(pfn)
	}
	return f
}

// frameRO returns the bytes a read of pfn observes: the shared page for
// CoW-mapped frames, the private backing otherwise.
func (m *PhysMem) frameRO(pfn PFN) []byte {
	if s := m.cowLookup(pfn); s != nil {
		return s.data
	}
	return m.frame(pfn)
}

// frameRW returns writable backing for pfn, promoting a CoW mapping to
// a private copy first.
func (m *PhysMem) frameRW(pfn PFN) []byte {
	if m.cowCnt.Load() != 0 {
		return m.promote(pfn)
	}
	return m.frame(pfn)
}

// ReadWord reads a 32-bit little-endian word at the physical address.
func (m *PhysMem) ReadWord(a PhysAddr) uint32 {
	pfn := PFNOf(a)
	if !m.Valid(pfn) {
		panic(fmt.Sprintf("hw: physical read beyond memory: %#x", a))
	}
	off := a & PageMask
	if off > PageSize-4 {
		panic(fmt.Sprintf("hw: unaligned word read across frame: %#x", a))
	}
	f := m.frameRO(pfn)
	return uint32(f[off]) | uint32(f[off+1])<<8 |
		uint32(f[off+2])<<16 | uint32(f[off+3])<<24
}

// WriteWord writes a 32-bit little-endian word at the physical address.
func (m *PhysMem) WriteWord(a PhysAddr, v uint32) {
	pfn := PFNOf(a)
	if !m.Valid(pfn) {
		panic(fmt.Sprintf("hw: physical write beyond memory: %#x", a))
	}
	off := a & PageMask
	if off > PageSize-4 {
		panic(fmt.Sprintf("hw: unaligned word write across frame: %#x", a))
	}
	f := m.frameRW(pfn)
	f[off] = byte(v)
	f[off+1] = byte(v >> 8)
	f[off+2] = byte(v >> 16)
	f[off+3] = byte(v >> 24)
	m.markDirty(pfn)
}

// Load8 reads one byte at the physical address.
func (m *PhysMem) Load8(a PhysAddr) byte {
	pfn := PFNOf(a)
	if !m.Valid(pfn) {
		panic(fmt.Sprintf("hw: physical read beyond memory: %#x", a))
	}
	return m.frameRO(pfn)[a&PageMask]
}

// Store8 writes one byte at the physical address.
func (m *PhysMem) Store8(a PhysAddr, v byte) {
	pfn := PFNOf(a)
	if !m.Valid(pfn) {
		panic(fmt.Sprintf("hw: physical write beyond memory: %#x", a))
	}
	m.frameRW(pfn)[a&PageMask] = v
	m.markDirty(pfn)
}

// CopyFrame copies the full contents of frame src into frame dst.
func (m *PhysMem) CopyFrame(dst, src PFN) {
	if !m.Valid(dst) || !m.Valid(src) {
		panic("hw: CopyFrame beyond memory")
	}
	copy(m.frameRW(dst), m.frameRO(src))
	m.markDirty(dst)
}

// ZeroFrame clears the contents of a frame. Zeroing a CoW-mapped frame
// is a write: the mapping is dropped (the promotion hook runs) and the
// private copy is the implicit zero frame.
func (m *PhysMem) ZeroFrame(pfn PFN) {
	if !m.Valid(pfn) {
		panic("hw: ZeroFrame beyond memory")
	}
	if m.cowCnt.Load() != 0 {
		m.cowMu.Lock()
		s := m.cow[pfn]
		if s != nil {
			delete(m.cow, pfn)
			m.cowCnt.Add(-1)
		}
		m.cowMu.Unlock()
		if s != nil {
			m.mu.Lock()
			m.frames[pfn] = nil
			m.mu.Unlock()
			if s.onPromote != nil {
				s.onPromote(pfn)
			}
			m.markDirty(pfn)
			return
		}
	}
	m.mu.RLock()
	f := m.frames[pfn]
	m.mu.RUnlock()
	if f == nil {
		return // lazily-allocated frames are already zero
	}
	for i := range f {
		f[i] = 0
	}
	m.markDirty(pfn)
}

// FrameBytes returns the backing bytes of a frame for bulk operations
// (device DMA, checkpointing). The caller must respect frame ownership.
func (m *PhysMem) FrameBytes(pfn PFN) []byte {
	if !m.Valid(pfn) {
		panic("hw: FrameBytes beyond memory")
	}
	m.markDirty(pfn) // pessimistic: the caller may write
	return m.frameRW(pfn)
}

// FrameBytesRO returns the backing bytes for read-only use (snapshots,
// migration senders) without touching the dirty log. For a CoW-mapped
// frame this is the shared page itself — zero copies.
func (m *PhysMem) FrameBytesRO(pfn PFN) []byte {
	if !m.Valid(pfn) {
		panic("hw: FrameBytesRO beyond memory")
	}
	return m.frameRO(pfn)
}

// Snapshot copies the full contents of physical memory. Untouched frames
// are recorded as nil to keep checkpoints compact; CoW-mapped frames are
// recorded with their shared content (what a read observes).
func (m *PhysMem) Snapshot() [][]byte {
	m.mu.RLock()
	out := make([][]byte, len(m.frames))
	for i, f := range m.frames {
		if f != nil {
			cp := make([]byte, PageSize)
			copy(cp, f)
			out[i] = cp
		}
	}
	m.mu.RUnlock()
	if m.cowCnt.Load() != 0 {
		m.cowMu.Lock()
		for pfn, s := range m.cow {
			cp := make([]byte, PageSize)
			copy(cp, s.data)
			out[pfn] = cp
		}
		m.cowMu.Unlock()
	}
	return out
}

// Restore overwrites physical memory from a snapshot taken by Snapshot.
// Any live CoW mappings are dropped (without running promotion hooks):
// the snapshot's contents win.
func (m *PhysMem) Restore(snap [][]byte) error {
	m.cowMu.Lock()
	m.cowCnt.Add(-int64(len(m.cow)))
	m.cow = nil
	m.cowMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(snap) != len(m.frames) {
		return fmt.Errorf("hw: snapshot has %d frames, memory has %d",
			len(snap), len(m.frames))
	}
	for i, f := range snap {
		if f == nil {
			m.frames[i] = nil
			continue
		}
		cp := make([]byte, PageSize)
		copy(cp, f)
		m.frames[i] = cp
	}
	return nil
}
