package hw

import (
	"testing"
	"testing/quick"
)

func TestPhysMemWordRoundTrip(t *testing.T) {
	m := NewPhysMem(1 << 20)
	m.WriteWord(0x1000, 0xDEADBEEF)
	if got := m.ReadWord(0x1000); got != 0xDEADBEEF {
		t.Fatalf("ReadWord = %#x", got)
	}
	// Little-endian layout.
	if b := m.Load8(0x1000); b != 0xEF {
		t.Fatalf("byte 0 = %#x, want 0xEF", b)
	}
	if b := m.Load8(0x1003); b != 0xDE {
		t.Fatalf("byte 3 = %#x, want 0xDE", b)
	}
}

func TestPhysMemZeroDefault(t *testing.T) {
	m := NewPhysMem(1 << 20)
	if got := m.ReadWord(0x4000); got != 0 {
		t.Fatalf("untouched memory reads %#x", got)
	}
}

func TestPhysMemCopyZeroFrame(t *testing.T) {
	m := NewPhysMem(1 << 20)
	m.WriteWord(PFN(3).Addr()+8, 42)
	m.CopyFrame(5, 3)
	if got := m.ReadWord(PFN(5).Addr() + 8); got != 42 {
		t.Fatalf("copied frame reads %d", got)
	}
	m.ZeroFrame(5)
	if got := m.ReadWord(PFN(5).Addr() + 8); got != 0 {
		t.Fatalf("zeroed frame reads %d", got)
	}
}

func TestPhysMemSnapshotRestore(t *testing.T) {
	m := NewPhysMem(1 << 20)
	m.WriteWord(0x2000, 7)
	m.WriteWord(0x3004, 9)
	snap := m.Snapshot()
	m.WriteWord(0x2000, 100)
	m.WriteWord(0x5000, 5)
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if m.ReadWord(0x2000) != 7 || m.ReadWord(0x3004) != 9 || m.ReadWord(0x5000) != 0 {
		t.Fatal("restore did not reproduce snapshot state")
	}
}

func TestPhysMemRestoreSizeMismatch(t *testing.T) {
	m := NewPhysMem(1 << 20)
	if err := m.Restore(make([][]byte, 3)); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func TestPhysMemOutOfRangePanics(t *testing.T) {
	m := NewPhysMem(1 << 20)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.ReadWord(2 << 20)
}

func TestAddressHelpers(t *testing.T) {
	if PFNOf(0x5123) != 5 {
		t.Fatalf("PFNOf = %d", PFNOf(0x5123))
	}
	if PFN(5).Addr() != 0x5000 {
		t.Fatalf("Addr = %#x", PFN(5).Addr())
	}
	if VPNOf(0xC0001234) != 0xC0001 {
		t.Fatalf("VPNOf = %#x", VPNOf(0xC0001234))
	}
	if VPN(0xC0001).Addr() != 0xC0001000 {
		t.Fatalf("VPN.Addr = %#x", VPN(0xC0001).Addr())
	}
}

// Property: word writes at distinct aligned addresses never interfere.
func TestPhysMemWriteIsolation(t *testing.T) {
	m := NewPhysMem(1 << 22)
	f := func(a, b uint16, va, vb uint32) bool {
		pa := PhysAddr(a) * 4
		pb := PhysAddr(b) * 4
		if pa == pb {
			return true
		}
		m.WriteWord(pa, va)
		m.WriteWord(pb, vb)
		return m.ReadWord(pa) == va && m.ReadWord(pb) == vb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
