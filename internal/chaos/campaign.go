package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/hw"
	"repro/internal/migrate"
	"repro/internal/obs"
	"repro/internal/xen"
)

// Standby is the escalation target for sensor-detected faults: when a
// repair fails, the campaign evacuates to this node (§6.5) instead of
// giving up.
type Standby struct {
	V      *xen.VMM
	Caller *xen.Domain
	Cfg    migrate.LiveConfig
}

// Config parameterizes one campaign.
type Config struct {
	Seed     int64
	Episodes int // default 16
	// Workload interleaves forked processes touching memory between
	// episodes; SwitchCycles interleaves clean attach/detach cycles.
	Workload     bool
	SwitchCycles bool
	// Faults overrides the injected classes (default Catalog(mc)).
	Faults []*Fault
	// Standby, when set, routes failed repairs into evacuation.
	Standby *Standby
	// Fork, when set, adds the snapshot-cache faults (ForkFaults) and
	// gives DetectStore episodes their probe target.
	Fork *ForkEnv
	// IO, when set, adds the split-device datapath faults (IOFaults)
	// and gives DetectIO episodes their probe target.
	IO *IOEnv
}

// DefaultConfig returns a fully interleaved campaign for the seed.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, Episodes: 16, Workload: true, SwitchCycles: true}
}

// Episode records one fault's full lifecycle.
type Episode struct {
	Index      int
	Fault      string
	Layer      Layer
	Detector   Detector
	Workload   bool // a forked workload ran before the fault
	PreSwitch  bool // a clean attach/detach cycle ran before the fault
	Injected   bool
	Detected   bool
	Healed     bool // the system verified clean after repair/undo
	RolledBack bool // a switch attempt was rolled back by validation
	Starved    bool // a switch attempt was abandoned by the deferral budget
	Escalated  bool // healing failed and the node evacuated
	Detail     string
	MTTRCycles uint64 // injection to verified-healthy, cycle-accurate
}

// Report is a campaign's dependability summary.
type Report struct {
	Seed     int64
	Episodes []Episode

	Injected   int
	Detected   int
	Healed     int
	Missed     int // injected but not detected — a detector gap
	RolledBack int
	Starved    int
	Escalated  int

	MTTRTotalCycles uint64
	MTTRMeanUS      float64
}

// Summary renders the report's counts as one line.
func (r *Report) Summary() string {
	return fmt.Sprintf(
		"seed %d: %d episodes, %d injected, %d detected, %d healed, %d missed, %d rolled back, %d starved, %d escalated, MTTR %.1f us",
		r.Seed, len(r.Episodes), r.Injected, r.Detected, r.Healed, r.Missed,
		r.RolledBack, r.Starved, r.Escalated, r.MTTRMeanUS)
}

// FaultClasses returns how many distinct fault classes the campaign
// exercised.
func (r *Report) FaultClasses() int {
	seen := map[string]bool{}
	for _, ep := range r.Episodes {
		seen[ep.Fault] = true
	}
	return len(seen)
}

// chaosObs caches the campaign's telemetry handles.
type chaosObs struct {
	col      *obs.Collector
	injected map[Layer]*obs.Counter
	detected *obs.Counter
	healed   *obs.Counter
	missed   *obs.Counter
	rolled   *obs.Counter
	mttrCyc  *obs.Histogram
}

func newChaosObs(col *obs.Collector) *chaosObs {
	if col == nil {
		return nil
	}
	r := col.Registry
	return &chaosObs{
		col: col,
		injected: map[Layer]*obs.Counter{
			LayerGuest: r.Counter("chaos", "faults_injected_total", obs.L("layer", string(LayerGuest))),
			LayerVMM:   r.Counter("chaos", "faults_injected_total", obs.L("layer", string(LayerVMM))),
			LayerHW:    r.Counter("chaos", "faults_injected_total", obs.L("layer", string(LayerHW))),
		},
		detected: r.Counter("chaos", "faults_detected_total"),
		healed:   r.Counter("chaos", "faults_healed_total"),
		missed:   r.Counter("chaos", "faults_missed_total"),
		rolled:   r.Counter("chaos", "switch_rollbacks_total"),
		mttrCyc:  r.Histogram("chaos", "mttr_cycles"),
	}
}

// Run executes a campaign against mc, driving the guest scheduler on
// every CPU (the SMP rendezvous path is exercised whenever the machine
// has more than one processor). The campaign runs inside a spawned
// driver process so switches, heals, and evacuations happen in guest
// execution context, exactly as the production paths do.
//
// Reproducibility: with the same mc configuration, seed, and config,
// two runs produce identical episode sequences; on a uniprocessor the
// cycle counts (and so MTTR) are identical too.
func Run(mc *core.Mercury, cfg Config) (*Report, error) {
	if cfg.Episodes <= 0 {
		cfg.Episodes = 16
	}
	faults := cfg.Faults
	if len(faults) == 0 {
		faults = Catalog(mc)
		if cfg.Standby != nil {
			// With a migration target available the campaign also
			// attacks the §6.3 maintenance pipeline.
			faults = append(faults, MigrationFaults()...)
		}
		if cfg.Fork != nil {
			// With a snapshot-cache node available the campaign also
			// attacks the fork store's refcount and content integrity.
			faults = append(faults, ForkFaults()...)
		}
		if cfg.IO != nil {
			// With a split-device node available the campaign also
			// attacks the multi-queue I/O rings and their doorbells.
			faults = append(faults, IOFaults()...)
		}
	}
	rep := &Report{Seed: cfg.Seed}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tel := newChaosObs(mc.M.Telemetry())

	var runErr error
	k := mc.K
	boot := mc.M.BootCPU()
	k.Spawn(boot, "chaos-driver", guest.DefaultImage("chaos-driver"), func(p *guest.Proc) {
		// Populate some page tables so guest-layer faults have victims.
		base := p.Mmap(8, guest.ProtRead|guest.ProtWrite, true)
		p.Touch(base, 8, true)
		ctx := &Ctx{MC: mc, P: p, Rand: rng, Migrate: &migrate.FaultInjection{}, Fork: cfg.Fork, IO: cfg.IO}
		for i := 0; i < cfg.Episodes; i++ {
			ep, err := runEpisode(ctx, cfg, faults, rep, tel, i)
			rep.Episodes = append(rep.Episodes, ep)
			if err != nil {
				runErr = fmt.Errorf("chaos: episode %d (%s): %w", i, ep.Fault, err)
				return
			}
		}
	})
	var aps sync.WaitGroup
	for _, ap := range mc.M.CPUs[1:] {
		aps.Add(1)
		go func(c *hw.CPU) {
			defer aps.Done()
			k.Run(c)
		}(ap)
	}
	k.Run(boot)
	aps.Wait()

	if n := len(rep.Episodes); n > 0 {
		rep.MTTRMeanUS = float64(rep.MTTRTotalCycles) / float64(n) /
			float64(mc.M.Hz) * 1e6
	}
	return rep, runErr
}

// runEpisode drives one fault through inject -> detect -> heal ->
// verify, with optional workload and clean-switch interleaving before
// the injection.
func runEpisode(ctx *Ctx, cfg Config, faults []*Fault, rep *Report, tel *chaosObs, i int) (Episode, error) {
	mc := ctx.MC
	ctx.C = ctx.P.CPU()
	ep := Episode{Index: i}

	// Interleave: a forked workload and/or a clean attach/detach cycle,
	// each verified against the invariant checker.
	if cfg.Workload && ctx.Rand.Intn(3) == 0 {
		ep.Workload = true
		runWorkload(ctx.P)
		ctx.C = ctx.P.CPU()
		if err := mc.CheckInvariants(ctx.C); err != nil {
			return ep, fmt.Errorf("after workload: %w", err)
		}
	}
	if cfg.SwitchCycles && ctx.Rand.Intn(4) == 0 {
		ep.PreSwitch = true
		if err := mc.SwitchSync(ctx.C, core.ModePartialVirtual); err != nil {
			return ep, fmt.Errorf("clean attach: %w", err)
		}
		if err := mc.CheckInvariants(ctx.C); err != nil {
			return ep, fmt.Errorf("attached invariants: %w", err)
		}
		if err := mc.SwitchSync(ctx.C, core.ModeNative); err != nil {
			return ep, fmt.Errorf("clean detach: %w", err)
		}
		if err := mc.CheckInvariants(ctx.C); err != nil {
			return ep, fmt.Errorf("after clean cycle: %w", err)
		}
	}

	f := faults[ctx.Rand.Intn(len(faults))]
	ep.Fault, ep.Layer, ep.Detector = f.Name, f.Layer, f.Detector
	sp := obs.Begin(telCol(tel), ctx.C.ID, ctx.C.Now(), "chaos/episode")
	defer func() { sp.EndArg(ctx.C.Now(), uint64(i)) }()

	injectedAt := ctx.C.Now()
	act, err := f.Inject(ctx)
	if err != nil {
		return ep, fmt.Errorf("inject: %w", err)
	}
	ep.Injected = true
	rep.Injected++
	if tel != nil {
		tel.injected[f.Layer].Inc()
	}

	var derr error
	switch f.Detector {
	case DetectInvariant:
		derr = detectInvariant(ctx, &ep, act)
	case DetectSensor:
		derr = detectSensor(ctx, cfg, &ep, act)
	case DetectSwitch:
		derr = detectSwitch(ctx, &ep, act)
	case DetectTxn:
		derr = detectTxn(ctx, cfg, &ep, act)
	case DetectStore:
		derr = detectStore(ctx, cfg, &ep, act)
	case DetectIO:
		derr = detectIO(ctx, cfg, &ep, act)
	default:
		derr = fmt.Errorf("unknown detector %q", f.Detector)
	}
	if derr != nil {
		return ep, derr
	}

	// The episode's verdict: the whole system must verify clean.
	if err := mc.CheckInvariants(ctx.C); err != nil {
		return ep, fmt.Errorf("post-episode invariants: %w", err)
	}
	ep.MTTRCycles = ctx.C.Now() - injectedAt

	rep.MTTRTotalCycles += ep.MTTRCycles
	if ep.Detected {
		rep.Detected++
	} else {
		rep.Missed++
	}
	if ep.Healed {
		rep.Healed++
	}
	if ep.RolledBack {
		rep.RolledBack++
	}
	if ep.Starved {
		rep.Starved++
	}
	if ep.Escalated {
		rep.Escalated++
	}
	if tel != nil {
		if ep.Detected {
			tel.detected.Inc()
		} else {
			tel.missed.Inc()
		}
		if ep.Healed {
			tel.healed.Inc()
		}
		if ep.RolledBack {
			tel.rolled.Inc()
		}
		tel.mttrCyc.Observe(ep.MTTRCycles)
	}
	return ep, nil
}

func telCol(tel *chaosObs) *obs.Collector {
	if tel == nil {
		return nil
	}
	return tel.col
}

// detectInvariant expects the system-wide checker to report the fault,
// and a clean check once the fault is removed.
func detectInvariant(ctx *Ctx, ep *Episode, act *Active) error {
	verr := ctx.MC.CheckInvariants(ctx.C)
	if verr != nil {
		ep.Detected = true
		ep.Detail = verr.Error()
	}
	act.Undo()
	if err := ctx.MC.CheckInvariants(ctx.C); err != nil {
		return fmt.Errorf("undo left system dirty: %w", err)
	}
	ep.Healed = true
	return nil
}

// detectSensor expects a healing sensor to trip; the self-healing path
// (escalating to evacuation when a Standby is configured) repairs it.
func detectSensor(ctx *Ctx, cfg Config, ep *Episode, act *Active) error {
	mc := ctx.MC
	if act.Sensor == nil {
		return fmt.Errorf("sensor-detected fault provided no sensor")
	}
	sensors := []core.Sensor{*act.Sensor}
	if cfg.Standby != nil {
		er, err := mc.HealOrEvacuate(ctx.C, sensors, act.Repair,
			cfg.Standby.V, cfg.Standby.Caller, cfg.Standby.Cfg)
		if er != nil {
			ep.Detected = true
			ep.Escalated = er.Escalated
			if er.Heal != nil {
				ep.Healed = er.Heal.Healed
				ep.Detail = er.Heal.Anomaly
			}
			if er.Escalated && er.Evacuation != nil && er.Evacuation.NodeReleased {
				// The node healed itself out of existence: the fault is
				// contained even though the repair failed.
				ep.Healed = true
				ep.Detail += "; evacuated"
			}
		}
		if err != nil {
			return fmt.Errorf("heal-or-evacuate: %w", err)
		}
	} else {
		hr, err := mc.SelfHeal(ctx.C, sensors, act.Repair)
		if hr != nil {
			ep.Detected = true
			ep.Healed = hr.Healed
			ep.Detail = hr.Anomaly
		}
		if err != nil {
			return fmt.Errorf("self-heal: %w", err)
		}
	}
	act.Undo() // idempotent cleanup for whatever the repair left behind
	return nil
}

// detectSwitch expects the mode switch itself to reject the fault —
// validation rolls back, or the deferral budget reports starvation —
// and a retry to succeed once the fault is removed.
func detectSwitch(ctx *Ctx, ep *Episode, act *Active) error {
	mc := ctx.MC
	failedBefore := mc.Stats.FailedSwitches.Load()
	starvedBefore := mc.Stats.StarvedSwitches.Load()

	serr := mc.SwitchSync(ctx.C, core.ModePartialVirtual)
	if serr == nil {
		// The switch committed despite the fault: a detector gap.
		act.Undo()
		if err := mc.SwitchSync(ctx.C, core.ModeNative); err != nil {
			return fmt.Errorf("detaching after undetected fault: %w", err)
		}
		return nil
	}
	if mc.Mode() != core.ModeNative {
		return fmt.Errorf("failed switch left mode %v", mc.Mode())
	}
	ep.Detected = true
	ep.Detail = serr.Error()
	ep.RolledBack = mc.Stats.FailedSwitches.Load() > failedBefore
	ep.Starved = mc.Stats.StarvedSwitches.Load() > starvedBefore

	act.Undo()
	// With the fault removed the switch must commit — the §8 promise
	// that a failed switch is not fatal.
	if err := mc.SwitchSync(ctx.C, core.ModePartialVirtual); err != nil {
		return fmt.Errorf("retry after undo: %w", err)
	}
	if err := mc.SwitchSync(ctx.C, core.ModeNative); err != nil {
		return fmt.Errorf("detach after retry: %w", err)
	}
	ep.Healed = true
	return nil
}

// runWorkload forks a child that touches fresh memory, then reaps it —
// enough to churn address spaces, page refcounts, and the scheduler
// between faults.
func runWorkload(p *guest.Proc) {
	p.Fork("chaos-work", func(cp *guest.Proc) {
		base := cp.Mmap(4, guest.ProtRead|guest.ProtWrite, true)
		cp.Touch(base, 4, true)
	})
	p.Wait()
}

// FormatEpisodes renders the episode table for the CLI.
func FormatEpisodes(r *Report) string {
	var b strings.Builder
	for _, ep := range r.Episodes {
		flags := ""
		if ep.Workload {
			flags += "w"
		}
		if ep.PreSwitch {
			flags += "s"
		}
		verdict := "MISSED"
		switch {
		case ep.Starved:
			verdict = "starved"
		case ep.RolledBack:
			verdict = "rolled-back"
		case ep.Escalated:
			verdict = "escalated"
		case ep.Healed:
			verdict = "healed"
		case ep.Detected:
			verdict = "detected"
		}
		fmt.Fprintf(&b, "%3d  %-22s %-6s %-18s %-12s mttr=%dcyc %s\n",
			ep.Index, ep.Fault, ep.Layer, ep.Detector, verdict, ep.MTTRCycles, flags)
	}
	return b.String()
}
