package chaos

import (
	"testing"

	"repro/internal/core"
)

// Every migration fault class, injected alone, must be caught by the
// migration transaction: the episode detects, rolls back, and heals via
// the retry, leaving both nodes clean.
func TestMigrationFaultEpisodes(t *testing.T) {
	for _, f := range MigrationFaults() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			mc := newSystem(t, 1, core.TrackRecompute)
			sb := standbyNode(t, mc.M)
			rep, err := Run(mc, Config{
				Seed: 5, Episodes: 1, Faults: []*Fault{f}, Standby: sb,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Episodes) != 1 {
				t.Fatalf("ran %d episodes", len(rep.Episodes))
			}
			ep := rep.Episodes[0]
			if !ep.Injected || !ep.Detected || !ep.RolledBack || !ep.Healed {
				t.Fatalf("episode verdict: injected=%v detected=%v rolledback=%v healed=%v (%s)",
					ep.Injected, ep.Detected, ep.RolledBack, ep.Healed, ep.Detail)
			}
			if rep.Missed != 0 {
				t.Fatalf("%d missed", rep.Missed)
			}
			// The episode's victim was destroyed on the standby after the
			// healing retry: only dom0 remains there.
			if n := len(sb.V.Domains); n != 1 {
				t.Fatalf("standby holds %d domains after episode, want 1", n)
			}
			if err := sb.V.FT.CheckInvariants(); err != nil {
				t.Fatalf("standby frame table: %v", err)
			}
			if mc.Mode() != core.ModeNative {
				t.Fatalf("episode left source in mode %v", mc.Mode())
			}
			if mc.M.Mem.DirtyLogEnabled() {
				t.Fatal("dirty log left armed")
			}
		})
	}
}

// The migration fault classes ride along only when a standby node is
// wired in — the default catalog (and so every existing fixed-seed
// campaign) is unchanged.
func TestMigrationFaultsGatedOnStandby(t *testing.T) {
	mc := newSystem(t, 1, core.TrackRecompute)
	for _, f := range Catalog(mc) {
		if f.Detector == DetectTxn {
			t.Fatalf("catalog includes migration fault %q without a standby", f.Name)
		}
	}
}

// A mixed fixed-seed campaign with a standby: migration faults are in
// the rotation alongside the default catalog, nothing is missed, and
// the sequence is reproducible.
func TestMigrationCampaignFixedSeed(t *testing.T) {
	run := func() *Report {
		mc := newSystem(t, 1, core.TrackRecompute)
		sb := standbyNode(t, mc.M)
		cfg := DefaultConfig(7)
		cfg.Episodes = 12
		cfg.Standby = sb
		rep, err := Run(mc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run()
	if rep.Missed != 0 {
		t.Fatalf("campaign missed %d faults: %s", rep.Missed, rep.Summary())
	}
	txnEpisodes := 0
	for _, ep := range rep.Episodes {
		if ep.Detector == DetectTxn {
			txnEpisodes++
			if !ep.RolledBack || !ep.Healed {
				t.Fatalf("migration episode %d (%s) not rolled back and healed: %s",
					ep.Index, ep.Fault, ep.Detail)
			}
		}
	}
	if txnEpisodes == 0 {
		t.Fatal("seed 7 drew no migration episodes — pick another seed")
	}

	rep2 := run()
	if len(rep2.Episodes) != len(rep.Episodes) {
		t.Fatalf("reruns diverge: %d vs %d episodes", len(rep2.Episodes), len(rep.Episodes))
	}
	for i := range rep.Episodes {
		a, b := rep.Episodes[i], rep2.Episodes[i]
		if a.Fault != b.Fault || a.Detected != b.Detected ||
			a.Healed != b.Healed || a.MTTRCycles != b.MTTRCycles {
			t.Fatalf("episode %d diverges across reruns: %+v vs %+v", i, a, b)
		}
	}
}
