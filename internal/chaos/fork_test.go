package chaos

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fork"
	"repro/internal/hw"
)

// Every snapshot-cache fault class, injected alone, must be caught by
// the store's own defenses: the episode detects and heals, and the
// clone-transaction fault additionally rolls back.
func TestChaosForkFaultEpisodes(t *testing.T) {
	for _, f := range ForkFaults() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			mc := newSystem(t, 1, core.TrackRecompute)
			fe, err := NewForkEnv()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Run(mc, Config{
				Seed: 5, Episodes: 1, Faults: []*Fault{f}, Fork: fe,
			})
			if err != nil {
				t.Fatal(err)
			}
			ep := rep.Episodes[0]
			if !ep.Injected || !ep.Detected || !ep.Healed {
				t.Fatalf("episode verdict: injected=%v detected=%v healed=%v (%s)",
					ep.Injected, ep.Detected, ep.Healed, ep.Detail)
			}
			if f.Name == "fork-pin-fail" && !ep.RolledBack {
				t.Fatalf("pin failure did not roll the clone back: %s", ep.Detail)
			}
			if rep.Missed != 0 {
				t.Fatalf("%d missed", rep.Missed)
			}
			// The episode left the cache node pristine: balanced refs,
			// verified content, no CoW mappings, no leaked clones.
			if err := fork.AuditRefs(fe.CB.Store, fe.CB.Img); err != nil {
				t.Fatal(err)
			}
			if err := fe.CB.Store.Verify(); err != nil {
				t.Fatal(err)
			}
			if n := fe.V.M.Mem.SharedFrames(); n != 0 {
				t.Fatalf("%d CoW mappings left", n)
			}
		})
	}
}

// The fork fault classes ride along only when a fork environment is
// wired in — the default catalog is unchanged.
func TestChaosForkFaultsGatedOnEnv(t *testing.T) {
	mc := newSystem(t, 1, core.TrackRecompute)
	for _, f := range Catalog(mc) {
		if f.Detector == DetectStore {
			t.Fatalf("catalog includes fork fault %q without a fork env", f.Name)
		}
	}
}

// A mixed fixed-seed campaign with both a standby and a fork node: the
// store faults rotate with everything else, nothing is missed, and the
// episode sequence is reproducible.
func TestChaosForkCampaignFixedSeed(t *testing.T) {
	run := func() *Report {
		mc := newSystem(t, 1, core.TrackRecompute)
		fe, err := NewForkEnv()
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(11)
		cfg.Episodes = 12
		cfg.Fork = fe
		rep, err := Run(mc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run()
	if rep.Missed != 0 {
		t.Fatalf("campaign missed %d faults: %s", rep.Missed, rep.Summary())
	}
	storeEpisodes := 0
	for _, ep := range rep.Episodes {
		if ep.Detector == DetectStore {
			storeEpisodes++
			if !ep.Healed {
				t.Fatalf("store episode %d (%s) not healed: %s", ep.Index, ep.Fault, ep.Detail)
			}
		}
	}
	if storeEpisodes == 0 {
		t.Fatal("seed 11 drew no store episodes — pick another seed")
	}
	rep2 := run()
	if len(rep2.Episodes) != len(rep.Episodes) {
		t.Fatalf("reruns diverge: %d vs %d episodes", len(rep2.Episodes), len(rep.Episodes))
	}
	for i := range rep.Episodes {
		a, b := rep.Episodes[i], rep2.Episodes[i]
		if a.Fault != b.Fault || a.Detected != b.Detected || a.Healed != b.Healed {
			t.Fatalf("episode %d diverges across reruns: %+v vs %+v", i, a, b)
		}
	}
}

// TestChaosForkAbortPropertyReleasesRefs is the refcount-leak property
// test: across seeded random interleavings of injected hypercall
// failures, dirtying, delta checkpoints, destroys, and aborts, every
// path must leave the store's refcounts exactly balanced against the
// live owners.
func TestChaosForkAbortPropertyReleasesRefs(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		fe, err := NewForkEnv()
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		var clones []*fork.CloneState
		var overlays []*fork.Overlay
		audit := func(step string) {
			holders := []fork.RefHolder{fe.CB.Img}
			for _, cs := range clones {
				holders = append(holders, cs)
			}
			for _, o := range overlays {
				holders = append(holders, o)
			}
			if err := fork.AuditRefs(fe.CB.Store, holders...); err != nil {
				t.Fatalf("seed %d, after %s: %v", seed, step, err)
			}
		}
		for op := 0; op < 24; op++ {
			switch rng.Intn(4) {
			case 0: // clone, possibly under an injected failure
				switch rng.Intn(3) {
				case 1:
					fe.V.InjectPinFailures(1)
				case 2:
					fe.V.InjectUnpauseFailures(1)
				}
				cs, err := fork.Clone(fe.C, fe.V, fe.Caller, fe.CB, "prop")
				fe.V.InjectPinFailures(0)
				fe.V.InjectUnpauseFailures(0)
				if err == nil {
					clones = append(clones, cs)
				}
				audit("clone")
			case 1: // dirty a live clone (data frames only — pinned
				// table frames are read-only to the guest)
				if len(clones) > 0 {
					cs := clones[rng.Intn(len(clones))]
					off := hw.PFN(rng.Intn(forkOriginFrames - 24))
					fe.V.M.Mem.WriteWord((cs.Lo + off).Addr(), rng.Uint32())
					audit("dirty")
				}
			case 2: // delta-checkpoint a live clone
				if len(clones) > 0 {
					cs := clones[rng.Intn(len(clones))]
					o, err := fork.CheckpointDelta(fe.C, fe.V, fe.Caller, cs)
					if err != nil {
						t.Fatalf("seed %d: delta: %v", seed, err)
					}
					overlays = append(overlays, o)
					audit("delta")
				}
			case 3: // destroy a live clone
				if len(clones) > 0 {
					i := rng.Intn(len(clones))
					if err := fork.DestroyClone(fe.C, fe.V, fe.Caller, clones[i]); err != nil {
						t.Fatalf("seed %d: destroy: %v", seed, err)
					}
					clones = append(clones[:i], clones[i+1:]...)
					audit("destroy")
				}
			}
		}
		// Tear everything down: the store must drain to exactly zero.
		for _, cs := range clones {
			if err := fork.DestroyClone(fe.C, fe.V, fe.Caller, cs); err != nil {
				t.Fatalf("seed %d: final destroy: %v", seed, err)
			}
		}
		for _, o := range overlays {
			if err := o.Release(); err != nil {
				t.Fatalf("seed %d: overlay release: %v", seed, err)
			}
		}
		if err := fe.CB.Img.Release(); err != nil {
			t.Fatalf("seed %d: base release: %v", seed, err)
		}
		if n := fe.CB.Store.Refs(); n != 0 {
			t.Fatalf("seed %d: %d refs left after full teardown", seed, n)
		}
		if n := fe.CB.Store.Frames(); n != 0 {
			t.Fatalf("seed %d: %d frames left after full teardown", seed, n)
		}
	}
}
