package chaos

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/migrate"
	"repro/internal/xen"
)

// MigrationFaults returns the fault classes aimed at the §6.3 online-
// maintenance pipeline. They need a migration target, so Run only adds
// them to the default catalog when cfg.Standby is set. Each one is
// expected to be caught by the migration transaction (DetectTxn): the
// migration aborts, the rollback ladder restores both machines, and a
// retry commits once the fault is cleared.
func MigrationFaults() []*Fault {
	return []*Fault{
		{
			// The source pause hypercall fails at the stop-and-copy
			// boundary: the half-built destination must be torn down.
			Name: "migrate-pause-fail", Layer: LayerVMM, Detector: DetectTxn,
			Inject: func(ctx *Ctx) (*Active, error) {
				ctx.MC.VMM.InjectPauseFailures(1)
				return &Active{Undo: func() { ctx.MC.VMM.InjectPauseFailures(0) }}, nil
			},
		},
		{
			// The source destroy at the commit point fails: the fully
			// verified destination must still be rolled back (two live
			// copies are worse than a retried migration).
			Name: "migrate-destroy-fail", Layer: LayerVMM, Detector: DetectTxn,
			Inject: func(ctx *Ctx) (*Active, error) {
				ctx.MC.VMM.InjectDestroyFailures(1)
				return &Active{Undo: func() { ctx.MC.VMM.InjectDestroyFailures(0) }}, nil
			},
		},
		{
			// The migration link goes down after the first pre-copy
			// round: every later transfer, including stop-and-copy,
			// fails — the paused source must resume.
			Name: "migrate-link-stall", Layer: LayerHW, Detector: DetectTxn,
			Inject: func(ctx *Ctx) (*Active, error) {
				ctx.Migrate.StallLinkAfterRounds = 1
				return &Active{Undo: ctx.Migrate.Clear}, nil
			},
		},
		{
			// The transfer aborts partway through round 0: a partial
			// destination image must be scrubbed and discarded.
			Name: "migrate-midcopy-abort", Layer: LayerHW, Detector: DetectTxn,
			Inject: func(ctx *Ctx) (*Active, error) {
				ctx.Migrate.FailCopyAfterPages = 1 + ctx.Rand.Intn(32)
				return &Active{Undo: ctx.Migrate.Clear}, nil
			},
		},
	}
}

// NewStandby boots a migration destination on its own machine, wires
// its NIC to src's, and returns it ready to receive evacuated or
// migrated domains.
func NewStandby(src *hw.Machine) (*Standby, error) {
	m := hw.NewMachine(hw.Config{Name: "standby", MemBytes: 128 << 20, NumCPUs: 1})
	v, err := xen.Boot(m)
	if err != nil {
		return nil, fmt.Errorf("chaos: booting standby: %w", err)
	}
	c := m.BootCPU()
	v.Activate(c)
	dom0, err := v.CreateDomain("dom0", 2048, true)
	if err != nil {
		return nil, fmt.Errorf("chaos: standby dom0: %w", err)
	}
	v.SetCurrent(c, dom0)
	hw.Wire(src.NIC, m.NIC, hw.Gigabit())
	return &Standby{V: v, Caller: dom0, Cfg: migrate.DefaultLiveConfig()}, nil
}

// victimFrames is the migrating guest's partition size in detectTxn
// episodes — small enough that a campaign's worth of donations fits the
// driver domain's partition.
const victimFrames = 96

// detectTxn expects the migration transaction to reject the fault: a
// live migration of a scratch victim domain to the standby fails, every
// journaled side effect is rolled back (no leaked destination domain,
// source domain still present and running, dirty log disarmed), and the
// retry commits once the fault is removed.
func detectTxn(ctx *Ctx, cfg Config, ep *Episode, act *Active) error {
	mc := ctx.MC
	if cfg.Standby == nil {
		return fmt.Errorf("migration fault needs a standby destination")
	}
	wasNative := mc.Mode() == core.ModeNative
	if wasNative {
		if err := mc.SwitchSync(ctx.C, core.ModePartialVirtual); err != nil {
			return fmt.Errorf("attaching for migration: %w", err)
		}
	}
	victim, err := mc.VMM.HypDomctlCreateFromFrames(ctx.C, mc.Dom, "migrate-victim", victimFrames)
	if err != nil {
		return fmt.Errorf("creating victim: %w", err)
	}
	lo, _ := victim.Frames.Range()
	for i := 0; i < victimFrames/2; i++ {
		mc.M.Mem.WriteWord((lo + hw.PFN(i)).Addr(), 0xC0DE0000|uint32(i))
	}
	lcfg := cfg.Standby.Cfg
	lcfg.Inject = ctx.Migrate
	// The victim keeps dirtying a trickle of pages while pre-copy runs,
	// so round-indexed faults (the link stall) have traffic to hit.
	lcfg.Mutator = func(round int) {
		for i := 0; i < 8; i++ {
			pfn := lo + hw.PFN((round*5+i)%victimFrames)
			mc.M.Mem.WriteWord(pfn.Addr()+8, uint32(round*100+i))
		}
	}
	srcDoms := len(mc.VMM.Domains)
	dstDoms := len(cfg.Standby.V.Domains)

	moved, _, merr := migrate.Live(ctx.C, mc.VMM, mc.Dom, victim,
		cfg.Standby.V, cfg.Standby.Caller, lcfg)
	if merr != nil {
		ep.Detected = true
		ep.RolledBack = true
		ep.Detail = merr.Error()
		// The rollback contract: nothing leaked, nothing left paused.
		if _, ok := mc.VMM.Domains[victim.ID]; !ok {
			return fmt.Errorf("rollback lost the source domain")
		}
		if victim.State != xen.DomRunning {
			return fmt.Errorf("source domain left in state %v", victim.State)
		}
		if n := len(mc.VMM.Domains); n != srcDoms {
			return fmt.Errorf("source VMM has %d domains after rollback, want %d", n, srcDoms)
		}
		if n := len(cfg.Standby.V.Domains); n != dstDoms {
			return fmt.Errorf("destination VMM has %d domains after rollback, want %d — a leak", n, dstDoms)
		}
		if mc.M.Mem.DirtyLogEnabled() {
			return fmt.Errorf("dirty log left armed after rollback")
		}
		act.Undo()
		// With the fault removed the retry must commit — an aborted
		// maintenance window is postponed, not lost.
		moved, _, merr = migrate.Live(ctx.C, mc.VMM, mc.Dom, victim,
			cfg.Standby.V, cfg.Standby.Caller, lcfg)
		if merr != nil {
			return fmt.Errorf("retry after undo: %w", merr)
		}
	} else {
		// The migration committed despite the fault: a detector gap.
		// (Still clean up so the campaign can continue.)
		act.Undo()
	}
	if err := cfg.Standby.V.DestroyDomain(moved.ID); err != nil {
		return fmt.Errorf("releasing migrated domain on standby: %w", err)
	}
	if wasNative {
		if err := mc.SwitchSync(ctx.C, core.ModeNative); err != nil {
			return fmt.Errorf("detaching after migration episode: %w", err)
		}
	}
	if merr == nil && ep.Detected {
		ep.Healed = true
	}
	return nil
}
