package chaos

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/xen"
)

// IOEnv is the split-device datapath the I/O fault classes attack: its
// own machine with a driver domain running a multi-queue block backend
// and a client domain pushing requests at it. A probe pushes a burst
// through the rings and lets the datapath's own defenses deliver the
// verdict — the backend's progress audit (ring stall) and the ring's
// poll-side recovery accounting (lost doorbell).
type IOEnv struct {
	V      *xen.VMM
	Driver *xen.Domain
	Client *xen.Domain
	C      *hw.CPU
	BE     *xen.BlkMQBackend

	probes int
}

const (
	ioEnvQueues = 2
	ioEnvDepth  = 16
	ioEnvBurst  = 8
)

// NewIOEnv boots a split-device node: a driver domain serving a
// multi-queue block backend and a client domain granting I/O buffers.
func NewIOEnv() (*IOEnv, error) {
	m := hw.NewMachine(hw.Config{Name: "io-node", MemBytes: 128 << 20, NumCPUs: 1})
	v, err := xen.Boot(m)
	if err != nil {
		return nil, fmt.Errorf("chaos: booting io node: %w", err)
	}
	c := m.BootCPU()
	v.Activate(c)
	driver, err := v.CreateDomain("driver", 1024, true)
	if err != nil {
		return nil, fmt.Errorf("chaos: io node driver domain: %w", err)
	}
	client, err := v.CreateDomain("io-client", 256, false)
	if err != nil {
		return nil, fmt.Errorf("chaos: io node client domain: %w", err)
	}
	v.SetCurrent(c, driver)
	be := xen.NewBlkMQBackend(v, driver, m.Disk, ioEnvQueues, ioEnvDepth, 1)
	return &IOEnv{V: v, Driver: driver, Client: client, C: c, BE: be}, nil
}

// Probe pushes one burst per queue through the rings, pumps the backend
// the way a scheduler slice would, and judges the datapath by its own
// defenses. The returned anomaly is non-empty when a defense tripped; a
// non-nil error means the datapath broke an invariant it must uphold
// regardless of faults — a lost or duplicated request, or a wedge no
// recovery path cleared.
func (ie *IOEnv) Probe() (anomaly string, err error) {
	ie.probes++
	c, be := ie.C, ie.BE

	recovBefore := ie.ringRecovered()

	want := make(map[uint64]int)
	notifies := make([]bool, ioEnvQueues)
	for qi := 0; qi < ioEnvQueues; qi++ {
		q := be.Queues[qi]
		reqs := make([]xen.BlkRequest, 0, ioEnvBurst)
		for i := 0; i < ioEnvBurst; i++ {
			// Per-probe ID namespace so a stale response from an earlier
			// probe's stalled queue shows up as a duplicate, not a match.
			id := uint64(ie.probes)<<16 | uint64(qi)<<8 | uint64(i)
			pfn := ie.Client.Frames.Alloc()
			ref := ie.Client.GrantAccess(c, ie.Driver.ID, pfn, true)
			reqs = append(reqs, xen.BlkRequest{
				ID: id, Block: uint64(qi*4096) + uint64(i),
				Write: true, Grant: ref, Front: ie.Client.ID,
			})
			want[id] = 0
		}
		n, notify := q.Ring.PushRequests(c, reqs)
		if n != len(reqs) {
			return "", fmt.Errorf("chaos: io probe pushed %d of %d on queue %d", n, len(reqs), qi)
		}
		notifies[qi] = notify
	}
	// Arm the progress detector while the burst is queued, then give the
	// backend its doorbells plus the scheduler-slice backstop — even a
	// swallowed doorbell gets a service pass.
	_ = be.Audit()
	for qi, notify := range notifies {
		if notify {
			be.OnQueueEvent(qi)
		}
	}
	be.Serve(c, 1<<30)

	// The datapath's defenses deliver the verdict.
	if msg := be.Audit(); msg != "" {
		return msg, nil
	}
	if d := ie.ringRecovered() - recovBefore; d > 0 {
		return fmt.Sprintf("doorbell lost, %d recovered by poll", d), nil
	}

	// No defense tripped: the burst must have completed exactly once.
	resp := make([]xen.BlkResponse, ioEnvDepth)
	for qi := 0; qi < ioEnvQueues; qi++ {
		q := be.Queues[qi]
		for {
			n := q.Ring.TakeResponses(c, resp)
			if n == 0 {
				if !q.Ring.FinishResponseConsume(c, 1) {
					break
				}
				continue
			}
			for _, r := range resp[:n] {
				if r.Err != "" {
					return "", fmt.Errorf("chaos: io probe request %d failed: %s", r.ID, r.Err)
				}
				seen, ok := want[r.ID]
				if !ok || seen != 0 {
					return "", fmt.Errorf("chaos: io probe response %d duplicated or alien", r.ID)
				}
				want[r.ID] = 1
			}
		}
	}
	for id, seen := range want {
		if seen != 1 {
			return "", fmt.Errorf("chaos: io probe request %d lost", id)
		}
	}
	return "", nil
}

// settle drains everything still queued from a faulted probe (stalled
// queues un-stalled, dropped doorbells recovered) so the next probe
// starts clean.
func (ie *IOEnv) settle() error {
	be := ie.BE
	for i := 0; i < 100 && be.Pending() > 0; i++ {
		be.Serve(ie.C, 1<<30)
	}
	if be.Pending() > 0 {
		return fmt.Errorf("chaos: io env did not settle, %d pending", be.Pending())
	}
	resp := make([]xen.BlkResponse, ioEnvDepth)
	for _, q := range be.Queues {
		for q.Ring.TakeResponses(ie.C, resp) > 0 {
		}
		q.Ring.FinishResponseConsume(ie.C, 1)
	}
	return nil
}

func (ie *IOEnv) ringRecovered() uint64 {
	var n uint64
	for _, q := range ie.BE.Queues {
		n += q.Ring.Stats.RecoveredByPoll.Load()
	}
	return n
}

// IOFaults returns the fault classes aimed at the split-device
// datapath. They need an I/O environment, so Run only adds them when
// cfg.IO is set. Both are expected to be caught by the datapath's own
// defenses (DetectIO): the backend's progress audit and the ring's
// poll-recovery accounting.
func IOFaults() []*Fault {
	return []*Fault{
		{
			// A wedged backend queue: the consumer index stops advancing
			// while requests pile up. The progress audit must flag it.
			Name: "io-ring-stall", Layer: LayerVMM, Detector: DetectIO,
			Inject: func(ctx *Ctx) (*Active, error) {
				qi := ctx.Rand.Intn(ioEnvQueues)
				ctx.IO.BE.StallQueue(qi, true)
				return &Active{Undo: func() { ctx.IO.BE.StallQueue(qi, false) }}, nil
			},
		},
		{
			// A swallowed doorbell: the event channel loses a notify and
			// the burst sits queued until a poll-side drain recovers it.
			Name: "io-doorbell-lost", Layer: LayerHW, Detector: DetectIO,
			Inject: func(ctx *Ctx) (*Active, error) {
				qi := ctx.Rand.Intn(ioEnvQueues)
				q := ctx.IO.BE.Queues[qi]
				q.Ring.InjectDropNotify(1)
				return &Active{Undo: func() { q.Ring.InjectDropNotify(0) }}, nil
			},
		},
	}
}

// detectIO expects the datapath's own defenses to report the fault: a
// probe must surface an anomaly while the fault is active, and run
// completely clean once it is removed.
func detectIO(ctx *Ctx, cfg Config, ep *Episode, act *Active) error {
	ie := cfg.IO
	if ie == nil {
		return fmt.Errorf("io fault needs an io environment")
	}
	anomaly, err := ie.Probe()
	if err != nil {
		return err
	}
	if anomaly != "" {
		ep.Detected = true
		ep.Detail = anomaly
	}
	act.Undo()
	if err := ie.settle(); err != nil {
		return err
	}
	// With the fault removed a full burst must flow exactly-once.
	clean, err := ie.Probe()
	if err != nil {
		return fmt.Errorf("probe after undo: %w", err)
	}
	if clean != "" {
		return fmt.Errorf("fault survived undo: %s", clean)
	}
	if ep.Detected {
		ep.Healed = true
	}
	return nil
}
