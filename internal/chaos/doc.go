// Package chaos is Mercury's deterministic fault-injection framework:
// a registry of seeded fault injectors spanning the guest kernel, the
// pre-cached VMM, and the simulated hardware, plus a campaign runner
// (Run) that interleaves faults, workloads, and attach/detach cycles
// under a seeded rand and verifies core.(*Mercury).CheckInvariants
// after every step.
//
// Every fault declares how Mercury is supposed to notice it:
//
//   - DetectInvariant: the system-wide invariant checker reports it;
//     removing the fault restores a clean check.
//   - DetectSensor: a healing sensor (§6.2) trips; the self-healing
//     path (or its evacuation escalation) repairs it.
//   - DetectSwitch: the failure-resistant mode switch (§8) refuses to
//     commit — validation rejects the state and rolls back, or the
//     deferral budget reports starvation.
//
// The same seed always produces the same episode sequence: injectors
// draw every random choice (victim frames, sensors, interleaving) from
// the campaign's rand.Rand, and the simulation itself is cycle-
// deterministic on a uniprocessor.
//
// Optional environments gate extra fault classes into the rotation:
// a standby node (Config.Standby) adds the migration faults behind
// the txn-rollback detector, a fork store (Config.Fork) the
// corruption/ref-leak/pin faults behind store-audit, and a
// split-device node (Config.IO) the ring-stall and doorbell-lost
// faults behind the backend's progress audit (DetectIO).
package chaos
