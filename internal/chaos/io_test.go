package chaos

import (
	"testing"

	"repro/internal/core"
)

// Every split-device fault class, injected alone, must be caught by the
// datapath's own defenses: the stall by the backend's progress audit,
// the lost doorbell by the ring's poll-recovery accounting.
func TestChaosIOFaultEpisodes(t *testing.T) {
	for _, f := range IOFaults() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			mc := newSystem(t, 1, core.TrackRecompute)
			ie, err := NewIOEnv()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Run(mc, Config{
				Seed: 5, Episodes: 1, Faults: []*Fault{f}, IO: ie,
			})
			if err != nil {
				t.Fatal(err)
			}
			ep := rep.Episodes[0]
			if !ep.Injected || !ep.Detected || !ep.Healed {
				t.Fatalf("episode verdict: injected=%v detected=%v healed=%v (%s)",
					ep.Injected, ep.Detected, ep.Healed, ep.Detail)
			}
			if rep.Missed != 0 {
				t.Fatalf("%d missed", rep.Missed)
			}
			// The episode left the datapath pristine: nothing queued,
			// nothing stalled.
			if n := ie.BE.Pending(); n != 0 {
				t.Fatalf("%d requests left pending", n)
			}
			if msg := ie.BE.Audit(); msg != "" {
				t.Fatalf("post-episode audit: %s", msg)
			}
		})
	}
}

// The io fault classes ride along only when an io environment is wired
// in — the default catalog is unchanged.
func TestChaosIOFaultsGatedOnEnv(t *testing.T) {
	mc := newSystem(t, 1, core.TrackRecompute)
	for _, f := range Catalog(mc) {
		if f.Detector == DetectIO {
			t.Fatalf("catalog includes io fault %q without an io env", f.Name)
		}
	}
}

// A mixed fixed-seed campaign with an io node: the datapath faults
// rotate with everything else and nothing is missed.
func TestChaosIOCampaignFixedSeed(t *testing.T) {
	mc := newSystem(t, 1, core.TrackRecompute)
	ie, err := NewIOEnv()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(3)
	cfg.Episodes = 12
	cfg.IO = ie
	rep, err := Run(mc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Missed != 0 {
		t.Fatalf("campaign missed %d faults: %s", rep.Missed, rep.Summary())
	}
	ioEpisodes := 0
	for _, ep := range rep.Episodes {
		if ep.Detector == DetectIO {
			ioEpisodes++
			if !ep.Healed {
				t.Fatalf("io episode %d (%s) not healed: %s", ep.Index, ep.Fault, ep.Detail)
			}
		}
	}
	if ioEpisodes == 0 {
		t.Fatal("seed 3 drew no io episodes — pick another seed")
	}
}
