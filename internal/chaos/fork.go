package chaos

import (
	"fmt"
	"strings"

	"repro/internal/fork"
	"repro/internal/hw"
	"repro/internal/migrate"
	"repro/internal/xen"
)

// ForkEnv is the snapshot-cache node the store-detected faults attack:
// its own machine and VMM holding a warmed base image, from which every
// probe forks, dirties, delta-checkpoints, and destroys a clone. The
// probe's verdict comes from the store's own defenses — content
// verification (Store.Verify) and the refcount audit (fork.AuditRefs).
type ForkEnv struct {
	V      *xen.VMM
	Caller *xen.Domain
	C      *hw.CPU
	CB     *fork.CloneBase

	probes int
}

// forkOriginFrames is the template domain's partition size.
const forkOriginFrames = 64

// NewForkEnv boots a snapshot-cache node: a machine with a template
// domain whose checkpoint is ingested into a fresh content-addressed
// store as the base image clones fork from.
func NewForkEnv() (*ForkEnv, error) {
	m := hw.NewMachine(hw.Config{Name: "fork-cache", MemBytes: 128 << 20, NumCPUs: 1})
	v, err := xen.Boot(m)
	if err != nil {
		return nil, fmt.Errorf("chaos: booting fork node: %w", err)
	}
	c := m.BootCPU()
	v.Activate(c)
	dom0, err := v.CreateDomain("dom0", 1024, true)
	if err != nil {
		return nil, fmt.Errorf("chaos: fork node dom0: %w", err)
	}
	origin, err := v.CreateDomain("origin", forkOriginFrames, false)
	if err != nil {
		return nil, fmt.Errorf("chaos: fork node origin: %w", err)
	}
	v.SetCurrent(c, dom0)

	lo, _ := origin.Frames.Range()
	for i := 0; i < forkOriginFrames/2; i++ {
		m.Mem.WriteWord((lo + hw.PFN(i)).Addr(), 0xF0C0_0000|uint32(i))
	}
	root, pt := lo+60, lo+61
	hw.WritePTE(m.Mem, root, 3, hw.MakePTE(pt, hw.PTEPresent|hw.PTEWrite))
	hw.WritePTE(m.Mem, pt, 7, hw.MakePTE(lo+5, hw.PTEPresent|hw.PTEWrite|hw.PTEUser))
	origin.VCPU0().SetCR3(root)

	img, err := migrate.Checkpoint(c, v, dom0, origin)
	if err != nil {
		return nil, fmt.Errorf("chaos: checkpointing fork origin: %w", err)
	}
	img.PinnedRoots = []hw.PFN{root}
	store := fork.NewStore()
	base, err := fork.NewBase(store, img)
	if err != nil {
		return nil, fmt.Errorf("chaos: warming base image: %w", err)
	}
	return &ForkEnv{V: v, Caller: dom0, C: c, CB: &fork.CloneBase{Store: store, Img: base}}, nil
}

// Probe runs one full fork lifecycle — clone, dirty, delta checkpoint,
// destroy, release — and then lets the store judge itself: Verify
// re-hashes every frame and AuditRefs balances the refcounts against
// the base image. The returned anomaly is non-empty when a defense
// tripped (the fault was detected); a non-nil error means an invariant
// the fork machinery itself must uphold broke (a rollback leak, a
// failed teardown) — never acceptable, fault or no fault.
func (fe *ForkEnv) Probe() (anomaly string, err error) {
	fe.probes++
	domsBefore := len(fe.V.Domains)

	cs, cerr := fork.Clone(fe.C, fe.V, fe.Caller, fe.CB, fmt.Sprintf("probe-%d", fe.probes))
	if cerr != nil {
		// The clone aborted: its transaction must have unwound cleanly —
		// no leaked domain, no stray CoW mappings, balanced refcounts.
		if n := len(fe.V.Domains); n != domsBefore {
			return "", fmt.Errorf("chaos: aborted clone left %d domains, want %d", n, domsBefore)
		}
		if n := fe.V.M.Mem.SharedFrames(); n != 0 {
			return "", fmt.Errorf("chaos: aborted clone left %d CoW mappings", n)
		}
		if aerr := fork.AuditRefs(fe.CB.Store, fe.CB.Img); aerr != nil {
			return "", fmt.Errorf("chaos: aborted clone leaked store refs: %w", aerr)
		}
		return "clone aborted, rollback clean: " + cerr.Error(), nil
	}
	// Dirty a few frames so the delta has content.
	for i := 0; i < 3; i++ {
		fe.V.M.Mem.WriteWord((cs.Lo + hw.PFN(10+i)).Addr(), 0xD117_0000|uint32(fe.probes<<4|i))
	}
	o, derr := fork.CheckpointDelta(fe.C, fe.V, fe.Caller, cs)
	if derr != nil {
		_ = fork.DestroyClone(fe.C, fe.V, fe.Caller, cs)
		return "", fmt.Errorf("chaos: delta checkpoint: %w", derr)
	}
	if err := fork.DestroyClone(fe.C, fe.V, fe.Caller, cs); err != nil {
		return "", fmt.Errorf("chaos: destroying probe clone: %w", err)
	}
	if err := o.Release(); err != nil {
		return "", fmt.Errorf("chaos: releasing probe overlay: %w", err)
	}
	if n := fe.V.M.Mem.SharedFrames(); n != 0 {
		return "", fmt.Errorf("chaos: probe left %d CoW mappings", n)
	}
	// The store's own defenses deliver the verdict.
	if verr := fe.CB.Store.Verify(); verr != nil {
		return verr.Error(), nil
	}
	if aerr := fork.AuditRefs(fe.CB.Store, fe.CB.Img); aerr != nil {
		return aerr.Error(), nil
	}
	return "", nil
}

// ForkFaults returns the fault classes aimed at the snapshot cache.
// They need a fork environment, so Run only adds them to the default
// catalog when cfg.Fork is set. Each is expected to be caught by the
// store's defenses (DetectStore): content verification, the refcount
// audit, or the clone transaction's rollback.
func ForkFaults() []*Fault {
	return []*Fault{
		{
			// A flipped byte inside a stored frame: every clone mapping
			// that content reads the corruption. Verify must catch it.
			Name: "fork-store-corruption", Layer: LayerHW, Detector: DetectStore,
			Inject: func(ctx *Ctx) (*Active, error) {
				undo, err := ctx.Fork.CB.Store.CorruptFramePick(ctx.Rand.Intn)
				if err != nil {
					return nil, err
				}
				return &Active{Undo: undo}, nil
			},
		},
		{
			// An unowned extra reference on a stored frame (the classic
			// leak: a teardown path that forgets a Release would look
			// identical). The refcount audit must catch the imbalance.
			Name: "fork-store-refleak", Layer: LayerVMM, Detector: DetectStore,
			Inject: func(ctx *Ctx) (*Active, error) {
				undo, err := ctx.Fork.CB.Store.LeakRefPick(ctx.Rand.Intn)
				if err != nil {
					return nil, err
				}
				return &Active{Undo: undo}, nil
			},
		},
		{
			// A transiently failing pin hypercall mid-clone: the fork
			// transaction must abort, releasing every mapped frame's
			// reference, and the retry must commit.
			Name: "fork-pin-fail", Layer: LayerVMM, Detector: DetectStore,
			Inject: func(ctx *Ctx) (*Active, error) {
				ctx.Fork.V.InjectPinFailures(1)
				return &Active{Undo: func() { ctx.Fork.V.InjectPinFailures(0) }}, nil
			},
		},
	}
}

// detectStore expects the snapshot cache's own defenses to report the
// fault: a probe (clone → dirty → delta → destroy → audit/verify) must
// surface an anomaly while the fault is active, and run completely
// clean once it is removed.
func detectStore(ctx *Ctx, cfg Config, ep *Episode, act *Active) error {
	fe := cfg.Fork
	if fe == nil {
		return fmt.Errorf("store fault needs a fork environment")
	}
	anomaly, err := fe.Probe()
	if err != nil {
		return err
	}
	if anomaly != "" {
		ep.Detected = true
		ep.Detail = anomaly
		if strings.HasPrefix(anomaly, "clone aborted") {
			ep.RolledBack = true
		}
	}
	act.Undo()
	// With the fault removed the full lifecycle must run clean — and for
	// the rollback case, the retry must commit.
	clean, err := fe.Probe()
	if err != nil {
		return fmt.Errorf("probe after undo: %w", err)
	}
	if clean != "" {
		return fmt.Errorf("fault survived undo: %s", clean)
	}
	if ep.Detected {
		ep.Healed = true
	}
	return nil
}
