package chaos

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/migrate"
	"repro/internal/obs"
	"repro/internal/xen"
)

// newCollector installs a telemetry collector on mc's machine.
func newCollector(mc *core.Mercury) *obs.Collector {
	col := obs.New(len(mc.M.CPUs))
	mc.M.SetTelemetry(col)
	return col
}

func layerLabel(l Layer) obs.Label { return obs.L("layer", string(l)) }

// newSystem builds a Mercury system with a small deferral budget (so
// starvation faults resolve in a handful of simulated ticks).
func newSystem(t *testing.T, ncpu int, policy core.TrackingPolicy) *core.Mercury {
	t.Helper()
	m := hw.NewMachine(hw.Config{MemBytes: 64 << 20, NumCPUs: ncpu})
	mc, err := core.New(core.Config{Machine: m, Policy: policy, MaxDeferrals: 2})
	if err != nil {
		t.Fatal(err)
	}
	return mc
}

// standbyNode builds a healthy evacuation target.
func standbyNode(t *testing.T, src *hw.Machine) *Standby {
	t.Helper()
	m := hw.NewMachine(hw.Config{MemBytes: 128 << 20, NumCPUs: 1})
	v, err := xen.Boot(m)
	if err != nil {
		t.Fatal(err)
	}
	c := m.BootCPU()
	v.Activate(c)
	dom0, err := v.CreateDomain("dom0", 2048, true)
	if err != nil {
		t.Fatal(err)
	}
	v.SetCurrent(c, dom0)
	hw.Wire(src.NIC, m.NIC, hw.Gigabit())
	return &Standby{V: v, Caller: dom0, Cfg: migrate.DefaultLiveConfig()}
}

// TestChaosCatalogStructure: the registry spans all three layers with
// at least eight distinct classes, and the attach-validation faults are
// gated on the recompute policy.
func TestChaosCatalogStructure(t *testing.T) {
	mc := newSystem(t, 1, core.TrackRecompute)
	faults := Catalog(mc)
	if len(faults) < 8 {
		t.Fatalf("catalog has %d fault classes, want >= 8", len(faults))
	}
	layers := map[Layer]int{}
	names := map[string]bool{}
	for _, f := range faults {
		layers[f.Layer]++
		if names[f.Name] {
			t.Fatalf("duplicate fault %q", f.Name)
		}
		names[f.Name] = true
		if f.Detector != DetectInvariant && f.Detector != DetectSensor && f.Detector != DetectSwitch {
			t.Fatalf("fault %q has unknown detector %q", f.Name, f.Detector)
		}
	}
	for _, l := range []Layer{LayerGuest, LayerVMM, LayerHW} {
		if layers[l] == 0 {
			t.Fatalf("no faults in layer %q", l)
		}
	}

	active := newSystem(t, 1, core.TrackActive)
	for _, f := range Catalog(active) {
		if f.Name == "pagetable-corruption" || f.Name == "hypercall-transient" {
			t.Fatalf("attach-validation fault %q present under active tracking", f.Name)
		}
	}
}

// TestChaosEveryFaultDetectedAndHealed: each fault class, injected
// alone, is caught by its declared detector and the system verifies
// clean afterwards.
func TestChaosEveryFaultDetectedAndHealed(t *testing.T) {
	proto := newSystem(t, 1, core.TrackRecompute)
	for _, f := range Catalog(proto) {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			mc := newSystem(t, 1, core.TrackRecompute)
			rep, err := Run(mc, Config{Seed: 7, Episodes: 1, Faults: []*Fault{f}})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Episodes) != 1 {
				t.Fatalf("episodes: %+v", rep.Episodes)
			}
			ep := rep.Episodes[0]
			if !ep.Injected || !ep.Detected || !ep.Healed {
				t.Fatalf("episode: %+v", ep)
			}
			if f.Detector == DetectSwitch && !ep.RolledBack && !ep.Starved {
				t.Fatalf("switch fault neither rolled back nor starved: %+v", ep)
			}
			if rep.Missed != 0 {
				t.Fatalf("missed: %+v", rep)
			}
			if mc.Mode() != core.ModeNative {
				t.Fatalf("mode = %v after campaign", mc.Mode())
			}
		})
	}
}

// TestChaosJournalCorruptionCaught: under the journal policy the
// catalog gains a fault that flips a bit in a recorded dirty-ring entry;
// the re-attach replay must refuse to apply the divergent delta, roll
// the switch back, and commit cleanly once the entry is restored.
func TestChaosJournalCorruptionCaught(t *testing.T) {
	mc := newSystem(t, 1, core.TrackJournal)
	var jf *Fault
	for _, f := range Catalog(mc) {
		if f.Name == "journal-corruption" {
			jf = f
		}
		if f.Name == "pagetable-corruption" || f.Name == "hypercall-transient" {
			t.Fatalf("recompute-only fault %q present under journal policy", f.Name)
		}
	}
	if jf == nil {
		t.Fatal("journal policy catalog lacks journal-corruption")
	}
	if jf.Detector != DetectSwitch {
		t.Fatalf("journal-corruption detector %q, want switch validation", jf.Detector)
	}

	rep, err := Run(mc, Config{Seed: 13, Episodes: 3, Faults: []*Fault{jf}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injected != 3 || rep.Detected != 3 || rep.Healed != 3 || rep.Missed != 0 {
		t.Fatalf("report: %s", rep.Summary())
	}
	for _, ep := range rep.Episodes {
		if !ep.RolledBack {
			t.Fatalf("corrupted replay committed without rollback: %+v", ep)
		}
	}
	if err := mc.CheckInvariants(mc.M.BootCPU()); err != nil {
		t.Fatalf("final invariants: %v", err)
	}
}

// TestChaosJournalCampaign: the full mixed-fault campaign holds under
// the journal policy, on both UP and the SMP rendezvous path.
func TestChaosJournalCampaign(t *testing.T) {
	for _, ncpu := range []int{1, 2} {
		t.Run(fmt.Sprintf("ncpu=%d", ncpu), func(t *testing.T) {
			mc := newSystem(t, ncpu, core.TrackJournal)
			cfg := DefaultConfig(17)
			cfg.Episodes = 12
			rep, err := Run(mc, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Injected != cfg.Episodes || rep.Missed != 0 {
				t.Fatalf("report: %s", rep.Summary())
			}
			if mc.Mode() != core.ModeNative {
				t.Fatalf("mode = %v after campaign", mc.Mode())
			}
			if err := mc.CheckInvariants(mc.M.BootCPU()); err != nil {
				t.Fatalf("final invariants: %v", err)
			}
		})
	}
}

// TestChaosCampaignReproducible: the acceptance property — two runs
// with the same seed produce identical episode sequences and reports,
// while covering at least eight distinct fault classes across the
// guest/VMM/hardware layers with invariants holding after every
// episode (Run fails otherwise).
func TestChaosCampaignReproducible(t *testing.T) {
	cfg := DefaultConfig(42)
	cfg.Episodes = 40

	run := func() *Report {
		mc := newSystem(t, 1, core.TrackRecompute)
		rep, err := Run(mc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	r1 := run()
	r2 := run()

	if !reflect.DeepEqual(r1.Episodes, r2.Episodes) {
		for i := range r1.Episodes {
			if !reflect.DeepEqual(r1.Episodes[i], r2.Episodes[i]) {
				t.Fatalf("episode %d diverged:\n  %+v\n  %+v", i, r1.Episodes[i], r2.Episodes[i])
			}
		}
		t.Fatalf("episode sequences diverged")
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("reports diverged:\n  %+v\n  %+v", r1, r2)
	}

	if r1.Injected != cfg.Episodes || r1.Missed != 0 {
		t.Fatalf("report: %s", r1.Summary())
	}
	if r1.Detected != r1.Injected {
		t.Fatalf("detector gap: %s", r1.Summary())
	}
	if got := r1.FaultClasses(); got < 8 {
		t.Fatalf("campaign exercised %d fault classes, want >= 8", got)
	}
	layers := map[Layer]bool{}
	for _, ep := range r1.Episodes {
		layers[ep.Layer] = true
	}
	if len(layers) != 3 {
		t.Fatalf("campaign covered layers %v", layers)
	}
}

// TestChaosCampaignSMPRendezvous: a campaign on a 2-CPU machine drives
// every switch through the §5.4 rendezvous path.
func TestChaosCampaignSMPRendezvous(t *testing.T) {
	mc := newSystem(t, 2, core.TrackRecompute)
	cfg := DefaultConfig(5)
	cfg.Episodes = 10
	rep, err := Run(mc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injected != cfg.Episodes || rep.Missed != 0 {
		t.Fatalf("report: %s", rep.Summary())
	}
	if mc.Stats.Attaches.Load() == 0 {
		t.Fatal("campaign never attached — rendezvous path unexercised")
	}
	c := mc.M.BootCPU()
	if err := mc.CheckInvariants(c); err != nil {
		t.Fatalf("final invariants: %v", err)
	}
}

// TestChaosCampaignEscalatesMidCampaign: a fault whose repair fails
// escalates into evacuation to the standby node, and the campaign
// continues clean.
func TestChaosCampaignEscalatesMidCampaign(t *testing.T) {
	mc := newSystem(t, 1, core.TrackRecompute)
	unrepairable := &Fault{
		Name: "runqueue-unrepairable", Layer: LayerGuest, Detector: DetectSensor,
		Inject: func(ctx *Ctx) (*Active, error) {
			ctx.MC.K.InjectRunqueueCorruption()
			s := core.RunqueueSensor()
			return &Active{
				Undo:   func() { ctx.MC.K.RepairRunqueue(ctx.C) },
				Sensor: &s,
				Repair: func(*hw.CPU, *core.Mercury) error {
					return fmt.Errorf("repair tool broken")
				},
			}, nil
		},
	}
	cfg := Config{Seed: 11, Episodes: 2, Faults: []*Fault{unrepairable},
		Standby: standbyNode(t, mc.M)}
	rep, err := Run(mc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Escalated != 2 || rep.Detected != 2 {
		t.Fatalf("report: %s", rep.Summary())
	}
	for _, ep := range rep.Episodes {
		if !ep.Escalated || !ep.Detected {
			t.Fatalf("episode: %+v", ep)
		}
	}
	if mc.Mode() != core.ModeNative {
		t.Fatalf("mode = %v after evacuations", mc.Mode())
	}
}

// TestChaosReportTelemetry: campaign counters and the MTTR histogram
// land in the obs registry.
func TestChaosReportTelemetry(t *testing.T) {
	mc := newSystem(t, 1, core.TrackRecompute)
	col := newCollector(mc)
	cfg := DefaultConfig(3)
	cfg.Episodes = 6
	rep, err := Run(mc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(0)
	for _, l := range []Layer{LayerGuest, LayerVMM, LayerHW} {
		total += col.Registry.Counter("chaos", "faults_injected_total", layerLabel(l)).Load()
	}
	if total != uint64(rep.Injected) {
		t.Fatalf("injected counter %d, report %d", total, rep.Injected)
	}
	if got := col.Registry.Counter("chaos", "faults_detected_total").Load(); got != uint64(rep.Detected) {
		t.Fatalf("detected counter %d, report %d", got, rep.Detected)
	}
	h := col.Registry.Histogram("chaos", "mttr_cycles")
	if h.Count() != uint64(len(rep.Episodes)) {
		t.Fatalf("mttr histogram count %d, episodes %d", h.Count(), len(rep.Episodes))
	}
}
