package chaos

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/hw"
	"repro/internal/migrate"
	"repro/internal/xen"
)

// Layer is the architectural layer a fault lives in.
type Layer string

// Fault layers.
const (
	LayerGuest Layer = "guest"
	LayerVMM   Layer = "vmm"
	LayerHW    Layer = "hw"
)

// Detector is the mechanism expected to catch a fault.
type Detector string

// Detectors.
const (
	DetectInvariant Detector = "invariant"
	DetectSensor    Detector = "sensor"
	DetectSwitch    Detector = "switch-validation"
	// DetectTxn: the migration transaction (§6.3) rejects the fault —
	// the live migration aborts, every journaled side effect rolls
	// back, and a retry commits once the fault is removed.
	DetectTxn Detector = "txn-rollback"
	// DetectStore: the snapshot cache's own defenses catch the fault —
	// content verification, the refcount audit, or the fork
	// transaction's rollback (internal/fork).
	DetectStore Detector = "store-audit"
	// DetectIO: the split-device datapath's own defenses catch the
	// fault — the backend's ring-progress audit or the ring's poll-side
	// doorbell recovery accounting (internal/xen's multi-queue rings).
	DetectIO Detector = "io-audit"
)

// Ctx is the environment an injector runs in: the system under test,
// the driver process (whose address space guest faults target), the
// CPU it runs on, the campaign's seeded random source, and the armed
// migration fault injection (hardware-layer copy/link faults).
type Ctx struct {
	MC      *core.Mercury
	P       *guest.Proc
	C       *hw.CPU
	Rand    *rand.Rand
	Migrate *migrate.FaultInjection
	// Fork is the snapshot-cache node store faults attack (nil unless
	// the campaign configured one).
	Fork *ForkEnv
	// IO is the split-device datapath node the I/O faults attack (nil
	// unless the campaign configured one).
	IO *IOEnv
}

// Active is one injected fault: how to remove it, and — for sensor-
// detected faults — the sensor expected to trip and the repair the
// healing path should apply.
type Active struct {
	Undo   func()
	Sensor *core.Sensor
	Repair core.Repair
}

// Fault is one registered fault class.
type Fault struct {
	Name     string
	Layer    Layer
	Detector Detector
	Inject   func(ctx *Ctx) (*Active, error)
}

// holder is the fault-injection hold on a virtualization object's
// refcount (vo.Hold/Unhold, present on the Mercury objects).
type holder interface {
	Hold()
	Unhold()
}

// Catalog returns the registered fault classes for mc, in a fixed
// order. Faults that only make sense under the recompute tracking
// policy (attach-time validation) are omitted under active tracking.
func Catalog(mc *core.Mercury) []*Fault {
	faults := []*Fault{
		{
			// A writable mapping of a live page-table page: the state
			// attach-time frame validation must reject (§5.1.2, §8).
			Name: "pagetable-corruption", Layer: LayerGuest, Detector: DetectSwitch,
			Inject: func(ctx *Ctx) (*Active, error) {
				undo, err := ctx.P.AS.CorruptPageTableMappingPick(ctx.Rand.Intn)
				if err != nil {
					return nil, err
				}
				return &Active{Undo: undo}, nil
			},
		},
		{
			// A dead process on the run queue: the §6.2 healing example.
			Name: "runqueue-corruption", Layer: LayerGuest, Detector: DetectSensor,
			Inject: func(ctx *Ctx) (*Active, error) {
				ctx.MC.K.InjectRunqueueCorruption()
				s := core.RunqueueSensor()
				return &Active{
					Undo:   func() { ctx.MC.K.RepairRunqueue(ctx.C) },
					Sensor: &s,
					Repair: core.RunqueueRepair(),
				}, nil
			},
		},
		{
			// Cached selectors at a privilege level no mode uses: what
			// the §5.1.2 fixup stub exists to prevent.
			Name: "stale-selector", Layer: LayerGuest, Detector: DetectInvariant,
			Inject: func(ctx *Ctx) (*Active, error) {
				undo, err := ctx.MC.K.InjectStaleSelector()
				if err != nil {
					return nil, err
				}
				return &Active{Undo: undo}, nil
			},
		},
		{
			// A clobbered trap gate: the kernel would silently lose its
			// NIC interrupts.
			Name: "idt-gate-clobber", Layer: LayerGuest, Detector: DetectInvariant,
			Inject: func(ctx *Ctx) (*Active, error) {
				k := ctx.MC.K
				saved := k.IDT.Get(hw.VecNIC)
				k.IDT.Set(hw.VecNIC, hw.Gate{})
				return &Active{Undo: func() { k.IDT.Set(hw.VecNIC, saved) }}, nil
			},
		},
		{
			// A lost timer: every LAPIC timer disarmed, so the OS would
			// never tick again.
			Name: "timer-loss", Layer: LayerGuest, Detector: DetectInvariant,
			Inject: func(ctx *Ctx) (*Active, error) {
				for _, cpu := range ctx.MC.M.CPUs {
					cpu.LAPIC.DisarmTimer()
				}
				return &Active{Undo: func() { ctx.MC.K.RearmTick(ctx.C) }}, nil
			},
		},
		{
			// A sensitive section that never drains (a wedged driver):
			// the switch defers until the retry budget reports
			// starvation instead of retrying forever.
			Name: "vo-stuck-op", Layer: LayerGuest, Detector: DetectSwitch,
			Inject: func(ctx *Ctx) (*Active, error) {
				h, ok := ctx.MC.K.VO().(holder)
				if !ok {
					return nil, fmt.Errorf("chaos: VO %q has no refcount to hold", ctx.MC.K.VO().Name())
				}
				h.Hold()
				return &Active{Undo: h.Unhold}, nil
			},
		},
		{
			// A transiently failing pin hypercall mid-attach: the
			// failure-resistant switch must roll back (§8).
			Name: "hypercall-transient", Layer: LayerVMM, Detector: DetectSwitch,
			Inject: func(ctx *Ctx) (*Active, error) {
				ctx.MC.VMM.InjectPinFailures(1)
				return &Active{Undo: func() { ctx.MC.VMM.InjectPinFailures(0) }}, nil
			},
		},
		{
			// A bit-flip in the frame accounting array: a seeded victim
			// frame's entry violates the type-system invariants.
			Name: "frametable-bitflip", Layer: LayerVMM, Detector: DetectInvariant,
			Inject: func(ctx *Ctx) (*Active, error) {
				ft := ctx.MC.VMM.FT
				pfn := hw.PFN(1 + ctx.Rand.Intn(ft.NumFrames()-1))
				saved := ft.Get(pfn)
				bad := saved
				bad.Pinned = true
				bad.TypeCount = 0
				ft.Set(pfn, bad)
				return &Active{Undo: func() { ft.Set(pfn, saved) }}, nil
			},
		},
		{
			// The standing domain flips out of DomRunning: the engine's
			// domain bookkeeping is out of sync.
			Name: "domain-state", Layer: LayerVMM, Detector: DetectInvariant,
			Inject: func(ctx *Ctx) (*Active, error) {
				d := ctx.MC.Dom
				saved := d.State
				d.State = xen.DomPaused
				return &Active{Undo: func() { d.State = saved }}, nil
			},
		},
		{
			// A hardware monitor reads outside the healthy envelope:
			// the §6.5 failure predictor must notice.
			Name: "sensor-spike", Layer: LayerHW, Detector: DetectSensor,
			Inject: func(ctx *Ctx) (*Active, error) {
				bank := ctx.MC.M.Sensors
				spikes := []struct {
					name string
					bad  float64
				}{
					{hw.SensorCPUTempC, 96},
					{hw.SensorFanRPM, 2200},
				}
				pick := spikes[ctx.Rand.Intn(len(spikes))]
				saved := bank.Read(pick.name)
				bank.Set(pick.name, pick.bad)
				restore := func() { bank.Set(pick.name, saved) }
				return &Active{
					Undo: restore,
					Sensor: &core.Sensor{
						Name: "failure-predictor",
						Check: func(*guest.Kernel) error {
							return core.DefaultPredictor().Predict(bank)
						},
					},
					Repair: func(*hw.CPU, *core.Mercury) error {
						restore() // the "repair" is operator intervention on cooling
						return nil
					},
				}, nil
			},
		},
		{
			// A LAPIC silently drops the next posted vector: interrupt
			// delivery is no longer reliable.
			Name: "dropped-ipi", Layer: LayerHW, Detector: DetectInvariant,
			Inject: func(ctx *Ctx) (*Active, error) {
				tgt := ctx.MC.M.CPUs[ctx.Rand.Intn(len(ctx.MC.M.CPUs))]
				tgt.LAPIC.ArmDropNext()
				tgt.LAPIC.Post(hw.VecReschedIPI)
				return &Active{Undo: func() {
					for _, cpu := range ctx.MC.M.CPUs {
						cpu.LAPIC.ClearDropped()
					}
				}}, nil
			},
		},
	}
	if mc.Policy != core.TrackRecompute {
		// Attach-time validation faults need the recompute policy: under
		// active tracking the accounting never goes stale, and under the
		// journal policy a direct-memory corruption bypasses the VO write
		// path the ring records, while pin failures only surface on the
		// nondeterministic fallback path.
		kept := faults[:0]
		for _, f := range faults {
			if f.Name == "pagetable-corruption" || f.Name == "hypercall-transient" {
				continue
			}
			kept = append(kept, f)
		}
		faults = kept
	}
	if mc.Policy == core.TrackJournal {
		faults = append(faults, &Fault{
			// A corrupted dirty-journal record: the re-attach replay's
			// per-slot memory verification must mismatch and roll the
			// switch back; with the record restored the retry commits.
			Name: "journal-corruption", Layer: LayerVMM, Detector: DetectSwitch,
			Inject: func(ctx *Ctx) (*Active, error) {
				j := ctx.MC.VMM.Journal()
				if j == nil {
					return nil, fmt.Errorf("chaos: journal policy selected but no journal installed")
				}
				// A clean attach/detach cycle arms a fresh epoch (clearing
				// any structural degradation the interleaved workloads
				// caused), then populated mappings put replayable entries
				// in the ring for the corruption to hit.
				if err := ctx.MC.SwitchSync(ctx.C, core.ModePartialVirtual); err != nil {
					return nil, fmt.Errorf("chaos: arming journal: %w", err)
				}
				if err := ctx.MC.SwitchSync(ctx.C, core.ModeNative); err != nil {
					return nil, fmt.Errorf("chaos: arming journal: %w", err)
				}
				base := ctx.P.Mmap(4, guest.ProtRead|guest.ProtWrite, true)
				ctx.P.Touch(base, 4, true)
				undo, err := j.CorruptEntryPick(ctx.Rand.Intn)
				if err != nil {
					return nil, err
				}
				return &Active{Undo: undo}, nil
			},
		})
	}
	return faults
}
