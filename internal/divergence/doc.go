// Package divergence is the observatory that keeps the simulation
// honest about its virtualization tax. It runs one seeded workload
// three times — on native Linux (N-L), on Mercury in native mode (M-N),
// and on Mercury in virtual mode (M-V) — with probes threaded through
// internal/hw, internal/guest, internal/vo and internal/xen, and emits
// a transparency report: for every probe, the native count, the virtual
// count, the delta, and the percentage tax.
//
// The probes split into two classes with different comparison
// semantics. Logical counts (syscalls, forks, page faults, PTE writes,
// MMU updates, fault bounces, journal activity) are deterministic given
// the workload seed and must match a committed baseline exactly — any
// drift means the model changed behaviour, not just speed. Time-derived
// counts (cycles, timer interrupts, context switches, TLB flushes,
// hypercalls that scale with ticks) are compared within a tolerance.
//
// A second set of probes decomposes the mode switch itself: the harness
// drives M-N across an attach/detach cycle under both the recompute and
// journal tracking policies, and records the per-phase cycle breakdown,
// TLB-flush activity, and dirty-frame journal statistics.
//
// The headline number is the native tax: the M-N workload slowdown over
// N-L. The paper's claim is that Mercury's native mode costs on the
// order of 2–3% (§7.2); the committed baseline carries a budget
// (NativeTaxBudgetPct) and Compare fails when a change pushes the
// measured tax past it, so the claim is CI-enforced rather than
// aspirational.
package divergence
