package divergence

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/obs"
)

// Config shapes one observatory run.
type Config struct {
	// Seed feeds the workload generator (default 1).
	Seed int64
	// Ops is the workload length (default 300 operations).
	Ops int
	// MemBytes sizes each system's memory (default bench's 128 MiB).
	MemBytes uint64
}

func (c *Config) fill() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Ops == 0 {
		c.Ops = 300
	}
}

// probe is everything the observatory reads off one system after its
// workload run.
type probe struct {
	elapsed uint64

	// Kernel-level logical counts.
	syscalls, forks, ctxSwitches, pageFaults, ticks uint64

	// Hardware-level counts, summed over CPUs.
	interrupts, cr3Writes, tlbFlushes, tlbMisses uint64

	// Virtualization-object traffic (summed across object instances).
	voCalls, voPTEWrites uint64

	// VMM interactions (zero on N-L, where no VMM exists).
	hypercalls, mmuUpdates, faultBounces uint64
	multicalls, multicallOps             uint64

	// Interrupt-delivery latency tail (cycles from LAPIC post / timer
	// deadline to guest handler entry).
	irqP50, irqP99 float64
}

// capture reads every probe off a finished system.
func capture(s *bench.System, col *obs.Collector, elapsed uint64) probe {
	p := probe{elapsed: elapsed}
	ks := &s.K.Stats
	p.syscalls = ks.Syscalls.Load()
	p.forks = ks.Forks.Load()
	p.ctxSwitches = ks.CtxSwitches.Load()
	p.pageFaults = ks.PageFaults.Load()
	p.ticks = ks.Ticks.Load()
	for _, c := range s.M.CPUs {
		p.interrupts += c.Stats.Interrupts
		p.cr3Writes += c.Stats.CR3Writes
		p.tlbFlushes += c.TLB.Flushes
		p.tlbMisses += c.TLB.Misses
	}
	col.Registry.Each(func(m *obs.Metric) {
		if m.Subsystem != "vo" || m.Kind != obs.KindCounter {
			return
		}
		switch m.Name {
		case "calls_total":
			p.voCalls += col.Registry.Counter(m.Subsystem, m.Name, m.Labels...).Load()
		case "pte_writes_total":
			p.voPTEWrites += col.Registry.Counter(m.Subsystem, m.Name, m.Labels...).Load()
		}
	})
	if s.Dom != nil {
		p.hypercalls = s.Dom.Stats.Hypercalls.Load()
		p.mmuUpdates = s.Dom.Stats.MMUUpdates.Load()
		p.faultBounces = s.Dom.Stats.FaultBounces.Load()
		p.multicalls = s.Dom.Stats.Multicalls.Load()
		p.multicallOps = s.Dom.Stats.MulticallOps.Load()
	}
	irq := col.Registry.Histogram("hw", "irq_delivery_cycles")
	p.irqP50 = irq.Quantile(0.50)
	p.irqP99 = irq.Quantile(0.99)
	return p
}

// runSystem builds one configuration with its own collector, runs the
// workload, and captures the probes.
func runSystem(key bench.SystemKey, cfg Config) (probe, error) {
	col := obs.New(1)
	sys, err := bench.Build(key, bench.Options{
		MemBytes:  cfg.MemBytes,
		Collector: col,
		Policy:    core.TrackRecompute,
		// Batching on: the observatory proves the lazy-MMU multicall
		// path stays logically transparent (exact counts still match).
		LazyMMU: true,
	})
	if err != nil {
		return probe{}, fmt.Errorf("divergence: building %s: %w", key, err)
	}
	w := Workload{Seed: cfg.Seed, Ops: cfg.Ops}
	elapsed := sys.Run("divergence", w.Body())
	return capture(sys, col, uint64(elapsed)), nil
}

// Run executes the full observatory: the three workload runs, the row
// synthesis, and the mode-switch probes for both tracking policies.
func Run(cfg Config) (*Report, error) {
	cfg.fill()

	nl, err := runSystem(bench.NL, cfg)
	if err != nil {
		return nil, err
	}
	mn, err := runSystem(bench.MN, cfg)
	if err != nil {
		return nil, err
	}
	mv, err := runSystem(bench.MV, cfg)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Schema:       ReportSchema,
		Seed:         cfg.Seed,
		Ops:          cfg.Ops,
		TolerancePct: DefaultTolerancePct,
	}
	rep.Rows = buildRows(nl, mn, mv)
	rep.NativeTaxPct = taxPct(nl.elapsed, mn.elapsed)
	rep.VirtualTaxPct = taxPct(nl.elapsed, mv.elapsed)

	for _, pol := range []core.TrackingPolicy{core.TrackRecompute, core.TrackJournal} {
		sp, err := switchProbe(pol, cfg)
		if err != nil {
			return nil, err
		}
		rep.Switches = append(rep.Switches, sp)
	}
	return rep, nil
}

// buildRows synthesizes the transparency table from the three probes.
// Exact rows are logical counts the seed fully determines; the rest are
// time-derived and only comparable within a tolerance.
func buildRows(nl, mn, mv probe) []Row {
	row := func(metric string, exact bool, a, b, c uint64) Row {
		return Row{
			Metric: metric, Exact: exact,
			NL: a, MN: b, MV: c,
			MNTaxPct: taxPct(a, b), MVTaxPct: taxPct(a, c),
		}
	}
	return []Row{
		row("workload_cycles", false, nl.elapsed, mn.elapsed, mv.elapsed),
		row("kernel/syscalls", true, nl.syscalls, mn.syscalls, mv.syscalls),
		row("kernel/forks", true, nl.forks, mn.forks, mv.forks),
		row("kernel/page_faults", true, nl.pageFaults, mn.pageFaults, mv.pageFaults),
		row("kernel/ctx_switches", false, nl.ctxSwitches, mn.ctxSwitches, mv.ctxSwitches),
		row("kernel/timer_ticks", false, nl.ticks, mn.ticks, mv.ticks),
		row("hw/interrupts", false, nl.interrupts, mn.interrupts, mv.interrupts),
		row("hw/cr3_writes", false, nl.cr3Writes, mn.cr3Writes, mv.cr3Writes),
		row("hw/tlb_flushes", false, nl.tlbFlushes, mn.tlbFlushes, mv.tlbFlushes),
		row("hw/tlb_misses", false, nl.tlbMisses, mn.tlbMisses, mv.tlbMisses),
		row("vo/calls", false, nl.voCalls, mn.voCalls, mv.voCalls),
		row("vo/pte_writes", true, nl.voPTEWrites, mn.voPTEWrites, mv.voPTEWrites),
		row("xen/hypercalls", false, nl.hypercalls, mn.hypercalls, mv.hypercalls),
		row("xen/mmu_updates", true, nl.mmuUpdates, mn.mmuUpdates, mv.mmuUpdates),
		row("xen/fault_bounces", true, nl.faultBounces, mn.faultBounces, mv.faultBounces),
		row("xen/multicalls", true, nl.multicalls, mn.multicalls, mv.multicalls),
		row("xen/multicall_ops", true, nl.multicallOps, mn.multicallOps, mv.multicallOps),
		row("hw/irq_p50_cycles", false,
			uint64(nl.irqP50), uint64(mn.irqP50), uint64(mv.irqP50)),
		row("hw/irq_p99_cycles", false,
			uint64(nl.irqP99), uint64(mn.irqP99), uint64(mv.irqP99)),
	}
}

// switchProbe decomposes one attach/detach round trip under a tracking
// policy: run half the workload native, switch to partial-virtual, run
// the other half, switch back, and read the switch spans, TLB activity,
// and journal statistics off the trace.
func switchProbe(pol core.TrackingPolicy, cfg Config) (SwitchProbe, error) {
	col := obs.New(1)
	sys, err := bench.Build(bench.MN, bench.Options{
		MemBytes:  cfg.MemBytes,
		Collector: col,
		Policy:    pol,
		LazyMMU:   true,
	})
	if err != nil {
		return SwitchProbe{}, fmt.Errorf("divergence: building M-N (%s): %w", pol, err)
	}
	boot := sys.M.BootCPU()
	mc := sys.Mercury
	half := cfg.Ops / 2

	sys.Run("div-pre", Workload{Seed: cfg.Seed, Ops: half}.Body())
	flushes0 := boot.TLB.Flushes
	// Round trip 1: a cold attach (full validation) and the detach that
	// arms the dirty-frame journal.
	if err := mc.SwitchSync(boot, core.ModePartialVirtual); err != nil {
		return SwitchProbe{}, fmt.Errorf("divergence: attach (%s): %w", pol, err)
	}
	sys.Run("div-virtual", Workload{Seed: cfg.Seed + 1, Ops: cfg.Ops - half}.Body())
	if err := mc.SwitchSync(boot, core.ModeNative); err != nil {
		return SwitchProbe{}, fmt.Errorf("divergence: detach (%s): %w", pol, err)
	}
	// Round trip 2 re-attaches over a quiet detach window, so the
	// journal policy takes its replay fast path while recompute pays
	// full price again — the cost asymmetry the probe exists to show.
	if err := mc.SwitchSync(boot, core.ModePartialVirtual); err != nil {
		return SwitchProbe{}, fmt.Errorf("divergence: re-attach (%s): %w", pol, err)
	}
	if err := mc.SwitchSync(boot, core.ModeNative); err != nil {
		return SwitchProbe{}, fmt.Errorf("divergence: re-detach (%s): %w", pol, err)
	}
	sys.Run("div-post", Workload{Seed: cfg.Seed + 2, Ops: half}.Body())

	sp := SwitchProbe{
		Policy:     pol.String(),
		TLBFlushes: boot.TLB.Flushes - flushes0,
	}
	spans := col.Tracer.Spans()
	var n int
	sp.AttachPhases, sp.AttachCyc, n = phases(spans, "switch/attach")
	sp.Attaches = n
	sp.DetachPhases, sp.DetachCyc, n = phases(spans, "switch/detach")
	sp.Detaches = n
	if j := mc.VMM.Journal(); j != nil {
		js := j.StatsSnapshot()
		sp.Journal = &JournalSummary{
			Appends:     js.Appends,
			Replays:     js.Replays,
			ReplaySlots: js.ReplaySlots,
			Fallbacks:   js.Fallbacks,
			Overflows:   js.Overflows,
		}
	}
	return sp, nil
}

// phases adapts bench.PhaseBreakdown to the report's phase rows.
func phases(spans []obs.Span, root string) ([]SwitchPhase, uint64, int) {
	ps, total, n := bench.PhaseBreakdown(spans, root)
	out := make([]SwitchPhase, 0, len(ps))
	for _, p := range ps {
		out = append(out, SwitchPhase{Name: p.Name, Cyc: p.TotalCyc})
	}
	return out, total, n
}

// taxPct is the percentage slowdown (or inflation) of b over a.
func taxPct(a, b uint64) float64 {
	if a == 0 {
		return 0
	}
	return (float64(b) - float64(a)) / float64(a) * 100
}
