package divergence

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func run(t *testing.T, cfg Config) *Report {
	t.Helper()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestDeterministicExactRows: two runs with the same seed must agree on
// every exact probe bit-for-bit — that is the property that lets CI
// diff a committed baseline at all.
func TestDeterministicExactRows(t *testing.T) {
	cfg := Config{Seed: 11, Ops: 100}
	a, b := run(t, cfg), run(t, cfg)
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row count %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		if ra.Metric != rb.Metric {
			t.Fatalf("row %d: metric %q vs %q", i, ra.Metric, rb.Metric)
		}
		if !ra.Exact {
			continue
		}
		if ra.NL != rb.NL || ra.MN != rb.MN || ra.MV != rb.MV {
			t.Errorf("exact row %s not reproducible: %+v vs %+v", ra.Metric, ra, rb)
		}
	}
	for i := range a.Switches {
		sa, sb := a.Switches[i], b.Switches[i]
		if sa.Attaches != sb.Attaches || sa.Detaches != sb.Detaches {
			t.Errorf("switch %s: counts differ across runs", sa.Policy)
		}
		if (sa.Journal == nil) != (sb.Journal == nil) {
			t.Fatalf("switch %s: journal presence differs", sa.Policy)
		}
		if sa.Journal != nil && *sa.Journal != *sb.Journal {
			t.Errorf("switch %s: journal %+v vs %+v", sa.Policy, *sa.Journal, *sb.Journal)
		}
	}
}

// TestNativeTaxWithinPaperClaim: the whole point of the observatory —
// Mercury's native mode must track native Linux to a few percent.
func TestNativeTaxWithinPaperClaim(t *testing.T) {
	rep := run(t, Config{Seed: 11, Ops: 100})
	if rep.NativeTaxPct > 3.0 {
		t.Errorf("native tax %.2f%% exceeds the paper's ~2-3%% claim", rep.NativeTaxPct)
	}
	if rep.NativeTaxPct < -3.0 {
		t.Errorf("native tax %.2f%% is implausibly negative", rep.NativeTaxPct)
	}
	// Virtual mode must actually cost something, or the probes are not
	// measuring anything.
	if rep.VirtualTaxPct <= rep.NativeTaxPct {
		t.Errorf("virtual tax %.2f%% <= native tax %.2f%%",
			rep.VirtualTaxPct, rep.NativeTaxPct)
	}
}

// TestCompareSelf: a report diffed against itself is clean, including
// with a budget set at the measured value.
func TestCompareSelf(t *testing.T) {
	rep := run(t, Config{Seed: 11, Ops: 100})
	base := *rep
	base.NativeTaxBudgetPct = rep.NativeTaxPct + 0.5
	if v := Compare(&base, rep); len(v) != 0 {
		t.Fatalf("self-compare not clean: %v", v)
	}
}

// TestCompareDetectsPerturbations: exact-count drift, removed rows,
// cycle drift beyond tolerance, journal changes, and a blown tax budget
// must each produce a violation.
func TestCompareDetectsPerturbations(t *testing.T) {
	rep := run(t, Config{Seed: 11, Ops: 100})
	base := *rep
	base.NativeTaxBudgetPct = rep.NativeTaxPct + 0.5

	perturb := func(mut func(r *Report)) []string {
		cp := *rep
		cp.Rows = append([]Row(nil), rep.Rows...)
		cp.Switches = append([]SwitchProbe(nil), rep.Switches...)
		mut(&cp)
		return Compare(&base, &cp)
	}

	if v := perturb(func(r *Report) { r.Rows[1].MN++ }); len(v) == 0 {
		t.Error("exact-count drift not detected")
	}
	if v := perturb(func(r *Report) { r.Rows = r.Rows[1:] }); len(v) == 0 {
		t.Error("removed row not detected")
	}
	if v := perturb(func(r *Report) { r.Rows[0].MV *= 2 }); len(v) == 0 {
		t.Error("cycle drift beyond tolerance not detected")
	}
	if v := perturb(func(r *Report) { r.NativeTaxPct = base.NativeTaxBudgetPct + 1 }); len(v) == 0 {
		t.Error("blown native-tax budget not detected")
	}
	if v := perturb(func(r *Report) {
		for i := range r.Switches {
			if r.Switches[i].Journal != nil {
				j := *r.Switches[i].Journal
				j.Replays++
				r.Switches[i].Journal = &j
			}
		}
	}); len(v) == 0 {
		t.Error("journal activity change not detected")
	}
}

// TestCompareRejectsWorkloadMismatch: different seed or length is a
// category error, not a drift.
func TestCompareRejectsWorkloadMismatch(t *testing.T) {
	a := &Report{Schema: ReportSchema, Seed: 1, Ops: 100}
	b := &Report{Schema: ReportSchema, Seed: 2, Ops: 100}
	if v := Compare(a, b); len(v) != 1 || !strings.Contains(v[0], "workload mismatch") {
		t.Fatalf("want a single workload-mismatch violation, got %v", v)
	}
}

// TestBaselineRoundTrip: WriteJSON → LoadReport is lossless enough for
// Compare, and LoadReport rejects foreign schemas.
func TestBaselineRoundTrip(t *testing.T) {
	rep := run(t, Config{Seed: 11, Ops: 100})
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	back.NativeTaxBudgetPct = rep.NativeTaxPct + 0.5
	if v := Compare(back, rep); len(v) != 0 {
		t.Fatalf("round-tripped baseline not clean: %v", v)
	}

	bad := bytes.Replace(buf.Bytes(),
		[]byte(fmt.Sprintf(`"schema": %d`, ReportSchema)), []byte(`"schema": 99`), 1)
	if _, err := LoadReport(bad); err == nil {
		t.Fatal("foreign schema accepted")
	}
}

// TestRenderers: the markdown table carries every row and the switch
// decomposition; the text renderer mentions both policies.
func TestRenderers(t *testing.T) {
	rep := run(t, Config{Seed: 11, Ops: 100})
	var md bytes.Buffer
	rep.WriteMarkdown(&md)
	s := md.String()
	if !strings.Contains(s, "| metric | N-L | M-N | M-V |") {
		t.Error("markdown missing transparency table header")
	}
	for _, row := range rep.Rows {
		if !strings.Contains(s, "| "+row.Metric+" |") {
			t.Errorf("markdown missing row %s", row.Metric)
		}
	}
	if !strings.Contains(s, "recompute") || !strings.Contains(s, "journal") {
		t.Error("markdown missing switch probes")
	}

	var txt bytes.Buffer
	rep.WriteText(&txt)
	if !strings.Contains(txt.String(), "switch[recompute]") ||
		!strings.Contains(txt.String(), "switch[journal]") {
		t.Error("text renderer missing switch probes")
	}
}
