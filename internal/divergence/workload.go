package divergence

import (
	"fmt"
	"math/rand"

	"repro/internal/guest"
	"repro/internal/hw"
)

// Workload is the seeded operation mix the observatory replays on every
// configuration. Identical seeds produce identical operation sequences,
// so every logical kernel event (syscall, fork, page fault, PTE write)
// happens the same number of times regardless of which system runs it —
// that is what makes the exact-probe comparison meaningful.
type Workload struct {
	Seed int64
	Ops  int
}

// workload op classes, weighted toward the memory and file operations
// whose costs diverge most between native and virtual mode.
const (
	opFile = iota // creat/write/read/close on a fresh file
	opMmap        // mmap/touch/munmap an anonymous region
	opFork        // fork a child that faults a small working set
	opWork        // pure user-mode computation
	opOps         // number of op classes
)

// Body returns the workload as a spawnable process body.
func (w Workload) Body() guest.Body {
	seed, ops := w.Seed, w.Ops
	return func(p *guest.Proc) {
		p.Syscall(func(c *hw.CPU) {
			if _, err := p.K.FS.Mkdir(c, "/div"); err != nil {
				panic(fmt.Sprintf("divergence: mkdir /div: %v", err))
			}
		})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < ops; i++ {
			switch rng.Intn(opOps) {
			case opFile:
				path := fmt.Sprintf("/div/f%d", i)
				fd, err := p.Creat(path)
				if err != nil {
					panic(fmt.Sprintf("divergence: creat %s: %v", path, err))
				}
				kb := 1 + rng.Intn(8)
				p.Write(fd, kb<<10)
				p.Seek(fd, 0)
				p.Read(fd, kb<<10)
				p.Close(fd)
				if err := p.Unlink(path); err != nil {
					panic(fmt.Sprintf("divergence: unlink %s: %v", path, err))
				}
			case opMmap:
				pages := 1 + rng.Intn(8)
				base := p.Mmap(pages, guest.ProtRead|guest.ProtWrite, false)
				p.Touch(base, pages, true) // demand-fault every page
				p.Touch(base, pages, false)
				p.Munmap(base)
			case opFork:
				pages := 1 + rng.Intn(4)
				p.Fork("div-child", func(cp *guest.Proc) {
					base := cp.Mmap(pages, guest.ProtRead|guest.ProtWrite, false)
					cp.Touch(base, pages, true)
					cp.Work(2_000)
					cp.Munmap(base)
					cp.Exit(0)
				})
				p.Wait()
			case opWork:
				p.Work(hw.Cycles(1_000 + rng.Intn(4_000)))
			}
		}
		p.Exit(0)
	}
}
