package divergence

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// ReportSchema versions the baseline format; Compare refuses to diff
// across schema changes. v2: lazy-MMU batching on, multicall rows added.
const ReportSchema = 2

// DefaultTolerancePct bounds the drift Compare accepts on time-derived
// (non-exact) probes.
const DefaultTolerancePct = 10.0

// Row is one transparency-table line: a probe's value on each measured
// configuration, with the Mercury columns expressed as a percentage tax
// over native Linux.
type Row struct {
	Metric string `json:"metric"`
	// Exact marks seed-determined logical counts that must match a
	// baseline bit-for-bit; non-exact rows compare within tolerance.
	Exact    bool    `json:"exact"`
	NL       uint64  `json:"nl"`
	MN       uint64  `json:"mn"`
	MV       uint64  `json:"mv"`
	MNTaxPct float64 `json:"mn_tax_pct"`
	MVTaxPct float64 `json:"mv_tax_pct"`
}

// SwitchPhase is one phase of the mode-switch decomposition.
type SwitchPhase struct {
	Name string `json:"name"`
	Cyc  uint64 `json:"cyc"`
}

// JournalSummary is the dirty-frame journal's activity during a switch
// probe. All fields are exact: journal behaviour is seed-determined.
type JournalSummary struct {
	Appends     uint64 `json:"appends"`
	Replays     uint64 `json:"replays"`
	ReplaySlots uint64 `json:"replay_slots"`
	Fallbacks   uint64 `json:"fallbacks"`
	Overflows   uint64 `json:"overflows"`
}

// SwitchProbe decomposes one attach/detach round trip under one
// tracking policy.
type SwitchProbe struct {
	Policy string `json:"policy"`

	Attaches  int    `json:"attaches"`
	Detaches  int    `json:"detaches"`
	AttachCyc uint64 `json:"attach_cyc"`
	DetachCyc uint64 `json:"detach_cyc"`

	AttachPhases []SwitchPhase `json:"attach_phases"`
	DetachPhases []SwitchPhase `json:"detach_phases"`

	// TLBFlushes covers the whole switched window (attach + virtual
	// half + detach) on the boot CPU.
	TLBFlushes uint64 `json:"tlb_flushes"`

	// Journal is non-nil under the journal tracking policy.
	Journal *JournalSummary `json:"journal,omitempty"`
}

// Report is the observatory's output — and, committed as
// BENCH_divergence.json, the baseline CI diffs against.
type Report struct {
	Schema int   `json:"schema"`
	Seed   int64 `json:"seed"`
	Ops    int   `json:"ops"`

	Rows     []Row         `json:"rows"`
	Switches []SwitchProbe `json:"switches"`

	// NativeTaxPct is the headline: M-N workload slowdown over N-L.
	// VirtualTaxPct is the same for M-V.
	NativeTaxPct  float64 `json:"native_tax_pct"`
	VirtualTaxPct float64 `json:"virtual_tax_pct"`

	// NativeTaxBudgetPct is the committed ceiling on NativeTaxPct —
	// the paper's ~2–3% native-mode claim, CI-enforced. Zero means no
	// budget (a freshly generated report); the committed baseline
	// carries the real value.
	NativeTaxBudgetPct float64 `json:"native_tax_budget_pct"`

	// TolerancePct bounds non-exact drift in Compare.
	TolerancePct float64 `json:"tolerance_pct"`
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// LoadReport parses a baseline.
func LoadReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("divergence: parsing baseline: %w", err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("divergence: baseline schema %d, want %d (regenerate it)",
			r.Schema, ReportSchema)
	}
	return &r, nil
}

// withinPct reports whether b is within pct percent of a.
func withinPct(a, b uint64, pct float64) bool {
	if a == b {
		return true
	}
	base := float64(a)
	if base == 0 {
		base = 1
	}
	return math.Abs(float64(b)-float64(a))/base*100 <= pct
}

// Compare diffs a fresh report against the committed baseline and
// returns human-readable violations (empty = clean). Exact rows must
// match bit-for-bit; non-exact rows and switch cycle costs drift within
// the baseline's tolerance; and the measured native tax must stay under
// the baseline's budget.
func Compare(base, cur *Report) []string {
	var v []string
	if base.Seed != cur.Seed || base.Ops != cur.Ops {
		v = append(v, fmt.Sprintf(
			"workload mismatch: baseline seed=%d ops=%d, current seed=%d ops=%d",
			base.Seed, base.Ops, cur.Seed, cur.Ops))
		return v
	}
	tol := base.TolerancePct
	if tol <= 0 {
		tol = DefaultTolerancePct
	}

	baseRows := make(map[string]Row, len(base.Rows))
	for _, r := range base.Rows {
		baseRows[r.Metric] = r
	}
	for _, cr := range cur.Rows {
		br, ok := baseRows[cr.Metric]
		if !ok {
			v = append(v, fmt.Sprintf("row %s: not in baseline (regenerate it)", cr.Metric))
			continue
		}
		delete(baseRows, cr.Metric)
		cols := []struct {
			name   string
			bb, cc uint64
		}{{"N-L", br.NL, cr.NL}, {"M-N", br.MN, cr.MN}, {"M-V", br.MV, cr.MV}}
		for _, c := range cols {
			if cr.Exact {
				if c.bb != c.cc {
					v = append(v, fmt.Sprintf("row %s %s: exact count %d != baseline %d",
						cr.Metric, c.name, c.cc, c.bb))
				}
			} else if !withinPct(c.bb, c.cc, tol) {
				v = append(v, fmt.Sprintf("row %s %s: %d drifted >%.0f%% from baseline %d",
					cr.Metric, c.name, c.cc, tol, c.bb))
			}
		}
	}
	for metric := range baseRows {
		v = append(v, fmt.Sprintf("row %s: in baseline but not in current report", metric))
	}

	baseSw := make(map[string]SwitchProbe, len(base.Switches))
	for _, s := range base.Switches {
		baseSw[s.Policy] = s
	}
	for _, cs := range cur.Switches {
		bs, ok := baseSw[cs.Policy]
		if !ok {
			v = append(v, fmt.Sprintf("switch probe %s: not in baseline", cs.Policy))
			continue
		}
		if cs.Attaches != bs.Attaches || cs.Detaches != bs.Detaches {
			v = append(v, fmt.Sprintf(
				"switch probe %s: %d attaches / %d detaches, baseline %d / %d",
				cs.Policy, cs.Attaches, cs.Detaches, bs.Attaches, bs.Detaches))
		}
		if !withinPct(bs.AttachCyc, cs.AttachCyc, tol) {
			v = append(v, fmt.Sprintf("switch probe %s: attach %d cyc drifted >%.0f%% from %d",
				cs.Policy, cs.AttachCyc, tol, bs.AttachCyc))
		}
		if !withinPct(bs.DetachCyc, cs.DetachCyc, tol) {
			v = append(v, fmt.Sprintf("switch probe %s: detach %d cyc drifted >%.0f%% from %d",
				cs.Policy, cs.DetachCyc, tol, bs.DetachCyc))
		}
		if (cs.Journal == nil) != (bs.Journal == nil) {
			v = append(v, fmt.Sprintf("switch probe %s: journal presence changed", cs.Policy))
		} else if cs.Journal != nil {
			if *cs.Journal != *bs.Journal {
				v = append(v, fmt.Sprintf("switch probe %s: journal activity %+v != baseline %+v",
					cs.Policy, *cs.Journal, *bs.Journal))
			}
		}
	}

	if base.NativeTaxBudgetPct > 0 && cur.NativeTaxPct > base.NativeTaxBudgetPct {
		v = append(v, fmt.Sprintf(
			"native tax %.2f%% exceeds the committed budget %.2f%% (paper claims ~2-3%%)",
			cur.NativeTaxPct, base.NativeTaxBudgetPct))
	}
	return v
}

// WriteMarkdown renders the transparency table and switch decomposition
// for EXPERIMENTS.md.
func (r *Report) WriteMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### Divergence audit (seed %d, %d ops)\n\n", r.Seed, r.Ops)
	fmt.Fprintf(w, "Native tax (M-N over N-L): **%.2f%%**", r.NativeTaxPct)
	if r.NativeTaxBudgetPct > 0 {
		fmt.Fprintf(w, " (budget %.2f%%)", r.NativeTaxBudgetPct)
	}
	fmt.Fprintf(w, " — virtual tax (M-V over N-L): **%.2f%%**\n\n", r.VirtualTaxPct)

	fmt.Fprintf(w, "| metric | N-L | M-N | M-V | M-N tax %% | M-V tax %% | exact |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|---:|---:|:---:|\n")
	for _, row := range r.Rows {
		exact := ""
		if row.Exact {
			exact = "✓"
		}
		fmt.Fprintf(w, "| %s | %d | %d | %d | %+.2f | %+.2f | %s |\n",
			row.Metric, row.NL, row.MN, row.MV, row.MNTaxPct, row.MVTaxPct, exact)
	}
	fmt.Fprintln(w)

	for _, s := range r.Switches {
		fmt.Fprintf(w, "**Mode switch (%s policy):** attach %d cyc, detach %d cyc, %d TLB flushes in the switched window\n\n",
			s.Policy, s.AttachCyc, s.DetachCyc, s.TLBFlushes)
		fmt.Fprintf(w, "| phase | cycles |\n|---|---:|\n")
		for _, p := range s.AttachPhases {
			fmt.Fprintf(w, "| attach/%s | %d |\n", p.Name, p.Cyc)
		}
		for _, p := range s.DetachPhases {
			fmt.Fprintf(w, "| detach/%s | %d |\n", p.Name, p.Cyc)
		}
		if s.Journal != nil {
			fmt.Fprintf(w, "\nJournal: %d appends, %d replays (%d slots), %d fallbacks, %d overflows\n",
				s.Journal.Appends, s.Journal.Replays, s.Journal.ReplaySlots,
				s.Journal.Fallbacks, s.Journal.Overflows)
		}
		fmt.Fprintln(w)
	}
}

// WriteText renders a terse fixed-width summary for terminal output.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "divergence: seed %d, %d ops\n", r.Seed, r.Ops)
	fmt.Fprintf(w, "native tax %.2f%%  virtual tax %.2f%%", r.NativeTaxPct, r.VirtualTaxPct)
	if r.NativeTaxBudgetPct > 0 {
		fmt.Fprintf(w, "  (budget %.2f%%)", r.NativeTaxBudgetPct)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-22s %12s %12s %12s %9s %9s %s\n",
		"metric", "N-L", "M-N", "M-V", "M-N tax", "M-V tax", "exact")
	for _, row := range r.Rows {
		exact := ""
		if row.Exact {
			exact = "exact"
		}
		fmt.Fprintf(w, "%-22s %12d %12d %12d %8.2f%% %8.2f%% %s\n",
			row.Metric, row.NL, row.MN, row.MV, row.MNTaxPct, row.MVTaxPct, exact)
	}
	for _, s := range r.Switches {
		fmt.Fprintf(w, "switch[%s]: attach %d cyc detach %d cyc tlb-flushes %d",
			s.Policy, s.AttachCyc, s.DetachCyc, s.TLBFlushes)
		if s.Journal != nil {
			fmt.Fprintf(w, " journal{appends %d replays %d slots %d}",
				s.Journal.Appends, s.Journal.Replays, s.Journal.ReplaySlots)
		}
		fmt.Fprintln(w)
	}
}
