package fleet

import (
	"fmt"

	"repro/internal/obs"
)

// Tick is the fleet controller's discrete clock. Nodes keep their own
// cycle-accurate TSCs; the fleet layer schedules in coarse ticks (one
// tick ≈ one controller loop iteration) so admission decisions are
// deterministic and independent of per-node cycle jitter.
type Tick int64

// Request asks the admission controller for a virtual-mode slot.
type Request struct {
	Node       NodeID
	EnqueuedAt Tick
	// Deadline is the last tick at which a grant is still useful; a
	// request still queued past it expires and is returned to the
	// caller as failed admission.
	Deadline Tick
}

// AdmissionStats aggregates one controller's admission outcomes.
type AdmissionStats struct {
	Submitted int `json:"submitted"`
	Granted   int `json:"granted"`
	// Rejected counts backpressure: submissions refused because the
	// queue was at capacity.
	Rejected int `json:"rejected"`
	// Expired counts requests whose deadline passed while queued.
	Expired int `json:"expired"`
	// Canceled counts requests flushed by a wave abort.
	Canceled int `json:"canceled"`
	// MaxInUse is the high-water mark of concurrently granted slots —
	// the sweep and the chaos property assert it never exceeds
	// MaxVirtual.
	MaxInUse int `json:"max_in_use"`
	// MaxQueueDepth is the deepest the queue got.
	MaxQueueDepth int `json:"max_queue_depth"`
}

// Admission bounds how many nodes may hold a virtual-mode slot at once.
// Every attached node pays the ~15% virtualization tax of Table 1, so
// the fleet reserves capacity: switching is a scheduled resource, not a
// free action. Submissions beyond the queue capacity are rejected
// (backpressure); queued requests past their deadline expire.
//
// Admission is not safe for concurrent use: the controller drives it
// from its single-threaded tick loop, which is what keeps fleet runs
// deterministic.
type Admission struct {
	// MaxVirtual is the virtual-mode concurrency bound (≥ 1).
	MaxVirtual int
	// MaxQueue is the wait-queue capacity (≥ 1); a submission that
	// would grow the queue past it is rejected outright.
	MaxQueue int

	queue []*Request
	inUse int
	stats AdmissionStats

	// Telemetry (nil-safe: left unset without a collector).
	depthGauge *obs.Gauge
	inUseGauge *obs.Gauge
	granted    *obs.Counter
	rejected   *obs.Counter
	expired    *obs.Counter
}

// NewAdmission builds the controller. With a collector, queue depth and
// slot usage are exported as fleet/queue_depth and
// fleet/virtual_in_use, and admission outcomes as counters.
func NewAdmission(maxVirtual, maxQueue int, col *obs.Collector) *Admission {
	if maxVirtual < 1 {
		maxVirtual = 1
	}
	if maxQueue < 1 {
		maxQueue = 1
	}
	a := &Admission{MaxVirtual: maxVirtual, MaxQueue: maxQueue}
	if col != nil {
		r := col.Registry
		a.depthGauge = r.Gauge("fleet", "queue_depth")
		a.inUseGauge = r.Gauge("fleet", "virtual_in_use")
		a.granted = r.Counter("fleet", "admission_granted_total")
		a.rejected = r.Counter("fleet", "admission_rejected_total")
		a.expired = r.Counter("fleet", "admission_expired_total")
	}
	return a
}

// Submit queues a request. It returns false — backpressure — when the
// queue is full; the caller retries a later tick or gives up.
func (a *Admission) Submit(req *Request) bool {
	a.stats.Submitted++
	if len(a.queue) >= a.MaxQueue {
		a.stats.Rejected++
		if a.rejected != nil {
			a.rejected.Inc()
		}
		return false
	}
	a.queue = append(a.queue, req)
	if d := len(a.queue); d > a.stats.MaxQueueDepth {
		a.stats.MaxQueueDepth = d
	}
	a.gauge()
	return true
}

// Grant pops expired requests and grants FIFO up to the concurrency
// bound. It returns the granted requests (possibly none) and the
// requests that expired this tick.
func (a *Admission) Grant(now Tick) (granted, expired []*Request) {
	kept := a.queue[:0]
	for _, req := range a.queue {
		switch {
		case req.Deadline > 0 && now > req.Deadline:
			a.stats.Expired++
			if a.expired != nil {
				a.expired.Inc()
			}
			expired = append(expired, req)
		case a.inUse < a.MaxVirtual:
			a.inUse++
			if a.inUse > a.stats.MaxInUse {
				a.stats.MaxInUse = a.inUse
			}
			a.stats.Granted++
			if a.granted != nil {
				a.granted.Inc()
			}
			granted = append(granted, req)
		default:
			kept = append(kept, req)
		}
	}
	// Zero the tail so flushed entries don't pin reports.
	for i := len(kept); i < len(a.queue); i++ {
		a.queue[i] = nil
	}
	a.queue = kept
	a.gauge()
	return granted, expired
}

// Release returns one granted slot.
func (a *Admission) Release() error {
	if a.inUse == 0 {
		return fmt.Errorf("fleet: release with no slot in use")
	}
	a.inUse--
	a.gauge()
	return nil
}

// Flush cancels every queued request (a wave abort) and returns how
// many were dropped. Granted slots stay accounted until Released.
func (a *Admission) Flush() int {
	n := len(a.queue)
	a.stats.Canceled += n
	for i := range a.queue {
		a.queue[i] = nil
	}
	a.queue = a.queue[:0]
	a.gauge()
	return n
}

// Depth returns the current queue depth.
func (a *Admission) Depth() int { return len(a.queue) }

// InUse returns how many slots are currently granted.
func (a *Admission) InUse() int { return a.inUse }

// Stats returns a copy of the accumulated admission outcomes.
func (a *Admission) Stats() AdmissionStats { return a.stats }

func (a *Admission) gauge() {
	if a.depthGauge != nil {
		a.depthGauge.Set(int64(len(a.queue)))
	}
	if a.inUseGauge != nil {
		a.inUseGauge.Set(int64(a.inUse))
	}
}
