package fleet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/obs"
)

// DefaultVirtualTaxPct is the per-node throughput cost of running in
// virtual mode — Table 1's worst-case lmbench degradation between M-N
// and M-V is on the order of 15%.
const DefaultVirtualTaxPct = 15

// DefaultMaxCapacityLossPct is the fleet-wide serving-capacity loss the
// admission controller is willing to trade for maintenance progress: a
// switched node keeps serving (that is self-virtualization's point) but
// at 100−VirtualTaxPct percent, so the aggregate loss with k nodes
// attached is k·VirtualTaxPct/Nodes percent.
const DefaultMaxCapacityLossPct = 10

// Config shapes one fleet.
type Config struct {
	// Nodes is the fleet size (≥ 1).
	Nodes int
	// Node shapes each node (memory, policy, working set, load).
	Node NodeConfig

	// MaxVirtual bounds concurrent virtual-mode nodes. 0 derives it
	// from the capacity model: with each attached node paying
	// VirtualTaxPct of its throughput, at most
	// Nodes·MaxCapacityLossPct/VirtualTaxPct nodes may be attached
	// before the fleet loses more than MaxCapacityLossPct of its
	// aggregate capacity.
	MaxVirtual int
	// VirtualTaxPct and MaxCapacityLossPct parameterize that model
	// (defaults DefaultVirtualTaxPct / DefaultMaxCapacityLossPct).
	VirtualTaxPct      int
	MaxCapacityLossPct int

	// QueueCap is the admission queue capacity (default 2·Nodes: a
	// whole wave can wait, anything more is a caller bug).
	QueueCap int

	// Standby, when true, boots a standby VMM so ActionMigrate works.
	Standby bool

	// Collector receives fleet-level telemetry (optional).
	Collector *obs.Collector

	// Seed feeds the payload generator; fleet scheduling itself is
	// deterministic by construction.
	Seed int64
}

// DeriveMaxVirtual applies the capacity model to a fleet size.
func DeriveMaxVirtual(nodes, taxPct, maxLossPct int) int {
	if taxPct <= 0 {
		taxPct = DefaultVirtualTaxPct
	}
	if maxLossPct <= 0 {
		maxLossPct = DefaultMaxCapacityLossPct
	}
	// k·taxPct/nodes ≤ maxLossPct  ⇒  k ≤ nodes·maxLossPct/taxPct.
	k := nodes * maxLossPct / taxPct
	if k < 1 {
		k = 1
	}
	if k > nodes {
		k = nodes
	}
	return k
}

// Controller owns the fleet: the nodes, the standby, the admission
// controller, and the fleet clock.
type Controller struct {
	Nodes   []*Node
	Adm     *Admission
	Standby *Standby

	cfg Config
	col *obs.Collector
	now Tick

	// events is the fleet flight recorder (the collector's event log);
	// nil without a collector.
	events *obs.EventLog

	// OnTick, when set, runs after every fleet tick inside RunWave —
	// the hook the `mercuryctl fleet -action top` view uses to sample
	// fleet state at a fixed cadence. It runs on the controller's
	// single-threaded tick loop; keep it cheap.
	OnTick func(now Tick)

	// Telemetry.
	waveProgress *obs.Gauge
	waveBatch    *obs.Gauge
	wavesTotal   *obs.Counter
	waveAborts   *obs.Counter
	maintained   *obs.Counter
	attachCyc    *obs.Histogram
	detachCyc    *obs.Histogram
	actionCyc    *obs.Histogram

	// PreAttach, when set, runs inside each node's maintenance process
	// just before the VMM attach — the hook the chaos-style property
	// tests use to inject faults mid-wave. A non-nil cleanup is run when
	// the pipeline unwinds (success or failure), before the maintenance
	// process exits: an injected fault must be lifted with the node
	// still alive, the same discipline the chaos campaign's episodes
	// follow.
	PreAttach func(n *Node, p *guest.Proc) (cleanup func(), err error)
}

// New boots a fleet.
func New(cfg Config) (*Controller, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("fleet: need at least one node")
	}
	if cfg.MaxVirtual == 0 {
		cfg.MaxVirtual = DeriveMaxVirtual(cfg.Nodes, cfg.VirtualTaxPct, cfg.MaxCapacityLossPct)
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 2 * cfg.Nodes
	}
	fc := &Controller{cfg: cfg, col: cfg.Collector}
	if cfg.Collector != nil {
		fc.events = cfg.Collector.Events
	}
	fc.Adm = NewAdmission(cfg.MaxVirtual, cfg.QueueCap, cfg.Collector)
	ncfg := cfg.Node
	ncfg.Collector = cfg.Collector
	for i := 0; i < cfg.Nodes; i++ {
		n, err := NewNode(NodeID(i), ncfg)
		if err != nil {
			return nil, err
		}
		fc.Nodes = append(fc.Nodes, n)
	}
	if cfg.Standby {
		sb, err := NewStandby()
		if err != nil {
			return nil, err
		}
		fc.Standby = sb
	}
	if col := cfg.Collector; col != nil {
		r := col.Registry
		fc.waveProgress = r.Gauge("fleet", "wave_progress")
		fc.waveBatch = r.Gauge("fleet", "wave_batch")
		fc.wavesTotal = r.Counter("fleet", "waves_total")
		fc.waveAborts = r.Counter("fleet", "wave_aborts_total")
		fc.maintained = r.Counter("fleet", "nodes_maintained_total")
		fc.attachCyc = r.Histogram("fleet", "node_attach_cycles")
		fc.detachCyc = r.Histogram("fleet", "node_detach_cycles")
		fc.actionCyc = r.Histogram("fleet", "node_action_cycles")
	}
	return fc, nil
}

// Now returns the fleet clock.
func (fc *Controller) Now() Tick { return fc.now }

// Config returns the (defaults-filled) configuration the fleet was
// built with.
func (fc *Controller) Config() Config { return fc.cfg }

// CheckFleetInvariants verifies every node is quiescent-clean — the
// fleet-level analogue of core.CheckInvariants, consulted after a wave.
func (fc *Controller) CheckFleetInvariants() error {
	for _, n := range fc.Nodes {
		if err := n.MC.CheckInvariants(n.M.BootCPU()); err != nil {
			return fmt.Errorf("fleet: %s: %w", n.Name, err)
		}
	}
	return nil
}

// event records a fleet-level flight-recorder entry stamped with the
// fleet clock. No-op without a collector.
func (fc *Controller) event(kind obs.EventKind, node int32, a, b uint64) {
	if fc.events == nil {
		return
	}
	fc.events.Record(kind, node, uint64(fc.now), a, b)
}

// VirtualNodes counts nodes currently in a non-native mode.
func (fc *Controller) VirtualNodes() int {
	v := 0
	for _, n := range fc.Nodes {
		if n.MC.Mode() != core.ModeNative {
			v++
		}
	}
	return v
}
