package fleet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/hw"
	"repro/internal/migrate"
	"repro/internal/obs"
	"repro/internal/workloads"
	"repro/internal/xen"
)

// NodeID identifies one node within its fleet.
type NodeID int

// NodeState is a node's position in the maintenance lifecycle, as the
// controller sees it.
type NodeState int

// Node lifecycle states.
const (
	// NodeServing: native mode, taking traffic.
	NodeServing NodeState = iota
	// NodeDraining: cordoned — no new fleet work — waiting for admission.
	NodeDraining
	// NodeMaintaining: admitted; the VMM is (being) attached and the
	// maintenance action is running.
	NodeMaintaining
	// NodeHealed: maintenance done, verified healthy, serving again.
	NodeHealed
	// NodeFailed: the pipeline failed; the wave was aborted because of
	// this node.
	NodeFailed
)

func (s NodeState) String() string {
	switch s {
	case NodeServing:
		return "serving"
	case NodeDraining:
		return "draining"
	case NodeMaintaining:
		return "maintaining"
	case NodeHealed:
		return "healed"
	case NodeFailed:
		return "failed"
	}
	return fmt.Sprintf("state%d", int(s))
}

// Node is one self-virtualizable Mercury system under fleet control:
// its own simulated machine, pre-cached VMM, guest kernel, and
// workload load.
type Node struct {
	ID   NodeID
	Name string
	MC   *core.Mercury
	M    *hw.Machine

	state NodeState

	// Load is the dbench score of the node's boot-time workload run
	// (MB/s at the simulated clock); zero when the load was skipped.
	Load float64
}

// State returns the node's lifecycle state.
func (n *Node) State() NodeState { return n.state }

// NodeConfig shapes one node.
type NodeConfig struct {
	// MemBytes sizes the node's physical memory (default 64 MiB — the
	// per-operation cost model makes memory size a working-set bound,
	// not a speed knob).
	MemBytes uint64
	// Policy is the node's frame-tracking policy.
	Policy core.TrackingPolicy
	// Pages is the resident working set the maintenance driver process
	// populates before attaching (what the attach must validate).
	Pages int
	// RunLoad runs a scaled-down dbench on the node after boot, so the
	// kernel under maintenance has a real filesystem/page-cache history
	// rather than a freshly booted one.
	RunLoad bool
	// MaxDeferrals bounds how often a node's switch may defer before
	// reporting starvation (0 = the core default). Fleet operators keep
	// this small: a wedged node should fail its wave quickly rather
	// than hold an admission slot while it spins.
	MaxDeferrals int
	// Collector, when non-nil, is installed on the node's machine before
	// boot: node-level instrumentation (vo objects, the VMM, the switch
	// ISR's flight-recorder events) then lands in the fleet's shared
	// collector, attributed by node ID. The controller fills this from
	// its own Config.Collector.
	Collector *obs.Collector
}

// NewNode boots one fleet node: machine, pre-cached VMM, kernel — and,
// when configured, its workload load.
func NewNode(id NodeID, cfg NodeConfig) (*Node, error) {
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 64 << 20
	}
	name := fmt.Sprintf("node%d", id)
	m := hw.NewMachine(hw.Config{Name: name, MemBytes: cfg.MemBytes, NumCPUs: 1})
	if cfg.Collector != nil {
		m.SetTelemetry(cfg.Collector)
	}
	mc, err := core.New(core.Config{
		Machine: m, Policy: cfg.Policy, MaxDeferrals: cfg.MaxDeferrals,
	})
	if err != nil {
		return nil, fmt.Errorf("fleet: booting %s: %w", name, err)
	}
	mc.NodeID = int32(id)
	// Bind the kernel to the machine's devices so workloads (and any
	// filesystem history they leave behind) run against a real disk.
	mc.K.Blk = &guest.NativeBlock{K: mc.K, Disk: m.Disk}
	mc.K.Net = &guest.NativeNet{K: mc.K, NIC: m.NIC}
	n := &Node{ID: id, Name: name, MC: mc, M: m}
	if cfg.RunLoad {
		res := workloads.Dbench(n.target())
		n.Load = res.MBps
	}
	return n, nil
}

// target adapts the node to the workloads package.
func (n *Node) target() *workloads.Target {
	return &workloads.Target{
		K: n.MC.K,
		M: n.M,
		Run: func(name string, body guest.Body) {
			boot := n.M.BootCPU()
			n.MC.K.Spawn(boot, name, guest.DefaultImage(name), body)
			n.MC.K.Run(boot)
		},
	}
}

// Action is the maintenance performed on an admitted node inside its
// attach window.
type Action int

// Maintenance actions.
const (
	// ActionCheckpoint snapshots a hosted environment (§6.1) and
	// discards it after verifying the image decodes.
	ActionCheckpoint Action = iota
	// ActionMigrate live-migrates a hosted environment to the fleet's
	// standby node through the transactional §6.3 pipeline.
	ActionMigrate
)

func (a Action) String() string {
	switch a {
	case ActionCheckpoint:
		return "checkpoint"
	case ActionMigrate:
		return "migrate"
	}
	return fmt.Sprintf("action%d", int(a))
}

// ParseAction maps a CLI spelling to an Action.
func ParseAction(s string) (Action, error) {
	switch s {
	case "checkpoint":
		return ActionCheckpoint, nil
	case "migrate":
		return ActionMigrate, nil
	}
	return 0, fmt.Errorf("fleet: unknown action %q (want checkpoint or migrate)", s)
}

// envFrames is the hosted environment's partition size during a
// maintenance action — small enough that repeated waves never exhaust a
// node's partition, big enough that checkpoint/migration cost is
// visible in the report.
const envFrames = 96

// NodeReport is one node's measured trip through the pipeline.
type NodeReport struct {
	Node  NodeID `json:"node"`
	Batch int    `json:"batch"`

	// Fleet-clock bookkeeping (ticks).
	EnqueuedAt Tick `json:"enqueued_at"`
	GrantedAt  Tick `json:"granted_at"`
	ReleasedAt Tick `json:"released_at"`

	// Node-clock costs (cycles on the node's own TSC).
	AttachCyc hw.Cycles `json:"attach_cyc"`
	ActionCyc hw.Cycles `json:"action_cyc"`
	DetachCyc hw.Cycles `json:"detach_cyc"`

	// Action outcome.
	ImagePages  int       `json:"image_pages,omitempty"`  // checkpoint: snapshot size
	Migrated    bool      `json:"migrated,omitempty"`     // migrate: committed
	DowntimeCyc hw.Cycles `json:"downtime_cyc,omitempty"` // migrate: stop-and-copy window
	HealedClean bool      `json:"healed_clean"`           // post-detach invariants passed
}

// maintain runs the node's whole pipeline inside a spawned driver
// process: populate the working set, attach, perform the action, detach,
// heal-verify. preAttach, when non-nil, runs in process context before
// the attach — the fault-injection hook the abort property tests use.
func (n *Node) maintain(action Action, pages int, standby *Standby,
	preAttach func(n *Node, p *guest.Proc) (func(), error), rep *NodeReport) error {

	mc := n.MC
	boot := n.M.BootCPU()
	var perr error
	mc.K.Spawn(boot, "fleet-maint", guest.DefaultImage("fleet-maint"), func(p *guest.Proc) {
		perr = n.pipeline(p, action, pages, standby, preAttach, rep)
	})
	mc.K.Run(boot)
	return perr
}

func (n *Node) pipeline(p *guest.Proc, action Action, pages int, standby *Standby,
	preAttach func(n *Node, p *guest.Proc) (func(), error), rep *NodeReport) error {

	mc := n.MC
	if pages > 0 {
		base := p.Mmap(pages, guest.ProtRead|guest.ProtWrite, true)
		p.Touch(base, pages, true)
	}
	if preAttach != nil {
		cleanup, err := preAttach(n, p)
		if cleanup != nil {
			defer cleanup()
		}
		if err != nil {
			return fmt.Errorf("pre-attach hook: %w", err)
		}
	}

	// Attach: self-virtualize under the running load.
	if err := mc.SwitchSync(p.CPU(), core.ModePartialVirtual); err != nil {
		return fmt.Errorf("attach: %w", err)
	}
	rep.AttachCyc = hw.Cycles(mc.Stats.LastAttachCyc.Load())

	// Action, inside the attach window.
	c := p.CPU()
	actionStart := c.Now()
	aerr := n.runAction(c, action, standby, rep)
	rep.ActionCyc = c.Now() - actionStart
	if aerr != nil {
		// Best effort: leave the node native even when the action
		// failed, so an aborted wave never strands a node virtual.
		_ = mc.SwitchSync(p.CPU(), core.ModeNative)
		return fmt.Errorf("%s: %w", action, aerr)
	}

	// Detach: back to native speed.
	if err := mc.SwitchSync(p.CPU(), core.ModeNative); err != nil {
		return fmt.Errorf("detach: %w", err)
	}
	rep.DetachCyc = hw.Cycles(mc.Stats.LastDetachCyc.Load())

	// Heal: the same oracle the chaos campaigns consult — the node must
	// verify clean before it rejoins the serving set. A tripped healing
	// sensor gets one self-heal attempt first.
	if hr, err := mc.SelfHeal(p.CPU(), []core.Sensor{core.RunqueueSensor()},
		core.RunqueueRepair()); err != nil {
		return fmt.Errorf("heal: %w", err)
	} else if hr != nil && !hr.Healed {
		return fmt.Errorf("heal: anomaly %q persists", hr.Anomaly)
	}
	if err := mc.CheckInvariants(p.CPU()); err != nil {
		return fmt.Errorf("post-maintenance invariants: %w", err)
	}
	rep.HealedClean = true
	return nil
}

// runAction performs the maintenance payload with the VMM attached.
func (n *Node) runAction(c *hw.CPU, action Action, standby *Standby, rep *NodeReport) error {
	mc := n.MC
	env, err := mc.VMM.HypDomctlCreateFromFrames(c, mc.Dom, "env", envFrames)
	if err != nil {
		return fmt.Errorf("hosting environment: %w", err)
	}
	lo, _ := env.Frames.Range()
	for i := 0; i < envFrames/2; i++ {
		n.M.Mem.WriteWord((lo + hw.PFN(i)).Addr(), 0xF1EE7000|uint32(n.ID)<<8|uint32(i))
	}

	switch action {
	case ActionCheckpoint:
		img, err := migrate.Checkpoint(c, mc.VMM, mc.Dom, env)
		if err != nil {
			return err
		}
		blob, err := img.Bytes()
		if err != nil {
			return err
		}
		back, err := migrate.DecodeImage(blob)
		if err != nil {
			return err
		}
		rep.ImagePages = len(back.Pages)
		return mc.VMM.HypDomctlDestroy(c, mc.Dom, env.ID)

	case ActionMigrate:
		if standby == nil {
			return fmt.Errorf("no standby configured")
		}
		lcfg := standby.Cfg
		moved, lr, err := migrate.Live(c, mc.VMM, mc.Dom, env,
			standby.V, standby.Caller, lcfg)
		if err != nil {
			return err
		}
		rep.Migrated = lr.Verified
		rep.DowntimeCyc = lr.DowntimeCyc
		// Release the standby copy so repeated waves don't exhaust the
		// standby's partition: in production the environment would keep
		// running there until the node returns.
		return standby.V.DestroyDomain(moved.ID)
	}
	return fmt.Errorf("unknown action %v", action)
}

// Standby is the fleet's migration target: one warm VMM every
// ActionMigrate pipeline sends its environment to.
type Standby struct {
	M      *hw.Machine
	V      *xen.VMM
	Caller *xen.Domain
	Cfg    migrate.LiveConfig
}

// NewStandby boots the fleet's standby node.
func NewStandby() (*Standby, error) {
	m := hw.NewMachine(hw.Config{Name: "fleet-standby", MemBytes: 64 << 20, NumCPUs: 1})
	v, err := xen.Boot(m)
	if err != nil {
		return nil, fmt.Errorf("fleet: booting standby: %w", err)
	}
	c := m.BootCPU()
	v.Activate(c)
	dom0, err := v.CreateDomain("dom0", 2048, true)
	if err != nil {
		return nil, fmt.Errorf("fleet: standby dom0: %w", err)
	}
	v.SetCurrent(c, dom0)
	return &Standby{M: m, V: v, Caller: dom0, Cfg: migrate.DefaultLiveConfig()}, nil
}
