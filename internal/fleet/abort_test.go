package fleet

import (
	"math/rand"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/guest"
)

// assertAbortedClean is the wave-abort contract the property tests
// check: every node native, nothing hosted anywhere, admission queue
// empty with no slot still accounted.
func assertAbortedClean(t *testing.T, fc *Controller, rep *WaveReport, victim NodeID) {
	t.Helper()
	if !rep.Aborted {
		t.Fatal("wave did not abort")
	}
	if rep.FailedNode != victim {
		t.Errorf("failed node = %d; want %d", rep.FailedNode, victim)
	}
	for _, n := range fc.Nodes {
		if m := n.MC.Mode(); m != core.ModeNative {
			t.Errorf("%s stranded in mode %v after abort", n.Name, m)
		}
		if doms := n.MC.HostedDomains(); len(doms) != 0 {
			t.Errorf("%s leaked %d hosted domains after abort", n.Name, len(doms))
		}
		if n.ID == victim {
			if n.State() != NodeFailed {
				t.Errorf("%s state = %v; want failed", n.Name, n.State())
			}
		} else if n.State() != NodeServing {
			t.Errorf("%s state = %v; want serving", n.Name, n.State())
		}
	}
	if fc.Standby != nil {
		if n := len(fc.Standby.V.Domains); n != 1 {
			t.Errorf("standby holds %d domains after abort; want 1 (dom0)", n)
		}
	}
	if d := fc.Adm.Depth(); d != 0 {
		t.Errorf("admission queue depth = %d after abort; want 0", d)
	}
	if u := fc.Adm.InUse(); u != 0 {
		t.Errorf("admission slots in use = %d after abort; want 0", u)
	}
}

// TestWaveAbortDirect drives the abort machinery with a plain hook
// error — the machinery itself, independent of any fault class.
func TestWaveAbortDirect(t *testing.T) {
	fc, err := New(testConfig(4, false))
	if err != nil {
		t.Fatal(err)
	}
	const victim = NodeID(2)
	fc.PreAttach = func(n *Node, p *guest.Proc) (func(), error) {
		if n.ID == victim {
			return nil, errInjected
		}
		return nil, nil
	}
	rep, err := fc.RunWave(WaveConfig{Action: ActionCheckpoint, BatchSize: 2})
	if err == nil {
		t.Fatal("wave with a failing node succeeded")
	}
	assertAbortedClean(t, fc, rep, victim)
	if err := fc.CheckFleetInvariants(); err != nil {
		t.Errorf("fleet invariants after abort: %v", err)
	}
}

var errInjected = &injectedErr{}

type injectedErr struct{}

func (*injectedErr) Error() string { return "injected pre-attach failure" }

// TestWaveAbortChaosProperty is the property test from the issue: for
// each chaos fault class that Mercury's pipeline must catch (switch
// validation or the invariant oracle), injected mid-wave on a victim
// node across several seeds, the aborted wave leaves every node
// native, zero leaked domains, and an empty admission queue — and once
// the fault is lifted, the whole fleet verifies clean again.
func TestWaveAbortChaosProperty(t *testing.T) {
	// Sensor-detected faults are the healing path's job, not the abort
	// path's: the pipeline's self-heal step repairs them and the wave
	// completes. "domain-state" is also excluded — the attach itself
	// legitimately rewrites the driver domain's state, so a pre-attach
	// injection of it cannot survive to the detection point. The abort
	// property quantifies over the rest.
	abortable := []string{
		"pagetable-corruption",
		"stale-selector",
		"idt-gate-clobber",
		"vo-stuck-op",
		"hypercall-transient",
		"frametable-bitflip",
	}
	for _, name := range abortable {
		for _, seed := range []int64{1, 7} {
			t.Run(name, func(t *testing.T) {
				cfg := testConfig(4, false)
				// A small deferral budget: the wedged-driver fault
				// (vo-stuck-op) should report starvation quickly, not
				// spin through the core default.
				cfg.Node.MaxDeferrals = 16
				fc, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				const victim = NodeID(2)
				injected := false
				rng := rand.New(rand.NewSource(seed))
				fc.PreAttach = func(n *Node, p *guest.Proc) (func(), error) {
					if n.ID != victim || injected {
						return nil, nil
					}
					for _, f := range chaos.Catalog(n.MC) {
						if f.Name != name {
							continue
						}
						a, err := f.Inject(&chaos.Ctx{
							MC: n.MC, P: p, C: p.CPU(), Rand: rng,
						})
						if err != nil {
							t.Fatalf("injecting %s: %v", name, err)
						}
						injected = true
						// The fault stays armed through the pipeline —
						// which must catch it — and is lifted only when
						// the pipeline unwinds.
						return a.Undo, nil
					}
					t.Fatalf("fault %q not in catalog", name)
					return nil, nil
				}
				rep, err := fc.RunWave(WaveConfig{Action: ActionCheckpoint, BatchSize: 2})
				if err == nil {
					t.Fatalf("wave with %s injected succeeded", name)
				}
				if !injected {
					t.Fatal("injector never ran")
				}
				assertAbortedClean(t, fc, rep, victim)

				// The fault was lifted when the pipeline unwound: the
				// fleet must verify clean again.
				if err := fc.CheckFleetInvariants(); err != nil {
					t.Errorf("fleet invariants after abort: %v", err)
				}
			})
		}
	}
}
