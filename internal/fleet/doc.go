// Package fleet turns single-node Mercury into a system: a controller
// that manages N simulated Mercury nodes (each an internal/core
// instance with its own pre-cached VMM and workload load) and schedules
// maintenance across them, the way on-demand cluster provisioning
// surveys (Kiyanclar) and vLibOS's "virtualize only what needs
// babysitting" philosophy apply §4/§6 of the paper at rack scale.
//
// Three pieces compose:
//
//   - an admission controller (Admission) that bounds how many nodes
//     may be in virtual mode at once — every switched node pays the
//     ~15% virtualization tax of Table 1, so virtual-mode capacity is a
//     reserved resource — with a FIFO queue, per-request deadlines, and
//     backpressure (a full queue rejects instead of growing unbounded);
//   - a rolling-maintenance engine (Controller.RunWave) that takes the
//     fleet through a maintenance wave one batch at a time: each node
//     is drained, admitted, attached (self-virtualized), checkpointed
//     or live-migrated through the §6.3 transactional pipeline
//     (migrate.Txn), detached, and verified healthy via the same
//     invariant checker the chaos campaigns use; any invariant failure
//     aborts the whole wave and restores every node to native mode;
//   - fleet-level observability: per-node switch latencies, wave
//     progress, queue depth, and admission outcomes exported through an
//     internal/obs collector, surfaced by `mercuryctl fleet` and the
//     `benchtab -exp fleet` sweep.
//
// Determinism: nodes are uniprocessor simulations driven in a fixed
// order from a discrete fleet clock (Tick), and the only random input
// is the seeded payload generator — the same Config always produces
// the same wave report, cycle for cycle, which is what the committed
// BENCH_fleet.json baseline asserts in CI.
package fleet
