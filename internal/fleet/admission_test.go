package fleet

import "testing"

func req(n NodeID, at Tick) *Request { return &Request{Node: n, EnqueuedAt: at} }

func TestAdmissionBound(t *testing.T) {
	a := NewAdmission(2, 10, nil)
	for i := 0; i < 5; i++ {
		if !a.Submit(req(NodeID(i), 0)) {
			t.Fatalf("submit %d rejected with queue cap 10", i)
		}
	}
	granted, expired := a.Grant(0)
	if len(granted) != 2 || len(expired) != 0 {
		t.Fatalf("grant = %d granted, %d expired; want 2, 0", len(granted), len(expired))
	}
	if a.InUse() != 2 || a.Depth() != 3 {
		t.Fatalf("inUse=%d depth=%d; want 2, 3", a.InUse(), a.Depth())
	}
	// Bound holds while saturated.
	if g, _ := a.Grant(1); len(g) != 0 {
		t.Fatalf("granted %d past the bound", len(g))
	}
	if err := a.Release(); err != nil {
		t.Fatal(err)
	}
	if g, _ := a.Grant(2); len(g) != 1 {
		t.Fatalf("after release, granted %d; want 1", len(g))
	}
	// FIFO: next grant is the oldest queued request.
	if g, _ := a.Grant(3); len(g) != 0 {
		t.Fatalf("granted %d with both slots in use", len(g))
	}
	if s := a.Stats(); s.MaxInUse != 2 {
		t.Fatalf("MaxInUse = %d; want 2", s.MaxInUse)
	}
}

func TestAdmissionFIFO(t *testing.T) {
	a := NewAdmission(1, 10, nil)
	a.Submit(req(7, 0))
	a.Submit(req(3, 1))
	g, _ := a.Grant(2)
	if len(g) != 1 || g[0].Node != 7 {
		t.Fatalf("grant order broken: got %+v", g)
	}
	a.Release()
	g, _ = a.Grant(3)
	if len(g) != 1 || g[0].Node != 3 {
		t.Fatalf("grant order broken: got %+v", g)
	}
}

func TestAdmissionBackpressure(t *testing.T) {
	a := NewAdmission(1, 2, nil)
	if !a.Submit(req(0, 0)) || !a.Submit(req(1, 0)) {
		t.Fatal("submissions within capacity rejected")
	}
	if a.Submit(req(2, 0)) {
		t.Fatal("submission past queue capacity accepted")
	}
	s := a.Stats()
	if s.Rejected != 1 || s.Submitted != 3 {
		t.Fatalf("stats = %+v; want Rejected 1, Submitted 3", s)
	}
}

func TestAdmissionDeadline(t *testing.T) {
	a := NewAdmission(1, 10, nil)
	a.Submit(req(0, 0))
	if g, _ := a.Grant(0); len(g) != 1 {
		t.Fatal("first grant failed")
	}
	late := req(1, 0)
	late.Deadline = 5
	a.Submit(late)
	// Slot stays held past the deadline: the queued request expires.
	if _, exp := a.Grant(5); len(exp) != 0 {
		t.Fatal("expired at its deadline tick (deadline is inclusive)")
	}
	_, exp := a.Grant(6)
	if len(exp) != 1 || exp[0].Node != 1 {
		t.Fatalf("expired = %+v; want node 1", exp)
	}
	if a.Depth() != 0 {
		t.Fatalf("depth = %d after expiry; want 0", a.Depth())
	}
	if s := a.Stats(); s.Expired != 1 {
		t.Fatalf("Expired = %d; want 1", s.Expired)
	}
}

func TestAdmissionFlush(t *testing.T) {
	a := NewAdmission(1, 10, nil)
	a.Submit(req(0, 0))
	a.Grant(0)
	a.Submit(req(1, 0))
	a.Submit(req(2, 0))
	if n := a.Flush(); n != 2 {
		t.Fatalf("flushed %d; want 2", n)
	}
	if a.Depth() != 0 {
		t.Fatalf("depth = %d after flush; want 0", a.Depth())
	}
	if a.InUse() != 1 {
		t.Fatalf("flush released a granted slot: inUse = %d", a.InUse())
	}
	if s := a.Stats(); s.Canceled != 2 {
		t.Fatalf("Canceled = %d; want 2", s.Canceled)
	}
}

func TestAdmissionReleaseUnderflow(t *testing.T) {
	a := NewAdmission(1, 1, nil)
	if err := a.Release(); err == nil {
		t.Fatal("release with no slot in use succeeded")
	}
}

func TestDeriveMaxVirtual(t *testing.T) {
	cases := []struct {
		nodes, tax, loss, want int
	}{
		{10, 15, 10, 6},     // 10·10/15
		{4, 15, 10, 2},      // 4·10/15 = 2.67
		{1, 15, 10, 1},      // floor clamp
		{2, 15, 10, 1},      // 2·10/15 = 1.33
		{100, 15, 100, 100}, // ceiling clamp at fleet size
		{8, 0, 0, 5},        // defaults: 8·10/15 = 5.33
	}
	for _, c := range cases {
		if got := DeriveMaxVirtual(c.nodes, c.tax, c.loss); got != c.want {
			t.Errorf("DeriveMaxVirtual(%d, %d, %d) = %d; want %d",
				c.nodes, c.tax, c.loss, got, c.want)
		}
	}
}
