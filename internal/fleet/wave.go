package fleet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/obs"
)

// WaveConfig shapes one rolling-maintenance wave.
type WaveConfig struct {
	// Action is the maintenance performed inside each attach window.
	Action Action
	// BatchSize is how many nodes enter maintenance per batch; the
	// next batch's requests are only submitted once the current batch
	// has fully drained (default 1 — classic one-at-a-time rolling
	// maintenance).
	BatchSize int
	// ArrivalPerTick is how many of a batch's requests are submitted
	// per fleet tick (default BatchSize: the whole batch arrives at
	// once). Lower values stagger arrivals, which is what the sweep's
	// arrival-rate axis varies.
	ArrivalPerTick int
	// DeadlineTicks is each request's admission deadline, measured
	// from submission (0 = no deadline).
	DeadlineTicks int
	// MaxTicks aborts a wave that fails to finish (default 10000 — a
	// wedged admission queue must not hang the caller).
	MaxTicks int
}

// BatchReport is one batch's outcome.
type BatchReport struct {
	Index     int      `json:"index"`
	Nodes     []NodeID `json:"nodes"`
	Completed int      `json:"completed"`
	Expired   int      `json:"expired"`
	StartTick Tick     `json:"start_tick"`
	EndTick   Tick     `json:"end_tick"`
}

// WaveReport is a completed (or aborted) wave.
type WaveReport struct {
	Action    string        `json:"action"`
	BatchSize int           `json:"batch_size"`
	Batches   []BatchReport `json:"batches"`
	PerNode   []NodeReport  `json:"per_node"`

	Completed int `json:"completed"`
	Expired   int `json:"expired"`
	Canceled  int `json:"canceled"`

	Aborted     bool   `json:"aborted"`
	AbortReason string `json:"abort_reason,omitempty"`
	FailedNode  NodeID `json:"failed_node,omitempty"`

	Ticks     Tick           `json:"ticks"`
	Admission AdmissionStats `json:"admission"`

	// MeanAttachCyc / MeanDetachCyc / MeanActionCyc average the
	// completed nodes' pipeline costs on their own TSCs.
	MeanAttachCyc hw.Cycles `json:"mean_attach_cyc"`
	MeanDetachCyc hw.Cycles `json:"mean_detach_cyc"`
	MeanActionCyc hw.Cycles `json:"mean_action_cyc"`
}

// serviceTickCycles converts a node pipeline's measured cycles into how
// many fleet ticks its virtual-mode slot stays occupied: one tick per
// millisecond of node time, minimum one. This is what makes slots a
// contended resource — a slow action (a big migration) holds its slot
// longer, backing up the queue.
func serviceTicks(n *Node, rep *NodeReport) Tick {
	msCycles := hw.Cycles(n.M.Hz / 1000)
	total := rep.AttachCyc + rep.ActionCyc + rep.DetachCyc
	t := Tick(total / msCycles)
	if t < 1 {
		t = 1
	}
	return t
}

// RunWave takes the whole fleet through one rolling-maintenance wave,
// one batch at a time. Within a batch, requests arrive at the
// configured rate, the admission controller grants slots up to its
// concurrency bound, granted nodes run the drain → attach → action →
// detach → heal pipeline, and slots are released once the node's
// service time has elapsed on the fleet clock.
//
// Any pipeline failure — a switch that cannot commit, a migration whose
// transaction aborts and then fails its retry-free verdict, or an
// invariant violation in the heal step — aborts the wave: the queue is
// flushed, granted slots are released, every node is driven back to
// native mode, and the report says why.
func (fc *Controller) RunWave(cfg WaveConfig) (*WaveReport, error) {
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 1
	}
	if cfg.ArrivalPerTick < 1 {
		cfg.ArrivalPerTick = cfg.BatchSize
	}
	if cfg.MaxTicks == 0 {
		cfg.MaxTicks = 10000
	}
	if cfg.Action == ActionMigrate && fc.Standby == nil {
		return nil, fmt.Errorf("fleet: migrate wave needs a standby (Config.Standby)")
	}
	if fc.wavesTotal != nil {
		fc.wavesTotal.Inc()
	}
	rep := &WaveReport{Action: cfg.Action.String(), BatchSize: cfg.BatchSize}
	start := fc.now
	if fc.waveProgress != nil {
		fc.waveProgress.Set(0)
	}
	fc.event(obs.EvWaveStart, -1, uint64(len(fc.Nodes)), uint64(cfg.BatchSize))

	// releases maps a future tick to the requests whose slots free then.
	releases := map[Tick][]NodeID{}
	curBatch := 0

	abort := func(n *Node, why error) (*WaveReport, error) {
		rep.Aborted = true
		rep.AbortReason = why.Error()
		failed := int32(-1)
		if n != nil {
			rep.FailedNode = n.ID
			n.state = NodeFailed
			failed = int32(n.ID)
		}
		fc.event(obs.EvWaveAbort, failed, uint64(curBatch), 0)
		if fc.waveAborts != nil {
			fc.waveAborts.Inc()
		}
		rep.Canceled = fc.Adm.Flush()
		// Drain any slots still accounted (their service windows were
		// still open when the wave died).
		for fc.Adm.InUse() > 0 {
			if err := fc.Adm.Release(); err != nil {
				break
			}
		}
		// Drive every node back to native: an aborted wave must not
		// strand anyone virtual, and nothing may stay hosted.
		for _, node := range fc.Nodes {
			if rerr := fc.recoverNode(node); rerr != nil {
				return rep, fmt.Errorf("fleet: wave aborted (%v); recovering %s: %w",
					why, node.Name, rerr)
			}
			if node.state != NodeFailed {
				node.state = NodeServing
			}
		}
		// Aborts get the same verdict committed waves do: recovery must
		// leave every node quiescent-clean, not merely native.
		if verr := fc.CheckFleetInvariants(); verr != nil {
			return rep, fmt.Errorf("fleet: wave aborted (%v); post-abort invariants: %w",
				why, verr)
		}
		rep.Ticks = fc.now - start
		rep.Admission = fc.Adm.Stats()
		return rep, fmt.Errorf("fleet: wave aborted: %w", why)
	}

	for bi := 0; bi*cfg.BatchSize < len(fc.Nodes); bi++ {
		lo := bi * cfg.BatchSize
		hi := lo + cfg.BatchSize
		if hi > len(fc.Nodes) {
			hi = len(fc.Nodes)
		}
		curBatch = bi
		batch := BatchReport{Index: bi, StartTick: fc.now}
		if fc.waveBatch != nil {
			fc.waveBatch.Set(int64(bi))
		}
		pending := fc.Nodes[lo:hi]
		for _, n := range pending {
			batch.Nodes = append(batch.Nodes, n.ID)
		}

		submitted := 0
		doneInBatch := 0
		for doneInBatch < len(pending) {
			if fc.now-start > Tick(cfg.MaxTicks) {
				return abort(nil, fmt.Errorf("wave exceeded %d ticks", cfg.MaxTicks))
			}
			// 1. Releases scheduled for this tick.
			for range releases[fc.now] {
				if err := fc.Adm.Release(); err != nil {
					return abort(nil, err)
				}
				doneInBatch++
			}
			delete(releases, fc.now)

			// 2. Arrivals: drain (cordon) the next nodes and submit
			// their admission requests at the configured rate.
			for a := 0; a < cfg.ArrivalPerTick && submitted < len(pending); a++ {
				n := pending[submitted]
				n.state = NodeDraining
				req := &Request{Node: n.ID, EnqueuedAt: fc.now}
				if cfg.DeadlineTicks > 0 {
					req.Deadline = fc.now + Tick(cfg.DeadlineTicks)
				}
				if !fc.Adm.Submit(req) {
					// Backpressure: retry next tick, nodes stay ordered.
					fc.event(obs.EvAdmissionReject, int32(n.ID), 0, 0)
					n.state = NodeServing
					break
				}
				submitted++
			}

			// 3. Grants: run the pipeline for every node granted a slot
			// this tick; expired requests count against the batch.
			granted, expired := fc.Adm.Grant(fc.now)
			for _, req := range expired {
				node := fc.Nodes[req.Node]
				node.state = NodeServing // never admitted; keeps serving
				fc.event(obs.EvAdmissionExpire, int32(node.ID),
					uint64(fc.now-req.EnqueuedAt), 0)
				batch.Expired++
				rep.Expired++
				doneInBatch++
			}
			for _, req := range granted {
				node := fc.Nodes[req.Node]
				node.state = NodeMaintaining
				fc.event(obs.EvAdmissionGrant, int32(node.ID),
					uint64(fc.now-req.EnqueuedAt), 0)
				nrep := NodeReport{Node: node.ID, Batch: bi,
					EnqueuedAt: req.EnqueuedAt, GrantedAt: fc.now}
				if err := node.maintain(cfg.Action, fc.cfg.Node.Pages,
					fc.Standby, fc.PreAttach, &nrep); err != nil {
					rep.PerNode = append(rep.PerNode, nrep)
					if cfg.Action == ActionMigrate && nrep.ActionCyc > 0 && !nrep.Migrated {
						fc.event(obs.EvMigrationRollback, int32(node.ID), 0, 0)
					}
					if nrep.DetachCyc > 0 {
						// The pipeline reached detach before dying: a
						// failed heal, not a failed attach or action.
						fc.event(obs.EvHealFail, int32(node.ID), 0, 0)
					}
					return abort(node, err)
				}
				if nrep.ImagePages > 0 {
					fc.event(obs.EvCheckpointDone, int32(node.ID),
						uint64(nrep.ImagePages), 0)
				}
				if nrep.Migrated {
					fc.event(obs.EvMigrationCommit, int32(node.ID),
						uint64(nrep.DowntimeCyc), 0)
				}
				fc.event(obs.EvHealOK, int32(node.ID), 0, 0)
				node.state = NodeHealed
				rel := fc.now + serviceTicks(node, &nrep)
				nrep.ReleasedAt = rel
				rep.PerNode = append(rep.PerNode, nrep)
				releases[rel] = append(releases[rel], node.ID)
				rep.Completed++
				batch.Completed++
				if fc.maintained != nil {
					fc.maintained.Inc()
				}
				if fc.attachCyc != nil {
					fc.attachCyc.Observe(nrep.AttachCyc)
					fc.detachCyc.Observe(nrep.DetachCyc)
					fc.actionCyc.Observe(nrep.ActionCyc)
				}
				if fc.waveProgress != nil {
					fc.waveProgress.Set(int64(rep.Completed))
				}
			}

			if fc.OnTick != nil {
				fc.OnTick(fc.now)
			}
			fc.now++
		}
		batch.EndTick = fc.now
		rep.Batches = append(rep.Batches, batch)
	}

	// The wave's verdict: every node must verify clean.
	if err := fc.CheckFleetInvariants(); err != nil {
		return abort(nil, err)
	}
	for _, n := range fc.Nodes {
		if n.state == NodeHealed {
			n.state = NodeServing
		}
	}
	rep.Ticks = fc.now - start
	rep.Admission = fc.Adm.Stats()
	fc.event(obs.EvWaveDone, -1, uint64(rep.Completed), uint64(rep.Ticks))
	var at, dt, ac hw.Cycles
	done := 0
	for i := range rep.PerNode {
		if !rep.PerNode[i].HealedClean {
			continue
		}
		at += rep.PerNode[i].AttachCyc
		dt += rep.PerNode[i].DetachCyc
		ac += rep.PerNode[i].ActionCyc
		done++
	}
	if done > 0 {
		rep.MeanAttachCyc = at / hw.Cycles(done)
		rep.MeanDetachCyc = dt / hw.Cycles(done)
		rep.MeanActionCyc = ac / hw.Cycles(done)
	}
	return rep, nil
}

// recoverNode forces one node back to a clean native state after a wave
// abort: destroy anything it still hosts, detach if attached, verify.
func (fc *Controller) recoverNode(n *Node) error {
	mc := n.MC
	c := n.M.BootCPU()
	if mc.Mode() != core.ModeNative {
		for _, d := range mc.HostedDomains() {
			if err := mc.VMM.HypDomctlDestroy(c, mc.Dom, d.ID); err != nil {
				return fmt.Errorf("destroying leaked dom%d: %w", d.ID, err)
			}
		}
		if err := mc.SwitchSync(c, core.ModeNative); err != nil {
			return fmt.Errorf("detaching: %w", err)
		}
	}
	return nil
}
