package fleet

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

func testConfig(nodes int, standby bool) Config {
	return Config{
		Nodes:   nodes,
		Node:    NodeConfig{MemBytes: 48 << 20, Pages: 32},
		Standby: standby,
	}
}

func assertQuiescent(t *testing.T, fc *Controller) {
	t.Helper()
	for _, n := range fc.Nodes {
		if m := n.MC.Mode(); m != core.ModeNative {
			t.Errorf("%s left in mode %v", n.Name, m)
		}
		if doms := n.MC.HostedDomains(); len(doms) != 0 {
			t.Errorf("%s leaked %d hosted domains", n.Name, len(doms))
		}
	}
	if fc.Standby != nil {
		// Only the standby's own dom0 may remain.
		if n := len(fc.Standby.V.Domains); n != 1 {
			t.Errorf("standby holds %d domains; want 1 (dom0)", n)
		}
	}
	if d := fc.Adm.Depth(); d != 0 {
		t.Errorf("admission queue depth = %d; want 0", d)
	}
	if u := fc.Adm.InUse(); u != 0 {
		t.Errorf("admission slots in use = %d; want 0", u)
	}
	if err := fc.CheckFleetInvariants(); err != nil {
		t.Errorf("fleet invariants: %v", err)
	}
}

func TestWaveCheckpoint(t *testing.T) {
	col := obs.New(1)
	cfg := testConfig(4, false)
	cfg.Collector = col
	fc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fc.RunWave(WaveConfig{Action: ActionCheckpoint, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aborted {
		t.Fatalf("wave aborted: %s", rep.AbortReason)
	}
	if rep.Completed != 4 || len(rep.PerNode) != 4 {
		t.Fatalf("completed %d / %d reports; want 4 / 4", rep.Completed, len(rep.PerNode))
	}
	if len(rep.Batches) != 2 {
		t.Fatalf("batches = %d; want 2", len(rep.Batches))
	}
	for _, nr := range rep.PerNode {
		if !nr.HealedClean {
			t.Errorf("node%d did not verify clean", nr.Node)
		}
		if nr.ImagePages == 0 {
			t.Errorf("node%d checkpoint image empty", nr.Node)
		}
		if nr.AttachCyc == 0 || nr.DetachCyc == 0 || nr.ActionCyc == 0 {
			t.Errorf("node%d missing pipeline timings: %+v", nr.Node, nr)
		}
		if nr.ReleasedAt <= nr.GrantedAt {
			t.Errorf("node%d released at %d before grant %d", nr.Node, nr.ReleasedAt, nr.GrantedAt)
		}
	}
	if rep.Admission.MaxInUse > fc.Config().MaxVirtual {
		t.Errorf("MaxInUse %d exceeded MaxVirtual %d",
			rep.Admission.MaxInUse, fc.Config().MaxVirtual)
	}
	if rep.MeanAttachCyc == 0 || rep.MeanDetachCyc == 0 {
		t.Error("mean switch latencies missing")
	}
	for _, n := range fc.Nodes {
		if n.State() != NodeServing {
			t.Errorf("%s state = %v; want serving", n.Name, n.State())
		}
	}
	assertQuiescent(t, fc)

	// Telemetry flowed: the registry hands back the same instrument.
	if got := col.Registry.Counter("fleet", "nodes_maintained_total").Load(); got != 4 {
		t.Errorf("fleet/nodes_maintained_total = %d; want 4", got)
	}
	if got := col.Registry.Histogram("fleet", "node_attach_cycles").Count(); got != 4 {
		t.Errorf("fleet/node_attach_cycles count = %d; want 4", got)
	}
}

func TestWaveMigrate(t *testing.T) {
	fc, err := New(testConfig(3, true))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fc.RunWave(WaveConfig{Action: ActionMigrate, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 3 {
		t.Fatalf("completed %d; want 3", rep.Completed)
	}
	for _, nr := range rep.PerNode {
		if !nr.Migrated {
			t.Errorf("node%d migration did not commit", nr.Node)
		}
		if nr.DowntimeCyc == 0 {
			t.Errorf("node%d reports zero stop-and-copy downtime", nr.Node)
		}
	}
	assertQuiescent(t, fc)
}

func TestWaveMigrateNeedsStandby(t *testing.T) {
	fc, err := New(testConfig(1, false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.RunWave(WaveConfig{Action: ActionMigrate}); err == nil {
		t.Fatal("migrate wave without a standby succeeded")
	}
}

func TestWaveDeadlineExpiry(t *testing.T) {
	// One slot, whole batch arrives at once, deadline shorter than any
	// service time: the queued-behind requests must expire, and the wave
	// must still terminate cleanly.
	cfg := testConfig(3, false)
	cfg.MaxVirtual = 1
	fc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fc.RunWave(WaveConfig{
		Action:        ActionCheckpoint,
		BatchSize:     3,
		DeadlineTicks: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Expired == 0 {
		t.Fatal("no request expired under a 1-tick deadline")
	}
	if rep.Completed+rep.Expired != 3 {
		t.Fatalf("completed %d + expired %d != 3", rep.Completed, rep.Expired)
	}
	assertQuiescent(t, fc)
}

func TestWaveDeterminism(t *testing.T) {
	run := func() []byte {
		fc, err := New(testConfig(4, false))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := fc.RunWave(WaveConfig{Action: ActionCheckpoint, BatchSize: 2})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("two identical fleet runs diverged:\n%s\n%s", a, b)
	}
}

func TestWaveBoundUnderSaturation(t *testing.T) {
	// Everything arrives at once against a tight bound: the high-water
	// mark must still respect MaxVirtual.
	cfg := testConfig(6, false)
	cfg.MaxVirtual = 2
	fc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fc.RunWave(WaveConfig{Action: ActionCheckpoint, BatchSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admission.MaxInUse > 2 {
		t.Fatalf("MaxInUse = %d; bound was 2", rep.Admission.MaxInUse)
	}
	if rep.Completed != 6 {
		t.Fatalf("completed %d; want 6", rep.Completed)
	}
	assertQuiescent(t, fc)
}

func TestNodeLoad(t *testing.T) {
	n, err := NewNode(0, NodeConfig{MemBytes: 48 << 20, RunLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	if n.Load <= 0 {
		t.Fatalf("dbench load score = %v; want > 0", n.Load)
	}
}
