package fleet

import (
	"repro/internal/core"
)

// NodeSnap is one node's row in a fleet snapshot: what an operator
// watching `mercuryctl fleet -action top` sees per node.
type NodeSnap struct {
	ID    NodeID  `json:"id"`
	Name  string  `json:"name"`
	Mode  string  `json:"mode"`
	State string  `json:"state"`
	Load  float64 `json:"load,omitempty"`
	// Hosted counts unprivileged domains the node currently hosts
	// (non-zero only while virtual).
	Hosted int `json:"hosted,omitempty"`
	// Deferrals is the node's cumulative deferred-switch count — a
	// rising value flags a node whose maintenance keeps losing to
	// dirty-page churn.
	Deferrals uint64 `json:"deferrals,omitempty"`
}

// FleetSnap is a point-in-time view of the whole fleet, cheap enough to
// take every tick from the OnTick hook.
type FleetSnap struct {
	Tick       Tick `json:"tick"`
	Nodes      int  `json:"nodes"`
	Virtual    int  `json:"virtual"`
	QueueDepth int  `json:"queue_depth"`
	SlotsInUse int  `json:"slots_in_use"`
	SlotsMax   int  `json:"slots_max"`

	// Maintained is how many node maintenances have completed since
	// boot (the fleet/nodes_maintained_total counter).
	Maintained uint64 `json:"maintained"`

	// P99AttachCyc / P99DetachCyc are the fleet-wide switch-latency
	// tails from the obs histograms (0 without a collector or before
	// the first maintenance).
	P99AttachCyc float64 `json:"p99_attach_cyc"`
	P99DetachCyc float64 `json:"p99_detach_cyc"`

	// EventsTotal / EventsDropped report flight-recorder health: how
	// many events were ever recorded and how many the bounded ring had
	// to overwrite.
	EventsTotal   uint64 `json:"events_total"`
	EventsDropped uint64 `json:"events_dropped"`

	PerNode []NodeSnap `json:"per_node"`
}

// Snapshot captures the fleet's current state. It only reads — node
// modes via their atomics, admission bookkeeping, histogram tails — so
// it is safe to call from the OnTick hook at any cadence.
func (fc *Controller) Snapshot() FleetSnap {
	s := FleetSnap{
		Tick:       fc.now,
		Nodes:      len(fc.Nodes),
		QueueDepth: fc.Adm.Depth(),
		SlotsInUse: fc.Adm.InUse(),
		SlotsMax:   fc.cfg.MaxVirtual,
	}
	if fc.maintained != nil {
		s.Maintained = fc.maintained.Load()
	}
	if fc.attachCyc != nil {
		s.P99AttachCyc = fc.attachCyc.Quantile(0.99)
		s.P99DetachCyc = fc.detachCyc.Quantile(0.99)
	}
	if fc.events != nil {
		s.EventsTotal = fc.events.Total()
		s.EventsDropped = fc.events.Dropped()
	}
	for _, n := range fc.Nodes {
		mode := n.MC.Mode()
		if mode != core.ModeNative {
			s.Virtual++
		}
		ns := NodeSnap{
			ID:        n.ID,
			Name:      n.Name,
			Mode:      mode.String(),
			State:     n.state.String(),
			Load:      n.Load,
			Deferrals: n.MC.Stats.Deferred.Load(),
		}
		if mode != core.ModeNative {
			ns.Hosted = len(n.MC.HostedDomains())
		}
		s.PerNode = append(s.PerNode, ns)
	}
	return s
}
