package fleet

import (
	"errors"
	"testing"

	"repro/internal/guest"
	"repro/internal/obs"
)

func countKind(evs []obs.Event, kind obs.EventKind) int {
	n := 0
	for _, e := range evs {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// TestWaveRecordsFlightRecorder: a clean checkpoint wave leaves a full
// audit trail in the event log — the wave bracket, one admission grant
// and heal verdict per node, and the node-side mode switches recorded
// by the core switch ISR, attributed by node ID.
func TestWaveRecordsFlightRecorder(t *testing.T) {
	col := obs.New(1)
	cfg := testConfig(4, false)
	cfg.Collector = col
	fc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.RunWave(WaveConfig{Action: ActionCheckpoint, BatchSize: 1}); err != nil {
		t.Fatal(err)
	}

	evs := col.Events.Snapshot()
	if len(evs) == 0 {
		t.Fatal("no flight-recorder events")
	}
	if evs[0].Kind != obs.EvWaveStart || evs[0].Node != -1 {
		t.Errorf("first event = %v node %d; want fleet-level wave-start", evs[0].Kind, evs[0].Node)
	}
	last := evs[len(evs)-1]
	if last.Kind != obs.EvWaveDone || last.A != 4 {
		t.Errorf("last event = %v (A=%d); want wave-done with 4 completed", last.Kind, last.A)
	}
	if n := countKind(evs, obs.EvAdmissionGrant); n != 4 {
		t.Errorf("admission grants = %d; want 4", n)
	}
	if n := countKind(evs, obs.EvHealOK); n != 4 {
		t.Errorf("heal-ok = %d; want 4", n)
	}
	if n := countKind(evs, obs.EvCheckpointDone); n != 4 {
		t.Errorf("checkpoint-done = %d; want 4", n)
	}
	// Each node's attach and detach land as core-recorded mode switches.
	if n := countKind(evs, obs.EvModeSwitch); n != 8 {
		t.Errorf("mode-switch = %d; want 8 (attach+detach per node)", n)
	}
	// Node attribution: every node ID appears.
	seen := map[int32]bool{}
	for _, e := range evs {
		if e.Kind == obs.EvModeSwitch {
			seen[e.Node] = true
		}
	}
	for id := int32(0); id < 4; id++ {
		if !seen[id] {
			t.Errorf("no mode-switch event attributed to node %d", id)
		}
	}
}

// TestWaveAbortRecorded: a PreAttach fault aborts the wave and the
// flight recorder says so.
func TestWaveAbortRecorded(t *testing.T) {
	col := obs.New(1)
	cfg := testConfig(2, false)
	cfg.Collector = col
	fc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fc.PreAttach = func(n *Node, p *guest.Proc) (func(), error) {
		return nil, errors.New("injected pre-attach fault")
	}
	if _, err := fc.RunWave(WaveConfig{Action: ActionCheckpoint}); err == nil {
		t.Fatal("wave unexpectedly succeeded")
	}
	evs := col.Events.Snapshot()
	if n := countKind(evs, obs.EvWaveAbort); n != 1 {
		t.Errorf("wave-abort events = %d; want 1", n)
	}
	if n := countKind(evs, obs.EvWaveDone); n != 0 {
		t.Errorf("wave-done events = %d after abort; want 0", n)
	}
}

// TestSnapshotAndOnTick: the OnTick hook fires on the fleet clock and
// Snapshot reports consistent fleet state, including the switch-latency
// tails once maintenances have completed.
func TestSnapshotAndOnTick(t *testing.T) {
	col := obs.New(1)
	cfg := testConfig(3, false)
	cfg.Collector = col
	fc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	pre := fc.Snapshot()
	if pre.Nodes != 3 || pre.Maintained != 0 || pre.P99AttachCyc != 0 {
		t.Errorf("pre-wave snapshot %+v; want 3 idle nodes", pre)
	}

	ticks := 0
	fc.OnTick = func(now Tick) {
		ticks++
		s := fc.Snapshot()
		if s.Tick != now {
			t.Errorf("snapshot tick %d during OnTick(%d)", s.Tick, now)
		}
		if s.SlotsInUse > s.SlotsMax {
			t.Errorf("slots in use %d > max %d", s.SlotsInUse, s.SlotsMax)
		}
	}
	if _, err := fc.RunWave(WaveConfig{Action: ActionCheckpoint}); err != nil {
		t.Fatal(err)
	}
	if ticks == 0 {
		t.Fatal("OnTick never fired")
	}

	post := fc.Snapshot()
	if post.Maintained != 3 {
		t.Errorf("maintained = %d; want 3", post.Maintained)
	}
	if post.P99AttachCyc <= 0 || post.P99DetachCyc <= 0 {
		t.Errorf("p99 attach/detach = %.0f/%.0f; want > 0 after a wave",
			post.P99AttachCyc, post.P99DetachCyc)
	}
	if post.EventsTotal == 0 || post.EventsTotal != col.Events.Total() {
		t.Errorf("events total %d; log says %d", post.EventsTotal, col.Events.Total())
	}
	if len(post.PerNode) != 3 {
		t.Fatalf("per-node rows = %d; want 3", len(post.PerNode))
	}
	for _, n := range post.PerNode {
		if n.Mode != "native" || n.State != "serving" {
			t.Errorf("node %d post-wave: mode=%s state=%s; want native/serving",
				n.ID, n.Mode, n.State)
		}
	}
}

// TestMigrationEventsRecorded: a migrate wave logs one commit per node
// with its downtime payload.
func TestMigrationEventsRecorded(t *testing.T) {
	col := obs.New(1)
	cfg := testConfig(2, true)
	cfg.Collector = col
	fc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.RunWave(WaveConfig{Action: ActionMigrate}); err != nil {
		t.Fatal(err)
	}
	evs := col.Events.Snapshot()
	commits := 0
	for _, e := range evs {
		if e.Kind == obs.EvMigrationCommit {
			commits++
			if e.A == 0 {
				t.Errorf("migration commit on node %d with zero downtime payload", e.Node)
			}
		}
	}
	if commits != 2 {
		t.Errorf("migration commits = %d; want 2", commits)
	}
}
