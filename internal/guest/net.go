package guest

import (
	"repro/internal/hw"
)

// Network routing and process-level networking. Inbound frames arrive
// either from the native driver (NIC interrupt / pump) or from the
// netfront rx path, pass through the backend routing hook (frames bound
// for a hosted domainU), and land in the kernel's inbound queue.

// SetNetID assigns this kernel's link-layer address.
func (k *Kernel) SetNetID(id byte) { k.netID = id }

// NetID returns the kernel's link-layer address.
func (k *Kernel) NetID() byte { return k.netID }

// SetRxHook installs a filter that sees every inbound wire packet before
// local delivery; returning true consumes the packet (the net backend
// uses this to route domU-bound frames).
func (k *Kernel) SetRxHook(h func(c *hw.CPU, data []byte) bool) { k.rxHook = h }

// routeInbound classifies one wire packet.
func (k *Kernel) routeInbound(c *hw.CPU, data []byte) {
	c.Charge(k.M.Costs.NetStackRx)
	if k.rxHook != nil && k.rxHook(c, data) {
		return
	}
	fr, err := ParseFrame(data)
	if err != nil {
		return // runt frame: drop
	}
	if fr.Dst != k.netID {
		return // not ours: drop
	}
	k.acquire(c)
	k.netRx = append(k.netRx, fr)
	k.release(c)
	k.wakeAll(c, &k.netRxWait)
}

// nicISR services the NIC interrupt: drain deliverable packets.
func (k *Kernel) nicISR(c *hw.CPU) {
	if d, ok := k.Net.(*NativeNet); ok {
		d.drain(c)
	}
}

// popFrame removes the first queued frame matching proto (0 = any).
func (k *Kernel) popFrame(c *hw.CPU, proto byte) (Frame, bool) {
	k.acquire(c)
	defer k.release(c)
	for i, fr := range k.netRx {
		if proto == 0 || fr.Proto == proto {
			k.netRx = append(k.netRx[:i], k.netRx[i+1:]...)
			return fr, true
		}
	}
	return Frame{}, false
}

// SendFrame transmits one frame from process context.
func (p *Proc) SendFrame(fr Frame) {
	k := p.K
	fr.Src = k.netID
	p.Syscall(func(c *hw.CPU) { k.Net.Transmit(c, fr) })
}

// RecvFrame blocks until a frame with the given protocol (0 = any)
// arrives, and returns it.
func (p *Proc) RecvFrame(proto byte) Frame {
	k := p.K
	var out Frame
	p.Syscall(func(c *hw.CPU) {
		for {
			if fr, ok := k.popFrame(c, proto); ok {
				out = fr
				return
			}
			// Make receive progress: drive the device (native) or the
			// driver domain (frontend).
			if k.Net.Pump(c) {
				continue
			}
			k.sleepOn(&k.netRxWait, p)
			c = p.CPU()
		}
	})
	return out
}

// Ping sends one echo request with the given payload size and waits for
// the reply, returning the round-trip time in cycles.
func (p *Proc) Ping(dst byte, payload int) hw.Cycles {
	start := p.CPU().Now()
	p.SendFrame(Frame{Dst: dst, Proto: ProtoEcho, Payload: payload})
	_ = p.RecvFrame(ProtoEchoR)
	return p.CPU().Now() - start
}

// EchoReflector returns a hw.NIC reflector that answers ProtoEcho frames
// and swallows ProtoData (with a windowed ProtoAck for every ackEvery
// data frames, 0 = never) — the remote Iperf/ping endpoint.
func EchoReflector(localID byte, ackEvery int) func(hw.Packet) []hw.Packet {
	dataCount := 0
	return func(pkt hw.Packet) []hw.Packet {
		fr, err := ParseFrame(pkt.Data)
		if err != nil {
			return nil
		}
		switch fr.Proto {
		case ProtoEcho:
			reply := Frame{Dst: fr.Src, Src: fr.Dst, Proto: ProtoEchoR, Payload: fr.Payload}
			return []hw.Packet{{Data: reply.Marshal()}}
		case ProtoData:
			dataCount++
			if ackEvery > 0 && dataCount%ackEvery == 0 {
				ack := Frame{Dst: fr.Src, Src: fr.Dst, Proto: ProtoAck, Payload: 8}
				return []hw.Packet{{Data: ack.Marshal()}}
			}
		}
		return nil
	}
}
