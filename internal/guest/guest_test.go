package guest

import (
	"sync"
	"testing"

	"repro/internal/hw"
)

// nativeKernel boots a plain native kernel on a fresh machine.
func nativeKernel(t *testing.T, ncpu int) *Kernel {
	t.Helper()
	m := hw.NewMachine(hw.Config{MemBytes: 64 << 20, NumCPUs: ncpu})
	k, err := Boot(m, Config{Name: "test", Frames: m.Frames})
	if err != nil {
		t.Fatal(err)
	}
	k.Blk = &NativeBlock{K: k, Disk: m.Disk}
	k.Net = &NativeNet{K: k, NIC: m.NIC}
	k.SetNetID(1)
	return k
}

// run spawns an init process and drives the scheduler to completion.
func run(t *testing.T, k *Kernel, body Body) {
	t.Helper()
	boot := k.M.BootCPU()
	k.Spawn(boot, "init", DefaultImage("init"), body)
	k.Run(boot)
}

func TestProcessLifecycle(t *testing.T) {
	k := nativeKernel(t, 1)
	order := []string{}
	run(t, k, func(p *Proc) {
		order = append(order, "parent-start")
		child := p.Fork("child", func(cp *Proc) {
			order = append(order, "child")
			cp.Exit(42)
		})
		if child.Pid == p.Pid {
			t.Error("child shares parent pid")
		}
		pid, code, ok := p.Wait()
		order = append(order, "reaped")
		if !ok || pid != child.Pid || code != 42 {
			t.Errorf("wait = (%v,%v,%v)", pid, code, ok)
		}
	})
	if len(order) != 3 || order[2] != "reaped" {
		t.Fatalf("order = %v", order)
	}
}

func TestWaitWithNoChildren(t *testing.T) {
	k := nativeKernel(t, 1)
	run(t, k, func(p *Proc) {
		if _, _, ok := p.Wait(); ok {
			t.Error("wait with no children succeeded")
		}
	})
}

func TestForkCopyOnWrite(t *testing.T) {
	k := nativeKernel(t, 1)
	run(t, k, func(p *Proc) {
		base := p.Mmap(4, ProtRead|ProtWrite, true)
		c := p.CPU()
		c.WriteWord(base, 111)

		childSaw := make(chan uint32, 1)
		p.Fork("child", func(cp *Proc) {
			cc := cp.CPU()
			childSaw <- cc.ReadWord(base)
			// Child writes break COW privately.
			cc.WriteWord(base, 222)
			if got := cc.ReadWord(base); got != 222 {
				t.Errorf("child readback = %d", got)
			}
			cp.Exit(0)
		})
		p.Wait()
		if got := <-childSaw; got != 111 {
			t.Errorf("child saw %d before write", got)
		}
		// Parent unaffected by the child's write.
		if got := p.CPU().ReadWord(base); got != 111 {
			t.Errorf("parent sees %d after child wrote", got)
		}
	})
}

func TestForkSharesUntilWrite(t *testing.T) {
	k := nativeKernel(t, 1)
	run(t, k, func(p *Proc) {
		base := p.Mmap(1, ProtRead|ProtWrite, true)
		p.CPU().WriteWord(base, 9)
		pte, _ := p.AS.PT.Lookup(base)
		frame := pte.Frame()
		if k.pageRefCount(frame) != 1 {
			t.Errorf("pre-fork refcount = %d", k.pageRefCount(frame))
		}
		p.Fork("child", func(cp *Proc) {
			// Read-only access keeps sharing.
			_ = cp.CPU().ReadWord(base)
			if k.pageRefCount(frame) != 2 {
				t.Errorf("shared refcount = %d", k.pageRefCount(frame))
			}
			cp.Exit(0)
		})
		p.Wait()
		if k.pageRefCount(frame) != 1 {
			t.Errorf("post-reap refcount = %d", k.pageRefCount(frame))
		}
	})
}

func TestExecReplacesAddressSpace(t *testing.T) {
	k := nativeKernel(t, 1)
	run(t, k, func(p *Proc) {
		p.Fork("execer", func(cp *Proc) {
			oldRoot := cp.AS.PT.Root
			base := cp.Mmap(2, ProtRead|ProtWrite, true)
			_ = base
			cp.Exec(Image{Name: "other", TextPages: 10, DataPages: 5, StackPages: 2})
			if cp.AS.PT.Root == oldRoot {
				t.Error("exec kept the old root")
			}
			if cp.AS.findVMA(base) != nil {
				t.Error("old mmap survived exec")
			}
			cp.Exit(0)
		})
		p.Wait()
	})
}

func TestMemoryReclaimedAfterExit(t *testing.T) {
	k := nativeKernel(t, 1)
	var before int
	run(t, k, func(p *Proc) {
		before = k.Frames.InUse()
		p.Fork("hog", func(cp *Proc) {
			base := cp.Mmap(64, ProtRead|ProtWrite, true)
			cp.Touch(base, 64, true)
			cp.Exit(0)
		})
		p.Wait()
		// Shared text pages stay cached; everything private returns.
		after := k.Frames.InUse()
		if after > before+4 { // tolerance for cache growth
			t.Errorf("leak: %d frames before, %d after", before, after)
		}
	})
}

func TestDemandPagingFaultCounts(t *testing.T) {
	k := nativeKernel(t, 1)
	run(t, k, func(p *Proc) {
		start := k.Stats.PageFaults.Load()
		base := p.Mmap(8, ProtRead|ProtWrite, false) // lazy
		p.Touch(base, 8, true)
		faults := k.Stats.PageFaults.Load() - start
		if faults != 8 {
			t.Errorf("faults = %d, want 8", faults)
		}
		// Second touch: resident, no faults.
		start = k.Stats.PageFaults.Load()
		p.Touch(base, 8, true)
		if got := k.Stats.PageFaults.Load() - start; got != 0 {
			t.Errorf("re-touch faulted %d times", got)
		}
	})
}

func TestMprotectAndSegv(t *testing.T) {
	k := nativeKernel(t, 1)
	run(t, k, func(p *Proc) {
		base := p.Mmap(1, ProtRead|ProtWrite, true)
		p.Mprotect(base, ProtRead)
		caught := 0
		p.SegvHandler = func(sp *Proc, f *hw.TrapFrame) bool {
			caught++
			f.Skip = true
			return true
		}
		p.Touch(base, 1, true) // write to RO: signal, skipped
		if caught != 1 {
			t.Errorf("segv handler ran %d times", caught)
		}
		p.Mprotect(base, ProtRead|ProtWrite)
		p.SegvHandler = nil
		p.Touch(base, 1, true) // now fine
	})
}

func TestPipesBlockAndWake(t *testing.T) {
	k := nativeKernel(t, 1)
	run(t, k, func(p *Proc) {
		pipe := k.NewPipe()
		got := make([]int, 0, 2)
		p.Fork("reader", func(rp *Proc) {
			rp.PipeRead(pipe, 10)
			got = append(got, 1)
			rp.Exit(0)
		})
		p.Yield() // reader blocks first
		got = append(got, 0)
		p.PipeWrite(pipe, 10)
		p.Wait()
		if len(got) != 2 || got[0] != 0 || got[1] != 1 {
			t.Errorf("order = %v", got)
		}
	})
}

func TestTimersAndSleep(t *testing.T) {
	k := nativeKernel(t, 1)
	run(t, k, func(p *Proc) {
		c := p.CPU()
		start := c.Now()
		delay := k.M.Hz / 20 // 50 ms
		p.Sleep(delay)
		elapsed := p.CPU().Now() - start
		if elapsed < delay {
			t.Errorf("slept %d cycles, want >= %d", elapsed, delay)
		}
		// Resolution is the 10 ms tick.
		if elapsed > delay+k.M.Hz/50 {
			t.Errorf("overslept: %d cycles", elapsed)
		}
	})
}

func TestPreemptionByTick(t *testing.T) {
	k := nativeKernel(t, 1)
	var slices [2]int
	run(t, k, func(p *Proc) {
		for i := 0; i < 2; i++ {
			i := i
			p.Fork("spinner", func(sp *Proc) {
				// Two CPU hogs must interleave via tick preemption.
				for j := 0; j < 20; j++ {
					sp.Work(hw.Cycles(k.M.Hz / 100)) // 10 ms each
					slices[i]++
				}
				sp.Exit(0)
			})
		}
		p.Wait()
		p.Wait()
	})
	if slices[0] == 0 || slices[1] == 0 {
		t.Fatalf("a spinner starved: %v", slices)
	}
}

func TestSchedulerSMPRunsBothCPUs(t *testing.T) {
	k := nativeKernel(t, 2)
	boot := k.M.BootCPU()
	var mu sync.Mutex
	seen := make(map[int]bool)
	k.Spawn(boot, "init", DefaultImage("init"), func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Fork("w", func(wp *Proc) {
				// Yield repeatedly so both schedulers get many chances
				// to pick work up.
				for j := 0; j < 200; j++ {
					wp.Work(100_000)
					mu.Lock()
					seen[wp.CPU().ID] = true
					mu.Unlock()
					wp.Yield()
				}
				wp.Exit(0)
			})
		}
		for i := 0; i < 4; i++ {
			p.Wait()
		}
	})
	done := make(chan struct{})
	go func() { k.Run(k.M.CPUs[1]); close(done) }()
	k.Run(boot)
	<-done
	if len(seen) < 2 {
		t.Fatalf("work ran on %d CPUs: %v", len(seen), seen)
	}
}

func TestFSCreateWriteReadUnlink(t *testing.T) {
	k := nativeKernel(t, 1)
	run(t, k, func(p *Proc) {
		fd, err := p.Creat("/f")
		if err != nil {
			t.Fatal(err)
		}
		p.Write(fd, 10_000)
		p.Close(fd)

		if n, err := p.Stat("/f"); err != nil || n != 10_000 {
			t.Errorf("stat = (%d,%v)", n, err)
		}
		fd2, err := p.Open("/f")
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Read(fd2, 20_000); got != 10_000 {
			t.Errorf("read %d bytes", got)
		}
		p.Close(fd2)
		if err := p.Unlink("/f"); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Open("/f"); err == nil {
			t.Error("unlinked file still opens")
		}
	})
}

func TestFSWritebackHitsDisk(t *testing.T) {
	k := nativeKernel(t, 1)
	run(t, k, func(p *Proc) {
		fd, _ := p.Creat("/big")
		p.Write(fd, 256<<10) // 64 pages
		p.Close(fd)
		p.Syscall(func(c *hw.CPU) { k.FS.Sync(c) })
		if k.M.Disk.Stats.BytesWritten == 0 {
			t.Error("sync wrote nothing to disk")
		}
	})
}

func TestFSSurvivesCacheDropViaDisk(t *testing.T) {
	k := nativeKernel(t, 1)
	run(t, k, func(p *Proc) {
		fd, _ := p.Creat("/persist")
		p.Write(fd, 3*hw.PageSize)
		p.Close(fd)
		p.Syscall(func(c *hw.CPU) {
			k.FS.Sync(c)
			// Drop the cache: reads must come back from the disk.
			ino, err := k.FS.Open(c, "/persist")
			if err != nil {
				t.Error(err)
				return
			}
			for _, pg := range k.FS.DropCache(ino.Ino) {
				k.unrefPage(pg)
			}
			missesBefore := k.FS.Stats.CacheMisses
			k.FS.ReadAt(c, ino.Ino, 0, 3*hw.PageSize)
			if k.FS.Stats.CacheMisses == missesBefore {
				t.Error("dropped cache not refilled from disk")
			}
		})
		if k.M.Disk.Stats.BytesRead == 0 {
			t.Error("no disk reads after cache drop")
		}
	})
}

func TestDirectories(t *testing.T) {
	k := nativeKernel(t, 1)
	run(t, k, func(p *Proc) {
		p.Syscall(func(c *hw.CPU) {
			if _, err := k.FS.Mkdir(c, "/d"); err != nil {
				t.Error(err)
			}
			if _, err := k.FS.Mkdir(c, "/d/e"); err != nil {
				t.Error(err)
			}
			if _, err := k.FS.Create(c, "/d/e/f"); err != nil {
				t.Error(err)
			}
			if _, err := k.FS.Create(c, "/missing/f"); err == nil {
				t.Error("create under missing dir succeeded")
			}
		})
		if _, err := p.Open("/d/e/f"); err != nil {
			t.Error(err)
		}
	})
}

func TestNetEchoThroughReflector(t *testing.T) {
	k := nativeKernel(t, 1)
	k.M.NIC.Reflector = EchoReflector(1, 0)
	run(t, k, func(p *Proc) {
		rtt := p.Ping(2, 64)
		if rtt == 0 {
			t.Error("zero RTT")
		}
		fr := Frame{Dst: 2, Proto: ProtoData, Payload: 100}
		p.SendFrame(fr) // sunk by the reflector
	})
	if k.M.NIC.Stats.TxPackets.Load() != 2 {
		t.Fatalf("tx packets = %d", k.M.NIC.Stats.TxPackets.Load())
	}
}

func TestFrameMarshalRoundTrip(t *testing.T) {
	fr := Frame{Dst: 3, Src: 1, Proto: ProtoAck, Payload: 9, Data: []byte("ping-pong")}
	got, err := ParseFrame(fr.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Dst != 3 || got.Src != 1 || got.Proto != ProtoAck || got.Payload != 9 {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := ParseFrame([]byte{1}); err == nil {
		t.Fatal("runt frame parsed")
	}
}

func TestPrintkGoesToSerialNatively(t *testing.T) {
	k := nativeKernel(t, 1)
	run(t, k, func(p *Proc) {
		p.Printk("hello console")
		p.Printk("second line")
	})
	lines := k.M.Serial.Lines()
	if len(lines) != 2 || lines[0] != "hello console" || lines[1] != "second line" {
		t.Fatalf("serial lines = %q", lines)
	}
}

func TestSerialPortIsPrivileged(t *testing.T) {
	k := nativeKernel(t, 1)
	c := k.M.BootCPU()
	c.SetMode(hw.PL1)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("deprivileged port write did not fault")
		}
		c.SetMode(hw.PL0)
	}()
	k.M.Serial.WritePort(c, 'x') // no #GP handler for PL1 here: panics
}
