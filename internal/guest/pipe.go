package guest

import "repro/internal/hw"

// Pipe is a byte-counting kernel pipe — enough to reproduce the lmbench
// lat_ctx token-passing ring, where each read of an empty pipe blocks
// the reader and forces a context switch.
type Pipe struct {
	k       *Kernel
	avail   int
	cap     int
	readers waitQueue
	writers waitQueue
	closed  bool
}

// DefaultPipeCap matches the traditional 64 KB pipe buffer.
const DefaultPipeCap = 64 << 10

// NewPipe creates a pipe.
func (k *Kernel) NewPipe() *Pipe {
	return &Pipe{k: k, cap: DefaultPipeCap}
}

// Write adds n bytes, blocking while the buffer is full.
func (p *Proc) PipeWrite(pi *Pipe, n int) {
	k := p.K
	c := p.CPU()
	k.Stats.Syscalls.Add(1)
	c.Charge(k.M.Costs.SyscallEntry)
	rem := n
	for rem > 0 {
		k.acquire(c)
		space := pi.cap - pi.avail
		if space == 0 {
			k.release(c)
			k.sleepOn(&pi.writers, p)
			c = p.CPU()
			continue
		}
		chunk := rem
		if chunk > space {
			chunk = space
		}
		pi.avail += chunk
		rem -= chunk
		k.release(c)
		c.Charge(hw.Cycles(chunk/64+1) * k.M.Costs.MemWrite)
		k.wakeAll(c, &pi.readers)
	}
	c.Charge(k.M.Costs.SyscallExit)
}

// Read consumes n bytes, blocking until they are available.
func (p *Proc) PipeRead(pi *Pipe, n int) {
	k := p.K
	c := p.CPU()
	k.Stats.Syscalls.Add(1)
	c.Charge(k.M.Costs.SyscallEntry)
	rem := n
	for rem > 0 {
		k.acquire(c)
		if pi.avail == 0 {
			k.release(c)
			k.sleepOn(&pi.readers, p)
			c = p.CPU()
			continue
		}
		chunk := rem
		if chunk > pi.avail {
			chunk = pi.avail
		}
		pi.avail -= chunk
		rem -= chunk
		k.release(c)
		c.Charge(hw.Cycles(chunk/64+1) * k.M.Costs.MemRead)
		k.wakeAll(c, &pi.writers)
	}
	c.Charge(k.M.Costs.SyscallExit)
}
