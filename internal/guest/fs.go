package guest

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/hw"
)

// FS is the kernel's in-memory filesystem with a page cache backed by
// simulated physical frames and a block device underneath. Writes are
// buffered in the cache and flushed in batches (writeback), so the
// block driver — native or split frontend — sees realistic request
// streams.
type FS struct {
	k  *Kernel
	mu sync.Mutex

	root    *Inode
	nextIno uint64
	// nextBlock allocates disk blocks; sequential appends to one file
	// get contiguous blocks, so the block layer can merge.
	nextBlock uint64

	dirty      map[*Inode]map[int]bool
	dirtyCount int
	// WritebackThreshold is the dirty-page count that triggers a flush.
	WritebackThreshold int

	Stats FSStats
}

// FSStats counts filesystem activity.
type FSStats struct {
	Creates, Unlinks, Opens uint64
	CacheHits, CacheMisses  uint64
	PagesWritten, PagesRead uint64
	Writebacks              uint64
}

// Inode is one file or directory.
type Inode struct {
	Ino  uint64
	Name string
	Dir  bool

	children map[string]*Inode

	Size   int // bytes
	pages  map[int]*cachePage
	blocks map[int]uint64
	nlink  int
}

type cachePage struct {
	pfn   hw.PFN
	dirty bool
}

// File is an open file description.
type File struct {
	Ino *Inode
	Off int
}

// NewFS builds an empty filesystem.
func NewFS(k *Kernel) *FS {
	fs := &FS{
		k:                  k,
		nextIno:            2,
		nextBlock:          1,
		dirty:              make(map[*Inode]map[int]bool),
		WritebackThreshold: 256,
	}
	fs.root = &Inode{Ino: 1, Name: "/", Dir: true, children: make(map[string]*Inode), nlink: 1}
	return fs
}

// lookup walks path from the root. Caller holds fs.mu.
func (fs *FS) lookup(path string) (*Inode, error) {
	if path == "/" || path == "" {
		return fs.root, nil
	}
	cur := fs.root
	for _, part := range strings.Split(strings.Trim(path, "/"), "/") {
		if !cur.Dir {
			return nil, fmt.Errorf("fs: %s: not a directory", cur.Name)
		}
		next, ok := cur.children[part]
		if !ok {
			return nil, fmt.Errorf("fs: %s: no such file", path)
		}
		cur = next
	}
	return cur, nil
}

// splitDir returns the parent directory inode and final name component.
func (fs *FS) splitDir(path string) (*Inode, string, error) {
	i := strings.LastIndex(strings.TrimRight(path, "/"), "/")
	dirPath, name := path[:i], strings.Trim(path[i+1:], "/")
	if name == "" {
		return nil, "", fmt.Errorf("fs: empty name in %q", path)
	}
	dir, err := fs.lookup(dirPath)
	if err != nil {
		return nil, "", err
	}
	if !dir.Dir {
		return nil, "", fmt.Errorf("fs: %s: not a directory", dirPath)
	}
	return dir, name, nil
}

// Create makes a new empty file, replacing any existing one.
func (fs *FS) Create(c *hw.CPU, path string) (*Inode, error) {
	c.Charge(fs.k.M.Costs.PageCacheLookup) // dentry work
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir, name, err := fs.splitDir(path)
	if err != nil {
		return nil, err
	}
	var freed []hw.PFN
	if _, exists := dir.children[name]; exists {
		// O_CREAT semantics: the old file is replaced; release its name
		// (and pages, if this was the last link).
		freed, err = fs.unlinkLocked(c, dir, name)
		if err != nil {
			return nil, err
		}
	}
	ino := &Inode{
		Ino: fs.nextIno, Name: name,
		pages: make(map[int]*cachePage), blocks: make(map[int]uint64), nlink: 1,
	}
	fs.nextIno++
	dir.children[name] = ino
	fs.Stats.Creates++
	for _, pfn := range freed {
		fs.k.unrefPage(pfn) // touches only page accounting, not fs.mu
	}
	return ino, nil
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(c *hw.CPU, path string) (*Inode, error) {
	c.Charge(fs.k.M.Costs.PageCacheLookup)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir, name, err := fs.splitDir(path)
	if err != nil {
		return nil, err
	}
	ino := &Inode{Ino: fs.nextIno, Name: name, Dir: true,
		children: make(map[string]*Inode), nlink: 1}
	fs.nextIno++
	dir.children[name] = ino
	return ino, nil
}

// Open returns a file handle for path.
func (fs *FS) Open(c *hw.CPU, path string) (*File, error) {
	c.Charge(fs.k.M.Costs.PageCacheLookup)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, err := fs.lookup(path)
	if err != nil {
		return nil, err
	}
	fs.Stats.Opens++
	return &File{Ino: ino}, nil
}

// Stat charges the metadata lookup and returns size.
func (fs *FS) Stat(c *hw.CPU, path string) (int, error) {
	c.Charge(fs.k.M.Costs.PageCacheLookup)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, err := fs.lookup(path)
	if err != nil {
		return 0, err
	}
	return ino.Size, nil
}

// Unlink removes one name for a file; its cache pages and blocks are
// released with the last link.
func (fs *FS) Unlink(c *hw.CPU, path string) error {
	c.Charge(fs.k.M.Costs.PageCacheLookup)
	fs.mu.Lock()
	dir, name, err := fs.splitDir(path)
	if err != nil {
		fs.mu.Unlock()
		return err
	}
	frames, err := fs.unlinkLocked(c, dir, name)
	if err != nil {
		fs.mu.Unlock()
		return fmt.Errorf("fs: %s: %w", path, err)
	}
	fs.Stats.Unlinks++
	fs.mu.Unlock()
	for _, pfn := range frames {
		fs.k.unrefPage(pfn)
	}
	return nil
}

// cachePage returns the frame caching page idx of ino, reading it from
// disk (or zero-filling) on a miss. The frame stays referenced by the FS.
func (k *Kernel) cachePage(c *hw.CPU, ino *Inode, idx int) hw.PFN {
	fs := k.FS
	c.Charge(k.M.Costs.PageCacheLookup)
	fs.mu.Lock()
	if pg, ok := ino.pages[idx]; ok {
		fs.Stats.CacheHits++
		fs.mu.Unlock()
		return pg.pfn
	}
	fs.Stats.CacheMisses++
	blk, onDisk := ino.blocks[idx]
	fs.mu.Unlock()

	pfn := k.allocFrame(c, !onDisk)
	k.refPage(pfn)
	if onDisk {
		k.Blk.Submit(c, []BlockReq{{Block: blk, PFN: pfn}})
		fs.mu.Lock()
		fs.Stats.PagesRead++
		fs.mu.Unlock()
	}
	fs.mu.Lock()
	ino.pages[idx] = &cachePage{pfn: pfn}
	fs.mu.Unlock()
	return pfn
}

// WriteAt writes n bytes at offset off into ino through the page cache.
func (fs *FS) WriteAt(c *hw.CPU, ino *Inode, off, n int) {
	k := fs.k
	for n > 0 {
		idx := off >> hw.PageShift
		pgOff := off & hw.PageMask
		chunk := hw.PageSize - pgOff
		if chunk > n {
			chunk = n
		}
		pfn := k.cachePage(c, ino, idx)
		// Copy user bytes into the cache frame (contents are a marker
		// pattern; the cost is what matters).
		c.Charge(hw.Cycles(chunk) * k.M.Costs.PageCopy / hw.PageSize)
		fb := k.M.Mem.FrameBytes(pfn)
		for i := 0; i < chunk; i += 256 {
			fb[(pgOff+i)%hw.PageSize] = byte(off + i)
		}
		fs.mu.Lock()
		pg := ino.pages[idx]
		if !pg.dirty {
			pg.dirty = true
			if fs.dirty[ino] == nil {
				fs.dirty[ino] = make(map[int]bool)
			}
			fs.dirty[ino][idx] = true
			fs.dirtyCount++
		}
		if off+chunk > ino.Size {
			ino.Size = off + chunk
		}
		fs.Stats.PagesWritten++
		over := fs.dirtyCount >= fs.WritebackThreshold
		fs.mu.Unlock()
		if over {
			fs.Writeback(c)
		}
		off += chunk
		n -= chunk
	}
}

// ReadAt reads n bytes at offset off from ino through the page cache.
// Returns the number of bytes actually available.
func (fs *FS) ReadAt(c *hw.CPU, ino *Inode, off, n int) int {
	k := fs.k
	fs.mu.Lock()
	if off >= ino.Size {
		fs.mu.Unlock()
		return 0
	}
	if off+n > ino.Size {
		n = ino.Size - off
	}
	fs.mu.Unlock()
	rem := n
	for rem > 0 {
		idx := off >> hw.PageShift
		pgOff := off & hw.PageMask
		chunk := hw.PageSize - pgOff
		if chunk > rem {
			chunk = rem
		}
		_ = k.cachePage(c, ino, idx)
		c.Charge(hw.Cycles(chunk) * k.M.Costs.PageCopy / hw.PageSize)
		off += chunk
		rem -= chunk
	}
	return n
}

// Writeback flushes every dirty page, sorted by disk block so the block
// layer can merge contiguous runs.
func (fs *FS) Writeback(c *hw.CPU) {
	k := fs.k
	fs.mu.Lock()
	type flushPage struct {
		ino *Inode
		idx int
	}
	var pages []flushPage
	for ino, idxs := range fs.dirty {
		for idx := range idxs {
			pages = append(pages, flushPage{ino, idx})
		}
	}
	fs.dirty = make(map[*Inode]map[int]bool)
	fs.dirtyCount = 0
	if len(pages) == 0 {
		fs.mu.Unlock()
		return
	}
	fs.Stats.Writebacks++
	reqs := make([]BlockReq, 0, len(pages))
	for _, fp := range pages {
		pg := fp.ino.pages[fp.idx]
		if pg == nil {
			continue // unlinked while dirty
		}
		pg.dirty = false
		blk, ok := fp.ino.blocks[fp.idx]
		if !ok {
			blk = fs.nextBlock
			fs.nextBlock++
			fp.ino.blocks[fp.idx] = blk
		}
		reqs = append(reqs, BlockReq{Block: blk, Write: true, PFN: pg.pfn})
	}
	fs.mu.Unlock()
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].Block < reqs[j].Block })
	k.Blk.Submit(c, reqs)
}

// Close releases a file handle.
func (fs *FS) Close(c *hw.CPU, f *File) {
	c.Charge(fs.k.M.Costs.MemWrite * 4)
}

// Sync flushes all dirty state.
func (fs *FS) Sync(c *hw.CPU) { fs.Writeback(c) }

// DropCache evicts an inode's clean cached pages, returning the frames
// for the caller to unreference (memory-pressure reclaim; also used to
// force re-reads from disk in tests). Dirty pages are kept.
func (fs *FS) DropCache(ino *Inode) []hw.PFN {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out []hw.PFN
	for idx, pg := range ino.pages {
		if pg.dirty {
			continue
		}
		if _, onDisk := ino.blocks[idx]; !onDisk {
			continue // never written out: dropping would lose data
		}
		out = append(out, pg.pfn)
		delete(ino.pages, idx)
	}
	return out
}

// imageFile returns (creating and pre-caching on first use) the backing
// file for a program image; its cached text pages are shared by every
// process running that image.
func (fs *FS) imageFile(c *hw.CPU, img Image) *Inode {
	path := "/bin/" + img.Name
	fs.mu.Lock()
	bin, err := fs.lookup("/bin")
	fs.mu.Unlock()
	if err != nil {
		if bin, err = fs.Mkdir(c, "/bin"); err != nil {
			panic(err)
		}
	}
	_ = bin
	fs.mu.Lock()
	ino, err := fs.lookup(path)
	fs.mu.Unlock()
	if err == nil {
		return ino
	}
	ino, err = fs.Create(c, path)
	if err != nil {
		panic(err)
	}
	k := fs.k
	for i := 0; i < img.TextPages; i++ {
		pfn := k.allocFrame(c, true)
		k.refPage(pfn)
		fs.mu.Lock()
		ino.pages[i] = &cachePage{pfn: pfn}
		ino.Size = (i + 1) * hw.PageSize
		fs.mu.Unlock()
	}
	return ino
}

// --- process-level file syscalls ---

// Open opens path, returning a file descriptor.
func (p *Proc) Open(path string) (int, error) {
	k := p.K
	var f *File
	var err error
	p.Syscall(func(c *hw.CPU) { f, err = k.FS.Open(c, path) })
	if err != nil {
		return -1, err
	}
	return p.installFD(f), nil
}

// Creat creates (or truncates) path and opens it.
func (p *Proc) Creat(path string) (int, error) {
	k := p.K
	var ino *Inode
	var err error
	p.Syscall(func(c *hw.CPU) { ino, err = k.FS.Create(c, path) })
	if err != nil {
		return -1, err
	}
	return p.installFD(&File{Ino: ino}), nil
}

func (p *Proc) installFD(f *File) int {
	for i, slot := range p.fds {
		if slot == nil {
			p.fds[i] = f
			return i
		}
	}
	p.fds = append(p.fds, f)
	return len(p.fds) - 1
}

func (p *Proc) file(fd int) *File {
	if fd < 0 || fd >= len(p.fds) || p.fds[fd] == nil {
		panic(fmt.Sprintf("guest: bad fd %d in proc %d", fd, p.Pid))
	}
	return p.fds[fd]
}

// Write writes n bytes at the current offset.
func (p *Proc) Write(fd, n int) {
	k := p.K
	f := p.file(fd)
	p.Syscall(func(c *hw.CPU) {
		k.FS.WriteAt(c, f.Ino, f.Off, n)
		f.Off += n
	})
}

// Read reads up to n bytes at the current offset, returning the count.
func (p *Proc) Read(fd, n int) int {
	k := p.K
	f := p.file(fd)
	var got int
	p.Syscall(func(c *hw.CPU) {
		got = k.FS.ReadAt(c, f.Ino, f.Off, n)
		f.Off += got
	})
	return got
}

// Seek sets the file offset.
func (p *Proc) Seek(fd, off int) {
	f := p.file(fd)
	p.Syscall(func(c *hw.CPU) { f.Off = off })
}

// Close closes a descriptor.
func (p *Proc) Close(fd int) {
	k := p.K
	f := p.file(fd)
	p.fds[fd] = nil
	p.Syscall(func(c *hw.CPU) { k.FS.Close(c, f) })
}

// Unlink removes a file.
func (p *Proc) Unlink(path string) error {
	k := p.K
	var err error
	p.Syscall(func(c *hw.CPU) { err = k.FS.Unlink(c, path) })
	return err
}

// Stat queries file metadata.
func (p *Proc) Stat(path string) (int, error) {
	k := p.K
	var n int
	var err error
	p.Syscall(func(c *hw.CPU) { n, err = k.FS.Stat(c, path) })
	return n, err
}
