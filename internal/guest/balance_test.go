package guest

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hw"
)

// TestFrameBalanceAfterRandomWorkload: after an arbitrary mix of
// process, memory and file activity completes, every allocated frame is
// accounted for by the page cache — nothing leaks, nothing double-frees.
func TestFrameBalanceAfterRandomWorkload(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := nativeKernel(t, 1)
		boot := k.M.BootCPU()
		ok := true
		k.Spawn(boot, "chaos", DefaultImage("chaos"), func(p *Proc) {
			var regions []hw.VirtAddr
			for op := 0; op < 40; op++ {
				switch rng.Intn(6) {
				case 0:
					base := p.Mmap(1+rng.Intn(16), ProtRead|ProtWrite, rng.Intn(2) == 0)
					regions = append(regions, base)
				case 1:
					if len(regions) > 0 {
						i := rng.Intn(len(regions))
						p.Munmap(regions[i])
						regions = append(regions[:i], regions[i+1:]...)
					}
				case 2:
					if len(regions) > 0 {
						p.Touch(regions[rng.Intn(len(regions))], 1, true)
					}
				case 3:
					p.Fork("child", func(cp *Proc) {
						b := cp.Mmap(4, ProtRead|ProtWrite, true)
						cp.Touch(b, 4, true)
						cp.Exit(0)
					})
					p.Wait()
				case 4:
					fd, err := p.Creat("/tmpfile")
					if err == nil {
						p.Write(fd, (1+rng.Intn(8))*hw.PageSize)
						p.Close(fd)
					}
				case 5:
					_ = p.Unlink("/tmpfile")
				}
			}
			for _, base := range regions {
				p.Munmap(base)
			}
		})
		k.Run(boot)
		// Everything left in use is page cache (program images, files).
		inUse := k.Frames.InUse()
		cached := k.FS.CachedPages()
		// Page-table frames of exited processes were freed; only cache
		// frames remain.
		if inUse != cached {
			t.Logf("seed %d: in use %d != cached %d", seed, inUse, cached)
			ok = false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
