// Package guest implements the paravirtualizable operating system kernel
// Mercury self-virtualizes: processes with fork/exec, a scheduler,
// demand-paged address spaces over simulated page tables, a page cache
// and filesystem, block and network drivers in both native and split
// frontend variants, and a minimal network stack.
//
// Every virtualization-sensitive operation the kernel performs goes
// through its current virtualization object (internal/vo), so the same
// kernel runs on bare hardware (N-L, M-N), as a Xen driver domain (X-0,
// M-V) or as an unprivileged domain with split I/O (X-U, M-U), and can be
// relocated between those modes while running.
//
// MQBlockFrontend is the production frontend of the §5.2 split-device
// datapath (DESIGN.md §16): per-queue xen.IORing submission with
// coalesced doorbells (Kick rings only the queues whose push crossed
// the backend's advertised wake mark; ForceKick covers sub-threshold
// tails), grant-per-request buffer handoff, and a Drain loop that
// polls responses with the FINAL-CHECK re-arm so a suppressed
// doorbell can never strand a completion.
package guest
