package guest

import (
	"sort"
	"sync"

	"repro/internal/hw"
)

// timerWheel holds pending kernel timers. The 100 Hz tick drains due
// entries, so timer resolution is one tick — which is also the retry
// interval Mercury's deferred mode switch uses (§5.1.1: "e.g., every
// 10 ms").
type timerWheel struct {
	k  *Kernel
	mu sync.Mutex
	// items sorted by deadline.
	items []timerItem
}

type timerItem struct {
	deadline hw.Cycles
	fn       func(c *hw.CPU)
}

func newTimerWheel(k *Kernel) *timerWheel { return &timerWheel{k: k} }

// add registers fn to run at or after deadline.
func (w *timerWheel) add(c *hw.CPU, deadline hw.Cycles, fn func(c *hw.CPU)) {
	c.Charge(w.k.M.Costs.MemWrite * 4)
	w.mu.Lock()
	w.items = append(w.items, timerItem{deadline, fn})
	sort.SliceStable(w.items, func(i, j int) bool {
		return w.items[i].deadline < w.items[j].deadline
	})
	w.mu.Unlock()
}

// run executes every timer due at the current time on c.
func (w *timerWheel) run(c *hw.CPU) {
	now := c.Now()
	for {
		w.mu.Lock()
		if len(w.items) == 0 || w.items[0].deadline > now {
			w.mu.Unlock()
			return
		}
		it := w.items[0]
		w.items = w.items[1:]
		w.mu.Unlock()
		c.Charge(w.k.M.Costs.MemRead * 4)
		it.fn(c)
	}
}

// pending reports the number of queued timers.
func (w *timerWheel) pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.items)
}
