package guest

import (
	"testing"

	"repro/internal/hw"
)

func TestRename(t *testing.T) {
	k := nativeKernel(t, 1)
	run(t, k, func(p *Proc) {
		fd, _ := p.Creat("/a")
		p.Write(fd, 5000)
		p.Close(fd)
		if err := p.Rename("/a", "/b"); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Open("/a"); err == nil {
			t.Error("old name still resolves")
		}
		if n, err := p.Stat("/b"); err != nil || n != 5000 {
			t.Errorf("renamed file: size=%d err=%v", n, err)
		}
		// Rename into a directory.
		p.Syscall(func(c *hw.CPU) {
			if _, err := k.FS.Mkdir(c, "/d"); err != nil {
				t.Error(err)
			}
		})
		if err := p.Rename("/b", "/d/c"); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Stat("/d/c"); err != nil {
			t.Error(err)
		}
	})
}

func TestHardLinks(t *testing.T) {
	k := nativeKernel(t, 1)
	run(t, k, func(p *Proc) {
		fd, _ := p.Creat("/orig")
		p.Write(fd, 8192)
		p.Close(fd)
		if err := p.Link("/orig", "/alias"); err != nil {
			t.Fatal(err)
		}
		var n1, n2 int
		p.Syscall(func(c *hw.CPU) {
			n1, _ = k.FS.Nlink(c, "/orig")
		})
		if n1 != 2 {
			t.Fatalf("nlink = %d", n1)
		}
		// Removing one name keeps the data reachable via the other.
		if err := p.Unlink("/orig"); err != nil {
			t.Fatal(err)
		}
		if got := func() int {
			fd2, err := p.Open("/alias")
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close(fd2)
			return p.Read(fd2, 10000)
		}(); got != 8192 {
			t.Errorf("read %d via surviving link", got)
		}
		p.Syscall(func(c *hw.CPU) { n2, _ = k.FS.Nlink(c, "/alias") })
		if n2 != 1 {
			t.Fatalf("nlink after unlink = %d", n2)
		}
		// Last unlink frees everything.
		frames := k.Frames.InUse()
		if err := p.Unlink("/alias"); err != nil {
			t.Fatal(err)
		}
		if k.Frames.InUse() >= frames {
			t.Error("last unlink released no frames")
		}
		// Linking a directory is refused.
		p.Syscall(func(c *hw.CPU) {
			if _, err := k.FS.Mkdir(c, "/dir"); err != nil {
				t.Error(err)
			}
		})
		if err := p.Link("/dir", "/dir2"); err == nil {
			t.Error("hard-linked a directory")
		}
	})
}

func TestTruncate(t *testing.T) {
	k := nativeKernel(t, 1)
	run(t, k, func(p *Proc) {
		fd, _ := p.Creat("/t")
		p.Write(fd, 10*hw.PageSize)
		p.Close(fd)
		framesBefore := k.Frames.InUse()
		if err := p.Truncate("/t", 2*hw.PageSize); err != nil {
			t.Fatal(err)
		}
		if n, _ := p.Stat("/t"); n != 2*hw.PageSize {
			t.Errorf("size after truncate = %d", n)
		}
		if k.Frames.InUse() >= framesBefore {
			t.Error("truncate released no cache frames")
		}
		// Extending truncate only changes size.
		if err := p.Truncate("/t", 5*hw.PageSize); err != nil {
			t.Fatal(err)
		}
		if n, _ := p.Stat("/t"); n != 5*hw.PageSize {
			t.Errorf("size after extend = %d", n)
		}
		if err := p.Truncate("/nope", 0); err == nil {
			t.Error("truncated a missing file")
		}
	})
}

func TestReadDir(t *testing.T) {
	k := nativeKernel(t, 1)
	run(t, k, func(p *Proc) {
		p.Syscall(func(c *hw.CPU) {
			if _, err := k.FS.Mkdir(c, "/x"); err != nil {
				t.Error(err)
			}
		})
		for _, name := range []string{"/x/c", "/x/a", "/x/b"} {
			fd, _ := p.Creat(name)
			p.Write(fd, 100)
			p.Close(fd)
		}
		p.Syscall(func(c *hw.CPU) {
			if _, err := k.FS.Mkdir(c, "/x/sub"); err != nil {
				t.Error(err)
			}
		})
		ents, err := p.ReadDir("/x")
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 4 {
			t.Fatalf("entries = %d", len(ents))
		}
		// Name order, dirs flagged.
		want := []string{"a", "b", "c", "sub"}
		for i, e := range ents {
			if e.Name != want[i] {
				t.Fatalf("entry %d = %s, want %s", i, e.Name, want[i])
			}
		}
		if !ents[3].Dir || ents[0].Dir {
			t.Error("dir flags wrong")
		}
		if _, err := p.ReadDir("/x/a"); err == nil {
			t.Error("ReadDir on a file succeeded")
		}
	})
}
