package guest

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/hw"
	"repro/internal/pgtable"
	"repro/internal/vo"
	"repro/internal/xen"
)

// Config selects how the kernel is built and bound.
type Config struct {
	// Name labels the kernel instance in diagnostics.
	Name string
	// VO is the initial virtualization object (nil means Direct — an
	// unmodified native kernel).
	VO vo.Object
	// Frames is the kernel's physical memory partition.
	Frames *hw.FrameAllocator
	// Dom is the domain this kernel runs in, when it boots on a VMM.
	Dom *xen.Domain
	// VMM is set alongside Dom.
	VMM *xen.VMM
	// HzTicks is the timer frequency; the paper uses 100 Hz throughout.
	HzTicks uint64
	// ServiceOnly marks a kernel that only provides driver-domain
	// services (backends) and never runs its own scheduler or timer
	// tick — the passive dom0 of the X-U and M-U configurations.
	ServiceOnly bool
	// LazyMMU enables lazy-MMU batching: the MMU-heavy paths (fork's
	// entry stream, munmap's zap, mprotect, exit_mmap) open a lazy
	// section so a virtualized kernel pays one multicall per storm
	// instead of one hypercall per entry. Off by default — the Table 1
	// reproduction measures the unbatched per-entry stream.
	LazyMMU bool
}

// DefaultHzTicks is the 100 Hz timer frequency used in the evaluation.
const DefaultHzTicks = 100

// Kernel is one running operating system instance.
type Kernel struct {
	Name string
	M    *hw.Machine

	// obj is the current virtualization object; Mercury swaps it during
	// a mode switch. Access through VO()/SetVO.
	obj atomic.Pointer[voHolder]

	Frames *hw.FrameAllocator
	Dom    *xen.Domain
	VMM    *xen.VMM

	// IDT is the kernel's own trap table (installed directly in native
	// mode, registered with the VMM in virtual mode).
	IDT *hw.IDT
	// GDT is the kernel's descriptor table for native mode.
	GDT *hw.GDT

	// big kernel lock guarding scheduler and process state; acquisition
	// is charged so SMP contention shows up in the numbers.
	lk      kernelLock
	procs   map[Pid]*Proc
	nextPid Pid
	runq    []*Proc
	cur     []*Proc // per physical CPU
	nlive   atomic.Int64

	needResched atomic.Bool
	stopping    atomic.Bool

	// pageRefs counts sharers of anonymous/COW frames.
	pageRefs map[hw.PFN]int
	pagesMu  sync.Mutex

	FS  *FS
	Blk BlockDriver
	Net NetDriver

	timers  *timerWheel
	HzTicks uint64

	// LazyMMU mirrors Config.LazyMMU.
	LazyMMU bool

	// netID is this kernel's link-layer address.
	netID byte
	// netRx is the local inbound frame queue (filled by the NIC ISR).
	netRx     []Frame
	netRxWait waitQueue

	// rxHook, when set, filters inbound NIC frames before local
	// delivery; the net backend uses it to route domU-bound frames.
	rxHook func(c *hw.CPU, data []byte) bool

	Stats KernelStats
}

// KernelStats aggregates kernel-level counters.
type KernelStats struct {
	Forks       atomic.Uint64
	Execs       atomic.Uint64
	CtxSwitches atomic.Uint64
	Syscalls    atomic.Uint64
	PageFaults  atomic.Uint64
	Ticks       atomic.Uint64
}

// voHolder exists because atomic.Pointer needs a concrete type.
type voHolder struct{ o vo.Object }

// VO returns the kernel's current virtualization object.
func (k *Kernel) VO() vo.Object { return k.obj.Load().o }

// SetVO swaps the virtualization object (Mercury's relocation step).
func (k *Kernel) SetVO(o vo.Object) { k.obj.Store(&voHolder{o: o}) }

// Boot builds a kernel on m and installs its control state through the
// configured virtualization object.
func Boot(m *hw.Machine, cfg Config) (*Kernel, error) {
	if cfg.Frames == nil {
		return nil, fmt.Errorf("guest: Boot requires a frame partition")
	}
	if cfg.HzTicks == 0 {
		cfg.HzTicks = DefaultHzTicks
	}
	k := &Kernel{
		Name:     cfg.Name,
		M:        m,
		Frames:   cfg.Frames,
		Dom:      cfg.Dom,
		VMM:      cfg.VMM,
		procs:    make(map[Pid]*Proc),
		nextPid:  1,
		cur:      make([]*Proc, len(m.CPUs)),
		pageRefs: make(map[hw.PFN]int),
		HzTicks:  cfg.HzTicks,
		LazyMMU:  cfg.LazyMMU,
	}
	k.lk.savedIF = make([]bool, len(m.CPUs))
	if cfg.VO == nil {
		cfg.VO = vo.NewDirect(m)
	}
	k.SetVO(cfg.VO)
	k.timers = newTimerWheel(k)
	k.FS = NewFS(k)

	// Build descriptor tables. The kernel's own GDT carries the kernel
	// descriptors at the privilege level the current mode dictates.
	dpl := uint8(hw.PL0)
	if cfg.VO.Virtualized() {
		dpl = hw.PL1
	}
	k.GDT = hw.NewGDT(cfg.Name, dpl)
	k.IDT = hw.NewIDT(cfg.Name)
	k.installTraps()

	c := m.BootCPU()
	if !cfg.VO.Virtualized() {
		// Native boot: own the hardware tables, and bring up the
		// application processors with the same control state.
		c.Lgdt(k.GDT)
		for _, ap := range m.CPUs[1:] {
			ap.Lgdt(k.GDT)
			ap.Lidt(k.IDT)
			ap.IF = true
		}
	}
	k.VO().LoadInterruptTable(c, k.IDT)
	// Bind the device interrupt lines to the boot CPU. Which software
	// receives the vectors is decided by whichever IDT is installed —
	// the kernel's in native mode, the VMM's (which forwards to the
	// driver domain) in virtual mode.
	m.IOAPIC.Route(hw.IRQLineDisk, c.ID, hw.VecDisk)
	m.IOAPIC.Route(hw.IRQLineNIC, c.ID, hw.VecNIC)
	if k.Dom != nil && !cfg.ServiceOnly {
		k.VMM.HypBindVirqTimer(c, k.Dom, k.timerTick)
	}
	k.VO().SetInterrupts(c, true)
	if !cfg.ServiceOnly {
		k.armTick(c)
	}
	return k, nil
}

// KernelPL returns the privilege level kernel code currently runs at.
func (k *Kernel) KernelPL() uint8 {
	if k.VO().Virtualized() {
		return hw.PL1
	}
	return hw.PL0
}

// installTraps populates the kernel IDT.
func (k *Kernel) installTraps() {
	k.IDT.Set(hw.VecPageFault, hw.Gate{Present: true, Target: hw.PL0,
		Handler: k.pageFault})
	k.IDT.Set(hw.VecTimer, hw.Gate{Present: true, Target: hw.PL0,
		Handler: func(c *hw.CPU, f *hw.TrapFrame) { k.timerTick(c) }})
	k.IDT.Set(hw.VecDisk, hw.Gate{Present: true, Target: hw.PL0,
		Handler: func(c *hw.CPU, f *hw.TrapFrame) {
			c.Charge(k.M.Costs.MemRead) // completion bookkeeping
		}})
	k.IDT.Set(hw.VecNIC, hw.Gate{Present: true, Target: hw.PL0,
		Handler: func(c *hw.CPU, f *hw.TrapFrame) { k.nicISR(c) }})
	k.IDT.Set(hw.VecReschedIPI, hw.Gate{Present: true, Target: hw.PL0,
		Handler: func(c *hw.CPU, f *hw.TrapFrame) {
			k.needResched.Store(true)
		}})
}

// armTick programs the next periodic timer interrupt.
func (k *Kernel) armTick(c *hw.CPU) {
	period := k.M.Hz / k.HzTicks
	k.VO().ArmTimer(c, c.Now()+period)
}

// timerTick is the 100 Hz tick: run due kernel timers, re-arm, and ask
// for a reschedule.
func (k *Kernel) timerTick(c *hw.CPU) {
	k.Stats.Ticks.Add(1)
	c.Charge(k.M.Costs.MemRead * 8) // jiffies, process accounting
	k.timers.run(c)
	k.needResched.Store(true)
	k.armTick(c)
}

// --- kernel lock (charged) ---

type kernelLock struct {
	mu      sync.Mutex
	savedIF []bool // per-CPU interrupt flag saved across the section
}

// lockCharged spins for the kernel lock while keeping the CPU's clock
// advancing — essential under the cross-CPU lockstep: a waiter whose
// clock froze (a host-level blocking Lock) would deadlock against a
// holder throttling on that same clock. Returns whether the acquisition
// was contended.
func (k *Kernel) lockCharged(c *hw.CPU) bool {
	if k.lk.mu.TryLock() {
		return false
	}
	for !k.lk.mu.TryLock() {
		c.Charge(60) // spin-wait burns cycles, like a real spinlock
		runtime.Gosched()
	}
	return true
}

// acquire is spin_lock_irqsave: the critical section runs with
// interrupts disabled so a tick or IPI can never land while the lock is
// held on this CPU (which would self-deadlock an ISR that also needs
// it). Contended acquisitions cost extra, which is where the SMP rows
// of Table 2 get their latency.
func (k *Kernel) acquire(c *hw.CPU) {
	contended := k.lockCharged(c)
	k.lk.savedIF[c.ID] = c.IF
	c.IF = false
	cost := k.M.Costs.LockAcquire
	if contended {
		cost += k.M.Costs.LockContended
	}
	c.Charge(cost)
}

// release is spin_unlock_irqrestore.
func (k *Kernel) release(c *hw.CPU) {
	saved := k.lk.savedIF[c.ID]
	k.lk.mu.Unlock()
	c.IF = saved
}

// --- page reference counting (COW sharing) ---

// refPage increments the sharer count of pfn (1 on first use).
func (k *Kernel) refPage(pfn hw.PFN) {
	k.pagesMu.Lock()
	k.pageRefs[pfn]++
	k.pagesMu.Unlock()
}

// unrefPage decrements the count and frees the frame on last use.
func (k *Kernel) unrefPage(pfn hw.PFN) {
	k.pagesMu.Lock()
	n := k.pageRefs[pfn] - 1
	if n < 0 {
		k.pagesMu.Unlock()
		panic(fmt.Sprintf("guest: unref of unreferenced frame %d", pfn))
	}
	if n == 0 {
		delete(k.pageRefs, pfn)
		k.pagesMu.Unlock()
		k.Frames.Free(pfn)
		return
	}
	k.pageRefs[pfn] = n
	k.pagesMu.Unlock()
}

// ReleasePage drops one reference on a frame (exported for cache
// eviction by harness code; pairs with FS.DropCache).
func (k *Kernel) ReleasePage(pfn hw.PFN) { k.unrefPage(pfn) }

// pageRefCount reports the sharer count (for COW decisions and tests).
func (k *Kernel) pageRefCount(pfn hw.PFN) int {
	k.pagesMu.Lock()
	defer k.pagesMu.Unlock()
	return k.pageRefs[pfn]
}

// allocFrame takes a frame from the kernel's partition and charges the
// zeroing cost when zero is set.
func (k *Kernel) allocFrame(c *hw.CPU, zero bool) hw.PFN {
	pfn := k.Frames.Alloc()
	if pfn == hw.NoPFN {
		panic("guest: out of physical memory")
	}
	if zero {
		k.M.Mem.ZeroFrame(pfn)
		c.Charge(k.M.Costs.PageZero)
	}
	return pfn
}

// directWriter returns the raw writer used while building not-yet-live
// page-table trees (fresh trees are not validated until registered).
func (k *Kernel) directWriter() pgtable.WriteFn {
	return pgtable.DirectWriter(k.M.Mem)
}

// voWriter returns a writer routing stores through the current
// virtualization object (for live trees). The page-table walker
// re-reads the entry it just wrote (a structural PDE store installs
// the table the next step descends into), so inside a lazy-MMU section
// the deferred store must land before the writer returns.
func (k *Kernel) voWriter(c *hw.CPU) pgtable.WriteFn {
	return func(table hw.PFN, idx int, e hw.PTE) {
		o := k.VO()
		o.WritePTE(c, table, idx, e)
		o.FlushLazyMMU(c)
	}
}

// lazyBegin opens a lazy-MMU section around an MMU-heavy path when
// batching is enabled. The section's reference (held by the VO) also
// keeps a mode switch from committing mid-storm.
func (k *Kernel) lazyBegin(c *hw.CPU) {
	if k.LazyMMU {
		k.VO().BeginLazyMMU(c)
	}
}

// lazyEnd closes the section, draining any deferred operations.
func (k *Kernel) lazyEnd(c *hw.CPU) {
	if k.LazyMMU {
		k.VO().EndLazyMMU(c)
	}
}

// Shutdown stops scheduler loops once current work drains.
func (k *Kernel) Shutdown() { k.stopping.Store(true) }

// validateResumeFrame checks a popped saved frame against the live GDT,
// as the hardware iret microcode would: stale kernel selectors raise #GP.
func (k *Kernel) validateResumeFrame(c *hw.CPU, f *hw.TrapFrame) {
	g := c.GDTR
	if g == nil {
		return
	}
	c.Charge(k.M.Costs.SegReload)
	d := g.Entries[f.CS.Index()]
	if !d.Present || (f.CS.Index() == hw.GDTKernelCode && f.CS.RPL() != d.DPL) {
		c.RaiseGP(fmt.Sprintf("resume: cached selector %v but kernel DPL is %d",
			f.CS, d.DPL))
	}
}

// LiveRoots returns the page-directory root of every live address space
// — what Mercury's recompute pass must (re)validate at attach time. The
// roots are sorted so walk order (and its cycle accounting, including
// the sharded recompute's partition) does not inherit map-iteration
// randomness.
func (k *Kernel) LiveRoots(c *hw.CPU) []hw.PFN {
	k.lockCharged(c)
	defer k.releaseRaw()
	seen := make(map[hw.PFN]bool)
	var roots []hw.PFN
	for _, p := range k.procs {
		if p.AS != nil && !seen[p.AS.PT.Root] {
			seen[p.AS.PT.Root] = true
			roots = append(roots, p.AS.PT.Root)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	return roots
}

// SleepingProcs returns every process whose kernel stack holds cached
// interrupt frames — the set Mercury's selector-fixup stub walks.
func (k *Kernel) SleepingProcs(c *hw.CPU) []*Proc {
	k.lockCharged(c)
	defer k.releaseRaw()
	var out []*Proc
	for _, p := range k.procs {
		if len(p.SavedFrames) > 0 {
			out = append(out, p)
		}
	}
	return out
}

// AddTimer registers a kernel timer (Mercury's deferred-switch retry
// uses it).
func (k *Kernel) AddTimer(c *hw.CPU, deadline hw.Cycles, fn func(*hw.CPU)) {
	k.timers.add(c, deadline, fn)
}

// TimerUpcall returns the virtual-timer entry point for VIRQ binding.
func (k *Kernel) TimerUpcall() func(c *hw.CPU) { return k.timerTick }

// RearmTick reprograms the periodic tick through the current VO (used
// right after a mode switch rebinds the timer path).
func (k *Kernel) RearmTick(c *hw.CPU) { k.armTick(c) }

// NumLive returns the number of live (non-zombie) processes.
func (k *Kernel) NumLive() int64 { return k.nlive.Load() }

// TrapGates exports the kernel's trap table as a VMM registration list
// (Mercury's attach path re-registers the handlers behind the VMM).
func (k *Kernel) TrapGates() []xen.TrapEntry {
	entries := make([]xen.TrapEntry, 0, 16)
	for v := 0; v < hw.NumVectors; v++ {
		g := k.IDT.Get(v)
		if g.Present {
			entries = append(entries, xen.TrapEntry{Vector: v, Handler: g.Handler})
		}
	}
	return entries
}

// Printk writes a line to the kernel console. This is a sensitive I/O
// operation (§3.2.4): in native mode the bytes go straight out the
// serial port at PL0; in virtual mode port output would fault, so the
// kernel uses the VMM's console service instead. Mercury's mode switch
// relocates this path implicitly with the virtualization object.
func (k *Kernel) Printk(c *hw.CPU, msg string) {
	if vobj, ok := k.VO().(*vo.Virtual); ok {
		vobj.V.HypConsoleIO(c, vobj.D, msg)
		return
	}
	for i := 0; i < len(msg); i++ {
		k.M.Serial.WritePort(c, msg[i])
	}
	k.M.Serial.WritePort(c, '\n')
}

// Printk from process context.
func (p *Proc) Printk(msg string) {
	p.Syscall(func(c *hw.CPU) { p.K.Printk(c, msg) })
}
