package guest

import (
	"fmt"

	"repro/internal/hw"
)

// Fault injection for dependability testing: ways to put the kernel
// into the "incorrect state" the paper's future-work section worries a
// mode switch might encounter (§8), so the failure-resistant switch can
// be exercised.

// CorruptPageTableMapping plants, behind the kernel's back, a writable
// leaf mapping of one of this address space's own page-table frames —
// precisely the state the VMM's frame validation must reject, since a
// writable page-table page would let the (possibly compromised) kernel
// forge mappings. Returns an undo function that removes the corruption.
func (as *AddrSpace) CorruptPageTableMapping() (undo func(), err error) {
	mem := as.K.M.Mem
	// Find a present page directory entry: its L1 frame is the victim.
	var pt hw.PFN
	found := false
	for pdi := 0; pdi < hw.PTEntries && !found; pdi++ {
		pde := hw.ReadPTE(mem, as.PT.Root, pdi)
		if pde.Present() {
			pt = pde.Frame()
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("guest: address space has no page tables to corrupt")
	}
	// Find a free slot in that same table and map the table itself,
	// writable.
	for idx := hw.PTEntries - 1; idx >= 0; idx-- {
		if hw.ReadPTE(mem, pt, idx).Present() {
			continue
		}
		hw.WritePTE(mem, pt, idx,
			hw.MakePTE(pt, hw.PTEPresent|hw.PTEWrite|hw.PTEUser))
		slot := idx
		return func() { hw.WritePTE(mem, pt, slot, 0) }, nil
	}
	return nil, fmt.Errorf("guest: no free slot for corruption")
}
