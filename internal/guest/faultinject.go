package guest

import (
	"fmt"

	"repro/internal/hw"
)

// Fault injection for dependability testing: ways to put the kernel
// into the "incorrect state" the paper's future-work section worries a
// mode switch might encounter (§8), so the failure-resistant switch can
// be exercised.

// CorruptPageTableMapping plants, behind the kernel's back, a writable
// leaf mapping of one of this address space's own page-table frames —
// precisely the state the VMM's frame validation must reject, since a
// writable page-table page would let the (possibly compromised) kernel
// forge mappings. Returns an undo function that removes the corruption.
// The first present page directory entry is the victim; seeded campaigns
// use CorruptPageTableMappingPick instead.
func (as *AddrSpace) CorruptPageTableMapping() (undo func(), err error) {
	return as.CorruptPageTableMappingPick(func(int) int { return 0 })
}

// CorruptPageTableMappingPick is CorruptPageTableMapping with the victim
// page table chosen by pick(n) over the n present page-directory entries
// — the hook a seeded chaos campaign uses so the corruption site varies
// deterministically with the seed.
func (as *AddrSpace) CorruptPageTableMappingPick(pick func(n int) int) (undo func(), err error) {
	mem := as.K.M.Mem
	// Collect the present page directory entries: their L1 frames are
	// the candidate victims.
	var tables []hw.PFN
	for pdi := 0; pdi < hw.PTEntries; pdi++ {
		pde := hw.ReadPTE(mem, as.PT.Root, pdi)
		if pde.Present() {
			tables = append(tables, pde.Frame())
		}
	}
	if len(tables) == 0 {
		return nil, fmt.Errorf("guest: address space has no page tables to corrupt")
	}
	pt := tables[pick(len(tables))%len(tables)]
	// Find a free slot in that same table and map the table itself,
	// writable.
	for idx := hw.PTEntries - 1; idx >= 0; idx-- {
		if hw.ReadPTE(mem, pt, idx).Present() {
			continue
		}
		hw.WritePTE(mem, pt, idx,
			hw.MakePTE(pt, hw.PTEPresent|hw.PTEWrite|hw.PTEUser))
		slot := idx
		return func() { hw.WritePTE(mem, pt, slot, 0) }, nil
	}
	return nil, fmt.Errorf("guest: no free slot for corruption")
}

// ghostPid identifies the fabricated process InjectStaleSelector plants.
// Negative so it can never collide with a real Pid.
const ghostPid Pid = -2

// InjectStaleSelector plants a fake descheduled thread whose cached
// kernel-stack interrupt frame carries segment selectors at a privilege
// level no mode ever uses (RPL 2) — the stale-selector state §5.1.2's
// fixup stub exists to prevent, injected directly so the invariant
// checker can be exercised. The ghost is never runnable and owns no
// address space; the undo function removes it.
func (k *Kernel) InjectStaleSelector() (undo func(), err error) {
	k.acquireRaw()
	defer k.releaseRaw()
	if _, ok := k.procs[ghostPid]; ok {
		return nil, fmt.Errorf("guest: stale-selector ghost already injected")
	}
	const staleRPL = 2 // between kernel (0/1) and user (3): wrong in every mode
	ghost := &Proc{
		Pid:  ghostPid,
		Name: "ghost",
		K:    k,
		SavedFrames: []*hw.TrapFrame{{
			CS: hw.MakeSelector(hw.GDTKernelCode, staleRPL),
			SS: hw.MakeSelector(hw.GDTKernelData, staleRPL),
		}},
	}
	ghost.setState(ProcBlocked)
	k.procs[ghostPid] = ghost
	return func() {
		k.acquireRaw()
		delete(k.procs, ghostPid)
		k.releaseRaw()
	}, nil
}
