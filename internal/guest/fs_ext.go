package guest

import (
	"fmt"
	"sort"

	"repro/internal/hw"
)

// Extended filesystem operations: rename, hard links, truncate and
// directory listing — the rest of the surface dbench-class workloads
// exercise on a real kernel.

// Rename moves a file (or directory) to a new path, replacing any
// existing file there.
func (fs *FS) Rename(c *hw.CPU, oldPath, newPath string) error {
	c.Charge(fs.k.M.Costs.PageCacheLookup * 2) // two dentry walks
	fs.mu.Lock()
	defer fs.mu.Unlock()
	oldDir, oldName, err := fs.splitDir(oldPath)
	if err != nil {
		return err
	}
	ino, ok := oldDir.children[oldName]
	if !ok {
		return fmt.Errorf("fs: %s: no such file", oldPath)
	}
	newDir, newName, err := fs.splitDir(newPath)
	if err != nil {
		return err
	}
	delete(oldDir.children, oldName)
	newDir.children[newName] = ino
	ino.Name = newName
	return nil
}

// Link creates a hard link: both paths name the same inode.
func (fs *FS) Link(c *hw.CPU, oldPath, newPath string) error {
	c.Charge(fs.k.M.Costs.PageCacheLookup * 2)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, err := fs.lookup(oldPath)
	if err != nil {
		return err
	}
	if ino.Dir {
		return fmt.Errorf("fs: %s: cannot hard-link a directory", oldPath)
	}
	dir, name, err := fs.splitDir(newPath)
	if err != nil {
		return err
	}
	if _, exists := dir.children[name]; exists {
		return fmt.Errorf("fs: %s: already exists", newPath)
	}
	dir.children[name] = ino
	ino.nlink++
	return nil
}

// UnlinkKeepsDataWhileLinked is documented behaviour: Unlink drops one
// name; the inode's pages are released only with the last link. (The
// plain Unlink in fs.go handles the single-link case; this variant
// handles nlink bookkeeping.)
func (fs *FS) unlinkLocked(c *hw.CPU, dir *Inode, name string) ([]hw.PFN, error) {
	ino, ok := dir.children[name]
	if !ok {
		return nil, fmt.Errorf("fs: %s: no such file", name)
	}
	delete(dir.children, name)
	ino.nlink--
	if ino.nlink > 0 {
		return nil, nil // other names keep the data alive
	}
	if d, ok := fs.dirty[ino]; ok {
		fs.dirtyCount -= len(d)
		delete(fs.dirty, ino)
	}
	var frames []hw.PFN
	for _, pg := range ino.pages {
		frames = append(frames, pg.pfn)
	}
	ino.pages = make(map[int]*cachePage)
	return frames, nil
}

// Truncate sets the file size, dropping cache pages beyond the new end.
func (fs *FS) Truncate(c *hw.CPU, path string, size int) error {
	c.Charge(fs.k.M.Costs.PageCacheLookup)
	fs.mu.Lock()
	ino, err := fs.lookup(path)
	if err != nil {
		fs.mu.Unlock()
		return err
	}
	if ino.Dir {
		fs.mu.Unlock()
		return fmt.Errorf("fs: %s: is a directory", path)
	}
	var freed []hw.PFN
	if size < ino.Size {
		keep := (size + hw.PageSize - 1) >> hw.PageShift
		for idx, pg := range ino.pages {
			if idx >= keep {
				if pg.dirty {
					if d := fs.dirty[ino]; d != nil && d[idx] {
						delete(d, idx)
						fs.dirtyCount--
					}
				}
				freed = append(freed, pg.pfn)
				delete(ino.pages, idx)
				delete(ino.blocks, idx)
			}
		}
	}
	ino.Size = size
	fs.mu.Unlock()
	for _, pfn := range freed {
		fs.k.unrefPage(pfn)
	}
	return nil
}

// DirEntry is one directory listing entry.
type DirEntry struct {
	Name string
	Dir  bool
	Size int
}

// ReadDir lists a directory in name order.
func (fs *FS) ReadDir(c *hw.CPU, path string) ([]DirEntry, error) {
	c.Charge(fs.k.M.Costs.PageCacheLookup)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir, err := fs.lookup(path)
	if err != nil {
		return nil, err
	}
	if !dir.Dir {
		return nil, fmt.Errorf("fs: %s: not a directory", path)
	}
	out := make([]DirEntry, 0, len(dir.children))
	for name, ino := range dir.children {
		c.Charge(fs.k.M.Costs.MemRead * 4)
		out = append(out, DirEntry{Name: name, Dir: ino.Dir, Size: ino.Size})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Nlink reports the link count of a path.
func (fs *FS) Nlink(c *hw.CPU, path string) (int, error) {
	c.Charge(fs.k.M.Costs.PageCacheLookup)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, err := fs.lookup(path)
	if err != nil {
		return 0, err
	}
	return ino.nlink, nil
}

// --- process-level wrappers ---

// Rename moves oldPath to newPath.
func (p *Proc) Rename(oldPath, newPath string) error {
	var err error
	p.Syscall(func(c *hw.CPU) { err = p.K.FS.Rename(c, oldPath, newPath) })
	return err
}

// Link creates a hard link.
func (p *Proc) Link(oldPath, newPath string) error {
	var err error
	p.Syscall(func(c *hw.CPU) { err = p.K.FS.Link(c, oldPath, newPath) })
	return err
}

// Truncate resizes a file.
func (p *Proc) Truncate(path string, size int) error {
	var err error
	p.Syscall(func(c *hw.CPU) { err = p.K.FS.Truncate(c, path, size) })
	return err
}

// ReadDir lists a directory.
func (p *Proc) ReadDir(path string) ([]DirEntry, error) {
	var out []DirEntry
	var err error
	p.Syscall(func(c *hw.CPU) { out, err = p.K.FS.ReadDir(c, path) })
	return out, err
}

// CachedPages reports how many frames the page cache currently holds
// (all inodes), for memory-accounting checks.
func (fs *FS) CachedPages() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n := 0
	var walk func(ino *Inode)
	seen := make(map[*Inode]bool)
	walk = func(ino *Inode) {
		if seen[ino] {
			return
		}
		seen[ino] = true
		n += len(ino.pages)
		for _, ch := range ino.children {
			walk(ch)
		}
	}
	walk(fs.root)
	return n
}
