package guest

import (
	"fmt"
	"sort"

	"repro/internal/hw"
	"repro/internal/xen"
)

// BlockReq is one page-sized block transfer between a cache frame and
// the disk.
type BlockReq struct {
	Block uint64
	Write bool
	PFN   hw.PFN
}

// BlockDriver is the kernel's block-layer attachment point. The driver
// is one of the virtualization-sensitive I/O surfaces (§3.2.4): native
// kernels drive the disk directly, virtualized kernels go through the
// split frontend.
type BlockDriver interface {
	Name() string
	// Submit performs the batch, blocking until completion.
	Submit(c *hw.CPU, reqs []BlockReq)
}

// NativeBlock drives hw.Disk directly, with elevator-style merging of
// contiguous requests — what the native kernel's block layer does.
type NativeBlock struct {
	K    *Kernel
	Disk *hw.Disk
}

// Name identifies the driver.
func (d *NativeBlock) Name() string { return "native-blk" }

// RawDevice adapts the native driver into the backend's BlockDevice so
// requests forwarded from a frontend still pay the driver domain's
// block-layer costs.
func (d *NativeBlock) RawDevice() xen.BlockDevice { return rawBlock{d} }

type rawBlock struct{ d *NativeBlock }

func (r rawBlock) Submit(c *hw.CPU, req hw.DiskRequest, buf []byte) error {
	c.Charge(r.d.K.M.Costs.BlkDriverStack)
	return r.d.Disk.Submit(c, req, buf)
}

// Submit sorts, merges and issues the batch.
func (d *NativeBlock) Submit(c *hw.CPU, reqs []BlockReq) {
	if len(reqs) == 0 {
		return
	}
	sorted := make([]BlockReq, len(reqs))
	copy(sorted, reqs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Block < sorted[j].Block })
	for start := 0; start < len(sorted); {
		end := start + 1
		for end < len(sorted) &&
			sorted[end].Write == sorted[start].Write &&
			sorted[end].Block == sorted[end-1].Block+1 {
			end++
		}
		group := sorted[start:end]
		c.Charge(d.K.M.Costs.BlkDriverStack)
		buf := make([]byte, len(group)*hw.BlockSize)
		if group[0].Write {
			for i, q := range group {
				c.Charge(d.K.M.Costs.PageCopy)
				copy(buf[i*hw.BlockSize:(i+1)*hw.BlockSize], d.K.M.Mem.FrameBytes(q.PFN))
			}
		}
		if err := d.Disk.Submit(c, hw.DiskRequest{
			Block: group[0].Block, Write: group[0].Write,
			Blocks: len(group), Merged: len(group),
		}, buf); err != nil {
			panic(fmt.Sprintf("guest: disk: %v", err))
		}
		if !group[0].Write {
			for i, q := range group {
				c.Charge(d.K.M.Costs.PageCopy)
				copy(d.K.M.Mem.FrameBytes(q.PFN), buf[i*hw.BlockSize:(i+1)*hw.BlockSize])
			}
		}
		start = end
	}
}

// FrontendBlock is blkfront: requests are granted and queued on a shared
// ring; one event kick per batch wakes the backend in the driver domain,
// which completes them (possibly write-behind) and responds.
type FrontendBlock struct {
	K        *Kernel
	V        *xen.VMM
	D        *xen.Domain // this (frontend) domain
	Backend  xen.DomID   // the driver domain hosting the backend
	Ring     *xen.Ring[xen.BlkRequest, xen.BlkResponse]
	KickPort xen.Port // bound to the backend

	nextID uint64
}

// Name identifies the driver.
func (d *FrontendBlock) Name() string { return "blkfront" }

// Submit pushes the whole batch through the ring with a single
// notification, then collects responses (the backend runs synchronously
// on the event in this simulation, as on a uniprocessor Xen host).
func (d *FrontendBlock) Submit(c *hw.CPU, reqs []BlockReq) {
	if len(reqs) == 0 {
		return
	}
	pending := 0
	grants := make(map[uint64]xen.GrantRef, len(reqs))
	flush := func() {
		if pending == 0 {
			return
		}
		if err := d.V.EvtchnSend(c, d.D, d.KickPort); err != nil {
			panic(fmt.Sprintf("guest: blkfront kick: %v", err))
		}
		for i := 0; i < pending; i++ {
			resp, ok := d.Ring.GetResponse(c)
			if !ok {
				panic("guest: blkfront: missing response after backend ran")
			}
			if resp.Err != "" {
				panic(fmt.Sprintf("guest: blkfront: backend error: %s", resp.Err))
			}
			if ref, ok := grants[resp.ID]; ok {
				if err := d.D.GrantEnd(c, ref); err != nil {
					panic(fmt.Sprintf("guest: blkfront: %v", err))
				}
				delete(grants, resp.ID)
			}
		}
		pending = 0
	}
	for _, q := range reqs {
		id := d.nextID
		d.nextID++
		ref := d.D.GrantAccess(c, d.Backend, q.PFN, q.Write)
		grants[id] = ref
		for !d.Ring.PutRequest(c, xen.BlkRequest{
			ID: id, Block: q.Block, Write: q.Write, Grant: ref, Front: d.D.ID,
		}) {
			flush() // ring full: kick and drain
		}
		pending++
	}
	flush()
}
