package guest

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/hw"
)

// Pid identifies a process.
type Pid int

// ProcState is a process's scheduler state.
type ProcState int32

// Process states.
const (
	ProcRunnable ProcState = iota
	ProcRunning
	ProcBlocked
	ProcZombie
	ProcReaped
)

func (s ProcState) String() string {
	switch s {
	case ProcRunnable:
		return "runnable"
	case ProcRunning:
		return "running"
	case ProcBlocked:
		return "blocked"
	case ProcZombie:
		return "zombie"
	case ProcReaped:
		return "reaped"
	}
	return fmt.Sprintf("state%d", int32(s))
}

// Body is a process's user program. It runs on the process's goroutine
// and only while the process holds a CPU.
type Body func(p *Proc)

// Proc is one process. Its user program runs on a dedicated goroutine,
// but exactly one process goroutine per CPU executes at a time: the
// scheduler hands the CPU over a channel and the process hands it back
// when it blocks, yields or exits — a coroutine discipline standing in
// for the real kernel's context switching.
type Proc struct {
	Pid  Pid
	Name string
	K    *Kernel
	AS   *AddrSpace

	state atomic.Int32

	parent   *Proc
	children []*Proc

	resume chan *hw.CPU
	parked chan struct{}
	cpu    *hw.CPU

	fds      []*File
	exitCode int

	// SavedFrames models the interrupt frames cached on this thread's
	// kernel stack while it is descheduled. Mercury's selector-fixup
	// stub walks these during a mode switch (§5.1.2): the CS/SS pushed
	// at interrupt time carry the old mode's privilege bits.
	SavedFrames []*hw.TrapFrame

	// SegvHandler, when set, receives protection violations (the
	// process's SIGSEGV handler). Returning true means the fault was
	// handled (typically by setting the frame's Skip flag or repairing
	// the mapping).
	SegvHandler func(p *Proc, f *hw.TrapFrame) bool

	// workSlice controls preemption granularity for Work.
	workSlice hw.Cycles

	// lastTime is the TSC reading when the process last gave up a CPU;
	// dispatch aligns the next CPU's clock so time never runs backward
	// for a migrating process (cores share a synchronized TSC). Atomic:
	// a second scheduler may dispatch the process the instant it is
	// runnable, racing with the final bookkeeping of park.
	lastTime atomic.Uint64

	body Body
}

// State returns the scheduler state.
func (p *Proc) State() ProcState { return ProcState(p.state.Load()) }

func (p *Proc) setState(s ProcState) { p.state.Store(int32(s)) }

// CPU returns the CPU the process currently runs on. Only valid while
// running.
func (p *Proc) CPU() *hw.CPU {
	if p.cpu == nil {
		panic(fmt.Sprintf("guest: proc %d (%s) touched CPU while not running", p.Pid, p.Name))
	}
	return p.cpu
}

// newProc allocates the kernel-side process object.
func (k *Kernel) newProc(c *hw.CPU, name string, parent *Proc, body Body) *Proc {
	p := &Proc{
		Name:      name,
		K:         k,
		parent:    parent,
		resume:    make(chan *hw.CPU),
		parked:    make(chan struct{}),
		workSlice: k.M.Hz / k.HzTicks / 4,
		body:      body,
	}
	k.lockCharged(c)
	p.Pid = k.nextPid
	k.nextPid++
	k.procs[p.Pid] = p
	if parent != nil {
		parent.children = append(parent.children, p)
	}
	k.releaseRaw()
	k.nlive.Add(1)
	p.setState(ProcRunnable)

	go func() {
		c := <-p.resume
		p.cpu = c
		defer func() {
			if r := recover(); r != nil {
				// Surface guest panics on the host with context.
				panic(fmt.Sprintf("guest: proc %d (%s) crashed: %v", p.Pid, p.Name, r))
			}
		}()
		p.body(p)
		if p.State() != ProcZombie {
			p.Exit(0)
		}
	}()
	return p
}

// acquireRaw/releaseRaw take the kernel lock without a CPU to charge
// (setup paths outside simulated execution).
func (k *Kernel) acquireRaw() { k.lk.mu.Lock() }
func (k *Kernel) releaseRaw() { k.lk.mu.Unlock() }

// Spawn creates a new runnable process executing body in a fresh address
// space of the given image. The cost of building the address space is
// charged to the calling CPU.
func (k *Kernel) Spawn(c *hw.CPU, name string, img Image, body Body) *Proc {
	as := k.newAddrSpace(c, img)
	p := k.newProc(c, name, nil, body)
	p.AS = as
	k.enqueue(c, p)
	return p
}

// enqueue makes p runnable.
func (k *Kernel) enqueue(c *hw.CPU, p *Proc) {
	k.acquire(c)
	p.setState(ProcRunnable)
	k.runq = append(k.runq, p)
	k.release(c)
}

// dispatchable reports whether a queued entry is safe to context-switch
// into: a live, runnable member of the process table. Called with the
// kernel lock held.
func (k *Kernel) dispatchable(p *Proc) bool {
	if p == nil || p.State() != ProcRunnable {
		return false
	}
	_, known := k.procs[p.Pid]
	return known
}

// pickNext pops the next dispatchable process. Corrupt entries (dead or
// unknown processes — the §6.2 fault model) are never context-switched
// into; they stay queued for the runqueue sensor and repair to find.
func (k *Kernel) pickNext(c *hw.CPU) *Proc {
	k.acquire(c)
	defer k.release(c)
	for i, p := range k.runq {
		if !k.dispatchable(p) {
			continue
		}
		k.runq = append(k.runq[:i], k.runq[i+1:]...)
		return p
	}
	return nil
}

// hasRunnable reports whether the run queue holds a dispatchable entry
// (charged spin: idle-loop polling must keep the clock moving).
func (k *Kernel) hasRunnable(c *hw.CPU) bool {
	k.lockCharged(c)
	defer k.lk.mu.Unlock()
	for _, p := range k.runq {
		if k.dispatchable(p) {
			return true
		}
	}
	return false
}

// Current returns the process running on c, if any.
func (k *Kernel) Current(c *hw.CPU) *Proc { return k.cur[c.ID] }

// Run drives the scheduler on c until Shutdown is called and no work
// remains, or until every process has exited.
func (k *Kernel) Run(c *hw.CPU) {
	// Exactly one goroutine may execute on a CPU; wait out any
	// temporary idler (e.g. a cold-start mode switch's rendezvous
	// helper) before taking over.
	for !c.TryDrive() {
		runtime.Gosched()
	}
	defer c.ReleaseDrive()
	for {
		p := k.pickNext(c)
		if p == nil {
			if k.stopping.Load() || k.nlive.Load() == 0 {
				return
			}
			c.IdleUntil(func() bool {
				return k.hasRunnable(c) || k.stopping.Load() || k.nlive.Load() == 0
			})
			continue
		}
		k.dispatch(c, p)
	}
}

// RunUntil drives the scheduler on c until stop returns true (checked
// between timeslices); used by harnesses that orchestrate externally.
func (k *Kernel) RunUntil(c *hw.CPU, stop func() bool) {
	for !c.TryDrive() {
		runtime.Gosched()
	}
	defer c.ReleaseDrive()
	for !stop() {
		p := k.pickNext(c)
		if p == nil {
			if k.nlive.Load() == 0 {
				return
			}
			c.IdleUntil(func() bool {
				return k.hasRunnable(c) || stop() || k.nlive.Load() == 0
			})
			continue
		}
		k.dispatch(c, p)
	}
}

// dispatch context-switches to p and lets it run until it parks.
func (k *Kernel) dispatch(c *hw.CPU, p *Proc) {
	prev := k.cur[c.ID]
	if last := p.lastTime.Load(); c.Now() < last {
		// Migrating to a CPU whose idle loop lagged: TSCs are
		// synchronized, so bring this core's clock forward.
		c.Clk.Advance(last - c.Now())
	}
	k.switchContext(c, prev, p)
	k.cur[c.ID] = p
	p.setState(ProcRunning)
	p.resume <- c
	<-p.parked
	k.cur[c.ID] = nil
}

// switchContext performs the scheduler work and the sensitive part of a
// context switch: installing the next address space root (a CR3 load
// natively; stack_switch+new_baseptr hypercalls under a VMM).
func (k *Kernel) switchContext(c *hw.CPU, prev, next *Proc) {
	k.Stats.CtxSwitches.Add(1)
	// Scheduler bookkeeping: runqueue manipulation, accounting, FPU and
	// thread-state save/restore.
	c.Charge(k.M.Costs.CtxWork)
	if next.AS == nil {
		return // kernel thread: borrow previous mappings
	}
	if prev == nil || prev.AS == nil || prev.AS.PT.Root != next.AS.PT.Root {
		k.VO().ContextSwitch(c, next.AS.PT.Root)
	}
}

// park hands the CPU back to the scheduler and waits to run again. The
// interrupted context's segment selectors are cached in a saved frame on
// the thread's kernel stack — exactly the state Mercury's selector-fixup
// stub must patch if a mode switch happens while this thread sleeps
// (§5.1.2).
func (p *Proc) park() {
	k := p.K
	frame := &hw.TrapFrame{
		CS: hw.MakeSelector(hw.GDTKernelCode, k.KernelPL()),
		SS: hw.MakeSelector(hw.GDTKernelData, k.KernelPL()),
		IF: true,
	}
	p.SavedFrames = append(p.SavedFrames, frame)
	p.lastTime.Store(p.cpu.Now())
	p.cpu = nil
	p.parked <- struct{}{}
	c := <-p.resume
	p.cpu = c
	// Pop the saved frame, faulting if its cached privilege bits no
	// longer match the live descriptor table (the hazard the fixup
	// prevents).
	p.SavedFrames = p.SavedFrames[:len(p.SavedFrames)-1]
	k.validateResumeFrame(c, frame)
}

// Yield voluntarily releases the CPU.
func (p *Proc) Yield() {
	k := p.K
	c := p.CPU()
	k.enqueue(c, p)
	p.park()
}

// maybeResched yields if the tick asked for a reschedule.
func (p *Proc) maybeResched() {
	if p.K.needResched.CompareAndSwap(true, false) {
		p.Yield()
	}
}

// block parks the process in the Blocked state; a waker must requeue it.
func (p *Proc) block() {
	p.setState(ProcBlocked)
	p.park()
}

// wake makes a blocked process runnable again.
func (k *Kernel) wake(c *hw.CPU, p *Proc) {
	if p.State() == ProcBlocked {
		k.enqueue(c, p)
	}
}

// Work charges n cycles of user-mode computation, honoring preemption at
// timeslice boundaries.
func (p *Proc) Work(n hw.Cycles) {
	c := p.CPU()
	prev := c.SetMode(hw.PL3)
	for n > 0 {
		s := n
		if s > p.workSlice {
			s = p.workSlice
		}
		c.Charge(s)
		n -= s
		c.SetMode(prev)
		p.maybeResched()
		c = p.CPU() // may have migrated
		prev = c.SetMode(hw.PL3)
	}
	c.SetMode(prev)
}

// Exit terminates the process, releasing its address space and waking a
// waiting parent. It does not return.
func (p *Proc) Exit(code int) {
	k := p.K
	c := p.CPU()
	k.Stats.Syscalls.Add(1)
	c.Charge(k.M.Costs.SyscallEntry)
	p.exitCode = code
	for _, f := range p.fds {
		if f != nil {
			k.FS.Close(c, f)
		}
	}
	p.fds = nil
	if p.AS != nil {
		k.releaseAddrSpace(c, p.AS)
		p.AS = nil
	}
	p.setState(ProcZombie)
	k.nlive.Add(-1)
	if p.parent != nil {
		k.acquire(c)
		parent := p.parent
		k.release(c)
		if parent.State() == ProcBlocked {
			k.wake(c, parent)
		}
	}
	p.cpu = nil
	p.parked <- struct{}{}
	// Terminate the process goroutine; the kernel-side object lives on
	// as a zombie until reaped.
	runtime.Goexit()
}

// Wait blocks until some child exits, reaps it, and returns its pid and
// exit code. Returns ok=false if there are no children.
func (p *Proc) Wait() (Pid, int, bool) {
	k := p.K
	c := p.CPU()
	k.Stats.Syscalls.Add(1)
	c.Charge(k.M.Costs.SyscallEntry + k.M.Costs.SyscallExit)
	for {
		k.acquire(c)
		if len(p.children) == 0 {
			k.release(c)
			return 0, 0, false
		}
		for i, ch := range p.children {
			if ch.State() == ProcZombie {
				p.children = append(p.children[:i], p.children[i+1:]...)
				ch.setState(ProcReaped)
				delete(k.procs, ch.Pid)
				k.release(c)
				c.Charge(k.M.Costs.MemRead * 20) // reap bookkeeping
				return ch.Pid, ch.exitCode, true
			}
		}
		k.release(c)
		p.block()
		c = p.CPU()
	}
}

// Sleep blocks the process for d cycles of simulated time.
func (p *Proc) Sleep(d hw.Cycles) {
	k := p.K
	c := p.CPU()
	deadline := c.Now() + d
	k.timers.add(c, deadline, func(tc *hw.CPU) { k.wake(tc, p) })
	p.block()
}

// Syscall wraps fn in user->kernel->user privilege transitions with the
// architectural trap costs; fn runs at the kernel's privilege level.
func (p *Proc) Syscall(fn func(c *hw.CPU)) {
	k := p.K
	c := p.CPU()
	k.Stats.Syscalls.Add(1)
	c.Charge(k.M.Costs.SyscallEntry)
	prev := c.SetMode(k.KernelPL())
	fn(c)
	c = p.CPU()
	c.SetMode(prev)
	c.Charge(k.M.Costs.SyscallExit)
}

// --- wait queues ---

// waitQueue is a list of processes waiting for a condition.
type waitQueue struct {
	procs []*Proc
}

// sleepOn parks p on q (caller must already hold no kernel lock).
func (k *Kernel) sleepOn(q *waitQueue, p *Proc) {
	c := p.CPU()
	k.acquire(c)
	q.procs = append(q.procs, p)
	k.release(c)
	p.block()
}

// wakeAll moves every waiter on q to the run queue.
func (k *Kernel) wakeAll(c *hw.CPU, q *waitQueue) {
	k.acquire(c)
	ps := q.procs
	q.procs = nil
	k.release(c)
	for _, p := range ps {
		k.wake(c, p)
	}
}

// CheckRunqueue verifies scheduler-state integrity: every queued
// process must be a live, runnable member of the process table. The
// self-healing sensor (§6.2) polls this invariant. (Raw lock: sensors
// run from host-side orchestration as well as guest context.)
func (k *Kernel) CheckRunqueue() error {
	k.acquireRaw()
	defer k.releaseRaw()
	for _, p := range k.runq {
		if p == nil {
			return fmt.Errorf("guest: nil entry on run queue")
		}
		if st := p.State(); st == ProcZombie || st == ProcReaped {
			return fmt.Errorf("guest: dead process %d (%s) on run queue", p.Pid, st)
		}
		if _, ok := k.procs[p.Pid]; !ok {
			return fmt.Errorf("guest: unknown process %d on run queue", p.Pid)
		}
	}
	return nil
}

// RepairRunqueue removes invalid entries, returning how many were
// dropped. The healing VMM calls it with the kernel quiescent.
func (k *Kernel) RepairRunqueue(c *hw.CPU) int {
	k.lockCharged(c)
	defer k.releaseRaw()
	kept := k.runq[:0]
	dropped := 0
	for _, p := range k.runq {
		bad := p == nil
		if !bad {
			st := p.State()
			_, known := k.procs[p.Pid]
			bad = st == ProcZombie || st == ProcReaped || !known
		}
		if bad {
			dropped++
			c.Charge(k.M.Costs.MemWrite * 8)
			continue
		}
		kept = append(kept, p)
	}
	k.runq = kept
	return dropped
}

// InjectRunqueueCorruption places a dead process on the run queue —
// fault injection for the self-healing tests and example.
func (k *Kernel) InjectRunqueueCorruption() {
	k.acquireRaw()
	defer k.releaseRaw()
	ghost := &Proc{Pid: 9999, Name: "ghost", K: k}
	ghost.setState(ProcZombie)
	k.runq = append(k.runq, ghost)
}

// wakeOne wakes the first waiter, if any.
func (k *Kernel) wakeOne(c *hw.CPU, q *waitQueue) bool {
	k.acquire(c)
	if len(q.procs) == 0 {
		k.release(c)
		return false
	}
	p := q.procs[0]
	q.procs = q.procs[1:]
	k.release(c)
	k.wake(c, p)
	return true
}
