package guest

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/xen"
)

// Frame is one network frame in the simulation's trivial link format:
// a three-byte header (destination id, source id, protocol) followed by
// the payload.
type Frame struct {
	Dst, Src, Proto byte
	Payload         int    // payload length
	Data            []byte // payload bytes (may be shorter than Payload;
	// the wire carries Payload bytes regardless)
}

// Frame protocols.
const (
	ProtoEcho  byte = 1 // ping request; reflectors answer with ProtoEchoR
	ProtoEchoR byte = 2
	ProtoData  byte = 3 // iperf-style stream data
	ProtoAck   byte = 4
	ProtoMigr  byte = 5 // live-migration transport
)

// frameHeader is the wire header size.
const frameHeader = 3

// Marshal serializes the frame for the wire.
func (f Frame) Marshal() []byte {
	out := make([]byte, frameHeader+f.Payload)
	out[0], out[1], out[2] = f.Dst, f.Src, f.Proto
	copy(out[frameHeader:], f.Data)
	return out
}

// ParseFrame decodes a wire packet.
func ParseFrame(b []byte) (Frame, error) {
	if len(b) < frameHeader {
		return Frame{}, fmt.Errorf("guest: short frame (%d bytes)", len(b))
	}
	return Frame{
		Dst: b[0], Src: b[1], Proto: b[2],
		Payload: len(b) - frameHeader,
		Data:    b[frameHeader:],
	}, nil
}

// NetDriver is the kernel's network attachment point — the other
// virtualization-sensitive I/O surface (§3.2.4).
type NetDriver interface {
	Name() string
	Transmit(c *hw.CPU, fr Frame)
	// Pump makes receive progress when the kernel is waiting for a
	// frame: the native driver blocks on the NIC; the frontend asks the
	// driver domain to service the hardware. Returns false if no
	// progress is possible.
	Pump(c *hw.CPU) bool
}

// NativeNet drives the machine's NIC directly.
type NativeNet struct {
	K   *Kernel
	NIC *hw.NIC
}

// Name identifies the driver.
func (d *NativeNet) Name() string { return "native-net" }

// virtIRQ charges the physical-interrupt virtualization cost when the
// driver domain runs on a VMM: the device IRQ enters the hypervisor,
// becomes an event upcall, and the EOI needs a hypercall. On bare
// hardware this path is just the architectural IRQ cost (already charged
// at delivery).
func (d *NativeNet) virtIRQ(c *hw.CPU) {
	if d.K.VO().Virtualized() {
		c.Charge(d.K.M.Costs.PhysIRQVirt)
	}
}

// Transmit sends one frame. Each transmitted packet completes with a
// tx-done interrupt (the r8169 does not coalesce).
func (d *NativeNet) Transmit(c *hw.CPU, fr Frame) {
	c.Charge(d.K.M.Costs.NetStackTx)
	d.NIC.Transmit(c, hw.Packet{Data: fr.Marshal()})
	d.virtIRQ(c)
}

// Pump blocks on the NIC for the next packet and routes it. If the
// kernel has to wait (idle until the rx interrupt) and runs on a VMM,
// the VMM scheduler's wake-up latency applies: the vcpu blocked and the
// event must dispatch it again.
func (d *NativeNet) Pump(c *hw.CPU) bool {
	pkt, ok := d.NIC.Receive(c, true)
	if !ok {
		return false
	}
	// The packet has hit the wire; everything from here is processing
	// delay on top of its arrival time. On a VMM the blocked vcpu must
	// first be re-dispatched by the hypervisor scheduler.
	if d.K.VO().Virtualized() {
		c.Charge(d.K.M.Costs.DomSchedLatency)
	}
	d.virtIRQ(c)
	d.K.routeInbound(c, pkt.Data)
	return true
}

// TransmitRaw sends pre-framed wire bytes — the path the driver
// domain's net backend uses on behalf of a frontend.
func (d *NativeNet) TransmitRaw(c *hw.CPU, data []byte) {
	c.Charge(d.K.M.Costs.NetStackTx)
	d.NIC.Transmit(c, hw.Packet{Data: data})
}

// RawDevice adapts the native driver to the backend's PacketDevice.
func (d *NativeNet) RawDevice() xen.PacketDevice { return rawNet{d} }

type rawNet struct{ d *NativeNet }

func (r rawNet) Transmit(c *hw.CPU, data []byte) { r.d.TransmitRaw(c, data) }

// drain routes every packet deliverable right now (interrupt service).
func (d *NativeNet) drain(c *hw.CPU) {
	for {
		pkt, ok := d.NIC.Receive(c, false)
		if !ok {
			return
		}
		d.virtIRQ(c)
		d.K.routeInbound(c, pkt.Data)
	}
}

// FrontendNet is netfront: transmits via grant+ring+event to the driver
// domain, receives into pre-posted granted buffers.
type FrontendNet struct {
	K       *Kernel
	V       *xen.VMM
	D       *xen.Domain
	Backend xen.DomID
	TxRing  *xen.Ring[xen.NetTxRequest, xen.NetTxResponse]
	RxRing  *xen.Ring[xen.NetRxBuffer, xen.NetRxDone]
	TxKick  xen.Port
	// PumpBackend asks the driver domain to service the physical NIC
	// (stands in for the hardware interrupt that would schedule it).
	PumpBackend func(c *hw.CPU) bool

	nextID  uint64
	rxPost  map[uint64]rxPosted
	rxDepth int
}

type rxPosted struct {
	pfn   hw.PFN
	grant xen.GrantRef
}

// Name identifies the driver.
func (d *FrontendNet) Name() string { return "netfront" }

// defaultRxDepth is how many receive buffers stay posted.
const defaultRxDepth = 16

// ReplenishRx posts receive buffers until the configured depth is met.
func (d *FrontendNet) ReplenishRx(c *hw.CPU) {
	if d.rxPost == nil {
		d.rxPost = make(map[uint64]rxPosted)
	}
	depth := d.rxDepth
	if depth == 0 {
		depth = defaultRxDepth
	}
	for len(d.rxPost) < depth {
		pfn := d.K.allocFrame(c, false)
		ref := d.D.GrantAccess(c, d.Backend, pfn, false)
		id := d.nextID
		d.nextID++
		if !d.TxRingSafePostRx(c, xen.NetRxBuffer{ID: id, Grant: ref, Front: d.D.ID}) {
			// Ring full; revoke and stop.
			_ = d.D.GrantEnd(c, ref)
			d.K.Frames.Free(pfn)
			return
		}
		d.rxPost[id] = rxPosted{pfn: pfn, grant: ref}
	}
}

// TxRingSafePostRx posts one rx buffer (separated for clarity).
func (d *FrontendNet) TxRingSafePostRx(c *hw.CPU, b xen.NetRxBuffer) bool {
	return d.RxRing.PutRequest(c, b)
}

// Transmit copies the frame into a bounce frame, grants it, and kicks
// the backend.
func (d *FrontendNet) Transmit(c *hw.CPU, fr Frame) {
	c.Charge(d.K.M.Costs.NetStackTx)
	data := fr.Marshal()
	pfn := d.K.allocFrame(c, false)
	c.Charge(d.K.M.Costs.PageCopy)
	copy(d.K.M.Mem.FrameBytes(pfn), data)
	ref := d.D.GrantAccess(c, d.Backend, pfn, true)
	id := d.nextID
	d.nextID++
	if !d.TxRing.PutRequest(c, xen.NetTxRequest{ID: id, Grant: ref, Front: d.D.ID, Len: len(data)}) {
		panic("guest: netfront tx ring overflow")
	}
	if err := d.V.EvtchnSend(c, d.D, d.TxKick); err != nil {
		panic(fmt.Sprintf("guest: netfront kick: %v", err))
	}
	// Backend ran synchronously; reap the response.
	if resp, ok := d.TxRing.GetResponse(c); ok {
		if resp.Err != "" {
			panic(fmt.Sprintf("guest: netfront tx: %s", resp.Err))
		}
	}
	if err := d.D.GrantEnd(c, ref); err != nil {
		panic(fmt.Sprintf("guest: netfront: %v", err))
	}
	d.K.Frames.Free(pfn)
}

// HandleRxEvent drains completed receive buffers into the kernel's
// inbound queue; bound to the frontend's event-channel port.
func (d *FrontendNet) HandleRxEvent(c *hw.CPU) {
	for {
		done, ok := d.RxRing.GetResponse(c)
		if !ok {
			return
		}
		post, known := d.rxPost[done.ID]
		if !known {
			continue
		}
		delete(d.rxPost, done.ID)
		if done.Err == "" {
			data := make([]byte, done.Len)
			c.Charge(d.K.M.Costs.PageCopy)
			copy(data, d.K.M.Mem.FrameBytes(post.pfn)[:done.Len])
			d.K.routeInbound(c, data)
		}
		if err := d.D.GrantEnd(c, post.grant); err == nil {
			d.K.Frames.Free(post.pfn)
		}
		d.ReplenishRx(c)
	}
}

// Pump asks the driver domain to service the NIC, then drains whatever
// arrived for us.
func (d *FrontendNet) Pump(c *hw.CPU) bool {
	if d.PumpBackend == nil {
		return false
	}
	if !d.PumpBackend(c) {
		return false
	}
	d.HandleRxEvent(c)
	return true
}
