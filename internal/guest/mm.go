package guest

import (
	"fmt"
	"sort"

	"repro/internal/hw"
	"repro/internal/pgtable"
	"repro/internal/xen"
)

// Prot is a VMA protection mask.
type Prot uint8

// Protection bits.
const (
	ProtRead Prot = 1 << iota
	ProtWrite
	ProtExec
)

// VMAKind distinguishes mapping backings.
type VMAKind uint8

// Mapping kinds.
const (
	VMAAnon VMAKind = iota
	VMAFile         // shared read-only file pages (program text)
)

// VMA is one virtual memory area.
type VMA struct {
	Start, End hw.VirtAddr // [Start, End), page aligned
	Prot       Prot
	Kind       VMAKind
	File       *Inode
	FileOff    int // page offset into the file
}

// Pages returns the VMA length in pages.
func (v *VMA) Pages() int { return int((v.End - v.Start) >> hw.PageShift) }

// Canonical user address-space layout.
const (
	TextBase  hw.VirtAddr = 0x0800_0000
	MmapBase  hw.VirtAddr = 0x4000_0000
	StackTop  hw.VirtAddr = 0xBFFF_F000
	UserLimit hw.VirtAddr = 0xC000_0000
)

// Image describes a program binary: how many pages of (shared,
// file-backed) text, private data and stack it has. The defaults
// approximate the lmbench binary plus libc that the paper's process
// benchmarks repeatedly fork and exec.
type Image struct {
	Name       string
	TextPages  int
	DataPages  int
	StackPages int
}

// DefaultImage is the standard benchmark process image.
func DefaultImage(name string) Image {
	return Image{Name: name, TextPages: 180, DataPages: 220, StackPages: 32}
}

// AddrSpace is one process address space: a page-table tree plus the VMA
// list describing intent.
type AddrSpace struct {
	K    *Kernel
	PT   *pgtable.Tables
	vmas []*VMA
	rss  int // resident (mapped) pages

	mmapNext hw.VirtAddr
}

// newAddrSpace builds a fresh address space for img: text mapped lazily
// from the image's backing file, data and stack anonymous and lazy. The
// tree is built with direct stores (it is not live yet) and registered
// with the virtualization object before first use.
func (k *Kernel) newAddrSpace(c *hw.CPU, img Image) *AddrSpace {
	pt, err := pgtable.New(k.M.Mem, k.Frames.Alloc)
	if err != nil {
		panic(fmt.Sprintf("guest: %v", err))
	}
	as := &AddrSpace{K: k, PT: pt, mmapNext: MmapBase}
	text := &VMA{
		Start: TextBase,
		End:   TextBase + hw.VirtAddr(img.TextPages<<hw.PageShift),
		Prot:  ProtRead | ProtExec,
		Kind:  VMAFile,
		File:  k.FS.imageFile(c, img),
	}
	data := &VMA{
		Start: text.End,
		End:   text.End + hw.VirtAddr(img.DataPages<<hw.PageShift),
		Prot:  ProtRead | ProtWrite,
		Kind:  VMAAnon,
	}
	stack := &VMA{
		Start: StackTop - hw.VirtAddr(img.StackPages<<hw.PageShift),
		End:   StackTop,
		Prot:  ProtRead | ProtWrite,
		Kind:  VMAAnon,
	}
	as.vmas = []*VMA{text, data, stack}
	c.Charge(k.M.Costs.MemWrite * 40) // vma setup
	k.VO().RegisterRoot(c, pt.Root)
	return as
}

// findVMA returns the VMA containing va.
func (as *AddrSpace) findVMA(va hw.VirtAddr) *VMA {
	for _, v := range as.vmas {
		if va >= v.Start && va < v.End {
			return v
		}
	}
	return nil
}

// mapPage installs one resident page through the current virtualization
// object (the tree is live).
func (as *AddrSpace) mapPage(c *hw.CPU, va hw.VirtAddr, pfn hw.PFN, flags uint32) {
	k := as.K
	s, err := as.PT.SlotFor(va, k.Frames.Alloc, k.voWriter(c))
	if err != nil {
		panic(fmt.Sprintf("guest: %v", err))
	}
	k.VO().WritePTE(c, s.Table, s.Index, hw.MakePTE(pfn, flags|hw.PTEPresent))
	as.rss++
}

// pteFlags computes hardware flags for a VMA's pages. wr forces the
// writable bit off for COW.
func pteFlags(prot Prot, cow bool) uint32 {
	f := hw.PTEUser
	if prot&ProtWrite != 0 && !cow {
		f |= hw.PTEWrite
	}
	if cow {
		f |= hw.PTECow
	}
	return f
}

// HandleFault resolves a page fault in this address space. Returns an
// error for a true protection violation (the process's segv handler, if
// any, runs first).
func (as *AddrSpace) HandleFault(c *hw.CPU, p *Proc, f *hw.TrapFrame) error {
	k := as.K
	k.Stats.PageFaults.Add(1)
	c.Charge(k.M.Costs.FaultWork)
	va := f.Addr
	v := as.findVMA(va)
	if v == nil {
		return fmt.Errorf("guest: segfault at %#x (no mapping)", va)
	}
	if f.Write && v.Prot&ProtWrite == 0 {
		return fmt.Errorf("guest: write to read-only mapping at %#x", va)
	}

	pte, present := as.PT.Lookup(va)
	if present && f.Write && pte.Cow() {
		// Copy-on-write break.
		old := pte.Frame()
		if k.pageRefCount(old) > 1 {
			fresh := k.allocFrame(c, false)
			k.M.Mem.CopyFrame(fresh, old)
			c.Charge(k.M.Costs.PageCopy)
			k.refPage(fresh)
			s, _ := as.PT.ExistingSlot(va)
			k.VO().WritePTE(c, s.Table, s.Index,
				hw.MakePTE(fresh, pteFlags(v.Prot, false)|hw.PTEPresent))
			k.unrefPage(old)
		} else {
			// Sole owner: upgrade in place.
			s, _ := as.PT.ExistingSlot(va)
			k.VO().WritePTE(c, s.Table, s.Index,
				hw.MakePTE(old, pteFlags(v.Prot, false)|hw.PTEPresent))
		}
		k.VO().InvalidatePage(c, va)
		return nil
	}
	if present {
		// Spurious (e.g., TLB had stale entry) — refresh.
		k.VO().InvalidatePage(c, va)
		return nil
	}

	// Demand fill.
	switch v.Kind {
	case VMAFile:
		pgIdx := v.FileOff + int((va-v.Start)>>hw.PageShift)
		pfn := k.cachePage(c, v.File, pgIdx)
		k.refPage(pfn)
		as.mapPage(c, va, pfn, hw.PTEUser) // shared read-only
	case VMAAnon:
		pfn := k.allocFrame(c, true)
		k.refPage(pfn)
		as.mapPage(c, va, pfn, pteFlags(v.Prot, false))
	}
	return nil
}

// pageFault is the kernel's #PF entry point (native: installed in the
// hardware IDT; virtual: registered with the VMM and bounced).
func (k *Kernel) pageFault(c *hw.CPU, f *hw.TrapFrame) {
	p := k.cur[c.ID]
	if p == nil || p.AS == nil {
		panic(fmt.Sprintf("guest: page fault at %#x outside process context", f.Addr))
	}
	if err := p.AS.HandleFault(c, p, f); err != nil {
		if p.SegvHandler != nil {
			c.Charge(k.M.Costs.SignalDeliver)
			if p.SegvHandler(p, f) {
				return
			}
		}
		panic(err)
	}
}

// MmapAnon maps pages of anonymous memory, returning the base address.
// populate pre-faults every page with one batched sensitive update (as
// MAP_POPULATE does); otherwise pages fault in on demand.
func (as *AddrSpace) MmapAnon(c *hw.CPU, pages int, prot Prot, populate bool) hw.VirtAddr {
	k := as.K
	base := as.mmapNext
	as.mmapNext += hw.VirtAddr(pages << hw.PageShift)
	v := &VMA{Start: base, End: base + hw.VirtAddr(pages<<hw.PageShift), Prot: prot, Kind: VMAAnon}
	as.vmas = append(as.vmas, v)
	c.Charge(k.M.Costs.MemWrite * 12) // vma insert
	if !populate {
		return base
	}
	k.lazyBegin(c)
	defer k.lazyEnd(c)
	batch := make([]xen.MMUUpdate, 0, pages)
	for i := 0; i < pages; i++ {
		va := base + hw.VirtAddr(i<<hw.PageShift)
		c.Charge(k.M.Costs.MapPerPage)
		pfn := k.allocFrame(c, true)
		k.refPage(pfn)
		s, err := as.PT.SlotFor(va, k.Frames.Alloc, k.voWriter(c))
		if err != nil {
			panic(fmt.Sprintf("guest: %v", err))
		}
		batch = append(batch, xen.MMUUpdate{Table: s.Table, Index: s.Index,
			New: hw.MakePTE(pfn, pteFlags(prot, false)|hw.PTEPresent)})
		as.rss++
	}
	k.flushBatch(c, batch)
	return base
}

// mmuBatchMax is the multicall page limit: larger batches are split.
const mmuBatchMax = 128

// flushBatch issues a batched sensitive update in multicall-sized chunks.
func (k *Kernel) flushBatch(c *hw.CPU, batch []xen.MMUUpdate) {
	for len(batch) > 0 {
		n := len(batch)
		if n > mmuBatchMax {
			n = mmuBatchMax
		}
		k.VO().WritePTEBatch(c, batch[:n])
		batch = batch[n:]
	}
}

// Munmap removes the mapping starting at base (must match a whole VMA).
func (as *AddrSpace) Munmap(c *hw.CPU, base hw.VirtAddr) {
	k := as.K
	idx := -1
	for i, v := range as.vmas {
		if v.Start == base {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic(fmt.Sprintf("guest: munmap of unmapped base %#x", base))
	}
	v := as.vmas[idx]
	// zap_pte_range: each present entry is cleared with an individual
	// sensitive store (pinned tables leave no raw-write shortcut).
	var frames []hw.PFN
	k.lazyBegin(c)
	as.PT.VisitRange(v.Start, v.End, func(m pgtable.Mapping) bool {
		c.Charge(k.M.Costs.UnmapPerPage)
		k.VO().WritePTE(c, m.Slot.Table, m.Slot.Index, 0)
		frames = append(frames, m.PTE.Frame())
		as.rss--
		return true
	})
	// Drain before the frames are released: a deferred clear must reach
	// the VMM while the old frame's accounting references are still the
	// ones it will drop.
	k.lazyEnd(c)
	for _, pfn := range frames {
		k.unrefPage(pfn)
	}
	as.vmas = append(as.vmas[:idx], as.vmas[idx+1:]...)
	k.VO().FlushTLB(c)
}

// Mprotect changes the protection of the VMA starting at base, updating
// resident mappings with one batched sensitive update.
func (as *AddrSpace) Mprotect(c *hw.CPU, base hw.VirtAddr, prot Prot) {
	k := as.K
	v := as.findVMA(base)
	if v == nil || v.Start != base {
		panic(fmt.Sprintf("guest: mprotect of unmapped base %#x", base))
	}
	v.Prot = prot
	k.lazyBegin(c)
	defer k.lazyEnd(c)
	batch := make([]xen.MMUUpdate, 0, 8)
	as.PT.VisitRange(v.Start, v.End, func(m pgtable.Mapping) bool {
		cow := m.PTE.Cow()
		flags := pteFlags(prot, cow) | hw.PTEPresent
		batch = append(batch, xen.MMUUpdate{Table: m.Slot.Table, Index: m.Slot.Index,
			New: hw.MakePTE(m.PTE.Frame(), flags)})
		return true
	})
	k.flushBatch(c, batch)
	k.VO().FlushTLB(c)
}

// clone builds the child address space for fork. As in Xen-Linux
// 2.6.16, page-table pages are pinned from creation, so every entry
// copied into the child and every copy-on-write downgrade of a parent
// entry is an individual sensitive store — a direct write natively, a
// mediated update under a VMM. This per-entry stream is what makes
// paravirtual fork several times slower than native (Table 1).
func (as *AddrSpace) clone(c *hw.CPU) *AddrSpace {
	k := as.K
	c.Charge(k.M.Costs.ForkBase)

	// Child tree: an empty pinned root, filled entry by entry.
	childPT, err := pgtable.New(k.M.Mem, k.Frames.Alloc)
	if err != nil {
		panic(fmt.Sprintf("guest: fork: %v", err))
	}
	k.lazyBegin(c)
	defer k.lazyEnd(c)
	k.VO().RegisterRoot(c, childPT.Root)
	wr := k.voWriter(c)
	as.PT.Visit(func(m pgtable.Mapping) bool {
		c.Charge(k.M.Costs.ForkPerPage)
		k.refPage(m.PTE.Frame())
		entry := m.PTE
		if entry.Writable() {
			cow := entry.WithFlags(entry.Flags()&^hw.PTEWrite | hw.PTECow)
			// Parent downgrade, one sensitive store per entry.
			k.VO().WritePTE(c, m.Slot.Table, m.Slot.Index, cow)
			entry = cow
		}
		s, err := childPT.SlotFor(m.VA, k.Frames.Alloc, wr)
		if err != nil {
			panic(fmt.Sprintf("guest: fork: %v", err))
		}
		k.VO().WritePTE(c, s.Table, s.Index, entry)
		return true
	})
	k.VO().FlushTLB(c) // stale writable translations must go

	child := &AddrSpace{K: k, PT: childPT, mmapNext: as.mmapNext, rss: as.rss}
	child.vmas = make([]*VMA, len(as.vmas))
	for i, v := range as.vmas {
		cp := *v
		child.vmas[i] = &cp
	}
	return child
}

// releaseAddrSpace retires an address space. exit_mmap zaps each present
// entry individually (a sensitive store per entry, like any other
// page-table write on a pinned tree), then the empty tree is unpinned
// and its table frames freed.
func (k *Kernel) releaseAddrSpace(c *hw.CPU, as *AddrSpace) {
	var frames []hw.PFN
	k.lazyBegin(c)
	as.PT.Visit(func(m pgtable.Mapping) bool {
		c.Charge(k.M.Costs.UnmapPerPage / 2)
		k.VO().WritePTE(c, m.Slot.Table, m.Slot.Index, 0)
		frames = append(frames, m.PTE.Frame())
		return true
	})
	k.VO().ReleaseRoot(c, as.PT.Root)
	// Drain the deferred zap + unpin before the table and data frames go
	// back to the allocator (see Munmap).
	k.lazyEnd(c)
	sort.Slice(frames, func(i, j int) bool { return frames[i] < frames[j] })
	for _, pfn := range frames {
		k.unrefPage(pfn)
	}
	as.PT.Free(k.Frames.Free)
}

// TouchWorkingSet re-touches a resident working set after a context
// switch: every page costs a TLB refill plus its share of cold cache
// lines (the lmbench lat_ctx working-set effect).
func (as *AddrSpace) TouchWorkingSet(c *hw.CPU, base hw.VirtAddr, pages int, coldLines hw.Cycles) {
	prev := c.SetMode(hw.PL3)
	for i := 0; i < pages; i++ {
		c.TouchPage(base + hw.VirtAddr(i<<hw.PageShift))
		c.Charge(coldLines)
	}
	c.SetMode(prev)
}

// TouchRange touches one word in each page of [base, base+pages), with
// write access if wr is set — the demand-fault driver used by exec and
// the benchmarks.
func (as *AddrSpace) TouchRange(c *hw.CPU, p *Proc, base hw.VirtAddr, pages int, wr bool) {
	prev := c.SetMode(hw.PL3)
	for i := 0; i < pages; i++ {
		va := base + hw.VirtAddr(i<<hw.PageShift)
		if wr {
			c.WriteWord(va, uint32(va))
		} else {
			_ = c.ReadWord(va)
		}
	}
	c.SetMode(prev)
}
