package guest

import (
	"fmt"
	"sync/atomic"

	"repro/internal/hw"
	"repro/internal/xen"
)

// MQIORequest is one asynchronous block transfer submitted to the
// multi-queue frontend. The caller owns ID allocation (it is how the
// submitter matches completions back to requests).
type MQIORequest struct {
	ID    uint64
	Block uint64
	Write bool
	PFN   hw.PFN
}

// MQFrontQueue is the frontend half of one hardware queue.
type MQFrontQueue struct {
	Ring     *xen.IORing[xen.BlkRequest, xen.BlkResponse]
	KickPort xen.Port // bound to the backend's per-queue event port

	outstanding int
	grants      map[uint64]xen.GrantRef
	pushBuf     []xen.BlkRequest
	respBuf     []xen.BlkResponse
	kickPending bool
}

// MQFrontStats counts frontend-side datapath activity.
type MQFrontStats struct {
	Submitted   atomic.Uint64
	Completed   atomic.Uint64
	Errors      atomic.Uint64
	ForcedKicks atomic.Uint64 // unconditional drain-path doorbells
}

// MQBlockFrontend is the asynchronous multi-queue blkfront: per-vCPU
// queues submitted in bursts, doorbells decided by the event-index
// protocol and — when several queues need kicking — folded into one
// multicall, so a whole submission sweep costs a single VMM entry.
// Unlike FrontendBlock it never blocks: completions come back through
// Poll, which is what lets a mode switch find (and drain) in-flight
// requests.
type MQBlockFrontend struct {
	V       *xen.VMM
	D       *xen.Domain // this (frontend) domain
	Backend xen.DomID

	// RespThreshold is the completion-doorbell re-arm distance
	// advertised to the backend: ask to be woken only once this many
	// responses queue. The submitter's poll loop covers the trickle.
	RespThreshold int

	Queues []*MQFrontQueue

	mc    xen.Multicall
	Stats MQFrontStats
}

// NewMQBlockFrontend builds an empty frontend; wire queues with
// AddQueue after negotiating rings and ports.
func NewMQBlockFrontend(v *xen.VMM, d *xen.Domain, backend xen.DomID, respThreshold int) *MQBlockFrontend {
	if respThreshold < 1 {
		respThreshold = 1
	}
	return &MQBlockFrontend{V: v, D: d, Backend: backend, RespThreshold: respThreshold}
}

// AddQueue attaches one negotiated queue: the shared ring and the
// frontend's bound doorbell port.
func (f *MQBlockFrontend) AddQueue(ring *xen.IORing[xen.BlkRequest, xen.BlkResponse], kick xen.Port) {
	f.Queues = append(f.Queues, &MQFrontQueue{
		Ring:     ring,
		KickPort: kick,
		grants:   make(map[uint64]xen.GrantRef, ring.Capacity()),
		pushBuf:  make([]xen.BlkRequest, 0, ring.Capacity()),
		respBuf:  make([]xen.BlkResponse, ring.Capacity()),
	})
}

// SubmitAsync pushes as many of reqs as queue qi has room for (the
// outstanding count may never exceed ring capacity — a response needs
// the slot its request freed) and returns how many were accepted.
// Grants are taken per request; the doorbell decision is one per push
// and is only recorded — Kick sends the batched notifications.
func (f *MQBlockFrontend) SubmitAsync(c *hw.CPU, qi int, reqs []MQIORequest) int {
	q := f.Queues[qi]
	room := q.Ring.Capacity() - q.outstanding
	if room <= 0 || len(reqs) == 0 {
		return 0
	}
	if len(reqs) > room {
		reqs = reqs[:room]
	}
	q.pushBuf = q.pushBuf[:0]
	for _, r := range reqs {
		ref := f.D.GrantAccess(c, f.Backend, r.PFN, r.Write)
		q.grants[r.ID] = ref
		q.pushBuf = append(q.pushBuf, xen.BlkRequest{
			ID: r.ID, Block: r.Block, Write: r.Write, Grant: ref, Front: f.D.ID,
		})
	}
	n, notify := q.Ring.PushRequests(c, q.pushBuf)
	if n != len(q.pushBuf) {
		// Capacity was checked against outstanding; a short push means
		// the accounting is broken, not that the ring is busy.
		panic(fmt.Sprintf("guest: blkmq queue %d: pushed %d of %d with %d outstanding",
			qi, n, len(q.pushBuf), q.outstanding))
	}
	q.outstanding += n
	f.Stats.Submitted.Add(uint64(n))
	f.V.NoteDoorbell(notify)
	if notify {
		q.kickPending = true
	}
	return n
}

// Kick delivers every pending queue doorbell in one multicall — one
// VMM entry no matter how many queues a submission sweep touched.
func (f *MQBlockFrontend) Kick(c *hw.CPU) {
	f.mc.Reset()
	for _, q := range f.Queues {
		if q.kickPending {
			q.kickPending = false
			f.mc.AddEvtchnSend(q.KickPort)
		}
	}
	if f.mc.Len() == 0 {
		return
	}
	if err := f.V.HypMulticall(c, f.D, &f.mc); err != nil {
		panic(fmt.Sprintf("guest: blkmq kick: %v", err))
	}
}

// ForceKick rings queue qi's doorbell unconditionally — the drain path
// uses it to flush a sub-threshold tail the coalescing protocol would
// otherwise leave for the backend's next scheduler slice.
func (f *MQBlockFrontend) ForceKick(c *hw.CPU, qi int) {
	f.Stats.ForcedKicks.Add(1)
	if err := f.V.EvtchnSend(c, f.D, f.Queues[qi].KickPort); err != nil {
		panic(fmt.Sprintf("guest: blkmq force kick: %v", err))
	}
}

// Poll collects completions from queue qi, ending each request's grant
// and invoking fn per response. The FINAL CHECK loop re-arms the
// completion doorbell and keeps draining while responses race in.
// Returns the number collected.
func (f *MQBlockFrontend) Poll(c *hw.CPU, qi int, fn func(xen.BlkResponse)) int {
	q := f.Queues[qi]
	total := 0
	for {
		n := q.Ring.TakeResponses(c, q.respBuf)
		if n == 0 {
			if !q.Ring.FinishResponseConsume(c, f.RespThreshold) {
				return total
			}
			continue
		}
		for _, resp := range q.respBuf[:n] {
			if ref, ok := q.grants[resp.ID]; ok {
				if err := f.D.GrantEnd(c, ref); err != nil {
					panic(fmt.Sprintf("guest: blkmq: %v", err))
				}
				delete(q.grants, resp.ID)
			}
			q.outstanding--
			f.Stats.Completed.Add(1)
			if resp.Err != "" {
				f.Stats.Errors.Add(1)
			}
			if fn != nil {
				fn(resp)
			}
		}
		total += n
	}
}

// Outstanding is the number of submitted, uncompleted requests across
// all queues.
func (f *MQBlockFrontend) Outstanding() int {
	n := 0
	for _, q := range f.Queues {
		n += q.outstanding
	}
	return n
}

// Drain force-completes every in-flight request: force-kick queues
// with queued requests, let pump run the backend, and poll until the
// outstanding count reaches zero. This is the quiesce primitive the
// mode switch calls for rings caught mid-flight; an error means the
// datapath is wedged and the switch must not commit.
func (f *MQBlockFrontend) Drain(c *hw.CPU, pump func(*hw.CPU), fn func(xen.BlkResponse)) error {
	for round := 0; f.Outstanding() > 0; round++ {
		if round >= 10000 {
			return fmt.Errorf("guest: blkmq drain wedged: %d requests still outstanding",
				f.Outstanding())
		}
		for qi, q := range f.Queues {
			if q.Ring.RequestsPending() > 0 {
				f.ForceKick(c, qi)
			}
		}
		if pump != nil {
			pump(c)
		}
		for qi := range f.Queues {
			f.Poll(c, qi, fn)
		}
	}
	return nil
}
