package guest

import (
	"repro/internal/hw"
)

// Process-management syscalls. The expensive parts (address-space
// cloning, demand faulting) live in mm.go; these wrappers add the
// architectural trap costs and process bookkeeping.

// Fork creates a child process running childBody in a copy-on-write
// clone of the caller's address space, and returns it (the parent's
// view; the paper's benchmarks wait for the child with Wait).
func (p *Proc) Fork(name string, childBody Body) *Proc {
	k := p.K
	c := p.CPU()
	k.Stats.Forks.Add(1)
	c.Charge(k.M.Costs.SyscallEntry)
	prev := c.SetMode(k.KernelPL())

	childAS := p.AS.clone(c)
	child := k.newProc(c, name, p, childBody)
	child.AS = childAS
	child.SegvHandler = p.SegvHandler
	k.enqueue(c, child)

	c = p.CPU()
	c.SetMode(prev)
	c.Charge(k.M.Costs.SyscallExit)
	return p.children[len(p.children)-1]
}

// Exec replaces the caller's address space with a fresh one built from
// img and then runs the new program's startup: touching its text
// (read faults against the shared image file) and data (write faults
// against fresh anonymous pages), which is where exec spends its time.
func (p *Proc) Exec(img Image) {
	k := p.K
	c := p.CPU()
	k.Stats.Execs.Add(1)
	c.Charge(k.M.Costs.SyscallEntry + k.M.Costs.ExecBase)
	prev := c.SetMode(k.KernelPL())

	old := p.AS
	p.AS = k.newAddrSpace(c, img)
	k.VO().ContextSwitch(c, p.AS.PT.Root)
	if old != nil {
		k.releaseAddrSpace(c, old)
	}
	c.SetMode(prev)
	c.Charge(k.M.Costs.SyscallExit)

	// New program start-up: demand-fault the working set.
	textEnd := TextBase + hw.VirtAddr(img.TextPages<<hw.PageShift)
	p.AS.TouchRange(c, p, TextBase, img.TextPages, false)
	p.AS.TouchRange(c, p, textEnd, img.DataPages, true)
}

// Mmap maps anonymous memory (see AddrSpace.MmapAnon).
func (p *Proc) Mmap(pages int, prot Prot, populate bool) hw.VirtAddr {
	k := p.K
	c := p.CPU()
	k.Stats.Syscalls.Add(1)
	c.Charge(k.M.Costs.SyscallEntry)
	prev := c.SetMode(k.KernelPL())
	base := p.AS.MmapAnon(c, pages, prot, populate)
	c.SetMode(prev)
	c.Charge(k.M.Costs.SyscallExit)
	return base
}

// MmapFile maps pages of file f read-only (shared), page-aligned from
// file page offset 0.
func (p *Proc) MmapFile(ino *Inode, pages int) hw.VirtAddr {
	k := p.K
	c := p.CPU()
	k.Stats.Syscalls.Add(1)
	c.Charge(k.M.Costs.SyscallEntry)
	prev := c.SetMode(k.KernelPL())
	base := p.AS.mmapNext
	p.AS.mmapNext += hw.VirtAddr(pages << hw.PageShift)
	p.AS.vmas = append(p.AS.vmas, &VMA{
		Start: base, End: base + hw.VirtAddr(pages<<hw.PageShift),
		Prot: ProtRead, Kind: VMAFile, File: ino,
	})
	c.Charge(k.M.Costs.MemWrite * 12)
	c.SetMode(prev)
	c.Charge(k.M.Costs.SyscallExit)
	return base
}

// Munmap unmaps the VMA starting at base.
func (p *Proc) Munmap(base hw.VirtAddr) {
	k := p.K
	c := p.CPU()
	k.Stats.Syscalls.Add(1)
	c.Charge(k.M.Costs.SyscallEntry)
	prev := c.SetMode(k.KernelPL())
	p.AS.Munmap(c, base)
	c.SetMode(prev)
	c.Charge(k.M.Costs.SyscallExit)
}

// Mprotect changes protections of the VMA starting at base.
func (p *Proc) Mprotect(base hw.VirtAddr, prot Prot) {
	k := p.K
	c := p.CPU()
	k.Stats.Syscalls.Add(1)
	c.Charge(k.M.Costs.SyscallEntry)
	prev := c.SetMode(k.KernelPL())
	p.AS.Mprotect(c, base, prot)
	c.SetMode(prev)
	c.Charge(k.M.Costs.SyscallExit)
}

// Touch reads (or writes) one word per page across a range, running in
// user mode so faults take the architectural path.
func (p *Proc) Touch(base hw.VirtAddr, pages int, write bool) {
	p.AS.TouchRange(p.CPU(), p, base, pages, write)
}
