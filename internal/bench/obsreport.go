package bench

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// Span-trace post-processing for the benchmark harness: aggregating the
// mode-switch phase decomposition out of a collector's span trace, and
// writing per-configuration metric dumps.

// PhaseStat aggregates one phase across all switches of one direction.
type PhaseStat struct {
	Name     string
	Count    int
	TotalCyc uint64
}

// PhaseBreakdown sums the direct child spans of every root span named
// rootName ("switch/attach" or "switch/detach") in the trace, plus the
// roots' own totals. Only successful switches (root Arg == 0) count.
// The returned phases are ordered by first appearance, matching the
// execution order inside the switch ISR.
func PhaseBreakdown(spans []obs.Span, rootName string) (phases []PhaseStat, rootTotal uint64, rootCount int) {
	roots := make(map[uint64]bool)
	for _, s := range spans {
		if s.Name == rootName && s.Arg == 0 && s.Kind() == obs.SpanDur {
			roots[s.ID] = true
			rootTotal += s.Dur()
			rootCount++
		}
	}
	idx := make(map[string]int)
	for _, s := range spans {
		if !roots[s.Parent] || s.Kind() != obs.SpanDur {
			continue
		}
		i, ok := idx[s.Name]
		if !ok {
			i = len(phases)
			idx[s.Name] = i
			phases = append(phases, PhaseStat{Name: s.Name})
		}
		phases[i].Count++
		phases[i].TotalCyc += s.Dur()
	}
	return phases, rootTotal, rootCount
}

// PhaseSum totals the phase cycles of a breakdown.
func PhaseSum(phases []PhaseStat) uint64 {
	var sum uint64
	for _, p := range phases {
		sum += p.TotalCyc
	}
	return sum
}

// WritePhaseBreakdown renders the attach and detach phase decomposition
// of a collector's trace, with each phase's share of the end-to-end
// switch time. hz converts cycles to microseconds.
func WritePhaseBreakdown(w io.Writer, col *obs.Collector, hz uint64) {
	spans := col.Tracer.Spans()
	us := func(cyc uint64) float64 { return float64(cyc) / float64(hz) * 1e6 }
	for _, root := range []string{"switch/attach", "switch/detach"} {
		phases, total, n := PhaseBreakdown(spans, root)
		if n == 0 {
			continue
		}
		fmt.Fprintf(w, "%s: %d switches, %.2f us avg\n", root, n, us(total)/float64(n))
		for _, p := range phases {
			pct := 0.0
			if total > 0 {
				pct = float64(p.TotalCyc) / float64(total) * 100
			}
			fmt.Fprintf(w, "  %-24s %8.2f us avg  %5.1f%%\n",
				p.Name, us(p.TotalCyc)/float64(n), pct)
		}
		sum := PhaseSum(phases)
		fmt.Fprintf(w, "  %-24s %8.2f us avg  (phases cover %.2f%% of switch)\n",
			"total", us(sum)/float64(n), float64(sum)/float64(total)*100)
	}
}

// TraceHealth summarizes a collector's instrumentation losses: what the
// bounded buffers had to drop to stay allocation-light. Non-zero values
// do not invalidate a run, but they mean the trace and flight recorder
// are partial views and bigger rings (or shorter runs) are needed for a
// complete one.
type TraceHealth struct {
	SpansDropped  uint64 `json:"spans_dropped"`
	EventsDropped uint64 `json:"events_dropped"`
	// TraceRingDropped is the xen TraceBuffer's overwrite count
	// (xen/trace_ring_dropped_total), zero when no VMM ever booted.
	TraceRingDropped uint64 `json:"trace_ring_dropped"`
}

// CollectTraceHealth reads the drop counters off one collector.
func CollectTraceHealth(col *obs.Collector) TraceHealth {
	th := TraceHealth{}
	if col == nil {
		return th
	}
	if col.Tracer != nil {
		th.SpansDropped = col.Tracer.Dropped()
	}
	if col.Events != nil {
		th.EventsDropped = col.Events.Dropped()
	}
	// Read through the registry: the VMM adopts its ring counter there
	// at boot, so this sees drops without a handle on the VMM itself.
	th.TraceRingDropped = col.Registry.Counter("xen", "trace_ring_dropped_total").Load()
	return th
}

// WriteTraceHealth renders one collector's drop summary.
func WriteTraceHealth(w io.Writer, name string, col *obs.Collector) {
	th := CollectTraceHealth(col)
	fmt.Fprintf(w, "trace health %s: %d spans dropped, %d events dropped, %d trace-ring entries dropped\n",
		name, th.SpansDropped, th.EventsDropped, th.TraceRingDropped)
}

// WriteTraceHealthSet renders the drop summary of every configuration
// in a collector set.
func (cs *CollectorSet) WriteTraceHealth(w io.Writer) {
	keys := cs.Keys()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		WriteTraceHealth(w, string(key), cs.cols[key])
	}
}

// MetricDumpSet holds one JSON metric dump per configuration.
type MetricDumpSet map[SystemKey][]obs.MetricDump

// CollectorSet builds one collector per configuration for multi-system
// benchmarks and remembers them for dumping afterwards.
type CollectorSet struct {
	ncpu int
	cols map[SystemKey]*obs.Collector
	keys []SystemKey
}

// NewCollectorSet builds an empty set for machines with ncpu CPUs.
func NewCollectorSet(ncpu int) *CollectorSet {
	if ncpu <= 0 {
		ncpu = 1
	}
	return &CollectorSet{ncpu: ncpu, cols: make(map[SystemKey]*obs.Collector)}
}

// For returns (creating on first use) the collector for one
// configuration. Options.CollectorFor can point straight at it.
func (cs *CollectorSet) For(key SystemKey) *obs.Collector {
	if col, ok := cs.cols[key]; ok {
		return col
	}
	col := obs.New(cs.ncpu)
	cs.cols[key] = col
	cs.keys = append(cs.keys, key)
	return col
}

// Keys returns the configurations seen, in first-use order.
func (cs *CollectorSet) Keys() []SystemKey {
	return append([]SystemKey(nil), cs.keys...)
}

// Dumps snapshots every configuration's registry.
func (cs *CollectorSet) Dumps() MetricDumpSet {
	out := make(MetricDumpSet, len(cs.cols))
	for key, col := range cs.cols {
		out[key] = col.Registry.Dump()
	}
	return out
}

// WriteProm writes every configuration's registry in Prometheus text
// format, separated by a comment header per configuration.
func (cs *CollectorSet) WriteProm(w io.Writer) {
	keys := cs.Keys()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		fmt.Fprintf(w, "# configuration: %s\n", key)
		cs.cols[key].Registry.WriteProm(w)
	}
}
