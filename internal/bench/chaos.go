package bench

import (
	"fmt"
	"io"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/hw"
)

// chaosMaxDeferrals bounds the switch retry budget in campaigns so a
// starved-switch episode resolves after a handful of simulated 10ms
// ticks instead of the production default of 100.
const chaosMaxDeferrals = 8

// ChaosRun is one campaign execution on a machine of NCPU processors.
type ChaosRun struct {
	NCPU   int
	Report *chaos.Report
}

// ChaosResult is the dependability experiment: the same seeded fault
// campaign run on a uniprocessor and on an SMP machine (where every
// switch goes through the §5.4 rendezvous).
type ChaosResult struct {
	Seed int64
	Runs []ChaosRun
}

// ChaosCampaign builds a fresh Mercury system per processor count and
// runs the seeded campaign against it. When opt.Collector is set it is
// installed on the uniprocessor run, so the chaos counters and the MTTR
// histogram land in the registry.
func ChaosCampaign(seed int64, episodes int, opt Options) (ChaosResult, error) {
	opt.fill()
	res := ChaosResult{Seed: seed}
	for _, ncpu := range []int{1, 2} {
		cfg := hw.DefaultConfig()
		cfg.NumCPUs = ncpu
		cfg.MemBytes = opt.MemBytes
		m := hw.NewMachine(cfg)
		if opt.Collector != nil && ncpu == 1 {
			m.SetTelemetry(opt.Collector)
		}
		mc, err := core.New(core.Config{
			Machine: m, Policy: opt.Policy, MaxDeferrals: chaosMaxDeferrals,
		})
		if err != nil {
			return res, err
		}
		ccfg := chaos.DefaultConfig(seed)
		if episodes > 0 {
			ccfg.Episodes = episodes
		}
		if opt.MigrateFaults {
			sb, err := chaos.NewStandby(m)
			if err != nil {
				return res, err
			}
			ccfg.Standby = sb
		}
		rep, err := chaos.Run(mc, ccfg)
		if err != nil {
			return res, fmt.Errorf("bench: chaos campaign (%d cpus): %w", ncpu, err)
		}
		res.Runs = append(res.Runs, ChaosRun{NCPU: ncpu, Report: rep})
	}
	return res, nil
}

// WriteChaos renders the dependability table.
func WriteChaos(w io.Writer, r ChaosResult) {
	fmt.Fprintf(w, "Chaos campaign (seed %d): injected faults vs. detection and repair\n", r.Seed)
	fmt.Fprintf(w, "%-5s %8s %8s %8s %7s %7s %11s %8s %9s %9s\n",
		"cpus", "episodes", "injected", "detected", "healed", "missed",
		"rolled-back", "starved", "escalated", "mttr(us)")
	for _, run := range r.Runs {
		rep := run.Report
		fmt.Fprintf(w, "%-5d %8d %8d %8d %7d %7d %11d %8d %9d %9.1f\n",
			run.NCPU, len(rep.Episodes), rep.Injected, rep.Detected, rep.Healed,
			rep.Missed, rep.RolledBack, rep.Starved, rep.Escalated, rep.MTTRMeanUS)
	}
}
