package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/hw"
	"repro/internal/vo"
	"repro/internal/xen"
)

// TestMercuryHostsMultipleGuests: unlike Microvisor's two-VM limit, a
// self-virtualized Mercury hosts several unmodified guests at once,
// each with its own kernel, memory partition and split devices.
func TestMercuryHostsMultipleGuests(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 256 << 20, NumCPUs: 1})
	m.NIC.Reflector = guest.EchoReflector(MeasuredNetID, 0)
	m.NIC.ReflectDelay = 18_000
	mc, err := core.New(core.Config{Machine: m})
	if err != nil {
		t.Fatal(err)
	}
	boot := m.BootCPU()
	attachDrivers := func(k *guest.Kernel) {
		k.Blk = &guest.NativeBlock{K: k, Disk: m.Disk}
		k.Net = &guest.NativeNet{K: k, NIC: m.NIC}
	}
	attachDrivers(mc.K)
	mc.K.SetNetID(driverNetID)
	if err := mc.SwitchSync(boot, core.ModePartialVirtual); err != nil {
		t.Fatal(err)
	}

	// Host three unmodified guests.
	const nGuests = 3
	kernels := make([]*guest.Kernel, nGuests)
	for i := 0; i < nGuests; i++ {
		domU, err := mc.VMM.HypDomctlCreateFromFrames(boot, mc.Dom, "domU", 2048)
		if err != nil {
			t.Fatal(err)
		}
		mc.VMM.SetCurrent(boot, domU)
		k, err := guest.Boot(m, guest.Config{
			Name: "guest", VO: vo.NewVirtual(mc.VMM, domU),
			Frames: domU.Frames, Dom: domU, VMM: mc.VMM,
		})
		if err != nil {
			t.Fatal(err)
		}
		attachDrivers(k) // direct drivers suffice for this CPU/mem test
		kernels[i] = k
	}
	if got := len(mc.HostedDomains()); got != nGuests {
		t.Fatalf("hosted domains = %d", got)
	}

	// Run a workload in each guest, one at a time (one pCPU): memory
	// isolation means each sees only its own writes.
	for i, k := range kernels {
		i, k := i, k
		mc.VMM.SetCurrent(boot, k.Dom)
		done := false
		k.Spawn(boot, "app", guest.DefaultImage("app"), func(p *guest.Proc) {
			base := p.Mmap(16, guest.ProtRead|guest.ProtWrite, true)
			c := p.CPU()
			for j := 0; j < 16; j++ {
				c.WriteWord(base+hw.VirtAddr(j<<hw.PageShift), uint32(i*1000+j))
			}
			for j := 0; j < 16; j++ {
				if got := c.ReadWord(base + hw.VirtAddr(j<<hw.PageShift)); got != uint32(i*1000+j) {
					t.Errorf("guest %d saw %d", i, got)
				}
			}
			done = true
		})
		k.Run(boot)
		if !done {
			t.Fatalf("guest %d did not run", i)
		}
	}

	// Frame accounting stayed coherent across all guests.
	if err := mc.VMM.FT.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Each guest's partition is disjoint and owned correctly.
	owners := map[xen.DomID]bool{}
	for _, k := range kernels {
		lo, hi := k.Dom.Frames.Range()
		if fi := mc.VMM.FT.Get(lo); fi.Owner != k.Dom.ID {
			t.Fatalf("frame %d owner = dom%d", lo, fi.Owner)
		}
		if owners[k.Dom.ID] {
			t.Fatal("duplicate domain id")
		}
		owners[k.Dom.ID] = true
		_ = hi
	}

	// Tear the guests down; then the host can detach.
	for _, k := range kernels {
		if err := mc.VMM.HypDomctlDestroy(boot, mc.Dom, k.Dom.ID); err != nil {
			t.Fatal(err)
		}
	}
	mc.VMM.SetCurrent(boot, mc.Dom)
	if err := mc.SwitchSync(boot, core.ModeNative); err != nil {
		t.Fatal(err)
	}
}
