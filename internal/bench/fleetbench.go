package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/fleet"
)

// Fleet sweep axes: fleet size × maintenance batch size × admission
// arrival rate (requests submitted per fleet tick).
var (
	FleetNodes    = []int{4, 8}
	FleetBatches  = []int{1, 2, 4}
	FleetArrivals = []int{1, 4}
)

// FleetPoint is one cell of the rolling-maintenance sweep: a fleet of
// the given size taken through one full checkpoint wave, with the
// admission controller bounding virtual-mode concurrency via the
// capacity model (≈15% tax per attached node, ≤10% aggregate loss).
type FleetPoint struct {
	Nodes      int `json:"nodes"`
	BatchSize  int `json:"batch_size"`
	Arrival    int `json:"arrival_per_tick"`
	MaxVirtual int `json:"max_virtual"`

	// Algorithmic outcomes — exact on a deterministic simulation.
	Completed     int   `json:"completed"`
	Ticks         int64 `json:"ticks"`
	MaxInUse      int   `json:"max_in_use"`
	MaxQueueDepth int   `json:"max_queue_depth"`
	Rejected      int   `json:"rejected"`

	// Pipeline costs on the nodes' own TSCs.
	MeanAttachCyc uint64  `json:"mean_attach_cyc"`
	MeanDetachCyc uint64  `json:"mean_detach_cyc"`
	MeanActionCyc uint64  `json:"mean_action_cyc"`
	MeanAttachUS  float64 `json:"mean_attach_us"`
	MeanDetachUS  float64 `json:"mean_detach_us"`
}

// FleetSweep runs one checkpoint wave per (nodes, batch, arrival) cell
// and reports admission behaviour and mean switch latencies. The
// admission bound is a hard invariant: a cell whose high-water mark
// exceeds its MaxVirtual fails the sweep.
func FleetSweep(opt Options) ([]FleetPoint, error) {
	opt.fill()
	var pts []FleetPoint
	for _, nodes := range FleetNodes {
		for _, batch := range FleetBatches {
			for _, arrival := range FleetArrivals {
				pt, err := fleetPoint(nodes, batch, arrival)
				if err != nil {
					return nil, fmt.Errorf("bench: fleet %dn/%db/%da: %w",
						nodes, batch, arrival, err)
				}
				pts = append(pts, pt)
			}
		}
	}
	return pts, nil
}

func fleetPoint(nodes, batch, arrival int) (FleetPoint, error) {
	pt := FleetPoint{Nodes: nodes, BatchSize: batch, Arrival: arrival}
	fc, err := fleet.New(fleet.Config{
		Nodes: nodes,
		Node:  fleet.NodeConfig{MemBytes: 48 << 20, Pages: 32},
	})
	if err != nil {
		return pt, err
	}
	pt.MaxVirtual = fc.Config().MaxVirtual
	rep, err := fc.RunWave(fleet.WaveConfig{
		Action:         fleet.ActionCheckpoint,
		BatchSize:      batch,
		ArrivalPerTick: arrival,
	})
	if err != nil {
		return pt, err
	}
	if rep.Admission.MaxInUse > pt.MaxVirtual {
		return pt, fmt.Errorf("admission bound breached: %d in use > MaxVirtual %d",
			rep.Admission.MaxInUse, pt.MaxVirtual)
	}
	pt.Completed = rep.Completed
	pt.Ticks = int64(rep.Ticks)
	pt.MaxInUse = rep.Admission.MaxInUse
	pt.MaxQueueDepth = rep.Admission.MaxQueueDepth
	pt.Rejected = rep.Admission.Rejected
	pt.MeanAttachCyc = uint64(rep.MeanAttachCyc)
	pt.MeanDetachCyc = uint64(rep.MeanDetachCyc)
	pt.MeanActionCyc = uint64(rep.MeanActionCyc)
	m := fc.Nodes[0].M
	pt.MeanAttachUS = m.Micros(rep.MeanAttachCyc)
	pt.MeanDetachUS = m.Micros(rep.MeanDetachCyc)
	return pt, nil
}

// WriteFleetSweep renders the sweep as a table.
func WriteFleetSweep(w io.Writer, pts []FleetPoint) {
	fmt.Fprintf(w, "Rolling maintenance across a Mercury fleet (checkpoint wave, admission-bounded)\n")
	fmt.Fprintf(w, "%6s %6s %8s %6s %6s %6s %7s %7s %11s %11s\n",
		"nodes", "batch", "arrival", "maxV", "inUse", "queue", "done", "ticks",
		"attach(us)", "detach(us)")
	for _, pt := range pts {
		fmt.Fprintf(w, "%6d %6d %8d %6d %6d %6d %7d %7d %11.2f %11.2f\n",
			pt.Nodes, pt.BatchSize, pt.Arrival, pt.MaxVirtual, pt.MaxInUse,
			pt.MaxQueueDepth, pt.Completed, pt.Ticks,
			pt.MeanAttachUS, pt.MeanDetachUS)
	}
}

// FleetBaselineSchema versions the committed fleet baseline.
const FleetBaselineSchema = "mercury-bench/fleet/v1"

// FleetBaseline is the serialized sweep: committed at the repo root as
// BENCH_fleet.json and diffed in CI like the switch and migration
// baselines.
type FleetBaseline struct {
	Schema string       `json:"schema"`
	Sweep  []FleetPoint `json:"sweep"`
}

// WriteFleetBaseline writes the sweep to path as indented JSON.
func WriteFleetBaseline(path string, pts []FleetPoint) error {
	return WriteJSONFile(path, FleetBaseline{Schema: FleetBaselineSchema, Sweep: pts})
}

// LoadFleetBaseline reads a committed baseline.
func LoadFleetBaseline(path string) (*FleetBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: reading fleet baseline: %w", err)
	}
	var b FleetBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: decoding fleet baseline %s: %w", path, err)
	}
	if b.Schema != FleetBaselineSchema {
		return nil, fmt.Errorf("bench: fleet baseline %s has schema %q, want %q",
			path, b.Schema, FleetBaselineSchema)
	}
	return &b, nil
}

// CompareFleetBaseline diffs a fresh sweep against the committed
// baseline. Points are matched by (nodes, batch, arrival). Admission
// outcomes — completions, tick count, high-water marks — are
// scheduling decisions on a deterministic simulation and must match
// exactly; the cycle means may deviate by tolerancePct.
func CompareFleetBaseline(base *FleetBaseline, fresh []FleetPoint, tolerancePct float64) []string {
	type key struct{ nodes, batch, arrival int }
	idx := make(map[key]FleetPoint, len(base.Sweep))
	for _, pt := range base.Sweep {
		idx[key{pt.Nodes, pt.BatchSize, pt.Arrival}] = pt
	}

	var violations []string
	exact := func(k key, field string, want, got int64) {
		if want != got {
			violations = append(violations,
				fmt.Sprintf("%dn/%db/%da %s: baseline %d, measured %d (exact field)",
					k.nodes, k.batch, k.arrival, field, want, got))
		}
	}
	cycles := func(k key, field string, want, got uint64) {
		if want == 0 {
			if got != 0 {
				violations = append(violations,
					fmt.Sprintf("%dn/%db/%da %s: baseline 0, measured %d",
						k.nodes, k.batch, k.arrival, field, got))
			}
			return
		}
		dev := (float64(got) - float64(want)) / float64(want) * 100
		if dev < 0 {
			dev = -dev
		}
		if dev > tolerancePct {
			violations = append(violations,
				fmt.Sprintf("%dn/%db/%da %s: baseline %d, measured %d (%.1f%% > %.1f%% tolerance)",
					k.nodes, k.batch, k.arrival, field, want, got, dev, tolerancePct))
		}
	}
	seen := make(map[key]bool, len(fresh))
	for _, pt := range fresh {
		k := key{pt.Nodes, pt.BatchSize, pt.Arrival}
		seen[k] = true
		want, ok := idx[k]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%dn/%db/%da: not in baseline", k.nodes, k.batch, k.arrival))
			continue
		}
		exact(k, "max_virtual", int64(want.MaxVirtual), int64(pt.MaxVirtual))
		exact(k, "completed", int64(want.Completed), int64(pt.Completed))
		exact(k, "ticks", want.Ticks, pt.Ticks)
		exact(k, "max_in_use", int64(want.MaxInUse), int64(pt.MaxInUse))
		exact(k, "max_queue_depth", int64(want.MaxQueueDepth), int64(pt.MaxQueueDepth))
		exact(k, "rejected", int64(want.Rejected), int64(pt.Rejected))
		cycles(k, "mean_attach_cyc", want.MeanAttachCyc, pt.MeanAttachCyc)
		cycles(k, "mean_detach_cyc", want.MeanDetachCyc, pt.MeanDetachCyc)
		cycles(k, "mean_action_cyc", want.MeanActionCyc, pt.MeanActionCyc)
	}
	for k := range idx {
		if !seen[k] {
			violations = append(violations,
				fmt.Sprintf("%dn/%db/%da: in baseline but not measured", k.nodes, k.batch, k.arrival))
		}
	}
	return violations
}
