package bench

import (
	"path/filepath"
	"testing"
)

// findPoint pulls one sweep point by configuration.
func findPoint(t *testing.T, pts []SwitchScalePoint, policy string, ncpu, pages int) SwitchScalePoint {
	t.Helper()
	for _, pt := range pts {
		if pt.Policy == policy && pt.NCPU == ncpu && pt.Pages == pages {
			return pt
		}
	}
	t.Fatalf("no sweep point %s/%dcpu/%dpg", policy, ncpu, pages)
	return SwitchScalePoint{}
}

// TestSwitchScaleAcceptance runs the full sweep once and asserts the
// issue's two performance criteria plus determinism of the cycle counts.
func TestSwitchScaleAcceptance(t *testing.T) {
	pts, err := SwitchScale(Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Sub-linear attach in CPU count: with the shards running while the
	// APs are parked, 4 CPUs must not pay 4x1-CPU cycles — require at
	// least a 1.5x win at the larger working set.
	one := findPoint(t, pts, "recompute", 1, 4096)
	four := findPoint(t, pts, "recompute", 4, 4096)
	if four.AttachCyc*3 > one.AttachCyc*2 {
		t.Errorf("attach not sub-linear: 1 cpu %d cyc, 4 cpu %d cyc",
			one.AttachCyc, four.AttachCyc)
	}

	// Journal re-attach at ~10%% dirty beats the cold attach by >=5x.
	for _, pages := range ScalePages {
		j := findPoint(t, pts, "journal", 1, pages)
		if j.Replays == 0 {
			t.Errorf("journal %dpg: re-attach did not replay (%d fallbacks)", pages, j.Fallbacks)
		}
		if j.ReattachCyc*5 > j.AttachCyc {
			t.Errorf("journal %dpg: replay re-attach %d cyc vs cold %d: less than 5x win",
				pages, j.ReattachCyc, j.AttachCyc)
		}
	}

	// Determinism: the committed baseline is only diffable if a repeat
	// run reproduces the cycle counts exactly.
	again, err := SwitchScale(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := CompareSwitchBaseline(&SwitchBaseline{Schema: SwitchBaselineSchema, Scale: pts}, again, 0); len(v) != 0 {
		t.Errorf("sweep not deterministic: %v", v)
	}
}

func TestSwitchBaselineRoundTripAndCompare(t *testing.T) {
	pts := []SwitchScalePoint{
		{Policy: "recompute", NCPU: 1, Pages: 1024, AttachCyc: 1000, ReattachCyc: 900, DetachCyc: 100},
		{Policy: "journal", NCPU: 2, Pages: 4096, AttachCyc: 5000, ReattachCyc: 400, DetachCyc: 120, Replays: 1},
	}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := WriteSwitchBaseline(path, pts); err != nil {
		t.Fatal(err)
	}
	base, err := LoadSwitchBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Scale) != 2 {
		t.Fatalf("round trip lost points: %+v", base.Scale)
	}
	if v := CompareSwitchBaseline(base, pts, 0); len(v) != 0 {
		t.Fatalf("identical sweep reported violations: %v", v)
	}

	// Within tolerance: +10% on one field at 25% band.
	drift := append([]SwitchScalePoint(nil), pts...)
	drift[0].AttachCyc = 1100
	if v := CompareSwitchBaseline(base, drift, 25); len(v) != 0 {
		t.Fatalf("10%% drift flagged at 25%% tolerance: %v", v)
	}
	// Out of tolerance: +50%.
	drift[0].AttachCyc = 1500
	if v := CompareSwitchBaseline(base, drift, 25); len(v) != 1 {
		t.Fatalf("50%% drift not flagged exactly once: %v", v)
	}
	// Missing and extra points are both violations.
	if v := CompareSwitchBaseline(base, pts[:1], 25); len(v) != 1 {
		t.Fatalf("missing point not flagged: %v", v)
	}
	extra := append([]SwitchScalePoint(nil), pts...)
	extra = append(extra, SwitchScalePoint{Policy: "active", NCPU: 8, Pages: 64})
	if v := CompareSwitchBaseline(base, extra, 25); len(v) != 1 {
		t.Fatalf("extra point not flagged: %v", v)
	}
}
