package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/hw"
	"repro/internal/migrate"
	"repro/internal/xen"
)

// MigratePoint is one cell of the §6.3 downtime/total-time sweep: a
// guest of Pages live pages dirtying DirtyPerRound pages per pre-copy
// round, migrated under a downtime SLO (0 = the fixed threshold-only
// policy).
type MigratePoint struct {
	Pages         int     `json:"pages"`
	DirtyPerRound int     `json:"dirty_per_round"`
	SLOUs         float64 `json:"slo_us"` // 0: no SLO (threshold/max-rounds only)

	Rounds      int    `json:"rounds"` // pre-copy rounds incl. round 0
	PagesSent   int    `json:"pages_sent"`
	DowntimeCyc uint64 `json:"downtime_cyc"`
	TotalCyc    uint64 `json:"total_cyc"`

	DowntimeUS float64 `json:"downtime_us"`
	TotalUS    float64 `json:"total_us"`
	StopReason string  `json:"stop_reason"`
	Verified   bool    `json:"verified"`
}

// The swept grid: guest sizes x dirty rates x downtime SLOs.
var (
	MigratePages  = []int{512, 2048}
	MigrateDirty  = []int{8, 64, 256}
	MigrateSLOsUS = []float64{0, 300, 3000}
)

// MigrateSweep runs the live-migration grid. Every migration must
// verify (the commit point rejects divergent images), so the sweep
// doubles as an end-to-end correctness pass; the simulation is
// deterministic, which is what makes the committed baseline meaningful.
func MigrateSweep(opt Options) ([]MigratePoint, error) {
	opt.fill()
	var pts []MigratePoint
	for _, pages := range MigratePages {
		for _, dirty := range MigrateDirty {
			for _, slo := range MigrateSLOsUS {
				pt, err := migratePoint(pages, dirty, slo)
				if err != nil {
					return nil, fmt.Errorf("bench: migrate %dpg/%ddirty/slo=%.0fus: %w",
						pages, dirty, slo, err)
				}
				pts = append(pts, pt)
			}
		}
	}
	return pts, nil
}

// migratePoint builds a fresh source and destination machine pair,
// migrates one guest between them, and records the trajectory.
func migratePoint(pages, dirtyPerRound int, sloUS float64) (MigratePoint, error) {
	pt := MigratePoint{Pages: pages, DirtyPerRound: dirtyPerRound, SLOUs: sloUS}

	mA := hw.NewMachine(hw.Config{Name: "mig-src", MemBytes: 64 << 20, NumCPUs: 1})
	vA, err := xen.Boot(mA)
	if err != nil {
		return pt, err
	}
	cA := mA.BootCPU()
	vA.Activate(cA)
	dom0A, err := vA.CreateDomain("dom0", 512, true)
	if err != nil {
		return pt, err
	}
	vA.SetCurrent(cA, dom0A)
	guest, err := vA.CreateDomain("job", hw.PFN(pages)+16, false)
	if err != nil {
		return pt, err
	}
	lo, _ := guest.Frames.Range()
	for i := 0; i < pages; i++ {
		mA.Mem.WriteWord((lo + hw.PFN(i)).Addr(), uint32(0xBE000000)|uint32(i))
	}

	mB := hw.NewMachine(hw.Config{Name: "mig-dst", MemBytes: 64 << 20, NumCPUs: 1})
	vB, err := xen.Boot(mB)
	if err != nil {
		return pt, err
	}
	cB := mB.BootCPU()
	vB.Activate(cB)
	dom0B, err := vB.CreateDomain("dom0", 512, true)
	if err != nil {
		return pt, err
	}
	vB.SetCurrent(cB, dom0B)
	hw.Wire(mA.NIC, mB.NIC, hw.Gigabit())

	cfg := migrate.DefaultLiveConfig()
	cfg.DowntimeSLOCyc = hw.Cycles(sloUS / 1e6 * float64(mA.Hz))
	cfg.Mutator = func(round int) {
		for i := 0; i < dirtyPerRound; i++ {
			pfn := lo + hw.PFN((round*97+i*13)%pages)
			mA.Mem.WriteWord(pfn.Addr()+4, uint32(round*1000+i))
		}
	}
	_, rep, err := migrate.Live(cA, vA, dom0A, guest, vB, dom0B, cfg)
	if err != nil {
		return pt, err
	}
	pt.Rounds = len(rep.Rounds) - 1 // the last entry is stop-and-copy
	pt.PagesSent = rep.TotalPages
	pt.DowntimeCyc = uint64(rep.DowntimeCyc)
	pt.TotalCyc = uint64(rep.TotalCyc)
	pt.DowntimeUS = rep.DowntimeUSec
	pt.TotalUS = rep.TotalUSec
	pt.StopReason = rep.StopReason
	pt.Verified = rep.Verified
	return pt, nil
}

// WriteMigrateSweep renders the sweep as a table.
func WriteMigrateSweep(w io.Writer, pts []MigratePoint) {
	fmt.Fprintf(w, "Live-migration downtime vs dirty rate (verified pre-copy, Gigabit link)\n")
	fmt.Fprintf(w, "%7s %7s %9s %7s %7s %12s %10s %-10s %s\n",
		"pages", "dirty/r", "slo(us)", "rounds", "sent", "downtime(us)", "total(us)", "stop", "verified")
	for _, pt := range pts {
		fmt.Fprintf(w, "%7d %7d %9.0f %7d %7d %12.1f %10.1f %-10s %v\n",
			pt.Pages, pt.DirtyPerRound, pt.SLOUs, pt.Rounds, pt.PagesSent,
			pt.DowntimeUS, pt.TotalUS, pt.StopReason, pt.Verified)
	}
}

// MigrateBaselineSchema versions the committed migration baseline.
const MigrateBaselineSchema = "mercury-bench/migrate/v1"

// MigrateBaseline is the serialized sweep: committed at the repo root
// as BENCH_migrate.json and diffed in CI like the switch baseline.
type MigrateBaseline struct {
	Schema string         `json:"schema"`
	Sweep  []MigratePoint `json:"sweep"`
}

// WriteMigrateBaseline writes the sweep to path as indented JSON.
func WriteMigrateBaseline(path string, pts []MigratePoint) error {
	b := MigrateBaseline{Schema: MigrateBaselineSchema, Sweep: pts}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding migrate baseline: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: writing migrate baseline: %w", err)
	}
	return nil
}

// LoadMigrateBaseline reads a committed migration baseline.
func LoadMigrateBaseline(path string) (*MigrateBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: reading migrate baseline: %w", err)
	}
	var b MigrateBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: decoding migrate baseline %s: %w", path, err)
	}
	if b.Schema != MigrateBaselineSchema {
		return nil, fmt.Errorf("bench: migrate baseline %s has schema %q, want %q",
			path, b.Schema, MigrateBaselineSchema)
	}
	return &b, nil
}

// CompareMigrateBaseline diffs a fresh sweep against the committed
// baseline. Points match by (pages, dirty_per_round, slo_us); the cycle
// fields may drift by tolerancePct, while rounds, pages sent, the stop
// reason, and the verification verdict must match exactly (they are
// algorithmic, not cost-model, outcomes). Returns one violation per
// breach; empty means the trajectory held.
func CompareMigrateBaseline(base *MigrateBaseline, fresh []MigratePoint, tolerancePct float64) []string {
	type key struct {
		pages int
		dirty int
		slo   float64
	}
	idx := make(map[key]MigratePoint, len(base.Sweep))
	for _, pt := range base.Sweep {
		idx[key{pt.Pages, pt.DirtyPerRound, pt.SLOUs}] = pt
	}

	var violations []string
	name := func(k key) string {
		return fmt.Sprintf("%dpg/%ddirty/slo=%.0fus", k.pages, k.dirty, k.slo)
	}
	cycles := func(k key, field string, want, got uint64) {
		if want == 0 {
			if got != 0 {
				violations = append(violations,
					fmt.Sprintf("%s %s: baseline 0, measured %d", name(k), field, got))
			}
			return
		}
		dev := (float64(got) - float64(want)) / float64(want) * 100
		if dev < 0 {
			dev = -dev
		}
		if dev > tolerancePct {
			violations = append(violations,
				fmt.Sprintf("%s %s: baseline %d, measured %d (%.1f%% > %.1f%% tolerance)",
					name(k), field, want, got, dev, tolerancePct))
		}
	}
	exact := func(k key, field string, want, got any) {
		if want != got {
			violations = append(violations,
				fmt.Sprintf("%s %s: baseline %v, measured %v", name(k), field, want, got))
		}
	}
	seen := make(map[key]bool, len(fresh))
	for _, pt := range fresh {
		k := key{pt.Pages, pt.DirtyPerRound, pt.SLOUs}
		seen[k] = true
		want, ok := idx[k]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: not in baseline", name(k)))
			continue
		}
		cycles(k, "downtime_cyc", want.DowntimeCyc, pt.DowntimeCyc)
		cycles(k, "total_cyc", want.TotalCyc, pt.TotalCyc)
		exact(k, "rounds", want.Rounds, pt.Rounds)
		exact(k, "pages_sent", want.PagesSent, pt.PagesSent)
		exact(k, "stop_reason", want.StopReason, pt.StopReason)
		exact(k, "verified", want.Verified, pt.Verified)
	}
	for k := range idx {
		if !seen[k] {
			violations = append(violations,
				fmt.Sprintf("%s: in baseline but not measured", name(k)))
		}
	}
	return violations
}
