package bench

import (
	"os"
	"testing"
)

func TestPagingAblationSmoke(t *testing.T) {
	r, err := PagingAblation()
	if err != nil {
		t.Fatal(err)
	}
	WritePagingAblation(os.Stdout, r)
	if r.ShadowAttachUS <= r.DirectAttachUS {
		t.Fatalf("shadow attach (%v) not dearer than direct (%v)",
			r.ShadowAttachUS, r.DirectAttachUS)
	}
	if r.ShadowFrames == 0 {
		t.Fatal("no shadow footprint recorded")
	}
}
