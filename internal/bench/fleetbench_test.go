package bench

import (
	"path/filepath"
	"testing"
)

// TestFleetSweepSmoke runs a reduced sweep and checks the admission
// bound and baseline round-trip machinery.
func TestFleetSweepSmoke(t *testing.T) {
	defer func(n, b, a []int) { FleetNodes, FleetBatches, FleetArrivals = n, b, a }(
		FleetNodes, FleetBatches, FleetArrivals)
	FleetNodes = []int{4}
	FleetBatches = []int{1, 2}
	FleetArrivals = []int{2}

	pts, err := FleetSweep(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points; want 2", len(pts))
	}
	for _, pt := range pts {
		if pt.Completed != pt.Nodes {
			t.Errorf("%dn/%db: completed %d of %d", pt.Nodes, pt.BatchSize,
				pt.Completed, pt.Nodes)
		}
		if pt.MaxInUse > pt.MaxVirtual {
			t.Errorf("%dn/%db: MaxInUse %d > MaxVirtual %d",
				pt.Nodes, pt.BatchSize, pt.MaxInUse, pt.MaxVirtual)
		}
		if pt.MeanAttachCyc == 0 || pt.MeanDetachCyc == 0 {
			t.Errorf("%dn/%db: missing switch costs: %+v", pt.Nodes, pt.BatchSize, pt)
		}
	}

	// Baseline round trip: identical sweep diffs clean.
	path := filepath.Join(t.TempDir(), "BENCH_fleet.json")
	if err := WriteFleetBaseline(path, pts); err != nil {
		t.Fatal(err)
	}
	base, err := LoadFleetBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if v := CompareFleetBaseline(base, pts, 1); len(v) != 0 {
		t.Fatalf("self-compare violations: %v", v)
	}

	// A drifted algorithmic field must be an exact-match breach.
	drift := make([]FleetPoint, len(pts))
	copy(drift, pts)
	drift[0].Completed++
	if v := CompareFleetBaseline(base, drift, 100); len(v) == 0 {
		t.Fatal("drifted completion count passed the diff")
	}
}

// TestFleetSweepDeterminism: the same cell twice gives identical
// points, cycle for cycle.
func TestFleetSweepDeterminism(t *testing.T) {
	a, err := fleetPoint(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fleetPoint(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identical cells diverged:\n%+v\n%+v", a, b)
	}
}
