package bench

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/workloads"
)

// FigureResult is one application-level relative-performance chart
// (Figure 3 or Figure 4): for every benchmark, the performance of each
// system normalized to native Linux (1.0 = native speed; higher is
// better).
type FigureResult struct {
	Name       string
	NCPU       int
	Benchmarks []string
	Systems    []SystemKey
	Relative   [][]float64 // [benchmark][system]
	// Raw carries the underlying scores for EXPERIMENTS.md.
	Raw     [][]float64
	RawUnit []string
}

// FigureBenchmarks lists the application benchmarks in the figures.
var FigureBenchmarks = []string{"OSDB-IR", "dbench", "kernel-build", "ping", "iperf-TCP", "iperf-UDP"}

// AppFigure regenerates Figure 3 (ncpu=1) or Figure 4 (ncpu=2).
func AppFigure(ncpu int, opt Options) (FigureResult, error) {
	opt.NCPU = ncpu
	name := "Fig. 3: relative app performance, uniprocessor mode"
	if ncpu > 1 {
		name = "Fig. 4: relative app performance, SMP mode"
	}
	res := FigureResult{
		Name: name, NCPU: ncpu,
		Benchmarks: FigureBenchmarks,
		Systems:    AllSystems,
		Relative:   make([][]float64, len(FigureBenchmarks)),
		Raw:        make([][]float64, len(FigureBenchmarks)),
		RawUnit:    []string{"us", "MB/s", "us", "us RTT", "Mb/s", "Mb/s"},
	}
	for i := range res.Relative {
		res.Relative[i] = make([]float64, len(AllSystems))
		res.Raw[i] = make([]float64, len(AllSystems))
	}

	for j, key := range AllSystems {
		// OSDB-IR (time-based: relative = native time / system time).
		s, err := Build(key, opt)
		if err != nil {
			return res, fmt.Errorf("bench: %s: %w", key, err)
		}
		osdb := workloads.OSDB(s.Target())
		res.Raw[0][j] = s.Micros(osdb.Cycles)

		// dbench (throughput score).
		s, err = Build(key, opt)
		if err != nil {
			return res, err
		}
		db := workloads.Dbench(s.Target())
		res.Raw[1][j] = db.MBps

		// kernel build (time).
		s, err = Build(key, opt)
		if err != nil {
			return res, err
		}
		kb := workloads.KernelBuild(s.Target())
		res.Raw[2][j] = s.Micros(kb.Cycles)

		// ping (RTT).
		s, err = Build(key, opt)
		if err != nil {
			return res, err
		}
		pg := workloads.Ping(s.Target())
		res.Raw[3][j] = pg.AvgRTTMicros

		// iperf TCP (Gigabit link, windowed acks).
		s, err = Build(key, Options{NCPU: opt.NCPU, MemBytes: opt.MemBytes,
			Costs: opt.Costs, Policy: opt.Policy, AckEvery: workloads.IperfTCPAckWindow})
		if err != nil {
			return res, err
		}
		s.M.NIC.SetLink(hw.Gigabit())
		tcp := workloads.Iperf(s.Target(), workloads.IperfTCPAckWindow)
		res.Raw[4][j] = tcp.Mbps

		// iperf UDP (Gigabit link, no acks).
		s, err = Build(key, opt)
		if err != nil {
			return res, err
		}
		s.M.NIC.SetLink(hw.Gigabit())
		udp := workloads.Iperf(s.Target(), 0)
		res.Raw[5][j] = udp.Mbps
	}

	// Normalize: index 0 is N-L.
	for i := range res.Benchmarks {
		nl := res.Raw[i][0]
		for j := range res.Systems {
			switch i {
			case 0, 2, 3: // time/RTT: lower is better
				res.Relative[i][j] = nl / res.Raw[i][j]
			default: // throughput: higher is better
				res.Relative[i][j] = res.Raw[i][j] / nl
			}
		}
	}
	return res, nil
}
