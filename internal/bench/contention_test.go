package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/hw"
)

// TestHostedGuestStealsWeightedCPUShare: a CPU-hungry hosted guest
// slows the driver domain down by roughly its credit share — the
// VMM-level contention a self-virtualized system only pays while it is
// actually hosting guests.
func TestHostedGuestStealsWeightedCPUShare(t *testing.T) {
	// measure returns the simulated time the driver domain needs for a
	// fixed amount of its own computation while hosting (or not) a
	// background burner with the given weight.
	measure := func(burner bool, weight uint32) hw.Cycles {
		m := hw.NewMachine(hw.Config{MemBytes: 128 << 20, NumCPUs: 1})
		mc, err := core.New(core.Config{Machine: m})
		if err != nil {
			t.Fatal(err)
		}
		boot := m.BootCPU()
		mc.K.Blk = &guest.NativeBlock{K: mc.K, Disk: m.Disk}
		mc.K.Net = &guest.NativeNet{K: mc.K, NIC: m.NIC}
		if err := mc.SwitchSync(boot, core.ModePartialVirtual); err != nil {
			t.Fatal(err)
		}
		if burner {
			domU, err := mc.VMM.HypDomctlCreateFromFrames(boot, mc.Dom, "burner", 256)
			if err != nil {
				t.Fatal(err)
			}
			domU.BackgroundWork = func(c *hw.CPU, budget hw.Cycles) {
				c.Clk.Advance(budget) // pure compute, no polling
			}
			mc.VMM.SetWeight(domU, weight)
			mc.VMM.SetWeight(mc.Dom, 256)
		}
		var elapsed hw.Cycles
		mc.K.Spawn(boot, "worker", guest.DefaultImage("worker"), func(p *guest.Proc) {
			start := p.CPU().Now()
			p.Work(hw.Cycles(m.Hz / 4)) // 250 ms of own computation
			elapsed = p.CPU().Now() - start
		})
		mc.K.Run(boot)
		return elapsed
	}

	alone := measure(false, 0)
	equal := measure(true, 256) // 50/50 share with the burner
	light := measure(true, 64)  // burner gets 1/5
	zeroed := measure(true, 0)  // weight 0: never scheduled

	// Equal weights: the driver domain's work takes roughly twice as
	// long (it keeps only ~half the CPU).
	ratio := float64(equal) / float64(alone)
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("equal-weight slowdown = %.2fx, want ~2x", ratio)
	}
	// A lighter burner steals less.
	lightRatio := float64(light) / float64(alone)
	if lightRatio >= ratio || lightRatio < 1.05 {
		t.Errorf("light burner slowdown = %.2fx (equal was %.2fx)", lightRatio, ratio)
	}
	// Weight zero steals nothing measurable.
	zeroRatio := float64(zeroed) / float64(alone)
	if zeroRatio > 1.05 {
		t.Errorf("weight-0 burner still stole CPU: %.2fx", zeroRatio)
	}
}
