package bench

import (
	"fmt"
	"io"

	"repro/internal/guest"
	"repro/internal/hw"
	"repro/internal/vo"
	"repro/internal/workloads"
	"repro/internal/xen"
)

// Two further design-choice ablations called out in DESIGN.md.

// BatchingAblationResult quantifies mmu_update multicall batching: one
// world switch amortized over a whole batch versus one world switch per
// entry. Xen-Linux batches where it can (mmap populate, multicalls);
// paths that cannot batch (demand faults, 2.6.16-era fork copies) pay
// per entry — the difference below is why that matters.
type BatchingAblationResult struct {
	Entries       int
	BatchedUS     float64
	PerEntryUS    float64
	SpeedupFactor float64
}

// BatchingAblation installs the same set of entries both ways on a live
// pinned tree under an active VMM.
func BatchingAblation() (BatchingAblationResult, error) {
	res := BatchingAblationResult{Entries: 512}

	build := func() (*System, *guest.Proc, error) {
		s, err := Build(X0, Options{})
		if err != nil {
			return nil, nil, err
		}
		return s, nil, nil
	}

	run := func(batched bool) (float64, error) {
		s, _, err := build()
		if err != nil {
			return 0, err
		}
		var us float64
		s.Run("batching", func(p *guest.Proc) {
			k := p.K
			c := p.CPU()
			// A live leaf table to fill: map one page so the table and
			// its pin exist, then write the remaining slots directly
			// through the virtualization object.
			base := p.Mmap(1, guest.ProtRead|guest.ProtWrite, true)
			slot, ok := p.AS.PT.ExistingSlot(base)
			if !ok {
				panic("no slot")
			}
			updates := make([]xen.MMUUpdate, 0, res.Entries)
			for i := 0; i < res.Entries; i++ {
				idx := (slot.Index + 1 + i) % hw.PTEntries
				if idx == slot.Index {
					continue
				}
				pfn := k.Frames.Alloc()
				updates = append(updates, xen.MMUUpdate{Table: slot.Table, Index: idx,
					New: hw.MakePTE(pfn, hw.PTEPresent|hw.PTEUser)})
			}
			start := c.Now()
			if batched {
				k.VO().WritePTEBatch(c, updates)
			} else {
				for _, u := range updates {
					k.VO().WritePTE(c, u.Table, u.Index, u.New)
				}
			}
			us = s.Micros(c.Now() - start)
			// Clear the raw entries again (they bypassed the kernel's
			// page accounting) and return the frames.
			clear := make([]xen.MMUUpdate, len(updates))
			for i, u := range updates {
				clear[i] = xen.MMUUpdate{Table: u.Table, Index: u.Index}
			}
			k.VO().WritePTEBatch(c, clear)
			for _, u := range updates {
				k.Frames.Free(u.New.Frame())
			}
			p.Munmap(base)
		})
		return us, nil
	}

	var err error
	if res.BatchedUS, err = run(true); err != nil {
		return res, err
	}
	if res.PerEntryUS, err = run(false); err != nil {
		return res, err
	}
	res.SpeedupFactor = res.PerEntryUS / res.BatchedUS
	return res, nil
}

// WriteBatchingAblation renders the comparison.
func WriteBatchingAblation(w io.Writer, r BatchingAblationResult) {
	fmt.Fprintln(w, "mmu_update batching ablation (multicalls vs one hypercall per entry):")
	fmt.Fprintf(w, "  %d entries, batched   : %10.1f us\n", r.Entries, r.BatchedUS)
	fmt.Fprintf(w, "  %d entries, per entry : %10.1f us  (%.1fx slower)\n",
		r.Entries, r.PerEntryUS, r.SpeedupFactor)
}

// EmulationAblationResult compares the two ways a virtualized kernel's
// single-entry page-table stores can reach the VMM (§5.3): an explicit
// hypercall (the VO approach) or trap-and-emulation of a direct store
// (no call-site modification, but a full fault round trip per write).
type EmulationAblationResult struct {
	Entries      int
	HypercallUS  float64
	TrapEmulUS   float64
	PenaltyRatio float64
}

// EmulationAblation performs the same single-entry stores both ways.
func EmulationAblation() (EmulationAblationResult, error) {
	res := EmulationAblationResult{Entries: 256}

	run := func(trap bool) (float64, error) {
		s, err := Build(X0, Options{})
		if err != nil {
			return 0, err
		}
		vobj := s.K.VO().(*vo.Virtual)
		vobj.TrapEmulate = trap
		var us float64
		s.Run("emul", func(p *guest.Proc) {
			k := p.K
			c := p.CPU()
			base := p.Mmap(1, guest.ProtRead|guest.ProtWrite, true)
			slot, _ := p.AS.PT.ExistingSlot(base)
			frames := make([]hw.PFN, res.Entries)
			for i := range frames {
				frames[i] = k.Frames.Alloc()
			}
			start := c.Now()
			for i, pfn := range frames {
				idx := (slot.Index + 1 + i) % hw.PTEntries
				k.VO().WritePTE(c, slot.Table, idx,
					hw.MakePTE(pfn, hw.PTEPresent|hw.PTEUser))
			}
			us = s.Micros(c.Now() - start)
			for i, pfn := range frames {
				idx := (slot.Index + 1 + i) % hw.PTEntries
				k.VO().WritePTE(c, slot.Table, idx, 0)
				k.Frames.Free(pfn)
			}
			p.Munmap(base)
		})
		return us, nil
	}
	var err error
	if res.HypercallUS, err = run(false); err != nil {
		return res, err
	}
	if res.TrapEmulUS, err = run(true); err != nil {
		return res, err
	}
	res.PenaltyRatio = res.TrapEmulUS / res.HypercallUS
	return res, nil
}

// WriteEmulationAblation renders the comparison.
func WriteEmulationAblation(w io.Writer, r EmulationAblationResult) {
	fmt.Fprintln(w, "Sensitive-store path ablation (S5.3: hypercall vs trap-and-emulate):")
	fmt.Fprintf(w, "  %d stores via hypercall      : %10.1f us\n", r.Entries, r.HypercallUS)
	fmt.Fprintf(w, "  %d stores via trap-emulation : %10.1f us  (%.2fx)\n",
		r.Entries, r.TrapEmulUS, r.PenaltyRatio)
}

// AddrSpaceAblationResult quantifies the unified address-space layout of
// §3.2.2: because the VMM lives in a reserved hole of every address
// space, entering it costs no TLB flush. If the VMM lived in its own
// address space, every world switch would flush the TLB and the guest
// would re-fault its working set afterwards.
type AddrSpaceAblationResult struct {
	SharedForkUS   float64 // fork latency, VMM in the shared hole
	SeparateForkUS float64 // fork latency, VMM in its own address space
	SharedCtxUS    float64
	SeparateCtxUS  float64
}

// AddrSpaceAblation runs the fork and context-switch microbenchmarks on
// X-0 under both layouts; the separate-space layout is modeled by adding
// a TLB flush plus working-set refill to every world switch.
func AddrSpaceAblation() (AddrSpaceAblationResult, error) {
	var res AddrSpaceAblationResult

	run := func(separate bool) (fork, ctx float64, err error) {
		costs := hw.DefaultCosts()
		if separate {
			// Every guest<->VMM crossing now pays an address-space
			// switch: full TLB flush plus re-touching the hot working
			// set (8 pages) on return.
			costs.WorldSwitch += costs.TLBFlush + 8*costs.TLBRefillPage
		}
		s, err := Build(X0, Options{Costs: costs})
		if err != nil {
			return 0, 0, err
		}
		r := workloads.Lmbench(s.Target())
		return r.ForkProc, r.Ctx2p0k, nil
	}

	var err error
	if res.SharedForkUS, res.SharedCtxUS, err = run(false); err != nil {
		return res, err
	}
	if res.SeparateForkUS, res.SeparateCtxUS, err = run(true); err != nil {
		return res, err
	}
	return res, nil
}

// WriteAddrSpaceAblation renders the comparison.
func WriteAddrSpaceAblation(w io.Writer, r AddrSpaceAblationResult) {
	fmt.Fprintln(w, "Address-space layout ablation (S3.2.2: VMM in a reserved hole")
	fmt.Fprintln(w, "of every address space vs its own address space):")
	fmt.Fprintf(w, "  fork, shared layout   : %10.1f us\n", r.SharedForkUS)
	fmt.Fprintf(w, "  fork, separate space  : %10.1f us  (+%.0f%%)\n",
		r.SeparateForkUS, (r.SeparateForkUS/r.SharedForkUS-1)*100)
	fmt.Fprintf(w, "  ctx 2p/0k, shared     : %10.2f us\n", r.SharedCtxUS)
	fmt.Fprintf(w, "  ctx 2p/0k, separate   : %10.2f us  (+%.0f%%)\n",
		r.SeparateCtxUS, (r.SeparateCtxUS/r.SharedCtxUS-1)*100)
}
