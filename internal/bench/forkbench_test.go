package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestForkPointSharingCounts(t *testing.T) {
	const pages, clones, dirty = 64, 8, 4
	pt, err := forkPoint(pages, clones, dirty)
	if err != nil {
		t.Fatal(err)
	}
	// Base: 64 unique data frames plus 2 table frames.
	if pt.BaseFrames != pages+2 {
		t.Fatalf("base frames = %d, want %d", pt.BaseFrames, pages+2)
	}
	// Each clone adds exactly its dirt plus the 2 relocated table
	// frames — stored bytes proportional to dirtied frames, not fleet
	// size times image size.
	wantDelta := clones * (dirty + 2)
	if pt.DeltaTotal != wantDelta {
		t.Fatalf("delta total = %d, want %d", pt.DeltaTotal, wantDelta)
	}
	// Identical dirt dedups to one stored copy; the 2 relocated table
	// frames per clone are clone-specific and cannot.
	if want := pt.BaseFrames + dirty + 2*clones; pt.StoreFrames != want {
		t.Fatalf("store frames = %d, want %d", pt.StoreFrames, want)
	}
	if pt.PromotedTotal != clones*(dirty+2) {
		t.Fatalf("promoted = %d, want %d", pt.PromotedTotal, clones*(dirty+2))
	}
	if pt.SharedTotal != clones*(pages+2-dirty-2) {
		t.Fatalf("shared = %d, want %d", pt.SharedTotal, clones*(pages-dirty))
	}
	if pt.RefLeaks != 0 {
		t.Fatalf("%d ref leaks", pt.RefLeaks)
	}
	if pt.DedupRatio <= 1 {
		t.Fatalf("dedup ratio = %v, want > 1", pt.DedupRatio)
	}
	// A fork must be far cheaper than copying the image: under half a
	// PageCopy per frame.
	if pt.CloneCycMean > uint64(pages)*900/2 {
		t.Fatalf("clone mean %d cycles — copy-dominated", pt.CloneCycMean)
	}
}

func TestForkBaselineRoundTripAndCompare(t *testing.T) {
	pts := []ForkPoint{{
		Pages: 64, Clones: 8, DirtyPages: 4,
		BaseFrames: 66, StoreFrames: 114, StoreBytes: 114 * 4096,
		SharedTotal: 480, PromotedTotal: 48, DeltaTotal: 48,
		DedupRatio: 1.5, CloneCycMean: 4000, DeltaCycMean: 9000,
	}}
	path := filepath.Join(t.TempDir(), "BENCH_fork.json")
	if err := WriteForkBaseline(path, pts); err != nil {
		t.Fatal(err)
	}
	base, err := LoadForkBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if v := CompareForkBaseline(base, pts, 25); len(v) != 0 {
		t.Fatalf("self-compare violated: %v", v)
	}
	// Cycle drift inside the band passes; outside fails.
	drift := pts
	drift[0].CloneCycMean = 4900
	if v := CompareForkBaseline(base, drift, 25); len(v) != 0 {
		t.Fatalf("in-band drift flagged: %v", v)
	}
	drift[0].CloneCycMean = 6000
	if v := CompareForkBaseline(base, drift, 25); len(v) != 1 {
		t.Fatalf("out-of-band drift not flagged: %v", v)
	}
	// Sharing counts are exact: any change is a violation.
	drift[0].CloneCycMean = 4000
	drift[0].StoreFrames++
	v := CompareForkBaseline(base, drift, 25)
	if len(v) != 1 || !strings.Contains(v[0], "store_frames") {
		t.Fatalf("store_frames drift not flagged exactly: %v", v)
	}
}
