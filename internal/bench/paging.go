package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/hw"
)

// PagingAblationResult compares direct paging against shadow paging on
// the mode-switch path (§3.2.2: "as the page table entries in guest
// operating systems are directly installed in hardware, no translation
// is required during a mode switch... Mercury utilizes the direct access
// mode").
type PagingAblationResult struct {
	DirectAttachUS float64
	ShadowAttachUS float64
	DirectDetachUS float64
	ShadowDetachUS float64
	ShadowFrames   int // VMM memory consumed by shadows while attached
}

// PagingAblation measures attach/detach times for both paging modes
// under the standard mode-switch process load.
func PagingAblation() (PagingAblationResult, error) {
	var res PagingAblationResult

	run := func(shadow bool) (attach, detach float64, frames int, err error) {
		cfg := hw.DefaultConfig()
		cfg.NumCPUs = 1
		m := hw.NewMachine(cfg)
		mc, err := core.New(core.Config{Machine: m, ShadowPaging: shadow})
		if err != nil {
			return 0, 0, 0, err
		}
		k := mc.K
		boot := m.BootCPU()
		k.Spawn(boot, "load", guest.DefaultImage("load"), func(p *guest.Proc) {
			// The same resident load ModeSwitchBench uses.
			hold := k.NewPipe()
			ready := k.NewPipe()
			for i := 0; i < switchLoadProcs; i++ {
				p.Fork("load", func(lp *guest.Proc) {
					img := guest.DefaultImage("load")
					lp.Touch(guest.TextBase, img.TextPages, false)
					base := lp.Mmap(128, guest.ProtRead|guest.ProtWrite, true)
					lp.Touch(base, 128, true)
					lp.PipeWrite(ready, 1)
					lp.PipeRead(hold, 1)
					lp.Exit(0)
				})
			}
			p.PipeRead(ready, switchLoadProcs)
			for i := 0; i < 5; i++ {
				if err := mc.SwitchSync(p.CPU(), core.ModePartialVirtual); err != nil {
					panic(err)
				}
				if shadow && mc.VMM.ShadowFramesInUse() > frames {
					frames = mc.VMM.ShadowFramesInUse()
				}
				if err := mc.SwitchSync(p.CPU(), core.ModeNative); err != nil {
					panic(err)
				}
			}
			p.PipeWrite(hold, switchLoadProcs)
			for i := 0; i < switchLoadProcs; i++ {
				p.Wait()
			}
		})
		k.Run(boot)
		return m.Micros(mc.Stats.LastAttachCyc.Load()),
			m.Micros(mc.Stats.LastDetachCyc.Load()), frames, nil
	}

	var err error
	if res.DirectAttachUS, res.DirectDetachUS, _, err = run(false); err != nil {
		return res, fmt.Errorf("bench: direct paging run: %w", err)
	}
	if res.ShadowAttachUS, res.ShadowDetachUS, res.ShadowFrames, err = run(true); err != nil {
		return res, fmt.Errorf("bench: shadow paging run: %w", err)
	}
	return res, nil
}

// WritePagingAblation renders the comparison.
func WritePagingAblation(w io.Writer, r PagingAblationResult) {
	fmt.Fprintln(w, "Paging-mode ablation (S3.2.2: why Mercury uses direct mode):")
	fmt.Fprintf(w, "  attach, direct paging : %10.1f us\n", r.DirectAttachUS)
	fmt.Fprintf(w, "  attach, shadow paging : %10.1f us  (+%.0f%%: every entry translated into a shadow)\n",
		r.ShadowAttachUS, (r.ShadowAttachUS/r.DirectAttachUS-1)*100)
	fmt.Fprintf(w, "  detach, direct paging : %10.1f us\n", r.DirectDetachUS)
	fmt.Fprintf(w, "  detach, shadow paging : %10.1f us\n", r.ShadowDetachUS)
	fmt.Fprintf(w, "  shadow footprint      : %d frames of VMM memory while attached\n",
		r.ShadowFrames)
}
