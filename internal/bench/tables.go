package bench

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/workloads"
)

// Target adapts a built system for the workload suite.
func (s *System) Target() *workloads.Target {
	return &workloads.Target{
		K:        s.K,
		M:        s.M,
		RemoteID: 2,
		Run:      func(name string, body guest.Body) { s.Run(name, body) },
	}
}

// TableResult is one lmbench latency table (Table 1 or Table 2): rows
// are benchmarks, columns are the six systems, values in microseconds.
type TableResult struct {
	Name    string
	NCPU    int
	Columns []SystemKey
	Rows    []string
	Values  [][]float64 // [row][column]
}

// LmbenchTable regenerates Table 1 (ncpu=1) or Table 2 (ncpu=2): the
// OS-related lmbench latencies across all six configurations.
func LmbenchTable(ncpu int, opt Options) (TableResult, error) {
	opt.NCPU = ncpu
	name := "Table 1: lmbench latency, uniprocessor mode (us)"
	if ncpu > 1 {
		name = "Table 2: lmbench latency, SMP mode (us)"
	}
	res := TableResult{Name: name, NCPU: ncpu, Columns: AllSystems}
	var cols [][]float64
	for _, key := range AllSystems {
		s, err := Build(key, opt)
		if err != nil {
			return res, fmt.Errorf("bench: %s: %w", key, err)
		}
		r := workloads.Lmbench(s.Target())
		rows, vals := r.Rows()
		res.Rows = rows
		cols = append(cols, vals)
	}
	res.Values = make([][]float64, len(res.Rows))
	for i := range res.Rows {
		res.Values[i] = make([]float64, len(cols))
		for j := range cols {
			res.Values[i][j] = cols[j][i]
		}
	}
	return res, nil
}
