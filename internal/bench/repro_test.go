package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// Reproduction-band assertions: these tests pin the *shape* of the
// paper's evaluation — who wins, by roughly what factor — so a
// regression in any subsystem's cost accounting shows up as a test
// failure, not just a drifted table.

// ratio helpers.
func within(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s = %.3f, want within [%.2f, %.2f]", name, got, lo, hi)
	}
}

func TestTable1ReproductionBands(t *testing.T) {
	tb, err := LmbenchTable(1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	col := map[SystemKey]int{}
	for i, k := range tb.Columns {
		col[k] = i
	}
	row := map[string]int{}
	for i, r := range tb.Rows {
		row[r] = i
	}
	v := func(r string, k SystemKey) float64 { return tb.Values[row[r]][col[k]] }

	// Mercury native tracks native Linux (paper: fork 1.16x, others less).
	for _, r := range tb.Rows {
		within(t, r+" M-N/N-L", v(r, MN)/v(r, NL), 0.98, 1.25)
	}
	// Mercury virtual tracks Xen dom0; hosted domU tracks Xen domU.
	for _, r := range tb.Rows {
		within(t, r+" M-V/X-0", v(r, MV)/v(r, X0), 0.95, 1.08)
		within(t, r+" M-U/X-U", v(r, MU)/v(r, XU), 0.95, 1.08)
	}
	// Virtualization ratios land in the paper's neighborhood.
	within(t, "fork X-0/N-L", v("Fork Process", X0)/v("Fork Process", NL), 3.5, 6.5)
	within(t, "exec X-0/N-L", v("Exec Process", X0)/v("Exec Process", NL), 2.3, 4.3)
	within(t, "sh X-0/N-L", v("Sh Process", X0)/v("Sh Process", NL), 1.8, 3.5)
	within(t, "ctx2p X-0/N-L", v("Ctx (2p/0k)", X0)/v("Ctx (2p/0k)", NL), 2.2, 4.0)
	within(t, "mmap X-0/N-L", v("Mmap LT", X0)/v("Mmap LT", NL), 1.8, 3.5)
	within(t, "prot X-0/N-L", v("Prot Fault", X0)/v("Prot Fault", NL), 1.3, 2.0)
	within(t, "pf X-0/N-L", v("Page Fault", X0)/v("Page Fault", NL), 1.7, 3.2)
	// Working-set dilution: the 64k ctx ratio is the smallest ctx ratio.
	r64 := v("Ctx (16p/64k)", X0) / v("Ctx (16p/64k)", NL)
	r0 := v("Ctx (2p/0k)", X0) / v("Ctx (2p/0k)", NL)
	if r64 >= r0 {
		t.Errorf("64k ctx ratio (%.2f) not diluted below 0k ratio (%.2f)", r64, r0)
	}
	// Native absolute values stay near the calibration targets.
	within(t, "fork N-L us", v("Fork Process", NL), 80, 140)
	within(t, "mmap N-L us", v("Mmap LT", NL), 2800, 4800)
	within(t, "pf N-L us", v("Page Fault", NL), 0.9, 1.8)
}

func TestTable2SMPInflation(t *testing.T) {
	t1, err := LmbenchTable(1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := LmbenchTable(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// SMP inflates native rows (paper: +20–45 %), and the virtualized
	// columns inflate by a smaller relative factor.
	for i, r := range t1.Rows {
		nl := t2.Values[i][0] / t1.Values[i][0]
		within(t, r+" SMP/UP N-L", nl, 1.0, 1.6)
		x0 := t2.Values[i][2] / t1.Values[i][2]
		if x0 > nl+0.15 {
			t.Errorf("%s: X-0 inflated more than N-L (%.2f vs %.2f)", r, x0, nl)
		}
	}
}

func TestFig3ReproductionBands(t *testing.T) {
	f, err := AppFigure(1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, b := range f.Benchmarks {
		idx[b] = i
	}
	sys := map[SystemKey]int{}
	for i, s := range f.Systems {
		sys[s] = i
	}
	rel := func(b string, k SystemKey) float64 { return f.Relative[idx[b]][sys[k]] }

	// Mercury adds nothing on top of the mode it runs in.
	for _, b := range f.Benchmarks {
		within(t, b+" M-N", rel(b, MN), 0.98, 1.02)
		within(t, b+" M-V/X-0", rel(b, MV)/rel(b, X0), 0.97, 1.03)
		within(t, b+" M-U/X-U", rel(b, MU)/rel(b, XU), 0.97, 1.03)
	}
	// OSDB-IR loses >20 % under virtualization (paper's claim).
	within(t, "OSDB X-0", rel("OSDB-IR", X0), 0.6, 0.82)
	// dbench: domU at or slightly above native (the §7.3 anomaly).
	within(t, "dbench X-U", rel("dbench", XU), 0.98, 1.15)
	// Kernel build loses ~9 % (we land 9–15 %).
	within(t, "kbuild X-0", rel("kernel-build", X0), 0.82, 0.95)
	// Ping: dom0 loses >15 %, domU loses more than dom0.
	within(t, "ping X-0", rel("ping", X0), 0.70, 0.88)
	if rel("ping", XU) >= rel("ping", X0) {
		t.Errorf("ping: domU (%.2f) not worse than dom0 (%.2f)",
			rel("ping", XU), rel("ping", X0))
	}
	// Iperf: domU loses ~60–70 %.
	within(t, "iperf-TCP X-U", rel("iperf-TCP", XU), 0.25, 0.50)
	within(t, "iperf-UDP X-U", rel("iperf-UDP", XU), 0.25, 0.50)
	if rel("iperf-UDP", X0) <= rel("iperf-UDP", XU) {
		t.Error("iperf: dom0 not better than domU")
	}
}

func TestModeSwitchReproductionBands(t *testing.T) {
	r, err := ModeSwitchBench(10, core.TrackRecompute)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ~0.22 ms attach, ~0.06 ms detach. Allow a generous band.
	within(t, "attach ms", r.ToVirtualMicros/1000, 0.10, 0.40)
	within(t, "detach ms", r.ToNativeMicros/1000, 0.02, 0.12)
	if r.ToNativeMicros >= r.ToVirtualMicros {
		t.Error("detach not cheaper than attach")
	}
	if r.FixedFrames == 0 {
		t.Error("selector fixup never ran under load")
	}
}

func TestAblationReproductionBands(t *testing.T) {
	a, err := TrackingAblation()
	if err != nil {
		t.Fatal(err)
	}
	within(t, "active-tracking native overhead %", a.OverheadPct, 1.0, 5.0)
	if a.ActiveAttachUS >= a.RecomputeAttachUS {
		t.Error("active tracking did not shorten the attach")
	}
}

// TestLmbenchDeterministicUP: the UP simulation is fully deterministic.
func TestLmbenchDeterministicUP(t *testing.T) {
	run := func() workloads.LmbenchResult {
		s, err := Build(NL, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return workloads.Lmbench(s.Target())
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("UP runs differ:\n%+v\n%+v", a, b)
	}
}

func TestFig4ReproductionBands(t *testing.T) {
	f, err := AppFigure(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, b := range f.Benchmarks {
		idx[b] = i
	}
	sys := map[SystemKey]int{}
	for i, s := range f.Systems {
		sys[s] = i
	}
	rel := func(b string, k SystemKey) float64 { return f.Relative[idx[b]][sys[k]] }

	// §7.3: "the overhead in Mercury in the three modes is less than 2%
	// compared to native Linux, domain0 and domainU accordingly". SMP
	// dbench carries genuine scheduling-order variance (four clients
	// race for the shared writeback threshold across two CPUs), so its
	// band is wider — the paper's numbers are 5-run averages.
	for _, b := range f.Benchmarks {
		lo, hi := 0.98, 1.02
		if b == "dbench" {
			lo, hi = 0.80, 1.25
		}
		within(t, b+" SMP M-N", rel(b, MN), lo, hi)
		within(t, b+" SMP M-V/X-0", rel(b, MV)/rel(b, X0), lo, hi)
		within(t, b+" SMP M-U/X-U", rel(b, MU)/rel(b, XU), lo, hi)
	}
	// The virtualization losses persist under SMP.
	within(t, "SMP OSDB X-0", rel("OSDB-IR", X0), 0.6, 0.85)
	within(t, "SMP kbuild X-0", rel("kernel-build", X0), 0.8, 0.95)
	if rel("iperf-UDP", XU) >= rel("iperf-UDP", X0) {
		t.Error("SMP iperf: domU not worse than dom0")
	}
}
