package bench

import (
	"path/filepath"
	"reflect"
	"testing"
)

func TestMigrateSweepVerifiedAndDeterministic(t *testing.T) {
	pts, err := MigrateSweep(Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := len(MigratePages) * len(MigrateDirty) * len(MigrateSLOsUS)
	if len(pts) != want {
		t.Fatalf("sweep has %d points, want %d", len(pts), want)
	}
	for _, pt := range pts {
		if !pt.Verified {
			t.Fatalf("point %dpg/%ddirty/slo=%.0fus migrated unverified",
				pt.Pages, pt.DirtyPerRound, pt.SLOUs)
		}
		if pt.PagesSent < pt.Pages {
			t.Fatalf("point %dpg sent only %d pages", pt.Pages, pt.PagesSent)
		}
		if pt.Rounds < 1 {
			t.Fatalf("point %dpg/%ddirty reports %d pre-copy rounds", pt.Pages, pt.DirtyPerRound, pt.Rounds)
		}
		if pt.StopReason == "" {
			t.Fatal("missing stop reason")
		}
		if pt.DowntimeCyc == 0 || pt.TotalCyc < pt.DowntimeCyc {
			t.Fatalf("implausible timing: downtime=%d total=%d", pt.DowntimeCyc, pt.TotalCyc)
		}
	}

	// The simulation is deterministic — that is what makes the committed
	// baseline meaningful.
	pts2, err := MigrateSweep(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pts, pts2) {
		t.Fatal("two sweeps diverge")
	}
}

func TestMigrateBaselineRoundTripAndCompare(t *testing.T) {
	pts := []MigratePoint{
		{Pages: 512, DirtyPerRound: 8, SLOUs: 0, Rounds: 2, PagesSent: 520,
			DowntimeCyc: 1000, TotalCyc: 5000, StopReason: "threshold", Verified: true},
		{Pages: 512, DirtyPerRound: 64, SLOUs: 300, Rounds: 3, PagesSent: 700,
			DowntimeCyc: 2000, TotalCyc: 9000, StopReason: "slo", Verified: true},
	}
	path := filepath.Join(t.TempDir(), "BENCH_migrate.json")
	if err := WriteMigrateBaseline(path, pts); err != nil {
		t.Fatal(err)
	}
	base, err := LoadMigrateBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if base.Schema != MigrateBaselineSchema || !reflect.DeepEqual(base.Sweep, pts) {
		t.Fatalf("round trip mangled the baseline: %+v", base)
	}

	if v := CompareMigrateBaseline(base, pts, 25); len(v) != 0 {
		t.Fatalf("identical sweep violates baseline: %v", v)
	}

	// Cycle drift within tolerance passes; beyond it breaches.
	drift := make([]MigratePoint, len(pts))
	copy(drift, pts)
	drift[0].DowntimeCyc = 1100 // +10%
	if v := CompareMigrateBaseline(base, drift, 25); len(v) != 0 {
		t.Fatalf("10%% drift breached a 25%% tolerance: %v", v)
	}
	drift[0].DowntimeCyc = 2000 // +100%
	if v := CompareMigrateBaseline(base, drift, 25); len(v) != 1 {
		t.Fatalf("100%% drift: got %d violations, want 1: %v", len(v), v)
	}

	// Algorithmic fields match exactly — a changed stop reason is a
	// behaviour change, not noise.
	algo := make([]MigratePoint, len(pts))
	copy(algo, pts)
	algo[1].StopReason = "diverging"
	algo[1].Verified = false
	if v := CompareMigrateBaseline(base, algo, 25); len(v) != 2 {
		t.Fatalf("algorithmic drift: got %d violations, want 2: %v", len(v), v)
	}

	// Missing and extra points are both violations.
	if v := CompareMigrateBaseline(base, pts[:1], 25); len(v) != 1 {
		t.Fatalf("missing point: got %v", v)
	}
	extra := append(append([]MigratePoint{}, pts...), MigratePoint{
		Pages: 9999, DirtyPerRound: 1, SLOUs: 0})
	if v := CompareMigrateBaseline(base, extra, 25); len(v) != 1 {
		t.Fatalf("extra point: got %v", v)
	}
}
