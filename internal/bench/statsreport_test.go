package bench

import (
	"strings"
	"testing"

	"repro/internal/guest"
	"repro/internal/workloads"
)

func TestWriteStatsCoversSubsystems(t *testing.T) {
	s, err := Build(MV, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Run("work", func(p *guest.Proc) {
		fd, _ := p.Creat("/f")
		p.Write(fd, 32<<10)
		p.Close(fd)
		p.Fork("c", func(cp *guest.Proc) { cp.Exit(0) })
		p.Wait()
		_ = p.Ping(2, 56)
	})
	var sb strings.Builder
	s.WriteStats(&sb)
	out := sb.String()
	for _, want := range []string{"kernel:", "fs:", "cpu0:", "disk:", "nic:",
		"vmm:", "mercury:", "hypercalls"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats report missing %q:\n%s", want, out)
		}
	}
	_ = workloads.LmbenchResult{}
}

func TestCSVRendering(t *testing.T) {
	tb := TableResult{
		Name: "t", Columns: []SystemKey{NL, X0},
		Rows:   []string{"Fork Process"},
		Values: [][]float64{{98, 482}},
	}
	var sb strings.Builder
	WriteTableCSV(&sb, tb)
	want := "benchmark,N-L,X-0\n\"Fork Process\",98.000,482.000\n"
	if sb.String() != want {
		t.Fatalf("table csv = %q", sb.String())
	}

	fig := FigureResult{
		Benchmarks: []string{"dbench"},
		Systems:    []SystemKey{NL, XU},
		Relative:   [][]float64{{1, 1.05}},
		Raw:        [][]float64{{2900, 3000}},
		RawUnit:    []string{"MB/s"},
	}
	sb.Reset()
	WriteFigureCSV(&sb, fig)
	if !strings.Contains(sb.String(), "\"dbench\",1.0000,1.0500,2900.00,\"MB/s\"") {
		t.Fatalf("figure csv = %q", sb.String())
	}
}
