// Package bench builds the six system configurations of the paper's
// evaluation (§7.1) and runs the workload suite against them, rendering
// Tables 1–2, Figures 3–4, the mode-switch timings of §7.4 and the
// tracking-policy ablation of §5.1.2.
package bench
