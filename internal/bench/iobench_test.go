package bench

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/workloads"
)

func sampleIOPoint(t *testing.T, queues, depth int, arrival hw.Cycles) IOPoint {
	t.Helper()
	pt := IOPoint{Queues: queues, Depth: depth, Arrival: arrival}
	nat, err := workloads.RunIOServer(workloads.IOConfig{
		Queues: queues, Depth: depth, Requests: 300, MeanArrival: arrival, Seed: ioSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	virt, err := workloads.RunIOServer(workloads.IOConfig{
		Queues: queues, Depth: depth, Requests: 300, MeanArrival: arrival, Seed: ioSeed,
		Virtual: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	pt.Native, pt.Virtual = *nat, *virt
	return pt
}

// A baseline written to disk must load and self-compare clean, and a
// perturbed count must be flagged as an exact-field violation while a
// small latency drift stays inside the band.
func TestIOBaselineRoundTripAndCompare(t *testing.T) {
	pts := []IOPoint{sampleIOPoint(t, 1, 16, 6000)}
	res, err := workloads.RunIOServer(workloads.IOConfig{
		Queues: 2, Depth: 32, Requests: 400, MeanArrival: 6000, Seed: ioSeed,
		Virtual: true, SwitchMid: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sw := &IOSwitchPoint{Queues: 2, Depth: 32, Arrival: 6000, Result: *res}

	path := filepath.Join(t.TempDir(), "BENCH_io.json")
	if err := WriteIOBaseline(path, pts, sw); err != nil {
		t.Fatal(err)
	}
	base, err := LoadIOBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if v := CompareIOBaseline(base, pts, sw, 25); len(v) != 0 {
		t.Fatalf("self-compare violated: %v", v)
	}

	// A changed doorbell count is an exact violation regardless of band.
	bad := make([]IOPoint, len(pts))
	copy(bad, pts)
	bad[0].Virtual.ReqKicks++
	v := CompareIOBaseline(base, bad, sw, 25)
	if len(v) == 0 || !strings.Contains(strings.Join(v, ";"), "req_kicks") {
		t.Fatalf("perturbed req_kicks not flagged: %v", v)
	}

	// Latency drift inside the band passes; outside fails.
	drift := make([]IOPoint, len(pts))
	copy(drift, pts)
	drift[0].Virtual.P99 = drift[0].Virtual.P99 * 110 / 100
	if v := CompareIOBaseline(base, drift, sw, 25); len(v) != 0 {
		t.Fatalf("10%% drift flagged at 25%% tolerance: %v", v)
	}
	drift[0].Virtual.P99 = pts[0].Virtual.P99 * 2
	if v := CompareIOBaseline(base, drift, sw, 25); len(v) == 0 {
		t.Fatal("100% drift not flagged")
	}

	// A missing switch point is flagged both ways.
	if v := CompareIOBaseline(base, pts, nil, 25); len(v) == 0 {
		t.Fatal("missing switch point not flagged")
	}
}

// The acceptance criteria ride on the sweep's virtual points: the
// suppression ratio at depth >= 64 and the switch point's window
// quantiles. Pin them on a sample cell rather than the full grid.
func TestIOPointMeetsAcceptance(t *testing.T) {
	pt := sampleIOPoint(t, 1, 64, 3000)
	if pt.Virtual.SuppressionRatio < 5 {
		t.Fatalf("suppression ratio %.1f < 5 at depth 64", pt.Virtual.SuppressionRatio)
	}
	if pt.Virtual.Completed != pt.Virtual.Submitted {
		t.Fatalf("virtual cell lost requests: %d of %d", pt.Virtual.Completed, pt.Virtual.Submitted)
	}
	if pt.Native.Completed != pt.Native.Submitted {
		t.Fatalf("native cell lost requests: %d of %d", pt.Native.Completed, pt.Native.Submitted)
	}
}
