package bench

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestChaosCampaignExperiment: the benchtab chaos experiment runs on
// both processor counts with no detector gaps and lands its counters in
// the collector.
func TestChaosCampaignExperiment(t *testing.T) {
	col := obs.New(1)
	r, err := ChaosCampaign(9, 6, Options{Collector: col})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != 2 || r.Runs[0].NCPU != 1 || r.Runs[1].NCPU != 2 {
		t.Fatalf("runs: %+v", r.Runs)
	}
	for _, run := range r.Runs {
		if run.Report.Injected != 6 || run.Report.Missed != 0 {
			t.Fatalf("%d cpus: %s", run.NCPU, run.Report.Summary())
		}
	}
	if got := col.Registry.Counter("chaos", "faults_detected_total").Load(); got != 6 {
		t.Fatalf("detected counter = %d (uniprocessor run only)", got)
	}

	var b strings.Builder
	WriteChaos(&b, r)
	if !strings.Contains(b.String(), "mttr(us)") {
		t.Fatalf("table:\n%s", b.String())
	}
}
