package bench

import (
	"os"
	"testing"
)

// TestCalibrationReport prints the full Table 1 when -v is given; used
// while calibrating the cost model against the paper's native column.
// Enable with REPRO_CALIBRATE=1.
func TestCalibrationReport(t *testing.T) {
	if os.Getenv("REPRO_CALIBRATE") == "" {
		t.Skip("set REPRO_CALIBRATE=1 to print the calibration report")
	}
	tb, err := LmbenchTable(1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	WriteTable(os.Stdout, tb)
}

// TestCalibrationFigure prints Figure 3 data during calibration.
func TestCalibrationFigure(t *testing.T) {
	if os.Getenv("REPRO_CALIBRATE") == "" {
		t.Skip("set REPRO_CALIBRATE=1 to print the calibration report")
	}
	fig, err := AppFigure(1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	WriteFigure(os.Stdout, fig)
}

// TestCalibrationSMP prints Table 2 during calibration.
func TestCalibrationSMP(t *testing.T) {
	if os.Getenv("REPRO_CALIBRATE") == "" {
		t.Skip("set REPRO_CALIBRATE=1 to print the calibration report")
	}
	tb, err := LmbenchTable(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	WriteTable(os.Stdout, tb)
}

// TestCalibrationSwitch prints mode-switch timings during calibration.
func TestCalibrationSwitch(t *testing.T) {
	if os.Getenv("REPRO_CALIBRATE") == "" {
		t.Skip("set REPRO_CALIBRATE=1 to print the calibration report")
	}
	r, err := ModeSwitchBench(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	WriteSwitch(os.Stdout, r)
}
