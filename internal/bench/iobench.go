package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/hw"
	"repro/internal/workloads"
)

// IOPoint is one cell of the split-device I/O sweep: an open-loop
// request stream at one (queues, depth, arrival-rate) setting, run
// through both the native block layer (M-N) and the multi-queue split
// datapath (M-V). The request and doorbell counts are exact algorithmic
// outcomes of the deterministic simulation; only the cycle figures ride
// a tolerance band.
type IOPoint struct {
	Queues  int       `json:"queues"`
	Depth   int       `json:"depth"`
	Arrival hw.Cycles `json:"arrival_cyc"`

	Native  workloads.IOResult `json:"native"`
	Virtual workloads.IOResult `json:"virtual"`

	// SlowdownPct is the M-V mean-latency overhead over M-N at this
	// setting (negative means the split path was faster).
	SlowdownPct float64 `json:"slowdown_pct"`
}

// IOSwitchPoint is the mode-switch tail-latency story: one loaded M-V
// run with a V→N switch fired mid-stream, reporting the latency
// distribution of the requests in flight across the switch window.
type IOSwitchPoint struct {
	Queues  int       `json:"queues"`
	Depth   int       `json:"depth"`
	Arrival hw.Cycles `json:"arrival_cyc"`

	Result workloads.IOResult `json:"result"`
}

// The swept grid: queue counts x ring depths x open-loop arrival gaps.
// The 3000-cycle column saturates the datapath (arrival faster than the
// ~15k-cycle M-V service rate, latency dominated by queueing); 20000
// keeps it stable, so latency is dominated by the doorbell-coalescing
// wait — the batching-vs-latency tradeoff the threshold buys into.
var (
	IOQueues   = []int{1, 4}
	IODepths   = []int{16, 64}
	IOArrivals = []hw.Cycles{3000, 20000}
)

// ioSeed fixes the arrival schedule and read/write mix so the committed
// baseline's counts are reproducible bit-for-bit.
const ioSeed = 42

// ioPointRequests keeps each cell long enough for stable doorbell
// coalescing statistics without dominating the sweep's runtime.
const ioPointRequests = 5000

// ioSwitchRequests sizes the switch point so plenty of requests are in
// flight when the detach fires at the halfway mark.
const ioSwitchRequests = 8000

// IOSweep runs the I/O grid plus the mode-switch point.
func IOSweep(opt Options) ([]IOPoint, *IOSwitchPoint, error) {
	opt.fill()
	var pts []IOPoint
	for _, q := range IOQueues {
		for _, d := range IODepths {
			for _, arr := range IOArrivals {
				pt, err := ioPoint(opt, q, d, arr)
				if err != nil {
					return nil, nil, fmt.Errorf("bench: io %dq/%dd/%darr: %w", q, d, arr, err)
				}
				pts = append(pts, pt)
			}
		}
	}
	sw, err := ioSwitchPoint(opt, 4, 64, 6000)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: io switch point: %w", err)
	}
	return pts, sw, nil
}

func ioPoint(opt Options, queues, depth int, arrival hw.Cycles) (IOPoint, error) {
	pt := IOPoint{Queues: queues, Depth: depth, Arrival: arrival}
	nat, err := workloads.RunIOServer(workloads.IOConfig{
		Queues: queues, Depth: depth, Requests: ioPointRequests,
		MeanArrival: arrival, Seed: ioSeed, Policy: opt.Policy,
	})
	if err != nil {
		return pt, err
	}
	virt, err := workloads.RunIOServer(workloads.IOConfig{
		Queues: queues, Depth: depth, Requests: ioPointRequests,
		MeanArrival: arrival, Seed: ioSeed, Policy: opt.Policy,
		Virtual: true,
	})
	if err != nil {
		return pt, err
	}
	pt.Native, pt.Virtual = *nat, *virt
	if nat.Mean > 0 {
		pt.SlowdownPct = (float64(virt.Mean) - float64(nat.Mean)) / float64(nat.Mean) * 100
	}
	return pt, nil
}

func ioSwitchPoint(opt Options, queues, depth int, arrival hw.Cycles) (*IOSwitchPoint, error) {
	res, err := workloads.RunIOServer(workloads.IOConfig{
		Queues: queues, Depth: depth, Requests: ioSwitchRequests,
		MeanArrival: arrival, Seed: ioSeed, Policy: opt.Policy,
		Virtual: true, SwitchMid: true,
	})
	if err != nil {
		return nil, err
	}
	return &IOSwitchPoint{Queues: queues, Depth: depth, Arrival: arrival, Result: *res}, nil
}

// WriteIOSweep renders the sweep and the switch point as tables.
func WriteIOSweep(w io.Writer, pts []IOPoint, sw *IOSwitchPoint) {
	fmt.Fprintf(w, "Split-device I/O datapath: M-N native vs M-V multi-queue rings\n")
	fmt.Fprintf(w, "%3s %5s %7s %12s %12s %9s %9s %9s %8s\n",
		"q", "depth", "arrival", "nat p99(cyc)", "mv p99(cyc)", "slow(%)", "suppr(x)", "kicks", "forced")
	for _, pt := range pts {
		fmt.Fprintf(w, "%3d %5d %7d %12d %12d %9.1f %9.1f %9d %8d\n",
			pt.Queues, pt.Depth, pt.Arrival, pt.Native.P99, pt.Virtual.P99,
			pt.SlowdownPct, pt.Virtual.SuppressionRatio,
			pt.Virtual.ReqKicks+pt.Virtual.RespKicks, pt.Virtual.ForcedKicks)
	}
	if sw != nil {
		r := sw.Result
		fmt.Fprintf(w, "\nMode switch under load (%dq/%dd/%darr, %d requests)\n",
			sw.Queues, sw.Depth, sw.Arrival, r.Submitted)
		fmt.Fprintf(w, "  switch %d cyc; %d requests crossed the window: p50=%d p99=%d p999=%d cyc\n",
			r.SwitchCyc, r.WindowRequests, r.WindowP50, r.WindowP99, r.WindowP999)
		fmt.Fprintf(w, "  exactly-once: %d submitted, %d completed, %d dup, %d lost; final mode %s\n",
			r.Submitted, r.Completed, r.Duplicates, r.Lost, r.FinalMode)
	}
}

// IOBaselineSchema versions the committed I/O baseline.
const IOBaselineSchema = "mercury-bench/io/v1"

// IOBaseline is the serialized sweep: committed at the repo root as
// BENCH_io.json and diffed in CI like the other baselines.
type IOBaseline struct {
	Schema string         `json:"schema"`
	Sweep  []IOPoint      `json:"sweep"`
	Switch *IOSwitchPoint `json:"switch"`
}

// WriteIOBaseline writes the sweep to path as indented JSON.
func WriteIOBaseline(path string, pts []IOPoint, sw *IOSwitchPoint) error {
	b := IOBaseline{Schema: IOBaselineSchema, Sweep: pts, Switch: sw}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding io baseline: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: writing io baseline: %w", err)
	}
	return nil
}

// LoadIOBaseline reads a committed I/O baseline.
func LoadIOBaseline(path string) (*IOBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: reading io baseline: %w", err)
	}
	var b IOBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: decoding io baseline %s: %w", path, err)
	}
	if b.Schema != IOBaselineSchema {
		return nil, fmt.Errorf("bench: io baseline %s has schema %q, want %q",
			path, b.Schema, IOBaselineSchema)
	}
	return &b, nil
}

// CompareIOBaseline diffs a fresh sweep against the committed baseline.
// Points match by (queues, depth, arrival); request, doorbell, and
// backend counts must match exactly (algorithmic outcomes of a
// deterministic simulation), while latency and switch cycles may drift
// by tolerancePct.
func CompareIOBaseline(base *IOBaseline, fresh []IOPoint, sw *IOSwitchPoint, tolerancePct float64) []string {
	type key struct {
		queues  int
		depth   int
		arrival hw.Cycles
	}
	idx := make(map[key]IOPoint, len(base.Sweep))
	for _, pt := range base.Sweep {
		idx[key{pt.Queues, pt.Depth, pt.Arrival}] = pt
	}

	var violations []string
	cycles := func(name, field string, want, got hw.Cycles) {
		if want == 0 {
			if got != 0 {
				violations = append(violations,
					fmt.Sprintf("%s %s: baseline 0, measured %d", name, field, got))
			}
			return
		}
		dev := (float64(got) - float64(want)) / float64(want) * 100
		if dev < 0 {
			dev = -dev
		}
		if dev > tolerancePct {
			violations = append(violations,
				fmt.Sprintf("%s %s: baseline %d, measured %d (%.1f%% > %.1f%% tolerance)",
					name, field, want, got, dev, tolerancePct))
		}
	}
	exact := func(name, field string, want, got any) {
		if want != got {
			violations = append(violations,
				fmt.Sprintf("%s %s: baseline %v, measured %v", name, field, want, got))
		}
	}
	diffResult := func(name string, want, got workloads.IOResult) {
		exact(name, "submitted", want.Submitted, got.Submitted)
		exact(name, "completed", want.Completed, got.Completed)
		exact(name, "duplicates", want.Duplicates, got.Duplicates)
		exact(name, "lost", want.Lost, got.Lost)
		exact(name, "req_slots", want.ReqSlots, got.ReqSlots)
		exact(name, "req_kicks", want.ReqKicks, got.ReqKicks)
		exact(name, "resp_slots", want.RespSlots, got.RespSlots)
		exact(name, "resp_kicks", want.RespKicks, got.RespKicks)
		exact(name, "forced_kicks", want.ForcedKicks, got.ForcedKicks)
		exact(name, "backend_bursts", want.BackendBursts, got.BackendBursts)
		exact(name, "final_mode", want.FinalMode, got.FinalMode)
		cycles(name, "p50", want.P50, got.P50)
		cycles(name, "p99", want.P99, got.P99)
		cycles(name, "p999", want.P999, got.P999)
		cycles(name, "mean", want.Mean, got.Mean)
		cycles(name, "total_cyc", want.TotalCyc, got.TotalCyc)
	}

	seen := make(map[key]bool, len(fresh))
	for _, pt := range fresh {
		k := key{pt.Queues, pt.Depth, pt.Arrival}
		seen[k] = true
		want, ok := idx[k]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%dq/%dd/%darr: not in baseline", k.queues, k.depth, k.arrival))
			continue
		}
		name := fmt.Sprintf("%dq/%dd/%darr", k.queues, k.depth, k.arrival)
		diffResult(name+" native", want.Native, pt.Native)
		diffResult(name+" virtual", want.Virtual, pt.Virtual)
	}
	for k := range idx {
		if !seen[k] {
			violations = append(violations,
				fmt.Sprintf("%dq/%dd/%darr: in baseline but not measured", k.queues, k.depth, k.arrival))
		}
	}
	switch {
	case base.Switch == nil && sw != nil:
		violations = append(violations, "switch point: not in baseline")
	case base.Switch != nil && sw == nil:
		violations = append(violations, "switch point: in baseline but not measured")
	case base.Switch != nil && sw != nil:
		name := "switch"
		diffResult(name, base.Switch.Result, sw.Result)
		exact(name, "window_requests", base.Switch.Result.WindowRequests, sw.Result.WindowRequests)
		cycles(name, "switch_cyc", base.Switch.Result.SwitchCyc, sw.Result.SwitchCyc)
		cycles(name, "window_p50", base.Switch.Result.WindowP50, sw.Result.WindowP50)
		cycles(name, "window_p99", base.Switch.Result.WindowP99, sw.Result.WindowP99)
		cycles(name, "window_p999", base.Switch.Result.WindowP999, sw.Result.WindowP999)
	}
	return violations
}
