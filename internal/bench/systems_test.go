package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/hw"
	"repro/internal/xen"
)

// TestBuildAllSystems verifies every configuration boots and can run a
// trivial process to completion.
func TestBuildAllSystems(t *testing.T) {
	for _, key := range AllSystems {
		key := key
		t.Run(string(key), func(t *testing.T) {
			s, err := Build(key, Options{})
			if err != nil {
				t.Fatalf("Build(%s): %v", key, err)
			}
			ran := false
			s.Run("smoke", func(p *guest.Proc) {
				p.Work(10_000)
				ran = true
			})
			if !ran {
				t.Fatalf("%s: init process did not run", key)
			}
		})
	}
}

// TestSystemModes checks the Mercury configurations report the right
// execution mode.
func TestSystemModes(t *testing.T) {
	cases := []struct {
		key  SystemKey
		mode core.Mode
	}{
		{MN, core.ModeNative},
		{MV, core.ModePartialVirtual},
		{MU, core.ModePartialVirtual},
	}
	for _, tc := range cases {
		s, err := Build(tc.key, Options{})
		if err != nil {
			t.Fatalf("Build(%s): %v", tc.key, err)
		}
		if got := s.Mercury.Mode(); got != tc.mode {
			t.Errorf("%s: mode = %v, want %v", tc.key, got, tc.mode)
		}
	}
}

// TestForkExecSmoke runs the process-management syscalls on every
// configuration.
func TestForkExecSmoke(t *testing.T) {
	for _, key := range AllSystems {
		key := key
		t.Run(string(key), func(t *testing.T) {
			s, err := Build(key, Options{})
			if err != nil {
				t.Fatalf("Build(%s): %v", key, err)
			}
			var childRan bool
			s.Run("init", func(p *guest.Proc) {
				p.Fork("child", func(cp *guest.Proc) {
					cp.Work(1000)
					childRan = true
					cp.Exit(7)
				})
				pid, code, ok := p.Wait()
				if !ok || code != 7 || pid == 0 {
					t.Errorf("%s: wait = (%d,%d,%v)", key, pid, code, ok)
				}
			})
			if !childRan {
				t.Fatalf("%s: child did not run", key)
			}
		})
	}
}

// TestFileIOSmoke exercises the filesystem through each configuration's
// block driver (native or split frontend).
func TestFileIOSmoke(t *testing.T) {
	for _, key := range []SystemKey{NL, X0, XU, MV, MU} {
		key := key
		t.Run(string(key), func(t *testing.T) {
			s, err := Build(key, Options{})
			if err != nil {
				t.Fatalf("Build(%s): %v", key, err)
			}
			s.Run("io", func(p *guest.Proc) {
				fd, err := p.Creat("/data")
				if err != nil {
					t.Errorf("creat: %v", err)
					return
				}
				p.Write(fd, 64<<10)
				p.Close(fd)
				p.K.FS.Sync(p.CPU())
				fd2, err := p.Open("/data")
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				if got := p.Read(fd2, 64<<10); got != 64<<10 {
					t.Errorf("%s: read %d bytes, want %d", key, got, 64<<10)
				}
				p.Close(fd2)
			})
		})
	}
}

// TestNetworkSmoke pings the synthetic remote from each configuration.
func TestNetworkSmoke(t *testing.T) {
	for _, key := range []SystemKey{NL, MN, X0, MV, XU, MU} {
		key := key
		t.Run(string(key), func(t *testing.T) {
			s, err := Build(key, Options{})
			if err != nil {
				t.Fatalf("Build(%s): %v", key, err)
			}
			s.Run("ping", func(p *guest.Proc) {
				rtt := p.Ping(2, 56)
				if rtt == 0 {
					t.Errorf("%s: zero RTT", key)
				}
				us := s.Micros(rtt)
				if us < 50 || us > 5000 {
					t.Errorf("%s: implausible RTT %.1f us", key, us)
				}
			})
		})
	}
}

// TestSplitDriversNegotiatedInStore: the split devices are published in
// the xenstore with Connected state (§5.2 negotiation).
func TestSplitDriversNegotiatedInStore(t *testing.T) {
	for _, key := range []SystemKey{XU, MU} {
		s, err := Build(key, Options{})
		if err != nil {
			t.Fatalf("Build(%s): %v", key, err)
		}
		c := s.M.BootCPU()
		for _, class := range []string{"vbd", "vif"} {
			path := xen.DevicePath(s.Dom.ID, class) + "/state"
			got, err := s.VMM.Store.Read(c, path)
			if err != nil || got != xen.XsStateConnected {
				t.Errorf("%s %s: state=%q err=%v", key, class, got, err)
			}
			be := xen.BackendPath(s.VMM.DriverDomain().ID, s.Dom.ID, class) + "/state"
			if got, err := s.VMM.Store.Read(c, be); err != nil || got != xen.XsStateConnected {
				t.Errorf("%s backend %s: state=%q err=%v", key, class, got, err)
			}
		}
	}
}

// TestFrontendReconnect exercises the §5.2 reconnection path: the
// frontend drivers are rewired to fresh backends (new rings, new event
// channels — what happens after a migration or a driver-domain restart)
// and I/O continues where it left off.
func TestFrontendReconnect(t *testing.T) {
	s, err := Build(XU, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Run("phase1", func(p *guest.Proc) {
		fd, err := p.Creat("/data")
		if err != nil {
			t.Errorf("creat: %v", err)
			return
		}
		p.Write(fd, 64<<10)
		p.Close(fd)
		p.Syscall(func(c *hw.CPU) { p.K.FS.Sync(c) })
	})

	// Reconnect: fresh rings and event channels, as after migration.
	boot := s.M.BootCPU()
	WireSplitDrivers(boot, s.VMM, s.Driver, s.VMM.DriverDomain(), s.K, s.Dom)

	s.Run("phase2", func(p *guest.Proc) {
		// The page cache survived; drop it so reads go through the NEW
		// backend path to the disk.
		p.Syscall(func(c *hw.CPU) {
			ino, err := p.K.FS.Open(c, "/data")
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			for _, pfn := range p.K.FS.DropCache(ino.Ino) {
				p.K.ReleasePage(pfn)
			}
		})
		fd, err := p.Open("/data")
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if got := p.Read(fd, 64<<10); got != 64<<10 {
			t.Errorf("read %d bytes through reconnected frontend", got)
		}
		p.Close(fd)
		// Network too.
		if rtt := p.Ping(2, 56); rtt == 0 {
			t.Error("ping through reconnected frontend failed")
		}
	})
}
