package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/obs"
)

// TestSwitchBenchPhaseBreakdown is the harness-level acceptance check:
// running the mode-switch benchmark with a collector attached yields a
// per-phase cycle breakdown that sums to the reported switch time
// within 1%, for both directions.
func TestSwitchBenchPhaseBreakdown(t *testing.T) {
	col := obs.New(1)
	const samples = 3
	r, err := ModeSwitchBenchOpts(samples, core.TrackRecompute, Options{Collector: col})
	if err != nil {
		t.Fatal(err)
	}
	spans := col.Tracer.Spans()
	for _, root := range []string{"switch/attach", "switch/detach"} {
		phases, total, n := PhaseBreakdown(spans, root)
		if n != samples {
			t.Fatalf("%s: %d roots, want %d", root, n, samples)
		}
		if len(phases) == 0 || total == 0 {
			t.Fatalf("%s: empty breakdown", root)
		}
		sum := PhaseSum(phases)
		diff := float64(total) - float64(sum)
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.01*float64(total) {
			t.Fatalf("%s: phases %d vs root %d (%.2f%% apart)",
				root, sum, total, diff/float64(total)*100)
		}
	}
	// The root totals agree with the benchmark's own cycle accounting:
	// attach averages convert to the same microseconds the result reports.
	_, total, n := PhaseBreakdown(spans, "switch/attach")
	us := float64(total) / float64(n) / float64(hw.DefaultHz) * 1e6
	if diff := us - r.ToVirtualMicros; diff > 0.01*r.ToVirtualMicros || diff < -0.01*r.ToVirtualMicros {
		t.Fatalf("span avg %.2f us vs benchmark %.2f us", us, r.ToVirtualMicros)
	}

	// The rendered report carries both directions and the coverage line.
	var sb strings.Builder
	WritePhaseBreakdown(&sb, col, hw.DefaultHz)
	out := sb.String()
	for _, want := range []string{"switch/attach", "switch/detach",
		"phase/frame-recompute", "phases cover"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestCollectorSetPerConfiguration: each configuration gets its own
// collector, reused across calls, and the dumps carry distinct data.
func TestCollectorSetPerConfiguration(t *testing.T) {
	cs := NewCollectorSet(1)
	a := cs.For(MN)
	if cs.For(MN) != a {
		t.Fatal("collector not reused")
	}
	b := cs.For(NL)
	if a == b {
		t.Fatal("configurations share a collector")
	}
	keys := cs.Keys()
	if len(keys) != 2 || keys[0] != MN || keys[1] != NL {
		t.Fatalf("keys = %v", keys)
	}
	a.Registry.Counter("core", "attaches_total").Inc()
	// Every collector carries the two eagerly-registered telemetry
	// drop counters; only M-N's dump has the attach counter on top.
	dumps := cs.Dumps()
	if len(dumps[MN]) != len(dumps[NL])+1 {
		t.Fatalf("dumps = %v", dumps)
	}
	found := false
	for _, m := range dumps[MN] {
		if m.Subsystem == "core" && m.Name == "attaches_total" {
			found = true
		}
	}
	if !found {
		t.Fatalf("M-N dump missing attach counter: %v", dumps[MN])
	}
	var sb strings.Builder
	cs.WriteProm(&sb)
	if !strings.Contains(sb.String(), "# configuration: M-N") {
		t.Fatalf("prom output: %s", sb.String())
	}
}

// TestLmbenchTableWithCollectors: the table builder threads a collector
// into every configuration it constructs and the instrumented systems
// leave metrics behind.
func TestLmbenchTableWithCollectors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds all six configurations")
	}
	cs := NewCollectorSet(1)
	if _, err := LmbenchTable(1, Options{CollectorFor: cs.For}); err != nil {
		t.Fatal(err)
	}
	if len(cs.Keys()) == 0 {
		t.Fatal("no configurations collected")
	}
	// Every Mercury-based configuration recorded vo activity.
	for _, key := range cs.Keys() {
		dump := cs.For(key).Registry.Dump()
		if len(dump) == 0 {
			t.Fatalf("%s: empty registry", key)
		}
	}
}
