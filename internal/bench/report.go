package bench

import (
	"fmt"
	"io"
	"strings"
)

// WriteTable renders a TableResult in the paper's layout.
func WriteTable(w io.Writer, t TableResult) {
	fmt.Fprintln(w, t.Name)
	fmt.Fprintf(w, "%-16s", "Config.")
	for _, c := range t.Columns {
		fmt.Fprintf(w, "%10s", c)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 16+10*len(t.Columns)))
	for i, row := range t.Rows {
		fmt.Fprintf(w, "%-16s", row)
		for j := range t.Columns {
			v := t.Values[i][j]
			switch {
			case v >= 100:
				fmt.Fprintf(w, "%10.0f", v)
			case v >= 10:
				fmt.Fprintf(w, "%10.2f", v)
			default:
				fmt.Fprintf(w, "%10.2f", v)
			}
		}
		fmt.Fprintln(w)
	}
}

// WriteFigure renders a FigureResult as the paper's bar-chart data:
// relative performance normalized to N-L.
func WriteFigure(w io.Writer, f FigureResult) {
	fmt.Fprintln(w, f.Name)
	fmt.Fprintf(w, "%-14s", "Benchmark")
	for _, sk := range f.Systems {
		fmt.Fprintf(w, "%8s", sk)
	}
	fmt.Fprintf(w, "    raw(N-L)\n")
	fmt.Fprintln(w, strings.Repeat("-", 14+8*len(f.Systems)+12))
	for i, b := range f.Benchmarks {
		fmt.Fprintf(w, "%-14s", b)
		for j := range f.Systems {
			fmt.Fprintf(w, "%8.3f", f.Relative[i][j])
		}
		fmt.Fprintf(w, "    %.1f %s\n", f.Raw[i][0], f.RawUnit[i])
	}
}

// WriteSwitch renders mode-switch timings.
func WriteSwitch(w io.Writer, r SwitchResult) {
	fmt.Fprintf(w, "Mode switch time (policy=%v, %d samples):\n", r.Policy, r.Samples)
	fmt.Fprintf(w, "  native -> virtual : %8.3f ms  (paper: ~0.22 ms)\n", r.ToVirtualMicros/1000)
	fmt.Fprintf(w, "  virtual -> native : %8.3f ms  (paper: ~0.06 ms)\n", r.ToNativeMicros/1000)
	fmt.Fprintf(w, "  deferred commits  : %d, saved frames patched: %d\n", r.Deferred, r.FixedFrames)
}

// WriteAblation renders the tracking-policy ablation.
func WriteAblation(w io.Writer, a AblationResult) {
	fmt.Fprintln(w, "Frame-tracking policy ablation (S5.1.2):")
	fmt.Fprintf(w, "  native pt-heavy loop, recompute policy: %10.1f us\n", a.RecomputeNativeUS)
	fmt.Fprintf(w, "  native pt-heavy loop, active tracking : %10.1f us  (+%.1f%%, paper: 2-3%%)\n",
		a.ActiveNativeUS, a.OverheadPct)
	fmt.Fprintf(w, "  attach time, recompute policy         : %10.1f us\n", a.RecomputeAttachUS)
	fmt.Fprintf(w, "  attach time, active tracking          : %10.1f us\n", a.ActiveAttachUS)
}

// WriteTableCSV renders a TableResult as CSV (for plotting pipelines).
func WriteTableCSV(w io.Writer, t TableResult) {
	fmt.Fprintf(w, "benchmark")
	for _, c := range t.Columns {
		fmt.Fprintf(w, ",%s", c)
	}
	fmt.Fprintln(w)
	for i, row := range t.Rows {
		fmt.Fprintf(w, "%q", row)
		for j := range t.Columns {
			fmt.Fprintf(w, ",%.3f", t.Values[i][j])
		}
		fmt.Fprintln(w)
	}
}

// WriteFigureCSV renders a FigureResult as CSV.
func WriteFigureCSV(w io.Writer, f FigureResult) {
	fmt.Fprintf(w, "benchmark")
	for _, sk := range f.Systems {
		fmt.Fprintf(w, ",%s", sk)
	}
	fmt.Fprintf(w, ",raw_NL,unit\n")
	for i, b := range f.Benchmarks {
		fmt.Fprintf(w, "%q", b)
		for j := range f.Systems {
			fmt.Fprintf(w, ",%.4f", f.Relative[i][j])
		}
		fmt.Fprintf(w, ",%.2f,%q\n", f.Raw[i][0], f.RawUnit[i])
	}
}
