package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/guest"
	"repro/internal/hw"
	"repro/internal/pgtable"
)

// Lazy-MMU multicall batching sweep: the same sensitive-operation
// stream issued per-op (one hypercall per operation, the Table 1
// baseline path) versus inside a lazy-MMU section (enqueued into the
// per-CPU multicall buffer and drained in one VMM entry). The sweep
// runs on M-V — Mercury in partial-virtual mode — so the numbers are
// the marginal win self-virtualization gets from adopting the Xen-Linux
// xen_mc_batch pattern.

// BatchingSchema versions the committed batching baseline.
const BatchingSchema = "mercury-bench/batching/v1"

// BatchingMixes are the op mixes swept: pure page-table entry stores
// (a fork/mmap storm), pure pin/unpin ladders (address-space create and
// teardown), and an interleaving of both.
var BatchingMixes = []string{"pte", "pin", "mixed"}

// BatchingOpCounts are the stream lengths swept.
var BatchingOpCounts = []int{16, 64, 256}

// BatchingPoint is one (mix, ops) cell of the sweep. Cycle fields are
// deterministic under the simulated cost model; the VMM-entry counts
// are exact and diffed exactly in CI.
type BatchingPoint struct {
	Mix             string  `json:"mix"`
	Ops             int     `json:"ops"`
	PerOpCycles     uint64  `json:"per_op_cycles"`
	BatchedCycles   uint64  `json:"batched_cycles"`
	PerOpEntries    uint64  `json:"per_op_vmm_entries"`
	BatchedEntries  uint64  `json:"batched_vmm_entries"`
	BatchedFlushes  uint64  `json:"batched_tlb_flushes"`
	PerOpTLBFlushes uint64  `json:"per_op_tlb_flushes"`
	Speedup         float64 `json:"speedup"`
}

// BatchingBaseline is the serialized sweep, committed at the repo root
// as BENCH_batching.json.
type BatchingBaseline struct {
	Schema string          `json:"schema"`
	Points []BatchingPoint `json:"points"`
}

// batchingStream issues one measured op stream on a built M-V system
// and returns (cycles, VMM entries, TLB flushes consumed).
func batchingStream(s *System, mix string, ops int, lazy bool) (uint64, uint64, uint64, error) {
	var cycles, entries, flushes uint64
	var serr error
	s.Run("batching", func(p *guest.Proc) {
		k := p.K
		c := p.CPU()
		o := k.VO()

		// A live leaf table for the pte stores: map one page so the
		// table and its pin exist.
		base := p.Mmap(1, guest.ProtRead|guest.ProtWrite, true)
		slot, ok := p.AS.PT.ExistingSlot(base)
		if !ok {
			serr = fmt.Errorf("bench: batching: no live slot")
			return
		}
		frames := make([]hw.PFN, ops)
		for i := range frames {
			frames[i] = k.Frames.Alloc()
		}
		// Fresh two-level trees for the pin ladders, built with direct
		// stores (not live yet), registered/released in the measured
		// stream.
		var trees []*pgtable.Tables
		if mix != "pte" {
			trees = make([]*pgtable.Tables, ops)
			for i := range trees {
				pt, err := pgtable.New(k.M.Mem, k.Frames.Alloc)
				if err != nil {
					serr = err
					return
				}
				sl, err := pt.SlotFor(guest.TextBase, k.Frames.Alloc,
					pgtable.DirectWriter(k.M.Mem))
				if err != nil {
					serr = err
					return
				}
				hw.WritePTE(k.M.Mem, sl.Table, sl.Index,
					hw.MakePTE(frames[i], hw.PTEPresent|hw.PTEUser))
				trees[i] = pt
			}
		}

		h0, m0 := s.Dom.Stats.Hypercalls.Load(), s.Dom.Stats.Multicalls.Load()
		f0 := c.TLB.Flushes
		start := c.Now()
		if lazy {
			o.BeginLazyMMU(c)
		}
		for i := 0; i < ops; i++ {
			switch mix {
			case "pte":
				idx := (slot.Index + 1 + i) % hw.PTEntries
				o.WritePTE(c, slot.Table, idx,
					hw.MakePTE(frames[i], hw.PTEPresent|hw.PTEUser))
			case "pin":
				o.RegisterRoot(c, trees[i].Root)
				o.ReleaseRoot(c, trees[i].Root)
			case "mixed":
				idx := (slot.Index + 1 + i) % hw.PTEntries
				o.WritePTE(c, slot.Table, idx,
					hw.MakePTE(frames[i], hw.PTEPresent|hw.PTEUser))
				if i%4 == 0 {
					o.RegisterRoot(c, trees[i].Root)
					o.ReleaseRoot(c, trees[i].Root)
				}
			}
		}
		o.FlushTLB(c)
		if lazy {
			o.EndLazyMMU(c)
		}
		cycles = c.Now() - start
		entries = (s.Dom.Stats.Hypercalls.Load() - h0) +
			(s.Dom.Stats.Multicalls.Load() - m0)
		flushes = c.TLB.Flushes - f0

		// Undo the raw entry stores (they bypassed the kernel's page
		// accounting) and tear the scratch trees down.
		if mix != "pin" {
			for i := 0; i < ops; i++ {
				idx := (slot.Index + 1 + i) % hw.PTEntries
				o.WritePTE(c, slot.Table, idx, 0)
			}
		}
		for _, pt := range trees {
			pt.Free(k.Frames.Free)
		}
		for _, pfn := range frames {
			k.Frames.Free(pfn)
		}
		p.Munmap(base)
	})
	return cycles, entries, flushes, serr
}

// BatchingSweep measures every (mix, ops) cell both ways on fresh M-V
// systems. Deterministic: same cost model, same counts every run.
func BatchingSweep() ([]BatchingPoint, error) {
	var pts []BatchingPoint
	for _, mix := range BatchingMixes {
		for _, ops := range BatchingOpCounts {
			pt := BatchingPoint{Mix: mix, Ops: ops}
			for _, lazy := range []bool{false, true} {
				s, err := Build(MV, Options{LazyMMU: lazy})
				if err != nil {
					return nil, fmt.Errorf("bench: batching %s/%d: %w", mix, ops, err)
				}
				cyc, ent, fl, err := batchingStream(s, mix, ops, lazy)
				if err != nil {
					return nil, fmt.Errorf("bench: batching %s/%d: %w", mix, ops, err)
				}
				if lazy {
					pt.BatchedCycles, pt.BatchedEntries, pt.BatchedFlushes = cyc, ent, fl
				} else {
					pt.PerOpCycles, pt.PerOpEntries, pt.PerOpTLBFlushes = cyc, ent, fl
				}
			}
			if pt.BatchedCycles > 0 {
				pt.Speedup = float64(pt.PerOpCycles) / float64(pt.BatchedCycles)
			}
			pts = append(pts, pt)
		}
	}
	return pts, nil
}

// WriteBatchingSweep renders the sweep as a table.
func WriteBatchingSweep(w io.Writer, pts []BatchingPoint) {
	fmt.Fprintln(w, "lazy-MMU multicall batching (M-V, per-op hypercalls vs one multicall):")
	fmt.Fprintf(w, "  %-6s %5s  %12s %12s  %8s %8s  %7s\n",
		"mix", "ops", "per-op cyc", "batched cyc", "entries", "entries", "speedup")
	for _, p := range pts {
		fmt.Fprintf(w, "  %-6s %5d  %12d %12d  %8d %8d  %6.2fx\n",
			p.Mix, p.Ops, p.PerOpCycles, p.BatchedCycles,
			p.PerOpEntries, p.BatchedEntries, p.Speedup)
	}
}

// WriteBatchingBaseline writes the sweep to path as indented JSON.
func WriteBatchingBaseline(path string, pts []BatchingPoint) error {
	b := BatchingBaseline{Schema: BatchingSchema, Points: pts}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding batching baseline: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: writing batching baseline: %w", err)
	}
	return nil
}

// LoadBatchingBaseline reads a committed batching baseline.
func LoadBatchingBaseline(path string) (*BatchingBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: reading batching baseline: %w", err)
	}
	var b BatchingBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: decoding batching baseline %s: %w", path, err)
	}
	if b.Schema != BatchingSchema {
		return nil, fmt.Errorf("bench: batching baseline %s has schema %q, want %q",
			path, b.Schema, BatchingSchema)
	}
	return &b, nil
}

// CompareBatchingBaseline diffs a fresh sweep against the committed
// baseline: VMM-entry and TLB-flush counts must match exactly (they are
// protocol facts, not timings), cycle fields within tolerancePct.
func CompareBatchingBaseline(base *BatchingBaseline, fresh []BatchingPoint, tolerancePct float64) []string {
	type key struct {
		mix string
		ops int
	}
	idx := make(map[key]BatchingPoint, len(base.Points))
	for _, pt := range base.Points {
		idx[key{pt.Mix, pt.Ops}] = pt
	}
	var violations []string
	exact := func(k key, field string, want, got uint64) {
		if want != got {
			violations = append(violations,
				fmt.Sprintf("%s/%d %s: baseline %d, measured %d (exact match required)",
					k.mix, k.ops, field, want, got))
		}
	}
	approx := func(k key, field string, want, got uint64) {
		if want == 0 {
			if got != 0 {
				violations = append(violations,
					fmt.Sprintf("%s/%d %s: baseline 0, measured %d", k.mix, k.ops, field, got))
			}
			return
		}
		dev := (float64(got) - float64(want)) / float64(want) * 100
		if dev < 0 {
			dev = -dev
		}
		if dev > tolerancePct {
			violations = append(violations,
				fmt.Sprintf("%s/%d %s: baseline %d, measured %d (%.1f%% > %.1f%% tolerance)",
					k.mix, k.ops, field, want, got, dev, tolerancePct))
		}
	}
	seen := make(map[key]bool, len(fresh))
	for _, pt := range fresh {
		k := key{pt.Mix, pt.Ops}
		seen[k] = true
		want, ok := idx[k]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s/%d: not in baseline", k.mix, k.ops))
			continue
		}
		approx(k, "per_op_cycles", want.PerOpCycles, pt.PerOpCycles)
		approx(k, "batched_cycles", want.BatchedCycles, pt.BatchedCycles)
		exact(k, "per_op_vmm_entries", want.PerOpEntries, pt.PerOpEntries)
		exact(k, "batched_vmm_entries", want.BatchedEntries, pt.BatchedEntries)
		exact(k, "per_op_tlb_flushes", want.PerOpTLBFlushes, pt.PerOpTLBFlushes)
		exact(k, "batched_tlb_flushes", want.BatchedFlushes, pt.BatchedFlushes)
	}
	for k := range idx {
		if !seen[k] {
			violations = append(violations,
				fmt.Sprintf("%s/%d: in baseline but not measured", k.mix, k.ops))
		}
	}
	return violations
}
