package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/fork"
	"repro/internal/hw"
	"repro/internal/migrate"
	"repro/internal/xen"
)

// ForkPoint is one cell of the snapshot-cache fork sweep: Clones
// domains forked from one warmed base image of Pages live pages, each
// clone dirtying DirtyPages frames before a delta checkpoint. The
// sharing counts are exact algorithmic outcomes (the simulation is
// deterministic); only the cycle means ride a tolerance band.
type ForkPoint struct {
	Pages      int `json:"pages"`
	Clones     int `json:"clones"`
	DirtyPages int `json:"dirty_pages"`

	BaseFrames    int     `json:"base_frames"`        // unique frames in the base image
	StoreFrames   int     `json:"store_frames"`       // unique frames in the store at steady state
	StoreBytes    int     `json:"store_bytes"`        // deduplicated storage footprint
	SharedTotal   int     `json:"shared_total"`       // CoW mappings still live across all clones
	PromotedTotal int     `json:"promoted_total"`     // frames privatized by writes/relocation
	DeltaTotal    int     `json:"delta_frames_total"` // frames stored across all delta checkpoints
	DedupRatio    float64 `json:"dedup_ratio"`        // logical puts per unique stored frame
	RefLeaks      int     `json:"ref_leaks"`          // audit violations (must be 0)

	CloneCycMean uint64  `json:"clone_cyc_mean"`
	DeltaCycMean uint64  `json:"delta_cyc_mean"`
	CloneUSMean  float64 `json:"clone_us_mean"`
}

// The swept grid: clone-fleet sizes x per-clone dirty rates. The
// 1,000-clone column is the headline: a thousand domains from one
// image, each at roughly journal re-attach cost.
var (
	ForkPages  = []int{256}
	ForkClones = []int{16, 128, 1000}
	ForkDirty  = []int{0, 8, 32}
)

// ForkSweep runs the fork grid. Every point audits the store's
// refcounts against the live owners, so the sweep doubles as a leak
// check at scale.
func ForkSweep(opt Options) ([]ForkPoint, error) {
	opt.fill()
	var pts []ForkPoint
	for _, pages := range ForkPages {
		for _, clones := range ForkClones {
			for _, dirty := range ForkDirty {
				pt, err := forkPoint(pages, clones, dirty)
				if err != nil {
					return nil, fmt.Errorf("bench: fork %dpg/%dclones/%ddirty: %w",
						pages, clones, dirty, err)
				}
				pts = append(pts, pt)
			}
		}
	}
	return pts, nil
}

// forkPoint warms one base image and forks a fleet from it on a single
// machine, delta-checkpointing every clone.
func forkPoint(pages, clones, dirty int) (ForkPoint, error) {
	pt := ForkPoint{Pages: pages, Clones: clones, DirtyPages: dirty}

	span := hw.PFN(pages) + 16 // data pages plus table/slack frames
	// VMM reservation (4096) + dom0 (1024) + template and every clone.
	frames := uint64(4096) + uint64(1024) + uint64(span)*uint64(clones+1) + 512
	m := hw.NewMachine(hw.Config{Name: "fork-bench", MemBytes: frames * hw.PageSize, NumCPUs: 1})
	v, err := xen.Boot(m)
	if err != nil {
		return pt, err
	}
	c := m.BootCPU()
	v.Activate(c)
	dom0, err := v.CreateDomain("dom0", 1024, true)
	if err != nil {
		return pt, err
	}
	v.SetCurrent(c, dom0)
	origin, err := v.CreateDomain("template", span, false)
	if err != nil {
		return pt, err
	}
	lo, _ := origin.Frames.Range()
	for i := 0; i < pages; i++ {
		m.Mem.WriteWord((lo + hw.PFN(i)).Addr(), uint32(0xBE000000)|uint32(i))
	}
	// A small pinned page-table tree: clones pay its relocation, the
	// realistic floor for a fork's private frames.
	root, ptf := lo+hw.PFN(pages), lo+hw.PFN(pages)+1
	hw.WritePTE(m.Mem, root, 3, hw.MakePTE(ptf, hw.PTEPresent|hw.PTEWrite))
	hw.WritePTE(m.Mem, ptf, 7, hw.MakePTE(lo, hw.PTEPresent|hw.PTEWrite|hw.PTEUser))
	origin.VCPU0().SetCR3(root)

	img, err := migrate.Checkpoint(c, v, dom0, origin)
	if err != nil {
		return pt, err
	}
	img.PinnedRoots = []hw.PFN{root}
	store := fork.NewStore()
	base, err := fork.NewBase(store, img)
	if err != nil {
		return pt, err
	}
	cb := &fork.CloneBase{Store: store, Img: base}
	pt.BaseFrames = store.Frames()

	var cloneCyc, deltaCyc hw.Cycles
	css := make([]*fork.CloneState, 0, clones)
	overlays := make([]*fork.Overlay, 0, clones)
	for i := 0; i < clones; i++ {
		t0 := c.Now()
		cs, err := fork.Clone(c, v, dom0, cb, "clone")
		if err != nil {
			return pt, err
		}
		cloneCyc += c.Now() - t0
		css = append(css, cs)
		// Identical dirt across clones — a forked fleet running the same
		// workload writes the same pages the same way, and the cache
		// dedups it: only the first clone's dirt costs storage.
		for j := 0; j < dirty; j++ {
			m.Mem.WriteWord((cs.Lo + hw.PFN(j)).Addr(), uint32(0xD0000000)|uint32(j))
		}
		t0 = c.Now()
		o, err := fork.CheckpointDelta(c, v, dom0, cs)
		if err != nil {
			return pt, err
		}
		deltaCyc += c.Now() - t0
		overlays = append(overlays, o)
	}

	for _, cs := range css {
		pt.SharedTotal += cs.SharedCount()
		pt.PromotedTotal += cs.PromotedCount()
	}
	for _, o := range overlays {
		pt.DeltaTotal += o.DeltaFrames()
	}
	pt.StoreFrames = store.Frames()
	pt.StoreBytes = store.BytesStored()
	pt.DedupRatio = store.DedupRatio()
	holders := make([]fork.RefHolder, 0, 1+2*clones)
	holders = append(holders, base)
	for _, cs := range css {
		holders = append(holders, cs)
	}
	for _, o := range overlays {
		holders = append(holders, o)
	}
	if err := fork.AuditRefs(store, holders...); err != nil {
		pt.RefLeaks = 1
	}
	pt.CloneCycMean = uint64(cloneCyc) / uint64(clones)
	pt.DeltaCycMean = uint64(deltaCyc) / uint64(clones)
	pt.CloneUSMean = float64(pt.CloneCycMean) / float64(m.Hz) * 1e6
	return pt, nil
}

// WriteForkSweep renders the sweep as a table.
func WriteForkSweep(w io.Writer, pts []ForkPoint) {
	fmt.Fprintf(w, "CoW fork from a shared snapshot cache (stored bytes ~ dirtied frames)\n")
	fmt.Fprintf(w, "%6s %7s %6s %7s %8s %10s %7s %7s %7s %6s %11s %11s\n",
		"pages", "clones", "dirty", "base", "stored", "bytes", "shared", "promo", "delta", "dedup", "clone(cyc)", "delta(cyc)")
	for _, pt := range pts {
		fmt.Fprintf(w, "%6d %7d %6d %7d %8d %10d %7d %7d %7d %6.1f %11d %11d\n",
			pt.Pages, pt.Clones, pt.DirtyPages, pt.BaseFrames, pt.StoreFrames,
			pt.StoreBytes, pt.SharedTotal, pt.PromotedTotal, pt.DeltaTotal,
			pt.DedupRatio, pt.CloneCycMean, pt.DeltaCycMean)
	}
}

// ForkBaselineSchema versions the committed fork baseline.
const ForkBaselineSchema = "mercury-bench/fork/v1"

// ForkBaseline is the serialized sweep: committed at the repo root as
// BENCH_fork.json and diffed in CI like the other baselines.
type ForkBaseline struct {
	Schema string      `json:"schema"`
	Sweep  []ForkPoint `json:"sweep"`
}

// WriteForkBaseline writes the sweep to path as indented JSON.
func WriteForkBaseline(path string, pts []ForkPoint) error {
	b := ForkBaseline{Schema: ForkBaselineSchema, Sweep: pts}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding fork baseline: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: writing fork baseline: %w", err)
	}
	return nil
}

// LoadForkBaseline reads a committed fork baseline.
func LoadForkBaseline(path string) (*ForkBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: reading fork baseline: %w", err)
	}
	var b ForkBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: decoding fork baseline %s: %w", path, err)
	}
	if b.Schema != ForkBaselineSchema {
		return nil, fmt.Errorf("bench: fork baseline %s has schema %q, want %q",
			path, b.Schema, ForkBaselineSchema)
	}
	return &b, nil
}

// CompareForkBaseline diffs a fresh sweep against the committed
// baseline. Points match by (pages, clones, dirty_pages); the sharing
// counts, dedup ratio, and leak count must match exactly (they are
// algorithmic outcomes of a deterministic simulation), while the cycle
// means may drift by tolerancePct.
func CompareForkBaseline(base *ForkBaseline, fresh []ForkPoint, tolerancePct float64) []string {
	type key struct {
		pages  int
		clones int
		dirty  int
	}
	idx := make(map[key]ForkPoint, len(base.Sweep))
	for _, pt := range base.Sweep {
		idx[key{pt.Pages, pt.Clones, pt.DirtyPages}] = pt
	}

	var violations []string
	name := func(k key) string {
		return fmt.Sprintf("%dpg/%dclones/%ddirty", k.pages, k.clones, k.dirty)
	}
	cycles := func(k key, field string, want, got uint64) {
		if want == 0 {
			if got != 0 {
				violations = append(violations,
					fmt.Sprintf("%s %s: baseline 0, measured %d", name(k), field, got))
			}
			return
		}
		dev := (float64(got) - float64(want)) / float64(want) * 100
		if dev < 0 {
			dev = -dev
		}
		if dev > tolerancePct {
			violations = append(violations,
				fmt.Sprintf("%s %s: baseline %d, measured %d (%.1f%% > %.1f%% tolerance)",
					name(k), field, want, got, dev, tolerancePct))
		}
	}
	exact := func(k key, field string, want, got any) {
		if want != got {
			violations = append(violations,
				fmt.Sprintf("%s %s: baseline %v, measured %v", name(k), field, want, got))
		}
	}
	seen := make(map[key]bool, len(fresh))
	for _, pt := range fresh {
		k := key{pt.Pages, pt.Clones, pt.DirtyPages}
		seen[k] = true
		want, ok := idx[k]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: not in baseline", name(k)))
			continue
		}
		exact(k, "base_frames", want.BaseFrames, pt.BaseFrames)
		exact(k, "store_frames", want.StoreFrames, pt.StoreFrames)
		exact(k, "store_bytes", want.StoreBytes, pt.StoreBytes)
		exact(k, "shared_total", want.SharedTotal, pt.SharedTotal)
		exact(k, "promoted_total", want.PromotedTotal, pt.PromotedTotal)
		exact(k, "delta_frames_total", want.DeltaTotal, pt.DeltaTotal)
		exact(k, "dedup_ratio", want.DedupRatio, pt.DedupRatio)
		exact(k, "ref_leaks", want.RefLeaks, pt.RefLeaks)
		cycles(k, "clone_cyc_mean", want.CloneCycMean, pt.CloneCycMean)
		cycles(k, "delta_cyc_mean", want.DeltaCycMean, pt.DeltaCycMean)
	}
	for k := range idx {
		if !seen[k] {
			violations = append(violations,
				fmt.Sprintf("%s: in baseline but not measured", name(k)))
		}
	}
	return violations
}
