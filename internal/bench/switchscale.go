package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/guest"
)

// The switch-latency scaling benchmark: attach/detach cycle counts as a
// function of tracking policy, processor count and resident working-set
// size. Two effects are under test:
//
//   - the sharded recompute makes first-attach latency sub-linear in CPU
//     count (the walk parallelizes across the roots of the resident
//     processes while the APs are parked at the rendezvous);
//   - the dirty-frame journal makes a re-attach after a lightly dirtied
//     native episode (~10% of the small region rewritten) cost a replay
//     of the journaled slots instead of a full recompute.
//
// Cycle counts are exact simulation values measured inside the engine
// (Stats.LastAttachCyc / LastDetachCyc), so the sweep is deterministic
// for a given configuration and diffable against a committed baseline.

// scaleLoadProcs is the number of resident processes whose page-table
// trees the attach must (re)validate; their roots are what the parallel
// recompute shards.
const scaleLoadProcs = 10

// SwitchScalePoint is one measured sweep point.
type SwitchScalePoint struct {
	Policy string `json:"policy"`
	NCPU   int    `json:"ncpu"`
	Pages  int    `json:"pages"` // resident pages across the load processes

	AttachCyc   uint64 `json:"attach_cyc"`   // first attach: cold frame accounting
	ReattachCyc uint64 `json:"reattach_cyc"` // attach after a ~10%-dirty native episode
	DetachCyc   uint64 `json:"detach_cyc"`   // final detach

	AttachUS   float64 `json:"attach_us"`
	ReattachUS float64 `json:"reattach_us"`
	DetachUS   float64 `json:"detach_us"`

	Fallbacks uint64 `json:"fallbacks,omitempty"` // journal epochs that fell back to recompute
	Replays   uint64 `json:"replays,omitempty"`   // journal re-attaches served by replay
}

// ScalePolicies are the swept tracking policies.
var ScalePolicies = []core.TrackingPolicy{core.TrackRecompute, core.TrackActive, core.TrackJournal}

// ScaleNCPUs and ScalePages are the swept machine sizes.
var (
	ScaleNCPUs = []int{1, 2, 4}
	ScalePages = []int{1024, 4096}
)

// SwitchScale runs the full sweep.
func SwitchScale(opt Options) ([]SwitchScalePoint, error) {
	var out []SwitchScalePoint
	for _, policy := range ScalePolicies {
		for _, ncpu := range ScaleNCPUs {
			for _, pages := range ScalePages {
				pt, err := switchScalePoint(policy, ncpu, pages, opt)
				if err != nil {
					return nil, fmt.Errorf("bench: switchscale %v/%dcpu/%dpg: %w",
						policy, ncpu, pages, err)
				}
				out = append(out, pt)
			}
		}
	}
	return out, nil
}

// switchScalePoint measures one configuration: populate the working set,
// attach cold, detach, dirty ~10% of the driver's region natively,
// re-attach, detach.
func switchScalePoint(policy core.TrackingPolicy, ncpu, pages int, opt Options) (SwitchScalePoint, error) {
	opt.Policy = policy
	opt.NCPU = ncpu
	if opt.MemBytes == 0 {
		opt.MemBytes = 512 << 20
	}
	s, err := Build(MN, opt)
	if err != nil {
		return SwitchScalePoint{}, err
	}
	mc := s.Mercury
	pt := SwitchScalePoint{Policy: policy.String(), NCPU: ncpu, Pages: pages}

	perProc := pages / scaleLoadProcs
	small := pages / 10 // the driver's own region; ~10% of the set gets dirtied

	s.Run("switch-scale", func(p *guest.Proc) {
		k := p.K
		hold := k.NewPipe()
		ready := k.NewPipe()
		for i := 0; i < scaleLoadProcs; i++ {
			p.Fork("load", func(lp *guest.Proc) {
				base := lp.Mmap(perProc, guest.ProtRead|guest.ProtWrite, true)
				lp.Touch(base, perProc, true)
				lp.PipeWrite(ready, 1)
				lp.PipeRead(hold, 1)
				lp.Exit(0)
			})
		}
		p.PipeRead(ready, scaleLoadProcs)
		dirty := p.Mmap(small, guest.ProtRead|guest.ProtWrite, true)
		p.Touch(dirty, small, true)

		// Cold attach: the full working set must be validated (recompute
		// policies) or the journal's first-attach fallback taken.
		if err := mc.SwitchSync(p.CPU(), core.ModePartialVirtual); err != nil {
			panic(err)
		}
		pt.AttachCyc = mc.Stats.LastAttachCyc.Load()
		if err := mc.SwitchSync(p.CPU(), core.ModeNative); err != nil {
			panic(err)
		}
		pt.DetachCyc = mc.Stats.LastDetachCyc.Load()

		// A light native episode: rewrite the driver's small region's
		// leaf entries (protection toggles — no structural change).
		p.Mprotect(dirty, guest.ProtRead)
		p.Mprotect(dirty, guest.ProtRead|guest.ProtWrite)

		if err := mc.SwitchSync(p.CPU(), core.ModePartialVirtual); err != nil {
			panic(err)
		}
		pt.ReattachCyc = mc.Stats.LastAttachCyc.Load()
		if err := mc.SwitchSync(p.CPU(), core.ModeNative); err != nil {
			panic(err)
		}

		p.PipeWrite(hold, scaleLoadProcs)
		for i := 0; i < scaleLoadProcs; i++ {
			p.Wait()
		}
	})

	pt.AttachUS = s.Micros(pt.AttachCyc)
	pt.ReattachUS = s.Micros(pt.ReattachCyc)
	pt.DetachUS = s.Micros(pt.DetachCyc)
	if j := mc.VMM.Journal(); j != nil {
		st := j.StatsSnapshot()
		pt.Fallbacks = st.Fallbacks
		pt.Replays = st.Replays
	}
	return pt, nil
}

// WriteSwitchScale renders the sweep as a table.
func WriteSwitchScale(w io.Writer, pts []SwitchScalePoint) {
	fmt.Fprintf(w, "Switch-latency scaling: attach/re-attach/detach vs policy, CPUs, working set\n")
	fmt.Fprintf(w, "%-10s %5s %6s %12s %12s %12s %10s %10s\n",
		"policy", "cpus", "pages", "attach(cyc)", "reattach", "detach", "attach(us)", "reatt(us)")
	for _, pt := range pts {
		fmt.Fprintf(w, "%-10s %5d %6d %12d %12d %12d %10.1f %10.1f\n",
			pt.Policy, pt.NCPU, pt.Pages, pt.AttachCyc, pt.ReattachCyc, pt.DetachCyc,
			pt.AttachUS, pt.ReattachUS)
	}
}
