package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/vo"
	"repro/internal/xen"
)

// SystemKey names one measured configuration, using the paper's labels.
type SystemKey string

// The six configurations of §7.
const (
	NL SystemKey = "N-L" // native Linux (unmodified kernel on bare hardware)
	MN SystemKey = "M-N" // Mercury-Linux, native mode
	X0 SystemKey = "X-0" // Xen-Linux domain0 (always-on VMM, driver domain)
	MV SystemKey = "M-V" // Mercury-Linux, (partial-)virtual mode
	XU SystemKey = "X-U" // Xen-Linux domainU (split I/O)
	MU SystemKey = "M-U" // unmodified domU hosted on self-virtualized Mercury
)

// AllSystems lists the measured configurations in the paper's column
// order.
var AllSystems = []SystemKey{NL, MN, X0, MV, XU, MU}

// System is one built configuration, ready to run workloads.
type System struct {
	Key     SystemKey
	M       *hw.Machine
	K       *guest.Kernel // the measured kernel
	Mercury *core.Mercury // non-nil for M-N / M-V / M-U
	VMM     *xen.VMM      // non-nil when a VMM exists
	Dom     *xen.Domain   // measured kernel's domain, when virtualized
	Driver  *guest.Kernel // driver-domain kernel when split I/O is used
	NCPU    int
}

// MeasuredNetID is the link-layer address of the measured kernel; the
// test-harness reflector answers frames addressed from it.
const MeasuredNetID byte = 1

// driverNetID is the driver domain's own address in split-I/O setups.
const driverNetID byte = 9

// Options tweaks system construction.
type Options struct {
	NCPU     int
	MemBytes uint64
	Costs    *hw.CostModel
	// Policy selects Mercury's frame-tracking strategy (M-* systems).
	Policy core.TrackingPolicy
	// AckEvery configures the synthetic remote's ack window for stream
	// traffic (0 = pure sink).
	AckEvery int
	// Collector, when non-nil, is installed on the built machine before
	// construction so boot-time instrumentation (vo objects, the VMM)
	// registers into it.
	Collector *obs.Collector
	// CollectorFor, when non-nil, supplies a per-configuration collector
	// for builders that construct several systems (LmbenchTable); it
	// takes precedence over Collector.
	CollectorFor func(SystemKey) *obs.Collector
	// MigrateFaults wires a standby migration target into chaos
	// campaigns, adding the §6.3 migration fault classes (link stall,
	// mid-copy abort, pause/destroy failure) to the catalog.
	MigrateFaults bool
	// LazyMMU enables the kernels' lazy-MMU multicall batching (see
	// guest.Config.LazyMMU). Off by default: the Table 1 reproduction
	// measures the unbatched per-entry hypercall stream.
	LazyMMU bool
}

func (o *Options) fill() {
	if o.NCPU == 0 {
		o.NCPU = 1
	}
	if o.MemBytes == 0 {
		o.MemBytes = 128 << 20
	}
}

// Build constructs the configuration named by key.
func Build(key SystemKey, opt Options) (*System, error) {
	opt.fill()
	cfg := hw.DefaultConfig()
	cfg.NumCPUs = opt.NCPU
	cfg.MemBytes = opt.MemBytes
	if opt.Costs != nil {
		cfg.Costs = opt.Costs
	}
	m := hw.NewMachine(cfg)
	m.NIC.Reflector = guest.EchoReflector(MeasuredNetID, opt.AckEvery)
	m.NIC.ReflectDelay = 18_000 // remote endpoint per-packet processing
	if opt.CollectorFor != nil {
		if col := opt.CollectorFor(key); col != nil {
			m.SetTelemetry(col)
		}
	} else if opt.Collector != nil {
		m.SetTelemetry(opt.Collector)
	}

	s := &System{Key: key, M: m, NCPU: opt.NCPU}
	var err error
	switch key {
	case NL:
		err = s.buildNative(false, opt)
	case MN:
		err = s.buildMercury(core.ModeNative, opt)
	case MV:
		err = s.buildMercury(core.ModePartialVirtual, opt)
	case X0:
		err = s.buildXenDom0(opt)
	case XU:
		err = s.buildXenDomU(opt)
	case MU:
		err = s.buildMercuryDomU(opt)
	default:
		err = fmt.Errorf("bench: unknown system %q", key)
	}
	if err != nil {
		return nil, err
	}
	return s, nil
}

// buildNative is N-L: the unmodified kernel directly on hardware.
func (s *System) buildNative(mercuryVO bool, opt Options) error {
	var obj vo.Object
	if mercuryVO {
		obj = vo.NewNative(s.M)
	} else {
		obj = vo.NewDirect(s.M)
	}
	k, err := guest.Boot(s.M, guest.Config{
		Name: "linux", VO: obj, Frames: s.M.Frames, LazyMMU: opt.LazyMMU,
	})
	if err != nil {
		return err
	}
	s.K = k
	s.attachNativeDrivers(k)
	k.SetNetID(MeasuredNetID)
	return nil
}

// buildMercury is M-N / M-V: the self-virtualizable system, optionally
// switched to virtual mode after boot.
func (s *System) buildMercury(mode core.Mode, opt Options) error {
	mc, err := core.New(core.Config{
		Machine: s.M, Policy: opt.Policy, LazyMMU: opt.LazyMMU,
	})
	if err != nil {
		return err
	}
	s.Mercury = mc
	s.VMM = mc.VMM
	s.Dom = mc.Dom
	s.K = mc.K
	s.attachNativeDrivers(mc.K)
	mc.K.SetNetID(MeasuredNetID)
	if mode != core.ModeNative {
		if err := mc.SwitchSync(s.M.BootCPU(), mode); err != nil {
			return err
		}
	}
	return nil
}

// buildXenDom0 is X-0: an always-on VMM with the measured kernel as the
// privileged driver domain.
func (s *System) buildXenDom0(opt Options) error {
	v, err := xen.Boot(s.M)
	if err != nil {
		return err
	}
	s.VMM = v
	for _, c := range s.M.CPUs {
		v.Activate(c)
	}
	nframes := hw.PFN(s.M.Frames.Available())
	dom0, err := v.CreateDomain("dom0", nframes, true)
	if err != nil {
		return err
	}
	s.Dom = dom0
	for _, c := range s.M.CPUs {
		v.SetCurrent(c, dom0)
	}
	k, err := guest.Boot(s.M, guest.Config{
		Name: "xen-linux-dom0", VO: vo.NewVirtual(v, dom0),
		Frames: dom0.Frames, Dom: dom0, VMM: v, LazyMMU: opt.LazyMMU,
	})
	if err != nil {
		return err
	}
	s.K = k
	s.attachNativeDrivers(k)
	k.SetNetID(MeasuredNetID)
	s.M.BootCPU().SetMode(hw.PL1)
	return nil
}

// buildXenDomU is X-U: an always-on VMM, a service dom0 running the
// backends, and the measured kernel as an unprivileged domain with
// split frontend drivers.
func (s *System) buildXenDomU(opt Options) error {
	v, err := xen.Boot(s.M)
	if err != nil {
		return err
	}
	s.VMM = v
	for _, c := range s.M.CPUs {
		v.Activate(c)
	}
	avail := hw.PFN(s.M.Frames.Available())
	dom0Frames := avail / 4
	dom0, err := v.CreateDomain("dom0", dom0Frames, true)
	if err != nil {
		return err
	}
	boot := s.M.BootCPU()
	v.SetCurrent(boot, dom0)
	dom0K, err := guest.Boot(s.M, guest.Config{
		Name: "xen-linux-dom0", VO: vo.NewVirtual(v, dom0),
		Frames: dom0.Frames, Dom: dom0, VMM: v, ServiceOnly: true,
	})
	if err != nil {
		return err
	}
	s.Driver = dom0K
	s.attachNativeDrivers(dom0K)
	dom0K.SetNetID(driverNetID)

	domU, err := v.CreateDomain("domU", hw.PFN(s.M.Frames.Available()), false)
	if err != nil {
		return err
	}
	s.Dom = domU
	for _, c := range s.M.CPUs {
		v.SetCurrent(c, domU)
	}
	domUK, err := guest.Boot(s.M, guest.Config{
		Name: "xen-linux-domU", VO: vo.NewVirtual(v, domU),
		Frames: domU.Frames, Dom: domU, VMM: v, LazyMMU: opt.LazyMMU,
	})
	if err != nil {
		return err
	}
	s.K = domUK
	domUK.SetNetID(MeasuredNetID)
	WireSplitDrivers(boot, v, dom0K, dom0, domUK, domU)
	boot.SetMode(hw.PL1)
	return nil
}

// buildMercuryDomU is M-U: Mercury switched to partial-virtual mode,
// hosting an unmodified Xen-Linux domU through its backends.
func (s *System) buildMercuryDomU(opt Options) error {
	mc, err := core.New(core.Config{
		Machine: s.M, Policy: opt.Policy, LazyMMU: opt.LazyMMU,
	})
	if err != nil {
		return err
	}
	s.Mercury = mc
	s.VMM = mc.VMM
	s.attachNativeDrivers(mc.K)
	mc.K.SetNetID(driverNetID)
	boot := s.M.BootCPU()
	if err := mc.SwitchSync(boot, core.ModePartialVirtual); err != nil {
		return err
	}
	s.Driver = mc.K

	// The self-virtualized OS (now the driver domain) hosts an
	// unmodified guest.
	nframes := hw.PFN(mc.K.Frames.Available() / 2)
	// Domain memory comes from the machine pool in stock Xen; under
	// Mercury the driver domain donates part of its own partition.
	domU, err := mc.VMM.HypDomctlCreateFromFrames(boot, mc.Dom, "domU", nframes)
	if err != nil {
		return err
	}
	s.Dom = domU
	for _, c := range s.M.CPUs {
		mc.VMM.SetCurrent(c, domU)
	}
	domUK, err := guest.Boot(s.M, guest.Config{
		Name: "xen-linux-domU", VO: vo.NewVirtual(mc.VMM, domU),
		Frames: domU.Frames, Dom: domU, VMM: mc.VMM, LazyMMU: opt.LazyMMU,
	})
	if err != nil {
		return err
	}
	s.K = domUK
	domUK.SetNetID(MeasuredNetID)
	WireSplitDrivers(boot, mc.VMM, mc.K, mc.Dom, domUK, domU)
	boot.SetMode(hw.PL1)
	return nil
}

// attachNativeDrivers binds the kernel to the machine's devices.
func (s *System) attachNativeDrivers(k *guest.Kernel) {
	k.Blk = &guest.NativeBlock{K: k, Disk: s.M.Disk}
	k.Net = &guest.NativeNet{K: k, NIC: s.M.NIC}
}

// WireSplitDrivers connects a frontend kernel to backends in the driver
// domain: block and network rings, grant-backed buffers, and the event
// channels between them, negotiated through the xenstore (§5.2).
func WireSplitDrivers(c *hw.CPU, v *xen.VMM,
	drvK *guest.Kernel, drv *xen.Domain,
	feK *guest.Kernel, fe *xen.Domain) {

	// Announce both ends in the store, as the toolstack would.
	for _, class := range []string{"vbd", "vif"} {
		v.Store.Write(c, xen.DevicePath(fe.ID, class)+"/backend-id",
			fmt.Sprint(drv.ID))
		v.Store.Write(c, xen.DevicePath(fe.ID, class)+"/state",
			xen.XsStateInitialising)
		v.Store.Write(c, xen.BackendPath(drv.ID, fe.ID, class)+"/state",
			xen.XsStateInitWait)
	}

	// --- block ---
	blkRing := xen.NewRing[xen.BlkRequest, xen.BlkResponse](0, v.M.Costs)
	blkBE := &xen.BlkBackend{
		V: v, Dom: drv, Dev: drvK.Blk.(*guest.NativeBlock).RawDevice(),
		Ring: blkRing, WriteBehind: true,
	}
	blkPortBE := v.EvtchnAllocUnbound(c, drv, fe.ID)
	drv.SetPortHandler(blkPortBE, blkBE.OnEvent)
	blkPortFE, err := v.EvtchnBindInterdomain(c, fe, drv.ID, blkPortBE)
	if err != nil {
		panic(fmt.Sprintf("bench: wiring blk event channel: %v", err))
	}
	feK.Blk = &guest.FrontendBlock{
		K: feK, V: v, D: fe, Backend: drv.ID, Ring: blkRing, KickPort: blkPortFE,
	}
	v.Store.Write(c, xen.DevicePath(fe.ID, "vbd")+"/event-channel",
		fmt.Sprint(blkPortFE))
	v.Store.Write(c, xen.DevicePath(fe.ID, "vbd")+"/state", xen.XsStateConnected)
	v.Store.Write(c, xen.BackendPath(drv.ID, fe.ID, "vbd")+"/state",
		xen.XsStateConnected)

	// --- network ---
	txRing := xen.NewRing[xen.NetTxRequest, xen.NetTxResponse](0, v.M.Costs)
	rxRing := xen.NewRing[xen.NetRxBuffer, xen.NetRxDone](0, v.M.Costs)
	netBE := &xen.NetBackend{
		V: v, Dom: drv, Dev: drvK.Net.(*guest.NativeNet).RawDevice(),
		TxRing: txRing, RxRing: rxRing,
	}
	// Frontend kick (tx) channel.
	txPortBE := v.EvtchnAllocUnbound(c, drv, fe.ID)
	drv.SetPortHandler(txPortBE, netBE.OnEvent)
	txPortFE, err := v.EvtchnBindInterdomain(c, fe, drv.ID, txPortBE)
	if err != nil {
		panic(fmt.Sprintf("bench: wiring net tx channel: %v", err))
	}
	// Backend notify (rx) channel.
	rxPortFE := v.EvtchnAllocUnbound(c, fe, drv.ID)
	rxPortBE, err := v.EvtchnBindInterdomain(c, drv, fe.ID, rxPortFE)
	if err != nil {
		panic(fmt.Sprintf("bench: wiring net rx channel: %v", err))
	}
	netBE.Notify = func(nc *hw.CPU) {
		if err := v.EvtchnSend(nc, drv, rxPortBE); err != nil {
			panic(fmt.Sprintf("bench: net rx notify: %v", err))
		}
	}
	feNet := &guest.FrontendNet{
		K: feK, V: v, D: fe, Backend: drv.ID,
		TxRing: txRing, RxRing: rxRing, TxKick: txPortFE,
		PumpBackend: func(pc *hw.CPU) bool {
			ok := false
			v.RunInDomain(pc, drv, func() { ok = drvK.Net.Pump(pc) })
			return ok
		},
	}
	feK.Net = feNet
	fe.SetPortHandler(rxPortFE, feNet.HandleRxEvent)
	feNet.ReplenishRx(c)
	v.Store.Write(c, xen.DevicePath(fe.ID, "vif")+"/tx-event-channel",
		fmt.Sprint(txPortFE))
	v.Store.Write(c, xen.DevicePath(fe.ID, "vif")+"/rx-event-channel",
		fmt.Sprint(rxPortFE))
	v.Store.Write(c, xen.DevicePath(fe.ID, "vif")+"/state", xen.XsStateConnected)
	v.Store.Write(c, xen.BackendPath(drv.ID, fe.ID, "vif")+"/state",
		xen.XsStateConnected)

	// The driver domain steals frames addressed to the frontend.
	feID := feK.NetID()
	drvK.SetRxHook(func(hc *hw.CPU, data []byte) bool {
		if len(data) >= 1 && data[0] == feID {
			netBE.DeliverRx(hc, data)
			return true
		}
		return false
	})
}
