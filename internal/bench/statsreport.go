package bench

import (
	"fmt"
	"io"
)

// WriteStats dumps a built system's counters after a run — what an
// operator would read to understand where the cycles went.
func (s *System) WriteStats(w io.Writer) {
	fmt.Fprintf(w, "system %s on %s\n", s.Key, s.M)
	k := s.K
	fmt.Fprintf(w, "  kernel: %d forks, %d execs, %d ctx switches, %d syscalls, %d faults, %d ticks\n",
		k.Stats.Forks.Load(), k.Stats.Execs.Load(), k.Stats.CtxSwitches.Load(),
		k.Stats.Syscalls.Load(), k.Stats.PageFaults.Load(), k.Stats.Ticks.Load())
	fmt.Fprintf(w, "  fs: %d creates, %d unlinks, %d cache hits / %d misses, %d writebacks\n",
		k.FS.Stats.Creates, k.FS.Stats.Unlinks,
		k.FS.Stats.CacheHits, k.FS.Stats.CacheMisses, k.FS.Stats.Writebacks)
	for _, c := range s.M.CPUs {
		fmt.Fprintf(w, "  cpu%d: %d interrupts, %d faults, %d cr3 writes, tlb %d/%d hit/miss (%d flushes), %.1f ms busy\n",
			c.ID, c.Stats.Interrupts, c.Stats.Faults, c.Stats.CR3Writes,
			c.TLB.Hits, c.TLB.Misses, c.TLB.Flushes,
			float64(c.Now()-c.Stats.IdleCycles)/float64(s.M.Hz)*1e3)
	}
	fmt.Fprintf(w, "  disk: %d requests, %d blocks (%d KB written, %d KB read)\n",
		s.M.Disk.Stats.Requests, s.M.Disk.Stats.BlocksIO,
		s.M.Disk.Stats.BytesWritten>>10, s.M.Disk.Stats.BytesRead>>10)
	fmt.Fprintf(w, "  nic: %d tx / %d rx packets (%d KB / %d KB)\n",
		s.M.NIC.Stats.TxPackets.Load(), s.M.NIC.Stats.RxPackets.Load(),
		s.M.NIC.Stats.TxBytes.Load()>>10, s.M.NIC.Stats.RxBytes.Load()>>10)
	if s.VMM != nil {
		fmt.Fprintf(w, "  vmm: %d hypercalls, %d domain switches, %d faults handled, %d activations\n",
			s.VMM.Stats.Hypercalls.Load(), s.VMM.Stats.DomSwitches.Load(),
			s.VMM.Stats.FaultsHandled.Load(), s.VMM.Stats.Activations.Load())
	}
	if s.Dom != nil {
		fmt.Fprintf(w, "  dom%d: %d hypercalls, %d mmu updates, %d fault bounces, %d events in / %d out\n",
			s.Dom.ID, s.Dom.Stats.Hypercalls.Load(), s.Dom.Stats.MMUUpdates.Load(),
			s.Dom.Stats.FaultBounces.Load(), s.Dom.Stats.EventsIn.Load(), s.Dom.Stats.EventsOut.Load())
	}
	if s.Mercury != nil {
		mc := s.Mercury
		fmt.Fprintf(w, "  mercury: mode=%v, %d attaches (%0.1f us last), %d detaches (%0.1f us last), %d deferred, %d failed, %d frames fixed\n",
			mc.Mode(), mc.Stats.Attaches.Load(), s.Micros(mc.Stats.LastAttachCyc.Load()),
			mc.Stats.Detaches.Load(), s.Micros(mc.Stats.LastDetachCyc.Load()),
			mc.Stats.Deferred.Load(), mc.Stats.FailedSwitches.Load(),
			mc.Stats.FixedFrames.Load())
	}
}
