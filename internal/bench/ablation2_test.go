package bench

import (
	"os"
	"testing"
)

func TestBatchingAblation(t *testing.T) {
	r, err := BatchingAblation()
	if err != nil {
		t.Fatal(err)
	}
	WriteBatchingAblation(os.Stdout, r)
	if r.SpeedupFactor < 1.5 {
		t.Fatalf("batching speedup only %.2fx", r.SpeedupFactor)
	}
}

func TestEmulationAblation(t *testing.T) {
	r, err := EmulationAblation()
	if err != nil {
		t.Fatal(err)
	}
	WriteEmulationAblation(os.Stdout, r)
	if r.PenaltyRatio < 1.2 {
		t.Fatalf("trap-emulation penalty only %.2fx", r.PenaltyRatio)
	}
}

func TestAddrSpaceAblation(t *testing.T) {
	r, err := AddrSpaceAblation()
	if err != nil {
		t.Fatal(err)
	}
	WriteAddrSpaceAblation(os.Stdout, r)
	if r.SeparateForkUS <= r.SharedForkUS {
		t.Fatal("separate address space did not cost more on fork")
	}
	if r.SeparateCtxUS <= r.SharedCtxUS {
		t.Fatal("separate address space did not cost more on ctx switch")
	}
}
