package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/hw"
)

// SwitchResult reports mode-switch timings (§7.4): the paper measures
// ~0.22 ms for native->virtual (dominated by the frame-info recompute)
// and ~0.06 ms for virtual->native.
type SwitchResult struct {
	Policy          core.TrackingPolicy
	ToVirtualMicros float64
	ToNativeMicros  float64
	Samples         int
	Deferred        uint64 // switches postponed by the refcount gate
	FixedFrames     uint64 // saved frames patched by the selector stub
}

// switchLoadProcs is the number of resident processes alive across each
// measured switch (their page tables are what the recompute scans).
const switchLoadProcs = 14

// ModeSwitchBench measures attach/detach times under a realistic
// process load, RDTSC-style: the cycle counter is read at the beginning
// and end of each switch inside the engine itself.
func ModeSwitchBench(samples int, policy core.TrackingPolicy) (SwitchResult, error) {
	return ModeSwitchBenchOpts(samples, policy, Options{})
}

// ModeSwitchBenchOpts is ModeSwitchBench with explicit build options —
// the way to attach a telemetry collector (opt.Collector) and get a
// per-phase span decomposition of each measured switch.
func ModeSwitchBenchOpts(samples int, policy core.TrackingPolicy, opt Options) (SwitchResult, error) {
	opt.Policy = policy
	s, err := Build(MN, opt)
	if err != nil {
		return SwitchResult{}, fmt.Errorf("bench: %w", err)
	}
	mc := s.Mercury
	res := SwitchResult{Policy: policy, Samples: samples}

	var sumAttach, sumDetach hw.Cycles
	s.Run("switch-bench", func(p *guest.Proc) {
		k := p.K
		// Stand up background load: processes with populated address
		// spaces, parked on pipes for the duration.
		hold := k.NewPipe()
		ready := k.NewPipe()
		for i := 0; i < switchLoadProcs; i++ {
			p.Fork("load", func(lp *guest.Proc) {
				// Fault in the full image plus a private heap, as a
				// long-running daemon would have.
				img := guest.DefaultImage("load")
				lp.Touch(guest.TextBase, img.TextPages, false)
				base := lp.Mmap(128, guest.ProtRead|guest.ProtWrite, true)
				lp.Touch(base, 128, true)
				lp.PipeWrite(ready, 1)
				lp.PipeRead(hold, 1)
				lp.Exit(0)
			})
		}
		p.PipeRead(ready, switchLoadProcs)

		for i := 0; i < samples; i++ {
			if err := mc.SwitchSync(p.CPU(), core.ModePartialVirtual); err != nil {
				panic(err)
			}
			sumAttach += mc.Stats.LastAttachCyc.Load()
			if err := mc.SwitchSync(p.CPU(), core.ModeNative); err != nil {
				panic(err)
			}
			sumDetach += mc.Stats.LastDetachCyc.Load()
		}
		p.PipeWrite(hold, switchLoadProcs)
		for i := 0; i < switchLoadProcs; i++ {
			p.Wait()
		}
	})

	res.ToVirtualMicros = s.Micros(sumAttach / hw.Cycles(samples))
	res.ToNativeMicros = s.Micros(sumDetach / hw.Cycles(samples))
	res.Deferred = mc.Stats.Deferred.Load()
	res.FixedFrames = mc.Stats.FixedFrames.Load()
	return res, nil
}

// AblationResult compares the two frame-tracking policies of §5.1.2:
// active tracking costs 2–3 % in native mode but shortens the attach;
// recompute-on-switch is free natively but pays at switch time.
type AblationResult struct {
	RecomputeNativeUS float64 // mmap-heavy native loop, recompute policy
	ActiveNativeUS    float64 // same loop, active-tracking policy
	OverheadPct       float64
	RecomputeAttachUS float64
	ActiveAttachUS    float64
}

// TrackingAblation regenerates the §5.1.2 comparison.
func TrackingAblation() (AblationResult, error) {
	var res AblationResult

	nativeLoop := func(policy core.TrackingPolicy) (float64, error) {
		s, err := Build(MN, Options{Policy: policy})
		if err != nil {
			return 0, err
		}
		var per hw.Cycles
		s.Run("pt-loop", func(p *guest.Proc) {
			start := p.CPU().Now()
			for i := 0; i < 16; i++ {
				base := p.Mmap(256, guest.ProtRead|guest.ProtWrite, true)
				p.Touch(base, 256, true)
				p.Munmap(base)
			}
			per = p.CPU().Now() - start
		})
		return s.Micros(per), nil
	}
	var err error
	if res.RecomputeNativeUS, err = nativeLoop(core.TrackRecompute); err != nil {
		return res, err
	}
	if res.ActiveNativeUS, err = nativeLoop(core.TrackActive); err != nil {
		return res, err
	}
	res.OverheadPct = (res.ActiveNativeUS - res.RecomputeNativeUS) /
		res.RecomputeNativeUS * 100

	rec, err := ModeSwitchBench(5, core.TrackRecompute)
	if err != nil {
		return res, err
	}
	act, err := ModeSwitchBench(5, core.TrackActive)
	if err != nil {
		return res, err
	}
	res.RecomputeAttachUS = rec.ToVirtualMicros
	res.ActiveAttachUS = act.ToVirtualMicros
	return res, nil
}
