package bench

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/workloads"
)

// Per-workload smoke tests on the N-L baseline: each must terminate and
// produce a plausible score.
func TestOSDBSmoke(t *testing.T) {
	s, err := Build(NL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := workloads.OSDB(s.Target())
	if r.Cycles == 0 || r.Queries == 0 {
		t.Fatalf("OSDB result: %+v", r)
	}
}

func TestDbenchSmoke(t *testing.T) {
	s, err := Build(NL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := workloads.Dbench(s.Target())
	if r.MBps <= 0 {
		t.Fatalf("dbench result: %+v", r)
	}
}

func TestKBuildSmoke(t *testing.T) {
	s, err := Build(NL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := workloads.KernelBuild(s.Target())
	if r.Cycles == 0 {
		t.Fatalf("kbuild result: %+v", r)
	}
}

func TestPingSmoke(t *testing.T) {
	s, err := Build(NL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := workloads.Ping(s.Target())
	if r.AvgRTTMicros <= 0 {
		t.Fatalf("ping result: %+v", r)
	}
}

func TestIperfSmoke(t *testing.T) {
	s, err := Build(NL, Options{AckEvery: workloads.IperfTCPAckWindow})
	if err != nil {
		t.Fatal(err)
	}
	s.M.NIC.SetLink(hw.Gigabit())
	r := workloads.Iperf(s.Target(), workloads.IperfTCPAckWindow)
	if r.Mbps <= 0 {
		t.Fatalf("iperf result: %+v", r)
	}
}
