package bench

import (
	"repro/internal/guest"
	"repro/internal/hw"
)

// Run spawns an init process with the default image on the measured
// kernel and drives the scheduler on every CPU until all processes have
// exited. It returns the boot CPU's elapsed cycles.
func (s *System) Run(name string, body guest.Body) hw.Cycles {
	boot := s.M.BootCPU()
	start := boot.Now()
	s.K.Spawn(boot, name, guest.DefaultImage(name), body)
	done := make(chan struct{})
	for _, c := range s.M.CPUs[1:] {
		go func(c *hw.CPU) {
			s.K.Run(c)
			done <- struct{}{}
		}(c)
	}
	s.K.Run(boot)
	for range s.M.CPUs[1:] {
		<-done
	}
	return boot.Now() - start
}

// Micros converts boot-CPU cycles to microseconds.
func (s *System) Micros(n hw.Cycles) float64 { return s.M.Micros(n) }
