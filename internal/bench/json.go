package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// SwitchBaselineSchema versions the committed benchmark baseline; bump
// it when the sweep's shape or the cost model changes incompatibly.
const SwitchBaselineSchema = "mercury-bench/switch/v1"

// SwitchBaseline is the serialized form of the switch-latency trajectory:
// committed at the repo root as BENCH_baseline.json and re-generated in
// CI as BENCH_switch.json, then diffed point by point.
type SwitchBaseline struct {
	Schema string             `json:"schema"`
	Scale  []SwitchScalePoint `json:"scale"`
}

// WriteSwitchBaseline writes the sweep to path as indented JSON.
func WriteSwitchBaseline(path string, pts []SwitchScalePoint) error {
	b := SwitchBaseline{Schema: SwitchBaselineSchema, Scale: pts}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding baseline: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: writing baseline: %w", err)
	}
	return nil
}

// WriteJSONFile marshals any benchmark result (TableResult,
// FigureResult, ...) to path as indented JSON.
func WriteJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding %s: %w", path, err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	return nil
}

// LoadSwitchBaseline reads a committed baseline.
func LoadSwitchBaseline(path string) (*SwitchBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: reading baseline: %w", err)
	}
	var b SwitchBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: decoding baseline %s: %w", path, err)
	}
	if b.Schema != SwitchBaselineSchema {
		return nil, fmt.Errorf("bench: baseline %s has schema %q, want %q",
			path, b.Schema, SwitchBaselineSchema)
	}
	return &b, nil
}

// CompareSwitchBaseline diffs a fresh sweep against the committed
// baseline. Points are matched by (policy, ncpu, pages); each cycle
// field may deviate by at most tolerancePct percent relative to the
// baseline value. It returns one human-readable violation per breach —
// an empty slice means the trajectory held.
func CompareSwitchBaseline(base *SwitchBaseline, fresh []SwitchScalePoint, tolerancePct float64) []string {
	type key struct {
		policy string
		ncpu   int
		pages  int
	}
	idx := make(map[key]SwitchScalePoint, len(base.Scale))
	for _, pt := range base.Scale {
		idx[key{pt.Policy, pt.NCPU, pt.Pages}] = pt
	}

	var violations []string
	check := func(k key, field string, want, got uint64) {
		if want == 0 {
			if got != 0 {
				violations = append(violations,
					fmt.Sprintf("%s/%dcpu/%dpg %s: baseline 0, measured %d",
						k.policy, k.ncpu, k.pages, field, got))
			}
			return
		}
		dev := (float64(got) - float64(want)) / float64(want) * 100
		if dev < 0 {
			dev = -dev
		}
		if dev > tolerancePct {
			violations = append(violations,
				fmt.Sprintf("%s/%dcpu/%dpg %s: baseline %d, measured %d (%.1f%% > %.1f%% tolerance)",
					k.policy, k.ncpu, k.pages, field, want, got, dev, tolerancePct))
		}
	}
	seen := make(map[key]bool, len(fresh))
	for _, pt := range fresh {
		k := key{pt.Policy, pt.NCPU, pt.Pages}
		seen[k] = true
		want, ok := idx[k]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s/%dcpu/%dpg: not in baseline", k.policy, k.ncpu, k.pages))
			continue
		}
		check(k, "attach_cyc", want.AttachCyc, pt.AttachCyc)
		check(k, "reattach_cyc", want.ReattachCyc, pt.ReattachCyc)
		check(k, "detach_cyc", want.DetachCyc, pt.DetachCyc)
	}
	for k := range idx {
		if !seen[k] {
			violations = append(violations,
				fmt.Sprintf("%s/%dcpu/%dpg: in baseline but not measured", k.policy, k.ncpu, k.pages))
		}
	}
	return violations
}
