package vo

import (
	"sync/atomic"

	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/xen"
)

// Object is the virtualization object's function table. Sensitive CPU
// operations manipulate privileged processor state; sensitive memory
// operations modify page tables. (Sensitive I/O operations live in the
// guest's driver layer, which is likewise swapped per mode — the split
// frontend/backend drivers of §5.2.)
type Object interface {
	// Name identifies the object instance ("direct", "native", "virtual").
	Name() string
	// Virtualized reports whether operations are mediated by a VMM.
	Virtualized() bool
	// Refs returns the number of in-flight operations; Mercury commits a
	// mode switch only when this is zero (§5.1.1).
	Refs() int64

	// --- sensitive CPU operations ---

	// SetInterrupts enables or disables interrupt delivery (cli/sti, or
	// the virtual interrupt flag under a VMM).
	SetInterrupts(c *hw.CPU, on bool)
	// LoadInterruptTable installs the kernel's trap handlers: directly in
	// the hardware IDT, or registered with the VMM for bouncing.
	LoadInterruptTable(c *hw.CPU, t *hw.IDT)
	// ArmTimer programs the next timer interrupt.
	ArmTimer(c *hw.CPU, deadline hw.Cycles)
	// ContextSwitch installs a new address-space root (and kernel stack).
	ContextSwitch(c *hw.CPU, root hw.PFN)

	// --- sensitive memory operations ---

	// WritePTE stores one page-table entry.
	WritePTE(c *hw.CPU, table hw.PFN, idx int, e hw.PTE)
	// WritePTEBatch stores many entries; under a VMM the whole batch
	// costs one world switch (mmu_update with multiple entries).
	WritePTEBatch(c *hw.CPU, batch []xen.MMUUpdate)
	// RegisterRoot announces a fully built page-directory tree before its
	// first use (pinning, under a VMM or active tracking).
	RegisterRoot(c *hw.CPU, root hw.PFN)
	// ReleaseRoot retires a tree after its last use.
	ReleaseRoot(c *hw.CPU, root hw.PFN)
	// FlushTLB flushes local translations.
	FlushTLB(c *hw.CPU)
	// InvalidatePage drops one local translation.
	InvalidatePage(c *hw.CPU, va hw.VirtAddr)

	// --- lazy-MMU batching (the Linux xen_mc_batch pattern) ---
	//
	// Between BeginLazyMMU and EndLazyMMU, MMU operations on this CPU
	// may be enqueued into a per-CPU multicall buffer instead of being
	// issued immediately; the buffer drains in one VMM entry at explicit
	// boundaries (TLB flush, context switch, EndLazyMMU, FlushLazyMMU).
	// Sections nest; only the virtual object actually batches — native
	// and direct execute eagerly, so the section is free there. The
	// caller must call FlushLazyMMU before reading any state a deferred
	// operation could leave stale (e.g. a just-written page-table
	// entry).

	// BeginLazyMMU opens a lazy-MMU section on c.
	BeginLazyMMU(c *hw.CPU)
	// EndLazyMMU closes the section, draining anything still enqueued.
	EndLazyMMU(c *hw.CPU)
	// FlushLazyMMU drains the buffer without closing the section.
	FlushLazyMMU(c *hw.CPU)
}

// Stats counts operations through a virtualization object. The fields
// are free-standing obs counters: when the owning machine carries a
// telemetry collector at construction time, the constructors register
// these same objects into its registry (labelled by object name), so
// Stats readers and the metrics exporters observe one shared count —
// a single counting path, no parallel bookkeeping.
type Stats struct {
	Calls     *obs.Counter
	PTEWrites *obs.Counter
}

// newStats builds the counters for one object instance, adopting them
// into m's registry when a collector is installed.
func newStats(m *hw.Machine, object string) Stats {
	s := Stats{Calls: obs.NewCounter(), PTEWrites: obs.NewCounter()}
	if col := m.Telemetry(); col != nil {
		col.Registry.RegisterCounter(s.Calls, "vo", "calls_total", obs.L("object", object))
		col.Registry.RegisterCounter(s.PTEWrites, "vo", "pte_writes_total", obs.L("object", object))
	}
	return s
}

// refcount implements the entry/exit reference counting shared by the
// Mercury objects. Operations are non-blocking and short (§5.1.1), so
// the count is almost always observed at zero.
type refcount struct {
	n atomic.Int64
}

func (r *refcount) enter() { r.n.Add(1) }
func (r *refcount) exit()  { r.n.Add(-1) }

// Refs returns the number of in-flight operations.
func (r *refcount) Refs() int64 { return r.n.Load() }

// Hold takes a reference from outside any operation, modelling a
// sensitive section that never drains (a wedged driver, a kernel bug).
// Fault-injection only: a held object defers every mode switch until
// Unhold.
func (r *refcount) Hold() { r.n.Add(1) }

// Unhold releases a Hold reference.
func (r *refcount) Unhold() { r.n.Add(-1) }
