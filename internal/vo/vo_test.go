package vo

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/xen"
)

func nativeEnv() (*hw.Machine, *hw.CPU) {
	m := hw.NewMachine(hw.Config{MemBytes: 16 << 20, NumCPUs: 1})
	c := m.BootCPU()
	c.Lgdt(hw.NewGDT("k", hw.PL0))
	return m, c
}

func virtualEnv(t *testing.T) (*xen.VMM, *xen.Domain, *hw.CPU) {
	t.Helper()
	m := hw.NewMachine(hw.Config{MemBytes: 32 << 20, NumCPUs: 1})
	v, err := xen.Boot(m)
	if err != nil {
		t.Fatal(err)
	}
	c := m.BootCPU()
	v.Activate(c)
	d, err := v.CreateDomain("g", hw.PFN(m.Frames.Available()), false)
	if err != nil {
		t.Fatal(err)
	}
	v.SetCurrent(c, d)
	return v, d, c
}

func TestDirectWritePTEHitsMemory(t *testing.T) {
	m, c := nativeEnv()
	o := NewDirect(m)
	table := m.Frames.Alloc()
	o.WritePTE(c, table, 5, hw.MakePTE(77, hw.PTEPresent))
	if got := hw.ReadPTE(m.Mem, table, 5); got.Frame() != 77 {
		t.Fatalf("entry = %#x", uint32(got))
	}
	if o.Refs() != 0 {
		t.Fatal("Direct should never hold refs")
	}
}

func TestNativeRefCounting(t *testing.T) {
	m, c := nativeEnv()
	o := NewNative(m)
	// The refcount is only nonzero while an op is in flight; observe it
	// through a fault handler triggered mid-operation.
	var during int64
	idt := hw.NewIDT("k")
	idt.Set(hw.VecTimer, hw.Gate{Present: true, Target: hw.PL0,
		Handler: func(cc *hw.CPU, f *hw.TrapFrame) { during = o.Refs() }})
	c.Lidt(idt)
	c.Sti()
	c.LAPIC.Post(hw.VecTimer)
	table := m.Frames.Alloc()
	o.WritePTE(c, table, 0, hw.MakePTE(5, hw.PTEPresent)) // charge delivers
	if during != 1 {
		t.Fatalf("refcount during op = %d, want 1", during)
	}
	if o.Refs() != 0 {
		t.Fatalf("refcount after op = %d", o.Refs())
	}
}

func TestNativeCostsMoreThanDirect(t *testing.T) {
	m, c := nativeEnv()
	dir := NewDirect(m)
	nat := NewNative(m)
	table := m.Frames.Alloc()

	before := c.Now()
	dir.WritePTE(c, table, 0, hw.MakePTE(5, hw.PTEPresent))
	directCost := c.Now() - before

	before = c.Now()
	nat.WritePTE(c, table, 1, hw.MakePTE(6, hw.PTEPresent))
	nativeCost := c.Now() - before

	if nativeCost <= directCost {
		t.Fatalf("native (%d) not dearer than direct (%d)", nativeCost, directCost)
	}
	// But only by the indirection + refcount constant.
	if nativeCost-directCost != m.Costs.VOIndirect+m.Costs.VORefCount {
		t.Fatalf("overhead = %d", nativeCost-directCost)
	}
}

func TestVirtualWritePTEValidates(t *testing.T) {
	v, d, c := virtualEnv(t)
	o := NewVirtual(v, d)
	// Build a pinned tree.
	root := d.Frames.Alloc()
	v.M.Mem.ZeroFrame(root)
	o.RegisterRoot(c, root)
	pt := d.Frames.Alloc()
	v.M.Mem.ZeroFrame(pt)
	o.WritePTE(c, root, 0, hw.MakePTE(pt, hw.PTEPresent|hw.PTEWrite|hw.PTEUser))
	data := d.Frames.Alloc()
	o.WritePTE(c, pt, 0, hw.MakePTE(data, hw.PTEPresent|hw.PTEWrite|hw.PTEUser))

	if fi := v.FT.Get(data); fi.Type != xen.FrameWritable || fi.TotalRefs != 1 {
		t.Fatalf("data frame accounting: %+v", fi)
	}
	// Illegal update must panic (kernel bug semantics).
	defer func() {
		if recover() == nil {
			t.Fatal("mapping a page table writable did not panic")
		}
	}()
	o.WritePTE(c, pt, 1, hw.MakePTE(pt, hw.PTEPresent|hw.PTEWrite|hw.PTEUser))
}

func TestVirtualBatchOneWorldSwitch(t *testing.T) {
	v, d, c := virtualEnv(t)
	o := NewVirtual(v, d)
	root := d.Frames.Alloc()
	v.M.Mem.ZeroFrame(root)
	o.RegisterRoot(c, root)
	pt := d.Frames.Alloc()
	v.M.Mem.ZeroFrame(pt)
	o.WritePTE(c, root, 0, hw.MakePTE(pt, hw.PTEPresent|hw.PTEWrite|hw.PTEUser))

	hcBefore := v.Stats.Hypercalls.Load()
	batch := make([]xen.MMUUpdate, 16)
	for i := range batch {
		batch[i] = xen.MMUUpdate{Table: pt, Index: i,
			New: hw.MakePTE(d.Frames.Alloc(), hw.PTEPresent|hw.PTEUser)}
	}
	o.WritePTEBatch(c, batch)
	if got := v.Stats.Hypercalls.Load() - hcBefore; got != 1 {
		t.Fatalf("batch used %d hypercalls, want 1", got)
	}
}

func TestVirtualSetInterruptsIsCheap(t *testing.T) {
	v, d, c := virtualEnv(t)
	o := NewVirtual(v, d)
	before := c.Now()
	o.SetInterrupts(c, false)
	o.SetInterrupts(c, true)
	cost := c.Now() - before
	// The paravirtual cli/sti is a shared-memory write, far below a
	// world switch.
	if cost >= v.M.Costs.WorldSwitch {
		t.Fatalf("virtual cli/sti cost %d >= world switch", cost)
	}
	if !d.VCPU0().VIF() {
		t.Fatal("VIF not restored")
	}
}

func TestActiveTrackingMirrors(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 32 << 20, NumCPUs: 1})
	v, err := xen.Boot(m)
	if err != nil {
		t.Fatal(err)
	}
	c := m.BootCPU()
	c.Lgdt(hw.NewGDT("k", hw.PL0))
	d := v.AdoptDomain("os", m.Frames, true)

	o := NewNative(m)
	o.Track = &Tracker{V: v, D: d}

	root := d.Frames.Alloc()
	m.Mem.ZeroFrame(root)
	o.RegisterRoot(c, root)
	pt := d.Frames.Alloc()
	m.Mem.ZeroFrame(pt)
	o.WritePTE(c, root, 0, hw.MakePTE(pt, hw.PTEPresent|hw.PTEWrite))
	data := d.Frames.Alloc()
	o.WritePTE(c, pt, 3, hw.MakePTE(data, hw.PTEPresent|hw.PTEWrite))

	// The VMM is inactive, yet its frame table tracked everything.
	if fi := v.FT.Get(root); fi.Type != xen.FrameL2 || !fi.Pinned {
		t.Fatalf("root not mirrored: %+v", fi)
	}
	if fi := v.FT.Get(data); fi.Type != xen.FrameWritable {
		t.Fatalf("data not mirrored: %+v", fi)
	}
	o.ReleaseRoot(c, root)
	if fi := v.FT.Get(root); fi.TypeCount != 0 {
		t.Fatalf("release not mirrored: %+v", fi)
	}
}

func TestLoadInterruptTableRegistersGates(t *testing.T) {
	v, d, c := virtualEnv(t)
	o := NewVirtual(v, d)
	idt := hw.NewIDT("guest")
	fired := false
	idt.Set(hw.VecPageFault, hw.Gate{Present: true, Target: hw.PL0,
		Handler: func(cc *hw.CPU, f *hw.TrapFrame) { fired = true; f.Skip = true }})
	o.LoadInterruptTable(c, idt)
	if !d.TrapTable[hw.VecPageFault].Present {
		t.Fatal("trap table not registered")
	}
	// A hardware fault now bounces into the guest handler.
	c.SetMode(hw.PL1)
	c.Translate(0x1000, false)
	if !fired {
		t.Fatal("fault not bounced to registered handler")
	}
}
