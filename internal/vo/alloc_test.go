package vo

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/xen"
)

// The allocation gates for the VO write paths: WritePTE and
// WritePTEBatch must not touch the heap in any mode, in or out of a
// lazy-MMU section. A PTE store sits on fork/exec/mmap's critical path;
// an allocation there shows up as GC pressure in every workload the
// paper measures.

func TestDirectWritePTEAllocFree(t *testing.T) {
	m, c := nativeEnv()
	o := NewDirect(m)
	table := m.Frames.Alloc()
	e := hw.MakePTE(7, hw.PTEPresent)
	batch := []xen.MMUUpdate{
		{Table: table, Index: 2, New: e},
		{Table: table, Index: 3, New: e},
	}
	if a := testing.AllocsPerRun(100, func() { o.WritePTE(c, table, 0, e) }); a != 0 {
		t.Errorf("direct WritePTE allocates %.1f per run, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { o.WritePTEBatch(c, batch) }); a != 0 {
		t.Errorf("direct WritePTEBatch allocates %.1f per run, want 0", a)
	}
}

func TestNativeWritePTEAllocFree(t *testing.T) {
	m, c := nativeEnv()
	o := NewNative(m)
	table := m.Frames.Alloc()
	e := hw.MakePTE(7, hw.PTEPresent)
	batch := []xen.MMUUpdate{
		{Table: table, Index: 2, New: e},
		{Table: table, Index: 3, New: e},
	}
	if a := testing.AllocsPerRun(100, func() { o.WritePTE(c, table, 0, e) }); a != 0 {
		t.Errorf("native WritePTE allocates %.1f per run, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { o.WritePTEBatch(c, batch) }); a != 0 {
		t.Errorf("native WritePTEBatch allocates %.1f per run, want 0", a)
	}
}

// virtualWriteEnv builds a virtual object with one registered root and
// one live L1 table ready for repeated same-value stores.
func virtualWriteEnv(t *testing.T) (*Virtual, *hw.CPU, hw.PFN, hw.PTE) {
	t.Helper()
	v, d, c := virtualEnv(t)
	o := NewVirtual(v, d)
	alloc := func() hw.PFN {
		pfn := d.Frames.Alloc()
		v.M.Mem.ZeroFrame(pfn)
		return pfn
	}
	root := alloc()
	o.RegisterRoot(c, root)
	pt := alloc()
	o.WritePTE(c, root, 0, hw.MakePTE(pt, hw.PTEPresent|hw.PTEWrite|hw.PTEUser))
	e := hw.MakePTE(alloc(), hw.PTEPresent|hw.PTEUser)
	o.WritePTE(c, pt, 0, e)
	return o, c, pt, e
}

func TestVirtualWritePTEAllocFree(t *testing.T) {
	o, c, pt, e := virtualWriteEnv(t)
	batch := []xen.MMUUpdate{
		{Table: pt, Index: 0, New: e},
		{Table: pt, Index: 0, New: e},
	}
	if a := testing.AllocsPerRun(100, func() { o.WritePTE(c, pt, 0, e) }); a != 0 {
		t.Errorf("virtual eager WritePTE allocates %.1f per run, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { o.WritePTEBatch(c, batch) }); a != 0 {
		t.Errorf("virtual eager WritePTEBatch allocates %.1f per run, want 0", a)
	}
}

func TestVirtualLazyWritePTEAllocFree(t *testing.T) {
	o, c, pt, e := virtualWriteEnv(t)
	batch := []xen.MMUUpdate{
		{Table: pt, Index: 0, New: e},
		{Table: pt, Index: 0, New: e},
	}
	o.BeginLazyMMU(c)
	defer o.EndLazyMMU(c)
	a := testing.AllocsPerRun(100, func() {
		for i := 0; i < 4; i++ {
			o.WritePTE(c, pt, 0, e)
		}
		o.WritePTEBatch(c, batch)
		o.FlushLazyMMU(c)
	})
	if a != 0 {
		t.Errorf("virtual lazy enqueue+flush allocates %.1f per run, want 0", a)
	}
}
