package vo

import (
	"repro/internal/hw"
	"repro/internal/xen"
)

// Direct performs every sensitive operation straight on the hardware, as
// an unmodified native kernel (the N-L baseline) would: no object-table
// indirection, no reference counting, no VMM awareness. Mercury's Native
// object wraps these same bodies.
type Direct struct {
	M     *hw.Machine
	Stats Stats
}

// NewDirect returns the bare-hardware operation set.
func NewDirect(m *hw.Machine) *Direct {
	return &Direct{M: m, Stats: newStats(m, "direct")}
}

// Name identifies the object.
func (d *Direct) Name() string { return "direct" }

// Virtualized reports false: operations hit hardware directly.
func (d *Direct) Virtualized() bool { return false }

// Refs is always zero: an unmodified kernel has no tracking.
func (d *Direct) Refs() int64 { return 0 }

// SetInterrupts executes cli/sti.
func (d *Direct) SetInterrupts(c *hw.CPU, on bool) {
	d.Stats.Calls.Add(1)
	if on {
		c.Sti()
	} else {
		c.Cli()
	}
}

// LoadInterruptTable executes lidt.
func (d *Direct) LoadInterruptTable(c *hw.CPU, t *hw.IDT) {
	d.Stats.Calls.Add(1)
	c.Lidt(t)
}

// ArmTimer programs the local APIC timer.
func (d *Direct) ArmTimer(c *hw.CPU, deadline hw.Cycles) {
	d.Stats.Calls.Add(1)
	c.Charge(d.M.Costs.PrivInsn)
	c.LAPIC.ArmTimer(deadline, hw.VecTimer)
}

// ContextSwitch loads CR3 (flushing the TLB).
func (d *Direct) ContextSwitch(c *hw.CPU, root hw.PFN) {
	d.Stats.Calls.Add(1)
	c.WriteCR3(root)
}

// WritePTE stores the entry directly.
func (d *Direct) WritePTE(c *hw.CPU, table hw.PFN, idx int, e hw.PTE) {
	d.Stats.Calls.Add(1)
	d.Stats.PTEWrites.Add(1)
	c.Charge(d.M.Costs.PTEWriteNative)
	hw.WritePTE(d.M.Mem, table, idx, e)
}

// WritePTEBatch stores each entry directly.
func (d *Direct) WritePTEBatch(c *hw.CPU, batch []xen.MMUUpdate) {
	d.Stats.Calls.Add(1)
	d.Stats.PTEWrites.Add(uint64(len(batch)))
	for _, u := range batch {
		c.Charge(d.M.Costs.PTEWriteNative)
		hw.WritePTE(d.M.Mem, u.Table, u.Index, u.New)
	}
}

// RegisterRoot is a no-op on bare hardware.
func (d *Direct) RegisterRoot(c *hw.CPU, root hw.PFN) { d.Stats.Calls.Add(1) }

// ReleaseRoot is a no-op on bare hardware.
func (d *Direct) ReleaseRoot(c *hw.CPU, root hw.PFN) { d.Stats.Calls.Add(1) }

// FlushTLB reloads CR3 in place.
func (d *Direct) FlushTLB(c *hw.CPU) {
	d.Stats.Calls.Add(1)
	c.Charge(d.M.Costs.PrivInsn + d.M.Costs.TLBFlush)
	c.TLB.Flush()
}

// InvalidatePage executes invlpg.
func (d *Direct) InvalidatePage(c *hw.CPU, va hw.VirtAddr) {
	d.Stats.Calls.Add(1)
	c.Invlpg(va)
}

// BeginLazyMMU is a no-op: bare hardware has nothing to batch and no
// reference counting.
func (d *Direct) BeginLazyMMU(c *hw.CPU) { d.Stats.Calls.Add(1) }

// EndLazyMMU is a no-op.
func (d *Direct) EndLazyMMU(c *hw.CPU) { d.Stats.Calls.Add(1) }

// FlushLazyMMU is a no-op.
func (d *Direct) FlushLazyMMU(c *hw.CPU) {}

var _ Object = (*Direct)(nil)
