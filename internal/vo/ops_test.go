package vo

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/xen"
)

// TestObjectSurfaceParity drives every operation of all three object
// implementations and checks the mode-independent postconditions: the
// same kernel code must behave identically behind any of them (§4.3's
// semantic-equivalence requirement).
func TestObjectSurfaceParity(t *testing.T) {
	type env struct {
		name string
		obj  Object
		c    *hw.CPU
		m    *hw.Machine
	}
	var envs []env

	// Direct and Native share a bare-hardware machine each.
	{
		m, c := nativeEnv()
		envs = append(envs, env{"direct", NewDirect(m), c, m})
	}
	{
		m, c := nativeEnv()
		envs = append(envs, env{"native", NewNative(m), c, m})
	}
	{
		v, d, c := virtualEnv(t)
		envs = append(envs, env{"virtual", NewVirtual(v, d), c, v.M})
	}

	for _, e := range envs {
		t.Run(e.name, func(t *testing.T) {
			o, c, m := e.obj, e.c, e.m
			if o.Name() == "" {
				t.Error("empty name")
			}
			if o.Virtualized() != (e.name == "virtual") {
				t.Error("Virtualized() wrong")
			}

			// Interrupt control round trip.
			o.SetInterrupts(c, false)
			o.SetInterrupts(c, true)

			// Trap table installation: a handler must be reachable via
			// the hardware afterwards (directly or by bounce).
			idt := hw.NewIDT("guest")
			hits := 0
			idt.Set(hw.VecPageFault, hw.Gate{Present: true, Target: hw.PL0,
				Handler: func(cc *hw.CPU, f *hw.TrapFrame) { hits++; f.Skip = true }})
			o.LoadInterruptTable(c, idt)

			// Timer programming.
			o.ArmTimer(c, c.Now()+1_000_000)
			if _, armed := c.LAPIC.NextTimerDeadline(); !armed {
				t.Error("timer not armed")
			}
			c.LAPIC.DisarmTimer()

			// Build a small live tree through the object.
			alloc := func() hw.PFN {
				pfn := allocFor(e, m)
				m.Mem.ZeroFrame(pfn)
				return pfn
			}
			root := alloc()
			o.RegisterRoot(c, root)
			pt := alloc()
			o.WritePTE(c, root, 0, hw.MakePTE(pt, hw.PTEPresent|hw.PTEWrite|hw.PTEUser))
			batch := []xen.MMUUpdate{
				{Table: pt, Index: 0, New: hw.MakePTE(alloc(), hw.PTEPresent|hw.PTEUser)},
				{Table: pt, Index: 1, New: hw.MakePTE(alloc(), hw.PTEPresent|hw.PTEUser)},
			}
			o.WritePTEBatch(c, batch)

			// The hardware walker agrees regardless of implementation.
			o.ContextSwitch(c, root)
			if c.ReadCR3() == 0 {
				t.Error("context switch did not install a root")
			}
			w, ok := hw.Walk(m.Mem, root, 0)
			if !ok || w.PTE.Frame() != batch[0].New.Frame() {
				t.Errorf("walk after batch = %+v, %v", w, ok)
			}

			o.InvalidatePage(c, 0)
			o.FlushTLB(c)
			o.ReleaseRoot(c, root)
			if o.Refs() != 0 {
				t.Errorf("refs leaked: %d", o.Refs())
			}
			_ = hits
		})
	}
}

// allocFor allocates from the right partition for an environment.
func allocFor(e struct {
	name string
	obj  Object
	c    *hw.CPU
	m    *hw.Machine
}, m *hw.Machine) hw.PFN {
	if v, ok := e.obj.(*Virtual); ok {
		return v.D.Frames.Alloc()
	}
	return m.Frames.Alloc()
}

// TestDirectBatchAndRoots covers the remaining Direct surface.
func TestDirectBatchAndRoots(t *testing.T) {
	m, c := nativeEnv()
	o := NewDirect(m)
	table := m.Frames.Alloc()
	o.WritePTEBatch(c, []xen.MMUUpdate{
		{Table: table, Index: 0, New: hw.MakePTE(9, hw.PTEPresent)},
		{Table: table, Index: 1, New: hw.MakePTE(10, hw.PTEPresent)},
	})
	if hw.ReadPTE(m.Mem, table, 1).Frame() != 10 {
		t.Fatal("batch not applied")
	}
	o.RegisterRoot(c, table) // no-ops on bare hardware
	o.ReleaseRoot(c, table)
	o.FlushTLB(c)
	o.InvalidatePage(c, 0x1000)
	o.ArmTimer(c, c.Now()+100)
	if o.Stats.PTEWrites.Load() != 2 {
		t.Fatalf("stats: %d pte writes", o.Stats.PTEWrites.Load())
	}
}

// TestNativeContextSwitchLoadsCR3 covers the native switch path.
func TestNativeContextSwitchLoadsCR3(t *testing.T) {
	m, c := nativeEnv()
	o := NewNative(m)
	root := m.Frames.Alloc()
	o.ContextSwitch(c, root)
	if c.ReadCR3() != root {
		t.Fatal("CR3 not loaded")
	}
	flushes := c.TLB.Flushes
	o.FlushTLB(c)
	if c.TLB.Flushes != flushes+1 {
		t.Fatal("TLB not flushed")
	}
}
