package vo

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/xen"
)

// Tracker is the active-tracking policy (§5.1.2 "first approach"): in
// native mode, every page-table store is mirrored into the pre-cached
// VMM's frame table. Costs 2–3 % in native mode but makes the
// native->virtual switch skip the frame-info recompute.
type Tracker struct {
	V *xen.VMM
	D *xen.Domain
}

// Native is Mercury's native-mode virtualization object: the Direct
// operation bodies invoked through the object table, with entry/exit
// reference counting so the mode-switch machinery can tell when the
// kernel is inside sensitive code (§5.1.1).
type Native struct {
	d *Direct
	refcount
	// Track, when non-nil, enables the active-tracking policy.
	Track *Tracker
	// Journal, when non-nil, enables the dirty-frame journal policy:
	// page-table stores append to the ring, structural changes (root
	// registration/release) degrade the epoch to full recompute.
	Journal *xen.DirtyJournal
	Stats   Stats

	// lazyDepth is the per-CPU lazy-MMU nesting depth. Native executes
	// eagerly — the depth only carries the operation reference the
	// outermost BeginLazyMMU takes, matching the virtual object's
	// refcount behaviour so mode switches see the same drain points.
	lazyDepth []int
}

// NewNative returns Mercury's native-mode object.
func NewNative(m *hw.Machine) *Native {
	return &Native{d: NewDirect(m), Stats: newStats(m, "native"),
		lazyDepth: make([]int, len(m.CPUs))}
}

// callEnter is the operation prologue: object-table indirection plus
// reference counting. Pair with `defer n.exit()` — unlike a returned
// closure, the plain defer is open-coded and allocation-free.
func (n *Native) callEnter(c *hw.CPU) {
	n.Stats.Calls.Add(1)
	n.enter() // count first: the charges below may deliver interrupts
	c.Charge(n.d.M.Costs.VOIndirect + n.d.M.Costs.VORefCount)
}

// Name identifies the object.
func (n *Native) Name() string { return "native" }

// Virtualized reports false.
func (n *Native) Virtualized() bool { return false }

// SetInterrupts executes cli/sti through the object table.
func (n *Native) SetInterrupts(c *hw.CPU, on bool) {
	n.callEnter(c)
	defer n.exit()
	n.d.SetInterrupts(c, on)
}

// LoadInterruptTable executes lidt through the object table.
func (n *Native) LoadInterruptTable(c *hw.CPU, t *hw.IDT) {
	n.callEnter(c)
	defer n.exit()
	n.d.LoadInterruptTable(c, t)
}

// ArmTimer programs the APIC timer through the object table.
func (n *Native) ArmTimer(c *hw.CPU, deadline hw.Cycles) {
	n.callEnter(c)
	defer n.exit()
	n.d.ArmTimer(c, deadline)
}

// ContextSwitch loads CR3 through the object table.
func (n *Native) ContextSwitch(c *hw.CPU, root hw.PFN) {
	n.callEnter(c)
	defer n.exit()
	n.d.ContextSwitch(c, root)
}

// WritePTE stores the entry, mirroring it into the VMM under active
// tracking.
func (n *Native) WritePTE(c *hw.CPU, table hw.PFN, idx int, e hw.PTE) {
	n.callEnter(c)
	defer n.exit()
	n.Stats.PTEWrites.Add(1)
	if n.Track != nil {
		if err := n.Track.V.MirrorPTEWrite(c, n.Track.D,
			xen.MMUUpdate{Table: table, Index: idx, New: e}); err != nil {
			panic(fmt.Sprintf("vo: active tracking diverged: %v", err))
		}
		return
	}
	if n.Journal != nil {
		c.Charge(n.d.M.Costs.JournalAppend)
		n.Journal.Record(table, idx, hw.ReadPTE(n.d.M.Mem, table, idx), e)
	}
	c.Charge(n.d.M.Costs.PTEWriteNative)
	hw.WritePTE(n.d.M.Mem, table, idx, e)
}

// WritePTEBatch stores each entry (mirroring under active tracking).
func (n *Native) WritePTEBatch(c *hw.CPU, batch []xen.MMUUpdate) {
	n.callEnter(c)
	defer n.exit()
	n.Stats.PTEWrites.Add(uint64(len(batch)))
	for _, u := range batch {
		if n.Track != nil {
			if err := n.Track.V.MirrorPTEWrite(c, n.Track.D, u); err != nil {
				panic(fmt.Sprintf("vo: active tracking diverged: %v", err))
			}
			continue
		}
		if n.Journal != nil {
			c.Charge(n.d.M.Costs.JournalAppend)
			n.Journal.Record(u.Table, u.Index,
				hw.ReadPTE(n.d.M.Mem, u.Table, u.Index), u.New)
		}
		c.Charge(n.d.M.Costs.PTEWriteNative)
		hw.WritePTE(n.d.M.Mem, u.Table, u.Index, u.New)
	}
}

// RegisterRoot pins the root in the mirror under active tracking; under
// the journal policy a new root is a structural change the ring cannot
// express, degrading the epoch to full recompute.
func (n *Native) RegisterRoot(c *hw.CPU, root hw.PFN) {
	n.callEnter(c)
	defer n.exit()
	if n.Track != nil {
		if err := n.Track.V.MirrorPinRoot(c, n.Track.D, root); err != nil {
			panic(fmt.Sprintf("vo: active tracking pin: %v", err))
		}
	}
	if n.Journal != nil {
		n.Journal.RecordStructural()
	}
}

// ReleaseRoot unpins the root in the mirror under active tracking; see
// RegisterRoot for the journal-policy semantics.
func (n *Native) ReleaseRoot(c *hw.CPU, root hw.PFN) {
	n.callEnter(c)
	defer n.exit()
	if n.Track != nil {
		if err := n.Track.V.MirrorUnpinRoot(c, n.Track.D, root); err != nil {
			panic(fmt.Sprintf("vo: active tracking unpin: %v", err))
		}
	}
	if n.Journal != nil {
		n.Journal.RecordStructural()
	}
}

// FlushTLB flushes through the object table.
func (n *Native) FlushTLB(c *hw.CPU) {
	n.callEnter(c)
	defer n.exit()
	n.d.FlushTLB(c)
}

// InvalidatePage executes invlpg through the object table.
func (n *Native) InvalidatePage(c *hw.CPU, va hw.VirtAddr) {
	n.callEnter(c)
	defer n.exit()
	n.d.InvalidatePage(c, va)
}

// BeginLazyMMU opens a lazy-MMU section. Native has nothing to defer,
// but the outermost Begin still takes an operation reference so the
// section reads as in-flight sensitive work to the mode-switch scan.
func (n *Native) BeginLazyMMU(c *hw.CPU) {
	if n.lazyDepth[c.ID] == 0 {
		n.callEnter(c)
	}
	n.lazyDepth[c.ID]++
}

// EndLazyMMU closes the section.
func (n *Native) EndLazyMMU(c *hw.CPU) {
	if n.lazyDepth[c.ID] <= 0 {
		panic("vo: EndLazyMMU without matching BeginLazyMMU")
	}
	n.lazyDepth[c.ID]--
	if n.lazyDepth[c.ID] == 0 {
		n.exit()
	}
}

// FlushLazyMMU is a no-op: native operations execute eagerly.
func (n *Native) FlushLazyMMU(c *hw.CPU) {}

var _ Object = (*Native)(nil)
