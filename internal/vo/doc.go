// Package vo implements the paper's central abstraction, the
// Virtualization Object (§4.2, §5.3): all virtualization-sensitive code
// and data grouped behind one function/data table, with separate
// implementations for an OS on bare hardware and an OS on the VMM.
// Relocating the kernel between execution modes is then a matter of
// swapping the object pointer — which is exactly what Mercury's mode
// switch does.
//
// Three implementations exist:
//
//   - Direct: the ops an *unmodified* native kernel performs (the N-L
//     baseline). No indirection, no reference counting.
//   - Native: Mercury's native-mode object — the same direct hardware
//     manipulation, but invoked through the object table and reference
//     counted on entry/exit so a mode switch can tell when it is safe to
//     commit (§5.1.1). Optionally mirrors page-table stores into the
//     pre-cached VMM's frame table (the active-tracking policy, §5.1.2).
//   - Virtual: Mercury's virtual-mode object — every sensitive operation
//     becomes a hypercall into the VMM.
package vo
