package vo

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/hw"
	"repro/internal/xen"
)

// Batch-boundary semantics: inside a lazy-MMU section stores are
// invisible until a boundary (FlushLazyMMU, FlushTLB, ContextSwitch,
// EndLazyMMU) drains the per-CPU buffer; every boundary drains fully.

func TestLazyWriteDeferredUntilFlush(t *testing.T) {
	o, c, pt, e := virtualWriteEnv(t)

	o.BeginLazyMMU(c)
	o.WritePTE(c, pt, 5, e)
	if got := hw.ReadPTE(o.V.M.Mem, pt, 5); got != 0 {
		t.Fatalf("deferred store already visible: %#x", uint32(got))
	}
	o.FlushLazyMMU(c)
	if got := hw.ReadPTE(o.V.M.Mem, pt, 5); got != e {
		t.Fatalf("after FlushLazyMMU: %#x, want %#x", uint32(got), uint32(e))
	}

	o.WritePTE(c, pt, 6, e)
	o.EndLazyMMU(c)
	if got := hw.ReadPTE(o.V.M.Mem, pt, 6); got != e {
		t.Fatalf("EndLazyMMU did not drain: %#x, want %#x", uint32(got), uint32(e))
	}
	if o.Refs() != 0 {
		t.Fatalf("refs after section: %d", o.Refs())
	}
}

func TestLazySectionsNest(t *testing.T) {
	o, c, pt, e := virtualWriteEnv(t)

	o.BeginLazyMMU(c)
	o.BeginLazyMMU(c)
	if o.Refs() != 1 {
		t.Fatalf("nested sections hold %d refs, want 1 (outermost only)", o.Refs())
	}
	o.WritePTE(c, pt, 7, e)
	o.EndLazyMMU(c) // inner End is a boundary too
	if got := hw.ReadPTE(o.V.M.Mem, pt, 7); got != e {
		t.Fatalf("inner EndLazyMMU did not drain: %#x", uint32(got))
	}
	// Still inside the outer section: stores defer again.
	o.WritePTE(c, pt, 8, e)
	if got := hw.ReadPTE(o.V.M.Mem, pt, 8); got != 0 {
		t.Fatal("outer section no longer deferring after inner End")
	}
	o.EndLazyMMU(c)
	if got := hw.ReadPTE(o.V.M.Mem, pt, 8); got != e {
		t.Fatalf("outer EndLazyMMU did not drain: %#x", uint32(got))
	}
	if o.Refs() != 0 {
		t.Fatalf("refs after sections: %d", o.Refs())
	}
}

func TestLazyFlushTLBIsBoundary(t *testing.T) {
	o, c, pt, e := virtualWriteEnv(t)
	d := o.D

	o.BeginLazyMMU(c)
	defer o.EndLazyMMU(c)
	o.WritePTE(c, pt, 9, e)
	m0, h0 := d.Stats.Multicalls.Load(), d.Stats.Hypercalls.Load()
	f0 := c.TLB.Flushes
	o.FlushTLB(c)
	if got := hw.ReadPTE(o.V.M.Mem, pt, 9); got != e {
		t.Fatalf("FlushTLB did not drain the lazy buffer: %#x", uint32(got))
	}
	if got := d.Stats.Multicalls.Load() - m0; got != 1 {
		t.Errorf("drain used %d multicalls, want 1", got)
	}
	if got := d.Stats.Hypercalls.Load() - h0; got != 1 {
		t.Errorf("drain used %d VMM entries, want 1 (flush rides the batch)", got)
	}
	if got := c.TLB.Flushes - f0; got != 1 {
		t.Errorf("hardware flushes = %d, want 1", got)
	}
}

func TestLazyContextSwitchIsBoundary(t *testing.T) {
	v, d, c := virtualEnv(t)
	o := NewVirtual(v, d)
	alloc := func() hw.PFN {
		pfn := d.Frames.Alloc()
		v.M.Mem.ZeroFrame(pfn)
		return pfn
	}
	root := alloc()
	o.RegisterRoot(c, root)
	pt := alloc()
	o.WritePTE(c, root, 0, hw.MakePTE(pt, hw.PTEPresent|hw.PTEWrite|hw.PTEUser))
	e := hw.MakePTE(alloc(), hw.PTEPresent|hw.PTEUser)

	o.BeginLazyMMU(c)
	defer o.EndLazyMMU(c)
	o.WritePTE(c, pt, 1, e)
	m0 := d.Stats.Multicalls.Load()
	o.ContextSwitch(c, root)
	if got := hw.ReadPTE(v.M.Mem, pt, 1); got != e {
		t.Fatalf("ContextSwitch did not drain the lazy buffer: %#x", uint32(got))
	}
	if got := d.Stats.Multicalls.Load() - m0; got != 1 {
		t.Errorf("switch+drain used %d multicalls, want 1 (stack switch, new baseptr and the pending store share a batch)", got)
	}
	if c.ReadCR3() == 0 {
		t.Error("context switch did not install the root")
	}
}

func TestEndLazyMMUWithoutBeginPanics(t *testing.T) {
	v, d, c := virtualEnv(t)
	o := NewVirtual(v, d)
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced EndLazyMMU did not panic")
		}
	}()
	o.EndLazyMMU(c)
}

func TestNativeLazySectionIsEagerButRefCounted(t *testing.T) {
	m, c := nativeEnv()
	o := NewNative(m)
	table := m.Frames.Alloc()
	e := hw.MakePTE(9, hw.PTEPresent)

	o.BeginLazyMMU(c)
	if o.Refs() != 1 {
		t.Fatalf("native section holds %d refs, want 1", o.Refs())
	}
	o.WritePTE(c, table, 0, e)
	if got := hw.ReadPTE(m.Mem, table, 0); got != e {
		t.Fatal("native store deferred — native must stay eager")
	}
	o.FlushLazyMMU(c) // no-op
	o.EndLazyMMU(c)
	if o.Refs() != 0 {
		t.Fatalf("refs after section: %d", o.Refs())
	}
}

// --- batched vs unbatched equivalence -------------------------------

// batchEnv is one independent machine prepared for the property test:
// a registered root with one live L1 table, a pool of data frames, a
// pool of pin/unpin roots, and two context-switch roots.
type batchEnv struct {
	v        *xen.VMM
	d        *xen.Domain
	c        *hw.CPU
	o        *Virtual
	j        *xen.DirtyJournal
	pt       hw.PFN
	data     []hw.PFN
	pinPool  []hw.PFN
	pinned   []bool
	ctxRoots []hw.PFN
}

func newBatchEnv(t *testing.T) *batchEnv {
	t.Helper()
	v, d, c := virtualEnv(t)
	e := &batchEnv{v: v, d: d, c: c, o: NewVirtual(v, d), j: v.EnableJournal(0)}
	alloc := func() hw.PFN {
		pfn := d.Frames.Alloc()
		v.M.Mem.ZeroFrame(pfn)
		return pfn
	}
	root := alloc()
	e.o.RegisterRoot(c, root)
	e.pt = alloc()
	e.o.WritePTE(c, root, 0, hw.MakePTE(e.pt, hw.PTEPresent|hw.PTEWrite|hw.PTEUser))
	for i := 0; i < 16; i++ {
		e.data = append(e.data, alloc())
	}
	for i := 0; i < 4; i++ {
		e.pinPool = append(e.pinPool, alloc())
	}
	e.pinned = make([]bool, len(e.pinPool))
	e.ctxRoots = []hw.PFN{root, alloc()}
	e.o.RegisterRoot(c, e.ctxRoots[1])
	return e
}

// step applies one random operation drawn from rng. The same rng seed
// produces the same op stream on any env — the lazy wrapping is the
// only difference between the two runs.
func (e *batchEnv) step(rng *rand.Rand) {
	c, o := e.c, e.o
	switch k := rng.Intn(12); {
	case k < 4: // single store
		flags := hw.PTEPresent | hw.PTEUser
		if rng.Intn(2) == 0 {
			flags |= hw.PTEWrite
		}
		o.WritePTE(c, e.pt, rng.Intn(hw.PTEntries),
			hw.MakePTE(e.data[rng.Intn(len(e.data))], flags))
	case k < 5: // clear
		o.WritePTE(c, e.pt, rng.Intn(hw.PTEntries), 0)
	case k < 7: // batch store
		n := 1 + rng.Intn(4)
		batch := make([]xen.MMUUpdate, n)
		for i := range batch {
			batch[i] = xen.MMUUpdate{Table: e.pt, Index: rng.Intn(hw.PTEntries),
				New: hw.MakePTE(e.data[rng.Intn(len(e.data))], hw.PTEPresent|hw.PTEUser)}
		}
		o.WritePTEBatch(c, batch)
	case k < 9: // pin ladder
		i := rng.Intn(len(e.pinPool))
		if e.pinned[i] {
			o.ReleaseRoot(c, e.pinPool[i])
		} else {
			o.RegisterRoot(c, e.pinPool[i])
		}
		e.pinned[i] = !e.pinned[i]
	case k < 10:
		o.InvalidatePage(c, hw.VirtAddr(rng.Intn(1<<20))<<hw.PageShift)
	case k < 11:
		o.FlushTLB(c)
	default:
		o.ContextSwitch(c, e.ctxRoots[rng.Intn(len(e.ctxRoots))])
	}
}

// TestBatchedUnbatchedEquivalence is the property test for logical
// transparency: the same pseudo-random sensitive-op stream, run once
// per-op and once inside a lazy-MMU section punctuated by random
// flushes and nested sections, must leave two identically built
// machines bit-identical — every physical frame, the whole frame-table
// accounting, the installed root, and the (idle, virtual-mode) dirty
// journal.
func TestBatchedUnbatchedEquivalence(t *testing.T) {
	const seed, steps = 0x6d657263, 400

	eager := newBatchEnv(t)
	lazy := newBatchEnv(t)

	ops := rand.New(rand.NewSource(seed))
	for i := 0; i < steps; i++ {
		eager.step(ops)
	}

	ops = rand.New(rand.NewSource(seed)) // identical op stream
	punct := rand.New(rand.NewSource(1)) // lazy-side-only punctuation
	lazy.o.BeginLazyMMU(lazy.c)
	nested := 0
	for i := 0; i < steps; i++ {
		lazy.step(ops)
		switch punct.Intn(10) {
		case 0:
			lazy.o.FlushLazyMMU(lazy.c)
		case 1:
			lazy.o.BeginLazyMMU(lazy.c)
			nested++
		case 2:
			if nested > 0 {
				lazy.o.EndLazyMMU(lazy.c)
				nested--
			}
		}
	}
	for ; nested > 0; nested-- {
		lazy.o.EndLazyMMU(lazy.c)
	}
	lazy.o.EndLazyMMU(lazy.c)

	// The batching must actually have engaged, and saved VMM entries.
	if lazy.d.Stats.Multicalls.Load() == 0 {
		t.Fatal("lazy run issued no multicalls")
	}
	le := lazy.d.Stats.Hypercalls.Load() + lazy.d.Stats.Multicalls.Load()
	ee := eager.d.Stats.Hypercalls.Load() + eager.d.Stats.Multicalls.Load()
	if le >= ee {
		t.Errorf("lazy run entered the VMM %d times, eager %d — batching saved nothing", le, ee)
	}

	// Bit-identical end state.
	if err := eager.v.FT.Equal(lazy.v.FT); err != nil {
		t.Fatalf("frame tables diverge: %v", err)
	}
	mem1, mem2 := eager.v.M.Mem, lazy.v.M.Mem
	if mem1.NumFrames() != mem2.NumFrames() {
		t.Fatalf("machines sized differently")
	}
	for pfn := hw.PFN(0); pfn < mem1.NumFrames(); pfn++ {
		if !bytes.Equal(mem1.FrameBytesRO(pfn), mem2.FrameBytesRO(pfn)) {
			t.Fatalf("physical frame %d diverges between batched and unbatched runs", pfn)
		}
	}
	if eager.c.ReadCR3() != lazy.c.ReadCR3() {
		t.Fatalf("installed roots diverge: %#x vs %#x", eager.c.ReadCR3(), lazy.c.ReadCR3())
	}
	if es, ls := eager.j.StatsSnapshot(), lazy.j.StatsSnapshot(); es != ls {
		t.Fatalf("journal state diverges: %+v vs %+v", es, ls)
	}
	if eager.j.Len() != lazy.j.Len() {
		t.Fatalf("journal lengths diverge: %d vs %d", eager.j.Len(), lazy.j.Len())
	}
}
