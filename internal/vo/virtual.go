package vo

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/xen"
)

// Virtual is the virtual-mode virtualization object: every sensitive
// operation invokes the VMM's interface (hypercalls in Xen terms) instead
// of touching hardware, because the kernel now runs deprivileged at PL1
// (§3.2.1, §5.3).
type Virtual struct {
	V *xen.VMM
	D *xen.Domain
	// TrapEmulate routes single-entry stores through the VMM's
	// trap-and-emulation path instead of explicit hypercalls — the
	// §5.3 alternative for code kept outside the VO. Batches still use
	// mmu_update.
	TrapEmulate bool
	refcount
	Stats Stats
}

// NewVirtual returns the virtual-mode object for domain d.
func NewVirtual(v *xen.VMM, d *xen.Domain) *Virtual {
	return &Virtual{V: v, D: d, Stats: newStats(v.M, "virtual")}
}

func (o *Virtual) call(c *hw.CPU) func() {
	o.Stats.Calls.Add(1)
	o.enter() // count first: the charges below may deliver interrupts
	c.Charge(o.V.M.Costs.VOIndirect + o.V.M.Costs.VORefCount)
	return o.exit
}

// Name identifies the object.
func (o *Virtual) Name() string { return "virtual" }

// Virtualized reports true.
func (o *Virtual) Virtualized() bool { return true }

// SetInterrupts toggles the virtual interrupt flag — a cheap shared-
// memory write, the paravirtual replacement for cli/sti.
func (o *Virtual) SetInterrupts(c *hw.CPU, on bool) {
	defer o.call(c)()
	o.V.SetVIF(c, o.D, on)
}

// LoadInterruptTable registers the kernel's handlers with the VMM
// (set_trap_table): the hardware IDT stays the VMM's.
func (o *Virtual) LoadInterruptTable(c *hw.CPU, t *hw.IDT) {
	defer o.call(c)()
	entries := make([]xen.TrapEntry, 0, 16)
	for v := 0; v < hw.NumVectors; v++ {
		g := t.Get(v)
		if g.Present {
			entries = append(entries, xen.TrapEntry{Vector: v, Handler: g.Handler})
		}
	}
	o.V.HypSetTrapTable(c, o.D, entries)
}

// ArmTimer programs the timer via the VMM.
func (o *Virtual) ArmTimer(c *hw.CPU, deadline hw.Cycles) {
	defer o.call(c)()
	o.V.HypSetTimer(c, o.D, deadline)
}

// ContextSwitch performs the paravirtual context switch: stack switch
// plus new page-directory base in one multicall.
func (o *Virtual) ContextSwitch(c *hw.CPU, root hw.PFN) {
	defer o.call(c)()
	if err := o.V.HypContextSwitch(c, o.D, root); err != nil {
		panic(fmt.Sprintf("vo: context switch hypercall: %v", err))
	}
}

// WritePTE issues a single-entry update: an explicit mmu_update
// hypercall, or — under TrapEmulate — a direct store that faults into
// the VMM and is emulated there.
func (o *Virtual) WritePTE(c *hw.CPU, table hw.PFN, idx int, e hw.PTE) {
	defer o.call(c)()
	o.Stats.PTEWrites.Add(1)
	u := xen.MMUUpdate{Table: table, Index: idx, New: e}
	var err error
	if o.TrapEmulate {
		err = o.V.EmulatePTEWrite(c, o.D, u)
	} else {
		err = o.V.HypMMUUpdate(c, o.D, []xen.MMUUpdate{u})
	}
	if err != nil {
		panic(fmt.Sprintf("vo: mmu_update: %v", err))
	}
}

// WritePTEBatch issues one mmu_update for the whole batch: one world
// switch amortized over every entry.
func (o *Virtual) WritePTEBatch(c *hw.CPU, batch []xen.MMUUpdate) {
	defer o.call(c)()
	o.Stats.PTEWrites.Add(uint64(len(batch)))
	if err := o.V.HypMMUUpdate(c, o.D, batch); err != nil {
		panic(fmt.Sprintf("vo: mmu_update batch: %v", err))
	}
}

// RegisterRoot pins the new tree.
func (o *Virtual) RegisterRoot(c *hw.CPU, root hw.PFN) {
	defer o.call(c)()
	if err := o.V.HypPinTable(c, o.D, root); err != nil {
		panic(fmt.Sprintf("vo: pin root: %v", err))
	}
}

// ReleaseRoot unpins a retired tree.
func (o *Virtual) ReleaseRoot(c *hw.CPU, root hw.PFN) {
	defer o.call(c)()
	if err := o.V.HypUnpinTable(c, o.D, root); err != nil {
		panic(fmt.Sprintf("vo: unpin root: %v", err))
	}
}

// FlushTLB flushes via the VMM.
func (o *Virtual) FlushTLB(c *hw.CPU) {
	defer o.call(c)()
	o.V.HypTLBFlush(c, o.D)
}

// InvalidatePage invalidates via the VMM.
func (o *Virtual) InvalidatePage(c *hw.CPU, va hw.VirtAddr) {
	defer o.call(c)()
	o.V.HypInvlpg(c, o.D, va)
}

var _ Object = (*Virtual)(nil)
