package vo

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/xen"
)

// Virtual is the virtual-mode virtualization object: every sensitive
// operation invokes the VMM's interface (hypercalls in Xen terms) instead
// of touching hardware, because the kernel now runs deprivileged at PL1
// (§3.2.1, §5.3).
//
// Inside a lazy-MMU section (BeginLazyMMU/EndLazyMMU, the Linux
// xen_mc_batch pattern) MMU operations enqueue into a per-CPU multicall
// buffer and drain in ONE world switch at section boundaries, so a
// fork's PTE storm or an attach's pin ladder pays WorldSwitch +
// HypercallBase once instead of per operation.
type Virtual struct {
	V *xen.VMM
	D *xen.Domain
	// TrapEmulate routes single-entry stores through the VMM's
	// trap-and-emulation path instead of explicit hypercalls — the
	// §5.3 alternative for code kept outside the VO. Batches still use
	// mmu_update, and lazy sections fall back to eager emulation.
	TrapEmulate bool
	refcount
	Stats Stats

	// lazy is the per-CPU lazy-MMU state, indexed by CPU ID.
	lazy []lazyBuf
}

// lazyBuf is one CPU's lazy-MMU state: the section nesting depth, the
// pending multicall, and a one-entry scratch so the eager WritePTE path
// builds its mmu_update batch without a heap allocation.
type lazyBuf struct {
	depth int
	mc    xen.Multicall
	one   [1]xen.MMUUpdate
}

// mcBatchCap caps the pending ops per lazy buffer: past this the buffer
// self-flushes, bounding both the VMM's per-entry latency and the
// window a failed op can leave unapplied (Xen-Linux uses a similarly
// bounded multicall page).
const mcBatchCap = 512

// NewVirtual returns the virtual-mode object for domain d.
func NewVirtual(v *xen.VMM, d *xen.Domain) *Virtual {
	o := &Virtual{V: v, D: d, Stats: newStats(v.M, "virtual")}
	o.lazy = make([]lazyBuf, len(v.M.CPUs))
	for i := range o.lazy {
		o.lazy[i].mc.Ops = make([]xen.MCOp, 0, mcBatchCap+4)
	}
	return o
}

// callEnter is the operation prologue: object-table indirection plus
// reference counting. Pair with `defer o.exit()` — unlike a returned
// closure, the plain defer is open-coded and allocation-free.
func (o *Virtual) callEnter(c *hw.CPU) {
	o.Stats.Calls.Add(1)
	o.enter() // count first: the charges below may deliver interrupts
	c.Charge(o.V.M.Costs.VOIndirect + o.V.M.Costs.VORefCount)
}

// Name identifies the object.
func (o *Virtual) Name() string { return "virtual" }

// Virtualized reports true.
func (o *Virtual) Virtualized() bool { return true }

// SetInterrupts toggles the virtual interrupt flag — a cheap shared-
// memory write, the paravirtual replacement for cli/sti.
func (o *Virtual) SetInterrupts(c *hw.CPU, on bool) {
	o.callEnter(c)
	defer o.exit()
	o.V.SetVIF(c, o.D, on)
}

// LoadInterruptTable registers the kernel's handlers with the VMM
// (set_trap_table): the hardware IDT stays the VMM's.
func (o *Virtual) LoadInterruptTable(c *hw.CPU, t *hw.IDT) {
	o.callEnter(c)
	defer o.exit()
	entries := make([]xen.TrapEntry, 0, 16)
	for v := 0; v < hw.NumVectors; v++ {
		g := t.Get(v)
		if g.Present {
			entries = append(entries, xen.TrapEntry{Vector: v, Handler: g.Handler})
		}
	}
	o.V.HypSetTrapTable(c, o.D, entries)
}

// ArmTimer programs the timer via the VMM.
func (o *Virtual) ArmTimer(c *hw.CPU, deadline hw.Cycles) {
	o.callEnter(c)
	defer o.exit()
	o.V.HypSetTimer(c, o.D, deadline)
}

// ContextSwitch performs the paravirtual context switch: stack switch
// plus new page-directory base in one multicall. In a lazy section the
// pending buffer rides along in the same VMM entry — and the CR3 load
// is a batch boundary, so the buffer drains here regardless.
func (o *Virtual) ContextSwitch(c *hw.CPU, root hw.PFN) {
	o.callEnter(c)
	defer o.exit()
	if b := &o.lazy[c.ID]; b.depth > 0 {
		c.Charge(o.V.M.Costs.MulticallEnqueue * 2)
		b.mc.AddStackSwitch()
		b.mc.AddNewBaseptr(root)
		o.flushLazy(c, b)
		return
	}
	if err := o.V.HypContextSwitch(c, o.D, root); err != nil {
		panic(fmt.Sprintf("vo: context switch hypercall: %v", err))
	}
}

// WritePTE issues a single-entry update: enqueued into the lazy buffer
// inside a lazy section, otherwise an explicit mmu_update hypercall, or
// — under TrapEmulate — a direct store that faults into the VMM and is
// emulated there.
func (o *Virtual) WritePTE(c *hw.CPU, table hw.PFN, idx int, e hw.PTE) {
	o.callEnter(c)
	defer o.exit()
	o.Stats.PTEWrites.Add(1)
	u := xen.MMUUpdate{Table: table, Index: idx, New: e}
	b := &o.lazy[c.ID]
	if b.depth > 0 && !o.TrapEmulate {
		o.enqueueUpdate(c, b, u)
		return
	}
	var err error
	if o.TrapEmulate {
		err = o.V.EmulatePTEWrite(c, o.D, u)
	} else {
		b.one[0] = u
		err = o.V.HypMMUUpdate(c, o.D, b.one[:])
	}
	if err != nil {
		panic(fmt.Sprintf("vo: mmu_update: %v", err))
	}
}

// WritePTEBatch issues one mmu_update for the whole batch: one world
// switch amortized over every entry. In a lazy section the entries join
// the pending multicall instead.
func (o *Virtual) WritePTEBatch(c *hw.CPU, batch []xen.MMUUpdate) {
	o.callEnter(c)
	defer o.exit()
	o.Stats.PTEWrites.Add(uint64(len(batch)))
	if b := &o.lazy[c.ID]; b.depth > 0 && !o.TrapEmulate {
		for _, u := range batch {
			o.enqueueUpdate(c, b, u)
		}
		return
	}
	if err := o.V.HypMMUUpdate(c, o.D, batch); err != nil {
		panic(fmt.Sprintf("vo: mmu_update batch: %v", err))
	}
}

// enqueueUpdate appends one entry store to the lazy buffer,
// self-flushing at the cap.
func (o *Virtual) enqueueUpdate(c *hw.CPU, b *lazyBuf, u xen.MMUUpdate) {
	c.Charge(o.V.M.Costs.MulticallEnqueue)
	b.mc.AddUpdate(u)
	if b.mc.Len() >= mcBatchCap {
		o.flushLazy(c, b)
	}
}

// RegisterRoot pins the new tree (a pin-ladder step joins the lazy
// buffer when one is open).
func (o *Virtual) RegisterRoot(c *hw.CPU, root hw.PFN) {
	o.callEnter(c)
	defer o.exit()
	if b := &o.lazy[c.ID]; b.depth > 0 {
		c.Charge(o.V.M.Costs.MulticallEnqueue)
		b.mc.AddPin(root)
		if b.mc.Len() >= mcBatchCap {
			o.flushLazy(c, b)
		}
		return
	}
	if err := o.V.HypPinTable(c, o.D, root); err != nil {
		panic(fmt.Sprintf("vo: pin root: %v", err))
	}
}

// ReleaseRoot unpins a retired tree.
func (o *Virtual) ReleaseRoot(c *hw.CPU, root hw.PFN) {
	o.callEnter(c)
	defer o.exit()
	if b := &o.lazy[c.ID]; b.depth > 0 {
		c.Charge(o.V.M.Costs.MulticallEnqueue)
		b.mc.AddUnpin(root)
		if b.mc.Len() >= mcBatchCap {
			o.flushLazy(c, b)
		}
		return
	}
	if err := o.V.HypUnpinTable(c, o.D, root); err != nil {
		panic(fmt.Sprintf("vo: unpin root: %v", err))
	}
}

// FlushTLB flushes via the VMM. A TLB flush is a batch boundary: in a
// lazy section the flush request joins the pending multicall (where the
// VMM coalesces it with any other flush in the batch) and the buffer
// drains immediately, so no read after FlushTLB can observe either a
// stale translation or an unapplied deferred store.
func (o *Virtual) FlushTLB(c *hw.CPU) {
	o.callEnter(c)
	defer o.exit()
	if b := &o.lazy[c.ID]; b.depth > 0 {
		c.Charge(o.V.M.Costs.MulticallEnqueue)
		b.mc.AddTLBFlush()
		o.flushLazy(c, b)
		return
	}
	o.V.HypTLBFlush(c, o.D)
}

// InvalidatePage invalidates via the VMM (deferred into the batch in a
// lazy section, as Xen batches MMUEXT_INVLPG_LOCAL).
func (o *Virtual) InvalidatePage(c *hw.CPU, va hw.VirtAddr) {
	o.callEnter(c)
	defer o.exit()
	if b := &o.lazy[c.ID]; b.depth > 0 {
		c.Charge(o.V.M.Costs.MulticallEnqueue)
		b.mc.AddInvlpg(va)
		if b.mc.Len() >= mcBatchCap {
			o.flushLazy(c, b)
		}
		return
	}
	o.V.HypInvlpg(c, o.D, va)
}

// BeginLazyMMU opens a lazy-MMU section on c. The outermost Begin takes
// an operation reference that is held until the matching EndLazyMMU, so
// a mode switch defers while a batch could be pending.
func (o *Virtual) BeginLazyMMU(c *hw.CPU) {
	b := &o.lazy[c.ID]
	if b.depth == 0 {
		o.callEnter(c)
	}
	b.depth++
}

// EndLazyMMU closes the section, draining the buffer. Every End is a
// boundary (nested sections flush on their own exit too, as Linux's
// arch_leave_lazy_mmu_mode does).
func (o *Virtual) EndLazyMMU(c *hw.CPU) {
	b := &o.lazy[c.ID]
	if b.depth <= 0 {
		panic("vo: EndLazyMMU without matching BeginLazyMMU")
	}
	o.flushLazy(c, b)
	b.depth--
	if b.depth == 0 {
		o.exit()
	}
}

// FlushLazyMMU drains the pending buffer without closing the section —
// the read barrier a caller must issue before observing state a
// deferred operation targets.
func (o *Virtual) FlushLazyMMU(c *hw.CPU) {
	b := &o.lazy[c.ID]
	if b.depth > 0 {
		o.flushLazy(c, b)
	}
}

// flushLazy drains b in one multicall.
func (o *Virtual) flushLazy(c *hw.CPU, b *lazyBuf) {
	if b.mc.Len() == 0 {
		return
	}
	err := o.V.HypMulticall(c, o.D, &b.mc)
	b.mc.Reset()
	if err != nil {
		panic(fmt.Sprintf("vo: lazy-mmu flush: %v", err))
	}
}

var _ Object = (*Virtual)(nil)
