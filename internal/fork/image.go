package fork

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/hw"
	"repro/internal/migrate"
)

// FrameRef points one frame of an image at content in the Store. Off is
// the frame's position relative to the image's partition base — offsets,
// not absolute PFNs, so identity survives restoring into a differently
// placed partition.
type FrameRef struct {
	Off uint32
	H   Hash
}

// BaseImage is a checkpoint image broken into content-addressed frames:
// the metadata of a migrate.DomainImage plus one store reference per
// non-zero frame. A base is the read-only template clones map against —
// it owns one reference per entry in Refs until Release.
type BaseImage struct {
	store *Store

	Name        string
	Lo, Hi      hw.PFN // source partition [Lo, Hi)
	CR3         hw.PFN
	VIF         bool
	PinnedRoots []hw.PFN // sorted ascending
	Privileged  bool

	// Refs holds the non-zero frames in ascending-offset order.
	Refs []FrameRef

	refByOff map[uint32]Hash
	released bool
}

// NewBase ingests a checkpoint image into the store. Frames are Put in
// sorted-PFN order (deterministic store accounting); a second ingest of
// an identical image stores zero new bytes.
func NewBase(store *Store, img *migrate.DomainImage) (*BaseImage, error) {
	b := &BaseImage{
		store: store,
		Name:  img.Name, Lo: img.Lo, Hi: img.Hi,
		CR3: img.CR3, VIF: img.VIF, Privileged: img.Privileged,
		PinnedRoots: append([]hw.PFN(nil), img.PinnedRoots...),
		refByOff:    make(map[uint32]Hash, len(img.Pages)),
	}
	sort.Slice(b.PinnedRoots, func(i, j int) bool { return b.PinnedRoots[i] < b.PinnedRoots[j] })
	pfns := make([]hw.PFN, 0, len(img.Pages))
	for pfn := range img.Pages {
		if pfn < img.Lo || pfn >= img.Hi {
			return nil, fmt.Errorf("fork: image page %d outside partition [%d,%d)", pfn, img.Lo, img.Hi)
		}
		pfns = append(pfns, pfn)
	}
	sort.Slice(pfns, func(i, j int) bool { return pfns[i] < pfns[j] })
	for _, pfn := range pfns {
		h, err := store.Put(img.Pages[pfn])
		if err != nil {
			b.rollbackPuts()
			return nil, err
		}
		off := uint32(pfn - img.Lo)
		b.Refs = append(b.Refs, FrameRef{Off: off, H: h})
		b.refByOff[off] = h
	}
	return b, nil
}

// rollbackPuts releases the refs taken so far by a failed NewBase.
func (b *BaseImage) rollbackPuts() {
	for _, r := range b.Refs {
		_ = b.store.Release(r.H)
	}
	b.Refs = nil
	b.released = true
}

// Span returns the partition size in frames.
func (b *BaseImage) Span() hw.PFN { return b.Hi - b.Lo }

// HashAt returns the content hash at offset off and whether the base
// has a (non-zero) frame there.
func (b *BaseImage) HashAt(off uint32) (Hash, bool) {
	h, ok := b.refByOff[off]
	return h, ok
}

// LiveRefs reports the store references the base currently owns.
func (b *BaseImage) LiveRefs() int {
	if b.released {
		return 0
	}
	return len(b.Refs)
}

// Release drops the base's store references. Clones already mapped keep
// their own references and stay valid.
func (b *BaseImage) Release() error {
	if b.released {
		return nil
	}
	b.released = true
	var firstErr error
	for _, r := range b.Refs {
		if err := b.store.Release(r.H); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Image reconstructs the flat DomainImage (for migrate.Restore or
// serialization). Pages are fresh copies.
func (b *BaseImage) Image() (*migrate.DomainImage, error) {
	img := &migrate.DomainImage{
		Name: b.Name, Lo: b.Lo, Hi: b.Hi,
		CR3: b.CR3, VIF: b.VIF, Privileged: b.Privileged,
		PinnedRoots: append([]hw.PFN(nil), b.PinnedRoots...),
		Pages:       make(map[hw.PFN][]byte, len(b.Refs)),
	}
	for _, r := range b.Refs {
		data, err := b.store.Get(r.H)
		if err != nil {
			return nil, err
		}
		cp := make([]byte, hw.PageSize)
		copy(cp, data)
		img.Pages[b.Lo+hw.PFN(r.Off)] = cp
	}
	return img, nil
}

// IdentityHash is the position-independent identity of the state the
// image describes: partition span, vcpu state (CR3 as an offset), the
// pinned-root offsets, and every frame as (offset, content hash) in
// ascending order. The domain name and the partition's absolute
// placement are excluded — a clone restored at another address with
// untouched memory has the same identity as its base.
func (b *BaseImage) IdentityHash() Hash {
	return identityHash(uint32(b.Span()), uint32(b.CR3-b.Lo), b.VIF, b.Privileged,
		rootOffs(b.PinnedRoots, b.Lo), b.Refs)
}

// Overlay is the delta of a forked domain against its base: only the
// frames whose content diverged, each a store reference the overlay
// owns. A frame that became all-zero is recorded with the zero-page
// hash so Flatten knows to drop the base's content there.
type Overlay struct {
	store *Store
	Base  *BaseImage

	Name        string
	Lo, Hi      hw.PFN // clone partition [Lo, Hi)
	CR3         hw.PFN
	VIF         bool
	PinnedRoots []hw.PFN // sorted ascending, clone-relative placement

	// Dirty holds the diverged frames in ascending-offset order.
	Dirty []FrameRef

	released bool
}

// DeltaFrames returns the number of diverged frames the overlay stores.
func (o *Overlay) DeltaFrames() int { return len(o.Dirty) }

// LiveRefs reports the store references the overlay currently owns.
func (o *Overlay) LiveRefs() int {
	if o.released {
		return 0
	}
	return len(o.Dirty)
}

// Release drops the overlay's store references.
func (o *Overlay) Release() error {
	if o.released {
		return nil
	}
	o.released = true
	var firstErr error
	for _, r := range o.Dirty {
		if err := o.store.Release(r.H); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// effective merges base and delta into the clone's logical frame set:
// dirty entries override the base at the same offset, and a dirty
// zero-page entry erases it.
func (o *Overlay) effective() []FrameRef {
	m := make(map[uint32]Hash, len(o.Base.Refs)+len(o.Dirty))
	for _, r := range o.Base.Refs {
		m[r.Off] = r.H
	}
	for _, r := range o.Dirty {
		if r.H == zeroHash {
			delete(m, r.Off)
			continue
		}
		m[r.Off] = r.H
	}
	out := make([]FrameRef, 0, len(m))
	for off, h := range m {
		out = append(out, FrameRef{Off: off, H: h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Off < out[j].Off })
	return out
}

// IdentityHash is the clone's position-independent identity (same
// construction as BaseImage.IdentityHash, over the merged frame set).
// An unmodified clone — empty delta, same vcpu offsets — has exactly
// its base's identity.
func (o *Overlay) IdentityHash() Hash {
	return identityHash(uint32(o.Hi-o.Lo), uint32(o.CR3-o.Lo), o.VIF, o.Base.Privileged,
		rootOffs(o.PinnedRoots, o.Lo), o.effective())
}

// Flatten materializes the clone's full image (base plus delta) at the
// clone's partition.
func (o *Overlay) Flatten() (*migrate.DomainImage, error) {
	img := &migrate.DomainImage{
		Name: o.Name, Lo: o.Lo, Hi: o.Hi,
		CR3: o.CR3, VIF: o.VIF, Privileged: o.Base.Privileged,
		PinnedRoots: append([]hw.PFN(nil), o.PinnedRoots...),
		Pages:       make(map[hw.PFN][]byte),
	}
	for _, r := range o.effective() {
		data, err := o.store.Get(r.H)
		if err != nil {
			return nil, err
		}
		cp := make([]byte, hw.PageSize)
		copy(cp, data)
		img.Pages[o.Lo+hw.PFN(r.Off)] = cp
	}
	return img, nil
}

// rootOffs converts absolute pinned roots to partition offsets.
func rootOffs(roots []hw.PFN, lo hw.PFN) []uint32 {
	out := make([]uint32, len(roots))
	for i, r := range roots {
		out[i] = uint32(r - lo)
	}
	return out
}

// identityHash folds the canonical image description into one digest.
// Every field is length- or count-prefixed fixed-width little-endian,
// so distinct states cannot collide by field concatenation.
func identityHash(span, cr3Off uint32, vif, privileged bool,
	roots []uint32, frames []FrameRef) Hash {

	h := sha256.New()
	var w [4]byte
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(w[:], v)
		h.Write(w[:])
	}
	putBool := func(b bool) {
		if b {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	put(span)
	put(cr3Off)
	putBool(vif)
	putBool(privileged)
	put(uint32(len(roots)))
	for _, r := range roots {
		put(r)
	}
	put(uint32(len(frames)))
	for _, f := range frames {
		put(f.Off)
		h.Write(f.H[:])
	}
	var out Hash
	h.Sum(out[:0])
	return out
}
