package fork

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"

	"repro/internal/hw"
)

// Hash identifies a frame (or image) by its content.
type Hash [sha256.Size]byte

// String renders the short hex form used in reports.
func (h Hash) String() string { return fmt.Sprintf("%x", h[:8]) }

// HashFrame hashes one page of content.
func HashFrame(data []byte) Hash { return sha256.Sum256(data) }

// zeroHash is the hash of the all-zero page — the implicit content of
// every untouched frame, never stored.
var zeroHash = HashFrame(make([]byte, hw.PageSize))

// frameEntry is one deduplicated frame in the store.
type frameEntry struct {
	data []byte
	refs int64
}

// Store is the content-addressed snapshot cache: frame content keyed by
// hash, deduplicated across every image and clone that references it,
// refcounted so content lives exactly as long as something points at
// it. The E2B pattern from SNIPPETS.md snippet 1 — a shared read-only
// base plus sparse per-clone overlays — hangs off this store: a
// BaseImage holds one reference per frame, every clone and overlay
// holds its own, and a frame's bytes are freed when the last reference
// is released. Safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	frames map[Hash]*frameEntry

	puts      uint64 // logical frames offered to Put
	dedupHits uint64 // Puts that matched existing content
}

// NewStore returns an empty snapshot cache.
func NewStore() *Store {
	return &Store{frames: make(map[Hash]*frameEntry)}
}

// Put stores one page of content (copied) and returns its hash. If the
// content is already present the existing frame is reused — the caller
// still gains one reference either way.
func (s *Store) Put(data []byte) (Hash, error) {
	if len(data) != hw.PageSize {
		return Hash{}, fmt.Errorf("fork: Put of %d bytes, want one page", len(data))
	}
	h := HashFrame(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	if e, ok := s.frames[h]; ok {
		s.dedupHits++
		e.refs++
		return h, nil
	}
	cp := make([]byte, hw.PageSize)
	copy(cp, data)
	s.frames[h] = &frameEntry{data: cp, refs: 1}
	return h, nil
}

// Retain takes one more reference on an existing frame.
func (s *Store) Retain(h Hash) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.frames[h]
	if !ok {
		return fmt.Errorf("fork: Retain of absent frame %s", h)
	}
	e.refs++
	return nil
}

// Release drops one reference; the frame's bytes are freed when the
// count reaches zero.
func (s *Store) Release(h Hash) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.frames[h]
	if !ok {
		return fmt.Errorf("fork: Release of absent frame %s", h)
	}
	e.refs--
	if e.refs < 0 {
		return fmt.Errorf("fork: refcount of frame %s went negative", h)
	}
	if e.refs == 0 {
		delete(s.frames, h)
	}
	return nil
}

// Get returns the shared read-only bytes of a frame. The slice is
// aliased by every CoW mapping of the frame — callers must never write
// through it.
func (s *Store) Get(h Hash) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.frames[h]
	if !ok {
		return nil, fmt.Errorf("fork: Get of absent frame %s", h)
	}
	return e.data, nil
}

// Frames returns the number of unique frames stored.
func (s *Store) Frames() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.frames)
}

// BytesStored returns the deduplicated storage footprint.
func (s *Store) BytesStored() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.frames) * hw.PageSize
}

// Refs returns the total outstanding references across all frames — the
// quantity the chaos refcount-leak detector audits.
func (s *Store) Refs() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, e := range s.frames {
		n += e.refs
	}
	return n
}

// Puts returns (logical puts, dedup hits) — the raw dedup accounting.
func (s *Store) Puts() (puts, dedupHits uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.puts, s.dedupHits
}

// DedupRatio is logical frames offered per unique frame stored (1.0
// means no sharing; N clones of one image approach N).
func (s *Store) DedupRatio() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.frames) == 0 {
		return 1
	}
	return float64(s.puts) / float64(len(s.frames))
}

// Verify re-hashes every stored frame against its key — the store-
// corruption detector. A mismatch means the shared bytes every mapped
// clone reads were silently altered.
func (s *Store) Verify() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for h, e := range s.frames {
		if HashFrame(e.data) != h {
			return fmt.Errorf("fork: store corruption: frame keyed %s no longer hashes to its key", h)
		}
	}
	return nil
}

// sortedHashes returns the stored hashes in deterministic order (for
// seeded fault injection).
func (s *Store) sortedHashes() []Hash {
	hs := make([]Hash, 0, len(s.frames))
	for h := range s.frames {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool {
		for k := range hs[i] {
			if hs[i][k] != hs[j][k] {
				return hs[i][k] < hs[j][k]
			}
		}
		return false
	})
	return hs
}

// CorruptFramePick flips a byte inside a stored frame chosen by pick
// (a seeded rand.Intn) and returns an undo. Chaos-injection surface:
// Verify must report the corruption.
func (s *Store) CorruptFramePick(pick func(n int) int) (func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.frames) == 0 {
		return nil, fmt.Errorf("fork: no stored frames to corrupt")
	}
	hs := s.sortedHashes()
	h := hs[pick(len(hs))]
	e := s.frames[h]
	off := pick(hw.PageSize)
	e.data[off] ^= 0x40
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if e2, ok := s.frames[h]; ok && e2 == e {
			e2.data[off] ^= 0x40
		}
	}, nil
}

// LeakRefPick takes an extra, unowned reference on a frame chosen by
// pick and returns an undo that releases it. Chaos-injection surface:
// the refcount audit must report the imbalance.
func (s *Store) LeakRefPick(pick func(n int) int) (func(), error) {
	s.mu.Lock()
	if len(s.frames) == 0 {
		s.mu.Unlock()
		return nil, fmt.Errorf("fork: no stored frames to leak a ref on")
	}
	hs := s.sortedHashes()
	h := hs[pick(len(hs))]
	s.frames[h].refs++
	s.mu.Unlock()
	return func() {
		// Best-effort: the frame may already have been released to zero
		// by its owners, in which case the leaked ref kept it alive.
		_ = s.Release(h)
	}, nil
}

// RefHolder is anything that owns store references and can report how
// many it currently holds (BaseImage, CloneState, Overlay).
type RefHolder interface {
	LiveRefs() int
}

// AuditRefs compares the store's outstanding references against the sum
// owned by the given holders. A mismatch is a refcount leak (or a
// double release) — the invariant every fork/rollback/destroy path must
// preserve.
func AuditRefs(s *Store, holders ...RefHolder) error {
	var want int64
	for _, h := range holders {
		want += int64(h.LiveRefs())
	}
	got := s.Refs()
	if got != want {
		return fmt.Errorf("fork: refcount leak: store holds %d refs, live owners account for %d", got, want)
	}
	return nil
}
