package fork

import (
	"bytes"
	"testing"

	"repro/internal/hw"
	"repro/internal/migrate"
	"repro/internal/xen"
)

// env builds an active VMM with a privileged dom0 and an origin guest
// holding a recognizable pattern plus a tiny pinned page-table tree, so
// clones exercise relocation and re-pinning.
func env(t *testing.T) (*xen.VMM, *xen.Domain, *xen.Domain, *hw.CPU) {
	t.Helper()
	m := hw.NewMachine(hw.Config{MemBytes: 32 << 20, NumCPUs: 1})
	v, err := xen.Boot(m)
	if err != nil {
		t.Fatal(err)
	}
	c := m.BootCPU()
	v.Activate(c)
	dom0, err := v.CreateDomain("dom0", 1024, true)
	if err != nil {
		t.Fatal(err)
	}
	origin, err := v.CreateDomain("origin", 256, false)
	if err != nil {
		t.Fatal(err)
	}
	v.SetCurrent(c, dom0)

	lo, _ := origin.Frames.Range()
	for i := 0; i < 64; i++ {
		v.M.Mem.WriteWord((lo + hw.PFN(i)).Addr(), 0xAB00_0000|uint32(i))
	}
	root, pt, data := lo+100, lo+101, lo+5
	hw.WritePTE(v.M.Mem, root, 3, hw.MakePTE(pt, hw.PTEPresent|hw.PTEWrite))
	hw.WritePTE(v.M.Mem, pt, 7, hw.MakePTE(data, hw.PTEPresent|hw.PTEWrite|hw.PTEUser))
	origin.VCPU0().SetCR3(root)
	return v, dom0, origin, c
}

// warmBase checkpoints the origin and ingests it into a fresh store.
func warmBase(t *testing.T, v *xen.VMM, dom0, origin *xen.Domain, c *hw.CPU) *CloneBase {
	t.Helper()
	img, err := migrate.Checkpoint(c, v, dom0, origin)
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := origin.Frames.Range()
	img.PinnedRoots = []hw.PFN{lo + 100}
	store := NewStore()
	base, err := NewBase(store, img)
	if err != nil {
		t.Fatal(err)
	}
	return &CloneBase{Store: store, Img: base}
}

func TestStoreDedupAndRefcounts(t *testing.T) {
	s := NewStore()
	page := make([]byte, hw.PageSize)
	page[17] = 9
	h1, err := s.Put(page)
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := s.Put(page) // identical content: dedups, adds a ref
	if h1 != h2 {
		t.Fatal("same content hashed differently")
	}
	if s.Frames() != 1 || s.Refs() != 2 {
		t.Fatalf("frames=%d refs=%d, want 1/2", s.Frames(), s.Refs())
	}
	if got := s.DedupRatio(); got != 2 {
		t.Fatalf("dedup ratio = %v, want 2", got)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(h1); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(h1); err != nil {
		t.Fatal(err)
	}
	if s.Frames() != 0 {
		t.Fatal("frame survived last release")
	}
	if err := s.Release(h1); err == nil {
		t.Fatal("release of absent frame must error")
	}
	if _, err := s.Put(page[:100]); err == nil {
		t.Fatal("short Put must error")
	}
}

func TestCloneSharesFramesAndPromotesOnWrite(t *testing.T) {
	v, dom0, origin, c := env(t)
	cb := warmBase(t, v, dom0, origin, c)
	base := cb.Img

	start := c.Now()
	cs, err := Clone(c, v, dom0, cb, "clone-a")
	if err != nil {
		t.Fatal(err)
	}
	cloneCyc := c.Now() - start
	// The fork must cost mappings, not copies: well under one PageCopy
	// per frame (a flat restore of 60+ frames costs >54k cycles).
	if budget := hw.Cycles(len(base.Refs)) * v.M.Costs.PageCopy / 2; cloneCyc > budget {
		t.Fatalf("clone cost %d cycles, want < %d (copy-dominated)", cloneCyc, budget)
	}

	// Relocation promoted exactly the two table frames.
	if cs.PromotedCount() != 2 {
		t.Fatalf("promoted %d frames at clone time, want 2 (root+pt)", cs.PromotedCount())
	}
	if want := len(base.Refs) - 2; cs.SharedCount() != want {
		t.Fatalf("shared %d frames, want %d", cs.SharedCount(), want)
	}

	// Clone reads see base content through the shared mappings.
	lo, _ := origin.Frames.Range()
	for i := 0; i < 64; i++ {
		if got := v.M.Mem.ReadWord((cs.Lo + hw.PFN(i)).Addr()); got != 0xAB00_0000|uint32(i) {
			t.Fatalf("clone frame %d reads %#x", i, got)
		}
	}
	// The relocated tree walks inside the clone partition.
	newRoot := hw.PFN(int64(lo+100) + cs.Delta)
	if cs.D.VCPU0().CR3() != newRoot {
		t.Fatalf("clone CR3 = %d, want %d", cs.D.VCPU0().CR3(), newRoot)
	}
	if !cs.D.HasPinned(newRoot) {
		t.Fatal("relocated root not pinned on clone")
	}
	w, ok := hw.Walk(v.M.Mem, newRoot, hw.VirtAddr(3<<hw.PDShift|7<<hw.PageShift))
	if !ok {
		t.Fatal("relocated tree does not walk")
	}
	if got := w.PTE.Frame(); got != hw.PFN(int64(lo+5)+cs.Delta) {
		t.Fatalf("relocated leaf points at %d", got)
	}

	// A write promotes one frame and releases its store reference; the
	// base keeps serving the original content.
	sharedBefore, refsBefore := cs.SharedCount(), cb.Store.Refs()
	v.M.Mem.WriteWord(cs.Lo.Addr(), 0xDEAD)
	if cs.SharedCount() != sharedBefore-1 {
		t.Fatal("write did not promote the frame")
	}
	if cb.Store.Refs() != refsBefore-1 {
		t.Fatal("promotion did not release the store reference")
	}
	if got := v.M.Mem.ReadWord(lo.Addr()); got != 0xAB00_0000 {
		t.Fatalf("origin frame disturbed by clone write: %#x", got)
	}
	if err := AuditRefs(cb.Store, base, cs); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointDeltaStoresOnlyDirt(t *testing.T) {
	v, dom0, origin, c := env(t)
	cb := warmBase(t, v, dom0, origin, c)

	cs, err := Clone(c, v, dom0, cb, "clone-b")
	if err != nil {
		t.Fatal(err)
	}
	// Dirty 5 data frames; rewrite a 6th back to its base content (a
	// promoted-but-unchanged frame must not enter the delta).
	for i := 0; i < 5; i++ {
		v.M.Mem.WriteWord((cs.Lo + hw.PFN(10+i)).Addr(), 0xC10E_0000|uint32(i))
	}
	v.M.Mem.WriteWord((cs.Lo + 20).Addr(), 0xAB00_0000|20)

	o, err := CheckpointDelta(c, v, dom0, cs)
	if err != nil {
		t.Fatal(err)
	}
	// Delta = 5 dirtied + 2 relocated table frames; the written-back
	// frame and every still-shared frame cost nothing.
	if o.DeltaFrames() != 7 {
		t.Fatalf("delta holds %d frames, want 7", o.DeltaFrames())
	}
	if err := AuditRefs(cb.Store, cb.Img, cs, o); err != nil {
		t.Fatal(err)
	}

	// Flattening the overlay reproduces exactly what a full checkpoint
	// of the clone sees.
	full, err := migrate.Checkpoint(c, v, dom0, cs.D)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := o.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Pages) != len(full.Pages) {
		t.Fatalf("flatten has %d pages, full checkpoint %d", len(flat.Pages), len(full.Pages))
	}
	for pfn, data := range full.Pages {
		if !bytes.Equal(flat.Pages[pfn], data) {
			t.Fatalf("flattened frame %d diverges from live clone", pfn)
		}
	}
	if flat.CR3 != full.CR3 || flat.VIF != full.VIF {
		t.Fatal("flattened vcpu state diverges")
	}
}

func TestUnmodifiedCloneKeepsBaseIdentity(t *testing.T) {
	v1, dom01, origin, c1 := env(t)
	cb := warmBase(t, v1, dom01, origin, c1)

	// A second machine with the identical partition layout: the clone
	// lands at zero displacement, so nothing — not even the page-table
	// frames — is promoted.
	m2 := hw.NewMachine(hw.Config{MemBytes: 32 << 20, NumCPUs: 1})
	v2, err := xen.Boot(m2)
	if err != nil {
		t.Fatal(err)
	}
	c2 := m2.BootCPU()
	v2.Activate(c2)
	dom02, err := v2.CreateDomain("dom0", 1024, true)
	if err != nil {
		t.Fatal(err)
	}
	v2.SetCurrent(c2, dom02)

	cs, err := Clone(c2, v2, dom02, cb, "clone-zero")
	if err != nil {
		t.Fatal(err)
	}
	if cs.Delta != 0 {
		t.Fatalf("clone displaced by %d frames; layout mismatch", cs.Delta)
	}
	if cs.PromotedCount() != 0 {
		t.Fatalf("%d frames promoted on an untouched zero-delta clone", cs.PromotedCount())
	}

	o, err := CheckpointDelta(c2, v2, dom02, cs)
	if err != nil {
		t.Fatal(err)
	}
	if o.DeltaFrames() != 0 {
		t.Fatalf("untouched clone produced a %d-frame delta", o.DeltaFrames())
	}
	if o.IdentityHash() != cb.Img.IdentityHash() {
		t.Fatal("unmodified clone's identity diverged from its base")
	}

	// Re-ingesting the flattened clone stores zero new frames and
	// yields the same identity — the store hash of a restored-then-
	// recheckpointed unmodified clone equals its base's.
	framesBefore := cb.Store.Frames()
	flat, err := o.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	base2, err := NewBase(cb.Store, flat)
	if err != nil {
		t.Fatal(err)
	}
	if cb.Store.Frames() != framesBefore {
		t.Fatalf("re-ingest grew the store from %d to %d frames", framesBefore, cb.Store.Frames())
	}
	if base2.IdentityHash() != cb.Img.IdentityHash() {
		t.Fatal("re-ingested clone image has a different identity hash")
	}
	if err := AuditRefs(cb.Store, cb.Img, cs, o, base2); err != nil {
		t.Fatal(err)
	}
}

func TestCloneRollbackOnPinFailureReleasesEverything(t *testing.T) {
	v, dom0, origin, c := env(t)
	cb := warmBase(t, v, dom0, origin, c)
	refs0 := cb.Store.Refs()
	doms0 := len(v.Domains)

	v.InjectPinFailures(1)
	if _, err := Clone(c, v, dom0, cb, "doomed"); err == nil {
		t.Fatal("clone must fail when pinning fails")
	}
	if got := cb.Store.Refs(); got != refs0 {
		t.Fatalf("rollback leaked refs: %d, want %d", got, refs0)
	}
	if v.M.Mem.SharedFrames() != 0 {
		t.Fatalf("%d CoW mappings survived rollback", v.M.Mem.SharedFrames())
	}
	if len(v.Domains) != doms0 {
		t.Fatal("aborted clone domain survived rollback")
	}
	if err := AuditRefs(cb.Store, cb.Img); err != nil {
		t.Fatal(err)
	}

	// The base is intact: a retry succeeds.
	cs, err := Clone(c, v, dom0, cb, "retry")
	if err != nil {
		t.Fatalf("retry after rollback: %v", err)
	}
	if err := AuditRefs(cb.Store, cb.Img, cs); err != nil {
		t.Fatal(err)
	}
}

func TestDestroyCloneAndReleaseDrainStore(t *testing.T) {
	v, dom0, origin, c := env(t)
	cb := warmBase(t, v, dom0, origin, c)

	cs, err := Clone(c, v, dom0, cb, "short-lived")
	if err != nil {
		t.Fatal(err)
	}
	v.M.Mem.WriteWord(cs.Lo.Addr(), 0xBEEF) // promote one frame
	o, err := CheckpointDelta(c, v, dom0, cs)
	if err != nil {
		t.Fatal(err)
	}
	if err := DestroyClone(c, v, dom0, cs); err != nil {
		t.Fatal(err)
	}
	if err := DestroyClone(c, v, dom0, cs); err == nil {
		t.Fatal("double destroy must error")
	}
	if v.M.Mem.SharedFrames() != 0 {
		t.Fatal("CoW mappings survived destroy")
	}
	if err := AuditRefs(cb.Store, cb.Img, o); err != nil {
		t.Fatal(err)
	}
	if err := o.Release(); err != nil {
		t.Fatal(err)
	}
	if err := cb.Img.Release(); err != nil {
		t.Fatal(err)
	}
	if cb.Store.Frames() != 0 || cb.Store.Refs() != 0 {
		t.Fatalf("store not drained: %d frames, %d refs", cb.Store.Frames(), cb.Store.Refs())
	}
}

func TestManyClonesDedupAgainstOneBase(t *testing.T) {
	v, dom0, origin, c := env(t)
	cb := warmBase(t, v, dom0, origin, c)
	framesAfterBase := cb.Store.Frames()

	var clones []*CloneState
	for i := 0; i < 8; i++ {
		cs, err := Clone(c, v, dom0, cb, "fleet")
		if err != nil {
			t.Fatal(err)
		}
		clones = append(clones, cs)
	}
	// Eight clones added zero frames to the store.
	if cb.Store.Frames() != framesAfterBase {
		t.Fatalf("cloning grew the store to %d frames (base %d)", cb.Store.Frames(), framesAfterBase)
	}
	holders := []RefHolder{cb.Img}
	for _, cs := range clones {
		holders = append(holders, cs)
	}
	if err := AuditRefs(cb.Store, holders...); err != nil {
		t.Fatal(err)
	}
	for _, cs := range clones {
		if err := DestroyClone(c, v, dom0, cs); err != nil {
			t.Fatal(err)
		}
	}
	if err := AuditRefs(cb.Store, cb.Img); err != nil {
		t.Fatal(err)
	}
}
