// Package fork implements content-addressed domain forking over a
// shared snapshot cache.
//
// A checkpoint image (migrate.DomainImage) is ingested into a Store —
// frame content keyed by sha256, refcounted, deduplicated across every
// image — producing a BaseImage: metadata plus one FrameRef per
// non-zero frame. Clone spawns a domain from a base by mapping every
// base frame copy-on-write onto the store's pages (hw.MapShared), so a
// fork costs one mapping charge per frame instead of one page copy:
// the first write to a frame promotes it to a private copy and drops
// the clone's store reference. CheckpointDelta captures only the
// frames that diverged from the base, yielding an Overlay whose
// storage is proportional to the dirt, not the image.
//
// Identity is positional-content based: IdentityHash folds the
// partition span, vcpu offsets, pinned-root offsets, and every
// (offset, content-hash) pair into one digest, independent of the
// partition's absolute placement and the domain's name. An unmodified
// clone restored at zero displacement has exactly its base's identity;
// at non-zero displacement the relocated page-table frames are real
// divergence and appear in the delta.
//
// Reference discipline: a BaseImage owns one reference per Refs entry,
// a clone one per live CoW mapping, an Overlay one per Dirty entry.
// Every path — promotion, clone abort/rollback, destroy, overlay
// release — must keep Store.Refs equal to the sum over live owners;
// AuditRefs checks the invariant and the chaos campaign's
// refcount-leak detector enforces it under fault injection.
package fork
