package fork

import (
	"fmt"
	"sync"

	"repro/internal/hw"
	"repro/internal/migrate"
	"repro/internal/xen"
)

// CloneState tracks one forked domain: which of its frames are still
// copy-on-write mapped onto the snapshot cache (the clone owns one
// store reference per live mapping) and how many have been promoted to
// private copies by writes.
type CloneState struct {
	Base *CloneBase
	V    *xen.VMM
	D    *xen.Domain

	// Lo is the clone's partition base; Delta its displacement from the
	// base image's partition.
	Lo    hw.PFN
	Delta int64

	mu        sync.Mutex
	shared    map[hw.PFN]Hash // CoW-mapped frames → content hash
	promoted  int
	destroyed bool
}

// CloneBase pairs the template image with the store it lives in — what
// Clone needs to spawn domains from it.
type CloneBase struct {
	Store *Store
	Img   *BaseImage
}

// SharedCount returns the number of frames still CoW-mapped.
func (cs *CloneState) SharedCount() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.shared)
}

// PromotedCount returns the number of frames privatized by writes.
func (cs *CloneState) PromotedCount() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.promoted
}

// LiveRefs reports the store references the clone currently owns (one
// per live CoW mapping).
func (cs *CloneState) LiveRefs() int { return cs.SharedCount() }

// onPromote is the hw promotion hook: the frame went private, so the
// clone's reference on the shared content is dropped.
func (cs *CloneState) onPromote(pfn hw.PFN) {
	cs.mu.Lock()
	h, ok := cs.shared[pfn]
	if ok {
		delete(cs.shared, pfn)
		cs.promoted++
	}
	cs.mu.Unlock()
	if ok {
		// A release here cannot fail: the mapping held the reference.
		_ = cs.Base.Store.Release(h)
	}
}

// abort releases everything the clone holds: live CoW mappings (and
// their store references) and the domain itself. Idempotent.
func (cs *CloneState) abort() error {
	cs.mu.Lock()
	if cs.destroyed {
		cs.mu.Unlock()
		return nil
	}
	cs.destroyed = true
	shared := cs.shared
	cs.shared = nil
	cs.mu.Unlock()
	var firstErr error
	for pfn, h := range shared {
		cs.V.M.Mem.UnmapShared(pfn)
		if err := cs.Base.Store.Release(h); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := cs.V.DestroyDomain(cs.D.ID); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Clone spawns a new domain from a warmed base image at the cost of the
// dirtied frames, not the image size: every non-zero frame is mapped
// copy-on-write onto the shared snapshot cache (one CoWMapPerFrame
// charge each — no page copies), the page-table tree is relocated to
// the clone's partition (promoting exactly the table frames when the
// displacement is non-zero), the roots are re-pinned, and the vcpu
// state is installed. All side effects ride a migrate.Txn: on any
// failure the pins are undone, the mappings unmapped, the store
// references released, and the domain destroyed.
func Clone(c *hw.CPU, v *xen.VMM, caller *xen.Domain, base *CloneBase, name string) (*CloneState, error) {
	if !v.Active {
		return nil, fmt.Errorf("fork: clone requires an active VMM")
	}
	img := base.Img
	if img.LiveRefs() == 0 && len(img.Refs) > 0 {
		return nil, fmt.Errorf("fork: clone from released base %q", img.Name)
	}
	d, err := v.CreateDomain(name, img.Span(), img.Privileged)
	if err != nil {
		return nil, fmt.Errorf("fork: creating clone domain: %w", err)
	}
	lo, _ := d.Frames.Range()
	cs := &CloneState{
		Base: base, V: v, D: d,
		Lo: lo, Delta: int64(lo) - int64(img.Lo),
		shared: make(map[hw.PFN]Hash, len(img.Refs)),
	}
	txn := migrate.BeginTxn("fork " + name)
	txn.Journal("clone-teardown", cs.abort)
	fail := func(err error) (*CloneState, error) {
		if rerr := txn.Rollback(); rerr != nil {
			err = fmt.Errorf("%w (rollback: %v)", err, rerr)
		}
		return nil, err
	}
	if err := v.HypDomctlPause(c, caller, d.ID); err != nil {
		return fail(fmt.Errorf("fork: pausing fresh clone: %w", err))
	}
	// Map every base frame copy-on-write: the clone reads the shared
	// cache page until its first write promotes the frame.
	mem := v.M.Mem
	for _, r := range img.Refs {
		data, err := base.Store.Get(r.H)
		if err != nil {
			return fail(fmt.Errorf("fork: base frame missing from store: %w", err))
		}
		if err := base.Store.Retain(r.H); err != nil {
			return fail(err)
		}
		tgt := lo + hw.PFN(r.Off)
		cs.mu.Lock()
		cs.shared[tgt] = r.H
		cs.mu.Unlock()
		if err := mem.MapShared(tgt, data, cs.onPromote); err != nil {
			return fail(fmt.Errorf("fork: mapping frame %d: %w", tgt, err))
		}
		c.Charge(v.M.Costs.CoWMapPerFrame)
	}
	// Relocate the page-table tree to the clone's partition. The PTE
	// writes promote exactly the table frames — the only copies a fork
	// pays for when nothing else is dirtied.
	if cs.Delta != 0 {
		migrate.RelocateTables(c, mem, img.PinnedRoots, cs.Delta)
	}
	if err := migrate.RepinRoots(c, txn, v, d, img.PinnedRoots, cs.Delta); err != nil {
		return fail(fmt.Errorf("fork: clone aborted: %w", err))
	}
	d.VCPU0().SetCR3(hw.PFN(int64(img.CR3) + cs.Delta))
	d.VCPU0().SetVIF(img.VIF)
	if err := v.HypDomctlUnpause(c, caller, d.ID); err != nil {
		return fail(fmt.Errorf("fork: resuming clone: %w", err))
	}
	txn.Commit()
	return cs, nil
}

// CheckpointDelta pauses a forked domain and captures only its
// divergence from the base: frames still CoW-mapped are skipped
// outright (they cannot have changed), promoted frames are hashed and
// stored only if their content differs from the base's frame at the
// same offset (a frame rewritten back to base content, or still zero,
// costs nothing). The result is an Overlay owning one store reference
// per diverged frame.
func CheckpointDelta(c *hw.CPU, v *xen.VMM, caller *xen.Domain, cs *CloneState) (*Overlay, error) {
	if cs.destroyed {
		return nil, fmt.Errorf("fork: checkpoint of destroyed clone")
	}
	if err := v.HypDomctlPause(c, caller, cs.D.ID); err != nil {
		return nil, err
	}
	img := cs.Base.Img
	o := &Overlay{
		store: cs.Base.Store,
		Base:  img,
		Name:  cs.D.Name,
		Lo:    cs.Lo, Hi: cs.Lo + img.Span(),
		CR3: cs.D.VCPU0().CR3(), VIF: cs.D.VCPU0().VIF(),
		PinnedRoots: cs.D.PinnedRoots(),
	}
	mem := v.M.Mem
	hashCost := v.M.Costs.PageCopy / 4
	for pfn := o.Lo; pfn < o.Hi; pfn++ {
		if mem.SharedAt(pfn) {
			continue // still backed by the cache: unchanged by construction
		}
		data := mem.FrameBytesRO(pfn)
		c.Charge(hashCost)
		h := HashFrame(data)
		off := uint32(pfn - o.Lo)
		if baseH, ok := img.HashAt(off); ok {
			if h == baseH {
				continue // promoted, then written back to base content
			}
		} else if h == zeroHash {
			continue // never materialized, or scrubbed back to zero
		}
		sh, err := cs.Base.Store.Put(data)
		if err != nil {
			_ = o.Release()
			_ = v.HypDomctlUnpause(c, caller, cs.D.ID)
			return nil, err
		}
		c.Charge(v.M.Costs.PageCopy)
		o.Dirty = append(o.Dirty, FrameRef{Off: off, H: sh})
	}
	if err := v.HypDomctlUnpause(c, caller, cs.D.ID); err != nil {
		// Mirror Checkpoint: the delta is complete and consistent —
		// return it alongside the resume failure.
		return o, fmt.Errorf("fork: delta checkpoint complete but resume failed: %w", err)
	}
	return o, nil
}

// DestroyClone unpins the clone's roots, tears the domain down, and
// releases every store reference the clone still holds.
func DestroyClone(c *hw.CPU, v *xen.VMM, caller *xen.Domain, cs *CloneState) error {
	if cs.destroyed {
		return fmt.Errorf("fork: double destroy of clone dom%d", cs.D.ID)
	}
	var firstErr error
	for _, root := range cs.Base.Img.PinnedRoots {
		nr := hw.PFN(int64(root) + cs.Delta)
		if cs.D.HasPinned(nr) {
			if err := v.HypUnpinTable(c, cs.D, nr); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if err := cs.abort(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
