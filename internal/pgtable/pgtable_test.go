package pgtable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hw"
)

func testEnv() (*hw.PhysMem, *hw.FrameAllocator) {
	mem := hw.NewPhysMem(16 << 20)
	return mem, hw.NewFrameAllocator(1, mem.NumFrames())
}

func TestMapLookupUnmap(t *testing.T) {
	mem, alloc := testEnv()
	tb, err := New(mem, alloc.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	wr := DirectWriter(mem)
	va := hw.VirtAddr(0x0800_3000)
	data := alloc.Alloc()

	if err := tb.Map(va, data, hw.PTEWrite|hw.PTEUser, alloc.Alloc, wr); err != nil {
		t.Fatal(err)
	}
	pte, ok := tb.Lookup(va)
	if !ok || pte.Frame() != data || !pte.Writable() {
		t.Fatalf("lookup = %#x, %v", uint32(pte), ok)
	}
	old, ok := tb.Unmap(va, wr)
	if !ok || old.Frame() != data {
		t.Fatal("unmap did not return old entry")
	}
	if _, ok := tb.Lookup(va); ok {
		t.Fatal("entry survives unmap")
	}
}

func TestSlotForCreatesIntermediate(t *testing.T) {
	mem, alloc := testEnv()
	tb, _ := New(mem, alloc.Alloc)
	wr := DirectWriter(mem)
	before := alloc.InUse()
	s, err := tb.SlotFor(0x4000_0000, alloc.Alloc, wr)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.InUse() != before+1 {
		t.Fatal("intermediate table not allocated")
	}
	// Second call reuses the table.
	s2, _ := tb.SlotFor(0x4000_1000, alloc.Alloc, wr)
	if s2.Table != s.Table {
		t.Fatal("second slot allocated a new table")
	}
}

func TestVisitOrderAndCount(t *testing.T) {
	mem, alloc := testEnv()
	tb, _ := New(mem, alloc.Alloc)
	wr := DirectWriter(mem)
	vas := []hw.VirtAddr{0x0800_0000, 0x0800_5000, 0x4000_0000, 0xB000_0000}
	for _, va := range vas {
		if err := tb.Map(va, alloc.Alloc(), hw.PTEUser, alloc.Alloc, wr); err != nil {
			t.Fatal(err)
		}
	}
	var seen []hw.VirtAddr
	tb.Visit(func(m Mapping) bool {
		seen = append(seen, m.VA)
		return true
	})
	if len(seen) != len(vas) {
		t.Fatalf("visited %d, want %d", len(seen), len(vas))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatal("visit out of address order")
		}
	}
	if tb.CountMappings() != len(vas) {
		t.Fatalf("CountMappings = %d", tb.CountMappings())
	}
}

func TestTableFrames(t *testing.T) {
	mem, alloc := testEnv()
	tb, _ := New(mem, alloc.Alloc)
	wr := DirectWriter(mem)
	tb.Map(0x0800_0000, alloc.Alloc(), 0, alloc.Alloc, wr)
	tb.Map(0x4000_0000, alloc.Alloc(), 0, alloc.Alloc, wr)
	frames := tb.TableFrames()
	if len(frames) != 3 { // root + 2 PTs
		t.Fatalf("TableFrames = %d, want 3", len(frames))
	}
	if frames[0] != tb.Root {
		t.Fatal("root not first")
	}
}

func TestCloneAppliesTransform(t *testing.T) {
	mem, alloc := testEnv()
	tb, _ := New(mem, alloc.Alloc)
	wr := DirectWriter(mem)
	va := hw.VirtAddr(0x0800_0000)
	tb.Map(va, alloc.Alloc(), hw.PTEWrite|hw.PTEUser, alloc.Alloc, wr)

	cl, err := tb.Clone(alloc.Alloc, func(e hw.PTE) hw.PTE {
		return e.WithFlags(e.Flags()&^hw.PTEWrite | hw.PTECow)
	})
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := tb.Lookup(va)
	cp, ok := cl.Lookup(va)
	if !ok || cp.Frame() != orig.Frame() {
		t.Fatal("clone lost mapping")
	}
	if cp.Writable() || !cp.Cow() {
		t.Fatal("transform not applied")
	}
	if orig.Cow() {
		t.Fatal("original mutated")
	}
}

func TestFreeReturnsTables(t *testing.T) {
	mem, alloc := testEnv()
	tb, _ := New(mem, alloc.Alloc)
	wr := DirectWriter(mem)
	tb.Map(0x0800_0000, alloc.Alloc(), 0, alloc.Alloc, wr)
	used := alloc.InUse()
	freed := 0
	tb.Free(func(pfn hw.PFN) { freed++; alloc.Free(pfn) })
	if freed != 2 { // root + 1 PT
		t.Fatalf("freed %d table frames", freed)
	}
	if alloc.InUse() != used-2 {
		t.Fatal("allocator accounting off")
	}
}

// Property: after a random map/unmap sequence, the hardware walker
// agrees with a shadow map for every page.
func TestRandomOpsWalkerAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mem, alloc := testEnv()
		tb, _ := New(mem, alloc.Alloc)
		wr := DirectWriter(mem)
		shadow := make(map[hw.VirtAddr]hw.PFN)
		for op := 0; op < 200; op++ {
			va := hw.VirtAddr(rng.Intn(64)) << hw.PageShift
			va += hw.VirtAddr(rng.Intn(4)) << hw.PDShift
			if rng.Intn(3) == 0 {
				tb.Unmap(va, wr)
				delete(shadow, va)
			} else {
				pfn := hw.PFN(1000 + rng.Intn(500))
				if err := tb.Map(va, pfn, hw.PTEUser, alloc.Alloc, wr); err != nil {
					return false
				}
				shadow[va] = pfn
			}
		}
		// Full agreement check via the hardware walker.
		count := 0
		tb.Visit(func(m Mapping) bool {
			count++
			want, ok := shadow[m.VA]
			return ok && want == m.PTE.Frame()
		})
		if count != len(shadow) {
			return false
		}
		for va, want := range shadow {
			w, ok := hw.Walk(mem, tb.Root, va)
			if !ok || w.PTE.Frame() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
