// Package pgtable manages two-level page-table trees in simulated
// physical memory. It is shared by the guest kernel (which builds address
// spaces) and the VMM (which validates and pins the same trees in direct
// paging mode, §3.2.2). The package never decides *how* an entry store is
// performed — callers supply a WriteFn, which the guest binds to its
// current virtualization object so stores are direct in native mode and
// hypercalls in virtual mode.
package pgtable
