package pgtable

import (
	"fmt"

	"repro/internal/hw"
)

// WriteFn stores a page-table entry. The guest kernel passes its
// virtualization object's sensitive-memory operation here.
type WriteFn func(table hw.PFN, idx int, e hw.PTE)

// AllocFn allocates a frame for a new page-table page.
type AllocFn func() hw.PFN

// DirectWriter returns a WriteFn that stores entries straight into
// physical memory — what a native kernel (PL0) is allowed to do.
func DirectWriter(mem *hw.PhysMem) WriteFn {
	return func(table hw.PFN, idx int, e hw.PTE) {
		hw.WritePTE(mem, table, idx, e)
	}
}

// Tables is one page-table tree rooted at Root.
type Tables struct {
	Mem  *hw.PhysMem
	Root hw.PFN
}

// New allocates an empty tree.
func New(mem *hw.PhysMem, alloc AllocFn) (*Tables, error) {
	root := alloc()
	if root == hw.NoPFN {
		return nil, fmt.Errorf("pgtable: out of frames for root")
	}
	mem.ZeroFrame(root)
	return &Tables{Mem: mem, Root: root}, nil
}

// Attach wraps an existing tree (e.g., after restoring a checkpoint).
func Attach(mem *hw.PhysMem, root hw.PFN) *Tables {
	return &Tables{Mem: mem, Root: root}
}

// Lookup returns the leaf entry for va.
func (t *Tables) Lookup(va hw.VirtAddr) (hw.PTE, bool) {
	w, ok := hw.Walk(t.Mem, t.Root, va)
	if !ok {
		return w.PTE, false
	}
	return w.PTE, true
}

// Slot describes where a leaf entry lives.
type Slot struct {
	Table hw.PFN
	Index int
}

// SlotFor returns the slot for va, creating the intermediate table with
// alloc/write if needed. The new page-directory entry is stored through
// write so it is validated in virtual mode like any other sensitive store.
func (t *Tables) SlotFor(va hw.VirtAddr, alloc AllocFn, write WriteFn) (Slot, error) {
	pde := hw.ReadPTE(t.Mem, t.Root, hw.PDIndex(va))
	if !pde.Present() {
		pt := alloc()
		if pt == hw.NoPFN {
			return Slot{}, fmt.Errorf("pgtable: out of frames for page table")
		}
		t.Mem.ZeroFrame(pt)
		flags := hw.PTEPresent | hw.PTEWrite
		if va < hw.KernelBase {
			flags |= hw.PTEUser
		}
		write(t.Root, hw.PDIndex(va), hw.MakePTE(pt, flags))
		pde = hw.ReadPTE(t.Mem, t.Root, hw.PDIndex(va))
	}
	return Slot{Table: pde.Frame(), Index: hw.PTIndex(va)}, nil
}

// ExistingSlot returns the slot for va without creating tables.
func (t *Tables) ExistingSlot(va hw.VirtAddr) (Slot, bool) {
	pde := hw.ReadPTE(t.Mem, t.Root, hw.PDIndex(va))
	if !pde.Present() {
		return Slot{}, false
	}
	return Slot{Table: pde.Frame(), Index: hw.PTIndex(va)}, true
}

// Map installs a leaf mapping va -> pfn with flags.
func (t *Tables) Map(va hw.VirtAddr, pfn hw.PFN, flags uint32,
	alloc AllocFn, write WriteFn) error {
	s, err := t.SlotFor(va, alloc, write)
	if err != nil {
		return err
	}
	write(s.Table, s.Index, hw.MakePTE(pfn, flags|hw.PTEPresent))
	return nil
}

// Unmap clears the leaf mapping for va and returns the old entry.
func (t *Tables) Unmap(va hw.VirtAddr, write WriteFn) (hw.PTE, bool) {
	s, ok := t.ExistingSlot(va)
	if !ok {
		return 0, false
	}
	old := hw.ReadPTE(t.Mem, s.Table, s.Index)
	if !old.Present() {
		return old, false
	}
	write(s.Table, s.Index, 0)
	return old, true
}

// Mapping is one present leaf entry reported by Visit.
type Mapping struct {
	VA   hw.VirtAddr
	Slot Slot
	PTE  hw.PTE
}

// Visit calls fn for every present leaf mapping, in address order.
// Returning false stops the walk.
func (t *Tables) Visit(fn func(m Mapping) bool) {
	for pdi := 0; pdi < hw.PTEntries; pdi++ {
		pde := hw.ReadPTE(t.Mem, t.Root, pdi)
		if !pde.Present() {
			continue
		}
		pt := pde.Frame()
		for pti := 0; pti < hw.PTEntries; pti++ {
			pte := hw.ReadPTE(t.Mem, pt, pti)
			if !pte.Present() {
				continue
			}
			va := hw.VirtAddr(uint32(pdi)<<hw.PDShift | uint32(pti)<<hw.PageShift)
			if !fn(Mapping{VA: va, Slot: Slot{Table: pt, Index: pti}, PTE: pte}) {
				return
			}
		}
	}
}

// VisitRange is Visit restricted to [lo, hi).
func (t *Tables) VisitRange(lo, hi hw.VirtAddr, fn func(m Mapping) bool) {
	t.Visit(func(m Mapping) bool {
		if m.VA < lo || m.VA >= hi {
			return true
		}
		return fn(m)
	})
}

// TableFrames returns the root frame followed by every referenced
// page-table frame. The VMM pins exactly this set when the tree is
// installed in direct mode, and Mercury's recompute pass scans it.
func (t *Tables) TableFrames() []hw.PFN {
	out := []hw.PFN{t.Root}
	for pdi := 0; pdi < hw.PTEntries; pdi++ {
		pde := hw.ReadPTE(t.Mem, t.Root, pdi)
		if pde.Present() {
			out = append(out, pde.Frame())
		}
	}
	return out
}

// CountMappings returns the number of present leaf entries.
func (t *Tables) CountMappings() int {
	n := 0
	t.Visit(func(Mapping) bool { n++; return true })
	return n
}

// Clone copies the tree into newly allocated frames, applying xform to
// each leaf entry (fork uses this to apply copy-on-write downgrades).
// Writes into the fresh frames go straight to memory: the new tree is not
// yet live, so no validation applies until its root is installed.
func (t *Tables) Clone(alloc AllocFn, xform func(hw.PTE) hw.PTE) (*Tables, error) {
	nt, err := New(t.Mem, alloc)
	if err != nil {
		return nil, err
	}
	for pdi := 0; pdi < hw.PTEntries; pdi++ {
		pde := hw.ReadPTE(t.Mem, t.Root, pdi)
		if !pde.Present() {
			continue
		}
		np := alloc()
		if np == hw.NoPFN {
			return nil, fmt.Errorf("pgtable: out of frames cloning tree")
		}
		t.Mem.ZeroFrame(np)
		hw.WritePTE(t.Mem, nt.Root, pdi, hw.MakePTE(np, pde.Flags()))
		pt := pde.Frame()
		for pti := 0; pti < hw.PTEntries; pti++ {
			pte := hw.ReadPTE(t.Mem, pt, pti)
			if !pte.Present() {
				continue
			}
			hw.WritePTE(t.Mem, np, pti, xform(pte))
		}
	}
	return nt, nil
}

// Free releases every table frame (not the mapped data frames) to free.
func (t *Tables) Free(free func(hw.PFN)) {
	for pdi := 0; pdi < hw.PTEntries; pdi++ {
		pde := hw.ReadPTE(t.Mem, t.Root, pdi)
		if pde.Present() {
			free(pde.Frame())
		}
	}
	free(t.Root)
}
