package obs

import (
	"sync"
	"testing"
)

func TestSpanNestingAndParents(t *testing.T) {
	tr := NewTracer(1, 0)
	root := tr.Begin(0, 100, "switch/attach")
	child := tr.Begin(0, 110, "phase/frame-recompute")
	tr.Complete(0, 112, 118, "xen/hypercall", 7)
	child.End(130)
	root.EndArg(150, 0)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	r, c, hc := byName["switch/attach"], byName["phase/frame-recompute"], byName["xen/hypercall"]
	if r.Parent != 0 {
		t.Fatalf("root parent = %d", r.Parent)
	}
	if c.Parent != r.ID {
		t.Fatalf("child parent = %d, root id = %d", c.Parent, r.ID)
	}
	if hc.Parent != c.ID {
		t.Fatalf("hypercall parent = %d, phase id = %d", hc.Parent, c.ID)
	}
	if hc.Arg != 7 || hc.Dur() != 6 {
		t.Fatalf("hypercall span: %+v", hc)
	}
	if r.Dur() != 50 || c.Dur() != 20 {
		t.Fatalf("durations: root %d child %d", r.Dur(), c.Dur())
	}
}

func TestSpanEndClosesUnclosedChildren(t *testing.T) {
	// A rollback path bails out of a phase without unwinding spans one
	// by one: ending the root must close everything above it.
	tr := NewTracer(1, 0)
	root := tr.Begin(0, 10, "root")
	tr.Begin(0, 20, "orphan")
	root.EndArg(50, 1)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	for _, s := range spans {
		if s.End != 50 {
			t.Fatalf("%s end = %d", s.Name, s.End)
		}
		if s.Name == "orphan" && s.Arg != 0 {
			t.Fatalf("orphan inherited arg %d", s.Arg)
		}
		if s.Name == "root" && s.Arg != 1 {
			t.Fatalf("root arg = %d", s.Arg)
		}
	}
	// The stack is empty: a new span is top-level.
	next := tr.Begin(0, 60, "next")
	next.End(70)
	for _, s := range tr.Spans() {
		if s.Name == "next" && s.Parent != 0 {
			t.Fatalf("next parent = %d", s.Parent)
		}
	}
}

func TestSpanPerCPUStacksIndependent(t *testing.T) {
	tr := NewTracer(2, 0)
	a := tr.Begin(0, 10, "cpu0-root")
	b := tr.Begin(1, 12, "cpu1-root")
	// cpu1's root must not become a child of cpu0's.
	b.End(20)
	a.End(30)
	for _, s := range tr.Spans() {
		if s.Parent != 0 {
			t.Fatalf("%s has parent %d", s.Name, s.Parent)
		}
	}
}

func TestSpanInstant(t *testing.T) {
	tr := NewTracer(1, 0)
	root := tr.Begin(0, 5, "root")
	tr.Instant(0, 7, "event", 42)
	root.End(9)
	for _, s := range tr.Spans() {
		if s.Name == "event" {
			if s.Kind() != SpanInstant || s.Arg != 42 || s.Parent == 0 {
				t.Fatalf("instant span: %+v", s)
			}
		}
	}
}

func TestSpanRetentionBudget(t *testing.T) {
	tr := NewTracer(1, 3)
	for i := 0; i < 5; i++ {
		tr.Complete(0, uint64(i), uint64(i+1), "x", 0)
	}
	if n := len(tr.Spans()); n != 3 {
		t.Fatalf("retained %d spans", n)
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d", tr.Dropped())
	}
	tr.Reset()
	if len(tr.Spans()) != 0 || tr.Dropped() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestZeroSpanRefInert(t *testing.T) {
	var sp SpanRef
	if sp.Active() {
		t.Fatal("zero ref active")
	}
	sp.End(10) // must not panic
	sp.EndArg(10, 1)
	sp = Begin(nil, 0, 5, "x")
	sp.End(6)
}

func TestTracerParallelUse(t *testing.T) {
	tr := NewTracer(4, 0)
	var wg sync.WaitGroup
	for cpu := 0; cpu < 4; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Begin(cpu, uint64(i), "work")
				tr.Instant(cpu, uint64(i), "tick", uint64(i))
				sp.End(uint64(i + 1))
			}
		}(cpu)
	}
	wg.Wait()
	if n := len(tr.Spans()); n != 4*200*2 {
		t.Fatalf("got %d spans", n)
	}
}

// BenchmarkNilCollectorBegin measures the disabled path every hook
// compiles down to when no collector is installed: a nil check and an
// inert SpanRef.
func BenchmarkNilCollectorBegin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sp := Begin(nil, 0, uint64(i), "x")
		sp.End(uint64(i))
	}
}
