package obs

import (
	"strings"
	"testing"
)

func TestRegistryGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("xen", "hypercalls_total")
	b := r.Counter("xen", "hypercalls_total")
	if a != b {
		t.Fatal("same identity returned distinct counters")
	}
	a.Add(3)
	if b.Load() != 3 {
		t.Fatalf("shared counter = %d", b.Load())
	}
	// Label order is immaterial.
	x := r.Counter("vo", "calls_total", L("object", "native"), L("cpu", "0"))
	y := r.Counter("vo", "calls_total", L("cpu", "0"), L("object", "native"))
	if x != y {
		t.Fatal("label order changed identity")
	}
	// Different label values are different instruments.
	z := r.Counter("vo", "calls_total", L("cpu", "1"), L("object", "native"))
	if x == z {
		t.Fatal("distinct labels shared a counter")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("a", "x")
}

func TestRegisterCounterAdoptsExisting(t *testing.T) {
	r := NewRegistry()
	free := NewCounter()
	free.Add(7)
	got := r.RegisterCounter(free, "vo", "calls_total", L("object", "direct"))
	if got != free {
		t.Fatal("adoption returned a different counter")
	}
	// The registry now reads through the same object.
	free.Add(1)
	var seen uint64
	r.Each(func(m *Metric) {
		if m.Subsystem == "vo" {
			seen = m.counter.Load()
		}
	})
	if seen != 8 {
		t.Fatalf("registry sees %d, want 8", seen)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("migrate", "dirty_pages")
	g.Set(12)
	g.Add(-2)
	if g.Load() != 10 {
		t.Fatalf("gauge = %d", g.Load())
	}
}

func TestHistogramQuantilesAndBuckets(t *testing.T) {
	h := NewHistogram()
	// 100 observations in [1000, 2000): all land in bucket 11 ([1024,2048))
	// except values < 1024 which land in bucket 10.
	for i := 0; i < 100; i++ {
		h.Observe(uint64(1000 + i*10))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1990 {
		t.Fatalf("max = %d", h.Max())
	}
	if h.Mean() < 1400 || h.Mean() > 1600 {
		t.Fatalf("mean = %f", h.Mean())
	}
	// The p99 estimate must be within the bucket ladder's factor-of-two
	// resolution and clamped to the observed max.
	for _, q := range []float64{0.5, 0.95, 0.99} {
		est := h.Quantile(q)
		if est < 1000/2 || est > 1990 {
			t.Fatalf("q%.2f = %f out of range", q, est)
		}
	}
	uppers, cum := h.Buckets()
	if len(uppers) == 0 || len(uppers) != len(cum) {
		t.Fatalf("buckets: %v %v", uppers, cum)
	}
	if cum[len(cum)-1] != 100 {
		t.Fatalf("cumulative end = %d", cum[len(cum)-1])
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] || uppers[i] <= uppers[i-1] {
			t.Fatal("buckets not monotone")
		}
	}
}

func TestHistogramZeroAndEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
	h.Observe(0)
	if h.Quantile(0.5) != 0 {
		t.Fatalf("all-zero quantile = %f", h.Quantile(0.5))
	}
}

func TestHistogramMaxRace(t *testing.T) {
	h := NewHistogram()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				h.Observe(uint64(g*1000 + i))
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if h.Count() != 4000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 3999 {
		t.Fatalf("max = %d", h.Max())
	}
}

func TestPromExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("xen", "hypercalls_total").Add(5)
	r.Gauge("migrate", "dirty_pages").Set(3)
	r.Histogram("core", "attach_cycles").Observe(1500)
	var sb strings.Builder
	r.WriteProm(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE mercury_xen_hypercalls_total counter",
		"mercury_xen_hypercalls_total 5",
		"# TYPE mercury_migrate_dirty_pages gauge",
		"mercury_migrate_dirty_pages 3",
		"# TYPE mercury_core_attach_cycles histogram",
		`mercury_core_attach_cycles_bucket{le="+Inf"} 1`,
		"mercury_core_attach_cycles_sum 1500",
		"mercury_core_attach_cycles_count 1",
		`mercury_core_attach_cycles_quantile{q="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestJSONDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("xen", "hypercalls_total", L("dom", "0")).Add(2)
	r.Histogram("core", "attach_cycles").Observe(100)
	dump := r.Dump()
	if len(dump) != 2 {
		t.Fatalf("dump has %d entries", len(dump))
	}
	var sawCounter, sawHist bool
	for _, d := range dump {
		switch d.Kind {
		case "counter":
			sawCounter = true
			if d.Value != 2 || d.Labels["dom"] != "0" {
				t.Fatalf("counter dump: %+v", d)
			}
		case "histogram":
			sawHist = true
			if d.Histogram == nil || d.Histogram.Count != 1 {
				t.Fatalf("hist dump: %+v", d)
			}
		}
	}
	if !sawCounter || !sawHist {
		t.Fatal("dump missing kinds")
	}
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "hypercalls_total") {
		t.Fatal("json missing metric")
	}
}
