// Package obs is the unified telemetry layer: a simulated-TSC-native
// metrics registry (counters, gauges, log-scaled cycle histograms), a
// nested span tracer that decomposes mode switches and attributes
// hypercalls/fault bounces/ring hops to their enclosing spans, and
// exporters (Prometheus-style text, JSON dumps, Chrome trace_event
// JSON) all on the same cycle timebase.
//
// The package deliberately imports nothing from the rest of the repo:
// timestamps are raw cycle counts (hw.Cycles is an alias of uint64), so
// hw can hold a *Collector without an import cycle and every other
// layer reaches telemetry through its machine.
//
// Discipline: when no collector is installed, every instrumentation
// hook in the tree must cost exactly one atomic load (the same
// discipline as xen.TraceBuffer.Emit). Sites do
//
//	if col := m.Telemetry(); col != nil { ... }
//
// and the nil-safe helpers below (Begin, SpanRef.End) keep the
// disabled path allocation-free.
package obs
