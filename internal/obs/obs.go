package obs

// Collector bundles the metric registry, the span tracer, and the
// flight-recorder event log that one machine's (or one fleet's)
// instrumentation feeds.
type Collector struct {
	Registry *Registry
	Tracer   *Tracer
	Events   *EventLog
}

// New builds a collector for a machine with ncpu processors. The
// tracer's and event log's drop counts are adopted into the registry
// (obs/spans_dropped_total, obs/events_dropped_total) so every metrics
// export reports whether its traces are complete.
func New(ncpu int) *Collector {
	col := &Collector{
		Registry: NewRegistry(),
		Tracer:   NewTracer(ncpu, 0),
		Events:   NewEventLog(0),
	}
	col.Registry.RegisterCounter(col.Tracer.dropped, "obs", "spans_dropped_total")
	col.Registry.RegisterCounter(col.Events.dropped, "obs", "events_dropped_total")
	return col
}

// Begin opens a span on a possibly-nil collector; the zero SpanRef is
// returned (and every method on it is a no-op) when col is nil.
func Begin(col *Collector, cpu int, now uint64, name string) SpanRef {
	if col == nil {
		return SpanRef{}
	}
	return col.Tracer.Begin(cpu, now, name)
}

// RecordEvent appends a flight-recorder event on a possibly-nil
// collector (or one built by hand without an event log).
func RecordEvent(col *Collector, kind EventKind, node int32, ts, a, b uint64) {
	if col == nil || col.Events == nil {
		return
	}
	col.Events.Record(kind, node, ts, a, b)
}
