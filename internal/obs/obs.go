// Package obs is the unified telemetry layer: a simulated-TSC-native
// metrics registry (counters, gauges, log-scaled cycle histograms), a
// nested span tracer that decomposes mode switches and attributes
// hypercalls/fault bounces/ring hops to their enclosing spans, and
// exporters (Prometheus-style text, JSON dumps, Chrome trace_event
// JSON) all on the same cycle timebase.
//
// The package deliberately imports nothing from the rest of the repo:
// timestamps are raw cycle counts (hw.Cycles is an alias of uint64), so
// hw can hold a *Collector without an import cycle and every other
// layer reaches telemetry through its machine.
//
// Discipline: when no collector is installed, every instrumentation
// hook in the tree must cost exactly one atomic load (the same
// discipline as xen.TraceBuffer.Emit). Sites do
//
//	if col := m.Telemetry(); col != nil { ... }
//
// and the nil-safe helpers below (Begin, SpanRef.End) keep the
// disabled path allocation-free.
package obs

// Collector bundles the metric registry and the span tracer that one
// machine's instrumentation feeds.
type Collector struct {
	Registry *Registry
	Tracer   *Tracer
}

// New builds a collector for a machine with ncpu processors.
func New(ncpu int) *Collector {
	return &Collector{
		Registry: NewRegistry(),
		Tracer:   NewTracer(ncpu, 0),
	}
}

// Begin opens a span on a possibly-nil collector; the zero SpanRef is
// returned (and every method on it is a no-op) when col is nil.
func Begin(col *Collector, cpu int, now uint64, name string) SpanRef {
	if col == nil {
		return SpanRef{}
	}
	return col.Tracer.Begin(cpu, now, name)
}
