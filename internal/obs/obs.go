package obs

// Collector bundles the metric registry and the span tracer that one
// machine's instrumentation feeds.
type Collector struct {
	Registry *Registry
	Tracer   *Tracer
}

// New builds a collector for a machine with ncpu processors.
func New(ncpu int) *Collector {
	return &Collector{
		Registry: NewRegistry(),
		Tracer:   NewTracer(ncpu, 0),
	}
}

// Begin opens a span on a possibly-nil collector; the zero SpanRef is
// returned (and every method on it is a no-op) when col is nil.
func Begin(col *Collector, cpu int, now uint64, name string) SpanRef {
	if col == nil {
		return SpanRef{}
	}
	return col.Tracer.Begin(cpu, now, name)
}
