package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestChromeTraceRoundTrip(t *testing.T) {
	tr := NewTracer(2, 0)
	root := tr.Begin(0, 3_000_000, "switch/attach")
	child := tr.Begin(0, 3_100_000, "phase/frame-recompute")
	child.End(3_500_000)
	tr.Instant(0, 3_600_000, "switch/deferred", 1)
	root.EndArg(3_900_000, 0)
	tr.Complete(1, 100, 200, "xen/hypercall", 2)

	ext := []ExtEvent{
		{TS: 3_050_000, CPU: 0, Name: "xentrace/hypercall",
			Args: map[string]any{"dom": 0}},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, 3_000_000_000, tr.Spans(), ext); err != nil {
		t.Fatal(err)
	}
	// The exporter's own output must satisfy the schema checker.
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("round trip failed validation: %v", err)
	}

	var parsed struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.TraceEvents) != 5 {
		t.Fatalf("got %d events", len(parsed.TraceEvents))
	}
	var sawComplete, sawInstant, sawExt bool
	for _, ev := range parsed.TraceEvents {
		switch ev["name"] {
		case "switch/attach":
			sawComplete = true
			if ev["ph"] != "X" {
				t.Fatalf("attach ph = %v", ev["ph"])
			}
			// 900k cycles at 3 GHz = 300 us.
			if d := ev["dur"].(float64); d < 299.9 || d > 300.1 {
				t.Fatalf("attach dur = %v us", d)
			}
			if ev["tid"].(float64) != 0 {
				t.Fatalf("attach tid = %v", ev["tid"])
			}
		case "switch/deferred":
			sawInstant = true
			if ev["ph"] != "i" {
				t.Fatalf("instant ph = %v", ev["ph"])
			}
		case "xentrace/hypercall":
			sawExt = true
			if ev["ph"] != "i" {
				t.Fatalf("ext ph = %v", ev["ph"])
			}
		}
	}
	if !sawComplete || !sawInstant || !sawExt {
		t.Fatal("missing event kinds in export")
	}
}

func TestChromeTraceNeedsFrequency(t *testing.T) {
	if err := WriteChromeTrace(&bytes.Buffer{}, 0, nil, nil); err == nil {
		t.Fatal("hz=0 accepted")
	}
}

func TestValidateChromeTraceRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"not json":      `{]`,
		"no events":     `{"foo": 1}`,
		"missing name":  `{"traceEvents":[{"ph":"X","ts":1,"pid":1,"tid":0,"dur":1}]}`,
		"unknown phase": `{"traceEvents":[{"name":"a","ph":"Z","ts":1,"pid":1,"tid":0}]}`,
		"negative ts":   `{"traceEvents":[{"name":"a","ph":"i","ts":-5,"pid":1,"tid":0}]}`,
		"missing pid":   `{"traceEvents":[{"name":"a","ph":"i","ts":1,"tid":0}]}`,
		"X without dur": `{"traceEvents":[{"name":"a","ph":"X","ts":1,"pid":1,"tid":0}]}`,
	}
	for label, data := range cases {
		if err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Fatalf("%s: accepted", label)
		}
	}
	ok := `{"traceEvents":[{"name":"a","ph":"X","ts":1,"pid":1,"tid":0,"dur":0}]}`
	if err := ValidateChromeTrace([]byte(ok)); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestPromNameMangling(t *testing.T) {
	r := NewRegistry()
	r.Counter("xen", "dom-switches.per/cpu").Inc()
	var sb strings.Builder
	r.WriteProm(&sb)
	if !strings.Contains(sb.String(), "mercury_xen_dom_switches_per_cpu 1") {
		t.Fatalf("mangling: %s", sb.String())
	}
}
