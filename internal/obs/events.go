package obs

import (
	"encoding/json"
	"fmt"
	"sync"
)

// The fleet flight recorder: a bounded, allocation-free ring of
// structured events. Mode transitions, admission decisions, wave
// outcomes, heal verdicts and migration commits are facts about *when*
// something happened and *to whom* — the metrics registry aggregates
// them away and the span tracer is too heavy to leave enabled on a
// 50-node fleet. The event log keeps the last EventLogCap such facts
// with fixed-size records (no strings, no per-record allocation), so
// recording on the switch hot path costs a mutex acquire and a slot
// store. When the ring is full the oldest record is overwritten and the
// loss is counted, never blocking the writer.

// EventKind classifies a flight-recorder record.
type EventKind uint8

// Event kinds. A and B carry kind-specific payloads, documented per
// kind; TS is cycles on the recording CPU's clock for node-level events
// and fleet ticks for controller-level events.
const (
	// EvModeSwitch: a committed mode switch. A = target Mode,
	// B = switch duration in cycles.
	EvModeSwitch EventKind = iota + 1
	// EvSwitchDeferred: a switch postponed by a non-zero VO refcount.
	// A = target Mode, B = deferral count for the pending request.
	EvSwitchDeferred
	// EvSwitchStarved: a switch abandoned after exhausting its retry
	// budget. A = target Mode, B = deferral count.
	EvSwitchStarved
	// EvSwitchFailed: a switch rolled back (failure-resistant path).
	// A = target Mode.
	EvSwitchFailed
	// EvAdmissionGrant: a node won a virtual-mode slot. A = ticks waited.
	EvAdmissionGrant
	// EvAdmissionReject: backpressure — the admission queue was full.
	EvAdmissionReject
	// EvAdmissionExpire: a queued request passed its deadline.
	// A = ticks waited.
	EvAdmissionExpire
	// EvWaveStart: a rolling-maintenance wave began. A = fleet size,
	// B = batch size.
	EvWaveStart
	// EvWaveDone: the wave completed. A = nodes completed, B = ticks.
	EvWaveDone
	// EvWaveAbort: the wave aborted. A = batch index.
	EvWaveAbort
	// EvHealOK: a node's post-maintenance heal verified clean.
	EvHealOK
	// EvHealFail: the heal step failed; the wave aborts on this node.
	EvHealFail
	// EvMigrationCommit: a live migration committed. A = downtime cycles.
	EvMigrationCommit
	// EvMigrationRollback: a live migration aborted and rolled back.
	EvMigrationRollback
	// EvCheckpointDone: a checkpoint action completed. A = image pages.
	EvCheckpointDone
	// EvSwitchBackoff: a deferred switch armed its retry timer.
	// A = chosen backoff delay in cycles (exponential with seeded
	// jitter), B = deferral count for the pending request.
	EvSwitchBackoff
	// EvMCStep: one atomic step of a model-checker counterexample
	// trace (internal/mc). Node = acting CPU (or 100+worker index for
	// virtualization-object operations), A = the step/action code as
	// rendered by the mc package, B = a step-specific argument.
	EvMCStep
	// EvMCViolation: the invariant violation terminating a
	// model-checker counterexample. A = the mc violation code.
	EvMCViolation
)

// evKindLast is the highest assigned kind, the ParseEventKind bound —
// keep it on the final constant when adding kinds.
const evKindLast = EvMCViolation

func (k EventKind) String() string {
	switch k {
	case EvModeSwitch:
		return "mode-switch"
	case EvSwitchDeferred:
		return "switch-deferred"
	case EvSwitchStarved:
		return "switch-starved"
	case EvSwitchFailed:
		return "switch-failed"
	case EvAdmissionGrant:
		return "admission-grant"
	case EvAdmissionReject:
		return "admission-reject"
	case EvAdmissionExpire:
		return "admission-expire"
	case EvWaveStart:
		return "wave-start"
	case EvWaveDone:
		return "wave-done"
	case EvWaveAbort:
		return "wave-abort"
	case EvHealOK:
		return "heal-ok"
	case EvHealFail:
		return "heal-fail"
	case EvMigrationCommit:
		return "migration-commit"
	case EvMigrationRollback:
		return "migration-rollback"
	case EvCheckpointDone:
		return "checkpoint-done"
	case EvSwitchBackoff:
		return "switch-backoff"
	case EvMCStep:
		return "mc-step"
	case EvMCViolation:
		return "mc-violation"
	}
	return fmt.Sprintf("kind%d", uint8(k))
}

// ParseEventKind maps a CLI spelling back to a kind.
func ParseEventKind(s string) (EventKind, error) {
	for k := EvModeSwitch; k <= evKindLast; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("obs: unknown event kind %q", s)
}

// MarshalJSON emits the kind's CLI spelling rather than its ordinal, so
// exported event dumps stay readable and stable across kind insertions.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON accepts the CLI spelling.
func (k *EventKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseEventKind(s)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// Event is one fixed-size flight-recorder record.
type Event struct {
	// Seq is the record's position in the total emission order; gaps
	// never occur (overwritten records keep their sequence numbers, the
	// ring just no longer holds them).
	Seq uint64 `json:"seq"`
	// TS is the recording timebase: CPU cycles for node events, fleet
	// ticks for controller events.
	TS uint64 `json:"ts"`
	// Node attributes the event to a fleet node; -1 = no node (a
	// standalone system, or a fleet-level event).
	Node int32     `json:"node"`
	Kind EventKind `json:"kind"`
	A    uint64    `json:"a"`
	B    uint64    `json:"b"`
}

// EventLogCap is the default ring capacity.
const EventLogCap = 4096

// EventLog is the bounded ring. Record is safe for concurrent use and
// never blocks beyond the internal mutex; when the ring is full the
// oldest record is overwritten and dropped is counted.
type EventLog struct {
	mu      sync.Mutex
	buf     []Event
	start   int    // index of the oldest retained record
	n       int    // retained records
	seq     uint64 // total records ever emitted
	dropped *Counter
}

// NewEventLog builds a ring holding cap records (0 = EventLogCap).
func NewEventLog(cap int) *EventLog {
	if cap <= 0 {
		cap = EventLogCap
	}
	return &EventLog{buf: make([]Event, cap), dropped: NewCounter()}
}

// Record appends one event, overwriting the oldest when full.
func (l *EventLog) Record(kind EventKind, node int32, ts, a, b uint64) {
	l.mu.Lock()
	e := Event{Seq: l.seq, TS: ts, Node: node, Kind: kind, A: a, B: b}
	l.seq++
	if l.n < len(l.buf) {
		l.buf[(l.start+l.n)%len(l.buf)] = e
		l.n++
	} else {
		l.buf[l.start] = e
		l.start = (l.start + 1) % len(l.buf)
		l.dropped.Inc()
	}
	l.mu.Unlock()
}

// Snapshot returns the retained records in emission order. The ring is
// left intact (the flight recorder keeps flying).
func (l *EventLog) Snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.n)
	for i := 0; i < l.n; i++ {
		out = append(out, l.buf[(l.start+i)%len(l.buf)])
	}
	return out
}

// Len returns how many records the ring currently retains.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Cap returns the ring capacity.
func (l *EventLog) Cap() int { return len(l.buf) }

// Total returns how many records were ever emitted.
func (l *EventLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Dropped returns how many records were overwritten before any
// Snapshot could return them.
func (l *EventLog) Dropped() uint64 { return l.dropped.Load() }

// Reset discards all retained records and zeroes the counters.
func (l *EventLog) Reset() {
	l.mu.Lock()
	l.start, l.n, l.seq = 0, 0, 0
	l.dropped.v.Store(0)
	l.mu.Unlock()
}
