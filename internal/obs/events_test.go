package obs

import "testing"

func TestEventLogOrderAndSeq(t *testing.T) {
	l := NewEventLog(8)
	for i := 0; i < 5; i++ {
		l.Record(EvModeSwitch, int32(i), uint64(100+i), uint64(i), 0)
	}
	evs := l.Snapshot()
	if len(evs) != 5 || l.Len() != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i) || e.Node != int32(i) || e.A != uint64(i) {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
	}
	if l.Dropped() != 0 {
		t.Fatalf("dropped %d without overflow", l.Dropped())
	}
}

func TestEventLogOverwritesOldest(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Record(EvAdmissionGrant, 0, uint64(i), uint64(i), 0)
	}
	evs := l.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("ring retains %d, want 4", len(evs))
	}
	// The ring keeps the newest records; sequence numbers never reset.
	for i, e := range evs {
		want := uint64(6 + i)
		if e.Seq != want || e.A != want {
			t.Fatalf("slot %d: seq=%d a=%d, want %d", i, e.Seq, e.A, want)
		}
	}
	if l.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", l.Dropped())
	}
	if l.Total() != 10 {
		t.Fatalf("total = %d, want 10", l.Total())
	}
}

func TestEventLogReset(t *testing.T) {
	l := NewEventLog(2)
	for i := 0; i < 5; i++ {
		l.Record(EvWaveStart, -1, 0, 0, 0)
	}
	l.Reset()
	if l.Len() != 0 || l.Dropped() != 0 || l.Total() != 0 {
		t.Fatalf("reset left state: len=%d dropped=%d total=%d",
			l.Len(), l.Dropped(), l.Total())
	}
	l.Record(EvWaveDone, -1, 7, 1, 2)
	if evs := l.Snapshot(); len(evs) != 1 || evs[0].Seq != 0 {
		t.Fatalf("post-reset snapshot wrong: %+v", evs)
	}
}

func TestEventKindRoundTrip(t *testing.T) {
	for k := EvModeSwitch; k <= EvCheckpointDone; k++ {
		got, err := ParseEventKind(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v: got %v, err %v", k, got, err)
		}
	}
	if _, err := ParseEventKind("no-such-kind"); err == nil {
		t.Fatal("parse of unknown kind succeeded")
	}
}

func TestCollectorRegistersDropCounters(t *testing.T) {
	col := New(1)
	// Fill the span budget via a tiny tracer stand-in: the collector's
	// tracer uses the default budget, so drive the event log instead and
	// check both counters are reachable through the registry.
	for i := 0; i < EventLogCap+3; i++ {
		col.Events.Record(EvHealOK, 0, uint64(i), 0, 0)
	}
	if got := col.Registry.Counter("obs", "events_dropped_total").Load(); got != 3 {
		t.Fatalf("registry events_dropped_total = %d, want 3", got)
	}
	if got := col.Registry.Counter("obs", "spans_dropped_total").Load(); got != 0 {
		t.Fatalf("registry spans_dropped_total = %d, want 0", got)
	}
	// The registry handle and the tracer's own counter are one object.
	col.Tracer.dropped.Inc()
	if got := col.Registry.Counter("obs", "spans_dropped_total").Load(); got != 1 {
		t.Fatalf("adopted span-drop counter diverged: %d", got)
	}
}

func TestRecordEventNilSafe(t *testing.T) {
	RecordEvent(nil, EvModeSwitch, 0, 0, 0, 0)
	RecordEvent(&Collector{Registry: NewRegistry(), Tracer: NewTracer(1, 0)},
		EvModeSwitch, 0, 0, 0, 0)
}
