package obs

import (
	"sync"
	"testing"
)

func TestEventLogOrderAndSeq(t *testing.T) {
	l := NewEventLog(8)
	for i := 0; i < 5; i++ {
		l.Record(EvModeSwitch, int32(i), uint64(100+i), uint64(i), 0)
	}
	evs := l.Snapshot()
	if len(evs) != 5 || l.Len() != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i) || e.Node != int32(i) || e.A != uint64(i) {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
	}
	if l.Dropped() != 0 {
		t.Fatalf("dropped %d without overflow", l.Dropped())
	}
}

func TestEventLogOverwritesOldest(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Record(EvAdmissionGrant, 0, uint64(i), uint64(i), 0)
	}
	evs := l.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("ring retains %d, want 4", len(evs))
	}
	// The ring keeps the newest records; sequence numbers never reset.
	for i, e := range evs {
		want := uint64(6 + i)
		if e.Seq != want || e.A != want {
			t.Fatalf("slot %d: seq=%d a=%d, want %d", i, e.Seq, e.A, want)
		}
	}
	if l.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", l.Dropped())
	}
	if l.Total() != 10 {
		t.Fatalf("total = %d, want 10", l.Total())
	}
}

func TestEventLogReset(t *testing.T) {
	l := NewEventLog(2)
	for i := 0; i < 5; i++ {
		l.Record(EvWaveStart, -1, 0, 0, 0)
	}
	l.Reset()
	if l.Len() != 0 || l.Dropped() != 0 || l.Total() != 0 {
		t.Fatalf("reset left state: len=%d dropped=%d total=%d",
			l.Len(), l.Dropped(), l.Total())
	}
	l.Record(EvWaveDone, -1, 7, 1, 2)
	if evs := l.Snapshot(); len(evs) != 1 || evs[0].Seq != 0 {
		t.Fatalf("post-reset snapshot wrong: %+v", evs)
	}
}

func TestEventKindRoundTrip(t *testing.T) {
	for k := EvModeSwitch; k <= EvCheckpointDone; k++ {
		got, err := ParseEventKind(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v: got %v, err %v", k, got, err)
		}
	}
	if _, err := ParseEventKind("no-such-kind"); err == nil {
		t.Fatal("parse of unknown kind succeeded")
	}
}

func TestCollectorRegistersDropCounters(t *testing.T) {
	col := New(1)
	// Fill the span budget via a tiny tracer stand-in: the collector's
	// tracer uses the default budget, so drive the event log instead and
	// check both counters are reachable through the registry.
	for i := 0; i < EventLogCap+3; i++ {
		col.Events.Record(EvHealOK, 0, uint64(i), 0, 0)
	}
	if got := col.Registry.Counter("obs", "events_dropped_total").Load(); got != 3 {
		t.Fatalf("registry events_dropped_total = %d, want 3", got)
	}
	if got := col.Registry.Counter("obs", "spans_dropped_total").Load(); got != 0 {
		t.Fatalf("registry spans_dropped_total = %d, want 0", got)
	}
	// The registry handle and the tracer's own counter are one object.
	col.Tracer.dropped.Inc()
	if got := col.Registry.Counter("obs", "spans_dropped_total").Load(); got != 1 {
		t.Fatalf("adopted span-drop counter diverged: %d", got)
	}
}

func TestRecordEventNilSafe(t *testing.T) {
	RecordEvent(nil, EvModeSwitch, 0, 0, 0, 0)
	RecordEvent(&Collector{Registry: NewRegistry(), Tracer: NewTracer(1, 0)},
		EvModeSwitch, 0, 0, 0, 0)
}

// TestEventLogConcurrentWriters hammers one ring from many goroutines
// and checks the global accounting: nothing lost, nothing double
// counted, and the survivors are exactly the newest records in a total
// order that respects every writer's program order.
func TestEventLogConcurrentWriters(t *testing.T) {
	const (
		writers = 8
		each    = 500
		ringCap = 64
	)
	l := NewEventLog(ringCap)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				// Node = writer, A = the writer's own index, B mirrors
				// Node so torn records would be self-evident.
				l.Record(EvModeSwitch, int32(w), uint64(i), uint64(i), uint64(w))
			}
		}(w)
	}
	wg.Wait()

	const total = writers * each
	if got := l.Total(); got != total {
		t.Fatalf("total = %d, want %d", got, total)
	}
	if got := l.Dropped(); got != total-ringCap {
		t.Fatalf("dropped = %d, want %d", got, total-ringCap)
	}
	evs := l.Snapshot()
	if len(evs) != ringCap {
		t.Fatalf("snapshot holds %d, want %d", len(evs), ringCap)
	}
	lastIdx := make(map[int32]uint64)
	for i, e := range evs {
		// Overwrite-oldest means the survivors are the final ringCap
		// sequence numbers, contiguous and in emission order.
		if want := uint64(total - ringCap + i); e.Seq != want {
			t.Fatalf("slot %d: seq=%d, want %d", i, e.Seq, want)
		}
		if e.B != uint64(e.Node) || e.A != e.TS {
			t.Fatalf("torn record: %+v", e)
		}
		// Within one writer, later records carry larger indices: the
		// ring's total order embeds every writer's program order.
		if prev, ok := lastIdx[e.Node]; ok && e.A <= prev {
			t.Fatalf("writer %d reordered: %d after %d", e.Node, e.A, prev)
		}
		lastIdx[e.Node] = e.A
	}
}

// TestEventLogSnapshotUnderFire interleaves Snapshot with live writers:
// every snapshot must be internally consistent (contiguous ascending
// sequence numbers, no torn records, never more than cap), even though
// the ring keeps moving underneath.
func TestEventLogSnapshotUnderFire(t *testing.T) {
	const ringCap = 32
	l := NewEventLog(ringCap)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				l.Record(EvHealOK, int32(w), uint64(i), uint64(i), uint64(w))
			}
		}(w)
	}
	for snap := 0; snap < 200; snap++ {
		evs := l.Snapshot()
		if len(evs) > ringCap {
			t.Fatalf("snapshot %d exceeds cap: %d", snap, len(evs))
		}
		for i, e := range evs {
			if i > 0 && e.Seq != evs[i-1].Seq+1 {
				t.Fatalf("snapshot %d not contiguous at %d: %d then %d",
					snap, i, evs[i-1].Seq, e.Seq)
			}
			if e.B != uint64(e.Node) || e.A != e.TS {
				t.Fatalf("snapshot %d torn record: %+v", snap, e)
			}
		}
	}
	close(stop)
	wg.Wait()
	if l.Total() != l.Dropped()+uint64(l.Len()) {
		t.Fatalf("accounting: total=%d dropped=%d len=%d",
			l.Total(), l.Dropped(), l.Len())
	}
}
