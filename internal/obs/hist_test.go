package obs

import (
	"math/rand"
	"testing"
)

func TestQuantileEmpty(t *testing.T) {
	h := NewHistogram()
	for _, q := range []float64{0.5, 0.95, 0.99, 1.0} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	h := NewHistogram()
	h.Observe(1000)
	for _, q := range []float64{0.01, 0.5, 0.99, 1.0} {
		got := h.Quantile(q)
		// One observation: every quantile lands in its bucket
		// [512, 1024) at log-scale resolution, never above the max.
		if got < 512 || got > 1000 {
			t.Fatalf("Quantile(%v) = %v, want within [512, 1000]", q, got)
		}
	}
}

func TestQuantileAllInOneBucket(t *testing.T) {
	h := NewHistogram()
	// 1000..1023 all land in bucket [512, 1024).
	for v := uint64(1000); v < 1024; v++ {
		h.Observe(v)
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 1.0} {
		got := h.Quantile(q)
		if got < 512 || got > 1023 {
			t.Fatalf("Quantile(%v) = %v, want within bucket [512, 1023]", q, got)
		}
	}
	if got := h.Quantile(1.0); got > float64(h.Max()) {
		t.Fatalf("Quantile(1.0) = %v exceeds max %d", got, h.Max())
	}
}

func TestQuantileQ1NeverExceedsMax(t *testing.T) {
	h := NewHistogram()
	for _, v := range []uint64{1, 7, 90, 3000, 1 << 20} {
		h.Observe(v)
	}
	if got, max := h.Quantile(1.0), float64(h.Max()); got > max {
		t.Fatalf("Quantile(1.0) = %v exceeds max %v", got, max)
	}
}

func TestQuantileMonotoneUnderRandomStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		h := NewHistogram()
		n := 1 + rng.Intn(4000)
		for i := 0; i < n; i++ {
			// Mix magnitudes so observations spread across buckets.
			h.Observe(uint64(rng.Int63n(1 << uint(1+rng.Intn(40)))))
		}
		p50, p95, p99 := h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
		if p50 > p95 || p95 > p99 {
			t.Fatalf("trial %d (n=%d): quantiles not monotone: p50=%v p95=%v p99=%v",
				trial, n, p50, p95, p99)
		}
		if p99 > float64(h.Max()) {
			t.Fatalf("trial %d: p99=%v exceeds max=%d", trial, p99, h.Max())
		}
	}
}
