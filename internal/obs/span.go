package obs

import "sync"

// SpanKind discriminates trace records.
type SpanKind uint8

// Span kinds.
const (
	// SpanDur is a duration span: [Start, End) on one CPU's TSC.
	SpanDur SpanKind = iota
	// SpanInstant is a point event attached to the enclosing span.
	SpanInstant
)

// Span is one finished trace record. Timestamps are raw cycles on the
// owning CPU's clock (the simulated TSC), the same timebase as the
// xentrace ring, so the two merge cleanly in the Chrome export.
type Span struct {
	ID     uint64
	Parent uint64 // 0 = top-level
	Name   string
	CPU    int
	Start  uint64
	End    uint64
	Arg    uint64
}

// Kind reports whether the span is a duration or an instant.
func (s Span) Kind() SpanKind {
	if s.End == s.Start {
		return SpanInstant
	}
	return SpanDur
}

// Dur returns the span's length in cycles.
func (s Span) Dur() uint64 { return s.End - s.Start }

// openSpan is an in-flight span on a CPU's nesting stack.
type openSpan struct {
	id, parent uint64
	name       string
	start      uint64
}

// DefaultTraceSpans bounds the retained finished spans.
const DefaultTraceSpans = 1 << 17

// Tracer records nested, cycle-timestamped spans. A per-CPU stack of
// open spans provides the nesting: Begin parents the new span under
// the CPU's current top, so a hypercall completing inside an attach
// phase is attributed to that phase without the call sites knowing
// about each other.
type Tracer struct {
	mu     sync.Mutex
	nextID uint64
	spans  []Span
	stacks [][]openSpan
	max    int
	// dropped is a free-standing counter so a collector can adopt it
	// into its registry (obs/spans_dropped_total): a truncated trace is
	// then visible in every metrics export, not just to callers who
	// think to ask Dropped().
	dropped *Counter
}

// NewTracer builds a tracer for ncpu processors retaining at most max
// finished spans (0 = DefaultTraceSpans).
func NewTracer(ncpu, max int) *Tracer {
	if ncpu <= 0 {
		ncpu = 1
	}
	if max <= 0 {
		max = DefaultTraceSpans
	}
	return &Tracer{stacks: make([][]openSpan, ncpu), max: max, dropped: NewCounter()}
}

// SpanRef is a handle to an open span. The zero SpanRef (from a nil
// collector) is inert: End on it is a no-op.
type SpanRef struct {
	t   *Tracer
	cpu int
	id  uint64
}

// Active reports whether the handle refers to a real span.
func (s SpanRef) Active() bool { return s.t != nil }

// Begin opens a span on cpu at the given TSC reading. The span is
// parented under the CPU's current open span, if any.
func (t *Tracer) Begin(cpu int, now uint64, name string) SpanRef {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.growLocked(cpu)
	t.nextID++
	id := t.nextID
	var parent uint64
	if st := t.stacks[cpu]; len(st) > 0 {
		parent = st[len(st)-1].id
	}
	t.stacks[cpu] = append(t.stacks[cpu], openSpan{id: id, parent: parent, name: name, start: now})
	return SpanRef{t: t, cpu: cpu, id: id}
}

// End closes the span at the given TSC reading. Unclosed children
// still on the stack above it are closed at the same instant (the
// rollback paths bail out of a phase without unwinding spans one by
// one).
func (s SpanRef) End(now uint64) { s.EndArg(now, 0) }

// EndArg closes the span, attaching an argument word.
func (s SpanRef) EndArg(now uint64, arg uint64) {
	if s.t == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stacks[s.cpu]
	for i := len(st) - 1; i >= 0; i-- {
		o := st[i]
		a := uint64(0)
		if o.id == s.id {
			a = arg
		}
		t.finishLocked(Span{ID: o.id, Parent: o.parent, Name: o.name,
			CPU: s.cpu, Start: o.start, End: now, Arg: a})
		if o.id == s.id {
			t.stacks[s.cpu] = st[:i]
			return
		}
	}
	t.stacks[s.cpu] = st[:0]
}

// Complete records an already-measured [start, end) interval as a span
// parented under cpu's current open span — the shape hypercall and
// ring-hop instrumentation uses (measure first, record on exit).
func (t *Tracer) Complete(cpu int, start, end uint64, name string, arg uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.growLocked(cpu)
	t.nextID++
	var parent uint64
	if st := t.stacks[cpu]; len(st) > 0 {
		parent = st[len(st)-1].id
	}
	t.finishLocked(Span{ID: t.nextID, Parent: parent, Name: name,
		CPU: cpu, Start: start, End: end, Arg: arg})
}

// Instant records a point event under cpu's current open span.
func (t *Tracer) Instant(cpu int, now uint64, name string, arg uint64) {
	t.Complete(cpu, now, now, name, arg)
}

// finishLocked appends a finished span, dropping when over budget.
func (t *Tracer) finishLocked(s Span) {
	if len(t.spans) >= t.max {
		t.dropped.Inc()
		return
	}
	t.spans = append(t.spans, s)
}

// growLocked widens the per-CPU stacks on first sight of a larger id.
func (t *Tracer) growLocked(cpu int) {
	for cpu >= len(t.stacks) {
		t.stacks = append(t.stacks, nil)
	}
}

// Spans returns a copy of the finished spans in completion order.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Dropped returns how many finished spans were discarded once the
// retention budget filled.
func (t *Tracer) Dropped() uint64 { return t.dropped.Load() }

// DroppedCounter returns the underlying counter, for registry adoption.
func (t *Tracer) DroppedCounter() *Counter { return t.dropped }

// Reset discards all finished spans (open stacks are kept).
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = t.spans[:0]
	t.dropped.v.Store(0)
}
