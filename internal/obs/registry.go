package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension of a metric.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing count. It is a free-standing
// atomic so subsystems can count unconditionally and hand the same
// object to a registry — one counting path, one source of truth.
type Counter struct {
	v atomic.Uint64
}

// NewCounter returns an unregistered counter (used where no collector
// is installed; the adapter pattern in internal/vo).
func NewCounter() *Counter { return &Counter{} }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns an unregistered gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// MetricKind discriminates registry entries.
type MetricKind uint8

// Metric kinds.
const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind%d", uint8(k))
}

// Metric is one registered instrument with its identity.
type Metric struct {
	Subsystem string
	Name      string
	Labels    []Label // sorted by key
	Kind      MetricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry keys instruments by subsystem/name{labels} and hands out
// get-or-create handles. Lookups take a read lock; sites on hot paths
// should cache the returned handle.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*Metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*Metric)}
}

// key canonicalizes an instrument identity.
func key(subsystem, name string, labels []Label) string {
	if len(labels) == 0 {
		return subsystem + "/" + name
	}
	var b strings.Builder
	b.WriteString(subsystem)
	b.WriteByte('/')
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the metric for an identity, creating it with mk on
// first use. Labels are sorted by key so call-site order is immaterial.
func (r *Registry) lookup(subsystem, name string, labels []Label,
	kind MetricKind, mk func(*Metric)) *Metric {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	k := key(subsystem, name, ls)

	r.mu.RLock()
	m := r.metrics[k]
	r.mu.RUnlock()
	if m != nil {
		if m.Kind != kind {
			panic(fmt.Sprintf("obs: %s registered as %v, requested as %v", k, m.Kind, kind))
		}
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m = r.metrics[k]; m != nil {
		if m.Kind != kind {
			panic(fmt.Sprintf("obs: %s registered as %v, requested as %v", k, m.Kind, kind))
		}
		return m
	}
	m = &Metric{Subsystem: subsystem, Name: name, Labels: ls, Kind: kind}
	mk(m)
	r.metrics[k] = m
	return m
}

// Counter returns the counter for subsystem/name{labels}, creating it
// on first use.
func (r *Registry) Counter(subsystem, name string, labels ...Label) *Counter {
	return r.lookup(subsystem, name, labels, KindCounter,
		func(m *Metric) { m.counter = NewCounter() }).counter
}

// Gauge returns the gauge for subsystem/name{labels}.
func (r *Registry) Gauge(subsystem, name string, labels ...Label) *Gauge {
	return r.lookup(subsystem, name, labels, KindGauge,
		func(m *Metric) { m.gauge = NewGauge() }).gauge
}

// Histogram returns the log-scaled cycle histogram for
// subsystem/name{labels}.
func (r *Registry) Histogram(subsystem, name string, labels ...Label) *Histogram {
	return r.lookup(subsystem, name, labels, KindHistogram,
		func(m *Metric) { m.hist = NewHistogram() }).hist
}

// RegisterCounter adopts an existing counter under the given identity,
// so a subsystem that counts unconditionally (internal/vo) can expose
// the same object through the registry. Returns the registered counter
// (the existing one if the identity was already present).
func (r *Registry) RegisterCounter(c *Counter, subsystem, name string, labels ...Label) *Counter {
	return r.lookup(subsystem, name, labels, KindCounter,
		func(m *Metric) { m.counter = c }).counter
}

// Each calls fn for every registered metric in sorted key order.
func (r *Registry) Each(fn func(m *Metric)) {
	r.mu.RLock()
	keys := make([]string, 0, len(r.metrics))
	for k := range r.metrics {
		keys = append(keys, k)
	}
	ms := make([]*Metric, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		ms = append(ms, r.metrics[k])
	}
	r.mu.RUnlock()
	for _, m := range ms {
		fn(m)
	}
}
