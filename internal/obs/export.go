package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// --- Prometheus-style text exposition ---

// promName mangles an identity into a legal Prometheus metric name.
func promName(m *Metric) string {
	n := "mercury_" + m.Subsystem + "_" + m.Name
	return strings.NewReplacer("/", "_", "-", "_", ".", "_").Replace(n)
}

// promLabels renders {k="v",...} (empty string when no labels).
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WriteProm writes the registry in the Prometheus text exposition
// format. Histograms emit cumulative le buckets plus _sum/_count and
// estimated p50/p95/p99 as companion gauges (cycle units throughout).
func (r *Registry) WriteProm(w io.Writer) {
	typeDone := make(map[string]bool)
	r.Each(func(m *Metric) {
		name := promName(m)
		switch m.Kind {
		case KindCounter:
			if !typeDone[name] {
				fmt.Fprintf(w, "# TYPE %s counter\n", name)
				typeDone[name] = true
			}
			fmt.Fprintf(w, "%s%s %d\n", name, promLabels(m.Labels), m.counter.Load())
		case KindGauge:
			if !typeDone[name] {
				fmt.Fprintf(w, "# TYPE %s gauge\n", name)
				typeDone[name] = true
			}
			fmt.Fprintf(w, "%s%s %d\n", name, promLabels(m.Labels), m.gauge.Load())
		case KindHistogram:
			if !typeDone[name] {
				fmt.Fprintf(w, "# TYPE %s histogram\n", name)
				typeDone[name] = true
			}
			h := m.hist
			uppers, cum := h.Buckets()
			for i := range uppers {
				fmt.Fprintf(w, "%s_bucket%s %d\n", name,
					promLabels(m.Labels, L("le", fmt.Sprintf("%g", uppers[i]))), cum[i])
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", name,
				promLabels(m.Labels, L("le", "+Inf")), h.Count())
			fmt.Fprintf(w, "%s_sum%s %d\n", name, promLabels(m.Labels), h.Sum())
			fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(m.Labels), h.Count())
			for _, q := range []struct {
				p string
				q float64
			}{{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}} {
				fmt.Fprintf(w, "%s_quantile%s %g\n", name,
					promLabels(m.Labels, L("q", q.p)), h.Quantile(q.q))
			}
		}
	})
}

// --- JSON metric dump ---

// HistDump is the JSON shape of one histogram.
type HistDump struct {
	Count   uint64    `json:"count"`
	Sum     uint64    `json:"sum"`
	Max     uint64    `json:"max"`
	Mean    float64   `json:"mean"`
	P50     float64   `json:"p50"`
	P95     float64   `json:"p95"`
	P99     float64   `json:"p99"`
	Uppers  []float64 `json:"bucket_uppers,omitempty"`
	CumCnts []uint64  `json:"bucket_cumulative,omitempty"`
}

// MetricDump is the JSON shape of one registry entry.
type MetricDump struct {
	Subsystem string            `json:"subsystem"`
	Name      string            `json:"name"`
	Labels    map[string]string `json:"labels,omitempty"`
	Kind      string            `json:"kind"`
	Value     int64             `json:"value,omitempty"`
	Histogram *HistDump         `json:"histogram,omitempty"`
}

// Dump snapshots the registry into exportable records.
func (r *Registry) Dump() []MetricDump {
	var out []MetricDump
	r.Each(func(m *Metric) {
		d := MetricDump{Subsystem: m.Subsystem, Name: m.Name, Kind: m.Kind.String()}
		if len(m.Labels) > 0 {
			d.Labels = make(map[string]string, len(m.Labels))
			for _, l := range m.Labels {
				d.Labels[l.Key] = l.Value
			}
		}
		switch m.Kind {
		case KindCounter:
			d.Value = int64(m.counter.Load())
		case KindGauge:
			d.Value = m.gauge.Load()
		case KindHistogram:
			h := m.hist
			uppers, cum := h.Buckets()
			d.Histogram = &HistDump{
				Count: h.Count(), Sum: h.Sum(), Max: h.Max(), Mean: h.Mean(),
				P50: h.Quantile(0.5), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
				Uppers: uppers, CumCnts: cum,
			}
		}
		out = append(out, d)
	})
	return out
}

// WriteJSON writes the registry dump as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Dump())
}

// --- Chrome trace_event export ---

// ExtEvent is an externally sourced instant event (the xentrace ring)
// merged into the Chrome export on the same TSC timebase.
type ExtEvent struct {
	TS   uint64
	CPU  int
	Name string
	Args map[string]any
}

// chromeEvent is one trace_event record. Field names follow the
// Trace Event Format (chrome://tracing / Perfetto).
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object envelope form of a trace file.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders spans plus external instants as Chrome
// trace_event JSON. Cycle timestamps convert to microseconds at hz;
// span nesting is carried by complete ("X") events, instants by "i".
func WriteChromeTrace(w io.Writer, hz uint64, spans []Span, ext []ExtEvent) error {
	if hz == 0 {
		return fmt.Errorf("obs: chrome export needs a nonzero clock frequency")
	}
	us := func(cyc uint64) float64 { return float64(cyc) / float64(hz) * 1e6 }
	tr := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	for _, s := range spans {
		ev := chromeEvent{Name: s.Name, TS: us(s.Start), PID: 1, TID: s.CPU,
			Args: map[string]any{"span_id": s.ID, "parent": s.Parent, "arg": s.Arg,
				"start_cycles": s.Start, "cycles": s.Dur()}}
		if s.Kind() == SpanInstant {
			ev.Ph = "i"
			ev.Scope = "t"
		} else {
			ev.Ph = "X"
			d := us(s.Dur())
			ev.Dur = &d
		}
		tr.TraceEvents = append(tr.TraceEvents, ev)
	}
	for _, e := range ext {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: e.Name, Ph: "i", Scope: "t", TS: us(e.TS), PID: 1, TID: e.CPU,
			Args: e.Args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// ValidateChromeTrace checks that data parses as a trace_event file and
// every record satisfies the format's schema: a name, a known phase,
// a non-negative microsecond timestamp, pid/tid present, and a
// non-negative duration on complete events. Tests round-trip the
// exporter's output through this.
func ValidateChromeTrace(data []byte) error {
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if tr.TraceEvents == nil {
		return fmt.Errorf("obs: trace has no traceEvents array")
	}
	known := map[string]bool{"X": true, "i": true, "B": true, "E": true, "M": true}
	for i, ev := range tr.TraceEvents {
		name, ok := ev["name"].(string)
		if !ok || name == "" {
			return fmt.Errorf("obs: event %d: missing name", i)
		}
		ph, ok := ev["ph"].(string)
		if !ok || !known[ph] {
			return fmt.Errorf("obs: event %d (%s): bad phase %v", i, name, ev["ph"])
		}
		ts, ok := ev["ts"].(float64)
		if !ok || ts < 0 {
			return fmt.Errorf("obs: event %d (%s): bad ts %v", i, name, ev["ts"])
		}
		if _, ok := ev["pid"].(float64); !ok {
			return fmt.Errorf("obs: event %d (%s): missing pid", i, name)
		}
		if _, ok := ev["tid"].(float64); !ok {
			return fmt.Errorf("obs: event %d (%s): missing tid", i, name)
		}
		if ph == "X" {
			dur, ok := ev["dur"].(float64)
			if !ok || dur < 0 {
				return fmt.Errorf("obs: event %d (%s): complete event with bad dur %v", i, name, ev["dur"])
			}
		}
	}
	return nil
}
