package obs

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the bucket count of a log-scaled histogram: bucket b
// holds observations whose bit length is b, i.e. values in
// [2^(b-1), 2^b). Cycle counts span ~nine decades (a cached load to a
// multi-second run), which a 65-bucket power-of-two ladder covers with
// bounded error and lock-free updates.
const histBuckets = 65

// Histogram accumulates cycle observations into power-of-two buckets.
// Observe is wait-free: two atomic adds plus one atomic add on the
// bucket. Quantiles are estimated from the bucket ladder (the p50/p95/
// p99 a latency table needs, at log-scale resolution).
type Histogram struct {
	count atomic.Uint64
	sum   atomic.Uint64
	max   atomic.Uint64
	bkts  [histBuckets]atomic.Uint64
}

// NewHistogram builds an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.bkts[bits.Len64(v)].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Max returns the largest observation.
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket
// ladder: the geometric midpoint of the bucket holding the q-th
// observation, clamped to the observed maximum.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for b := 0; b < histBuckets; b++ {
		cum += h.bkts[b].Load()
		if cum >= rank {
			est := bucketMid(b)
			if m := float64(h.max.Load()); est > m {
				est = m
			}
			return est
		}
	}
	return float64(h.max.Load())
}

// bucketMid returns the representative value of bucket b.
func bucketMid(b int) float64 {
	if b == 0 {
		return 0 // only the value 0 lands here
	}
	lo := float64(uint64(1) << (b - 1))
	return lo * 1.5 // midpoint of [2^(b-1), 2^b)
}

// bucketUpper returns the exclusive upper bound of bucket b (as a
// float so bucket 64 does not overflow).
func bucketUpper(b int) float64 {
	if b >= 64 {
		return float64(1<<63) * 2
	}
	return float64(uint64(1) << b)
}

// Buckets returns the non-empty buckets as (upper bound, cumulative
// count) pairs, the shape a Prometheus exposition needs.
func (h *Histogram) Buckets() (uppers []float64, cumulative []uint64) {
	var cum uint64
	for b := 0; b < histBuckets; b++ {
		n := h.bkts[b].Load()
		if n == 0 {
			continue
		}
		cum += n
		uppers = append(uppers, bucketUpper(b))
		cumulative = append(cumulative, cum)
	}
	return uppers, cumulative
}
