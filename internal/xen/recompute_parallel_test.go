package xen

import (
	"testing"

	"repro/internal/hw"
)

// buildForest creates n disjoint trees of pages mapped pages each,
// returning their roots.
func buildForest(t *testing.T, v *VMM, d *Domain, n, pages int) []hw.PFN {
	t.Helper()
	var roots []hw.PFN
	for i := 0; i < n; i++ {
		tb, _ := buildTree(t, v, d, pages)
		roots = append(roots, tb.Root)
	}
	return roots
}

// The parallel recompute's correctness gate: bit-identical frame
// accounting to the serial walk over the same roots.
func TestParallelRecomputeMatchesSerial(t *testing.T) {
	v, d, c := testVMM(t)
	roots := buildForest(t, v, d, 5, 9)

	if err := v.RecomputeFrameInfo(c, d, roots); err != nil {
		t.Fatal(err)
	}
	serial := v.FT.Clone()
	v.ReleaseFrameInfo(c, d)

	if err := v.RecomputeFrameInfoParallel(c, d, roots, 4); err != nil {
		t.Fatal(err)
	}
	if err := v.FT.Equal(serial); err != nil {
		t.Fatalf("parallel recompute diverges from serial: %v", err)
	}
	if err := v.FT.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, r := range roots {
		if !d.HasPinned(r) {
			t.Fatalf("root %d not recorded as pinned", r)
		}
	}
	if v.Stats.RecomputeFallbacks.Load() != 0 {
		t.Fatal("disjoint trees should not hit the serial fallback")
	}
}

// Max-of-shards accounting: sharding equal trees across 4 workers must
// cost well under the serial sum.
func TestParallelRecomputeSubLinearCycles(t *testing.T) {
	v, d, c := testVMM(t)
	roots := buildForest(t, v, d, 4, 16)

	before := c.Now()
	if err := v.RecomputeFrameInfo(c, d, roots); err != nil {
		t.Fatal(err)
	}
	serial := c.Now() - before
	v.ReleaseFrameInfo(c, d)

	before = c.Now()
	if err := v.RecomputeFrameInfoParallel(c, d, roots, 4); err != nil {
		t.Fatal(err)
	}
	parallel := c.Now() - before
	if parallel*2 >= serial {
		t.Fatalf("parallel recompute (%d) not sub-linear vs serial (%d)", parallel, serial)
	}
}

// Two roots reaching the same L1 make shard-local freshness decisions
// unsound: the merge must detect the typed overlap and redo serially,
// with the serial result.
func TestParallelRecomputeConflictFallsBack(t *testing.T) {
	v, d, c := testVMM(t)
	tb, _ := buildTree(t, v, d, 4)
	s, ok := tb.ExistingSlot(0x0800_0000)
	if !ok {
		t.Fatal("missing slot")
	}
	// A second root whose only PDE points at the first tree's L1.
	root2 := d.Frames.Alloc()
	hw.WritePTE(v.M.Mem, root2, 0, hw.MakePTE(s.Table, hw.PTEPresent|hw.PTEUser))
	roots := []hw.PFN{tb.Root, root2}

	if err := v.RecomputeFrameInfo(c, d, roots); err != nil {
		t.Fatal(err)
	}
	serial := v.FT.Clone()
	v.ReleaseFrameInfo(c, d)

	if err := v.RecomputeFrameInfoParallel(c, d, roots, 2); err != nil {
		t.Fatal(err)
	}
	if got := v.Stats.RecomputeFallbacks.Load(); got != 1 {
		t.Fatalf("fallbacks = %d, want 1", got)
	}
	if err := v.FT.Equal(serial); err != nil {
		t.Fatalf("fallback result diverges from serial: %v", err)
	}
}

// The transactional contract: an injected pin failure surfaces as an
// error with the frame table and pin state untouched, and a retry
// succeeds.
func TestParallelRecomputeTransientFailureRollsBack(t *testing.T) {
	v, d, c := testVMM(t)
	roots := buildForest(t, v, d, 3, 4)
	clean := v.FT.Clone()

	v.InjectPinFailures(1)
	if err := v.RecomputeFrameInfoParallel(c, d, roots, 3); err == nil {
		t.Fatal("injected pin failure not reported")
	}
	if err := v.FT.Equal(clean); err != nil {
		t.Fatalf("failed parallel recompute left state behind: %v", err)
	}
	for _, r := range roots {
		if d.HasPinned(r) {
			t.Fatalf("root %d pinned despite failure", r)
		}
	}
	if err := v.RecomputeFrameInfoParallel(c, d, roots, 3); err != nil {
		t.Fatalf("retry after transient failure: %v", err)
	}
	if err := v.FT.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// RecomputeFrameInfoAuto routes small working sets and uniprocessors to
// the serial walk.
func TestRecomputeAutoDispatch(t *testing.T) {
	v, d, c := testVMM(t)
	tb, _ := buildTree(t, v, d, 3)
	if err := v.RecomputeFrameInfoAuto(c, d, []hw.PFN{tb.Root}, 8); err != nil {
		t.Fatal(err)
	}
	if !d.HasPinned(tb.Root) {
		t.Fatal("auto dispatch (serial path) did not pin")
	}
	v.ReleaseFrameInfo(c, d)
	tb2, _ := buildTree(t, v, d, 3)
	if err := v.RecomputeFrameInfoAuto(c, d, []hw.PFN{tb.Root, tb2.Root}, 2); err != nil {
		t.Fatal(err)
	}
	if !d.HasPinned(tb.Root) || !d.HasPinned(tb2.Root) {
		t.Fatal("auto dispatch (parallel path) did not pin")
	}
}
