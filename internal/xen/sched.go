package xen

import (
	"sync"

	"repro/internal/hw"
)

// Domain CPU scheduling, in the spirit of Xen's credit scheduler: each
// domain carries a weight; on every timer tick the VMM hands the other
// runnable domains a slice of the tick proportional to their weights.
// This is what makes a hosted, CPU-hungry guest visibly steal time from
// the driver domain — the VMM-level contention the paper's introduction
// cites as part of virtualization's cost.
//
// A passive domain (one whose kernel is not being driven by a scheduler
// loop of its own) participates by registering BackgroundWork: the
// vcpu's compute function, invoked with a cycle budget.

// DomSched is the VMM's domain scheduler state.
type DomSched struct {
	mu      sync.Mutex
	weights map[DomID]uint32
}

// DefaultWeight is the credit weight a domain starts with.
const DefaultWeight = 256

// SetWeight assigns a domain's scheduling weight (0 = never scheduled
// in the background).
func (v *VMM) SetWeight(d *Domain, w uint32) {
	v.sched.mu.Lock()
	if v.sched.weights == nil {
		v.sched.weights = make(map[DomID]uint32)
	}
	v.sched.weights[d.ID] = w
	v.sched.mu.Unlock()
}

// Weight returns a domain's scheduling weight.
func (v *VMM) Weight(d *Domain) uint32 {
	v.sched.mu.Lock()
	defer v.sched.mu.Unlock()
	if v.sched.weights == nil {
		return DefaultWeight
	}
	if w, ok := v.sched.weights[d.ID]; ok {
		return w
	}
	return DefaultWeight
}

// scheduleSlices runs at every VMM timer tick: every *other* runnable
// domain with registered background work receives its weighted share of
// the tick period on this physical CPU. The current domain keeps the
// remainder implicitly (it continues executing after the tick).
func (v *VMM) scheduleSlices(c *hw.CPU, tickPeriod hw.Cycles) {
	cur := v.Current(c)
	// Gather contenders and the total weight (including the current
	// domain's, which "spends" its share by simply continuing).
	type contender struct {
		d *Domain
		w uint32
	}
	var others []contender
	total := uint64(0)
	if cur != nil {
		total += uint64(v.Weight(cur))
	}
	for _, d := range v.Domains {
		if d == cur || d.State != DomRunning || d.BackgroundWork == nil {
			continue
		}
		w := v.Weight(d)
		if w == 0 {
			continue
		}
		others = append(others, contender{d, w})
		total += uint64(w)
	}
	if len(others) == 0 || total == 0 {
		return
	}
	h := v.tel()
	for _, ct := range others {
		budget := hw.Cycles(uint64(tickPeriod) * uint64(ct.w) / total)
		if budget == 0 {
			continue
		}
		if h != nil {
			h.schedSlices.Inc()
			h.schedBudget.Observe(budget)
		}
		d := ct.d
		v.runInDomain(c, d, func() {
			prev := c.SetMode(hw.PL1)
			d.BackgroundWork(c, budget)
			c.SetMode(prev)
		})
	}
}
