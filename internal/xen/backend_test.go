package xen

import (
	"testing"

	"repro/internal/hw"
)

// backendEnv wires a block backend between two domains without the
// guest kernel layer, so the backend logic is testable in isolation.
func backendEnv(t *testing.T) (*VMM, *Domain, *Domain, *hw.CPU, *BlkBackend) {
	t.Helper()
	v, d0, dU, c := twoDomains(t)
	ring := NewRing[BlkRequest, BlkResponse](64, v.M.Costs)
	be := &BlkBackend{V: v, Dom: d0, Dev: v.M.Disk, Ring: ring}
	return v, d0, dU, c, be
}

// grantWrite puts a write request for one granted frame on the ring.
func grantWrite(c *hw.CPU, v *VMM, dU *Domain, be *BlkBackend, id, block uint64, fill byte) GrantRef {
	pfn := dU.Frames.Alloc()
	fb := v.M.Mem.FrameBytes(pfn)
	for i := range fb {
		fb[i] = fill
	}
	ref := dU.GrantAccess(c, be.Dom.ID, pfn, true)
	be.Ring.PutRequest(c, BlkRequest{ID: id, Block: block, Write: true, Grant: ref, Front: dU.ID})
	return ref
}

func TestBlkBackendWriteReadRoundTrip(t *testing.T) {
	v, d0, dU, c, be := backendEnv(t)
	_ = d0
	grantWrite(c, v, dU, be, 1, 50, 0xAB)
	be.OnEvent(c)
	if resp, ok := be.Ring.GetResponse(c); !ok || resp.Err != "" {
		t.Fatalf("write response: %+v %v", resp, ok)
	}

	// Read it back into a fresh granted frame.
	dst := dU.Frames.Alloc()
	ref := dU.GrantAccess(c, be.Dom.ID, dst, false)
	be.Ring.PutRequest(c, BlkRequest{ID: 2, Block: 50, Grant: ref, Front: dU.ID})
	be.OnEvent(c)
	if resp, ok := be.Ring.GetResponse(c); !ok || resp.Err != "" {
		t.Fatalf("read response: %+v %v", resp, ok)
	}
	if v.M.Mem.FrameBytesRO(dst)[100] != 0xAB {
		t.Fatal("read data wrong")
	}
}

func TestBlkBackendMergesContiguous(t *testing.T) {
	v, _, dU, c, be := backendEnv(t)
	for i := uint64(0); i < 8; i++ {
		grantWrite(c, v, dU, be, i, 100+i, byte(i))
	}
	reqsBefore := v.M.Disk.Stats.Requests
	be.OnEvent(c)
	if got := v.M.Disk.Stats.Requests - reqsBefore; got != 1 {
		t.Fatalf("8 contiguous blocks took %d disk requests", got)
	}
	if be.Stats.Merges.Load() != 7 {
		t.Fatalf("merges = %d", be.Stats.Merges.Load())
	}
}

func TestBlkBackendWriteBehindAbsorbsAndFlushes(t *testing.T) {
	v, _, dU, c, be := backendEnv(t)
	be.WriteBehind = true
	be.WriteBehindLimit = 4

	diskBefore := v.M.Disk.Stats.Requests
	for i := uint64(0); i < 3; i++ {
		grantWrite(c, v, dU, be, i, 10+i, 0x5A)
		be.OnEvent(c)
		if _, ok := be.Ring.GetResponse(c); !ok {
			t.Fatal("write not acked")
		}
	}
	if v.M.Disk.Stats.Requests != diskBefore {
		t.Fatal("write-behind went to disk early")
	}
	if be.Stats.WBAbsorbed.Load() != 3 {
		t.Fatalf("absorbed = %d", be.Stats.WBAbsorbed.Load())
	}
	// A read of an absorbed block must see the cached data.
	dst := dU.Frames.Alloc()
	ref := dU.GrantAccess(c, be.Dom.ID, dst, false)
	be.Ring.PutRequest(c, BlkRequest{ID: 9, Block: 11, Grant: ref, Front: dU.ID})
	be.OnEvent(c)
	be.Ring.GetResponse(c)
	if v.M.Mem.FrameBytesRO(dst)[7] != 0x5A {
		t.Fatal("read missed the write-behind cache")
	}
	// Crossing the limit flushes to disk.
	grantWrite(c, v, dU, be, 20, 13, 1)
	be.OnEvent(c)
	be.Ring.GetResponse(c)
	if v.M.Disk.Stats.Requests == diskBefore {
		t.Fatal("limit crossing did not flush")
	}
	if be.Stats.WBFlushes.Load() == 0 {
		t.Fatal("flush not counted")
	}
}

func TestBlkBackendBadGrantFails(t *testing.T) {
	_, _, dU, c, be := backendEnv(t)
	be.Ring.PutRequest(c, BlkRequest{ID: 5, Block: 1, Write: true, Grant: 99, Front: dU.ID})
	be.OnEvent(c)
	resp, ok := be.Ring.GetResponse(c)
	if !ok || resp.Err == "" {
		t.Fatalf("bad grant not failed: %+v %v", resp, ok)
	}
}

func TestNetBackendTxAndRx(t *testing.T) {
	v, d0, dU, c := twoDomains(t)
	tx := NewRing[NetTxRequest, NetTxResponse](32, v.M.Costs)
	rx := NewRing[NetRxBuffer, NetRxDone](32, v.M.Costs)
	var sent [][]byte
	nb := &NetBackend{V: v, Dom: d0, TxRing: tx, RxRing: rx,
		Dev: devFunc(func(cc *hw.CPU, data []byte) { sent = append(sent, data) })}

	// Transmit path: granted frame -> device.
	pfn := dU.Frames.Alloc()
	copy(v.M.Mem.FrameBytes(pfn), []byte("frame-one"))
	ref := dU.GrantAccess(c, d0.ID, pfn, true)
	tx.PutRequest(c, NetTxRequest{ID: 1, Grant: ref, Front: dU.ID, Len: 9})
	nb.OnEvent(c)
	if len(sent) != 1 || string(sent[0]) != "frame-one" {
		t.Fatalf("tx = %q", sent)
	}
	if resp, ok := tx.GetResponse(c); !ok || resp.Err != "" {
		t.Fatalf("tx response: %+v %v", resp, ok)
	}

	// Receive path: inbound packet -> posted buffer.
	buf := dU.Frames.Alloc()
	bref := dU.GrantAccess(c, d0.ID, buf, false)
	rx.PutRequest(c, NetRxBuffer{ID: 2, Grant: bref, Front: dU.ID})
	if !nb.DeliverRx(c, []byte("inbound!")) {
		t.Fatal("rx delivery failed")
	}
	done, ok := rx.GetResponse(c)
	if !ok || done.Err != "" || done.Len != 8 {
		t.Fatalf("rx done: %+v %v", done, ok)
	}
	if string(v.M.Mem.FrameBytesRO(buf)[:8]) != "inbound!" {
		t.Fatal("rx data wrong")
	}

	// No posted buffer: drop.
	if nb.DeliverRx(c, []byte("lost")) {
		t.Fatal("delivered without a buffer")
	}
	if nb.Stats.RxDropped.Load() != 1 {
		t.Fatalf("drops = %d", nb.Stats.RxDropped.Load())
	}
}

// devFunc adapts a function to PacketDevice.
type devFunc func(c *hw.CPU, data []byte)

func (f devFunc) Transmit(c *hw.CPU, data []byte) { f(c, data) }

func TestMiscHypercalls(t *testing.T) {
	v, d, c := testVMM(t)
	v.HypSchedYield(c, d)
	v.HypStackSwitch(c, d)
	v.HypSetTimer(c, d, c.Now()+500)
	if _, armed := c.LAPIC.NextTimerDeadline(); !armed {
		t.Fatal("HypSetTimer did not arm")
	}
	v.HypTLBFlush(c, d)
	v.HypInvlpg(c, d, 0x1000)
	tb, _ := buildTree(t, v, d, 1)
	if err := v.MirrorPinRoot(c, d, tb.Root); err != nil {
		t.Fatal(err)
	}
	if err := v.MirrorUnpinRoot(c, d, tb.Root); err != nil {
		t.Fatal(err)
	}
	if err := v.DestroyDomain(99); err == nil {
		t.Fatal("destroyed nonexistent domain")
	}
}
