package xen

import (
	"sync"

	"repro/internal/hw"
)

// Ring is a shared-memory I/O ring in the style of Xen's ring.h: a fixed
// capacity ring of requests flowing frontend->backend and responses
// flowing back, with free-running producer/consumer indices. The split
// device model (§5.2) moves all domU device traffic through rings like
// this one.
//
// Req and Resp are the per-device request/response types. Every put/get
// charges the shared-memory access cost on the calling CPU.
type Ring[Req any, Resp any] struct {
	mu  sync.Mutex
	cap uint32

	reqs  []Req
	resps []Resp

	reqProd, reqCons   uint32
	respProd, respCons uint32

	costs *hw.CostModel
}

// DefaultRingSize is the entry count of each direction of a ring. Real
// Xen rings hold 32 slots, but each block request carries up to 11
// segments; one slot here moves a single page, so the larger count
// models the same per-notification batch.
const DefaultRingSize = 256

// NewRing builds a ring with the given capacity (power of two).
func NewRing[Req any, Resp any](capacity int, costs *hw.CostModel) *Ring[Req, Resp] {
	if capacity == 0 {
		capacity = DefaultRingSize
	}
	if capacity&(capacity-1) != 0 {
		panic("xen: ring capacity must be a power of two")
	}
	return &Ring[Req, Resp]{
		cap:   uint32(capacity),
		reqs:  make([]Req, capacity),
		resps: make([]Resp, capacity),
		costs: costs,
	}
}

// PutRequest enqueues a request; false if the ring is full.
func (r *Ring[Req, Resp]) PutRequest(c *hw.CPU, q Req) bool {
	c.Charge(r.costs.RingPut)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.reqProd-r.reqCons == r.cap {
		return false
	}
	r.reqs[r.reqProd&(r.cap-1)] = q
	r.reqProd++
	return true
}

// GetRequest dequeues the next request; false if none.
func (r *Ring[Req, Resp]) GetRequest(c *hw.CPU) (Req, bool) {
	c.Charge(r.costs.RingGet)
	r.mu.Lock()
	defer r.mu.Unlock()
	var zero Req
	if r.reqCons == r.reqProd {
		return zero, false
	}
	q := r.reqs[r.reqCons&(r.cap-1)]
	r.reqCons++
	return q, true
}

// PutResponse enqueues a response; false if the ring is full.
func (r *Ring[Req, Resp]) PutResponse(c *hw.CPU, s Resp) bool {
	c.Charge(r.costs.RingPut)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.respProd-r.respCons == r.cap {
		return false
	}
	r.resps[r.respProd&(r.cap-1)] = s
	r.respProd++
	return true
}

// GetResponse dequeues the next response; false if none.
func (r *Ring[Req, Resp]) GetResponse(c *hw.CPU) (Resp, bool) {
	c.Charge(r.costs.RingGet)
	r.mu.Lock()
	defer r.mu.Unlock()
	var zero Resp
	if r.respCons == r.respProd {
		return zero, false
	}
	s := r.resps[r.respCons&(r.cap-1)]
	r.respCons++
	return s, true
}

// RequestsPending reports queued, unconsumed requests.
func (r *Ring[Req, Resp]) RequestsPending(c *hw.CPU) int {
	c.Charge(r.costs.MemRead)
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.reqProd - r.reqCons)
}

// ResponsesPending reports queued, unconsumed responses.
func (r *Ring[Req, Resp]) ResponsesPending(c *hw.CPU) int {
	c.Charge(r.costs.MemRead)
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.respProd - r.respCons)
}
