package xen

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/hw"
)

// XenStore is the hierarchical control-plane registry split drivers
// negotiate through: backends publish ring references, event-channel
// ports and state under per-domain paths; frontends read them and watch
// for state changes. After a migration the frontend re-reads its keys to
// reconnect to the new backend (§5.2: "the frontend drivers reconnect
// themselves to the new backend drivers on the new host machine").
type XenStore struct {
	mu      sync.Mutex
	root    *xsNode
	watches map[string][]func(path, value string)
}

type xsNode struct {
	children map[string]*xsNode
	value    string
}

// NewXenStore builds an empty store.
func NewXenStore() *XenStore {
	return &XenStore{
		root:    &xsNode{children: make(map[string]*xsNode)},
		watches: make(map[string][]func(path, value string)),
	}
}

// split normalizes a path into components.
func xsSplit(path string) []string {
	var out []string
	for _, p := range strings.Split(path, "/") {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Write sets path to value, creating intermediate directories, and fires
// watches on the path and its ancestors.
func (x *XenStore) Write(c *hw.CPU, path, value string) {
	if c != nil {
		c.Charge(c.M.Costs.MemWrite * 8)
	}
	x.mu.Lock()
	n := x.root
	for _, part := range xsSplit(path) {
		next, ok := n.children[part]
		if !ok {
			next = &xsNode{children: make(map[string]*xsNode)}
			n.children[part] = next
		}
		n = next
	}
	n.value = value
	// Collect watchers under the lock, fire outside it.
	var fire []func(path, value string)
	prefix := ""
	for _, part := range append([]string{""}, xsSplit(path)...) {
		if part != "" {
			prefix += "/" + part
		}
		key := prefix
		if key == "" {
			key = "/"
		}
		fire = append(fire, x.watches[key]...)
	}
	x.mu.Unlock()
	for _, f := range fire {
		f(path, value)
	}
}

// Read returns the value at path.
func (x *XenStore) Read(c *hw.CPU, path string) (string, error) {
	if c != nil {
		c.Charge(c.M.Costs.MemRead * 8)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	n := x.root
	for _, part := range xsSplit(path) {
		next, ok := n.children[part]
		if !ok {
			return "", fmt.Errorf("xenstore: %s: no such key", path)
		}
		n = next
	}
	return n.value, nil
}

// List returns the sorted child names of a directory.
func (x *XenStore) List(c *hw.CPU, path string) ([]string, error) {
	if c != nil {
		c.Charge(c.M.Costs.MemRead * 8)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	n := x.root
	for _, part := range xsSplit(path) {
		next, ok := n.children[part]
		if !ok {
			return nil, fmt.Errorf("xenstore: %s: no such key", path)
		}
		n = next
	}
	out := make([]string, 0, len(n.children))
	for name := range n.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Rm removes a subtree.
func (x *XenStore) Rm(c *hw.CPU, path string) error {
	if c != nil {
		c.Charge(c.M.Costs.MemWrite * 4)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	parts := xsSplit(path)
	if len(parts) == 0 {
		return fmt.Errorf("xenstore: cannot remove the root")
	}
	n := x.root
	for _, part := range parts[:len(parts)-1] {
		next, ok := n.children[part]
		if !ok {
			return fmt.Errorf("xenstore: %s: no such key", path)
		}
		n = next
	}
	if _, ok := n.children[parts[len(parts)-1]]; !ok {
		return fmt.Errorf("xenstore: %s: no such key", path)
	}
	delete(n.children, parts[len(parts)-1])
	return nil
}

// Watch registers fn to fire whenever path or anything below it is
// written. fn runs on the writer's goroutine, as a xenstored callback
// would on its connection.
func (x *XenStore) Watch(path string, fn func(path, value string)) {
	x.mu.Lock()
	defer x.mu.Unlock()
	key := "/" + strings.Join(xsSplit(path), "/")
	x.watches[key] = append(x.watches[key], fn)
}

// Canonical device paths.

// DevicePath returns the frontend's directory for a device class.
func DevicePath(fe DomID, class string) string {
	return fmt.Sprintf("/local/domain/%d/device/%s/0", fe, class)
}

// BackendPath returns the backend's directory for a device it serves.
func BackendPath(be, fe DomID, class string) string {
	return fmt.Sprintf("/local/domain/%d/backend/%s/%d/0", be, class, fe)
}

// Device states, following xenbus.
const (
	XsStateInitialising = "1"
	XsStateInitWait     = "2"
	XsStateConnected    = "4"
	XsStateClosed       = "6"
)
