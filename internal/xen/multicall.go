package xen

import (
	"fmt"

	"repro/internal/hw"
)

// The multicall interface (Xen's HYPERVISOR_multicall): a guest hands
// the VMM a heterogeneous list of operations and pays the world switch
// and hypercall base cost ONCE for the whole batch, plus a small
// per-op dispatch cost inside the VMM. This is Xen's real defense
// against the hypercall tax on PTE-write storms — fork's page-table
// copy, exec's teardown/rebuild, an attach's pin ladder — and the
// substrate for vo.Virtual's lazy-MMU batching (the Linux xen_mc_batch
// pattern; see internal/vo).
//
// Flush deferral: a batch may contain any number of MCTLBFlush
// requests, but the VMM coalesces them to AT MOST ONE hardware flush,
// executed after the last op of the batch. An MCNewBaseptr later in
// the batch cancels a pending flush — the CR3 load flushes the TLB
// anyway. The coalesced flush runs even when an op fails mid-batch, so
// a partially applied batch can never leave a stale translation live.

// MCOpKind discriminates one multicall operation.
type MCOpKind uint8

const (
	// MCUpdate is one mmu_update entry store (validate + apply).
	MCUpdate MCOpKind = iota
	// MCPin is MMUEXT_PIN_L2_TABLE for Root.
	MCPin
	// MCUnpin is MMUEXT_UNPIN_TABLE for Root.
	MCUnpin
	// MCNewBaseptr is MMUEXT_NEW_BASEPTR: install Root as the guest
	// page-directory base (auto-pinning it first, as Xen does). Clears
	// any pending deferred TLB flush — the CR3 load already flushes.
	MCNewBaseptr
	// MCStackSwitch is stack_switch plus the vcpu state swap of a
	// paravirtual context switch.
	MCStackSwitch
	// MCTLBFlush requests a local TLB flush, deferred and coalesced to
	// at most one per batch.
	MCTLBFlush
	// MCInvlpg invalidates the single translation for VA.
	MCInvlpg
	// MCSetTrapTable registers the guest exception handlers in Traps.
	MCSetTrapTable
	// MCBindVirqTimer binds the virtual timer interrupt to Timer.
	MCBindVirqTimer
	// MCEvtchnSend rings the event channel Port. Inside the batch it
	// only marks the remote port pending; the upcalls for every kicked
	// domain are delivered once, after the batch commits — this is how
	// a multi-queue frontend folds all its queue doorbells into one
	// VMM entry.
	MCEvtchnSend
)

// String names the op kind (error messages, traces).
func (k MCOpKind) String() string {
	switch k {
	case MCUpdate:
		return "mmu_update"
	case MCPin:
		return "pin"
	case MCUnpin:
		return "unpin"
	case MCNewBaseptr:
		return "new_baseptr"
	case MCStackSwitch:
		return "stack_switch"
	case MCTLBFlush:
		return "tlb_flush"
	case MCInvlpg:
		return "invlpg"
	case MCSetTrapTable:
		return "set_trap_table"
	case MCBindVirqTimer:
		return "bind_virq_timer"
	case MCEvtchnSend:
		return "evtchn_send"
	}
	return fmt.Sprintf("mc_op(%d)", uint8(k))
}

// MCOp is one operation in a multicall batch. Only the fields the Kind
// consumes are meaningful.
type MCOp struct {
	Kind   MCOpKind
	Update MMUUpdate     // MCUpdate
	Root   hw.PFN        // MCPin, MCUnpin, MCNewBaseptr
	VA     hw.VirtAddr   // MCInvlpg
	Traps  []TrapEntry   // MCSetTrapTable
	Timer  func(*hw.CPU) // MCBindVirqTimer
	Port   Port          // MCEvtchnSend
}

// Multicall is a reusable batch of operations. The zero value is ready
// to use; Reset keeps the backing array so a warmed batch enqueues and
// flushes without allocating.
type Multicall struct {
	Ops []MCOp

	// Applied is set by HypMulticall: the number of ops that executed
	// successfully. On success Applied == len(Ops); after a mid-batch
	// error it is the length of the applied prefix, which is what a
	// transactional caller must unwind.
	Applied int

	// kicked collects the distinct domains whose ports MCEvtchnSend
	// ops marked pending; HypMulticall delivers their upcalls after
	// the MMU lock drops (delivering under the lock would deadlock:
	// backend handlers take it again for grant maps).
	kicked []*Domain
}

// Reset empties the batch, keeping capacity.
func (m *Multicall) Reset() {
	for i := range m.Ops {
		m.Ops[i] = MCOp{} // drop Traps/Timer references
	}
	m.Ops = m.Ops[:0]
	m.Applied = 0
	for i := range m.kicked {
		m.kicked[i] = nil
	}
	m.kicked = m.kicked[:0]
}

// Len returns the number of enqueued ops.
func (m *Multicall) Len() int { return len(m.Ops) }

// AddUpdate enqueues one mmu_update entry store.
func (m *Multicall) AddUpdate(u MMUUpdate) {
	m.Ops = append(m.Ops, MCOp{Kind: MCUpdate, Update: u})
}

// AddPin enqueues MMUEXT_PIN_L2_TABLE.
func (m *Multicall) AddPin(root hw.PFN) {
	m.Ops = append(m.Ops, MCOp{Kind: MCPin, Root: root})
}

// AddUnpin enqueues MMUEXT_UNPIN_TABLE.
func (m *Multicall) AddUnpin(root hw.PFN) {
	m.Ops = append(m.Ops, MCOp{Kind: MCUnpin, Root: root})
}

// AddNewBaseptr enqueues MMUEXT_NEW_BASEPTR.
func (m *Multicall) AddNewBaseptr(root hw.PFN) {
	m.Ops = append(m.Ops, MCOp{Kind: MCNewBaseptr, Root: root})
}

// AddStackSwitch enqueues the context-switch stack/vcpu state swap.
func (m *Multicall) AddStackSwitch() {
	m.Ops = append(m.Ops, MCOp{Kind: MCStackSwitch})
}

// AddTLBFlush enqueues a (deferred, coalesced) local TLB flush.
func (m *Multicall) AddTLBFlush() {
	m.Ops = append(m.Ops, MCOp{Kind: MCTLBFlush})
}

// AddInvlpg enqueues a single-page invalidation.
func (m *Multicall) AddInvlpg(va hw.VirtAddr) {
	m.Ops = append(m.Ops, MCOp{Kind: MCInvlpg, VA: va})
}

// AddSetTrapTable enqueues guest trap-table registration.
func (m *Multicall) AddSetTrapTable(entries []TrapEntry) {
	m.Ops = append(m.Ops, MCOp{Kind: MCSetTrapTable, Traps: entries})
}

// AddBindVirqTimer enqueues the virtual-timer binding.
func (m *Multicall) AddBindVirqTimer(h func(*hw.CPU)) {
	m.Ops = append(m.Ops, MCOp{Kind: MCBindVirqTimer, Timer: h})
}

// AddEvtchnSend enqueues an event-channel doorbell on p.
func (m *Multicall) AddEvtchnSend(p Port) {
	m.Ops = append(m.Ops, MCOp{Kind: MCEvtchnSend, Port: p})
}

// HypMulticall executes the batch in one world switch: one
// WorldSwitch + HypercallBase for the entry, MulticallPerOp per op for
// the VMM's dispatch, and each op's own validation costs — instead of
// the per-op WorldSwitch + HypercallBase an unbatched stream pays.
//
// Execution stops at the first failing op; m.Applied reports the
// length of the successfully applied prefix either way. A deferred TLB
// flush requested by any applied op is executed even on the error
// path, before returning.
func (v *VMM) HypMulticall(c *hw.CPU, d *Domain, m *Multicall) error {
	m.Applied = 0
	m.kicked = m.kicked[:0]
	if len(m.Ops) == 0 {
		return nil
	}
	fr := v.enterFast(c, d)
	defer v.exitFast(c, d, fr)
	v.Stats.Multicalls.Add(1)
	v.Stats.MulticallOps.Add(uint64(len(m.Ops)))
	if d != nil {
		d.Stats.Multicalls.Add(1)
		d.Stats.MulticallOps.Add(uint64(len(m.Ops)))
	}
	v.traceEmit(c, TrcMulticall, d, uint64(len(m.Ops)))
	if fr.h != nil {
		fr.h.multicalls.Inc()
		fr.h.multicallOps.Add(uint64(len(m.Ops)))
	}
	v.lockMMU(c)
	err := v.multicallLocked(c, d, m)
	v.unlockMMU()
	// Deliver the upcalls for every domain an MCEvtchnSend kicked, now
	// that the MMU lock has dropped: the handlers are backend drains
	// that map grants, which takes the lock again.
	for _, rd := range m.kicked {
		v.maybeDeliverUpcall(c, rd)
	}
	return err
}

// multicallLocked dispatches the ops (MMU lock held, PL0).
func (v *VMM) multicallLocked(c *hw.CPU, d *Domain, m *Multicall) error {
	flushPending := false
	var err error
	for i := range m.Ops {
		op := &m.Ops[i]
		c.Charge(v.M.Costs.MulticallPerOp)
		switch op.Kind {
		case MCUpdate:
			err = v.applyUpdate(c, d, op.Update, true)
		case MCPin:
			err = v.pinTable(c, d, op.Root, true)
		case MCUnpin:
			err = v.unpinTable(c, d, op.Root, true)
		case MCNewBaseptr:
			if err = v.newBaseptrLocked(c, d, op.Root); err == nil {
				// The CR3 load flushed the TLB; a flush requested
				// earlier in the batch is already satisfied.
				flushPending = false
			}
		case MCStackSwitch:
			c.Charge(v.M.Costs.MemWrite * 2)    // stack switch bookkeeping
			c.Charge(v.M.Costs.VCPUStateSwitch) // segment/LDT/FPU state swap
		case MCTLBFlush:
			flushPending = true
		case MCInvlpg:
			c.TLB.Invalidate(hw.VPNOf(op.VA))
			c.Charge(v.M.Costs.PrivInsn)
		case MCSetTrapTable:
			for _, e := range op.Traps {
				c.Charge(v.M.Costs.MemWrite)
				d.TrapTable[e.Vector] = GuestGate{Present: true, Handler: e.Handler}
			}
		case MCBindVirqTimer:
			d.TimerHandler = op.Timer
		case MCEvtchnSend:
			err = v.evtchnMarkPending(c, d, op.Port, m)
		default:
			err = fmt.Errorf("xen: multicall: unknown op kind %d", op.Kind)
		}
		if err != nil {
			err = fmt.Errorf("xen: multicall op %d (%s): %w", i, op.Kind, err)
			break
		}
		m.Applied++
	}
	if flushPending {
		c.TLB.Flush()
		c.Charge(v.M.Costs.TLBFlush)
	}
	return err
}
