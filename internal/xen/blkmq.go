package xen

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/hw"
	"repro/internal/obs"
)

// BlkMQQueue is one hardware queue of a multi-queue block device: its
// own IORing with independent producer/consumer indices, its own
// doorbell pair, and reusable burst buffers so the serving loop
// allocates nothing at steady state.
type BlkMQQueue struct {
	ID   int
	Ring *IORing[BlkRequest, BlkResponse]

	// RespKick rings the frontend's completion doorbell (nil = the
	// frontend polls). The backend calls it only when the event-index
	// protocol says the frontend asked to be woken.
	RespKick func(c *hw.CPU)

	reqBuf  []BlkRequest
	respBuf []BlkResponse
	refBuf  []GrantRef

	// stalled wedges the queue's consumer (chaos fault injection).
	stalled atomic.Bool

	// Progress snapshot for Audit: consumer index and whether the
	// previous audit saw pending work.
	prevCons   uint32
	auditArmed bool
}

// BlkMQBackend is the driver-domain half of the production block
// datapath: per-vCPU queues drained in bursts, one GrantMapBatch per
// contiguous run, merged submits to the native device, and completion
// doorbells coalesced by the response event index. It serves either
// from doorbell upcalls (OnQueueEvent) or from credit-scheduler slices
// (Serve registered as the driver domain's BackgroundWork) — the poll
// path is also what makes coalescing thresholds > 1 live.
type BlkMQBackend struct {
	V   *VMM
	Dom *Domain // driver domain
	Dev BlockDevice

	Queues []*BlkMQQueue

	// ReqThreshold is the request-doorbell re-arm distance: after a
	// drain the backend asks to be kicked only once this many requests
	// queue up. 1 = classic Xen wake-on-first; depth/4 is the datapath
	// default set by callers.
	ReqThreshold int

	Stats BlkMQStats
}

// BlkMQStats counts backend activity across all queues (atomic: queue
// events may be dispatched on any CPU).
type BlkMQStats struct {
	Requests       atomic.Uint64
	Bursts         atomic.Uint64
	Merges         atomic.Uint64
	Events         atomic.Uint64
	RespKicks      atomic.Uint64
	RespSuppressed atomic.Uint64
}

// NewBlkMQBackend builds queues rings of depth slots each, serving dev
// from dom. Frontend wiring (ports, kick closures) is the caller's.
func NewBlkMQBackend(v *VMM, dom *Domain, dev BlockDevice, queues, depth, reqThreshold int) *BlkMQBackend {
	if queues < 1 {
		queues = 1
	}
	if reqThreshold < 1 {
		reqThreshold = 1
	}
	be := &BlkMQBackend{V: v, Dom: dom, Dev: dev, ReqThreshold: reqThreshold}
	for i := 0; i < queues; i++ {
		q := &BlkMQQueue{
			ID:   i,
			Ring: NewIORing[BlkRequest, BlkResponse](depth, v.M.Costs),
		}
		q.reqBuf = make([]BlkRequest, q.Ring.Capacity())
		q.respBuf = make([]BlkResponse, 0, q.Ring.Capacity())
		q.refBuf = make([]GrantRef, 0, q.Ring.Capacity())
		be.Queues = append(be.Queues, q)
	}
	return be
}

// OnQueueEvent returns the doorbell handler for queue qi, suitable for
// SetPortHandler on the driver domain's per-queue event port.
func (be *BlkMQBackend) OnQueueEvent(qi int) func(c *hw.CPU) {
	q := be.Queues[qi]
	return func(c *hw.CPU) {
		be.Stats.Events.Add(1)
		be.PollQueue(c, q)
	}
}

// Serve drains every queue until nothing is pending or the cycle budget
// is spent. Registered as the driver domain's BackgroundWork, it is the
// backend loop scheduled as a real domain: the credit scheduler hands
// it slices, and suppressed doorbells are picked up here.
func (be *BlkMQBackend) Serve(c *hw.CPU, budget hw.Cycles) {
	deadline := c.Now() + budget
	for {
		n := 0
		for _, q := range be.Queues {
			n += be.PollQueue(c, q)
		}
		if n == 0 || c.Now() >= deadline {
			return
		}
	}
}

// PollQueue drains one queue to empty: take a burst, serve it, push the
// completions, and re-arm the request doorbell with the coalescing
// threshold. The FINAL CHECK loop guarantees no request pushed against
// the old wake mark is stranded. Returns requests served.
func (be *BlkMQBackend) PollQueue(c *hw.CPU, q *BlkMQQueue) int {
	if q.stalled.Load() {
		return 0
	}
	h := be.V.tel()
	total := 0
	for {
		if h != nil {
			h.ringDepth.Observe(uint64(q.Ring.RequestsPending()))
		}
		n := q.Ring.TakeRequests(c, q.reqBuf)
		if n == 0 {
			if !q.Ring.FinishRequestConsume(c, be.ReqThreshold) {
				return total
			}
			continue
		}
		be.serveBurst(c, q, q.reqBuf[:n])
		total += n
	}
}

// serveBurst sorts one drained burst, maps each contiguous run's grants
// in a single batched grant_table_op, issues merged transfers, and
// pushes all completions with one doorbell decision.
func (be *BlkMQBackend) serveBurst(c *hw.CPU, q *BlkMQQueue, reqs []BlkRequest) {
	var sp obs.SpanRef
	h := be.V.tel()
	if h != nil {
		h.blkRequests.Add(uint64(len(reqs)))
		h.ringBurst.Observe(uint64(len(reqs)))
		sp = obs.Begin(h.col, c.ID, c.Now(), "xen/blkmq-burst")
		defer sp.EndArg(c.Now(), uint64(len(reqs)))
	}
	be.Stats.Requests.Add(uint64(len(reqs)))
	be.Stats.Bursts.Add(1)

	sort.Slice(reqs, func(i, j int) bool { return reqs[i].Block < reqs[j].Block })
	q.respBuf = q.respBuf[:0]
	for start := 0; start < len(reqs); {
		end := start + 1
		for end < len(reqs) &&
			reqs[end].Write == reqs[start].Write &&
			reqs[end].Front == reqs[start].Front &&
			reqs[end].Block == reqs[end-1].Block+1 {
			end++
		}
		run := reqs[start:end]
		if len(run) > 1 {
			be.Stats.Merges.Add(uint64(len(run) - 1))
		}
		be.serveRun(c, q, run)
		start = end
	}
	if notify := q.Ring.PushResponses(c, q.respBuf); notify {
		be.Stats.RespKicks.Add(1)
		if h != nil {
			h.ringKicks.Inc()
		}
		if q.RespKick != nil {
			q.RespKick(c)
		}
	} else {
		be.Stats.RespSuppressed.Add(1)
		if h != nil {
			h.ringSuppressed.Inc()
		}
	}
}

// serveRun maps, transfers, and completes one contiguous run. All
// responses land in q.respBuf; the caller pushes them.
func (be *BlkMQBackend) serveRun(c *hw.CPU, q *BlkMQQueue, run []BlkRequest) {
	fail := func(msg string) {
		for _, r := range run {
			q.respBuf = append(q.respBuf, BlkResponse{ID: r.ID, Err: msg})
		}
	}
	q.refBuf = q.refBuf[:0]
	for _, r := range run {
		q.refBuf = append(q.refBuf, r.Grant)
	}
	pfns, unmap, err := be.V.GrantMapBatch(c, be.Dom, run[0].Front, q.refBuf)
	if err != nil {
		fail(err.Error())
		return
	}
	defer unmap()
	buf := make([]byte, len(run)*hw.BlockSize)
	if run[0].Write {
		for i, pfn := range pfns {
			c.Charge(be.V.M.Costs.PageCopy)
			copy(buf[i*hw.BlockSize:(i+1)*hw.BlockSize], be.V.M.Mem.FrameBytes(pfn))
		}
	}
	if err := be.Dev.Submit(c, hw.DiskRequest{
		Block:  run[0].Block,
		Write:  run[0].Write,
		Blocks: len(run),
		Merged: len(run),
	}, buf); err != nil {
		fail(err.Error())
		return
	}
	if !run[0].Write {
		for i, pfn := range pfns {
			c.Charge(be.V.M.Costs.PageCopy)
			copy(be.V.M.Mem.FrameBytes(pfn), buf[i*hw.BlockSize:(i+1)*hw.BlockSize])
		}
	}
	for _, r := range run {
		q.respBuf = append(q.respBuf, BlkResponse{ID: r.ID})
	}
}

// Pending sums queued, unserved requests across all queues.
func (be *BlkMQBackend) Pending() int {
	n := 0
	for _, q := range be.Queues {
		n += q.Ring.RequestsPending()
	}
	return n
}

// StallQueue wedges (or unwedges) one queue's consumer — chaos fault
// injection for the ring-stall class.
func (be *BlkMQBackend) StallQueue(qi int, on bool) {
	be.Queues[qi].stalled.Store(on)
}

// Audit is the progress detector behind the chaos ring-stall fault: a
// queue with pending requests whose consumer index has not moved since
// the previous audit is stalled. Returns "" when every queue is making
// progress; call it at least twice with service attempts in between.
func (be *BlkMQBackend) Audit() string {
	for _, q := range be.Queues {
		pending := q.Ring.RequestsPending()
		cons := q.Ring.ReqConsumerIndex()
		if pending > 0 && q.auditArmed && cons == q.prevCons {
			return fmt.Sprintf("ring stall: queue %d has %d requests pending, consumer idle at index %d",
				q.ID, pending, cons)
		}
		q.prevCons = cons
		q.auditArmed = pending > 0
	}
	return ""
}
