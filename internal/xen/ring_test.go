package xen

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/hw"
)

func ringCPU() *hw.CPU {
	m := hw.NewMachine(hw.Config{MemBytes: 4 << 20, NumCPUs: 1})
	return m.BootCPU()
}

func TestRingFIFO(t *testing.T) {
	c := ringCPU()
	r := NewRing[int, int](8, c.M.Costs)
	for i := 0; i < 8; i++ {
		if !r.PutRequest(c, i) {
			t.Fatalf("put %d failed", i)
		}
	}
	if r.PutRequest(c, 99) {
		t.Fatal("overfilled ring")
	}
	for i := 0; i < 8; i++ {
		v, ok := r.GetRequest(c)
		if !ok || v != i {
			t.Fatalf("get %d = (%d,%v)", i, v, ok)
		}
	}
	if _, ok := r.GetRequest(c); ok {
		t.Fatal("get from empty ring")
	}
}

func TestRingResponsesIndependent(t *testing.T) {
	c := ringCPU()
	r := NewRing[int, string](8, c.M.Costs)
	r.PutRequest(c, 1)
	r.PutResponse(c, "a")
	if n := r.RequestsPending(c); n != 1 {
		t.Fatalf("requests pending = %d", n)
	}
	if n := r.ResponsesPending(c); n != 1 {
		t.Fatalf("responses pending = %d", n)
	}
	s, ok := r.GetResponse(c)
	if !ok || s != "a" {
		t.Fatal("response lost")
	}
}

func TestRingWrapAround(t *testing.T) {
	c := ringCPU()
	r := NewRing[int, int](4, c.M.Costs)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if !r.PutRequest(c, round*10+i) {
				t.Fatal("put failed")
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := r.GetRequest(c)
			if !ok || v != round*10+i {
				t.Fatalf("round %d: get = (%d,%v)", round, v, ok)
			}
		}
	}
}

// Property: a concurrent producer and consumer neither lose nor
// duplicate requests.
func TestRingConcurrentIntegrity(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n)%200 + 1
		m := hw.NewMachine(hw.Config{MemBytes: 4 << 20, NumCPUs: 2})
		r := NewRing[int, int](32, m.Costs)
		prod, cons := m.CPUs[0], m.CPUs[1]
		var got []int
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < count; {
				if r.PutRequest(prod, i) {
					i++
				}
			}
		}()
		go func() {
			defer wg.Done()
			for len(got) < count {
				if v, ok := r.GetRequest(cons); ok {
					got = append(got, v)
				}
			}
		}()
		wg.Wait()
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRingCapacityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-power-of-two capacity")
		}
	}()
	NewRing[int, int](5, hw.DefaultCosts())
}
