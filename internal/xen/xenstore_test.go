package xen

import (
	"testing"

	"repro/internal/hw"
)

func xsCPU() *hw.CPU {
	m := hw.NewMachine(hw.Config{MemBytes: 4 << 20, NumCPUs: 1})
	return m.BootCPU()
}

func TestXenStoreReadWrite(t *testing.T) {
	x := NewXenStore()
	c := xsCPU()
	x.Write(c, "/local/domain/1/device/vbd/0/state", XsStateConnected)
	got, err := x.Read(c, "/local/domain/1/device/vbd/0/state")
	if err != nil || got != XsStateConnected {
		t.Fatalf("read = %q, %v", got, err)
	}
	if _, err := x.Read(c, "/no/such/key"); err == nil {
		t.Fatal("missing key read succeeded")
	}
	// Overwrite.
	x.Write(c, "/local/domain/1/device/vbd/0/state", XsStateClosed)
	if got, _ := x.Read(c, "/local/domain/1/device/vbd/0/state"); got != XsStateClosed {
		t.Fatalf("overwrite lost: %q", got)
	}
}

func TestXenStoreList(t *testing.T) {
	x := NewXenStore()
	c := xsCPU()
	x.Write(c, "/a/z", "1")
	x.Write(c, "/a/b", "2")
	x.Write(c, "/a/m/deep", "3")
	names, err := x.List(c, "/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "b" || names[1] != "m" || names[2] != "z" {
		t.Fatalf("list = %v", names)
	}
	if _, err := x.List(c, "/missing"); err == nil {
		t.Fatal("list of missing dir succeeded")
	}
}

func TestXenStoreRm(t *testing.T) {
	x := NewXenStore()
	c := xsCPU()
	x.Write(c, "/a/b/c", "1")
	if err := x.Rm(c, "/a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := x.Read(c, "/a/b/c"); err == nil {
		t.Fatal("removed subtree still readable")
	}
	if err := x.Rm(c, "/a/b"); err == nil {
		t.Fatal("double remove succeeded")
	}
}

func TestXenStoreWatch(t *testing.T) {
	x := NewXenStore()
	c := xsCPU()
	var events []string
	x.Watch("/local/domain/2/device", func(path, value string) {
		events = append(events, path+"="+value)
	})
	x.Write(c, "/local/domain/2/device/vif/0/state", XsStateInitWait)
	x.Write(c, "/local/domain/3/device/vif/0/state", XsStateInitWait) // other domain
	x.Write(c, "/local/domain/2/device/vif/0/state", XsStateConnected)
	if len(events) != 2 {
		t.Fatalf("watch fired %d times: %v", len(events), events)
	}
	if events[1] != "/local/domain/2/device/vif/0/state="+XsStateConnected {
		t.Fatalf("event = %s", events[1])
	}
}

func TestXenStorePathHelpers(t *testing.T) {
	if DevicePath(3, "vbd") != "/local/domain/3/device/vbd/0" {
		t.Fatal(DevicePath(3, "vbd"))
	}
	if BackendPath(0, 3, "vif") != "/local/domain/0/backend/vif/3/0" {
		t.Fatal(BackendPath(0, 3, "vif"))
	}
}
