package xen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hw"
)

// shadowVMM builds an active shadow-mode VMM with one domain.
func shadowVMM(t *testing.T) (*VMM, *Domain, *hw.CPU) {
	t.Helper()
	v, d, c := testVMM(t)
	v.ShadowMode = true
	return v, d, c
}

func TestShadowBuiltOnPin(t *testing.T) {
	v, d, c := shadowVMM(t)
	tb, _ := buildTree(t, v, d, 6)
	if err := v.HypPinTable(c, d, tb.Root); err != nil {
		t.Fatal(err)
	}
	if err := v.VerifyShadow(d, tb.Root); err != nil {
		t.Fatal(err)
	}
	if v.ShadowFramesInUse() == 0 {
		t.Fatal("no shadow frames allocated")
	}
}

func TestShadowCR3IsNotGuestRoot(t *testing.T) {
	v, d, c := shadowVMM(t)
	tb, _ := buildTree(t, v, d, 2)
	if err := v.HypNewBaseptr(c, d, tb.Root); err != nil {
		t.Fatal(err)
	}
	if c.ReadCR3() == tb.Root {
		t.Fatal("hardware runs on the guest root in shadow mode")
	}
	if d.VCPU0().CR3() != tb.Root {
		t.Fatal("vcpu must record the guest root")
	}
	// The hardware walker resolves through the shadow.
	w, ok := hw.Walk(v.M.Mem, c.ReadCR3(), 0x0800_0000)
	if !ok {
		t.Fatal("shadow does not walk")
	}
	gw, _ := hw.Walk(v.M.Mem, tb.Root, 0x0800_0000)
	if w.PTE.Frame() != gw.PTE.Frame() {
		t.Fatal("shadow walk disagrees with guest walk")
	}
}

func TestShadowWriteThrough(t *testing.T) {
	v, d, c := shadowVMM(t)
	tb, _ := buildTree(t, v, d, 2)
	if err := v.HypPinTable(c, d, tb.Root); err != nil {
		t.Fatal(err)
	}
	// Update a leaf through mmu_update; the shadow must follow.
	s, _ := tb.ExistingSlot(0x0800_0000)
	fresh := d.Frames.Alloc()
	if err := v.HypMMUUpdate(c, d, []MMUUpdate{{Table: s.Table, Index: s.Index,
		New: hw.MakePTE(fresh, hw.PTEPresent|hw.PTEWrite|hw.PTEUser)}}); err != nil {
		t.Fatal(err)
	}
	if err := v.VerifyShadow(d, tb.Root); err != nil {
		t.Fatal(err)
	}
	// Add a brand-new second-level table; the shadow grows one too.
	pt2 := d.Frames.Alloc()
	v.M.Mem.ZeroFrame(pt2)
	if err := v.HypMMUUpdate(c, d, []MMUUpdate{{Table: tb.Root, Index: 300,
		New: hw.MakePTE(pt2, hw.PTEPresent|hw.PTEWrite|hw.PTEUser)}}); err != nil {
		t.Fatal(err)
	}
	if err := v.VerifyShadow(d, tb.Root); err != nil {
		t.Fatal(err)
	}
}

func TestShadowDroppedOnUnpin(t *testing.T) {
	v, d, c := shadowVMM(t)
	tb, _ := buildTree(t, v, d, 4)
	before := v.ShadowFramesInUse()
	if err := v.HypPinTable(c, d, tb.Root); err != nil {
		t.Fatal(err)
	}
	if v.ShadowFramesInUse() <= before {
		t.Fatal("pin allocated no shadow frames")
	}
	if err := v.HypUnpinTable(c, d, tb.Root); err != nil {
		t.Fatal(err)
	}
	if got := v.ShadowFramesInUse(); got != before {
		t.Fatalf("shadow frames leaked: %d -> %d", before, got)
	}
}

func TestShadowAttachCostExceedsDirect(t *testing.T) {
	// The §3.2.2 claim: shadow mode makes the (re)validation path more
	// expensive because every entry must also be translated into a
	// fresh shadow.
	run := func(shadow bool) hw.Cycles {
		v, d, c := testVMM(t)
		v.ShadowMode = shadow
		tb, _ := buildTree(t, v, d, 64)
		start := c.Now()
		if err := v.RecomputeFrameInfo(c, d, []hw.PFN{tb.Root}); err != nil {
			t.Fatal(err)
		}
		return c.Now() - start
	}
	direct := run(false)
	shadow := run(true)
	if shadow <= direct {
		t.Fatalf("shadow attach (%d) not dearer than direct (%d)", shadow, direct)
	}
}

// Property: after a random stream of validated updates, the shadow is
// coherent with the guest tree.
func TestShadowCoherenceUnderRandomUpdates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v, d, c := testVMM(t)
		v.ShadowMode = true
		tb, _ := buildTree(t, v, d, 8)
		if err := v.HypPinTable(c, d, tb.Root); err != nil {
			return false
		}
		s, _ := tb.ExistingSlot(0x0800_0000)
		for op := 0; op < 120; op++ {
			idx := rng.Intn(64)
			var e hw.PTE
			if rng.Intn(3) != 0 {
				e = hw.MakePTE(d.Frames.Alloc(), hw.PTEPresent|hw.PTEUser)
			}
			if err := v.HypMMUUpdate(c, d,
				[]MMUUpdate{{Table: s.Table, Index: idx, New: e}}); err != nil {
				return false
			}
		}
		return v.VerifyShadow(d, tb.Root) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
