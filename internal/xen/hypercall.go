package xen

import (
	"fmt"

	"repro/internal/hw"
)

// The control-plane hypercalls: trap table registration, context-switch
// assists, scheduling, console I/O and domain control. The MMU family
// lives in mmu.go, event channels in evtchn.go, grants in gnttab.go.

// TrapEntry registers one guest exception handler.
type TrapEntry struct {
	Vector  int
	Handler func(c *hw.CPU, f *hw.TrapFrame)
}

// HypSetTrapTable is set_trap_table: the guest hands the VMM its
// exception entry points so guest-bound traps can be bounced (§5.1.3).
func (v *VMM) HypSetTrapTable(c *hw.CPU, d *Domain, entries []TrapEntry) {
	defer v.enter(c, d)()
	for _, e := range entries {
		c.Charge(v.M.Costs.MemWrite)
		d.TrapTable[e.Vector] = GuestGate{Present: true, Handler: e.Handler}
	}
}

// HypBindVirqTimer binds the virtual timer interrupt to a guest handler.
func (v *VMM) HypBindVirqTimer(c *hw.CPU, d *Domain, h func(c *hw.CPU)) {
	defer v.enter(c, d)()
	d.TimerHandler = h
}

// HypStackSwitch is stack_switch: the deprivileged kernel cannot reload
// its own kernel stack pointer, so context switches make this call.
func (v *VMM) HypStackSwitch(c *hw.CPU, d *Domain) {
	defer v.enter(c, d)()
	c.Charge(v.M.Costs.MemWrite * 2)
}

// HypSetTimer programs the domain's next timer interrupt via the VMM.
func (v *VMM) HypSetTimer(c *hw.CPU, d *Domain, deadline hw.Cycles) {
	defer v.enter(c, d)()
	c.LAPIC.ArmTimer(deadline, hw.VecTimer)
}

// HypSchedYield is sched_op(yield).
func (v *VMM) HypSchedYield(c *hw.CPU, d *Domain) {
	defer v.enter(c, d)()
	c.Charge(v.M.Costs.DomSwitch)
}

// HypSchedBlock is sched_op(block): the vcpu sleeps until an event is
// pending for it.
func (v *VMM) HypSchedBlock(c *hw.CPU, d *Domain) {
	defer v.enter(c, d)()
	c.IdleUntil(func() bool {
		for _, ch := range d.ports {
			if ch.pending {
				return true
			}
		}
		return false
	})
	v.drainPending(c, d)
}

// HypConsoleIO appends to the domain's console buffer.
func (v *VMM) HypConsoleIO(c *hw.CPU, d *Domain, s string) {
	defer v.enter(c, d)()
	c.Charge(hw.Cycles(len(s)) * v.M.Costs.MemWrite)
	v.consoleLog = append(v.consoleLog, fmt.Sprintf("dom%d: %s", d.ID, s))
}

// ConsoleLog returns everything written through HypConsoleIO.
func (v *VMM) ConsoleLog() []string { return v.consoleLog }

// HypDomctlCreate creates a new domain; only the driver domain may call
// it (Mercury in partial-virtual mode uses it to host unmodified guests,
// the M-U configuration).
func (v *VMM) HypDomctlCreate(c *hw.CPU, d *Domain, name string, nframes hw.PFN) (*Domain, error) {
	defer v.enter(c, d)()
	if !d.Privileged {
		return nil, fmt.Errorf("xen: dom%d is not privileged for domctl", d.ID)
	}
	return v.CreateDomain(name, nframes, false)
}

// HypDomctlCreateFromFrames creates a new domain whose memory is donated
// from the calling driver domain's own partition — the path a
// self-virtualized Mercury host uses to host unmodified guests (the M-U
// configuration), since the machine pool was adopted by the running OS.
func (v *VMM) HypDomctlCreateFromFrames(c *hw.CPU, d *Domain, name string, nframes hw.PFN) (*Domain, error) {
	defer v.enter(c, d)()
	if !d.Privileged {
		return nil, fmt.Errorf("xen: dom%d is not privileged for domctl", d.ID)
	}
	part, err := d.Frames.SplitTop(nframes)
	if err != nil {
		return nil, fmt.Errorf("xen: donating dom%d memory: %w", d.ID, err)
	}
	id := v.nextDomID
	v.nextDomID++
	nd := &Domain{
		ID: id, Name: name, VMM: v, Frames: part,
		pinnedRoots: make(map[hw.PFN]bool),
	}
	nd.VCPUs = []*VCPU{newVCPU(nd)}
	lo, hi := part.Range()
	for pfn := lo; pfn < hi; pfn++ {
		v.FT.SetOwner(pfn, id)
	}
	v.Domains[id] = nd
	return nd, nil
}

// HypDomctlDestroy destroys a domain.
func (v *VMM) HypDomctlDestroy(c *hw.CPU, d *Domain, id DomID) error {
	defer v.enter(c, d)()
	if !d.Privileged {
		return fmt.Errorf("xen: dom%d is not privileged for domctl", d.ID)
	}
	if takeInjected(&v.injectDestroyFails) {
		return fmt.Errorf("xen: injected transient failure destroying dom%d", id)
	}
	return v.DestroyDomain(id)
}

// HypDomctlPause pauses a domain (used by checkpoint and the
// stop-and-copy phase of live migration).
func (v *VMM) HypDomctlPause(c *hw.CPU, d *Domain, id DomID) error {
	defer v.enter(c, d)()
	if !d.Privileged {
		return fmt.Errorf("xen: dom%d is not privileged for domctl", d.ID)
	}
	if takeInjected(&v.injectPauseFails) {
		return fmt.Errorf("xen: injected transient failure pausing dom%d", id)
	}
	t, ok := v.Domains[id]
	if !ok {
		return fmt.Errorf("xen: pausing nonexistent dom%d", id)
	}
	t.State = DomPaused
	return nil
}

// HypDomctlUnpause resumes a paused domain.
func (v *VMM) HypDomctlUnpause(c *hw.CPU, d *Domain, id DomID) error {
	defer v.enter(c, d)()
	if !d.Privileged {
		return fmt.Errorf("xen: dom%d is not privileged for domctl", d.ID)
	}
	if takeInjected(&v.injectUnpauseFails) {
		return fmt.Errorf("xen: injected transient failure unpausing dom%d", id)
	}
	t, ok := v.Domains[id]
	if !ok {
		return fmt.Errorf("xen: unpausing nonexistent dom%d", id)
	}
	t.State = DomRunning
	return nil
}

// Emulate charges the trap-and-emulate path for a non-performance-
// critical sensitive instruction (§5.3: such code is not in a VO and
// relies on trap-and-emulation to commit its effect).
func (v *VMM) Emulate(c *hw.CPU, d *Domain, apply func()) {
	c.Charge(v.M.Costs.WorldSwitch + v.M.Costs.FaultBounce)
	if d != nil {
		d.Stats.FaultBounces.Add(1)
	}
	prev := c.SetMode(hw.PL0)
	apply()
	c.SetMode(prev)
}

// HypUpdateDescriptor is update_descriptor: a deprivileged kernel cannot
// write descriptor tables directly, and the VMM validates every update —
// in particular, a guest may never install a descriptor more privileged
// than its own level (DPL < 1), which would be a straight privilege
// escalation.
func (v *VMM) HypUpdateDescriptor(c *hw.CPU, d *Domain, g *hw.GDT, idx int, desc hw.SegDesc) error {
	defer v.enter(c, d)()
	if idx <= 0 || idx >= len(g.Entries) {
		return fmt.Errorf("xen: descriptor index %d out of range", idx)
	}
	if desc.Present && desc.DPL < hw.PL1 && desc.Kind != hw.SegNull {
		return fmt.Errorf("xen: dom%d attempted to install a PL%d descriptor",
			d.ID, desc.DPL)
	}
	// The VMM's own descriptors are immutable from guest context.
	if idx == hw.GDTVMMCode || idx == hw.GDTVMMData {
		return fmt.Errorf("xen: dom%d attempted to modify hypervisor descriptor %d",
			d.ID, idx)
	}
	c.Charge(v.M.Costs.MemWrite * 2)
	g.Entries[idx] = desc
	return nil
}
