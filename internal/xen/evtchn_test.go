package xen

import (
	"testing"

	"repro/internal/hw"
)

// twoDomains builds an active VMM with a privileged driver domain and an
// unprivileged guest.
func twoDomains(t *testing.T) (*VMM, *Domain, *Domain, *hw.CPU) {
	t.Helper()
	m := hw.NewMachine(hw.Config{MemBytes: 32 << 20, NumCPUs: 1})
	v, err := Boot(m)
	if err != nil {
		t.Fatal(err)
	}
	c := m.BootCPU()
	v.Activate(c)
	avail := hw.PFN(m.Frames.Available())
	d0, err := v.CreateDomain("dom0", avail/2, true)
	if err != nil {
		t.Fatal(err)
	}
	dU, err := v.CreateDomain("domU", hw.PFN(m.Frames.Available()), false)
	if err != nil {
		t.Fatal(err)
	}
	v.SetCurrent(c, dU)
	return v, d0, dU, c
}

func TestEvtchnBindAndSend(t *testing.T) {
	v, d0, dU, c := twoDomains(t)
	fired := 0
	p0 := v.EvtchnAllocUnbound(c, d0, dU.ID)
	d0.SetPortHandler(p0, func(cc *hw.CPU) { fired++ })
	pU, err := v.EvtchnBindInterdomain(c, dU, d0.ID, p0)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.EvtchnSend(c, dU, pU); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("handler fired %d times", fired)
	}
}

func TestEvtchnBindValidation(t *testing.T) {
	v, d0, dU, c := twoDomains(t)
	// Binding to a port not offered to us fails.
	p0 := v.EvtchnAllocUnbound(c, d0, 99)
	if _, err := v.EvtchnBindInterdomain(c, dU, d0.ID, p0); err == nil {
		t.Fatal("bound to a port offered to another domain")
	}
	// Binding to a nonexistent domain fails.
	if _, err := v.EvtchnBindInterdomain(c, dU, 77, 0); err == nil {
		t.Fatal("bound to nonexistent domain")
	}
	// Sending on an unbound port fails.
	if err := v.EvtchnSend(c, dU, 55); err == nil {
		t.Fatal("send on invalid port accepted")
	}
}

func TestEvtchnMaskedByVIF(t *testing.T) {
	v, d0, dU, c := twoDomains(t)
	fired := 0
	p0 := v.EvtchnAllocUnbound(c, d0, dU.ID)
	d0.SetPortHandler(p0, func(cc *hw.CPU) { fired++ })
	pU, err := v.EvtchnBindInterdomain(c, dU, d0.ID, p0)
	if err != nil {
		t.Fatal(err)
	}
	// Mask the target's virtual IF: event stays pending.
	d0.VCPU0().SetVIF(false)
	if err := v.EvtchnSend(c, dU, pU); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatal("delivered to masked domain")
	}
	// Unmasking drains the pending event.
	v.SetVIF(c, d0, true)
	if fired != 1 {
		t.Fatalf("pending event not drained on unmask (fired=%d)", fired)
	}
}

func TestGrantMapLifecycle(t *testing.T) {
	v, d0, dU, c := twoDomains(t)
	pfn := dU.Frames.Alloc()
	v.M.Mem.WriteWord(pfn.Addr(), 0xABCD)
	ref := dU.GrantAccess(c, d0.ID, pfn, true)

	got, unmap, err := v.GrantMap(c, d0, dU.ID, ref)
	if err != nil {
		t.Fatal(err)
	}
	if got != pfn {
		t.Fatalf("mapped %d, want %d", got, pfn)
	}
	if v.M.Mem.ReadWord(got.Addr()) != 0xABCD {
		t.Fatal("granted frame contents wrong")
	}
	// Ending a grant while mapped fails.
	if err := dU.GrantEnd(c, ref); err == nil {
		t.Fatal("ended grant while mapped")
	}
	unmap()
	if err := dU.GrantEnd(c, ref); err != nil {
		t.Fatal(err)
	}
	// Frame refs fully released.
	if fi := v.FT.Get(pfn); fi.TotalRefs != 0 {
		t.Fatalf("grant left refs: %+v", fi)
	}
}

func TestGrantMapAuthorization(t *testing.T) {
	v, d0, dU, c := twoDomains(t)
	pfn := dU.Frames.Alloc()
	ref := dU.GrantAccess(c, 42, pfn, true) // granted to someone else
	if _, _, err := v.GrantMap(c, d0, dU.ID, ref); err == nil {
		t.Fatal("mapped a grant addressed to another domain")
	}
	if _, _, err := v.GrantMap(c, d0, dU.ID, GrantRef(99)); err == nil {
		t.Fatal("mapped a nonexistent grant")
	}
}

func TestDomctlPrivilegeChecks(t *testing.T) {
	v, _, dU, c := twoDomains(t)
	if _, err := v.HypDomctlCreate(c, dU, "x", 10); err == nil {
		t.Fatal("unprivileged domctl create accepted")
	}
	if err := v.HypDomctlPause(c, dU, dU.ID); err == nil {
		t.Fatal("unprivileged pause accepted")
	}
	if err := v.HypDomctlDestroy(c, dU, dU.ID); err == nil {
		t.Fatal("unprivileged destroy accepted")
	}
}

func TestDomctlPauseUnpause(t *testing.T) {
	v, d0, dU, c := twoDomains(t)
	if err := v.HypDomctlPause(c, d0, dU.ID); err != nil {
		t.Fatal(err)
	}
	if dU.State != DomPaused {
		t.Fatal("domain not paused")
	}
	// Events to a paused domain stay pending.
	p0 := v.EvtchnAllocUnbound(c, dU, d0.ID)
	fired := 0
	dU.SetPortHandler(p0, func(cc *hw.CPU) { fired++ })
	pd, err := v.EvtchnBindInterdomain(c, d0, dU.ID, p0)
	if err != nil {
		t.Fatal(err)
	}
	v.SetCurrent(c, d0)
	if err := v.EvtchnSend(c, d0, pd); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatal("paused domain received upcall")
	}
	if err := v.HypDomctlUnpause(c, d0, dU.ID); err != nil {
		t.Fatal(err)
	}
	if dU.State != DomRunning {
		t.Fatal("domain not resumed")
	}
}
