package xen

import (
	"sort"
	"sync/atomic"

	"repro/internal/hw"
	"repro/internal/obs"
)

// The split device model (§5.2): frontend drivers in an unprivileged
// domain forward requests over shared-memory rings to backend drivers in
// the driver domain, which own the real hardware. The backends below are
// the driver-domain halves; the frontends live in internal/guest.

// BlockDevice is what a backend drives: the driver domain's native block
// driver (which wraps hw.Disk and charges its own stack costs).
type BlockDevice interface {
	Submit(c *hw.CPU, req hw.DiskRequest, buf []byte) error
}

// PacketDevice is the driver domain's native network driver.
type PacketDevice interface {
	Transmit(c *hw.CPU, data []byte)
}

// BlkRequest is one block I/O request on a blkif ring.
type BlkRequest struct {
	ID    uint64
	Block uint64
	Write bool
	Grant GrantRef // frame holding (or receiving) the data
	Front DomID    // granting domain
}

// BlkResponse completes a BlkRequest.
type BlkResponse struct {
	ID  uint64
	Err string
}

// BlkBackend is the driver-domain block backend. Its OnEvent drains the
// ring, merges adjacent requests, and issues them through the native
// driver — the batching that makes domU throughput writes occasionally
// beat domain0 (the dbench effect in §7.3).
type BlkBackend struct {
	V      *VMM
	Dom    *Domain // driver domain
	Dev    BlockDevice
	Ring   *Ring[BlkRequest, BlkResponse]
	Notify func(c *hw.CPU) // kicks the frontend (event channel send)

	// WriteBehind enables the driver domain's buffer cache for frontend
	// writes: data is copied into the cache and acknowledged before it
	// reaches the disk, flushed lazily in merged batches. This is the
	// caching in the split device mode that lets dbench in a domainU
	// slightly beat domain0 and even native Linux, "though at the cost
	// of possible inconsistency during crash" (§7.3).
	WriteBehind bool
	// WriteBehindLimit is the dirty-block count that triggers a flush.
	WriteBehindLimit int

	wbCache map[uint64][]byte

	Stats BlkBackendStats
}

// BlkBackendStats counts backend activity (atomic: events may be
// dispatched on any CPU).
type BlkBackendStats struct {
	Requests   atomic.Uint64
	Merges     atomic.Uint64
	Events     atomic.Uint64
	WBAbsorbed atomic.Uint64 // writes acknowledged from the buffer cache
	WBFlushes  atomic.Uint64
}

// OnEvent processes all pending ring requests. It runs in driver-domain
// context (the VMM dispatches the frontend's event here).
func (b *BlkBackend) OnEvent(c *hw.CPU) {
	b.Stats.Events.Add(1)
	var sp obs.SpanRef
	h := b.V.tel()
	if h != nil {
		h.blkEvents.Inc()
		sp = obs.Begin(h.col, c.ID, c.Now(), "xen/blk-backend-event")
	}
	var reqs []BlkRequest
	for {
		q, ok := b.Ring.GetRequest(c)
		if !ok {
			break
		}
		reqs = append(reqs, q)
	}
	if len(reqs) == 0 {
		sp.End(c.Now())
		return
	}
	b.Stats.Requests.Add(uint64(len(reqs)))
	if h != nil {
		h.blkRequests.Add(uint64(len(reqs)))
		defer sp.EndArg(c.Now(), uint64(len(reqs)))
	}

	// Sort by block number and coalesce adjacent same-direction requests
	// into single transfers.
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].Block < reqs[j].Block })
	for start := 0; start < len(reqs); {
		end := start + 1
		for end < len(reqs) &&
			reqs[end].Write == reqs[start].Write &&
			reqs[end].Block == reqs[end-1].Block+1 {
			end++
		}
		group := reqs[start:end]
		if len(group) > 1 {
			b.Stats.Merges.Add(uint64(len(group) - 1))
		}
		b.process(c, group)
		start = end
	}
	if b.Notify != nil {
		b.Notify(c)
	}
}

// process maps the group's grants, performs one merged transfer, and
// pushes responses.
func (b *BlkBackend) process(c *hw.CPU, group []BlkRequest) {
	buf := make([]byte, len(group)*hw.BlockSize)
	type mapped struct {
		pfn   hw.PFN
		unmap func()
	}
	maps := make([]mapped, 0, len(group))
	fail := func(msg string) {
		for _, m := range maps {
			m.unmap()
		}
		for _, q := range group {
			b.Ring.PutResponse(c, BlkResponse{ID: q.ID, Err: msg})
		}
	}
	for _, q := range group {
		pfn, unmap, err := b.V.GrantMap(c, b.Dom, q.Front, q.Grant)
		if err != nil {
			fail(err.Error())
			return
		}
		maps = append(maps, mapped{pfn, unmap})
	}
	if group[0].Write {
		for i, m := range maps {
			c.Charge(b.V.M.Costs.PageCopy)
			copy(buf[i*hw.BlockSize:(i+1)*hw.BlockSize], b.V.M.Mem.FrameBytes(m.pfn))
		}
		if b.WriteBehind {
			// Absorb into the driver domain's buffer cache and ack.
			if b.wbCache == nil {
				b.wbCache = make(map[uint64][]byte)
			}
			for i, q := range group {
				blk := make([]byte, hw.BlockSize)
				copy(blk, buf[i*hw.BlockSize:(i+1)*hw.BlockSize])
				b.wbCache[q.Block] = blk
				b.Stats.WBAbsorbed.Add(1)
			}
			for _, m := range maps {
				m.unmap()
			}
			for _, q := range group {
				b.Ring.PutResponse(c, BlkResponse{ID: q.ID})
			}
			limit := b.WriteBehindLimit
			if limit == 0 {
				limit = 2048
			}
			if len(b.wbCache) >= limit {
				b.FlushWriteBehind(c)
			}
			return
		}
	}
	err := b.Dev.Submit(c, hw.DiskRequest{
		Block:  group[0].Block,
		Write:  group[0].Write,
		Blocks: len(group),
		Merged: len(group),
	}, buf)
	if err != nil {
		fail(err.Error())
		return
	}
	if !group[0].Write {
		// Reads must observe write-behind data that has not reached the
		// disk yet.
		if b.WriteBehind {
			for i, q := range group {
				if blk, ok := b.wbCache[q.Block]; ok {
					copy(buf[i*hw.BlockSize:(i+1)*hw.BlockSize], blk)
				}
			}
		}
		for i, m := range maps {
			c.Charge(b.V.M.Costs.PageCopy)
			copy(b.V.M.Mem.FrameBytes(m.pfn), buf[i*hw.BlockSize:(i+1)*hw.BlockSize])
		}
	}
	for _, m := range maps {
		m.unmap()
	}
	for _, q := range group {
		b.Ring.PutResponse(c, BlkResponse{ID: q.ID})
	}
}

// FlushWriteBehind writes the buffer cache to disk in merged batches.
func (b *BlkBackend) FlushWriteBehind(c *hw.CPU) {
	if len(b.wbCache) == 0 {
		return
	}
	b.Stats.WBFlushes.Add(1)
	blocks := make([]uint64, 0, len(b.wbCache))
	for blk := range b.wbCache {
		blocks = append(blocks, blk)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	for start := 0; start < len(blocks); {
		end := start + 1
		for end < len(blocks) && blocks[end] == blocks[end-1]+1 {
			end++
		}
		run := blocks[start:end]
		buf := make([]byte, len(run)*hw.BlockSize)
		for i, blk := range run {
			copy(buf[i*hw.BlockSize:(i+1)*hw.BlockSize], b.wbCache[blk])
		}
		if err := b.Dev.Submit(c, hw.DiskRequest{
			Block: run[0], Write: true, Blocks: len(run), Merged: len(run),
		}, buf); err == nil {
			for _, blk := range run {
				delete(b.wbCache, blk)
			}
		}
		start = end
	}
}

// NetTxRequest carries one outbound packet (already framed by the guest
// net stack) through a netif ring.
type NetTxRequest struct {
	ID    uint64
	Grant GrantRef
	Front DomID
	Len   int
}

// NetTxResponse completes a NetTxRequest.
type NetTxResponse struct {
	ID  uint64
	Err string
}

// NetRxBuffer is an empty receive buffer the frontend posts.
type NetRxBuffer struct {
	ID    uint64
	Grant GrantRef
	Front DomID
}

// NetRxDone tells the frontend a posted buffer now holds a packet.
type NetRxDone struct {
	ID  uint64
	Len int
	Err string
}

// NetBackend is the driver-domain network backend.
type NetBackend struct {
	V      *VMM
	Dom    *Domain
	Dev    PacketDevice
	TxRing *Ring[NetTxRequest, NetTxResponse]
	RxRing *Ring[NetRxBuffer, NetRxDone]
	Notify func(c *hw.CPU)

	Stats NetBackendStats
}

// NetBackendStats counts backend activity (atomic).
type NetBackendStats struct {
	TxPackets, RxPackets atomic.Uint64
	RxDropped            atomic.Uint64
	Events               atomic.Uint64
}

// OnEvent drains pending transmit requests.
func (nb *NetBackend) OnEvent(c *hw.CPU) {
	nb.Stats.Events.Add(1)
	h := nb.V.tel()
	var sp obs.SpanRef
	tx := uint64(0)
	if h != nil {
		sp = obs.Begin(h.col, c.ID, c.Now(), "xen/net-backend-event")
		defer func() { sp.EndArg(c.Now(), tx) }()
	}
	did := false
	for {
		q, ok := nb.TxRing.GetRequest(c)
		if !ok {
			break
		}
		did = true
		pfn, unmap, err := nb.V.GrantMap(c, nb.Dom, q.Front, q.Grant)
		if err != nil {
			nb.TxRing.PutResponse(c, NetTxResponse{ID: q.ID, Err: err.Error()})
			continue
		}
		if q.Len > hw.PageSize {
			q.Len = hw.PageSize
		}
		data := make([]byte, q.Len)
		c.Charge(nb.V.M.Costs.PageCopy)
		copy(data, nb.V.M.Mem.FrameBytes(pfn)[:q.Len])
		unmap()
		nb.Dev.Transmit(c, data)
		nb.Stats.TxPackets.Add(1)
		if h != nil {
			h.netTxPackets.Inc()
			tx++
		}
		nb.TxRing.PutResponse(c, NetTxResponse{ID: q.ID})
	}
	if did && nb.Notify != nil {
		nb.Notify(c)
	}
}

// DeliverRx pushes one inbound packet into a posted frontend buffer.
// The driver domain's native receive path calls it for packets addressed
// to the frontend. Returns false (and drops) if no buffer is posted.
func (nb *NetBackend) DeliverRx(c *hw.CPU, data []byte) bool {
	buf, ok := nb.RxRing.GetRequest(c)
	if !ok {
		nb.Stats.RxDropped.Add(1)
		return false
	}
	pfn, unmap, err := nb.V.GrantMap(c, nb.Dom, buf.Front, buf.Grant)
	if err != nil {
		nb.RxRing.PutResponse(c, NetRxDone{ID: buf.ID, Err: err.Error()})
		return false
	}
	n := len(data)
	if n > hw.PageSize {
		n = hw.PageSize
	}
	c.Charge(nb.V.M.Costs.PageCopy)
	copy(nb.V.M.Mem.FrameBytes(pfn)[:n], data[:n])
	unmap()
	nb.Stats.RxPackets.Add(1)
	if h := nb.V.tel(); h != nil {
		h.netRxPackets.Inc()
	}
	nb.RxRing.PutResponse(c, NetRxDone{ID: buf.ID, Len: n})
	if nb.Notify != nil {
		nb.Notify(c)
	}
	return true
}
