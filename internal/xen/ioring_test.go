package xen

import (
	"math/rand"
	"testing"

	"repro/internal/hw"
)

func ioRingCPU(t *testing.T) (*hw.CPU, *hw.CostModel) {
	t.Helper()
	m := hw.NewMachine(hw.Config{MemBytes: 8 << 20, NumCPUs: 1})
	return m.BootCPU(), m.Costs
}

// TestIORingPropertySeededInterleavings drives seeded random
// producer/consumer interleavings through one ring in both directions
// and checks the datapath invariants on every step:
//
//   - no request ID is lost or duplicated end to end,
//   - the producer index never passes the consumer by more than the
//     capacity, and the consumer never passes the producer,
//   - a consumer that observes FINAL CHECK false may "sleep" and is
//     always woken by a later doorbell or finds the ring empty —
//     notify suppression never strands work forever.
func TestIORingPropertySeededInterleavings(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234, 99999} {
		for _, threshold := range []int{1, 4, 16} {
			c, costs := ioRingCPU(t)
			rng := rand.New(rand.NewSource(seed))
			r := NewIORing[BlkRequest, BlkResponse](64, costs)
			cap32 := uint32(r.Capacity())

			const total = 4000
			nextID := uint64(0)
			outstanding := 0 // pushed requests minus pushed responses
			seen := make(map[uint64]int)
			completed := make(map[uint64]int)
			reqBuf := make([]BlkRequest, r.Capacity())
			respBuf := make([]BlkResponse, r.Capacity())
			var toAnswer []uint64 // taken by consumer, response not yet pushed
			backendAsleep := true // consumer parked after FINAL CHECK false
			doorbells := 0

			checkIndices := func() {
				t.Helper()
				if d := r.reqProd - r.reqCons; d > cap32 {
					t.Fatalf("seed %d: producer %d slots past consumer (cap %d)",
						seed, d, cap32)
				}
				if d := r.respProd - r.respCons; d > cap32 {
					t.Fatalf("seed %d: resp producer %d past consumer (cap %d)",
						seed, d, cap32)
				}
			}
			drainBackend := func() {
				for {
					n := r.TakeRequests(c, reqBuf)
					if n == 0 {
						if !r.FinishRequestConsume(c, threshold) {
							backendAsleep = true
							return
						}
						continue
					}
					for _, q := range reqBuf[:n] {
						seen[q.ID]++
						toAnswer = append(toAnswer, q.ID)
					}
				}
			}

			for int(nextID) < total || outstanding > 0 || len(toAnswer) > 0 {
				checkIndices()
				switch rng.Intn(4) {
				case 0: // frontend pushes a burst
					if int(nextID) >= total {
						continue
					}
					room := r.Capacity() - outstanding
					if room == 0 {
						continue
					}
					burst := 1 + rng.Intn(room)
					if int(nextID)+burst > total {
						burst = total - int(nextID)
					}
					batch := make([]BlkRequest, burst)
					for i := range batch {
						batch[i] = BlkRequest{ID: nextID}
						nextID++
					}
					n, notify := r.PushRequests(c, batch)
					if n != burst {
						t.Fatalf("seed %d: pushed %d of %d with %d outstanding",
							seed, n, burst, outstanding)
					}
					outstanding += n
					if notify {
						doorbells++
						drainBackend() // the doorbell wakes the consumer
					}
				case 1: // backend polls on its own (scheduler slice)
					if backendAsleep && rng.Intn(8) != 0 {
						continue // asleep: only the rare slice polls
					}
					drainBackend()
				case 2: // backend answers some taken requests
					if len(toAnswer) == 0 {
						continue
					}
					n := 1 + rng.Intn(len(toAnswer))
					resps := make([]BlkResponse, n)
					for i := 0; i < n; i++ {
						resps[i] = BlkResponse{ID: toAnswer[i]}
					}
					toAnswer = toAnswer[n:]
					r.PushResponses(c, resps)
				case 3: // frontend polls completions
					for {
						n := r.TakeResponses(c, respBuf)
						if n == 0 {
							if !r.FinishResponseConsume(c, threshold) {
								break
							}
							continue
						}
						for _, resp := range respBuf[:n] {
							completed[resp.ID]++
							outstanding--
						}
					}
				}
			}
			// Liveness epilogue: anything still queued must be reachable
			// by one forced kick + drain (the ForceKick fallback).
			drainBackend()
			for _, id := range toAnswer {
				r.PushResponses(c, []BlkResponse{{ID: id}})
			}
			for {
				n := r.TakeResponses(c, respBuf)
				if n == 0 {
					break
				}
				for _, resp := range respBuf[:n] {
					completed[resp.ID]++
					outstanding--
				}
			}

			if len(seen) != total || len(completed) != total {
				t.Fatalf("seed %d thr %d: saw %d, completed %d of %d",
					seed, threshold, len(seen), len(completed), total)
			}
			for id := uint64(0); id < uint64(total); id++ {
				if seen[id] != 1 {
					t.Fatalf("seed %d: request %d consumed %d times", seed, id, seen[id])
				}
				if completed[id] != 1 {
					t.Fatalf("seed %d: request %d completed %d times", seed, id, completed[id])
				}
			}
			st := &r.Stats
			if st.ReqSlots.Load() != total || st.RespSlots.Load() != total {
				t.Fatalf("seed %d: slot counts %d/%d", seed,
					st.ReqSlots.Load(), st.RespSlots.Load())
			}
			if threshold > 1 && doorbells >= total {
				t.Fatalf("seed %d thr %d: no coalescing (%d doorbells for %d requests)",
					seed, threshold, doorbells, total)
			}
		}
	}
}

// TestIORingNotifyProtocol pins the event-index decisions: first push
// rings (marks start at 1), pushes below a re-armed threshold stay
// silent, and the push crossing the mark rings exactly once.
func TestIORingNotifyProtocol(t *testing.T) {
	c, costs := ioRingCPU(t)
	r := NewIORing[BlkRequest, BlkResponse](64, costs)

	if _, notify := r.PushRequests(c, []BlkRequest{{ID: 1}}); !notify {
		t.Fatal("first push must notify")
	}
	buf := make([]BlkRequest, 64)
	if r.TakeRequests(c, buf) != 1 {
		t.Fatal("take")
	}
	if r.FinishRequestConsume(c, 16) {
		t.Fatal("final check true on empty ring")
	}
	// 15 singleton pushes stay below the 16-slot mark.
	for i := 0; i < 15; i++ {
		if _, notify := r.PushRequests(c, []BlkRequest{{ID: uint64(i)}}); notify {
			t.Fatalf("push %d rang below threshold", i)
		}
	}
	if _, notify := r.PushRequests(c, []BlkRequest{{ID: 99}}); !notify {
		t.Fatal("16th push must cross the mark")
	}
	if r.Stats.ReqKicks.Load() != 2 || r.Stats.ReqSuppressed.Load() != 15 {
		t.Fatalf("kicks=%d suppressed=%d",
			r.Stats.ReqKicks.Load(), r.Stats.ReqSuppressed.Load())
	}
}

// TestIORingFinalCheckClosesRace exercises the lost-wakeup window: a
// push that lands after the consumer drained but before it re-armed is
// caught by the FINAL CHECK return, so the consumer never sleeps on a
// non-empty ring.
func TestIORingFinalCheckClosesRace(t *testing.T) {
	c, costs := ioRingCPU(t)
	r := NewIORing[BlkRequest, BlkResponse](8, costs)

	r.PushRequests(c, []BlkRequest{{ID: 1}})
	buf := make([]BlkRequest, 8)
	r.TakeRequests(c, buf)
	// Producer sneaks one in against the stale mark (already consumed
	// index 1, mark re-arm not yet done): suppressed.
	if _, notify := r.PushRequests(c, []BlkRequest{{ID: 2}}); notify {
		t.Fatal("push against stale mark should be suppressed")
	}
	if !r.FinishRequestConsume(c, 4) {
		t.Fatal("FINAL CHECK must catch the raced push")
	}
	if r.TakeRequests(c, buf) != 1 {
		t.Fatal("raced request lost")
	}
}

// TestIORingResponseOverflowPanics pins the response-direction
// contract: pushing more completions than the ring has free response
// slots is a bug (the frontend bounds outstanding by capacity), and
// the ring fails loudly instead of dropping a completion.
func TestIORingResponseOverflowPanics(t *testing.T) {
	c, costs := ioRingCPU(t)
	r := NewIORing[BlkRequest, BlkResponse](2, costs)
	defer func() {
		if recover() == nil {
			t.Fatal("response overflow did not panic")
		}
	}()
	r.PushResponses(c, []BlkResponse{{ID: 1}, {ID: 2}, {ID: 3}})
}

// TestIORingDropNotifyRecoveredByPoll pins the chaos fault class: a
// swallowed doorbell leaves the work queued, and a later poll-side
// drain both serves it and accounts the recovery.
func TestIORingDropNotifyRecoveredByPoll(t *testing.T) {
	c, costs := ioRingCPU(t)
	r := NewIORing[BlkRequest, BlkResponse](8, costs)
	r.InjectDropNotify(1)
	if _, notify := r.PushRequests(c, []BlkRequest{{ID: 1}}); notify {
		t.Fatal("dropped doorbell still reported notify")
	}
	if r.Stats.NotifiesDropped.Load() != 1 {
		t.Fatal("drop not accounted")
	}
	buf := make([]BlkRequest, 8)
	if r.TakeRequests(c, buf) != 1 {
		t.Fatal("queued request unreachable")
	}
	if r.Stats.RecoveredByPoll.Load() != 1 {
		t.Fatal("poll recovery not accounted")
	}
}
