package xen

import (
	"fmt"

	"repro/internal/hw"
)

// Shadow paging — the alternative physical-address mode of §3.2.2. In
// shadow mode the guest's page tables are never installed in hardware;
// the VMM maintains translated copies ("shadows") out of its own
// reserved memory and points CR3 at those. Every guest entry is
// translated through the domain's pseudo-physical-to-machine mapping
// when the shadow is built or updated.
//
// The paper's Mercury uses direct mode precisely because shadow mode
// makes self-virtualization expensive: attaching the VMM requires
// building (translating) shadows for every live page table, where direct
// mode only validates in place. This implementation exists to measure
// that difference — see bench.PagingAblation.

// P2M translates a domain's pseudo-physical frame to a machine frame.
// Adopted domains are identity-mapped (their "pseudo-physical" space is
// the machine space); the translation work is still charged per entry,
// which is what the mode costs.
type P2M func(hw.PFN) hw.PFN

// IdentityP2M is the adopted-domain translation.
func IdentityP2M(p hw.PFN) hw.PFN { return p }

// shadowState tracks one domain's shadow trees.
type shadowState struct {
	p2m P2M
	// roots maps guest page-directory roots to shadow roots.
	roots map[hw.PFN]hw.PFN
	// tables maps guest L1 frames to shadow L1 frames.
	tables map[hw.PFN]hw.PFN
}

// shadowOf returns (creating) the domain's shadow state.
func (v *VMM) shadowOf(d *Domain) *shadowState {
	if v.shadows == nil {
		v.shadows = make(map[DomID]*shadowState)
	}
	st, ok := v.shadows[d.ID]
	if !ok {
		st = &shadowState{p2m: IdentityP2M,
			roots:  make(map[hw.PFN]hw.PFN),
			tables: make(map[hw.PFN]hw.PFN)}
		v.shadows[d.ID] = st
	}
	return st
}

// allocShadowFrame takes a frame from the VMM's own reservation.
func (v *VMM) allocShadowFrame() (hw.PFN, error) {
	pfn := v.Reserved.Alloc()
	if pfn == hw.NoPFN {
		return 0, fmt.Errorf("xen: out of shadow memory")
	}
	v.M.Mem.ZeroFrame(pfn)
	return pfn, nil
}

// buildShadowL1 translates one guest leaf table into a fresh shadow.
func (v *VMM) buildShadowL1(c *hw.CPU, st *shadowState, gpt hw.PFN) (hw.PFN, error) {
	if spt, ok := st.tables[gpt]; ok {
		return spt, nil
	}
	spt, err := v.allocShadowFrame()
	if err != nil {
		return 0, err
	}
	for i := 0; i < hw.PTEntries; i++ {
		ge := hw.ReadPTE(v.M.Mem, gpt, i)
		if !ge.Present() {
			continue
		}
		c.Charge(v.M.Costs.ShadowPerEntry)
		hw.WritePTE(v.M.Mem, spt, i, hw.MakePTE(st.p2m(ge.Frame()), ge.Flags()))
	}
	st.tables[gpt] = spt
	return spt, nil
}

// BuildShadowTree constructs (or returns) the shadow for a guest root,
// translating every present entry. This is the per-switch cost direct
// mode avoids.
func (v *VMM) BuildShadowTree(c *hw.CPU, d *Domain, groot hw.PFN) (hw.PFN, error) {
	st := v.shadowOf(d)
	if sroot, ok := st.roots[groot]; ok {
		return sroot, nil
	}
	sroot, err := v.allocShadowFrame()
	if err != nil {
		return 0, err
	}
	c.Charge(v.M.Costs.ShadowPerTable)
	for pdi := 0; pdi < hw.PTEntries; pdi++ {
		pde := hw.ReadPTE(v.M.Mem, groot, pdi)
		if !pde.Present() {
			continue
		}
		c.Charge(v.M.Costs.ShadowPerTable)
		spt, err := v.buildShadowL1(c, st, pde.Frame())
		if err != nil {
			return 0, err
		}
		hw.WritePTE(v.M.Mem, sroot, pdi, hw.MakePTE(spt, pde.Flags()))
	}
	st.roots[groot] = sroot
	return sroot, nil
}

// DropShadowTree releases a guest root's shadow (on unpin or detach).
// Shared L1 shadows are dropped when their last referencing root goes.
func (v *VMM) DropShadowTree(c *hw.CPU, d *Domain, groot hw.PFN) {
	st := v.shadowOf(d)
	sroot, ok := st.roots[groot]
	if !ok {
		return
	}
	delete(st.roots, groot)
	c.Charge(v.M.Costs.FrameRelease)
	// Free L1 shadows referenced only by this root.
	for pdi := 0; pdi < hw.PTEntries; pdi++ {
		spde := hw.ReadPTE(v.M.Mem, sroot, pdi)
		if !spde.Present() {
			continue
		}
		spt := spde.Frame()
		// Still referenced by another shadow root?
		shared := false
		for _, otherRoot := range st.roots {
			if hw.ReadPTE(v.M.Mem, otherRoot, pdi).Present() &&
				hw.ReadPTE(v.M.Mem, otherRoot, pdi).Frame() == spt {
				shared = true
				break
			}
		}
		if !shared {
			// Remove the guest->shadow mapping for this table.
			for g, s := range st.tables {
				if s == spt {
					delete(st.tables, g)
				}
			}
			v.Reserved.Free(spt)
		}
	}
	v.Reserved.Free(sroot)
}

// syncShadowEntry write-through-updates the shadow after a validated
// guest entry store. Must be called with the guest entry already
// written.
func (v *VMM) syncShadowEntry(c *hw.CPU, d *Domain, u MMUUpdate) error {
	st := v.shadowOf(d)
	if spt, ok := st.tables[u.Table]; ok {
		// Leaf update.
		c.Charge(v.M.Costs.ShadowPerEntry)
		if u.New.Present() {
			hw.WritePTE(v.M.Mem, spt, u.Index, hw.MakePTE(st.p2m(u.New.Frame()), u.New.Flags()))
		} else {
			hw.WritePTE(v.M.Mem, spt, u.Index, 0)
		}
		return nil
	}
	if sroot, ok := st.roots[u.Table]; ok {
		// Page-directory update: build or drop the shadow of the target
		// leaf table.
		c.Charge(v.M.Costs.ShadowPerEntry)
		if u.New.Present() {
			spt, err := v.buildShadowL1(c, st, u.New.Frame())
			if err != nil {
				return err
			}
			hw.WritePTE(v.M.Mem, sroot, u.Index, hw.MakePTE(spt, u.New.Flags()))
		} else {
			hw.WritePTE(v.M.Mem, sroot, u.Index, 0)
		}
		return nil
	}
	// Update to a table with no shadow yet: nothing to sync (it will be
	// translated when its tree is next built).
	return nil
}

// HWRoot returns the page-directory base to install in hardware for a
// guest root: the shadow in shadow mode, the guest's own in direct mode.
func (v *VMM) HWRoot(c *hw.CPU, d *Domain, groot hw.PFN) (hw.PFN, error) {
	if !v.ShadowMode {
		return groot, nil
	}
	// Fast path: shadow already built (by the pin under the MMU lock).
	st := v.shadowOf(d)
	if sroot, ok := st.roots[groot]; ok {
		return sroot, nil
	}
	return v.BuildShadowTree(c, d, groot)
}

// ShadowFramesInUse reports how many reserved frames shadows occupy.
func (v *VMM) ShadowFramesInUse() int { return v.Reserved.InUse() }

// VerifyShadow checks that a guest root's shadow agrees with the guest
// tree under the domain's p2m — the shadow-coherence invariant.
func (v *VMM) VerifyShadow(d *Domain, groot hw.PFN) error {
	st := v.shadowOf(d)
	sroot, ok := st.roots[groot]
	if !ok {
		return fmt.Errorf("xen: no shadow for root %d", groot)
	}
	for pdi := 0; pdi < hw.PTEntries; pdi++ {
		gpde := hw.ReadPTE(v.M.Mem, groot, pdi)
		spde := hw.ReadPTE(v.M.Mem, sroot, pdi)
		if gpde.Present() != spde.Present() {
			return fmt.Errorf("xen: shadow pde %d presence mismatch", pdi)
		}
		if !gpde.Present() {
			continue
		}
		for pti := 0; pti < hw.PTEntries; pti++ {
			ge := hw.ReadPTE(v.M.Mem, gpde.Frame(), pti)
			se := hw.ReadPTE(v.M.Mem, spde.Frame(), pti)
			if ge.Present() != se.Present() {
				return fmt.Errorf("xen: shadow pte (%d,%d) presence mismatch", pdi, pti)
			}
			if !ge.Present() {
				continue
			}
			if se.Frame() != st.p2m(ge.Frame()) || se.Flags() != ge.Flags() {
				return fmt.Errorf("xen: shadow pte (%d,%d) diverged", pdi, pti)
			}
		}
	}
	return nil
}
