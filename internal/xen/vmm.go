package xen

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/hw"
	"repro/internal/obs"
)

// VMM is the hypervisor. In the always-on configurations (X-0, X-U) it
// boots first, owns the hardware, and never releases it. Under Mercury it
// is *pre-cached*: built and warmed at machine boot (§4.1), holding its
// reserved memory and data structures, but inactive — the hardware IDT
// and the frame accounting belong to the native OS until a mode switch
// activates it.
type VMM struct {
	M *hw.Machine

	// Active is true while the VMM owns the hardware.
	Active bool

	// FT is the per-frame accounting table (stale while inactive).
	FT *FrameTable

	Domains map[DomID]*Domain

	// IDT/GDT are the VMM's own descriptor tables, installed in hardware
	// while active.
	IDT *hw.IDT
	GDT *hw.GDT

	// Reserved is the VMM's own memory footprint, carved off at boot.
	Reserved *hw.FrameAllocator

	// Store is the control-plane registry (xenstore) split drivers
	// negotiate through.
	Store *XenStore

	// Trace is the xentrace-style event ring (disabled by default).
	Trace *TraceBuffer

	// sched is the credit-weight domain scheduler state.
	sched DomSched

	// ShadowMode selects shadow paging instead of direct paging
	// (§3.2.2): hardware runs on VMM-maintained translated copies of
	// the guest tables. Direct mode is the default (and the paper's
	// choice for Mercury).
	ShadowMode bool
	shadows    map[DomID]*shadowState

	// cur is the per-physical-CPU stack of domains being executed; the
	// top is the current domain on that CPU.
	cur [][]*Domain

	// mmuMu serializes frame-table mutation (validation, pinning,
	// shadow maintenance) across CPUs, as Xen's per-domain page lock
	// does. Waiters spin with their clocks advancing (see lockMMU).
	mmuMu sync.Mutex

	// injectPinFails makes the next N table pins fail with a transient
	// error (fault injection: a hypercall that fails mid-switch).
	injectPinFails atomic.Int32

	// Domctl fault injection: the next N pause/unpause/destroy
	// hypercalls fail with a transient error, so the migration
	// transaction's rollback ladder can be exercised at every rung.
	injectPauseFails   atomic.Int32
	injectUnpauseFails atomic.Int32
	injectDestroyFails atomic.Int32

	// journal is the dirty-frame journal (nil unless Mercury selects the
	// journal tracking policy; see journal.go).
	journal *DirtyJournal

	// mergeCells/mergeOrder/mergeEpoch are the parallel recompute's
	// reusable merge scratch (guarded by mmuMu; see
	// recompute_parallel.go). Epoch-stamped per-frame cells replace the
	// per-call maps so the merge allocates nothing after warm-up.
	mergeCells []mergeCell
	mergeOrder []hw.PFN
	mergeEpoch uint64

	nextDomID  DomID
	consoleLog []string

	Stats VMMStats

	// obsCache holds pre-resolved registry handles for the installed
	// collector so the hypercall hot path skips map lookups.
	obsCache atomic.Pointer[vmmObs]
}

// vmmObs caches the VMM's telemetry handles for one collector.
type vmmObs struct {
	col            *obs.Collector
	hypercalls     *obs.Counter
	hypercallCyc   *obs.Histogram
	multicalls     *obs.Counter
	multicallOps   *obs.Counter
	domSwitches    *obs.Counter
	faultBounces   *obs.Counter
	faultBounceCyc *obs.Histogram
	eventsSent     *obs.Counter
	schedSlices    *obs.Counter
	schedBudget    *obs.Histogram
	blkEvents      *obs.Counter
	blkRequests    *obs.Counter
	netTxPackets   *obs.Counter
	netRxPackets   *obs.Counter
	ringKicks      *obs.Counter
	ringSuppressed *obs.Counter
	ringBurst      *obs.Histogram
	ringDepth      *obs.Histogram
	grantBatches   *obs.Counter
	grantBatchRefs *obs.Counter
}

// tel returns the cached telemetry handles, or nil when no collector
// is installed. The disabled path is a single atomic load.
func (v *VMM) tel() *vmmObs {
	col := v.M.Telemetry()
	if col == nil {
		return nil
	}
	h := v.obsCache.Load()
	if h == nil || h.col != col {
		r := col.Registry
		h = &vmmObs{
			col:            col,
			hypercalls:     r.Counter("xen", "hypercalls_total"),
			hypercallCyc:   r.Histogram("xen", "hypercall_cycles"),
			multicalls:     r.Counter("xen", "multicalls_total"),
			multicallOps:   r.Counter("xen", "multicall_ops_total"),
			domSwitches:    r.Counter("xen", "dom_switches_total"),
			faultBounces:   r.Counter("xen", "fault_bounces_total"),
			faultBounceCyc: r.Histogram("xen", "fault_bounce_cycles"),
			eventsSent:     r.Counter("xen", "events_sent_total"),
			schedSlices:    r.Counter("xen", "sched_slices_total"),
			schedBudget:    r.Histogram("xen", "sched_slice_budget_cycles"),
			blkEvents:      r.Counter("xen", "backend_events_total", obs.L("dev", "blk")),
			blkRequests:    r.Counter("xen", "backend_requests_total", obs.L("dev", "blk")),
			netTxPackets:   r.Counter("xen", "backend_packets_total", obs.L("dev", "net"), obs.L("dir", "tx")),
			netRxPackets:   r.Counter("xen", "backend_packets_total", obs.L("dev", "net"), obs.L("dir", "rx")),
			ringKicks:      r.Counter("xen", "ring_doorbells_total"),
			ringSuppressed: r.Counter("xen", "ring_doorbells_suppressed_total"),
			ringBurst:      r.Histogram("xen", "ring_burst_requests"),
			ringDepth:      r.Histogram("xen", "ring_depth"),
			grantBatches:   r.Counter("xen", "grant_map_batches_total"),
			grantBatchRefs: r.Counter("xen", "grant_map_batch_refs_total"),
		}
		if v.Trace != nil {
			// Adopt the trace ring's drop count so metrics exports flag
			// xentrace data loss alongside the span-drop counter.
			r.RegisterCounter(v.Trace.dropped, "xen", "trace_ring_dropped_total")
		}
		v.obsCache.Store(h)
	}
	return h
}

// NoteDoorbell feeds the ring-doorbell instruments: one event-index
// notify decision from either end of a datapath ring (sent means the
// doorbell was rung; otherwise suppression elided it). Frontends
// outside this package report their decisions through it.
func (v *VMM) NoteDoorbell(sent bool) {
	h := v.tel()
	if h == nil {
		return
	}
	if sent {
		h.ringKicks.Inc()
	} else {
		h.ringSuppressed.Inc()
	}
}

// VMMStats counts hypervisor-level events. Atomic: hypercalls arrive
// concurrently from every CPU.
type VMMStats struct {
	Hypercalls    atomic.Uint64
	Multicalls    atomic.Uint64 // multicall batches (each also counts as one hypercall)
	MulticallOps  atomic.Uint64 // ops carried inside multicall batches
	DomSwitches   atomic.Uint64
	FaultsHandled atomic.Uint64
	Activations   atomic.Uint64
	Deactivations atomic.Uint64

	// RecomputeFallbacks counts parallel recomputes that detected a
	// cross-shard conflict and redid the walk serially.
	RecomputeFallbacks atomic.Uint64
}

// ReservedFrames is the pre-cached VMM's footprint: 16 MB worth of
// frames, standing in for Xen's 64 MB virtual reservation with a smaller
// resident set ("a VMM occupies only a reasonably small chunk of memory",
// §4.1).
const ReservedFrames = (16 << 20) / hw.PageSize

// Boot constructs the VMM on m, carving its reserved footprint out of
// the machine's frame allocator and preparing (warming) every internal
// structure. It does NOT take over the hardware; call Activate for that.
func Boot(m *hw.Machine) (*VMM, error) {
	res, err := m.Frames.Split(ReservedFrames)
	if err != nil {
		return nil, fmt.Errorf("xen: reserving VMM memory: %w", err)
	}
	v := &VMM{
		M:        m,
		FT:       NewFrameTable(m.Mem),
		Domains:  make(map[DomID]*Domain),
		Reserved: res,
		Store:    NewXenStore(),
		Trace:    NewTraceBuffer(0),
		cur:      make([][]*Domain, len(m.CPUs)),
	}
	lo, hi := res.Range()
	for pfn := lo; pfn < hi; pfn++ {
		v.FT.SetOwner(pfn, DomVMM)
	}
	if col := m.Telemetry(); col != nil {
		// Adopt the trace ring's drop count at boot, before any other
		// path can get-or-create the identity with a detached counter.
		col.Registry.RegisterCounter(v.Trace.dropped, "xen", "trace_ring_dropped_total")
	}
	v.GDT = hw.NewGDT("vmm", hw.PL1) // guests run deprivileged at PL1
	v.IDT = hw.NewIDT("vmm")
	v.installTrapHandlers()
	return v, nil
}

// installTrapHandlers populates the VMM IDT: guest-bound exceptions are
// bounced through the current domain's trap table; device lines are
// forwarded to the driver domain as events.
func (v *VMM) installTrapHandlers() {
	v.IDT.Set(hw.VecPageFault, hw.Gate{Present: true, Target: hw.PL0,
		Handler: func(c *hw.CPU, f *hw.TrapFrame) {
			v.Stats.FaultsHandled.Add(1)
			d := v.Current(c)
			if d == nil {
				panic(fmt.Sprintf("xen: page fault at %#x with no current domain", f.Addr))
			}
			d.bounce(c, f)
		}})
	v.IDT.Set(hw.VecGP, hw.Gate{Present: true, Target: hw.PL0,
		Handler: func(c *hw.CPU, f *hw.TrapFrame) {
			d := v.Current(c)
			if d != nil && d.TrapTable[hw.VecGP].Present {
				d.bounce(c, f)
				return
			}
			panic(&hw.GPError{Reason: "unhandled #GP in VMM context"})
		}})
	v.IDT.Set(hw.VecTimer, hw.Gate{Present: true, Target: hw.PL0,
		Handler: func(c *hw.CPU, f *hw.TrapFrame) {
			// Virtual timer tick for the current domain, then weighted
			// background slices for the other runnable domains.
			d := v.Current(c)
			if d != nil && d.TimerHandler != nil {
				c.Charge(v.M.Costs.EventDeliver)
				prev := c.SetMode(hw.PL1)
				d.TimerHandler(c)
				c.SetMode(prev)
			}
			v.scheduleSlices(c, v.M.Hz/100)
		}})
	forward := func(line int) func(c *hw.CPU, f *hw.TrapFrame) {
		return func(c *hw.CPU, f *hw.TrapFrame) {
			// Physical device interrupt: forward to the driver domain's
			// registered handler for this vector.
			d := v.DriverDomain()
			if d == nil {
				return
			}
			g := d.TrapTable[f.Vector]
			if !g.Present {
				return
			}
			c.Charge(v.M.Costs.EventDeliver)
			run := func() {
				prev := c.SetMode(hw.PL1)
				g.Handler(c, f)
				c.SetMode(prev)
			}
			if v.Current(c) == d {
				run() // driver domain is already running: direct upcall
			} else {
				v.runInDomain(c, d, run)
			}
		}
	}
	v.IDT.Set(hw.VecDisk, hw.Gate{Present: true, Target: hw.PL0, Handler: forward(hw.IRQLineDisk)})
	v.IDT.Set(hw.VecNIC, hw.Gate{Present: true, Target: hw.PL0, Handler: forward(hw.IRQLineNIC)})
}

// SetGate lets Mercury install extra vectors in the VMM IDT (the
// mode-switch interrupts must be reachable from virtual mode too).
func (v *VMM) SetGate(vector int, g hw.Gate) { v.IDT.Set(vector, g) }

// Activate makes the VMM take over the hardware on cpu: its descriptor
// tables are loaded and it becomes the most-privileged software. The
// caller (Mercury's state-reloading function, or the Xen boot path) must
// already have frame accounting in a valid state.
// InjectPinFailures makes the next n table pins fail with a transient
// error; n = 0 clears any outstanding injection. Dependability testing
// only: this is how campaigns exercise the failure-resistant switch's
// rollback path without corrupting real state.
func (v *VMM) InjectPinFailures(n int32) { v.injectPinFails.Store(n) }

// InjectPauseFailures makes the next n HypDomctlPause calls fail with a
// transient error; n = 0 clears any outstanding injection.
func (v *VMM) InjectPauseFailures(n int32) { v.injectPauseFails.Store(n) }

// InjectUnpauseFailures makes the next n HypDomctlUnpause calls fail
// with a transient error; n = 0 clears any outstanding injection.
func (v *VMM) InjectUnpauseFailures(n int32) { v.injectUnpauseFails.Store(n) }

// InjectDestroyFailures makes the next n HypDomctlDestroy calls fail
// with a transient error; n = 0 clears any outstanding injection.
func (v *VMM) InjectDestroyFailures(n int32) { v.injectDestroyFails.Store(n) }

// takeInjected consumes one pending injected failure from ctr,
// reporting whether the calling hypercall should fail. The CAS loop
// keeps concurrent consumers from driving the count negative.
func takeInjected(ctr *atomic.Int32) bool {
	for {
		n := ctr.Load()
		if n <= 0 {
			return false
		}
		if ctr.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

func (v *VMM) Activate(c *hw.CPU) {
	v.Stats.Activations.Add(1)
	v.Active = true
	c.Lgdt(v.GDT)
	c.Lidt(v.IDT)
}

// Deactivate releases the hardware (Mercury detaching the VMM). The
// frame table goes stale at this instant.
func (v *VMM) Deactivate(c *hw.CPU) {
	v.Stats.Deactivations.Add(1)
	v.Active = false
}

// CreateDomain builds a new domain with nframes of memory taken from the
// machine's general allocator, owned by the new domain.
func (v *VMM) CreateDomain(name string, nframes hw.PFN, privileged bool) (*Domain, error) {
	id := v.nextDomID
	v.nextDomID++
	lo, hi := v.M.Frames.Range()
	_ = lo
	_ = hi
	part, err := v.M.Frames.Split(nframes)
	if err != nil {
		return nil, fmt.Errorf("xen: allocating dom%d memory: %w", id, err)
	}
	d := &Domain{
		ID:          id,
		Name:        name,
		VMM:         v,
		Privileged:  privileged,
		Frames:      part,
		pinnedRoots: make(map[hw.PFN]bool),
	}
	d.VCPUs = []*VCPU{newVCPU(d)}
	plo, phi := part.Range()
	for pfn := plo; pfn < phi; pfn++ {
		v.FT.SetOwner(pfn, id)
	}
	v.Domains[id] = d
	return d, nil
}

// AdoptDomain registers an existing OS (with its already-owned frame
// allocator) as a domain — the self-virtualization path: the running
// native OS becomes the driver domain of the freshly activated VMM.
func (v *VMM) AdoptDomain(name string, frames *hw.FrameAllocator, privileged bool) *Domain {
	id := v.nextDomID
	v.nextDomID++
	d := &Domain{
		ID:          id,
		Name:        name,
		VMM:         v,
		Privileged:  privileged,
		Frames:      frames,
		pinnedRoots: make(map[hw.PFN]bool),
	}
	d.VCPUs = []*VCPU{newVCPU(d)}
	lo, hi := frames.Range()
	for pfn := lo; pfn < hi; pfn++ {
		v.FT.SetOwner(pfn, id)
	}
	v.Domains[id] = d
	return d
}

// DestroyDomain tears a domain down and returns its info.
func (v *VMM) DestroyDomain(id DomID) error {
	d, ok := v.Domains[id]
	if !ok {
		return fmt.Errorf("xen: destroying nonexistent dom%d", id)
	}
	d.State = DomShutdown
	delete(v.Domains, id)
	return nil
}

// DriverDomain returns the privileged domain (nil if none).
func (v *VMM) DriverDomain() *Domain {
	for _, d := range v.Domains {
		if d.Privileged {
			return d
		}
	}
	return nil
}

// Current returns the domain executing on c, if any.
func (v *VMM) Current(c *hw.CPU) *Domain {
	st := v.cur[c.ID]
	if len(st) == 0 {
		return nil
	}
	return st[len(st)-1]
}

// onStack reports whether d is anywhere on c's dispatch stack.
func (v *VMM) onStack(c *hw.CPU, d *Domain) bool {
	for _, e := range v.cur[c.ID] {
		if e == d {
			return true
		}
	}
	return false
}

// SetCurrent establishes d as the domain running on c without charging a
// switch (used at boot and by Mercury when the adopted OS becomes
// current).
func (v *VMM) SetCurrent(c *hw.CPU, d *Domain) {
	v.cur[c.ID] = v.cur[c.ID][:0]
	if d != nil {
		v.cur[c.ID] = append(v.cur[c.ID], d)
	}
}

// RunInDomain executes fn with d current on c, charging a domain switch
// in and out — used by wiring code that must run driver-domain work on
// behalf of another domain (e.g., pumping the physical NIC).
func (v *VMM) RunInDomain(c *hw.CPU, d *Domain, fn func()) {
	v.runInDomain(c, d, fn)
}

// runInDomain executes fn with d current on c, charging a domain switch
// in and out — the uniprocessor Xen pattern for backend processing.
func (v *VMM) runInDomain(c *hw.CPU, d *Domain, fn func()) {
	var sp obs.SpanRef
	if h := v.tel(); h != nil {
		h.domSwitches.Add(2)
		sp = obs.Begin(h.col, c.ID, c.Now(), "xen/run-in-domain")
	}
	// The target domain is not running: besides the context switch, the
	// initiator eats the VMM scheduler's dispatch latency.
	c.Charge(v.M.Costs.DomSchedLatency)
	c.Charge(v.M.Costs.DomSwitch)
	v.Stats.DomSwitches.Add(1)
	v.traceEmit(c, TrcDomSwitch, d, 0)
	v.cur[c.ID] = append(v.cur[c.ID], d)
	fn()
	v.cur[c.ID] = v.cur[c.ID][:len(v.cur[c.ID])-1]
	c.Charge(v.M.Costs.DomSwitch)
	v.Stats.DomSwitches.Add(1)
	sp.EndArg(c.Now(), uint64(d.ID))
}

// lockMMU serializes page-table validation across CPUs. The wait keeps
// the caller's clock advancing so the cross-CPU lockstep cannot wedge
// against a frozen waiter.
func (v *VMM) lockMMU(c *hw.CPU) {
	for !v.mmuMu.TryLock() {
		c.Charge(60)
		runtime.Gosched()
	}
}

// unlockMMU releases the page-table lock.
func (v *VMM) unlockMMU() { v.mmuMu.Unlock() }

// enter is the hypercall prologue: a world switch into the VMM at PL0.
// The returned closure is the epilogue. Usage: defer v.enter(c, d)().
//
// With a collector installed the epilogue also records the hypercall's
// full latency (prologue charge through body) into the cycle histogram
// and attributes a "xen/hypercall" span to whatever span is open on
// this CPU — a mode-switch phase, a backend event, a benchmark loop.
func (v *VMM) enter(c *hw.CPU, d *Domain) func() {
	h := v.tel()
	var start hw.Cycles
	if h != nil {
		start = c.Now()
	}
	c.Charge(v.M.Costs.WorldSwitch + v.M.Costs.HypercallBase)
	v.Stats.Hypercalls.Add(1)
	v.traceEmit(c, TrcHypercall, d, 0)
	if d != nil {
		d.Stats.Hypercalls.Add(1)
	}
	prev := c.SetMode(hw.PL0)
	if h == nil {
		return func() { c.SetMode(prev) }
	}
	id := uint64(0xFFFE)
	if d != nil {
		id = uint64(d.ID)
	}
	return func() {
		c.SetMode(prev)
		end := c.Now()
		h.hypercalls.Inc()
		h.hypercallCyc.Observe(end - start)
		h.col.Tracer.Complete(c.ID, start, end, "xen/hypercall", id)
	}
}

// hcFrame is the state enterFast hands to exitFast. It lives on the
// caller's stack: unlike enter's closure, the fast prologue/epilogue
// pair performs no heap allocation, which is what lets the PTE-write
// and multicall hot paths pass their AllocsPerRun gates.
type hcFrame struct {
	prev  uint8
	start hw.Cycles
	h     *vmmObs
}

// enterFast is the allocation-free hypercall prologue. Usage:
//
//	fr := v.enterFast(c, d)
//	defer v.exitFast(c, d, fr)
//
// The plain defer (no closure capture beyond the arguments) is
// open-coded by the compiler, so the pair charges and records exactly
// what enter does without touching the heap.
func (v *VMM) enterFast(c *hw.CPU, d *Domain) hcFrame {
	fr := hcFrame{h: v.tel()}
	if fr.h != nil {
		fr.start = c.Now()
	}
	c.Charge(v.M.Costs.WorldSwitch + v.M.Costs.HypercallBase)
	v.Stats.Hypercalls.Add(1)
	v.traceEmit(c, TrcHypercall, d, 0)
	if d != nil {
		d.Stats.Hypercalls.Add(1)
	}
	fr.prev = c.SetMode(hw.PL0)
	return fr
}

// exitFast is the epilogue matching enterFast.
func (v *VMM) exitFast(c *hw.CPU, d *Domain, fr hcFrame) {
	c.SetMode(fr.prev)
	if fr.h == nil {
		return
	}
	end := c.Now()
	fr.h.hypercalls.Inc()
	fr.h.hypercallCyc.Observe(end - fr.start)
	id := uint64(0xFFFE)
	if d != nil {
		id = uint64(d.ID)
	}
	fr.h.col.Tracer.Complete(c.ID, fr.start, end, "xen/hypercall", id)
}
