package xen

import (
	"testing"

	"repro/internal/hw"
)

// journalWrite performs one native-mode PTE store the way the native VO
// does: record the old value, then write memory.
func journalWrite(v *VMM, j *DirtyJournal, table hw.PFN, idx int, e hw.PTE) {
	j.Record(table, idx, hw.ReadPTE(v.M.Mem, table, idx), e)
	hw.WritePTE(v.M.Mem, table, idx, e)
}

// canonical releases the current accounting and rebuilds it with the
// serial recompute — the reference result for the current memory state.
func canonical(t *testing.T, v *VMM, d *Domain, c *hw.CPU, roots []hw.PFN) *FrameTable {
	t.Helper()
	v.ReleaseFrameInfo(c, d)
	if err := v.RecomputeFrameInfo(c, d, roots); err != nil {
		t.Fatal(err)
	}
	return v.FT.Clone()
}

func TestJournalReplayMatchesRecompute(t *testing.T) {
	v, d, c := testVMM(t)
	j := v.EnableJournal(0)
	tb, data := buildTree(t, v, d, 8)
	roots := []hw.PFN{tb.Root}
	if err := v.RecomputeFrameInfo(c, d, roots); err != nil {
		t.Fatal(err)
	}

	v.JournalDetach(c, d)
	if !j.Recording() {
		t.Fatal("detach did not arm the journal")
	}

	// Native-mode churn: remap one page to a fresh frame, drop the write
	// bit on another, clear a third, and double-write a slot (the replay
	// must condense it).
	s0, _ := tb.ExistingSlot(0x0800_0000)
	s1, _ := tb.ExistingSlot(0x0800_0000 + 1<<hw.PageShift)
	s2, _ := tb.ExistingSlot(0x0800_0000 + 2<<hw.PageShift)
	fresh := d.Frames.Alloc()
	journalWrite(v, j, s0.Table, s0.Index, hw.MakePTE(fresh, hw.PTEPresent|hw.PTEWrite|hw.PTEUser))
	journalWrite(v, j, s1.Table, s1.Index, hw.MakePTE(data[1], hw.PTEPresent|hw.PTEUser))
	journalWrite(v, j, s2.Table, s2.Index, 0)
	journalWrite(v, j, s2.Table, s2.Index, hw.MakePTE(data[2], hw.PTEPresent|hw.PTEWrite|hw.PTEUser))

	if err := v.JournalReattach(c, d, roots, 1); err != nil {
		t.Fatal(err)
	}
	st := j.StatsSnapshot()
	if st.Replays != 1 || st.Fallbacks != 0 {
		t.Fatalf("stats after replay: %+v", st)
	}
	if st.ReplaySlots != 3 {
		t.Fatalf("condensation: %d slots replayed, want 3", st.ReplaySlots)
	}
	replayed := v.FT.Clone()
	if err := v.FT.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := canonical(t, v, d, c, roots).Equal(replayed); err != nil {
		t.Fatalf("journal replay diverges from recompute: %v", err)
	}
}

func TestJournalFirstAttachFallsBack(t *testing.T) {
	v, d, c := testVMM(t)
	j := v.EnableJournal(0)
	tb, _ := buildTree(t, v, d, 4)
	roots := []hw.PFN{tb.Root}
	// No detach has armed the ring: the first attach has no snapshot.
	if err := v.JournalReattach(c, d, roots, 1); err != nil {
		t.Fatal(err)
	}
	if st := j.StatsSnapshot(); st.Fallbacks != 1 || st.Replays != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if !d.HasPinned(tb.Root) {
		t.Fatal("fallback did not pin the root")
	}
}

func TestJournalOverflowFallsBack(t *testing.T) {
	v, d, c := testVMM(t)
	j := v.EnableJournal(2)
	tb, data := buildTree(t, v, d, 6)
	roots := []hw.PFN{tb.Root}
	if err := v.RecomputeFrameInfo(c, d, roots); err != nil {
		t.Fatal(err)
	}
	v.JournalDetach(c, d)

	for i := 0; i < 4; i++ {
		s, _ := tb.ExistingSlot(hw.VirtAddr(0x0800_0000 + i<<hw.PageShift))
		journalWrite(v, j, s.Table, s.Index, hw.MakePTE(data[i], hw.PTEPresent|hw.PTEUser))
	}
	if st := j.StatsSnapshot(); st.Overflows != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if err := v.JournalReattach(c, d, roots, 1); err != nil {
		t.Fatal(err)
	}
	if st := j.StatsSnapshot(); st.Fallbacks != 1 || st.Replays != 0 {
		t.Fatalf("stats: %+v", st)
	}
	replayed := v.FT.Clone()
	if err := canonical(t, v, d, c, roots).Equal(replayed); err != nil {
		t.Fatalf("overflow fallback diverges from recompute: %v", err)
	}
}

func TestJournalStructuralChangeFallsBack(t *testing.T) {
	v, d, c := testVMM(t)
	j := v.EnableJournal(0)
	tb, _ := buildTree(t, v, d, 4)
	roots := []hw.PFN{tb.Root}
	if err := v.RecomputeFrameInfo(c, d, roots); err != nil {
		t.Fatal(err)
	}
	v.JournalDetach(c, d)
	j.RecordStructural() // e.g. a root registered while native
	if err := v.JournalReattach(c, d, roots, 1); err != nil {
		t.Fatal(err)
	}
	if st := j.StatsSnapshot(); st.Structural != 1 || st.Fallbacks != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// A store to a frame the snapshot does not know as an L1 (here: a
// directory) is structural too — the ring cannot replay it.
func TestJournalNonLeafStoreIsStructural(t *testing.T) {
	v, d, c := testVMM(t)
	j := v.EnableJournal(0)
	tb, _ := buildTree(t, v, d, 4)
	roots := []hw.PFN{tb.Root}
	if err := v.RecomputeFrameInfo(c, d, roots); err != nil {
		t.Fatal(err)
	}
	v.JournalDetach(c, d)
	j.Record(tb.Root, 5, 0, 0) // L2 store
	if st := j.StatsSnapshot(); st.Structural != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if j.Len() != 0 {
		t.Fatal("structural store buffered")
	}
}

func TestJournalCorruptionDetectedAndRetryable(t *testing.T) {
	v, d, c := testVMM(t)
	j := v.EnableJournal(0)
	tb, data := buildTree(t, v, d, 6)
	roots := []hw.PFN{tb.Root}
	if err := v.RecomputeFrameInfo(c, d, roots); err != nil {
		t.Fatal(err)
	}
	v.JournalDetach(c, d)
	for i := 0; i < 3; i++ {
		s, _ := tb.ExistingSlot(hw.VirtAddr(0x0800_0000 + i<<hw.PageShift))
		journalWrite(v, j, s.Table, s.Index, hw.MakePTE(data[i], hw.PTEPresent|hw.PTEUser))
	}
	before := v.FT.Clone()

	undo, err := j.CorruptEntryPick(func(n int) int { return n / 2 })
	if err != nil {
		t.Fatal(err)
	}
	if err := v.JournalReattach(c, d, roots, 1); err == nil {
		t.Fatal("corrupted journal entry not detected")
	}
	if st := j.StatsSnapshot(); st.ReplayErrors != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// Nothing applied: the snapshot is untouched and the ring intact, so
	// undoing the corruption makes the retry succeed (the switch's
	// rollback-and-retry path).
	if err := v.FT.Equal(before); err != nil {
		t.Fatalf("failed replay modified the frame table: %v", err)
	}
	undo()
	if err := v.JournalReattach(c, d, roots, 1); err != nil {
		t.Fatalf("retry after undo: %v", err)
	}
	if st := j.StatsSnapshot(); st.Replays != 1 {
		t.Fatalf("stats: %+v", st)
	}
	replayed := v.FT.Clone()
	if err := canonical(t, v, d, c, roots).Equal(replayed); err != nil {
		t.Fatalf("retried replay diverges: %v", err)
	}
}

// The perf claim behind the policy: re-attach by replay at ~10% dirty
// must beat the full recompute by at least 5x.
func TestJournalReattachBeatsRecompute(t *testing.T) {
	v, d, c := testVMM(t)
	j := v.EnableJournal(0)
	tb, data := buildTree(t, v, d, 64)
	roots := []hw.PFN{tb.Root}

	before := c.Now()
	if err := v.RecomputeFrameInfo(c, d, roots); err != nil {
		t.Fatal(err)
	}
	fullAttach := c.Now() - before

	v.JournalDetach(c, d)
	for i := 0; i < 6; i++ { // ~10% of the 64 mapped pages
		s, _ := tb.ExistingSlot(hw.VirtAddr(0x0800_0000 + i<<hw.PageShift))
		journalWrite(v, j, s.Table, s.Index, hw.MakePTE(data[i], hw.PTEPresent|hw.PTEUser))
	}
	before = c.Now()
	if err := v.JournalReattach(c, d, roots, 1); err != nil {
		t.Fatal(err)
	}
	replayAttach := c.Now() - before
	if replayAttach*5 > fullAttach {
		t.Fatalf("replay attach %d cycles vs full %d: less than 5x win", replayAttach, fullAttach)
	}
}

func TestJournalCheckConsistent(t *testing.T) {
	v, _, _ := testVMM(t)
	j := v.EnableJournal(4)
	if err := j.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	j.Arm()
	if err := j.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	j.snapshot = false // recording without a snapshot is inconsistent
	if err := j.CheckConsistent(); err == nil {
		t.Fatal("inconsistent journal state not reported")
	}
}

// TestJournalRecordReplayAllocFree is the attach-path allocation gate:
// after warm-up (which sizes the reusable replay scratch), a full
// detach / record / replay epoch performs zero heap allocations.
func TestJournalRecordReplayAllocFree(t *testing.T) {
	v, d, c := testVMM(t)
	j := v.EnableJournal(0)
	tb, _ := buildTree(t, v, d, 4)
	roots := []hw.PFN{tb.Root}
	if err := v.RecomputeFrameInfo(c, d, roots); err != nil {
		t.Fatal(err)
	}

	// Live L1 slots to store to: same-value writes keep every epoch
	// replayable with zero frame deltas, so the loop body is pure
	// journal mechanism.
	s0, _ := tb.ExistingSlot(0x0800_0000)
	s1, _ := tb.ExistingSlot(0x0800_0000 + 1<<hw.PageShift)
	e0 := hw.ReadPTE(v.M.Mem, s0.Table, s0.Index)
	e1 := hw.ReadPTE(v.M.Mem, s1.Table, s1.Index)

	allocs := testing.AllocsPerRun(50, func() {
		v.JournalDetach(c, d)
		j.Record(s0.Table, s0.Index, e0, e0)
		j.Record(s1.Table, s1.Index, e1, e1)
		j.Record(s0.Table, s0.Index, e0, e0) // superseded: condensed away
		if err := v.JournalReattach(c, d, roots, 1); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("journal record+replay allocates %.1f per run, want 0", allocs)
	}
	if st := j.StatsSnapshot(); st.Fallbacks != 0 {
		t.Fatalf("epochs fell back to recompute: %+v", st)
	}
}
