package xen

import (
	"fmt"

	"repro/internal/hw"
)

// DomID identifies a domain. The driver domain (domain0 in stock Xen, or
// the self-virtualized Mercury OS) is Dom0.
type DomID uint16

// Dom0 is the driver domain's ID. DomVMM marks frames owned by the VMM
// itself (its pre-cached footprint).
const (
	Dom0   DomID = 0
	DomVMM DomID = 0xFFFF
)

// FrameType is the exclusive use a physical frame is validated for. A
// frame can be re-typed only when its type count has dropped to zero;
// this is what guarantees a live page-table page is never writable by a
// guest (§5.1.2).
type FrameType uint8

const (
	FrameNone     FrameType = iota // no validated use
	FrameWritable                  // mapped writable somewhere
	FrameL1                        // validated page-table (leaf) page
	FrameL2                        // validated page-directory page
)

func (t FrameType) String() string {
	switch t {
	case FrameNone:
		return "none"
	case FrameWritable:
		return "writable"
	case FrameL1:
		return "L1"
	case FrameL2:
		return "L2"
	}
	return fmt.Sprintf("type%d", uint8(t))
}

// FrameInfo is the VMM's bookkeeping for one physical frame: who owns it,
// what it is validated as, how many references hold that type, and how
// many references exist at all. This is exactly the state Mercury must
// refill when a pre-cached VMM is activated (§5.1.2): in native mode the
// VMM is inert and the table goes stale.
type FrameInfo struct {
	Owner     DomID
	Type      FrameType
	TypeCount uint32 // references holding the current type
	TotalRefs uint32 // all references (existence count)
	Pinned    bool   // explicitly pinned as a page-table root or table
}

// frameAcct is the resettable part of a frame's accounting. Ownership
// lives in its own array so a detach can drop the whole accounting state
// with one bulk zero without disturbing who owns what.
type frameAcct struct {
	Type      FrameType
	Pinned    bool
	TypeCount uint32 // references holding the current type
	TotalRefs uint32 // all references (existence count)
}

// FrameTable is the VMM's per-frame accounting array. Accounting state
// (type/counts/pin) and ownership are split into parallel arrays: Reset
// bulk-zeroes the accounting array while ownership persists across
// detach/attach cycles.
//
// The table also keeps an epoch-stamped dirty set: every accounting
// mutation records the frame as touched since the last Reset, so a
// detach can charge cycles proportional to the frames the last attached
// epoch actually dirtied instead of the whole table.
type FrameTable struct {
	owner []DomID
	acct  []frameAcct
	mem   *hw.PhysMem

	touchEpoch []uint64
	touched    []hw.PFN
	epoch      uint64
}

// NewFrameTable builds accounting for every frame of mem.
func NewFrameTable(mem *hw.PhysMem) *FrameTable {
	n := mem.NumFrames()
	return &FrameTable{
		owner: make([]DomID, n),
		acct:  make([]frameAcct, n),
		mem:   mem,
		// touched is pre-sized to the table: the first attach dirties a
		// large fraction of the working set, and append-growth there
		// would reallocate the dirty set several times mid-recompute.
		touchEpoch: make([]uint64, n),
		touched:    make([]hw.PFN, 0, n),
		epoch:      1,
	}
}

// touch records pfn as dirtied in the current epoch (deduplicated).
func (ft *FrameTable) touch(pfn hw.PFN) {
	if ft.touchEpoch[pfn] != ft.epoch {
		ft.touchEpoch[pfn] = ft.epoch
		ft.touched = append(ft.touched, pfn)
	}
}

// Touched returns how many distinct frames have had accounting mutations
// since the last Reset.
func (ft *FrameTable) Touched() int { return len(ft.touched) }

// Get returns a copy of the frame's info.
func (ft *FrameTable) Get(pfn hw.PFN) FrameInfo {
	a := ft.acct[pfn]
	return FrameInfo{
		Owner:     ft.owner[pfn],
		Type:      a.Type,
		TypeCount: a.TypeCount,
		TotalRefs: a.TotalRefs,
		Pinned:    a.Pinned,
	}
}

// SetOwner assigns a frame to a domain.
func (ft *FrameTable) SetOwner(pfn hw.PFN, d DomID) { ft.owner[pfn] = d }

// Set overwrites a frame's accounting entry wholesale. This deliberately
// bypasses the type system — it exists for fault injection (bit-flips in
// the accounting array) and for restoring a saved entry afterwards.
func (ft *FrameTable) Set(pfn hw.PFN, fi FrameInfo) {
	ft.owner[pfn] = fi.Owner
	ft.acct[pfn] = frameAcct{
		Type:      fi.Type,
		TypeCount: fi.TypeCount,
		TotalRefs: fi.TotalRefs,
		Pinned:    fi.Pinned,
	}
	ft.touch(pfn)
}

// Reset clears type/count state for every frame while preserving
// ownership: one bulk zero of the accounting array. A detach
// (virtual -> native switch) resets the table; the next attach
// recomputes it.
func (ft *FrameTable) Reset() {
	clear(ft.acct)
	ft.epoch++
	ft.touched = ft.touched[:0]
}

// ResetCharged is Reset with its cost charged to c: per touched frame,
// not per table entry, so a detach after a small attached epoch is
// proportionally cheap.
func (ft *FrameTable) ResetCharged(c *hw.CPU, perFrame hw.Cycles) {
	c.Charge(perFrame * hw.Cycles(len(ft.touched)))
	ft.Reset()
}

// errType reports a type-safety violation.
func errType(pfn hw.PFN, have FrameType, haveCount uint32, want FrameType) error {
	return fmt.Errorf("xen: frame %d is %s(count %d), cannot become %s",
		pfn, have, haveCount, want)
}

// GetType takes one typed reference on pfn as want. Re-typing is only
// legal when the current type count is zero. Taking the first FrameL1/L2
// reference does NOT validate entries here; validation is done by the
// pin/validate paths, which charge cycles.
func (ft *FrameTable) GetType(pfn hw.PFN, want FrameType) error {
	fi := &ft.acct[pfn]
	if fi.TypeCount != 0 && fi.Type != want {
		return errType(pfn, fi.Type, fi.TypeCount, want)
	}
	fi.Type = want
	fi.TypeCount++
	ft.touch(pfn)
	return nil
}

// PutType drops one typed reference.
func (ft *FrameTable) PutType(pfn hw.PFN) {
	fi := &ft.acct[pfn]
	if fi.TypeCount == 0 {
		panic(fmt.Sprintf("xen: type count underflow on frame %d", pfn))
	}
	fi.TypeCount--
	if fi.TypeCount == 0 {
		fi.Type = FrameNone
	}
	ft.touch(pfn)
}

// GetRef takes one existence reference.
func (ft *FrameTable) GetRef(pfn hw.PFN) {
	ft.acct[pfn].TotalRefs++
	ft.touch(pfn)
}

// PutRef drops one existence reference.
func (ft *FrameTable) PutRef(pfn hw.PFN) {
	fi := &ft.acct[pfn]
	if fi.TotalRefs == 0 {
		panic(fmt.Sprintf("xen: total ref underflow on frame %d", pfn))
	}
	fi.TotalRefs--
	ft.touch(pfn)
}

// setPinned flips the pin mark on a frame.
func (ft *FrameTable) setPinned(pfn hw.PFN, on bool) {
	ft.acct[pfn].Pinned = on
	ft.touch(pfn)
}

// CheckInvariants verifies the accounting invariants the property tests
// rely on. It returns the first violation found.
func (ft *FrameTable) CheckInvariants() error {
	for pfn := range ft.acct {
		fi := &ft.acct[pfn]
		if fi.TypeCount > fi.TotalRefs {
			return fmt.Errorf("xen: frame %d: type count %d exceeds total refs %d",
				pfn, fi.TypeCount, fi.TotalRefs)
		}
		if fi.TypeCount > 0 && fi.Type == FrameNone {
			return fmt.Errorf("xen: frame %d: %d typed refs but type none",
				pfn, fi.TypeCount)
		}
		if fi.TypeCount == 0 && fi.Type != FrameNone {
			return fmt.Errorf("xen: frame %d: type %s with zero count",
				pfn, fi.Type)
		}
		if fi.Pinned && fi.TypeCount == 0 {
			return fmt.Errorf("xen: frame %d pinned without a typed ref", pfn)
		}
	}
	return nil
}

// Equal compares two tables entry by entry; the recompute-vs-active-
// tracking property test uses it.
func (ft *FrameTable) Equal(o *FrameTable) error {
	if len(ft.acct) != len(o.acct) {
		return fmt.Errorf("xen: frame tables differ in size")
	}
	for i := range ft.acct {
		if ft.owner[i] != o.owner[i] || ft.acct[i] != o.acct[i] {
			return fmt.Errorf("xen: frame %d differs: %+v vs %+v",
				i, ft.Get(hw.PFN(i)), o.Get(hw.PFN(i)))
		}
	}
	return nil
}

// Clone deep-copies the table.
func (ft *FrameTable) Clone() *FrameTable {
	cp := &FrameTable{
		owner:      make([]DomID, len(ft.owner)),
		acct:       make([]frameAcct, len(ft.acct)),
		mem:        ft.mem,
		touchEpoch: make([]uint64, len(ft.touchEpoch)),
		touched:    make([]hw.PFN, len(ft.touched)),
		epoch:      ft.epoch,
	}
	copy(cp.owner, ft.owner)
	copy(cp.acct, ft.acct)
	copy(cp.touchEpoch, ft.touchEpoch)
	copy(cp.touched, ft.touched)
	return cp
}

// NumFrames returns the table size.
func (ft *FrameTable) NumFrames() int { return len(ft.acct) }
