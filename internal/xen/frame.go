// Package xen implements the full-fledged VMM substrate Mercury attaches
// and detaches: domains, hypercalls, per-frame ownership/type/count
// accounting with direct-mode paging, event channels, grant-mapped shared
// I/O rings with backend drivers, and a simple domain scheduler. It is a
// from-scratch reimplementation of the Xen 3.0.x mechanisms the paper's
// prototype relies on, reduced to the parts that determine behaviour and
// cost.
package xen

import (
	"fmt"

	"repro/internal/hw"
)

// DomID identifies a domain. The driver domain (domain0 in stock Xen, or
// the self-virtualized Mercury OS) is Dom0.
type DomID uint16

// Dom0 is the driver domain's ID. DomVMM marks frames owned by the VMM
// itself (its pre-cached footprint).
const (
	Dom0   DomID = 0
	DomVMM DomID = 0xFFFF
)

// FrameType is the exclusive use a physical frame is validated for. A
// frame can be re-typed only when its type count has dropped to zero;
// this is what guarantees a live page-table page is never writable by a
// guest (§5.1.2).
type FrameType uint8

const (
	FrameNone     FrameType = iota // no validated use
	FrameWritable                  // mapped writable somewhere
	FrameL1                        // validated page-table (leaf) page
	FrameL2                        // validated page-directory page
)

func (t FrameType) String() string {
	switch t {
	case FrameNone:
		return "none"
	case FrameWritable:
		return "writable"
	case FrameL1:
		return "L1"
	case FrameL2:
		return "L2"
	}
	return fmt.Sprintf("type%d", uint8(t))
}

// FrameInfo is the VMM's bookkeeping for one physical frame: who owns it,
// what it is validated as, how many references hold that type, and how
// many references exist at all. This is exactly the state Mercury must
// refill when a pre-cached VMM is activated (§5.1.2): in native mode the
// VMM is inert and the table goes stale.
type FrameInfo struct {
	Owner     DomID
	Type      FrameType
	TypeCount uint32 // references holding the current type
	TotalRefs uint32 // all references (existence count)
	Pinned    bool   // explicitly pinned as a page-table root or table
}

// FrameTable is the VMM's per-frame accounting array.
type FrameTable struct {
	info []FrameInfo
	mem  *hw.PhysMem
}

// NewFrameTable builds accounting for every frame of mem.
func NewFrameTable(mem *hw.PhysMem) *FrameTable {
	return &FrameTable{info: make([]FrameInfo, mem.NumFrames()), mem: mem}
}

// Get returns a copy of the frame's info.
func (ft *FrameTable) Get(pfn hw.PFN) FrameInfo { return ft.info[pfn] }

// SetOwner assigns a frame to a domain.
func (ft *FrameTable) SetOwner(pfn hw.PFN, d DomID) { ft.info[pfn].Owner = d }

// Set overwrites a frame's accounting entry wholesale. This deliberately
// bypasses the type system — it exists for fault injection (bit-flips in
// the accounting array) and for restoring a saved entry afterwards.
func (ft *FrameTable) Set(pfn hw.PFN, fi FrameInfo) { ft.info[pfn] = fi }

// Reset clears type/count state for every frame while preserving
// ownership. A detach (virtual -> native switch) resets the table; the
// next attach recomputes it.
func (ft *FrameTable) Reset() {
	for i := range ft.info {
		ft.info[i].Type = FrameNone
		ft.info[i].TypeCount = 0
		ft.info[i].TotalRefs = 0
		ft.info[i].Pinned = false
	}
}

// errType reports a type-safety violation.
func errType(pfn hw.PFN, have FrameType, haveCount uint32, want FrameType) error {
	return fmt.Errorf("xen: frame %d is %s(count %d), cannot become %s",
		pfn, have, haveCount, want)
}

// GetType takes one typed reference on pfn as want. Re-typing is only
// legal when the current type count is zero. Taking the first FrameL1/L2
// reference does NOT validate entries here; validation is done by the
// pin/validate paths, which charge cycles.
func (ft *FrameTable) GetType(pfn hw.PFN, want FrameType) error {
	fi := &ft.info[pfn]
	if fi.TypeCount != 0 && fi.Type != want {
		return errType(pfn, fi.Type, fi.TypeCount, want)
	}
	fi.Type = want
	fi.TypeCount++
	return nil
}

// PutType drops one typed reference.
func (ft *FrameTable) PutType(pfn hw.PFN) {
	fi := &ft.info[pfn]
	if fi.TypeCount == 0 {
		panic(fmt.Sprintf("xen: type count underflow on frame %d", pfn))
	}
	fi.TypeCount--
	if fi.TypeCount == 0 {
		fi.Type = FrameNone
	}
}

// GetRef takes one existence reference.
func (ft *FrameTable) GetRef(pfn hw.PFN) { ft.info[pfn].TotalRefs++ }

// PutRef drops one existence reference.
func (ft *FrameTable) PutRef(pfn hw.PFN) {
	fi := &ft.info[pfn]
	if fi.TotalRefs == 0 {
		panic(fmt.Sprintf("xen: total ref underflow on frame %d", pfn))
	}
	fi.TotalRefs--
}

// CheckInvariants verifies the accounting invariants the property tests
// rely on. It returns the first violation found.
func (ft *FrameTable) CheckInvariants() error {
	for pfn := range ft.info {
		fi := &ft.info[pfn]
		if fi.TypeCount > fi.TotalRefs {
			return fmt.Errorf("xen: frame %d: type count %d exceeds total refs %d",
				pfn, fi.TypeCount, fi.TotalRefs)
		}
		if fi.TypeCount > 0 && fi.Type == FrameNone {
			return fmt.Errorf("xen: frame %d: %d typed refs but type none",
				pfn, fi.TypeCount)
		}
		if fi.TypeCount == 0 && fi.Type != FrameNone {
			return fmt.Errorf("xen: frame %d: type %s with zero count",
				pfn, fi.Type)
		}
		if fi.Pinned && fi.TypeCount == 0 {
			return fmt.Errorf("xen: frame %d pinned without a typed ref", pfn)
		}
	}
	return nil
}

// Equal compares two tables entry by entry; the recompute-vs-active-
// tracking property test uses it.
func (ft *FrameTable) Equal(o *FrameTable) error {
	if len(ft.info) != len(o.info) {
		return fmt.Errorf("xen: frame tables differ in size")
	}
	for i := range ft.info {
		a, b := ft.info[i], o.info[i]
		if a != b {
			return fmt.Errorf("xen: frame %d differs: %+v vs %+v", i, a, b)
		}
	}
	return nil
}

// Clone deep-copies the table.
func (ft *FrameTable) Clone() *FrameTable {
	cp := &FrameTable{info: make([]FrameInfo, len(ft.info)), mem: ft.mem}
	copy(cp.info, ft.info)
	return cp
}

// NumFrames returns the table size.
func (ft *FrameTable) NumFrames() int { return len(ft.info) }
