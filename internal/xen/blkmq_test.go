package xen

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/obs"
)

// mqEnv wires a multi-queue backend between two domains, with the
// frontend side driven by hand (the guest-layer frontend is tested in
// internal/workloads).
func mqEnv(t *testing.T, queues, depth, threshold int) (*VMM, *Domain, *Domain, *hw.CPU, *BlkMQBackend) {
	t.Helper()
	v, d0, dU, c := twoDomains(t)
	be := NewBlkMQBackend(v, d0, v.M.Disk, queues, depth, threshold)
	return v, d0, dU, c, be
}

// pushGrants grants n fresh frames from dU and pushes write requests
// for them on queue q, returning the refs and whether the push said to
// notify.
func pushGrants(c *hw.CPU, v *VMM, dU *Domain, be *BlkMQBackend, qi int, startID, startBlock uint64, n int) (refs []GrantRef, notify bool) {
	reqs := make([]BlkRequest, n)
	for i := 0; i < n; i++ {
		pfn := dU.Frames.Alloc()
		fb := v.M.Mem.FrameBytes(pfn)
		for j := range fb {
			fb[j] = byte(startID + uint64(i))
		}
		ref := dU.GrantAccess(c, be.Dom.ID, pfn, true)
		refs = append(refs, ref)
		reqs[i] = BlkRequest{
			ID: startID + uint64(i), Block: startBlock + uint64(i),
			Write: true, Grant: ref, Front: dU.ID,
		}
	}
	pushed, notify := be.Queues[qi].Ring.PushRequests(c, reqs)
	if pushed != n {
		panic("push fell short")
	}
	return refs, notify
}

func TestBlkMQRoundTripAndMerge(t *testing.T) {
	v, _, dU, c, be := mqEnv(t, 2, 64, 1)
	diskBefore := v.M.Disk.Stats.Requests
	if _, notify := pushGrants(c, v, dU, be, 0, 0, 100, 8); !notify {
		t.Fatal("first push must notify")
	}
	if served := be.PollQueue(c, be.Queues[0]); served != 8 {
		t.Fatalf("served %d of 8", served)
	}
	// 8 contiguous same-direction blocks: one merged disk request.
	if got := v.M.Disk.Stats.Requests - diskBefore; got != 1 {
		t.Fatalf("8 contiguous blocks took %d disk requests", got)
	}
	if be.Stats.Merges.Load() != 7 {
		t.Fatalf("merges = %d", be.Stats.Merges.Load())
	}
	resp := make([]BlkResponse, 64)
	if n := be.Queues[0].Ring.TakeResponses(c, resp); n != 8 {
		t.Fatalf("got %d responses", n)
	}
	for i := 0; i < 8; i++ {
		if resp[i].Err != "" {
			t.Fatalf("response %d: %s", i, resp[i].Err)
		}
	}
}

func TestBlkMQGrantBatchPerRun(t *testing.T) {
	v, _, dU, c, be := mqEnv(t, 1, 64, 1)
	col := obs.New(1)
	v.M.SetTelemetry(col)
	pushGrants(c, v, dU, be, 0, 0, 10, 16)
	be.PollQueue(c, be.Queues[0])
	batches := col.Registry.Counter("xen", "grant_map_batches_total").Load()
	refs := col.Registry.Counter("xen", "grant_map_batch_refs_total").Load()
	if batches != 1 || refs != 16 {
		t.Fatalf("grant batches=%d refs=%d, want 1/16", batches, refs)
	}
}

func TestBlkMQDoorbellCoalescing(t *testing.T) {
	// depth 64, threshold depth/4 = 16: after the backend drains and
	// re-arms, a trickle of single-request pushes rings once per 16.
	v, _, dU, c, be := mqEnv(t, 1, 64, 16)
	q := be.Queues[0]
	pushGrants(c, v, dU, be, 0, 0, 0, 1)
	be.PollQueue(c, q) // drain + re-arm 16 ahead
	resp := make([]BlkResponse, 64)
	q.Ring.TakeResponses(c, resp)

	kicks := 0
	for i := 0; i < 35; i++ {
		_, notify := pushGrants(c, v, dU, be, 0, uint64(100+i), uint64(200+i*2), 1)
		if notify {
			kicks++
			be.PollQueue(c, q)
			q.Ring.TakeResponses(c, resp)
		}
	}
	if kicks != 2 {
		t.Fatalf("35 trickled requests rang %d doorbells, want 2 (threshold 16)", kicks)
	}
	// Whatever the trickle left queued is served by a scheduler slice.
	if q.Ring.RequestsPending() == 0 {
		t.Fatal("expected a sub-threshold tail to be pending")
	}
	be.Serve(c, 1<<30)
	if q.Ring.RequestsPending() != 0 {
		t.Fatal("Serve left requests pending")
	}
	st := &q.Ring.Stats
	slots := st.ReqSlots.Load() + st.RespSlots.Load()
	rung := st.ReqKicks.Load() + st.RespKicks.Load()
	if ratio := float64(slots) / float64(rung); ratio < 5 {
		t.Fatalf("suppression ratio %.1f < 5 at depth 64", ratio)
	}
}

func TestBlkMQServeHonorsBudgetAndQueues(t *testing.T) {
	v, _, dU, c, be := mqEnv(t, 4, 16, 1)
	for qi := 0; qi < 4; qi++ {
		pushGrants(c, v, dU, be, qi, uint64(qi*100), uint64(qi*1000), 4)
	}
	be.Serve(c, 1<<30)
	if be.Pending() != 0 {
		t.Fatalf("pending %d after Serve", be.Pending())
	}
	if be.Stats.Requests.Load() != 16 {
		t.Fatalf("served %d of 16", be.Stats.Requests.Load())
	}
	// Zero budget: at most one sweep's worth of progress per call, so a
	// stalled-clock caller cannot spin forever.
	pushGrants(c, v, dU, be, 0, 500, 5000, 2)
	be.Serve(c, 0)
	if be.Pending() != 0 {
		t.Fatal("single sweep did not drain a small burst")
	}
}

func TestBlkMQStallAndAudit(t *testing.T) {
	v, _, dU, c, be := mqEnv(t, 2, 16, 1)
	be.StallQueue(1, true)
	pushGrants(c, v, dU, be, 1, 0, 50, 3)
	if msg := be.Audit(); msg != "" {
		t.Fatalf("first audit must arm, got %q", msg)
	}
	be.Serve(c, 1<<30) // service attempt; queue 1 is wedged
	msg := be.Audit()
	if msg == "" {
		t.Fatal("stalled queue not detected")
	}
	be.StallQueue(1, false)
	be.Serve(c, 1<<30)
	if msg := be.Audit(); msg != "" {
		t.Fatalf("recovered queue still flagged: %q", msg)
	}
	_ = v
	_ = dU
}

func TestBlkMQBadGrantFailsRun(t *testing.T) {
	_, _, dU, c, be := mqEnv(t, 1, 16, 1)
	q := be.Queues[0]
	q.Ring.PushRequests(c, []BlkRequest{
		{ID: 7, Block: 3, Write: true, Grant: 999, Front: dU.ID},
	})
	be.PollQueue(c, q)
	resp := make([]BlkResponse, 16)
	if n := q.Ring.TakeResponses(c, resp); n != 1 || resp[0].Err == "" {
		t.Fatalf("bad grant: n=%d err=%q", n, resp[0].Err)
	}
}
