package xen

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/hw"
)

// DomState is a domain's lifecycle state.
type DomState uint8

const (
	DomRunning DomState = iota
	DomPaused
	DomShutdown
)

// GuestGate is one entry of a guest's registered trap table: when the
// VMM owns the hardware IDT it bounces guest-bound traps through these
// handlers, running them at the guest's (deprivileged) level.
type GuestGate struct {
	Present bool
	Handler func(c *hw.CPU, f *hw.TrapFrame)
}

// VCPU is a domain's virtual CPU. The virtual interrupt flag is what
// the paravirtualized guest toggles with a cheap shared-memory write
// instead of cli/sti (which would trap at PL1). Fields are atomic: on
// SMP, several physical CPUs touch the vcpu state concurrently.
type VCPU struct {
	Dom *Domain
	ID  int

	vif atomic.Bool
	cr3 atomic.Uint32 // guest page-directory root currently installed
}

// VIF reads the virtual interrupt flag.
func (vc *VCPU) VIF() bool { return vc.vif.Load() }

// SetVIF writes the virtual interrupt flag.
func (vc *VCPU) SetVIF(on bool) { vc.vif.Store(on) }

// CR3 reads the recorded guest page-directory root.
func (vc *VCPU) CR3() hw.PFN { return hw.PFN(vc.cr3.Load()) }

// SetCR3 records the guest page-directory root.
func (vc *VCPU) SetCR3(root hw.PFN) { vc.cr3.Store(uint32(root)) }

// Domain is one guest under the VMM.
type Domain struct {
	ID         DomID
	Name       string
	VMM        *VMM
	Privileged bool // driver domain: direct device access, domctl rights
	State      DomState

	// Frames is the domain's physical memory partition.
	Frames *hw.FrameAllocator

	VCPUs []*VCPU

	// TrapTable holds the guest's registered exception handlers
	// (set_trap_table hypercall).
	TrapTable [hw.NumVectors]GuestGate

	// ports is the domain's event-channel table.
	ports []*channel

	// grants is the domain's grant table; grantFree recycles revoked
	// refs so GrantAccess stays O(1) on a fragmented table.
	grants    []*grantEntry
	grantFree []GrantRef

	// pinnedRoots tracks page-directory roots this domain has pinned.
	pinnedRoots map[hw.PFN]bool

	// TimerHandler receives the virtual timer tick (VIRQ_TIMER).
	TimerHandler func(c *hw.CPU)

	// BackgroundWork, when set, is the vcpu's compute function for a
	// passive domain: the VMM's credit scheduler invokes it with a
	// cycle budget each tick (see sched.go).
	BackgroundWork func(c *hw.CPU, budget hw.Cycles)

	Stats DomainStats
}

// DomainStats counts per-domain VMM interactions (atomic: multiple
// vcpus/CPUs update them concurrently).
type DomainStats struct {
	Hypercalls   atomic.Uint64
	Multicalls   atomic.Uint64 // multicall batches issued by this domain
	MulticallOps atomic.Uint64 // ops carried inside those batches
	MMUUpdates   atomic.Uint64
	FaultBounces atomic.Uint64
	EventsIn     atomic.Uint64
	EventsOut    atomic.Uint64
}

// newVCPU builds the boot vcpu with interrupts enabled.
func newVCPU(d *Domain) *VCPU {
	vc := &VCPU{Dom: d, ID: 0}
	vc.SetVIF(true)
	return vc
}

// VCPU0 returns the domain's boot vcpu.
func (d *Domain) VCPU0() *VCPU { return d.VCPUs[0] }

// SetTrapGate registers a guest handler for vector (part of
// set_trap_table).
func (d *Domain) SetTrapGate(vector int, h func(c *hw.CPU, f *hw.TrapFrame)) {
	d.TrapTable[vector] = GuestGate{Present: true, Handler: h}
}

// bounce delivers a trap into the guest's registered handler, charging
// the VMM-mediated fault cost and running the handler deprivileged.
func (d *Domain) bounce(c *hw.CPU, f *hw.TrapFrame) {
	g := d.TrapTable[f.Vector]
	if !g.Present {
		panic(fmt.Sprintf("xen: dom%d has no handler for vector %d (fatal guest fault)",
			d.ID, f.Vector))
	}
	h := d.VMM.tel()
	var start hw.Cycles
	if h != nil {
		start = c.Now()
	}
	c.Charge(d.VMM.M.Costs.FaultBounce)
	d.Stats.FaultBounces.Add(1)
	d.VMM.traceEmit(c, TrcFaultBounce, d, uint64(f.Vector))
	prev := c.SetMode(hw.PL1)
	g.Handler(c, f)
	c.SetMode(prev)
	if h != nil {
		end := c.Now()
		h.faultBounces.Inc()
		h.faultBounceCyc.Observe(end - start)
		h.col.Tracer.Complete(c.ID, start, end, "xen/fault-bounce", uint64(f.Vector))
	}
}

// HasPinned reports whether root is a pinned page-directory of d.
func (d *Domain) HasPinned(root hw.PFN) bool { return d.pinnedRoots[root] }

// PinnedRoots returns the pinned roots (for checkpoint/migration),
// sorted ascending: map iteration order must not leak into snapshot
// images, the repinRoots multicall pin order, or its journaled Applied
// prefix (the same nondeterminism class PR 3 fixed for LiveRoots).
func (d *Domain) PinnedRoots() []hw.PFN {
	out := make([]hw.PFN, 0, len(d.pinnedRoots))
	for r := range d.pinnedRoots {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
