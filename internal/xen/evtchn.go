package xen

import (
	"fmt"

	"repro/internal/hw"
)

// Port numbers an event channel endpoint within one domain.
type Port int

type chanState uint8

const (
	chanFree chanState = iota
	chanUnbound
	chanInterdomain
)

// channel is one endpoint in a domain's event-channel table. Event
// channels are Xen's virtual interrupt lines: the frontend/backend split
// drivers notify each other through them (§5.2).
type channel struct {
	state      chanState
	allowedDom DomID // who may bind to an unbound port
	remoteDom  DomID
	remotePort Port
	pending    bool
	handler    func(c *hw.CPU)
}

// allocPort finds or grows a free slot in d's table.
func (d *Domain) allocPort() Port {
	for i, ch := range d.ports {
		if ch.state == chanFree {
			return Port(i)
		}
	}
	d.ports = append(d.ports, &channel{})
	return Port(len(d.ports) - 1)
}

// SetPortHandler binds a local callback to a port; the upcall dispatcher
// invokes it when the port is pending. This is guest-local state, not a
// hypercall.
func (d *Domain) SetPortHandler(p Port, h func(c *hw.CPU)) {
	d.ports[p].handler = h
}

// EvtchnAllocUnbound creates a port in d that remote may later bind to.
func (v *VMM) EvtchnAllocUnbound(c *hw.CPU, d *Domain, remote DomID) Port {
	defer v.enter(c, d)()
	p := d.allocPort()
	d.ports[p].state = chanUnbound
	d.ports[p].allowedDom = remote
	return p
}

// EvtchnBindInterdomain connects a new port in d to remoteDom's
// unbound remotePort, completing the pair.
func (v *VMM) EvtchnBindInterdomain(c *hw.CPU, d *Domain, remoteDom DomID, remotePort Port) (Port, error) {
	defer v.enter(c, d)()
	rd, ok := v.Domains[remoteDom]
	if !ok {
		return 0, fmt.Errorf("xen: bind to nonexistent dom%d", remoteDom)
	}
	if int(remotePort) >= len(rd.ports) || rd.ports[remotePort].state != chanUnbound {
		return 0, fmt.Errorf("xen: dom%d port %d not unbound", remoteDom, remotePort)
	}
	if rd.ports[remotePort].allowedDom != d.ID {
		return 0, fmt.Errorf("xen: dom%d port %d not offered to dom%d",
			remoteDom, remotePort, d.ID)
	}
	p := d.allocPort()
	d.ports[p].state = chanInterdomain
	d.ports[p].remoteDom = remoteDom
	d.ports[p].remotePort = remotePort
	rd.ports[remotePort].state = chanInterdomain
	rd.ports[remotePort].remoteDom = d.ID
	rd.ports[remotePort].remotePort = p
	return p, nil
}

// EvtchnSend raises the event bound to d's port p. If the remote domain
// is runnable and not already on this physical CPU's dispatch stack, the
// VMM switches to it and delivers the upcall synchronously (the
// uniprocessor Xen behaviour); otherwise the event stays pending until
// the remote next runs or re-enables its virtual IF.
func (v *VMM) EvtchnSend(c *hw.CPU, d *Domain, p Port) error {
	defer v.enter(c, d)()
	if int(p) >= len(d.ports) || d.ports[p].state != chanInterdomain {
		return fmt.Errorf("xen: dom%d send on invalid port %d", d.ID, p)
	}
	ch := d.ports[p]
	rd := v.Domains[ch.remoteDom]
	if rd == nil {
		return fmt.Errorf("xen: dom%d send to vanished dom%d", d.ID, ch.remoteDom)
	}
	c.Charge(v.M.Costs.EventSend)
	d.Stats.EventsOut.Add(1)
	v.traceEmit(c, TrcEventSend, d, uint64(p))
	if h := v.tel(); h != nil {
		h.eventsSent.Inc()
		h.col.Tracer.Instant(c.ID, c.Now(), "xen/event-send", uint64(p))
	}
	rd.ports[ch.remotePort].pending = true
	rd.Stats.EventsIn.Add(1)
	v.maybeDeliverUpcall(c, rd)
	return nil
}

// evtchnMarkPending is the in-batch half of an MCEvtchnSend op: it
// validates the port, charges the send, and marks the remote end
// pending — but defers the upcall to HypMulticall, which delivers it
// for each kicked domain after the MMU lock drops.
func (v *VMM) evtchnMarkPending(c *hw.CPU, d *Domain, p Port, m *Multicall) error {
	if int(p) >= len(d.ports) || d.ports[p].state != chanInterdomain {
		return fmt.Errorf("xen: dom%d send on invalid port %d", d.ID, p)
	}
	ch := d.ports[p]
	rd := v.Domains[ch.remoteDom]
	if rd == nil {
		return fmt.Errorf("xen: dom%d send to vanished dom%d", d.ID, ch.remoteDom)
	}
	c.Charge(v.M.Costs.EventSend)
	d.Stats.EventsOut.Add(1)
	v.traceEmit(c, TrcEventSend, d, uint64(p))
	if h := v.tel(); h != nil {
		h.eventsSent.Inc()
	}
	rd.ports[ch.remotePort].pending = true
	rd.Stats.EventsIn.Add(1)
	for _, k := range m.kicked {
		if k == rd {
			return nil
		}
	}
	m.kicked = append(m.kicked, rd)
	return nil
}

// maybeDeliverUpcall switches to rd and drains its pending ports if it is
// interruptible and not already active on this CPU.
func (v *VMM) maybeDeliverUpcall(c *hw.CPU, rd *Domain) {
	if !rd.VCPU0().VIF() || rd.State != DomRunning {
		return
	}
	if v.onStack(c, rd) {
		return // will drain when control returns to rd
	}
	v.runInDomain(c, rd, func() {
		v.drainPending(c, rd)
	})
}

// drainPending invokes handlers for every pending port of d. Must run
// with d current.
func (v *VMM) drainPending(c *hw.CPU, d *Domain) {
	for {
		progress := false
		for _, ch := range d.ports {
			if ch.pending && ch.handler != nil {
				ch.pending = false
				c.Charge(v.M.Costs.EventDeliver)
				ch.handler(c)
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// SetVIF sets the domain's virtual interrupt flag — the paravirtual
// replacement for cli/sti, costing only a shared-memory write. Enabling
// it drains any events that went pending while masked.
func (v *VMM) SetVIF(c *hw.CPU, d *Domain, on bool) {
	c.Charge(v.M.Costs.MemWrite)
	d.VCPU0().SetVIF(on)
	if on && !v.onStack(c, d) {
		// A real guest gets its upcall on the next VMM entry; close
		// enough to deliver now.
		hasPending := false
		for _, ch := range d.ports {
			if ch.pending && ch.handler != nil {
				hasPending = true
				break
			}
		}
		if hasPending {
			v.runInDomain(c, d, func() { v.drainPending(c, d) })
		}
	} else if on {
		v.drainPending(c, d)
	}
}
