package xen

import (
	"testing"
)

// TestGrantAccessFreeListReuse is the regression test for the linear
// scan the free-list replaced: ending grants in a fragmented table must
// hand their refs back for O(1) reuse, and allocation cost must not
// depend on table occupancy.
func TestGrantAccessFreeListReuse(t *testing.T) {
	_, _, dU, c := twoDomains(t)
	pfn := dU.Frames.Alloc()

	// Fill a table, then punch holes in the middle.
	refs := make([]GrantRef, 64)
	for i := range refs {
		refs[i] = dU.GrantAccess(c, 0, pfn, true)
	}
	freed := []GrantRef{refs[3], refs[17], refs[40]}
	for _, ref := range freed {
		if err := dU.GrantEnd(c, ref); err != nil {
			t.Fatal(err)
		}
	}
	tableLen := len(dU.grants)

	// The next allocations must reuse the freed refs (LIFO) without
	// growing the table.
	for i := len(freed) - 1; i >= 0; i-- {
		got := dU.GrantAccess(c, 0, pfn, true)
		if got != freed[i] {
			t.Fatalf("alloc %d: got ref %d, want recycled %d", i, got, freed[i])
		}
	}
	if len(dU.grants) != tableLen {
		t.Fatalf("table grew to %d during reuse (was %d)", len(dU.grants), tableLen)
	}

	// O(1): granting from the heavily fragmented table costs the same
	// cycles as from the fresh one.
	for i := 0; i < 1000; i++ {
		dU.GrantAccess(c, 0, pfn, true)
	}
	for _, ref := range refs[4:16] {
		dU.GrantEnd(c, ref)
	}
	before := c.Now()
	dU.GrantAccess(c, 0, pfn, true)
	fragCost := c.Now() - before
	before = c.Now()
	dU.GrantAccess(c, 0, pfn, true)
	if freshCost := c.Now() - before; fragCost != freshCost {
		t.Fatalf("fragmented alloc cost %d != %d — allocation scales with occupancy",
			fragCost, freshCost)
	}
}

func TestGrantEndRejectsMappedAndInvalid(t *testing.T) {
	v, d0, dU, c := twoDomains(t)
	pfn := dU.Frames.Alloc()
	ref := dU.GrantAccess(c, d0.ID, pfn, true)
	_, unmap, err := v.GrantMap(c, d0, dU.ID, ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := dU.GrantEnd(c, ref); err == nil {
		t.Fatal("ended a grant that is still mapped")
	}
	unmap()
	if err := dU.GrantEnd(c, ref); err != nil {
		t.Fatal(err)
	}
	if err := dU.GrantEnd(c, ref); err == nil {
		t.Fatal("double GrantEnd accepted")
	}
	if err := dU.GrantEnd(c, GrantRef(9999)); err == nil {
		t.Fatal("out-of-range GrantEnd accepted")
	}
}

func TestGrantMapBatchAllOrNothing(t *testing.T) {
	v, d0, dU, c := twoDomains(t)
	refs := make([]GrantRef, 4)
	for i := range refs {
		refs[i] = dU.GrantAccess(c, d0.ID, dU.Frames.Alloc(), true)
	}
	bad := append(append([]GrantRef{}, refs...), GrantRef(9999))
	if _, _, err := v.GrantMapBatch(c, d0, dU.ID, bad); err == nil {
		t.Fatal("batch with a bad ref succeeded")
	}
	for _, ref := range refs {
		if dU.grants[ref].mapped != 0 {
			t.Fatalf("failed batch left grant %d mapped", ref)
		}
	}

	pfns, unmap, err := v.GrantMapBatch(c, d0, dU.ID, refs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pfns) != len(refs) {
		t.Fatalf("mapped %d of %d", len(pfns), len(refs))
	}
	for _, ref := range refs {
		if dU.grants[ref].mapped != 1 {
			t.Fatalf("grant %d mapped=%d, want 1", ref, dU.grants[ref].mapped)
		}
	}
	unmap()
	unmap() // idempotent
	for _, ref := range refs {
		if dU.grants[ref].mapped != 0 {
			t.Fatalf("grant %d still mapped after unmap", ref)
		}
		if err := dU.GrantEnd(c, ref); err != nil {
			t.Fatal(err)
		}
	}
}
