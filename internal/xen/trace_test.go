package xen

import (
	"strings"
	"testing"

	"repro/internal/hw"
)

func TestTraceCapturesHypercallsAndPins(t *testing.T) {
	v, d, c := testVMM(t)
	v.Trace.Enable()
	tb, _ := buildTree(t, v, d, 2)
	if err := v.HypPinTable(c, d, tb.Root); err != nil {
		t.Fatal(err)
	}
	if err := v.HypUnpinTable(c, d, tb.Root); err != nil {
		t.Fatal(err)
	}
	v.Trace.Disable()
	evs := v.Trace.Snapshot()
	kinds := map[TraceKind]int{}
	for _, e := range evs {
		kinds[e.Kind]++
		if e.Dom != d.ID {
			t.Fatalf("event for dom%d", e.Dom)
		}
	}
	if kinds[TrcHypercall] != 2 || kinds[TrcPin] != 1 || kinds[TrcUnpin] != 1 {
		t.Fatalf("kinds = %v", kinds)
	}
	// Timestamps are monotonic (single CPU).
	for i := 1; i < len(evs); i++ {
		if evs[i].TSC < evs[i-1].TSC {
			t.Fatal("trace out of order")
		}
	}
	if !strings.Contains(evs[0].String(), "hypercall") {
		t.Fatalf("render: %s", evs[0])
	}
}

func TestTraceDisabledIsFree(t *testing.T) {
	v, d, c := testVMM(t)
	// Disabled (default): nothing recorded.
	v.HypSchedYield(c, d)
	if evs := v.Trace.Snapshot(); len(evs) != 0 {
		t.Fatalf("disabled trace recorded %d events", len(evs))
	}
}

func TestTraceRingWraps(t *testing.T) {
	tb := NewTraceBuffer(4)
	tb.Enable()
	m := hw.NewMachine(hw.Config{MemBytes: 4 << 20, NumCPUs: 1})
	c := m.BootCPU()
	for i := 0; i < 7; i++ {
		c.Charge(10)
		tb.Emit(c, TrcEventSend, 1, uint64(i))
	}
	evs := tb.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d", len(evs))
	}
	if evs[0].Arg != 3 || evs[3].Arg != 6 {
		t.Fatalf("wrap lost order: %v", evs)
	}
	// Snapshot cleared the ring.
	if len(tb.Snapshot()) != 0 {
		t.Fatal("snapshot did not clear")
	}
}
