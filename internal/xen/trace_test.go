package xen

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/hw"
)

func TestTraceCapturesHypercallsAndPins(t *testing.T) {
	v, d, c := testVMM(t)
	v.Trace.Enable()
	tb, _ := buildTree(t, v, d, 2)
	if err := v.HypPinTable(c, d, tb.Root); err != nil {
		t.Fatal(err)
	}
	if err := v.HypUnpinTable(c, d, tb.Root); err != nil {
		t.Fatal(err)
	}
	v.Trace.Disable()
	evs := v.Trace.Snapshot()
	kinds := map[TraceKind]int{}
	for _, e := range evs {
		kinds[e.Kind]++
		if e.Dom != d.ID {
			t.Fatalf("event for dom%d", e.Dom)
		}
	}
	if kinds[TrcHypercall] != 2 || kinds[TrcPin] != 1 || kinds[TrcUnpin] != 1 {
		t.Fatalf("kinds = %v", kinds)
	}
	// Timestamps are monotonic (single CPU).
	for i := 1; i < len(evs); i++ {
		if evs[i].TSC < evs[i-1].TSC {
			t.Fatal("trace out of order")
		}
	}
	if !strings.Contains(evs[0].String(), "hypercall") {
		t.Fatalf("render: %s", evs[0])
	}
}

func TestTraceDisabledIsFree(t *testing.T) {
	v, d, c := testVMM(t)
	// Disabled (default): nothing recorded.
	v.HypSchedYield(c, d)
	if evs := v.Trace.Snapshot(); len(evs) != 0 {
		t.Fatalf("disabled trace recorded %d events", len(evs))
	}
}

func TestTraceRingWraps(t *testing.T) {
	tb := NewTraceBuffer(4)
	tb.Enable()
	m := hw.NewMachine(hw.Config{MemBytes: 4 << 20, NumCPUs: 1})
	c := m.BootCPU()
	for i := 0; i < 7; i++ {
		c.Charge(10)
		tb.Emit(c, TrcEventSend, 1, uint64(i))
	}
	evs := tb.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d", len(evs))
	}
	if evs[0].Arg != 3 || evs[3].Arg != 6 {
		t.Fatalf("wrap lost order: %v", evs)
	}
	// Snapshot cleared the ring.
	if len(tb.Snapshot()) != 0 {
		t.Fatal("snapshot did not clear")
	}
}

func TestTraceDroppedCountExact(t *testing.T) {
	tb := NewTraceBuffer(4)
	tb.Enable()
	m := hw.NewMachine(hw.Config{MemBytes: 4 << 20, NumCPUs: 1})
	c := m.BootCPU()
	for i := 0; i < 7; i++ {
		c.Charge(10)
		tb.Emit(c, TrcEventSend, 1, uint64(i))
	}
	// Seven emits into a four-slot ring: records 0..2 were overwritten
	// before any snapshot could return them.
	evs, dropped := tb.SnapshotWithDropped()
	if len(evs) != 4 || dropped != 3 {
		t.Fatalf("kept %d dropped %d, want 4/3", len(evs), dropped)
	}
	for i, e := range evs {
		if e.Arg != uint64(i+3) {
			t.Fatalf("event %d has arg %d", i, e.Arg)
		}
	}
	if tb.Dropped() != 3 {
		t.Fatalf("Dropped() = %d", tb.Dropped())
	}
	// The count is cumulative across snapshots: filling the ring again
	// without wrapping adds nothing, wrapping once more adds one.
	for i := 0; i < 4; i++ {
		c.Charge(10)
		tb.Emit(c, TrcEventSend, 1, uint64(i))
	}
	if _, dropped := tb.SnapshotWithDropped(); dropped != 3 {
		t.Fatalf("non-wrapping refill changed dropped to %d", dropped)
	}
	for i := 0; i < 5; i++ {
		c.Charge(10)
		tb.Emit(c, TrcEventSend, 1, uint64(i))
	}
	if _, dropped := tb.SnapshotWithDropped(); dropped != 4 {
		t.Fatalf("cumulative dropped = %d, want 4", dropped)
	}
}

func TestTraceParallelEmit(t *testing.T) {
	// Concurrent emitters from distinct CPUs must neither race (run
	// with -race) nor lose records while the ring has room.
	const perCPU = 200
	ncpu := 4
	tb := NewTraceBuffer(ncpu * perCPU)
	tb.Enable()
	m := hw.NewMachine(hw.Config{MemBytes: 16 << 20, NumCPUs: ncpu})
	var wg sync.WaitGroup
	for id := 0; id < ncpu; id++ {
		wg.Add(1)
		go func(c *hw.CPU) {
			defer wg.Done()
			for i := 0; i < perCPU; i++ {
				c.Charge(1)
				tb.Emit(c, TrcEventSend, DomID(c.ID), uint64(i))
			}
		}(m.CPUs[id])
	}
	wg.Wait()
	evs, dropped := tb.SnapshotWithDropped()
	if len(evs) != ncpu*perCPU || dropped != 0 {
		t.Fatalf("kept %d dropped %d, want %d/0", len(evs), dropped, ncpu*perCPU)
	}
	// Per-CPU order is preserved even under interleaving.
	lastArg := make(map[int]uint64)
	for _, e := range evs {
		if prev, ok := lastArg[e.CPU]; ok && e.Arg != prev+1 {
			t.Fatalf("cpu%d emitted %d after %d", e.CPU, e.Arg, prev)
		}
		lastArg[e.CPU] = e.Arg
	}
	for id := 0; id < ncpu; id++ {
		if lastArg[id] != perCPU-1 {
			t.Fatalf("cpu%d last arg %d", id, lastArg[id])
		}
	}
}
