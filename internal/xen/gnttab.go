package xen

import (
	"fmt"

	"repro/internal/hw"
)

// GrantRef names one grant-table entry of a domain.
type GrantRef int

// grantEntry records that a domain has granted another domain access to
// one of its frames. Split drivers grant the frames holding I/O buffers
// so the backend can map them instead of copying through the VMM.
type grantEntry struct {
	inUse    bool
	toDom    DomID
	pfn      hw.PFN
	readonly bool
	mapped   int
}

// GrantAccess publishes pfn to dom. Guest-local table write (real guests
// write their grant table page directly), so no hypercall cost. Freed
// refs are recycled through a free-list, so allocation is O(1) and the
// single MemWrite charge does not scale with table occupancy — a
// datapath granting from a fragmented table pays the same as from a
// fresh one.
func (d *Domain) GrantAccess(c *hw.CPU, to DomID, pfn hw.PFN, readonly bool) GrantRef {
	c.Charge(d.VMM.M.Costs.MemWrite)
	if n := len(d.grantFree); n > 0 {
		ref := d.grantFree[n-1]
		d.grantFree = d.grantFree[:n-1]
		*d.grants[ref] = grantEntry{inUse: true, toDom: to, pfn: pfn, readonly: readonly}
		return ref
	}
	d.grants = append(d.grants, &grantEntry{inUse: true, toDom: to, pfn: pfn, readonly: readonly})
	return GrantRef(len(d.grants) - 1)
}

// GrantEnd revokes a grant once unmapped and returns the ref to the
// free-list for O(1) reuse.
func (d *Domain) GrantEnd(c *hw.CPU, ref GrantRef) error {
	c.Charge(d.VMM.M.Costs.MemWrite)
	if int(ref) >= len(d.grants) || !d.grants[ref].inUse {
		return fmt.Errorf("xen: dom%d ending invalid grant %d", d.ID, ref)
	}
	if d.grants[ref].mapped != 0 {
		return fmt.Errorf("xen: dom%d grant %d still mapped", d.ID, ref)
	}
	d.grants[ref].inUse = false
	d.grantFree = append(d.grantFree, ref)
	return nil
}

// GrantMap gives the calling (backend) domain access to the frame behind
// (granterID, ref). It returns the frame and an unmap closure. This is
// the grant_table_op hypercall.
func (v *VMM) GrantMap(c *hw.CPU, d *Domain, granterID DomID, ref GrantRef) (hw.PFN, func(), error) {
	defer v.enter(c, d)()
	granter, ok := v.Domains[granterID]
	if !ok {
		return 0, nil, fmt.Errorf("xen: grant map from nonexistent dom%d", granterID)
	}
	if int(ref) >= len(granter.grants) {
		return 0, nil, fmt.Errorf("xen: dom%d has no grant %d", granterID, ref)
	}
	g := granter.grants[ref]
	if !g.inUse || g.toDom != d.ID {
		return 0, nil, fmt.Errorf("xen: dom%d grant %d not granted to dom%d",
			granterID, ref, d.ID)
	}
	c.Charge(v.M.Costs.GrantMap)
	v.lockMMU(c)
	v.FT.GetRef(g.pfn)
	g.mapped++
	v.unlockMMU()
	pfn := g.pfn
	unmapped := false
	return pfn, func() {
		if unmapped {
			return
		}
		unmapped = true
		v.lockMMU(c)
		g.mapped--
		v.FT.PutRef(pfn)
		v.unlockMMU()
	}, nil
}

// GrantMapBatch maps a burst of grants from one granter in a single
// grant_table_op: one VMM entry and one MMU lock acquisition amortized
// over the whole ring-slot burst, with the per-ref GrantMap work still
// charged. Returns the frames in ref order and a single idempotent
// unmap closure. Validation is all-or-nothing — any bad ref fails the
// batch with nothing mapped.
func (v *VMM) GrantMapBatch(c *hw.CPU, d *Domain, granterID DomID, refs []GrantRef) ([]hw.PFN, func(), error) {
	defer v.enter(c, d)()
	granter, ok := v.Domains[granterID]
	if !ok {
		return nil, nil, fmt.Errorf("xen: grant map from nonexistent dom%d", granterID)
	}
	entries := make([]*grantEntry, len(refs))
	pfns := make([]hw.PFN, len(refs))
	for i, ref := range refs {
		if int(ref) >= len(granter.grants) {
			return nil, nil, fmt.Errorf("xen: dom%d has no grant %d", granterID, ref)
		}
		g := granter.grants[ref]
		if !g.inUse || g.toDom != d.ID {
			return nil, nil, fmt.Errorf("xen: dom%d grant %d not granted to dom%d",
				granterID, ref, d.ID)
		}
		entries[i] = g
		pfns[i] = g.pfn
	}
	c.Charge(v.M.Costs.GrantMap * hw.Cycles(len(refs)))
	v.lockMMU(c)
	for _, g := range entries {
		v.FT.GetRef(g.pfn)
		g.mapped++
	}
	v.unlockMMU()
	if h := v.tel(); h != nil {
		h.grantBatches.Inc()
		h.grantBatchRefs.Add(uint64(len(refs)))
	}
	unmapped := false
	return pfns, func() {
		if unmapped {
			return
		}
		unmapped = true
		v.lockMMU(c)
		for i, g := range entries {
			g.mapped--
			v.FT.PutRef(pfns[i])
		}
		v.unlockMMU()
	}, nil
}
