package xen

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/hw"
	"repro/internal/obs"
)

// Event tracing in the style of xentrace: a fixed-size per-VMM ring of
// timestamped records emitted at the hypervisor's decision points
// (hypercalls, domain switches, fault bounces, event sends, mode
// switches). Disabled by default; enabling costs one atomic load per
// potential emission.

// TraceKind classifies a trace record.
type TraceKind uint8

// Trace record kinds.
const (
	TrcHypercall TraceKind = iota + 1
	TrcDomSwitch
	TrcFaultBounce
	TrcEventSend
	TrcAttach
	TrcDetach
	TrcPin
	TrcUnpin
	TrcMulticall
)

func (k TraceKind) String() string {
	switch k {
	case TrcHypercall:
		return "hypercall"
	case TrcDomSwitch:
		return "dom-switch"
	case TrcFaultBounce:
		return "fault-bounce"
	case TrcEventSend:
		return "event-send"
	case TrcAttach:
		return "attach"
	case TrcDetach:
		return "detach"
	case TrcPin:
		return "pin"
	case TrcUnpin:
		return "unpin"
	case TrcMulticall:
		return "multicall"
	}
	return fmt.Sprintf("kind%d", uint8(k))
}

// TraceEvent is one record.
type TraceEvent struct {
	TSC  hw.Cycles
	CPU  int
	Kind TraceKind
	Dom  DomID
	Arg  uint64
}

func (e TraceEvent) String() string {
	return fmt.Sprintf("[%12d] cpu%d dom%-2d %-12s arg=%d",
		e.TSC, e.CPU, e.Dom, e.Kind, e.Arg)
}

// TraceBuffer is the bounded ring.
type TraceBuffer struct {
	enabled atomic.Bool
	mu      sync.Mutex
	buf     []TraceEvent
	next    int
	wrapped bool
	// dropped is a free-standing counter so a collector can adopt it
	// (xen/trace_ring_dropped_total): ring wrap is data loss, and a
	// bench run reporting a partial event table should say so.
	dropped *obs.Counter
}

// DefaultTraceCap is the ring capacity.
const DefaultTraceCap = 4096

// NewTraceBuffer builds a disabled ring with capacity n (0 = default).
func NewTraceBuffer(n int) *TraceBuffer {
	if n <= 0 {
		n = DefaultTraceCap
	}
	return &TraceBuffer{buf: make([]TraceEvent, n), dropped: obs.NewCounter()}
}

// DroppedCounter returns the underlying drop counter, for registry
// adoption.
func (t *TraceBuffer) DroppedCounter() *obs.Counter { return t.dropped }

// Enable starts recording.
func (t *TraceBuffer) Enable() { t.enabled.Store(true) }

// Disable stops recording (records are kept).
func (t *TraceBuffer) Disable() { t.enabled.Store(false) }

// Emit appends a record if tracing is on.
func (t *TraceBuffer) Emit(c *hw.CPU, kind TraceKind, dom DomID, arg uint64) {
	if !t.enabled.Load() {
		return
	}
	ev := TraceEvent{TSC: c.Now(), CPU: c.ID, Kind: kind, Dom: dom, Arg: arg}
	t.mu.Lock()
	if t.wrapped {
		// The slot being written still holds a record no Snapshot has
		// returned: overwriting it loses history.
		t.dropped.Inc()
	}
	t.buf[t.next] = ev
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.wrapped = true
	}
	t.mu.Unlock()
}

// Snapshot returns the recorded events in emission order and clears the
// ring. The dropped total is cumulative across snapshots; read it with
// Dropped.
func (t *TraceBuffer) Snapshot() []TraceEvent {
	evs, _ := t.SnapshotWithDropped()
	return evs
}

// SnapshotWithDropped returns the recorded events in emission order
// plus the cumulative count of records lost to ring wrap, and clears
// the ring.
func (t *TraceBuffer) SnapshotWithDropped() ([]TraceEvent, uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []TraceEvent
	if t.wrapped {
		out = append(out, t.buf[t.next:]...)
	}
	out = append(out, t.buf[:t.next]...)
	t.next = 0
	t.wrapped = false
	return out, t.dropped.Load()
}

// Dropped returns how many records were overwritten by ring wrap
// before any Snapshot could return them.
func (t *TraceBuffer) Dropped() uint64 { return t.dropped.Load() }

// traceEmit is the VMM-side helper (nil-safe).
func (v *VMM) traceEmit(c *hw.CPU, kind TraceKind, d *Domain, arg uint64) {
	if v.Trace == nil {
		return
	}
	id := DomID(0xFFFE)
	if d != nil {
		id = d.ID
	}
	v.Trace.Emit(c, kind, id, arg)
}
